package train

import (
	"errors"
	"fmt"

	"pragformer/internal/ckpt"
	"pragformer/internal/nn"
)

// Checkpoint/resume: Run is Fit with checkpoint I/O errors surfaced;
// Resume continues a run from the snapshot at cfg.CheckpointPath. The
// determinism contract extends the parallel engine's across process
// restarts: a run killed at any epoch boundary and resumed at the same
// (seed, W) produces bit-identical weights and History to an uninterrupted
// run, because the checkpoint captures every stateful piece of the trainer
// — weights, AdamW moments and step, the Fisher-Yates shuffler, and each
// replica's dropout stream — and the example order is replayed, not
// approximated.

// ErrInterrupted is returned by Run/Resume when cfg.Interrupt fires. The
// returned History covers the epochs completed before the interrupt, and
// when checkpointing is configured the file at cfg.CheckpointPath covers
// exactly those epochs.
var ErrInterrupted = errors.New("train: interrupted")

// RNGStateful is the optional Model capability checkpointing uses to
// capture and restore the model's internal noise stream (dropout).
// Implemented by core.PragFormer. Models without it (dropout-free toy
// models) checkpoint and resume fine — there is no stream to save.
type RNGStateful interface {
	RNGState() uint64
	SetRNGState(uint64)
}

// Run trains like Fit but surfaces checkpoint I/O errors and interrupts.
// A failed checkpoint write aborts the run: a caller that asked for
// durable training must not believe it has it when the disk is full.
func Run(m Model, trainSet, validSet []Example, cfg Config) (History, error) {
	cfg.fillDefaults()
	return run(m, trainSet, validSet, cfg, nil)
}

// Resume loads the checkpoint at cfg.CheckpointPath and continues the run
// it captured. The model must be freshly constructed with the same
// architecture and seed, and trainSet/validSet must be the identical
// datasets — seed and worker-count mismatches are rejected outright, and a
// diverging training set is caught by replaying the shuffle stream.
func Resume(m Model, trainSet, validSet []Example, cfg Config) (History, error) {
	cfg.fillDefaults()
	if cfg.CheckpointPath == "" {
		return History{}, fmt.Errorf("train: Resume requires Config.CheckpointPath")
	}
	snap, err := ckpt.LoadFile(cfg.CheckpointPath)
	if err != nil {
		return History{}, err
	}
	return run(m, trainSet, validSet, cfg, snap)
}

// run dispatches to the sequential or data-parallel loop.
func run(m Model, trainSet, validSet []Example, cfg Config, snap *ckpt.Snapshot) (History, error) {
	if cfg.Workers > 1 {
		if rm, ok := m.(Replicable); ok {
			return runParallel(rm, trainSet, validSet, cfg, snap)
		}
	}
	return runSequential(m, trainSet, validSet, cfg, snap)
}

// checkpointer carries the write-side state: the target path, the epoch
// stride, and a copy of the best-epoch weights (model selection must
// survive a restart even when the best epoch predates the crash).
type checkpointer struct {
	path  string
	every int
	bestW [][]float64
}

// newCheckpointer returns nil when the config does not checkpoint.
func newCheckpointer(cfg Config) *checkpointer {
	if cfg.CheckpointPath == "" {
		return nil
	}
	return &checkpointer{path: cfg.CheckpointPath, every: cfg.CheckpointEvery}
}

// restoreRun applies a snapshot to the trainer state shared by both loops:
// weights, optimizer, shuffler, history, and best-weights tracking. The
// shuffle stream is replayed rather than blindly restored — epoch N's
// shuffle permutes the output of epoch N-1's, so the order slice must pass
// through every prior epoch; the replayed state is then checked against
// the snapshot, which catches resuming against a different training set.
// A nil snap is a fresh run and restores nothing.
func restoreRun(snap *ckpt.Snapshot, cfg Config, workers int,
	params []*nn.Param, opt *AdamW, rng *shuffler, order []int, st *runState, ck *checkpointer) error {
	if snap == nil {
		return nil
	}
	if snap.Seed != cfg.Seed {
		return fmt.Errorf("train: checkpoint written with seed %d, resuming with seed %d", snap.Seed, cfg.Seed)
	}
	if snap.Workers != workers {
		return fmt.Errorf("train: checkpoint written with %d workers, resuming with %d — bit-identical resume holds only at the same (seed, W)",
			snap.Workers, workers)
	}
	if err := snap.ApplyWeights(params, snap.Weights); err != nil {
		return err
	}
	if err := opt.SetState(params, snap.OptStep, snap.OptM, snap.OptV); err != nil {
		return err
	}
	for i := 0; i < snap.NextEpoch; i++ {
		rng.shuffle(order)
	}
	if rng.state != snap.Shuffler {
		return fmt.Errorf("train: replayed shuffle stream diverges from checkpoint — the training set differs from the checkpointed run")
	}
	st.h = History{Epochs: statsOf(snap.Epochs), BestEpoch: snap.BestEpoch}
	st.bestLoss = snap.BestLoss
	st.step = snap.OptStep
	st.epoch = snap.NextEpoch
	if ck != nil {
		ck.bestW = snap.BestWeights
	}
	return nil
}

// restoreRNGs restores each model's dropout stream (primary first, then
// replicas, matching capture order). Safe on nil snapshots and models
// without the capability.
func restoreRNGs(snap *ckpt.Snapshot, models []Model) {
	if snap == nil {
		return
	}
	for i, s := range snap.RNG {
		if i >= len(models) {
			return
		}
		if rs, ok := models[i].(RNGStateful); ok {
			rs.SetRNGState(s)
		}
	}
}

// afterEpoch runs the end-of-epoch bookkeeping shared by both loops:
// best-weights tracking, due checkpoint writes, and interrupt polling.
// stop reports that the run should end now; err is ErrInterrupted and/or a
// checkpoint write failure.
func afterEpoch(ck *checkpointer, cfg Config, st *runState, models []Model,
	params []*nn.Param, opt *AdamW, rng *shuffler, epoch int) (stop bool, err error) {
	if ck != nil && st.h.BestEpoch == epoch {
		ck.bestW = ckpt.CopyWeights(params)
	}
	interrupted := false
	if cfg.Interrupt != nil {
		select {
		case <-cfg.Interrupt:
			interrupted = true
		default:
		}
	}
	if ck != nil {
		due := (epoch+1)%ck.every == 0 || epoch == cfg.Epochs-1 || interrupted
		if due {
			if werr := ck.write(cfg, st, models, params, opt, rng, epoch+1); werr != nil {
				if interrupted {
					return true, errors.Join(ErrInterrupted, werr)
				}
				return true, werr
			}
		}
	}
	if interrupted {
		return true, ErrInterrupted
	}
	return false, nil
}

// restoreBest applies the tracked best-epoch weights to params at a
// normal run completion when cfg.RestoreBest asks for model selection.
// Nil-receiver safe (no checkpointing configured).
func (ck *checkpointer) restoreBest(cfg Config, params []*nn.Param) {
	if ck == nil || !cfg.RestoreBest || len(ck.bestW) != len(params) {
		return
	}
	for i, p := range params {
		copy(p.W.Data, ck.bestW[i])
	}
}

// write captures the full trainer state into a snapshot and persists it
// atomically.
func (ck *checkpointer) write(cfg Config, st *runState, models []Model,
	params []*nn.Param, opt *AdamW, rng *shuffler, nextEpoch int) error {
	snap := &ckpt.Snapshot{
		Seed:      cfg.Seed,
		Workers:   len(models),
		NextEpoch: nextEpoch,
		Shuffler:  rng.state,
		BestLoss:  st.bestLoss,
		BestEpoch: st.h.BestEpoch,
		Epochs:    recordsOf(st.h.Epochs),
	}
	snap.OptStep, snap.OptM, snap.OptV = opt.State(params)
	snap.CaptureParams(params)
	snap.BestWeights = ck.bestW
	for _, m := range models {
		rs, ok := m.(RNGStateful)
		if !ok {
			break // replicas share the primary's type: all or none
		}
		snap.RNG = append(snap.RNG, rs.RNGState())
	}
	return snap.SaveFile(ck.path)
}

// HistoryFromSnapshot reconstructs the learning curve a checkpoint
// captured — the surface callers (internal/experiments) use to treat a
// finished checkpoint as a completed training run.
func HistoryFromSnapshot(s *ckpt.Snapshot) History {
	return History{Epochs: statsOf(s.Epochs), BestEpoch: s.BestEpoch}
}

// recordsOf converts the in-memory learning curve to the wire mirror.
func recordsOf(es []EpochStats) []ckpt.EpochRecord {
	out := make([]ckpt.EpochRecord, len(es))
	for i, e := range es {
		out[i] = ckpt.EpochRecord{Epoch: e.Epoch, TrainLoss: e.TrainLoss,
			ValidLoss: e.ValidLoss, ValidAccuracy: e.ValidAccuracy}
	}
	return out
}

// statsOf converts wire records back to the in-memory learning curve.
func statsOf(rs []ckpt.EpochRecord) []EpochStats {
	out := make([]EpochStats, len(rs))
	for i, r := range rs {
		out[i] = EpochStats{Epoch: r.Epoch, TrainLoss: r.TrainLoss,
			ValidLoss: r.ValidLoss, ValidAccuracy: r.ValidAccuracy}
	}
	return out
}
