package tier

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
)

// replica is the router's view of one cmd/serve process: its health
// state, the router-side in-flight count (the bounded-load signal), and
// the last admission stats polled from GET /statz.
//
// State machine: healthy ⇄ draining (rolling reload only) and healthy →
// ejected (FailThreshold consecutive failures) → healthy (successful
// re-probe). Draining replicas are skipped by the ring walk but still
// finish their in-flight requests; ejected replicas receive no traffic
// until a background probe readmits them.

type replicaState int32

const (
	stateHealthy replicaState = iota
	stateDraining
	stateEjected
)

func (s replicaState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDraining:
		return "draining"
	case stateEjected:
		return "ejected"
	}
	return "unknown"
}

type replica struct {
	name  string // base URL, also the ring identity
	state atomic.Int32

	// inflight counts requests the router has forwarded here and not yet
	// seen answered — the bounded-load accounting.
	inflight atomic.Int64
	// fails counts consecutive forward/probe failures toward ejection.
	fails atomic.Int32

	// statzErrs counts failed /statz polls — before these were surfaced,
	// a replica could fail every health poll for minutes (DNS, decode
	// drift) with nothing visible until ejection.
	statzErrs atomic.Uint64

	// Signals from the last successful /statz poll.
	generation atomic.Uint64
	queueDepth atomic.Int64 // predict + suggest queue depth
	backend    atomic.Pointer[string]
	ready      atomic.Bool
	// p99Micros is the worst per-path p99 request latency the replica
	// reported, in integer microseconds (atomic-friendly).
	p99Micros atomic.Int64
}

func newReplica(name string) *replica {
	r := &replica{name: name}
	empty := ""
	r.backend.Store(&empty)
	r.ready.Store(true) // optimistic until the first probe says otherwise
	return r
}

func (r *replica) getState() replicaState  { return replicaState(r.state.Load()) }
func (r *replica) setState(s replicaState) { r.state.Store(int32(s)) }

// routable reports whether the ring walk may hand this replica traffic.
func (r *replica) routable() bool { return r.getState() == stateHealthy }

// replicaStatz mirrors the serve /statz body (the fields the router
// consumes; unknown fields are ignored).
type replicaStatz struct {
	Backend    string `json:"backend"`
	Generation uint64 `json:"generation"`
	Draining   bool   `json:"draining"`
	Reloading  bool   `json:"reloading"`
	Predict    struct {
		QueueDepth int    `json:"queue_depth"`
		InFlight   int    `json:"in_flight"`
		Sheds      uint64 `json:"sheds"`
	} `json:"predict"`
	Suggest struct {
		QueueDepth int    `json:"queue_depth"`
		InFlight   int    `json:"in_flight"`
		Sheds      uint64 `json:"sheds"`
	} `json:"suggest"`
	Latency map[string]struct {
		P99Ms float64 `json:"p99_ms"`
	} `json:"latency"`
}

// probeStatz polls GET /statz and refreshes the replica's admission
// signals. It does not change the health state — the caller decides what
// a success or failure means (ejection, readmission, backoff).
func (r *replica) probeStatz(ctx context.Context, client *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.name+"/statz", nil)
	if err != nil {
		r.statzErrs.Add(1)
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		r.statzErrs.Add(1)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.statzErrs.Add(1)
		return fmt.Errorf("statz: %s", resp.Status)
	}
	var st replicaStatz
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		r.statzErrs.Add(1)
		return err
	}
	r.generation.Store(st.Generation)
	r.queueDepth.Store(int64(st.Predict.QueueDepth + st.Suggest.QueueDepth))
	b := st.Backend
	r.backend.Store(&b)
	r.ready.Store(!st.Draining && !st.Reloading)
	var worst float64
	for _, l := range st.Latency {
		if l.P99Ms > worst {
			worst = l.P99Ms
		}
	}
	if worst > 0 {
		r.p99Micros.Store(int64(worst * 1000))
	}
	return nil
}

// probeReady polls GET /readyz; nil means the replica reports ready.
func (r *replica) probeReady(ctx context.Context, client *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.name+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: %s", resp.Status)
	}
	return nil
}
