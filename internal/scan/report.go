package scan

import "encoding/json"

// JSON renders the report as indented JSON with a trailing newline — the
// `pragformer scan -format json` output.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Stable returns a deep copy with every run-dependent field cleared: raw
// probabilities (which differ between the float64 and int8 backends even
// when every label agrees), the backend name, the root path, and the cache
// accounting (which differs between cold and warm runs of the same tree).
// Two scans of the same tree with agreeing labels produce byte-identical
// stable JSON regardless of backend or cache temperature — the form the
// golden fixtures and the CI label-agreement gate diff.
func (r *Report) Stable() *Report {
	out := &Report{
		Tool:     r.Tool,
		Counters: r.Counters,
	}
	out.Counters.CacheHits = 0
	out.Counters.Inferred = 0
	out.Loops = make([]Loop, len(r.Loops))
	for i, l := range r.Loops {
		c := l
		c.FromCache = false
		c.queued = false
		c.Occurrences = append([]Occurrence(nil), l.Occurrences...)
		if l.Suggestion != nil {
			s := l.Suggestion.clone()
			s.Probability = 0
			// Attribution weights are backend-identical only while every
			// perturbation label agrees; the stable form keeps the
			// attributed token list but drops the numbers so the
			// cross-backend golden gate stays strictly label-driven.
			for k := range s.Attributions {
				s.Attributions[k].Weight = 0
			}
			c.Suggestion = s
		}
		out.Loops[i] = c
	}
	out.Skips = append([]Skip(nil), r.Skips...)
	return out
}
