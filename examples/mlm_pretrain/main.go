// MLM pretraining: demonstrate the transfer-learning recipe that stands in
// for the paper's DeepSCC initialization (§4.1). An encoder is first
// pretrained with the masked-language-model objective on unlabeled code,
// then its weights seed a classifier that fine-tunes on the directive task;
// a twin classifier trains from random init for contrast.
package main

import (
	"fmt"
	"math/rand"

	"pragformer/internal/core"
	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

func main() {
	c := corpus.Generate(corpus.Config{Seed: 4, Total: 700})
	split := dataset.Directive(c, dataset.Options{Seed: 4})

	var seqs [][]string
	for _, in := range split.Train {
		toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
		if err != nil {
			panic(err)
		}
		seqs = append(seqs, toks)
	}
	vocab := tokenize.BuildVocab(seqs, 1)
	encode := func(ins []dataset.Instance) []train.Example {
		out := make([]train.Example, len(ins))
		for i, in := range ins {
			toks, _ := tokenize.Extract(in.Rec.Code, tokenize.Text)
			out[i] = train.Example{IDs: vocab.Encode(toks, 64), Label: in.Label}
		}
		return out
	}
	trainSet := encode(split.Train)
	validSet := encode(split.Valid)
	cfg := core.Config{Vocab: vocab.Size(), MaxLen: 64, D: 32, Heads: 4, Layers: 1}

	// --- Phase 1: MLM pretraining on unlabeled sequences. ---
	pre, err := core.New(cfg, 10)
	if err != nil {
		panic(err)
	}
	fmt.Println("phase 1: masked-language-model pretraining")
	opt := train.NewAdamW(1e-3)
	params := pre.MLMParams()
	rng := rand.New(rand.NewSource(10))
	for epoch := 0; epoch < 2; epoch++ {
		total, n := 0.0, 0
		batch := 0
		train.ZeroGrads(params)
		for _, ex := range trainSet {
			l, k := pre.MLMLossAndBackward(ex.IDs, rng)
			if k > 0 {
				total += l
				n++
			}
			batch++
			if batch == 16 {
				for _, p := range params {
					p.Grad.ScaleInPlace(1.0 / 16)
				}
				train.ClipGradNorm(params, 1)
				opt.Step(params, 1)
				train.ZeroGrads(params)
				batch = 0
			}
		}
		fmt.Printf("  epoch %d: masked-token loss %.3f\n", epoch+1, total/float64(n))
	}

	// --- Phase 2: fine-tune two classifiers, one warm and one cold. ---
	fineCfg := train.Config{Epochs: 3, BatchSize: 16, LR: 1.5e-3, ClipNorm: 1, Seed: 11}

	warm, err := core.New(cfg, 11)
	if err != nil {
		panic(err)
	}
	if err := warm.CopyEncoderFrom(pre); err != nil {
		panic(err)
	}
	fmt.Println("phase 2a: fine-tuning from pretrained encoder")
	warmHist := train.Fit(warm, trainSet, validSet, fineCfg)

	cold, err := core.New(cfg, 11)
	if err != nil {
		panic(err)
	}
	fmt.Println("phase 2b: training from random initialization")
	coldHist := train.Fit(cold, trainSet, validSet, fineCfg)

	fmt.Println("\nvalidation accuracy per epoch:")
	fmt.Printf("  %-14s", "pretrained:")
	for _, e := range warmHist.Epochs {
		fmt.Printf(" %.3f", e.ValidAccuracy)
	}
	fmt.Printf("\n  %-14s", "from scratch:")
	for _, e := range coldHist.Epochs {
		fmt.Printf(" %.3f", e.ValidAccuracy)
	}
	fmt.Printf("\n\nbest: pretrained %.3f vs from-scratch %.3f\n",
		warmHist.Best().ValidAccuracy, coldHist.Best().ValidAccuracy)
}
