// Quickstart: generate a small Open-OMP corpus, train a tiny PragFormer on
// the directive task, and ask it about new loops — the end-to-end journey of
// the paper in under a minute on a laptop.
package main

import (
	"fmt"

	"pragformer/internal/core"
	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

func main() {
	// 1. Build a corpus of labeled loop snippets.
	c := corpus.Generate(corpus.Config{Seed: 1, Total: 900})
	fmt.Println(c)

	// 2. Split it into the RQ1 directive dataset.
	split := dataset.Directive(c, dataset.Options{Seed: 1})
	tr, va, te := split.Sizes()
	fmt.Printf("dataset: %d train / %d valid / %d test\n", tr, va, te)

	// 3. Tokenize with the raw-text representation (the paper's best).
	var seqs [][]string
	for _, in := range split.Train {
		toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
		if err != nil {
			panic(err)
		}
		seqs = append(seqs, toks)
	}
	vocab := tokenize.BuildVocab(seqs, 1)
	encode := func(ins []dataset.Instance) []train.Example {
		out := make([]train.Example, len(ins))
		for i, in := range ins {
			toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
			if err != nil {
				panic(err)
			}
			out[i] = train.Example{IDs: vocab.Encode(toks, 64), Label: in.Label}
		}
		return out
	}

	// 4. Train a small transformer classifier.
	model, err := core.New(core.Config{
		Vocab: vocab.Size(), MaxLen: 64, D: 32, Heads: 4, Layers: 1,
	}, 1)
	if err != nil {
		panic(err)
	}
	hist := train.Fit(model, encode(split.Train), encode(split.Valid), train.Config{
		Epochs: 6, BatchSize: 16, LR: 1.5e-3, ClipNorm: 1, Seed: 1,
		Progress: func(s string) { fmt.Println(" ", s) },
	})
	fmt.Printf("best valid accuracy: %.3f\n", hist.Best().ValidAccuracy)

	loss, acc := train.Evaluate(model, encode(split.Test))
	fmt.Printf("test: loss %.3f accuracy %.3f\n", loss, acc)

	// 5. Ask about new code.
	for _, snippet := range []string{
		"for (i = 0; i < n; i++) out[i] = in[i] * 2.0 + src[i];",
		"for (i = 1; i < n; i++) a[i] = a[i-1] * 2;",
		`for (i = 0; i < n; i++) printf("%d\n", a[i]);`,
	} {
		toks, err := tokenize.Extract(snippet, tokenize.Text)
		if err != nil {
			panic(err)
		}
		p := model.Predict(vocab.Encode(toks, 64))
		fmt.Printf("p=%.2f  %s\n", p, snippet)
	}
}
