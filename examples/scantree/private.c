/* A per-iteration scratch array: every outer iteration fills t[0..7]
 * before reading it back, so the apparent reuse privatizes away. The
 * dependence engine must convert this loop (private(t)) instead of
 * refuting it. */

void blur(double **img, double **out, int n) {
    int i;
    int j;
    double t[8];
    for (i = 0; i < n; i++) {
        for (j = 0; j < 8; j++) {
            t[j] = img[i][j] * 0.5;
        }
        for (j = 0; j < 8; j++) {
            out[i][j] = t[j] + t[j] * 0.25;
        }
    }
}
