package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewAndAccess(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("m = %+v", m)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At broken")
	}
	if m.Row(1)[2] != 7 {
		t.Error("Row view broken")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Error("FromSlice layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad length")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if !almost(c.Data[i], v) {
			t.Fatalf("c = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulATMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 4).Randn(rng, 1)
	b := New(5, 6).Randn(rng, 1)
	got := MatMulAT(a, b)
	at := New(4, 5)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	for i := range want.Data {
		if !almost(got.Data[i], want.Data[i]) {
			t.Fatalf("MatMulAT mismatch at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulBTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(3, 7).Randn(rng, 1)
	b := New(5, 7).Randn(rng, 1)
	got := MatMulBT(a, b)
	bt := New(7, 5)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := MatMul(a, bt)
	for i := range want.Data {
		if !almost(got.Data[i], want.Data[i]) {
			t.Fatalf("MatMulBT mismatch at %d", i)
		}
	}
}

// TestMatMulParallelDeterministic exercises the goroutine path (above the
// threshold) and checks it matches a serial reference exactly.
func TestMatMulParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(80, 90).Randn(rng, 1)
	b := New(90, 70).Randn(rng, 1)
	c1 := MatMul(a, b)
	// Serial reference computing the kernel's exact FMA chains (float.go).
	ref := New(80, 70)
	for i := 0; i < 80; i++ {
		for k := 0; k < 90; k++ {
			av := a.At(i, k)
			for j := 0; j < 70; j++ {
				ref.Data[i*70+j] = math.FMA(av, b.At(k, j), ref.Data[i*70+j])
			}
		}
	}
	for i := range ref.Data {
		if c1.Data[i] != ref.Data[i] {
			t.Fatalf("parallel result differs from serial at %d", i)
		}
	}
	c2 := MatMul(a, b)
	for i := range c1.Data {
		if c1.Data[i] != c2.Data[i] {
			t.Fatal("repeated MatMul not bit-identical")
		}
	}
}

func TestParallelForCoversAll(t *testing.T) {
	seen := make([]int, 1000)
	ParallelFor(1000, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d visited %d times", i, n)
		}
	}
	ParallelFor(0, func(lo, hi int) {
		if lo != hi {
			t.Error("nonempty range for n=0")
		}
	})
}

func TestRowSoftmax(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	RowSoftmax(m)
	for i := 0; i < 2; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			v := m.At(i, j)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax value out of range: %g", v)
			}
			sum += v
		}
		if !almost(sum, 1) {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
	if !(m.At(0, 2) > m.At(0, 1) && m.At(0, 1) > m.At(0, 0)) {
		t.Error("softmax not monotone")
	}
	// Large-magnitude row must not produce NaN (stabilization).
	if math.IsNaN(m.At(1, 0)) {
		t.Error("softmax overflowed")
	}
}

func TestSoftmaxVecProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v = append(v, math.Mod(x, 50))
		}
		out := SoftmaxVec(v)
		sum := 0.0
		for _, p := range out {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAxpy(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("dot = %g", Dot(a, b))
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	want := []float64{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("axpy = %v", y)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestZeroScaleAdd(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{1, 1, 1})
	m.AddInPlace(b)
	if m.Data[2] != 4 {
		t.Error("AddInPlace wrong")
	}
	m.ScaleInPlace(2)
	if m.Data[0] != 4 {
		t.Error("ScaleInPlace wrong")
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestRandnSeeded(t *testing.T) {
	a := New(4, 4).Randn(rand.New(rand.NewSource(7)), 0.5)
	b := New(4, 4).Randn(rand.New(rand.NewSource(7)), 0.5)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Randn not deterministic under equal seeds")
		}
	}
	if a.Norm2() == 0 {
		t.Error("Randn produced all zeros")
	}
}

// Property: matrix multiplication is associative, (A·B)·C ≈ A·(B·C).
func TestMatMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		m, k, n, p := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := New(m, k).Randn(rng, 1)
		b := New(k, n).Randn(rng, 1)
		c := New(n, p).Randn(rng, 1)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-8 {
				t.Fatalf("associativity violated at %d: %g vs %g", i, left.Data[i], right.Data[i])
			}
		}
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(64, 64).Randn(rng, 1)
	y := New(64, 64).Randn(rng, 1)
	out := New(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(128, 128).Randn(rng, 1)
	y := New(128, 128).Randn(rng, 1)
	out := New(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}
