package dataset

import (
	"math"
	"testing"

	"pragformer/internal/corpus"
)

var c = corpus.Generate(corpus.Config{Seed: 5, Total: 1000})

func TestDirectiveSplitSizes(t *testing.T) {
	s := Directive(c, Options{Seed: 1})
	tr, va, te := s.Sizes()
	if tr+va+te != len(c.Records) {
		t.Fatalf("splits sum to %d, want %d", tr+va+te, len(c.Records))
	}
	if math.Abs(float64(tr)/float64(len(c.Records))-0.8) > 0.02 {
		t.Errorf("train share = %.3f, want ≈ 0.8", float64(tr)/float64(len(c.Records)))
	}
	if va == 0 || te == 0 {
		t.Error("empty validation or test split")
	}
}

func TestDirectiveStratified(t *testing.T) {
	s := Directive(c, Options{Seed: 1})
	whole := PositiveFraction(append(append([]Instance{}, s.Train...), append(s.Valid, s.Test...)...))
	for name, part := range map[string][]Instance{"train": s.Train, "valid": s.Valid, "test": s.Test} {
		if f := PositiveFraction(part); math.Abs(f-whole) > 0.05 {
			t.Errorf("%s positive fraction %.3f differs from corpus %.3f", name, f, whole)
		}
	}
}

func TestNoLeakageAcrossSplits(t *testing.T) {
	s := Directive(c, Options{Seed: 1})
	seen := map[int]string{}
	check := func(name string, ins []Instance) {
		for _, in := range ins {
			if prev, ok := seen[in.Rec.ID]; ok {
				t.Fatalf("record %d appears in both %s and %s", in.Rec.ID, prev, name)
			}
			seen[in.Rec.ID] = name
		}
	}
	check("train", s.Train)
	check("valid", s.Valid)
	check("test", s.Test)
}

func TestDeterministicSplits(t *testing.T) {
	a := Directive(c, Options{Seed: 9})
	b := Directive(c, Options{Seed: 9})
	for i := range a.Train {
		if a.Train[i].Rec.ID != b.Train[i].Rec.ID {
			t.Fatal("same seed produced different splits")
		}
	}
	d := Directive(c, Options{Seed: 10})
	diff := 0
	for i := range a.Train {
		if a.Train[i].Rec.ID != d.Train[i].Rec.ID {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical order")
	}
}

func TestClausePrivate(t *testing.T) {
	s := Clause(c, TaskPrivate, Options{Seed: 1})
	tr, va, te := s.Sizes()
	if tr+va+te != len(c.Positives()) {
		t.Fatalf("clause dataset covers %d, want %d positives", tr+va+te, len(c.Positives()))
	}
	for _, in := range s.Train {
		if !in.Rec.HasOMP() {
			t.Fatal("clause dataset contains a record without directive")
		}
		if in.Label != in.Rec.NeedsPrivate() {
			t.Fatal("label mismatch")
		}
	}
}

func TestClauseReductionBalanced(t *testing.T) {
	s := Clause(c, TaskReduction, Options{Seed: 1, Balance: true})
	all := append(append([]Instance{}, s.Train...), append(s.Valid, s.Test...)...)
	f := PositiveFraction(all)
	if math.Abs(f-0.5) > 0.02 {
		t.Errorf("balanced fraction = %.3f, want 0.5", f)
	}
}

func TestClausePanicsOnDirective(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Clause(c, TaskDirective, Options{})
}

func TestTaskString(t *testing.T) {
	if TaskDirective.String() != "directive" || TaskPrivate.String() != "private" || TaskReduction.String() != "reduction" {
		t.Error("task names wrong")
	}
}

func TestPositiveFractionEmpty(t *testing.T) {
	if PositiveFraction(nil) != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestPaperScaleSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale corpus generation")
	}
	// At the paper's corpus size the Table 5 numbers should be close.
	big := corpus.Generate(corpus.Config{Seed: 1, Total: 4000})
	s := Directive(big, Options{Seed: 1})
	tr, va, te := s.Sizes()
	if tr+va+te != 4000 {
		t.Fatalf("sum = %d", tr+va+te)
	}
	cs := Clause(big, TaskPrivate, Options{Seed: 1})
	ctr, cva, cte := cs.Sizes()
	if ctr+cva+cte != len(big.Positives()) {
		t.Fatalf("clause sum = %d want %d", ctr+cva+cte, len(big.Positives()))
	}
	if float64(cva) < 0.08*float64(ctr) {
		t.Errorf("valid/train ratio off: %d vs %d", cva, ctr)
	}
}
