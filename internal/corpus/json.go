package corpus

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pragformer/internal/ckpt"
	"pragformer/internal/pragma"
)

// recordJSON is the on-disk record format: the directive is stored in its
// canonical pragma spelling, mirroring the paper's (code.c, pragma.c) pairs.
type recordJSON struct {
	ID       int    `json:"id"`
	Code     string `json:"code"`
	Pragma   string `json:"pragma,omitempty"`
	Domain   int    `json:"domain"`
	Template string `json:"template,omitempty"`
	Lines    int    `json:"lines"`
}

// Save writes the corpus as JSON lines.
func (c *Corpus) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range c.Records {
		rj := recordJSON{ID: r.ID, Code: r.Code, Domain: int(r.Domain), Template: r.Template, Lines: r.Lines}
		if r.Directive != nil {
			rj.Pragma = r.Directive.String()
		}
		if err := enc.Encode(rj); err != nil {
			return err
		}
	}
	return nil
}

// SaveFile writes the corpus to a file path atomically (temp file +
// rename), propagating close errors like every artifact writer in the
// repo.
func (c *Corpus) SaveFile(path string) error {
	return ckpt.WriteFileAtomic(path, c.Save)
}

// Load reads a corpus written by Save.
func Load(r io.Reader) (*Corpus, error) {
	dec := json.NewDecoder(r)
	c := &Corpus{}
	for {
		var rj recordJSON
		if err := dec.Decode(&rj); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("corpus: decode record %d: %w", len(c.Records), err)
		}
		rec := &Record{ID: rj.ID, Code: rj.Code, Domain: Domain(rj.Domain), Template: rj.Template, Lines: rj.Lines}
		if rj.Pragma != "" {
			d, err := pragma.Parse(rj.Pragma)
			if err != nil {
				return nil, fmt.Errorf("corpus: record %d pragma: %w", rj.ID, err)
			}
			rec.Directive = d
		}
		c.Records = append(c.Records, rec)
	}
	return c, nil
}

// LoadFile reads a corpus from a file path.
func LoadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
