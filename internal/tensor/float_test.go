package tensor

import (
	"math"
	"math/rand"
	"os"
	"testing"
	"time"
)

// refMatMulBias is a naive, unfused reference: plain mul-then-add sums (no
// FMA), bias added at the end, ReLU as v<=0→0. Kernel outputs must match it
// to tight tolerance but not bit-exactly (the kernels fuse rounding steps).
func refMatMulBias(a, b *Matrix, bias []float64, relu bool) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			if bias != nil {
				s += bias[j]
			}
			if relu && s <= 0 {
				s = 0
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func assertClose(t *testing.T, got, want *Matrix, tol float64, what string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		w := want.Data[i]
		if math.Abs(v-w) > tol*(1+math.Abs(w)) {
			t.Fatalf("%s: element %d: got %v, want %v", what, i, v, w)
		}
	}
}

// floatKernelShapes exercises every column-tile width (16/8/4/scalar tail)
// and k-tail of both float kernels, plus degenerate dims.
var floatKernelShapes = [][3]int{
	{1, 1, 1}, {2, 3, 5}, {3, 4, 16}, {5, 7, 17}, {4, 8, 20},
	{2, 5, 31}, {6, 16, 32}, {3, 33, 37}, {1, 64, 3}, {9, 10, 64},
	{70, 48, 66}, {2, 0, 4}, {0, 3, 4}, {3, 4, 0},
}

func TestMatMulBiasVariantsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range floatKernelShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k).Randn(rng, 1)
		b := New(k, n).Randn(rng, 1)
		bias := make([]float64, n)
		for j := range bias {
			bias[j] = rng.NormFloat64()
		}

		got := New(m, n)
		MatMulInto(got, a, b)
		assertClose(t, got, refMatMulBias(a, b, nil, false), 1e-12, "MatMulInto")

		MatMulBiasInto(got, a, b, bias)
		assertClose(t, got, refMatMulBias(a, b, bias, false), 1e-12, "MatMulBiasInto")

		MatMulBiasReLUInto(got, a, b, bias)
		assertClose(t, got, refMatMulBias(a, b, bias, true), 1e-12, "MatMulBiasReLUInto")

		// BT orientation: out = a·bᵀ with b stored n×k.
		bt := New(n, k)
		for j := 0; j < n; j++ {
			for kk := 0; kk < k; kk++ {
				bt.Set(j, kk, b.At(kk, j))
			}
		}
		MatMulBTInto(got, a, bt)
		assertClose(t, got, refMatMulBias(a, b, nil, false), 1e-12, "MatMulBTInto")
	}
}

// TestFloatKernelScalarSIMDAgree pins the AVX2 float kernels bit-exactly to
// the portable math.FMA fallbacks (the contract in float.go) across shapes
// that exercise every tile width and tail, with and without the fused
// bias/ReLU epilogues.
func TestFloatKernelScalarSIMDAgree(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels installed on this platform")
	}
	defer SetSIMD(true)
	rng := rand.New(rand.NewSource(13))
	for _, sh := range floatKernelShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k).Randn(rng, 1)
		b := New(k, n).Randn(rng, 1)
		bt := New(n, k).Randn(rng, 1)
		bias := make([]float64, n)
		for j := range bias {
			bias[j] = rng.NormFloat64() * 0.01 // small bias → many near-zero pre-ReLU values
		}

		runs := map[string]func(out *Matrix){
			"MatMulInto":         func(out *Matrix) { MatMulInto(out, a, b) },
			"MatMulBiasInto":     func(out *Matrix) { MatMulBiasInto(out, a, b, bias) },
			"MatMulBiasReLUInto": func(out *Matrix) { MatMulBiasReLUInto(out, a, b, bias) },
			"MatMulBTInto":       func(out *Matrix) { MatMulBTInto(out, a, bt) },
			"MatMulATInto": func(out *Matrix) { MatMulATInto(out, transposeOf(a), b) },
		}
		for name, run := range runs {
			simd := New(m, n)
			SetSIMD(true)
			run(simd)
			scalar := New(m, n)
			SetSIMD(false)
			run(scalar)
			SetSIMD(true)
			for i := range simd.Data {
				if simd.Data[i] != scalar.Data[i] || math.Signbit(simd.Data[i]) != math.Signbit(scalar.Data[i]) {
					t.Fatalf("%s shape %v: element %d: simd %v != scalar %v (bit-identity contract)",
						name, sh, i, simd.Data[i], scalar.Data[i])
				}
			}
		}
	}
}

// TestNormScaleScalarSIMDAgree pins the layer-norm scale-shift kernel
// bit-exactly to the scalar loop across widths exercising the 4-lane tail,
// including denormal-ish small and large magnitudes and negative zeros.
func TestNormScaleScalarSIMDAgree(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels installed on this platform")
	}
	defer SetSIMD(true)
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 31, 32, 33, 64} {
		src := make([]float64, n)
		gamma := make([]float64, n)
		beta := make([]float64, n)
		for j := range src {
			src[j] = rng.NormFloat64() * 3
			gamma[j] = rng.NormFloat64()
			beta[j] = rng.NormFloat64() * 0.1
		}
		if n > 1 {
			src[1] = math.Copysign(0, -1)
		}
		mean := rng.NormFloat64()
		inv := rng.Float64() + 0.5

		simd := make([]float64, n)
		SetSIMD(true)
		NormScaleInto(simd, src, mean, inv, gamma, beta)
		scalar := make([]float64, n)
		SetSIMD(false)
		NormScaleInto(scalar, src, mean, inv, gamma, beta)
		SetSIMD(true)

		for j := range simd {
			if simd[j] != scalar[j] || math.Signbit(simd[j]) != math.Signbit(scalar[j]) {
				t.Fatalf("n=%d: element %d: simd %v != scalar %v (bit-identity contract)",
					n, j, simd[j], scalar[j])
			}
		}
	}
}

// BenchmarkMatMulAVX2 measures the float64 AVX2 kernel at the 128³ shape
// shared with BenchmarkMatMul128/BenchmarkMatMulInt8 (CI bench smoke target).
func BenchmarkMatMulAVX2(b *testing.B) {
	if !SIMDAvailable() {
		b.Skip("no SIMD kernels installed on this platform")
	}
	SetSIMD(true)
	rng := rand.New(rand.NewSource(1))
	x := New(128, 128).Randn(rng, 1)
	y := New(128, 128).Randn(rng, 1)
	out := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}

// BenchmarkMatMulScalar is the same shape through the portable scalar
// kernels — the denominator of the SIMD speedup ratio.
func BenchmarkMatMulScalar(b *testing.B) {
	SetSIMD(false)
	defer SetSIMD(true)
	rng := rand.New(rand.NewSource(1))
	x := New(128, 128).Randn(rng, 1)
	y := New(128, 128).Randn(rng, 1)
	out := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}

// TestSIMDSpeedupGate is the machine-relative performance gate: with
// PRAGFORMER_BENCH_GATE=1 it times the scalar and AVX2 float64 kernels on
// the same 128³ matmul and fails unless SIMD is ≥2x. A ratio of two runs
// on the same host at the same moment, with minimums over repeats, stays
// meaningful on noisy shared runners where absolute ns/op gates would not.
func TestSIMDSpeedupGate(t *testing.T) {
	if os.Getenv("PRAGFORMER_BENCH_GATE") == "" {
		t.Skip("set PRAGFORMER_BENCH_GATE=1 to run the SIMD speedup gate")
	}
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels installed on this platform")
	}
	defer SetSIMD(true)
	rng := rand.New(rand.NewSource(1))
	x := New(128, 128).Randn(rng, 1)
	y := New(128, 128).Randn(rng, 1)
	out := New(128, 128)

	// Minimum of interleaved timed sections: transient host load slows one
	// section, not the best observation of each kernel.
	const reps, iters = 5, 20
	minScalar, minSIMD := math.MaxFloat64, math.MaxFloat64
	for r := 0; r < reps; r++ {
		SetSIMD(false)
		s := timeSection(iters, func() { MatMulInto(out, x, y) })
		SetSIMD(true)
		v := timeSection(iters, func() { MatMulInto(out, x, y) })
		minScalar = math.Min(minScalar, s)
		minSIMD = math.Min(minSIMD, v)
	}
	ratio := minScalar / minSIMD
	t.Logf("scalar %.0f ns/op, simd %.0f ns/op, speedup %.2fx", minScalar, minSIMD, ratio)
	if ratio < 2 {
		t.Errorf("SIMD float64 matmul only %.2fx scalar, want >= 2x", ratio)
	}
}

// timeSection returns ns per call of fn, minimized over nothing — callers
// repeat and take minimums.
func timeSection(iters int, fn func()) float64 {
	fn() // warm caches and kernel dispatch before timing
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func transposeOf(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// TestMatMulBiasSeedEqualsChain documents the fusion semantics: the bias
// seeds the FMA accumulator (init + Σ fma) rather than being added after
// the sum, so fused output equals the scalar chain started at bias[j].
func TestMatMulBiasSeedEqualsChain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, k, n := 3, 9, 6
	a := New(m, k).Randn(rng, 1)
	b := New(k, n).Randn(rng, 1)
	bias := make([]float64, n)
	for j := range bias {
		bias[j] = rng.NormFloat64()
	}
	got := New(m, n)
	MatMulBiasInto(got, a, b, bias)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want := bias[j]
			for kk := 0; kk < k; kk++ {
				want = math.FMA(a.At(i, kk), b.At(kk, j), want)
			}
			if got.At(i, j) != want {
				t.Fatalf("(%d,%d): got %v, want chained %v", i, j, got.At(i, j), want)
			}
		}
	}
}

// TestReLUEpilogueEdgeCases pins the VMAXPD store semantics: exact zeros
// stay +0 and negative zeros normalize to +0.
func TestReLUEpilogueEdgeCases(t *testing.T) {
	// 1×1 · 1×n with a = 0 and bias = {-0, +0, -1, 2}: products are all +0,
	// so the accumulator is exactly the bias; ReLU must emit {+0, +0, +0, 2}.
	a := FromSlice(1, 1, []float64{0})
	b := FromSlice(1, 4, []float64{1, 1, 1, 1})
	bias := []float64{math.Copysign(0, -1), 0, -1, 2}
	out := New(1, 4)
	MatMulBiasReLUInto(out, a, b, bias)
	want := []float64{0, 0, 0, 2}
	for j, w := range want {
		v := out.At(0, j)
		if v != w || math.Signbit(v) {
			t.Fatalf("relu[%d] = %v (signbit %v), want +%v", j, v, math.Signbit(v), w)
		}
	}
}

// TestMatMulKZeroBiasReLU pins the degenerate inner dimension: out must be
// exactly relu(bias) rows.
func TestMatMulKZeroBiasReLU(t *testing.T) {
	a := New(2, 0)
	b := New(0, 3)
	bias := []float64{-1, 0.5, 3}
	out := New(2, 3)
	MatMulBiasReLUInto(out, a, b, bias)
	want := []float64{0, 0.5, 3, 0, 0.5, 3}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("out = %v, want %v", out.Data, want)
		}
	}
}
