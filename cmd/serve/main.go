// Command serve runs the PragFormer advisor as an HTTP JSON service over
// the micro-batching inference engine in internal/serve.
//
// Models are either loaded from files written by `pragformer train` or
// `pragformer quantize` (-directive/-private/-reduction plus -vocab; PFQNT
// artifacts are detected by magic) or, when -directive is empty, trained at
// startup on a generated Open-OMP corpus — the zero-setup demo mode.
//
// -backend selects the compute backend: float64 (the training-grade
// reference), int8 (quantizes float artifacts at load time and on every
// hot reload), or empty to serve each artifact as loaded. The active
// backend and model generation are reported by GET /healthz.
//
// When models come from files, a retrained artifact can be shipped to the
// running server with zero downtime: POST /reload (or send SIGHUP) re-reads
// the model paths and hot-swaps the bundle without dropping in-flight or
// queued requests. Combined with the atomic artifact writes of `pragformer
// train`, the server never observes a torn model file.
//
// Endpoints:
//
//	POST /predict {"code": "..."} | {"codes": [...]} | {"ids": [[...]]}
//	POST /suggest {"code": "..."} | {"codes": [...]}
//	POST /scan    {"files": [{"path": "a.c", "source": "..."}], "format": "json"|"sarif"}
//	POST /reload  (hot-swap models from the -directive/... paths)
//	GET  /healthz (liveness)
//	GET  /readyz  (readiness: 503 while draining or mid-reload)
//	GET  /statz   (queue depth, in-flight, hit rates — the router's admission signal)
//
// On SIGTERM/SIGINT the server flips /readyz to draining, then shuts down
// gracefully under the -drain-timeout deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pragformer/internal/advisor"
	"pragformer/internal/core"
	"pragformer/internal/serve"
	"pragformer/internal/tokenize"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		directive = flag.String("directive", "", "directive model path (empty: self-train a demo model)")
		private   = flag.String("private", "", "private-clause model path (optional)")
		reduction = flag.String("reduction", "", "reduction-clause model path (optional)")
		vocabPath = flag.String("vocab", "", "vocabulary path (required with -directive)")
		maxBatch  = flag.Int("max-batch", 16, "max coalesced batch size")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "max time to hold a batch open")
		replicas  = flag.Int("replicas", 1, "model replicas (concurrent batches in flight)")
		backend   = flag.String("backend", "", "compute backend: float64|int8 (empty serves artifacts as loaded; int8 quantizes float artifacts at load and on every reload)")
		cacheSize = flag.Int("cache", 1024, "LRU result cache entries (negative disables)")
		queueLen  = flag.Int("queue", 0, "batcher queue depth (0 = max-batch * replicas)")
		shed      = flag.Bool("shed", false, "shed load with 429 + Retry-After when the queue saturates instead of blocking")
		drainTO   = flag.Duration("drain-timeout", 5*time.Second, "graceful shutdown deadline for in-flight requests")
		noCompar  = flag.Bool("no-compar", false, "skip S2S corroboration in /suggest")
		seed      = flag.Int64("seed", 1, "seed for demo training and replica cloning")
		total     = flag.Int("train-total", 1000, "demo mode: generated corpus size")
		epochs    = flag.Int("train-epochs", 5, "demo mode: training epochs per classifier")
		workers   = flag.Int("train-workers", 1, "demo mode: data-parallel training workers")
		trace     = flag.Bool("trace", false, "trace every request (spans in responses + one structured log line each); without it only requests carrying X-PF-Trace are traced")
		pprofOn   = flag.Bool("pprof", false, "expose /debug/pprof profiling endpoints (off by default)")
	)
	flag.Parse()

	models, err := buildModels(*directive, *private, *reduction, *vocabPath,
		*seed, *total, *epochs, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	models.NoCorroborate = *noCompar

	// File-backed models can be hot-reloaded (POST /reload, SIGHUP) by
	// re-reading the same paths; demo-trained models have no source to
	// reload from.
	var source func() (*advisor.Models, error)
	if *directive != "" {
		source = func() (*advisor.Models, error) {
			ms, err := buildModels(*directive, *private, *reduction, *vocabPath,
				*seed, *total, *epochs, *workers)
			if err != nil {
				return nil, err
			}
			ms.NoCorroborate = *noCompar
			return ms, nil
		}
	}

	var logger *slog.Logger
	if *trace {
		logger = slog.Default()
	}
	engine, err := serve.New(models, serve.Config{
		MaxBatch: *maxBatch, MaxWait: *maxWait, Replicas: *replicas,
		CacheSize: *cacheSize, QueueDepth: *queueLen, Shed: *shed,
		Seed: *seed, Source: source, Backend: *backend,
		Trace: *trace, Logger: logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	defer engine.Close()

	handler := engine.Handler()
	if *pprofOn {
		handler = withPprof(handler)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("serving on %s (backend %s, max-batch %d, max-wait %s, replicas %d, cache %d)\n",
		*addr, engine.Stats().Backend, *maxBatch, *maxWait, *replicas, *cacheSize)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case err := <-errCh:
			if !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "serve:", err)
				os.Exit(1)
			}
			break loop
		case s := <-sig:
			if s == syscall.SIGHUP {
				if err := engine.ReloadFromSource(); err != nil {
					fmt.Fprintln(os.Stderr, "serve: reload:", err)
				} else {
					fmt.Println("SIGHUP: models hot-reloaded")
				}
				continue
			}
			// Flip readiness first so a health-gated router stops routing
			// here, then drain under the -drain-timeout deadline: a stuck
			// batch cannot hang shutdown forever.
			fmt.Printf("\n%s: draining (deadline %s)...\n", s, *drainTO)
			engine.SetDraining(true)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
			}
			break loop
		}
	}
	st := engine.Stats()
	fmt.Printf("served %d predicts (%.1f avg batch, %d cache hits), %d suggests (%.1f avg batch, %d cache hits)\n",
		st.Predict.Requests, st.Predict.AvgBatch(), st.Predict.CacheHits,
		st.Suggest.Requests, st.Suggest.AvgBatch(), st.Suggest.CacheHits)
}

// withPprof overlays the net/http/pprof handlers on an API handler — only
// when -pprof was given, so profiling is never exposed by accident.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}

// buildModels loads classifier files, or trains demo models when no
// directive path is given.
func buildModels(directive, private, reduction, vocabPath string,
	seed int64, total, epochs, workers int) (*advisor.Models, error) {
	if directive == "" {
		return trainDemo(seed, total, epochs, workers)
	}
	if vocabPath == "" {
		return nil, fmt.Errorf("-vocab is required with -directive")
	}
	v, err := tokenize.LoadVocabFile(vocabPath)
	if err != nil {
		return nil, err
	}
	m := &advisor.Models{Vocab: v}
	if m.Directive, err = core.LoadClassifierFile(directive); err != nil {
		return nil, err
	}
	m.MaxLen = m.Directive.MaxSeqLen()
	if private != "" {
		if m.Private, err = core.LoadClassifierFile(private); err != nil {
			return nil, err
		}
	}
	if reduction != "" {
		if m.Reduction, err = core.LoadClassifierFile(reduction); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// trainDemo fits the three classifiers on a generated corpus through the
// shared advisor.TrainDemo recipe (also behind `pragformer scan`'s demo
// mode), sharing one vocabulary.
func trainDemo(seed int64, total, epochs, workers int) (*advisor.Models, error) {
	fmt.Printf("no -directive model given; training demo classifiers (corpus %d, %d epochs)\n", total, epochs)
	return advisor.TrainDemo(advisor.DemoConfig{
		Seed: seed, Total: total, Epochs: epochs, Workers: workers,
		Progress: func(s string) { fmt.Println(" ", s) },
	})
}
