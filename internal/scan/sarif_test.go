package scan

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// sarif mirrors the 2.1.0 shape the report must produce; decoding with
// DisallowUnknownFields is deliberately NOT used — extra properties are
// legal SARIF — but every asserted field is required by the spec.
type sarifShape struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Invocations []struct {
			ExecutionSuccessful bool `json:"executionSuccessful"`
			Notifications       []struct {
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
			} `json:"toolExecutionNotifications"`
		} `json:"invocations"`
		Results []struct {
			RuleID  string `json:"ruleId"`
			Level   string `json:"level"`
			Message struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
			PartialFingerprints map[string]string `json:"partialFingerprints"`
		} `json:"results"`
	} `json:"runs"`
}

func TestSARIFShape(t *testing.T) {
	rep, err := Dir(context.Background(), fixtureTree, Config{Workers: 2}, &stubSuggester{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.SARIF()
	if err != nil {
		t.Fatal(err)
	}
	var log sarifShape
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("SARIF output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema != sarifSchema {
		t.Errorf("$schema = %q", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "pragformer" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s missing shortDescription", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	if !ruleIDs[RuleParallelize] || !ruleIDs[RuleAnnotated] || !ruleIDs[RuleDisagree] {
		t.Errorf("rules = %v", ruleIDs)
	}

	// Fixture: the stub parallelizes the six "+=" loops (sum + histogram +
	// three matmul levels + the recur.c disagreement), and axpy surfaces as
	// an annotated note — 7 results.
	if len(run.Results) != 7 {
		t.Fatalf("results = %d, want 7", len(run.Results))
	}
	annotated := 0
	disagree := 0
	for _, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result rule %q not declared by the driver", res.RuleID)
		}
		if res.Message.Text == "" {
			t.Error("result missing message text")
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result locations = %d", len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" {
			t.Error("result missing artifact URI")
		}
		if loc.Region.StartLine < 1 || loc.Region.StartColumn < 1 {
			t.Errorf("result region = %+v", loc.Region)
		}
		if res.PartialFingerprints["pragformer/loopHash"] == "" {
			t.Error("result missing loop-hash fingerprint")
		}
		if res.RuleID == RuleAnnotated {
			annotated++
		}
		if res.RuleID == RuleDisagree {
			disagree++
			if res.Level != "warning" {
				t.Errorf("PF1003 level = %q, want warning", res.Level)
			}
		}
	}
	if annotated != 1 {
		t.Errorf("annotated results = %d, want 1", annotated)
	}
	if disagree != 1 {
		t.Errorf("disagree results = %d, want 1 (the recur.c loop)", disagree)
	}

	// The broken fixture file and partial.c's malformed function both
	// surface as invocation notifications.
	if len(run.Invocations) != 1 || !run.Invocations[0].ExecutionSuccessful {
		t.Fatalf("invocations = %+v", run.Invocations)
	}
	notes := run.Invocations[0].Notifications
	if len(notes) != 2 {
		t.Fatalf("notifications = %+v", notes)
	}
	for _, note := range notes {
		if note.Level != "warning" || note.Message.Text == "" {
			t.Errorf("notification = %+v", note)
		}
	}
}

// TestSARIFBackendStable pins the claim that SARIF output carries nothing
// run-dependent: two reports that agree on labels but differ in
// probabilities and cache temperature render identical SARIF.
func TestSARIFBackendStable(t *testing.T) {
	a, err := Dir(context.Background(), fixtureTree, Config{Workers: 1}, &stubSuggester{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dir(context.Background(), fixtureTree, Config{Workers: 8}, &stubSuggester{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Loops {
		if b.Loops[i].Suggestion != nil {
			b.Loops[i].Suggestion.Probability += 0.01 // simulate backend drift
		}
	}
	sa, _ := a.SARIF()
	sb, _ := b.SARIF()
	if string(sa) != string(sb) {
		t.Error("SARIF output depends on probabilities or worker count")
	}
}

// TestSARIFDisagreeProperties: PF1003 results carry the dependence witness
// and the top LIME attributions in both the message and the properties bag.
func TestSARIFDisagreeProperties(t *testing.T) {
	rep, err := Dir(context.Background(), fixtureTree, Config{}, &stubSuggester{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.SARIF()
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []struct {
				RuleID     string `json:"ruleId"`
				Message    struct{ Text string }
				Properties struct {
					Tier         string        `json:"tier"`
					Witness      []string      `json:"witness"`
					Attributions []Attribution `json:"attributions"`
				} `json:"properties"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, res := range log.Runs[0].Results {
		if res.RuleID != RuleDisagree {
			continue
		}
		found = true
		if res.Properties.Tier != "disagree" {
			t.Errorf("properties.tier = %q", res.Properties.Tier)
		}
		if len(res.Properties.Witness) == 0 {
			t.Error("PF1003 result missing witness property")
		}
		if len(res.Properties.Attributions) == 0 || res.Properties.Attributions[0].Token == "" {
			t.Errorf("PF1003 attributions = %+v", res.Properties.Attributions)
		}
		if !strings.Contains(res.Message.Text, "dependence analysis disagrees") ||
			!strings.Contains(res.Message.Text, "influential tokens") {
			t.Errorf("PF1003 message = %q", res.Message.Text)
		}
	}
	if !found {
		t.Fatal("no PF1003 result in fixture SARIF")
	}
}
