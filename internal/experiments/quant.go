package experiments

import (
	"fmt"
	"io"
	"time"

	"pragformer/internal/core"
	"pragformer/internal/dataset"
	"pragformer/internal/metrics"
	"pragformer/internal/tokenize"
)

// The quantization study is serving infrastructure rather than a paper
// artifact: it quantizes the trained Text-representation directive
// classifier to the int8 backend (core.Quantize) and reports, on the
// held-out test split, how closely the cheap backend tracks the float
// reference — label agreement, both accuracies — plus the measured batched
// inference speedup. The agreement column is the deployment gate: the
// serving layer only flips an engine to -backend int8 because this number
// says the answers stay the same.

// QuantRow compares the two backends on one task.
type QuantRow struct {
	Task      dataset.Task
	Examples  int
	Agreement float64 // fraction of test predictions where the labels agree
	FloatAcc  float64
	QuantAcc  float64
	FloatSec  float64 // batched inference over the test split, float64
	QuantSec  float64 // same workload, int8
	Speedup   float64
}

// QuantTable reports the backend comparison.
type QuantTable struct {
	Rows []QuantRow
}

// RunQuant evaluates the directive task on both backends.
func (p *Pipeline) RunQuant() QuantTable {
	repr := tokenize.Text
	task := dataset.TaskDirective
	t := p.Model(task, repr)
	q, err := core.Quantize(t.Model)
	if err != nil {
		panic(err) // quantizing a just-trained model cannot fail
	}

	split := p.splitFor(task)
	ins := split.Test
	v := p.Vocab(repr)
	ids := make([][]int, len(ins))
	for i, in := range ins {
		ids[i] = v.Encode(p.Tokens(in.Rec, repr), p.P.MaxLen)
	}

	p.progress("quant study: %d test examples on both backends", len(ins))
	start := time.Now()
	floatLabels := predictLabels(t.Model, ids)
	floatSec := time.Since(start).Seconds()
	start = time.Now()
	quantLabels := predictLabels(q, ids)
	quantSec := time.Since(start).Seconds()

	row := QuantRow{Task: task, Examples: len(ins), FloatSec: floatSec, QuantSec: quantSec}
	if quantSec > 0 {
		row.Speedup = floatSec / quantSec
	}
	var agree int
	var cf, cq metrics.Confusion
	for i, in := range ins {
		if floatLabels[i] == quantLabels[i] {
			agree++
		}
		cf.Add(floatLabels[i], in.Label)
		cq.Add(quantLabels[i], in.Label)
	}
	if len(ins) > 0 {
		row.Agreement = float64(agree) / float64(len(ins))
	}
	row.FloatAcc = cf.Accuracy()
	row.QuantAcc = cq.Accuracy()
	return QuantTable{Rows: []QuantRow{row}}
}

// Print renders the table.
func (t QuantTable) Print(w io.Writer) {
	fmt.Fprintln(w, "Quantized inference: int8 backend vs float64 reference (test split)")
	fmt.Fprintf(w, "  %-10s %9s %10s %10s %10s %9s\n",
		"task", "examples", "agreement", "float acc", "int8 acc", "speedup")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "  %-10s %9d %9.1f%% %10.3f %10.3f %8.2fx\n",
			r.Task, r.Examples, 100*r.Agreement, r.FloatAcc, r.QuantAcc, r.Speedup)
	}
}
