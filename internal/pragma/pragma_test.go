package pragma

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, line string) *Directive {
	t.Helper()
	d, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	if d == nil {
		t.Fatalf("Parse(%q): nil directive", line)
	}
	return d
}

func TestParseBasic(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for")
	if !d.ParallelFor || d.HasPrivate() || d.HasReduction() {
		t.Errorf("d = %+v", d)
	}
}

func TestParsePrefixVariants(t *testing.T) {
	for _, line := range []string{
		"#pragma omp parallel for",
		"pragma omp parallel for",
		"omp parallel for",
		"  #pragma   omp   parallel   for  ",
	} {
		d := mustParse(t, line)
		if !d.ParallelFor {
			t.Errorf("%q: not parsed as parallel for", line)
		}
	}
}

func TestParsePrivate(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for private(i, j) private(k)")
	if len(d.Private) != 3 {
		t.Fatalf("private = %v", d.Private)
	}
	if !d.HasPrivate() {
		t.Error("HasPrivate = false")
	}
}

func TestParseReduction(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for reduction(+:sum) reduction(max:m)")
	if len(d.Reductions) != 2 {
		t.Fatalf("reductions = %v", d.Reductions)
	}
	if d.Reductions[0].Op != "+" || d.Reductions[0].Vars[0] != "sum" {
		t.Errorf("first = %v", d.Reductions[0])
	}
	if d.Reductions[1].Op != "max" {
		t.Errorf("second = %v", d.Reductions[1])
	}
}

func TestParseReductionMultiVar(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for reduction(+:a, b, c)")
	if len(d.Reductions) != 1 || len(d.Reductions[0].Vars) != 3 {
		t.Fatalf("reductions = %v", d.Reductions)
	}
}

func TestParseSchedule(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for schedule(dynamic,4)")
	if d.Schedule != ScheduleDynamic || d.Chunk != 4 {
		t.Errorf("schedule = %v chunk = %d", d.Schedule, d.Chunk)
	}
	d = mustParse(t, "#pragma omp parallel for schedule(static)")
	if d.Schedule != ScheduleStatic || d.Chunk != 0 {
		t.Errorf("schedule = %v chunk = %d", d.Schedule, d.Chunk)
	}
	d = mustParse(t, "#pragma omp parallel for schedule(guided,8)")
	if d.Schedule != ScheduleGuided || d.Chunk != 8 {
		t.Errorf("schedule = %v chunk = %d", d.Schedule, d.Chunk)
	}
}

func TestParseCollapseNowait(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for collapse(2) nowait")
	if d.Collapse != 2 || !d.NoWait {
		t.Errorf("d = %+v", d)
	}
}

func TestParseFirstPrivateShared(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for firstprivate(t0) shared(a, b)")
	if len(d.FirstPrivate) != 1 || len(d.Shared) != 2 {
		t.Errorf("d = %+v", d)
	}
	if !d.HasPrivate() {
		t.Error("firstprivate should count as private for RQ2")
	}
}

func TestParseDefaultAndNumThreads(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for default(shared) num_threads(8)")
	if !d.ParallelFor {
		t.Error("not parsed")
	}
}

func TestNonLoopOmpPragmasExcluded(t *testing.T) {
	for _, line := range []string{
		"#pragma omp critical",
		"#pragma omp barrier",
		"#pragma omp parallel",
		"#pragma omp task",
		"#pragma omp single",
	} {
		d, err := Parse(line)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", line, err)
		}
		if d != nil {
			t.Errorf("Parse(%q) = %v, want nil (excluded)", line, d)
		}
	}
}

func TestNonOmpPragmaIsError(t *testing.T) {
	if _, err := Parse("#pragma once"); err == nil {
		t.Error("expected error for non-omp pragma")
	}
	if _, err := Parse("#pragma GCC ivdep"); err == nil {
		t.Error("expected error for GCC pragma")
	}
}

func TestMalformedClauses(t *testing.T) {
	bad := []string{
		"#pragma omp parallel for private()",
		"#pragma omp parallel for private(i",
		"#pragma omp parallel for reduction(?:x)",
		"#pragma omp parallel for reduction(+ x)",
		"#pragma omp parallel for schedule(sometimes)",
		"#pragma omp parallel for collapse(two)",
		"#pragma omp parallel for frobnicate(3)",
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q): expected error", line)
		}
	}
}

func TestStringCanonical(t *testing.T) {
	d := &Directive{
		ParallelFor: true,
		Private:     []string{"j", "i"},
		Reductions:  []Reduction{{Op: "+", Vars: []string{"sum"}}},
		Schedule:    ScheduleDynamic,
		Chunk:       4,
	}
	got := d.String()
	want := "#pragma omp parallel for private(i, j) reduction(+:sum) schedule(dynamic,4)"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestNilDirectiveString(t *testing.T) {
	var d *Directive
	if d.String() != "" {
		t.Error("nil directive should print empty")
	}
	if d.HasPrivate() || d.HasReduction() {
		t.Error("nil directive has no clauses")
	}
}

func TestRoundTrip(t *testing.T) {
	lines := []string{
		"#pragma omp parallel for",
		"#pragma omp parallel for private(i, j)",
		"#pragma omp parallel for reduction(+:sum)",
		"#pragma omp parallel for private(j) reduction(*:prod) schedule(dynamic,4)",
		"#pragma omp parallel for firstprivate(t) nowait",
		"#pragma omp parallel for collapse(2) schedule(static)",
		"#pragma omp parallel for reduction(max:m) reduction(min:lo)",
		"#pragma omp parallel for reduction(&&:all_ok)",
	}
	for _, line := range lines {
		d1 := mustParse(t, line)
		d2 := mustParse(t, d1.String())
		if !Equal(d1, d2) {
			t.Errorf("round trip changed %q: %q vs %q", line, d1, d2)
		}
	}
}

func TestEqual(t *testing.T) {
	a := mustParse(t, "#pragma omp parallel for private(i, j)")
	b := mustParse(t, "#pragma omp parallel for private(j) private(i)")
	if !Equal(a, b) {
		t.Error("order-insensitive equality failed")
	}
	c := mustParse(t, "#pragma omp parallel for private(i)")
	if Equal(a, c) {
		t.Error("different clause sets reported equal")
	}
	if !Equal(nil, nil) {
		t.Error("nil == nil")
	}
	if Equal(a, nil) {
		t.Error("a != nil")
	}
}

func TestIsReductionOp(t *testing.T) {
	for _, op := range []string{"+", "*", "-", "&", "|", "^", "&&", "||", "max", "min"} {
		if !IsReductionOp(op) {
			t.Errorf("%q should be valid", op)
		}
	}
	for _, op := range []string{"/", "%", "<<", "foo"} {
		if IsReductionOp(op) {
			t.Errorf("%q should be invalid", op)
		}
	}
}

func TestScheduleKindString(t *testing.T) {
	if ScheduleStatic.String() != "static" || ScheduleDynamic.String() != "dynamic" ||
		ScheduleGuided.String() != "guided" || ScheduleNone.String() != "" {
		t.Error("schedule kind strings wrong")
	}
}

// Property: parsing the canonical string of any well-formed directive
// reproduces an Equal directive.
func TestParsePrintFixpoint(t *testing.T) {
	vars := []string{"i", "j", "k", "sum", "acc", "tmp"}
	ops := []string{"+", "*", "max", "min", "&&"}
	f := func(privMask, redMask uint8, sched uint8, chunk uint8, nowait bool) bool {
		d := &Directive{ParallelFor: true, NoWait: nowait}
		for b := 0; b < len(vars); b++ {
			if privMask&(1<<b) != 0 {
				d.Private = append(d.Private, vars[b])
			}
		}
		if int(redMask)%len(ops) != 0 {
			d.Reductions = []Reduction{{Op: ops[int(redMask)%len(ops)], Vars: []string{"sum"}}}
		}
		d.Schedule = ScheduleKind(sched % 4)
		if d.Schedule != ScheduleNone {
			d.Chunk = int(chunk % 16)
		}
		d2, err := Parse(d.String())
		if err != nil || d2 == nil {
			return false
		}
		return Equal(d, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringStable(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for private(z, a, m) reduction(+:s2, s1)")
	s1 := d.String()
	s2 := d.String()
	if s1 != s2 {
		t.Error("String not deterministic")
	}
	if !strings.Contains(s1, "private(a, m, z)") {
		t.Errorf("variables not sorted: %q", s1)
	}
	if !strings.Contains(s1, "reduction(+:s1, s2)") {
		t.Errorf("reduction vars not sorted: %q", s1)
	}
}
