package dep

import (
	"strings"
	"testing"

	"pragformer/internal/cast"
	"pragformer/internal/cparse"
)

// parseLoop parses source and returns its first for-loop plus any function
// definitions found (bodies for side-effect analysis).
func parseLoop(t *testing.T, src string) (*cast.For, map[string]*cast.FuncDef) {
	t.Helper()
	f, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	funcs := map[string]*cast.FuncDef{}
	var loop *cast.For
	for _, it := range f.Items {
		if fd, ok := it.(*cast.FuncDef); ok {
			funcs[fd.Name] = fd
			continue
		}
		cast.Walk(it, func(n cast.Node) bool {
			if l, ok := n.(*cast.For); ok && loop == nil {
				loop = l
				return false
			}
			return true
		})
	}
	if loop == nil {
		t.Fatalf("no loop in %q", src)
	}
	return loop, funcs
}

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	loop, funcs := parseLoop(t, src)
	return AnalyzeLoop(loop, funcs)
}

func TestParallelizableMap(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) a[i] = b[i] + c[i];")
	if !a.Parallelizable {
		t.Fatalf("not parallelizable: %v", a.Reasons)
	}
	if len(a.Private) != 0 || len(a.Reductions) != 0 {
		t.Errorf("unexpected clauses: %+v", a)
	}
}

func TestInitLoop(t *testing.T) {
	a := analyze(t, "for (i = 0; i <= N; i++) A[i] = i;")
	if !a.Parallelizable {
		t.Fatalf("not parallelizable: %v", a.Reasons)
	}
}

func TestRecurrenceNotParallelizable(t *testing.T) {
	a := analyze(t, "for (i = 1; i < n; i++) a[i] = a[i-1] + 1;")
	if a.Parallelizable {
		t.Fatal("recurrence misclassified as parallel")
	}
	if !reasonContains(a, "carries a loop dependence") {
		t.Errorf("reasons = %v", a.Reasons)
	}
}

func TestForwardShiftNotParallelizable(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n - 1; i++) a[i] = a[i+1] * 2;")
	if a.Parallelizable {
		t.Fatal("anti-dependent shift misclassified as parallel")
	}
}

func TestDisjointShiftSafe(t *testing.T) {
	// Writes a[2i], reads a[2i+1]: distance test non-integer → independent.
	a := analyze(t, "for (i = 0; i < n; i++) a[2*i] = a[2*i+1];")
	if !a.Parallelizable {
		t.Fatalf("disjoint strided access misclassified: %v", a.Reasons)
	}
}

func TestReductionSum(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) sum += x[i] * y[i];")
	if !a.Parallelizable {
		t.Fatalf("not parallelizable: %v", a.Reasons)
	}
	if len(a.Reductions) != 1 || a.Reductions[0].Op != "+" || a.Reductions[0].Vars[0] != "sum" {
		t.Errorf("reductions = %+v", a.Reductions)
	}
}

func TestReductionExplicitForm(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) prod = prod * a[i];")
	if !a.Parallelizable || len(a.Reductions) != 1 || a.Reductions[0].Op != "*" {
		t.Fatalf("a = %+v (%v)", a.Reductions, a.Reasons)
	}
	a = analyze(t, "for (i = 0; i < n; i++) s = a[i] + s;")
	if !a.Parallelizable || len(a.Reductions) != 1 || a.Reductions[0].Op != "+" {
		t.Fatalf("commuted form: %+v (%v)", a.Reductions, a.Reasons)
	}
}

func TestReductionMax(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) m = fmax(m, v[i]);")
	if !a.Parallelizable || len(a.Reductions) != 1 || a.Reductions[0].Op != "max" {
		t.Fatalf("a = %+v (%v)", a.Reductions, a.Reasons)
	}
}

func TestNonAssociativeRecurrence(t *testing.T) {
	// s = s * c + b[i] reads s inside a non-reduction shape: carried.
	a := analyze(t, "for (i = 0; i < n; i++) s = s * c + b[i];")
	if a.Parallelizable {
		t.Fatal("horner recurrence misclassified as parallel")
	}
}

func TestReductionVariableReadElsewhere(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { sum += a[i]; b[i] = sum; }")
	if a.Parallelizable {
		t.Fatal("prefix-sum usage misclassified as parallel")
	}
}

func TestPrivateScalar(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t + 1; }")
	if !a.Parallelizable {
		t.Fatalf("not parallelizable: %v", a.Reasons)
	}
	if len(a.Private) != 1 || a.Private[0] != "t" {
		t.Errorf("private = %v", a.Private)
	}
}

func TestBodyLocalDeclNeedsNoClause(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { double t = a[i] * 2; b[i] = t + 1; }")
	if !a.Parallelizable {
		t.Fatalf("not parallelizable: %v", a.Reasons)
	}
	if len(a.Private) != 0 {
		t.Errorf("body-local got a clause: %v", a.Private)
	}
}

func TestScalarReadBeforeWriteCarried(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { b[i] = t; t = a[i]; }")
	if a.Parallelizable {
		t.Fatal("read-before-write scalar misclassified")
	}
}

func TestInnerLoopVarPrivate(t *testing.T) {
	src := "for (i = 0; i < n; i++) for (j = 0; j < n; j++) x[i] = x[i] + A[i][j] * y[j];"
	a := analyze(t, src)
	if !a.Parallelizable {
		t.Fatalf("matvec not parallelizable: %v", a.Reasons)
	}
	if len(a.Private) != 1 || a.Private[0] != "j" {
		t.Errorf("private = %v", a.Private)
	}
}

func TestInnerLoopDeclNoPrivate(t *testing.T) {
	src := "for (i = 0; i < n; i++) for (int j = 0; j < n; j++) c[i][j] = a[i][j] + b[i][j];"
	a := analyze(t, src)
	if !a.Parallelizable {
		t.Fatalf("not parallelizable: %v", a.Reasons)
	}
	if len(a.Private) != 0 {
		t.Errorf("private = %v", a.Private)
	}
}

func TestMatMulPrivate(t *testing.T) {
	src := "for (i = 0; i < n; i++) for (j = 0; j < n; j++) { s = 0; for (k = 0; k < n; k++) s += A[i][k] * B[k][j]; C[i][j] = s; }"
	a := analyze(t, src)
	if !a.Parallelizable {
		t.Fatalf("matmul not parallelizable: %v", a.Reasons)
	}
	want := map[string]bool{"j": true, "k": true, "s": true}
	for _, p := range a.Private {
		if !want[p] {
			t.Errorf("unexpected private %q", p)
		}
		delete(want, p)
	}
	if len(want) != 0 {
		t.Errorf("missing privates: %v (got %v)", want, a.Private)
	}
}

func TestIONotParallelizable(t *testing.T) {
	a := analyze(t, `for (i = 0; i < n; i++) { fprintf(stderr, "%0.2lf ", x[i]); }`)
	if a.Parallelizable {
		t.Fatal("I/O loop misclassified")
	}
	if !a.HasIO {
		t.Error("HasIO not set")
	}
}

func TestRandNotParallelizable(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) a[i] = rand();")
	if a.Parallelizable || !a.HasIO {
		t.Fatal("rand() loop misclassified")
	}
}

func TestBreakNotParallelizable(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { if (a[i] < 0) break; b[i] = a[i]; }")
	if a.Parallelizable {
		t.Fatal("early-exit loop misclassified")
	}
}

func TestContinueIsFine(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { if (a[i] < 0) continue; b[i] = a[i]; }")
	if !a.Parallelizable {
		t.Fatalf("continue should be fine: %v", a.Reasons)
	}
}

func TestLoopVarMutationNotParallelizable(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { a[i] = 0; i = i + a[i]; }")
	if a.Parallelizable {
		t.Fatal("loop-var mutation misclassified")
	}
}

func TestIndirectWriteNotParallelizable(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) a[idx[i]] = b[i];")
	if a.Parallelizable {
		t.Fatal("indirect write misclassified")
	}
}

func TestIndirectReadIsFine(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) b[i] = a[idx[i]];")
	if !a.Parallelizable {
		t.Fatalf("gather should be fine: %v", a.Reasons)
	}
}

func TestPointerWriteNotParallelizable(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { *p = i; }")
	if a.Parallelizable {
		t.Fatal("pointer write misclassified")
	}
}

func TestUnknownCallConservative(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) a[i] = mystery(i);")
	if a.Parallelizable {
		t.Fatal("unknown call misclassified")
	}
	if len(a.UnknownCalls) != 1 || a.UnknownCalls[0] != "mystery" {
		t.Errorf("unknown calls = %v", a.UnknownCalls)
	}
}

func TestKnownPureBodyAllowed(t *testing.T) {
	src := `double square(double x) { return x * x; }
for (i = 0; i < n; i++) a[i] = square(b[i]);`
	a := analyze(t, src)
	if !a.Parallelizable {
		t.Fatalf("pure user function blocked: %v", a.Reasons)
	}
}

func TestGlobalWritingBodyBlocked(t *testing.T) {
	src := `void bump(int i) { counter = counter + i; }
for (i = 0; i < n; i++) bump(i);`
	a := analyze(t, src)
	if a.Parallelizable {
		t.Fatal("global-writing callee misclassified")
	}
}

func TestIOBodyBlocked(t *testing.T) {
	src := `void show(int i) { printf("%d", i); }
for (i = 0; i < n; i++) show(i);`
	a := analyze(t, src)
	if a.Parallelizable || !a.HasIO {
		t.Fatal("IO callee misclassified")
	}
}

func TestMathCallsAllowed(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) y[i] = sin(x[i]) + sqrt(fabs(x[i]));")
	if !a.Parallelizable {
		t.Fatalf("math calls blocked: %v", a.Reasons)
	}
}

func TestUnbalancedDetection(t *testing.T) {
	src := `int MoreCalc(int i) { return i % 3; }
void Calc(int i) { work[i] = work[i] * 2; }
for (i = 0; i <= N; i++) if (MoreCalc(i)) Calc(i);`
	loop, funcs := parseLoop(t, src)
	a := AnalyzeLoop(loop, funcs)
	if !a.Unbalanced {
		t.Error("unbalanced guard not detected")
	}
}

func TestDirectiveGeneration(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { for (j = 0; j < m; j++) s += A[i][j]; }")
	// s += across both loops: reduction; j private.
	if !a.Parallelizable {
		t.Fatalf("reasons: %v", a.Reasons)
	}
	d := a.Directive()
	if d == nil {
		t.Fatal("nil directive")
	}
	str := d.String()
	if !strings.Contains(str, "private(j)") || !strings.Contains(str, "reduction(+:s)") {
		t.Errorf("directive = %q", str)
	}
}

func TestDirectiveNilWhenSerial(t *testing.T) {
	a := analyze(t, "for (i = 1; i < n; i++) a[i] = a[i-1];")
	if a.Directive() != nil {
		t.Error("directive for serial loop")
	}
}

func TestTripCount(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"for (i = 0; i < 10; i++) a[i] = 0;", 10},
		{"for (i = 0; i <= 10; i++) a[i] = 0;", 11},
		{"for (i = 0; i < 10; i += 3) a[i] = 0;", 4},
		{"for (i = 10; i > 0; i--) a[i] = 0;", 10},
		{"for (i = 0; i < n; i++) a[i] = 0;", -1},
		{"for (i = 5; i < 5; i++) a[i] = 0;", 0},
	}
	for _, c := range cases {
		loop, _ := parseLoop(t, c.src)
		h := ParseHeader(loop)
		if !h.OK {
			t.Errorf("%q: header not OK", c.src)
			continue
		}
		if got := h.TripCount(); got != c.want {
			t.Errorf("%q: trip = %d want %d", c.src, got, c.want)
		}
	}
}

func TestHeaderRejectsNonAffine(t *testing.T) {
	for _, src := range []string{
		"for (i = 0; a[i] < 10; i++) x[i] = 0;",
		"for (i = 0; i < n; i *= 2) x[i] = 0;",
		"for (p = head; p; p = next(p)) visit(p);",
	} {
		loop, _ := parseLoop(t, src)
		if h := ParseHeader(loop); h.OK {
			t.Errorf("%q: header accepted", src)
		}
	}
}

func TestHeaderForms(t *testing.T) {
	for _, src := range []string{
		"for (i = 0; i < n; i++) a[i] = 0;",
		"for (i = 0; i < n; ++i) a[i] = 0;",
		"for (int i = 0; i < n; i++) a[i] = 0;",
		"for (i = n; i > 0; i--) a[i] = 0;",
		"for (i = 0; i < n; i += 2) a[i] = 0;",
		"for (i = 0; i < n; i = i + 1) a[i] = 0;",
		"for (i = 0; n > i; i++) a[i] = 0;",
	} {
		loop, _ := parseLoop(t, src)
		if h := ParseHeader(loop); !h.OK {
			t.Errorf("%q: header rejected", src)
		}
	}
}

func TestStructMemberLoop(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) image->colormap[i].opacity = (IndexPacket) i;")
	if !a.Parallelizable {
		t.Fatalf("struct member loop blocked: %v", a.Reasons)
	}
}

func TestStencilReadOtherArray(t *testing.T) {
	a := analyze(t, "for (i = 1; i < n - 1; i++) out[i] = (in[i-1] + in[i] + in[i+1]) / 3.0;")
	if !a.Parallelizable {
		t.Fatalf("stencil blocked: %v", a.Reasons)
	}
}

func TestInPlaceStencilBlocked(t *testing.T) {
	a := analyze(t, "for (i = 1; i < n - 1; i++) a[i] = (a[i-1] + a[i+1]) / 2.0;")
	if a.Parallelizable {
		t.Fatal("in-place stencil misclassified")
	}
}

func TestLoopInvariantWriteBlocked(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) a[0] = a[0] + b[i];")
	if a.Parallelizable {
		t.Fatal("loop-invariant cell write misclassified")
	}
}

func TestSymbolicOffsetSameSymbol(t *testing.T) {
	// a[i+off] written, a[i+off] read: distance 0 → fine.
	a := analyze(t, "for (i = 0; i < n; i++) a[i + off] = a[i + off] * 2;")
	if !a.Parallelizable {
		t.Fatalf("same symbolic offset blocked: %v", a.Reasons)
	}
}

func TestDifferentSymbolicOffsetsBlocked(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) a[i + p] = a[i + q];")
	if a.Parallelizable {
		t.Fatal("differing symbolic offsets misclassified")
	}
}

func reasonContains(a *Analysis, sub string) bool {
	for _, r := range a.Reasons {
		if strings.Contains(r, sub) {
			return true
		}
	}
	return false
}

func TestSideEffectsPure(t *testing.T) {
	src := `double f(double x) { double y = x * 2; return y + 1; }`
	_, funcs := parseLoopSrcOnlyFuncs(t, src)
	e := SideEffects(funcs["f"], funcs)
	if !e.Pure() {
		t.Errorf("effects = %+v", e)
	}
}

func TestSideEffectsPointerParam(t *testing.T) {
	src := `void fill(double *v, int n) { for (int i = 0; i < n; i++) v[i] = 0; }`
	_, funcs := parseLoopSrcOnlyFuncs(t, src)
	e := SideEffects(funcs["fill"], funcs)
	if !e.WritesPointerParams || e.WritesGlobals {
		t.Errorf("effects = %+v", e)
	}
}

func TestSideEffectsGlobal(t *testing.T) {
	src := `void g(int i) { total += i; }`
	_, funcs := parseLoopSrcOnlyFuncs(t, src)
	e := SideEffects(funcs["g"], funcs)
	if !e.WritesGlobals {
		t.Errorf("effects = %+v", e)
	}
}

func TestSideEffectsTransitive(t *testing.T) {
	src := `void inner(int i) { printf("%d", i); }
void outer(int i) { inner(i); }`
	_, funcs := parseLoopSrcOnlyFuncs(t, src)
	e := SideEffects(funcs["outer"], funcs)
	if !e.HasIO {
		t.Errorf("effects = %+v", e)
	}
}

func TestSideEffectsRecursion(t *testing.T) {
	src := `int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }`
	_, funcs := parseLoopSrcOnlyFuncs(t, src)
	e := SideEffects(funcs["fact"], funcs)
	if !e.Pure() {
		t.Errorf("effects = %+v", e)
	}
}

// parseLoopSrcOnlyFuncs parses source that contains only functions.
func parseLoopSrcOnlyFuncs(t *testing.T, src string) (*cast.File, map[string]*cast.FuncDef) {
	t.Helper()
	f, err := cparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	funcs := map[string]*cast.FuncDef{}
	cast.Walk(f, func(n cast.Node) bool {
		if fd, ok := n.(*cast.FuncDef); ok {
			funcs[fd.Name] = fd
		}
		return true
	})
	return f, funcs
}

func TestAffineForms(t *testing.T) {
	parse := func(s string) cast.Expr {
		f, err := cparse.Parse("x = " + s + ";")
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return f.Items[0].(*cast.ExprStmt).X.(*cast.Assign).R
	}
	cases := []struct {
		expr     string
		coef     int64
		constant int64
		ok       bool
	}{
		{"i", 1, 0, true},
		{"i + 1", 1, 1, true},
		{"2 * i + 3", 2, 3, true},
		{"i * 4 - 1", 4, -1, true},
		{"-i", -1, 0, true},
		{"3 - i", -1, 3, true},
		{"i * i", 0, 0, false},
		{"a[i]", 0, 0, false},
		{"i / 2", 0, 0, false},
		{"(i + 1) * 2", 2, 2, true},
	}
	for _, c := range cases {
		a := ToAffine(parse(c.expr), "i")
		if a.OK != c.ok {
			t.Errorf("%q: OK = %v want %v", c.expr, a.OK, c.ok)
			continue
		}
		if c.ok && (a.Coef != c.coef || a.Const != c.constant) {
			t.Errorf("%q: got %d*i+%d want %d*i+%d", c.expr, a.Coef, a.Const, c.coef, c.constant)
		}
	}
}

func TestTestPair(t *testing.T) {
	mk := func(coef, cst int64) Affine {
		a := affineZero()
		a.Coef, a.Const = coef, cst
		return a
	}
	cases := []struct {
		w, r Affine
		want DepResult
	}{
		{mk(1, 0), mk(1, 0), DepSameIteration}, // a[i] vs a[i]
		{mk(1, 0), mk(1, -1), DepCarried},      // a[i] vs a[i-1]
		{mk(1, 0), mk(1, 1), DepCarried},       // a[i] vs a[i+1]
		{mk(2, 0), mk(2, 1), DepNone},          // a[2i] vs a[2i+1]
		{mk(0, 3), mk(0, 3), DepCarried},       // a[3] vs a[3]
		{mk(0, 3), mk(0, 4), DepNone},          // a[3] vs a[4]
		{mk(2, 0), mk(4, 1), DepNone},          // gcd 2 does not divide 1
		{mk(2, 0), mk(4, 2), DepCarried},       // gcd divides difference
		{Affine{}, mk(1, 0), DepUnknown},       // non-affine
	}
	for i, c := range cases {
		if got := TestPair(c.w, c.r); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func BenchmarkAnalyzeLoop(b *testing.B) {
	src := "for (i = 0; i < n; i++) { for (j = 0; j < m; j++) { s = 0; s += A[i][j] * x[j]; y[i] = y[i] + s; } }"
	f, err := cparse.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	var loop *cast.For
	cast.Walk(f, func(n cast.Node) bool {
		if l, ok := n.(*cast.For); ok && loop == nil {
			loop = l
			return false
		}
		return true
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AnalyzeLoop(loop, nil)
	}
}
