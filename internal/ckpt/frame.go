package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Generic framed-payload wire format, shared by every binary artifact in
// the repo (PFCKPT training snapshots here, PFQNT quantized models in
// internal/quant):
//
//	magic   [m]byte  artifact type tag
//	version uint32   little-endian format version
//	length  uint64   little-endian payload byte count
//	crc     uint32   little-endian CRC-32C (Castagnoli) of the payload
//	payload []byte
//
// The frame guarantees a truncated or bit-flipped file is detected before a
// single payload byte reaches a decoder: magic gates the file type, version
// gates the format, length guards truncation, and the CRC guards the bytes.

// maxPayloadBytes caps the header's length field. The field is untrusted
// input: a bit-flipped length with an intact magic must produce the same
// descriptive error as any other corruption, not a multi-exabyte
// allocation. 4 GiB is orders of magnitude above any artifact this repo's
// CPU-scale models can produce.
const maxPayloadBytes = 4 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteFramed writes payload to w under a magic/version/length/CRC header.
func WriteFramed(w io.Writer, magic []byte, version uint32, payload []byte) error {
	hdr := make([]byte, len(magic)+16)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], version)
	binary.LittleEndian.PutUint64(hdr[len(magic)+4:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[len(magic)+12:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFramed reads a frame written by WriteFramed, verifying magic,
// version, length, and CRC before returning the payload. kind names the
// artifact in errors ("checkpoint", "quantized model").
func ReadFramed(r io.Reader, magic []byte, maxVersion uint32, kind string) ([]byte, error) {
	hdr := make([]byte, len(magic)+16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("ckpt: truncated header: %w", err)
	}
	if !bytes.Equal(hdr[:len(magic)], magic) {
		return nil, fmt.Errorf("ckpt: bad magic %q — not a %s file", hdr[:len(magic)], kind)
	}
	version := binary.LittleEndian.Uint32(hdr[len(magic):])
	if version > maxVersion {
		return nil, fmt.Errorf("ckpt: %s file written by a newer format (version %d, this build reads <= %d)",
			kind, version, maxVersion)
	}
	length := binary.LittleEndian.Uint64(hdr[len(magic)+4:])
	wantCRC := binary.LittleEndian.Uint32(hdr[len(magic)+12:])
	if length > maxPayloadBytes {
		return nil, fmt.Errorf("ckpt: implausible payload length %d (file corrupt)", length)
	}
	// Grow the buffer from what the reader actually delivers instead of
	// trusting the length field with one up-front allocation: a corrupt
	// length on a short file errors out after reading the real bytes.
	var payload bytes.Buffer
	if n, err := io.CopyN(&payload, r, int64(length)); err != nil {
		return nil, fmt.Errorf("ckpt: truncated payload (read %d of %d bytes): %w", n, length, err)
	}
	if got := crc32.Checksum(payload.Bytes(), crcTable); got != wantCRC {
		return nil, fmt.Errorf("ckpt: payload CRC mismatch (file corrupt): got %08x want %08x", got, wantCRC)
	}
	return payload.Bytes(), nil
}
