// Package advisor composes the paper's pieces into the full pipeline its
// §6 sketches: generating entire OpenMP directives. The three PragFormer
// classifiers decide *whether* a directive and which clause kinds are
// needed; the dependence analysis supplies the *variable names* for the
// clauses; and, following the paper's ComPar-combination proposal, an S2S
// result can be used to corroborate the suggestion.
package advisor

import (
	"fmt"

	"pragformer/internal/cast"
	"pragformer/internal/core"
	"pragformer/internal/cparse"
	"pragformer/internal/dep"
	"pragformer/internal/pragma"
	"pragformer/internal/s2s"
	"pragformer/internal/tokenize"
)

// Models bundles the three task classifiers with their shared vocabulary.
// Private and Reduction may be nil, in which case clause decisions fall back
// to the dependence analysis alone.
type Models struct {
	Directive *core.PragFormer
	Private   *core.PragFormer
	Reduction *core.PragFormer
	Vocab     *tokenize.Vocab
	MaxLen    int
}

// Confidence grades how strongly a suggestion is corroborated.
type Confidence int

const (
	// ModelOnly means only PragFormer supports the directive.
	ModelOnly Confidence = iota
	// AnalysisAgrees means the dependence analysis also finds the loop
	// parallelizable.
	AnalysisAgrees
	// ComParAgrees means the S2S compiler independently inserted a
	// directive too — the paper's "verifying the correctness" case.
	ComParAgrees
)

// String names the confidence grade.
func (c Confidence) String() string {
	switch c {
	case ComParAgrees:
		return "model+analysis+compar"
	case AnalysisAgrees:
		return "model+analysis"
	default:
		return "model-only"
	}
}

// Suggestion is the advisor's output for one snippet.
type Suggestion struct {
	// Parallelize is the RQ1 verdict.
	Parallelize bool
	// Probability is the directive classifier's positive probability.
	Probability float64
	// Directive is the generated pragma (nil when Parallelize is false).
	Directive *pragma.Directive
	// Confidence grades corroboration.
	Confidence Confidence
	// Notes explains the clause decisions.
	Notes []string
}

// Suggest runs the full pipeline over a code snippet.
func (m *Models) Suggest(code string) (*Suggestion, error) {
	if m.Directive == nil || m.Vocab == nil {
		return nil, fmt.Errorf("advisor: directive model and vocabulary are required")
	}
	maxLen := m.MaxLen
	if maxLen == 0 {
		maxLen = 110
	}
	toks, err := tokenize.Extract(code, tokenize.Text)
	if err != nil {
		return nil, fmt.Errorf("advisor: %w", err)
	}
	ids := m.Vocab.Encode(toks, maxLen)

	s := &Suggestion{Probability: m.Directive.Predict(ids)}
	s.Parallelize = s.Probability > 0.5
	if !s.Parallelize {
		s.Notes = append(s.Notes, "directive classifier below threshold")
		return s, nil
	}

	d := &pragma.Directive{ParallelFor: true}
	analysis := analyze(code)

	wantPrivate := m.Private != nil && m.Private.PredictLabel(ids)
	wantReduction := m.Reduction != nil && m.Reduction.PredictLabel(ids)
	if analysis != nil {
		if m.Private == nil {
			wantPrivate = len(analysis.Private) > 0
		}
		if m.Reduction == nil {
			wantReduction = len(analysis.Reductions) > 0
		}
	}

	// Clause variables come from the analysis; the classifiers gate them
	// (the classifier can also rescue clauses the analysis missed when the
	// loop text alone was insufficient — then we note the gap).
	if wantPrivate {
		if analysis != nil && len(analysis.Private) > 0 {
			d.Private = append(d.Private, analysis.Private...)
			s.Notes = append(s.Notes, fmt.Sprintf("private variables from analysis: %v", analysis.Private))
		} else {
			s.Notes = append(s.Notes, "private clause predicted but no candidate variables found")
		}
	}
	if wantReduction {
		if analysis != nil && len(analysis.Reductions) > 0 {
			d.Reductions = append(d.Reductions, analysis.Reductions...)
			s.Notes = append(s.Notes, "reduction clause from analysis")
		} else {
			s.Notes = append(s.Notes, "reduction clause predicted but no accumulation pattern found")
		}
	}
	if analysis != nil && analysis.Unbalanced {
		d.Schedule = pragma.ScheduleDynamic
		s.Notes = append(s.Notes, "unbalanced body: schedule(dynamic)")
	}
	s.Directive = d

	// Confidence grading.
	if analysis != nil && analysis.Parallelizable {
		s.Confidence = AnalysisAgrees
	}
	if res, err := s2s.NewComPar().Compile(code); err == nil && res.Directive != nil {
		s.Confidence = ComParAgrees
	}
	return s, nil
}

// analyze parses the snippet and runs the dependence analysis over its
// target loop; nil when no loop is analyzable.
func analyze(code string) *dep.Analysis {
	f, err := cparse.Parse(code)
	if err != nil {
		return nil
	}
	loop := s2s.FirstLoop(f)
	if loop == nil {
		return nil
	}
	funcs := map[string]*cast.FuncDef{}
	for _, it := range f.Items {
		if fd, ok := it.(*cast.FuncDef); ok {
			funcs[fd.Name] = fd
		}
	}
	return dep.AnalyzeLoop(loop, funcs)
}

// Annotate returns the snippet with the suggested directive prepended, or
// the snippet unchanged when no directive is suggested.
func (s *Suggestion) Annotate(code string) string {
	if s.Directive == nil {
		return code
	}
	return s.Directive.String() + "\n" + code
}
