package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pragformer/internal/obs"
)

// TestDeadlineShedBeforeInference is the acceptance check for deadline
// propagation: a request whose client budget has already expired must be
// dropped at admission — before any batch runs — and counted.
func TestDeadlineShedBeforeInference(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.Predict(ctx, []int{1, 5, 6}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Predict with expired deadline: err = %v, want DeadlineExceeded", err)
	}

	st := e.Stats()
	if st.Predict.DeadlineExceeded == 0 {
		t.Fatal("DeadlineExceeded counter not incremented")
	}
	if st.Predict.Batches != 0 {
		t.Fatalf("engine executed %d batches for an already-dead request", st.Predict.Batches)
	}
}

// TestHTTPDeadlineHeader checks the wire form of the same contract: an
// expired X-PF-Deadline-Ms answers 504 before the handler runs, and a
// malformed one answers 400.
func TestHTTPDeadlineHeader(t *testing.T) {
	e, srv := httpEngine(t)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/predict",
		strings.NewReader(`{"code":"for (i = 0; i < n; i++) a[i] = 0;"}`))
	req.Header.Set(obs.DeadlineHeader, "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504", resp.StatusCode)
	}
	if b := e.Stats().Predict.Batches; b != 0 {
		t.Fatalf("expired request still ran %d batches", b)
	}

	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/predict",
		strings.NewReader(`{"code":"x"}`))
	req.Header.Set(obs.DeadlineHeader, "soon")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline: status %d, want 400", resp.StatusCode)
	}
}

// TestMetricsEndpoint exercises GET /metrics end to end: Prometheus text
// with the request-duration histogram and the batcher series.
func TestMetricsEndpoint(t *testing.T) {
	_, srv := httpEngine(t)

	var out struct {
		Results []predictResult `json:"results"`
	}
	if code := postJSON(t, srv.URL+"/predict",
		predictRequest{Code: "for (i = 0; i < n; i++) a[i] = 0;"}, &out); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`pf_request_duration_seconds_bucket{path="/predict"`,
		`pf_request_duration_seconds_count{path="/predict"}`,
		`pf_batch_queue_wait_seconds_count{path="predict"}`,
		`pf_batch_compute_seconds_count{path="predict"}`,
		`pf_batcher_requests_total{path="predict"}`,
		`pf_batches_total{path="predict"}`,
		`pf_model_generation`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestStatzLatencyPercentiles checks the /statz JSON carries the p50/p90/
// p99 view of the same histogram /metrics exposes.
func TestStatzLatencyPercentiles(t *testing.T) {
	_, srv := httpEngine(t)

	var out struct {
		Results []predictResult `json:"results"`
	}
	if code := postJSON(t, srv.URL+"/predict",
		predictRequest{Code: "for (i = 0; i < n; i++) a[i] = 0;"}, &out); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}

	resp, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Latency map[string]struct {
			Count uint64  `json:"count"`
			P50Ms float64 `json:"p50_ms"`
			P99Ms float64 `json:"p99_ms"`
		} `json:"latency"`
		Predict struct {
			DeadlineExceeded *uint64 `json:"deadline_exceeded"`
		} `json:"predict"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	l, ok := st.Latency["/predict"]
	if !ok {
		t.Fatalf("statz latency missing /predict: %+v", st.Latency)
	}
	if l.Count == 0 || l.P99Ms < l.P50Ms {
		t.Fatalf("implausible latency stats: %+v", l)
	}
	if st.Predict.DeadlineExceeded == nil {
		t.Fatal("statz predict block missing deadline_exceeded")
	}
}

// TestTraceSpansInResponse checks the request-trace contract on one
// replica: an X-PF-Trace request gets its ID echoed (header and body) and
// spans covering the batcher queue and compute; an untraced request's body
// carries no trace key at all.
func TestTraceSpansInResponse(t *testing.T) {
	_, srv := httpEngine(t)

	body := `{"code":"for (i = 0; i < n; i++) a[i] = 0;"}`
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/predict", strings.NewReader(body))
	req.Header.Set(obs.TraceHeader, "cafe0123cafe0123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "cafe0123cafe0123" {
		t.Fatalf("trace header echo = %q", got)
	}
	var out struct {
		Trace *obs.Wire `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || out.Trace.ID != "cafe0123cafe0123" {
		t.Fatalf("response trace = %+v, want id echoed", out.Trace)
	}
	names := map[string]bool{}
	for _, s := range out.Trace.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"queue-wait", "batch-compute", "infer"} {
		if !names[want] {
			t.Errorf("trace missing %q span (got %v)", want, names)
		}
	}

	// Untraced request: no trace key in the body (goldens and clients that
	// never asked for tracing see byte-identical responses).
	resp2, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"trace"`) {
		t.Fatalf("untraced response leaked a trace field: %s", raw)
	}
}
