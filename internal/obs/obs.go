// Package obs is the serving stack's dependency-free runtime telemetry
// layer: a metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms with p50/p90/p99/max and zero per-request allocation) with
// Prometheus text exposition, request-scoped tracing (a trace ID minted at
// the edge or accepted from the X-PF-Trace header, lightweight spans
// recorded along every hop), and deadline propagation helpers
// (X-PF-Deadline-Ms carried router → replica → batcher so expired work is
// shed before it wastes a forward).
//
// The package is intentionally inert by default: a nil *Trace swallows
// every span call, an unobserved Histogram costs one slice, and none of
// the deterministic math/kernel packages (nn, quant, tensor, dep) may
// import it — cmd/pflint enforces that boundary.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric series' label set. Label sets are rendered once at
// registration (sorted by key), so hot-path updates never format strings.
type Labels map[string]string

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// metric is one registered series' exposition behavior.
type metric interface {
	// expose writes the series' sample lines. name is the family name,
	// labels the canonical inner label string ("" for none).
	expose(w *strings.Builder, name, labels string)
}

func sampleLine(w *strings.Builder, name, labels, suffix, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func (c *Counter) expose(w *strings.Builder, name, labels string) {
	sampleLine(w, name, labels, "", fmt.Sprintf("%d", c.Value()))
}

// counterFunc exposes an externally owned monotonic counter (an existing
// atomic the owning subsystem already maintains).
type counterFunc struct{ fn func() uint64 }

func (c counterFunc) expose(w *strings.Builder, name, labels string) {
	sampleLine(w, name, labels, "", fmt.Sprintf("%d", c.fn()))
}

// gaugeFunc exposes a point-in-time value (queue depth, in-flight count).
type gaugeFunc struct{ fn func() float64 }

func (g gaugeFunc) expose(w *strings.Builder, name, labels string) {
	sampleLine(w, name, labels, "", formatFloat(g.fn()))
}

// family is one metric name: its metadata plus every label combination
// registered under it.
type family struct {
	name, help, typ string

	mu     sync.Mutex
	order  []string // label strings in registration order
	series map[string]metric
}

// Registry holds metric families and renders them in Prometheus text
// format. All registration methods are get-or-create: asking for the same
// (name, labels) twice returns the same series, so independent layers
// (HTTP middleware, /statz views) can share one histogram without
// coordination.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) fam(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]metric)}
		r.fams[name] = f
		r.order = append(r.order, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// add registers m under labels unless the series already exists; the
// existing series wins (get-or-create).
func (f *family) add(labels Labels, m metric) metric {
	ls := formatLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if existing, ok := f.series[ls]; ok {
		return existing
	}
	f.series[ls] = m
	f.order = append(f.order, ls)
	return m
}

// Counter returns the counter registered under (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	m := r.fam(name, help, "counter").add(labels, &Counter{})
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: series %q %v is not a Counter", name, labels))
	}
	return c
}

// CounterFunc exposes an externally maintained monotonic counter.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.fam(name, help, "counter").add(labels, counterFunc{fn: fn})
}

// GaugeFunc exposes an externally computed point-in-time value.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.fam(name, help, "gauge").add(labels, gaugeFunc{fn: fn})
}

// Histogram returns the histogram registered under (name, labels),
// creating it with the given bucket upper bounds on first use (nil =
// DefBuckets).
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	m := r.fam(name, help, "histogram").add(labels, newHistogram(buckets))
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: series %q %v is not a Histogram", name, labels))
	}
	return h
}

// formatLabels renders a label set to its canonical inner form
// (`k1="v1",k2="v2"`, keys sorted), once, at registration time.
func formatLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
