package train_test

// Interrupt-and-resume parity: the acceptance test for the checkpoint
// subsystem. A run interrupted at an epoch boundary and resumed from its
// checkpoint must be bit-identical — weights and History — to an
// uninterrupted run at the same (seed, W). The model is a real PragFormer
// with dropout enabled, so the test exercises every piece of checkpointed
// state: weights, AdamW moments, the shuffler, and the dropout RNG streams
// of the primary and (for W>1) each replica. It lives in an external test
// package because core imports train.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pragformer/internal/core"
	"pragformer/internal/train"
)

const resumeSeed = 11

func resumeModel(t *testing.T) *core.PragFormer {
	t.Helper()
	m, err := core.New(core.Config{
		Vocab: 24, MaxLen: 16, D: 8, Heads: 2, Layers: 1, Dropout: 0.2,
	}, resumeSeed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func resumeData() (trainSet, validSet []train.Example) {
	// Deterministic synthetic split: label depends on which id range
	// dominates the sequence.
	for i := 0; i < 60; i++ {
		ids := []int{2} // [CLS]
		for j := 0; j < 6; j++ {
			ids = append(ids, 4+(i*7+j*3)%20)
		}
		ex := train.Example{IDs: ids, Label: i%2 == 0}
		if i < 44 {
			trainSet = append(trainSet, ex)
		} else {
			validSet = append(validSet, ex)
		}
	}
	return trainSet, validSet
}

func resumeCfg(workers int, path string) train.Config {
	return train.Config{
		Epochs: 5, BatchSize: 8, LR: 1e-3, ClipNorm: 1, Seed: resumeSeed,
		Workers: workers, CheckpointPath: path,
	}
}

func weightsOf(m *core.PragFormer) [][]float64 {
	var out [][]float64
	for _, p := range m.Params() {
		out = append(out, append([]float64(nil), p.W.Data...))
	}
	return out
}

func testResumeParity(t *testing.T, workers int) {
	trainSet, validSet := resumeData()
	dir := t.TempDir()

	// Uninterrupted reference run.
	ref := resumeModel(t)
	refHist, err := train.Run(ref, trainSet, validSet, resumeCfg(workers, ""))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: fresh model, same seed, killed after epoch 1.
	path := filepath.Join(dir, "run.ckpt")
	interrupted := resumeModel(t)
	stop := make(chan struct{})
	cfg := resumeCfg(workers, path)
	cfg.Interrupt = stop
	cfg.Snapshot = func(epoch int, _ train.EpochStats) {
		if epoch == 1 {
			close(stop)
		}
	}
	partial, err := train.Run(interrupted, trainSet, validSet, cfg)
	if !errors.Is(err, train.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if len(partial.Epochs) != 2 {
		t.Fatalf("partial history has %d epochs, want 2", len(partial.Epochs))
	}

	// Resume in a "new process": a fresh model built the same way.
	resumed := resumeModel(t)
	resHist, err := train.Resume(resumed, trainSet, validSet, resumeCfg(workers, path))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(refHist, resHist) {
		t.Errorf("history diverges after resume:\nref: %+v\nres: %+v", refHist, resHist)
	}
	refW, resW := weightsOf(ref), weightsOf(resumed)
	for i := range refW {
		if !reflect.DeepEqual(refW[i], resW[i]) {
			t.Fatalf("weights of tensor %d diverge after resume", i)
		}
	}
}

func TestResumeParitySequential(t *testing.T) { testResumeParity(t, 1) }
func TestResumeParityParallel(t *testing.T)   { testResumeParity(t, 2) }

func TestResumeValidatesRunIdentity(t *testing.T) {
	trainSet, validSet := resumeData()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m := resumeModel(t)
	cfg := resumeCfg(1, path)
	cfg.CheckpointEvery = 2
	if _, err := train.Run(m, trainSet, validSet, cfg); err != nil {
		t.Fatal(err)
	}

	badSeed := resumeCfg(1, path)
	badSeed.Seed = resumeSeed + 1
	if _, err := train.Resume(resumeModel(t), trainSet, validSet, badSeed); err == nil {
		t.Error("seed mismatch accepted")
	}

	badWorkers := resumeCfg(2, path)
	if _, err := train.Resume(resumeModel(t), trainSet, validSet, badWorkers); err == nil {
		t.Error("worker-count mismatch accepted")
	}

	// A different training set must be caught by the shuffle replay check.
	if _, err := train.Resume(resumeModel(t), trainSet[:len(trainSet)-2], validSet, resumeCfg(1, path)); err == nil {
		t.Error("diverging training set accepted")
	}
}

func TestResumeFinishedRunIsNoOp(t *testing.T) {
	trainSet, validSet := resumeData()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m := resumeModel(t)
	h1, err := train.Run(m, trainSet, validSet, resumeCfg(1, path))
	if err != nil {
		t.Fatal(err)
	}
	before := weightsOf(m)

	m2 := resumeModel(t)
	h2, err := train.Resume(m2, trainSet, validSet, resumeCfg(1, path))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Error("finished-run resume changed the history")
	}
	if !reflect.DeepEqual(before, weightsOf(m2)) {
		t.Error("finished-run resume changed the weights")
	}
}

func TestRunAbortsWhenCheckpointUnwritable(t *testing.T) {
	trainSet, validSet := resumeData()
	cfg := resumeCfg(1, filepath.Join(t.TempDir(), "missing-dir", "run.ckpt"))
	_, err := train.Run(resumeModel(t), trainSet, validSet, cfg)
	if err == nil {
		t.Fatal("unwritable checkpoint path did not abort the run")
	}
}

func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	trainSet, validSet := resumeData()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := train.Run(resumeModel(t), trainSet, validSet, resumeCfg(1, path)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := train.Resume(resumeModel(t), trainSet, validSet, resumeCfg(1, path)); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}
