package serve

// Backend-selection tests: an int8 engine must answer exactly what the
// quantized model answers directly, report its backend and generation to
// probes, and keep the backend across hot reloads (re-quantizing the
// freshly loaded float bundle).

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"pragformer/internal/core"
)

func TestEngineInt8Backend(t *testing.T) {
	models := testModels(t)
	directive, ok := models.Directive.(*core.PragFormer)
	if !ok {
		t.Fatal("test bundle is not float")
	}
	q, err := core.Quantize(directive)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(models, Config{MaxBatch: 8, MaxWait: time.Millisecond, Replicas: 2, Backend: core.BackendInt8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if got := e.Stats().Backend; got != core.BackendInt8 {
		t.Fatalf("Stats.Backend = %q, want %q", got, core.BackendInt8)
	}
	if got := e.Models().Directive.BackendName(); got != core.BackendInt8 {
		t.Fatalf("served directive backend = %q", got)
	}

	pool := randIDs(rand.New(rand.NewSource(41)), 20, 64, models.Directive.VocabSize())
	for i, ids := range pool {
		got, err := e.Predict(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		if want := q.Predict(ids); got != want {
			t.Errorf("seq %d: engine %v != quantized model %v", i, got, want)
		}
	}
}

func TestEngineFloatBackendRejectsQuantArtifacts(t *testing.T) {
	models := testModels(t)
	q, err := core.Quantize(models.Directive.(*core.PragFormer))
	if err != nil {
		t.Fatal(err)
	}
	models.Directive = q
	if _, err := New(models, Config{Backend: core.BackendFloat64}); err == nil {
		t.Fatal("float64 engine accepted an int8 artifact")
	}
}

func TestEngineUnknownBackend(t *testing.T) {
	if _, err := New(testModels(t), Config{Backend: "float16"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestReloadKeepsBackend ships a float bundle to an int8 engine via Reload
// and checks the swap re-quantized it, bumped the generation, and kept
// serving quantized answers.
func TestReloadKeepsBackend(t *testing.T) {
	old := testModelsSeed(t, 5)
	fresh := testModelsSeed(t, 6)
	qFresh, err := core.Quantize(fresh.Directive.(*core.PragFormer))
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(old, Config{MaxWait: time.Millisecond, Backend: core.BackendInt8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if gen := e.Stats().Generation; gen != 0 {
		t.Fatalf("fresh engine at generation %d", gen)
	}

	if err := e.Reload(fresh); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Backend != core.BackendInt8 {
		t.Errorf("backend after reload = %q, want int8", st.Backend)
	}
	if st.Generation != 1 || st.Reloads != 1 {
		t.Errorf("generation %d / reloads %d after one reload", st.Generation, st.Reloads)
	}
	ids := randIDs(rand.New(rand.NewSource(42)), 1, 64, fresh.Directive.VocabSize())[0]
	got, err := e.Predict(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if want := qFresh.Predict(ids); got != want {
		t.Errorf("post-reload predict %v != re-quantized bundle %v", got, want)
	}
}

// TestHealthzReportsBackendAndGeneration covers the probe surface: backend
// name and model generation at top level, matching Stats.
func TestHealthzReportsBackendAndGeneration(t *testing.T) {
	e, srv := httpEngine(t)
	var resp struct {
		Status     string `json:"status"`
		Backend    string `json:"backend"`
		Generation uint64 `json:"generation"`
		Stats      Stats  `json:"stats"`
	}
	get := func() {
		t.Helper()
		r, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", r.StatusCode)
		}
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
	}
	get()
	if resp.Status != "ok" || resp.Backend != core.BackendFloat64 || resp.Generation != 0 {
		t.Fatalf("healthz = %+v", resp)
	}
	if resp.Stats.Backend != resp.Backend || resp.Stats.Generation != resp.Generation {
		t.Fatalf("healthz top level disagrees with stats: %+v", resp)
	}

	// A reload must be visible to probes as a generation bump.
	if err := e.Reload(testModelsSeed(t, 7)); err != nil {
		t.Fatal(err)
	}
	get()
	if resp.Generation != 1 {
		t.Fatalf("generation after reload = %d, want 1", resp.Generation)
	}
}
