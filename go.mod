module pragformer

go 1.24
