// Package corpus generates Open-OMP, the paper's corpus of C loop snippets
// with OpenMP labels, as a deterministic synthetic equivalent of the
// GitHub-mined original (see DESIGN.md for the substitution rationale).
// Ground-truth labels come from the real dependence analysis in internal/dep
// plus the profitability judgments the paper attributes to developers
// (thread-spawn overhead on small loops, I/O loops, unbalanced guards), so a
// classifier must learn genuine code features, not template artifacts.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"pragformer/internal/cast"
	"pragformer/internal/dep"
	"pragformer/internal/pragma"
)

// Domain tags the provenance mix reported in the paper's Figure 3.
type Domain int

const (
	// DomainUnknown marks snippets from repositories without a README.
	DomainUnknown Domain = iota
	// DomainBenchmark marks snippets from benchmark suites.
	DomainBenchmark
	// DomainTesting marks compiler-compatibility test snippets.
	DomainTesting
	// DomainGeneric marks generic applications (the default).
	DomainGeneric
)

// String returns the Figure 3 label for the domain.
func (d Domain) String() string {
	switch d {
	case DomainUnknown:
		return "Unknown (no README)"
	case DomainBenchmark:
		return "Benchmark"
	case DomainTesting:
		return "Testing"
	default:
		return "Generic Application"
	}
}

// Record is one corpus entry: a code snippet with its OpenMP ground truth,
// mirroring the paper's per-record (code.c, pragma.c, pickle.pkl) triple.
type Record struct {
	ID   int
	Code string
	// Directive is the ground-truth OpenMP directive; nil when the snippet
	// should not be parallelized.
	Directive *pragma.Directive
	Domain    Domain
	// Template names the generating family (diagnostics only; classifiers
	// never see it).
	Template string
	Lines    int
}

// HasOMP reports whether the record carries a directive (RQ1 label).
func (r *Record) HasOMP() bool { return r.Directive != nil }

// NeedsPrivate reports the RQ2 private label.
func (r *Record) NeedsPrivate() bool { return r.Directive.HasPrivate() }

// NeedsReduction reports the RQ2 reduction label.
func (r *Record) NeedsReduction() bool { return r.Directive.HasReduction() }

// Corpus is the generated database.
type Corpus struct {
	Records []*Record
}

// Config controls generation.
type Config struct {
	// Seed drives all randomness; equal seeds give identical corpora.
	Seed int64
	// Total is the snippet count (the paper's raw database has 17,013).
	Total int
	// PositiveFraction is the share of records with directives; the paper's
	// raw database has 7,630/17,013 ≈ 0.4485. Zero means the default.
	PositiveFraction float64
}

// DefaultTotal matches the paper's corpus size (Table 3).
const DefaultTotal = 17013

// profitabilityTrip is the constant trip count below which a dependence-free
// loop is still left serial by developers (RQ1 rationale in §2.1.1): the
// cost of spawning threads outweighs the gain.
const profitabilityTrip = 64

// positiveTemplates and negativeTemplates define the snippet families and
// their sampling weights, tuned so corpus statistics land near Tables 3–4.
var positiveTemplates = []template{
	{"vecInit", 6, tplVecInit},
	{"vecMap", 7, tplVecMap},
	{"axpy", 5, tplAxpy},
	{"stencil", 5, tplStencil},
	{"strided", 3, tplStrided},
	{"gather", 3, tplGather},
	{"conditionalStore", 4, tplConditionalStore},
	{"structArray", 3, tplStructArray},
	{"pureCall", 12, tplPureCall},
	{"longBody", 3, tplLongBody},
	{"privateTempDecl", 3, tplPrivateTempDecl},
	{"mat2D", 8, tplMat2D},
	{"matVec", 12, tplMatVec},
	{"matMul", 9, tplMatMul},
	{"privateTemp", 20, tplPrivateTemp},
	{"reduceSum", 8, tplReduceSum},
	{"reduceExplicit", 6, tplReduceExplicit},
	{"reduceMax", 2, tplReduceMax},
	{"reduceNested", 5, tplReduceNested},
	{"unbalanced", 5, tplUnbalanced},
}

var negativeTemplates = []template{
	{"tinyLoop", 46, tplTinyLoop},
	{"tinyNested", 20, tplTinyNested},
	{"tinyIO", 4, tplTinyIO},
	{"recurrence", 8, tplRecurrence},
	{"prefixSum", 5, tplPrefixSum},
	{"horner", 4, tplHorner},
	{"ioPrint", 9, tplIOPrint},
	{"randFill", 4, tplRandFill},
	{"allocLoop", 3, tplAllocLoop},
	{"breakSearch", 5, tplBreakSearch},
	{"scatter", 6, tplScatter},
	{"overlapShift", 4, tplOverlapShift},
	{"inPlaceStencil", 4, tplInPlaceStencil},
	{"impureCall", 7, tplImpureCall},
	{"loopVarMutation", 2, tplLoopVarMutation},
	{"strcatLoop", 2, tplStrcatLoop},
	{"fileWrite", 2, tplFileWrite},
	{"linkedList", 1, tplLinkedList},
	{"accumDependent", 3, tplAccumulateDependent},
}

func pickTemplate(rng *rand.Rand, pool []template) template {
	total := 0
	for _, t := range pool {
		total += t.weight
	}
	n := rng.Intn(total)
	for _, t := range pool {
		n -= t.weight
		if n < 0 {
			return t
		}
	}
	return pool[len(pool)-1]
}

// Generate builds a corpus deterministically from cfg.
func Generate(cfg Config) *Corpus {
	if cfg.Total == 0 {
		cfg.Total = DefaultTotal
	}
	if cfg.PositiveFraction == 0 {
		cfg.PositiveFraction = 7630.0 / 17013.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &genCtx{}
	targetPos := int(float64(cfg.Total)*cfg.PositiveFraction + 0.5)

	c := &Corpus{}
	seen := map[string]bool{}
	pos := 0
	for len(c.Records) < cfg.Total {
		wantPositive := pos < targetPos &&
			(len(c.Records)-pos >= cfg.Total-targetPos || rng.Intn(cfg.Total) < targetPos)
		pool := negativeTemplates
		if wantPositive {
			pool = positiveTemplates
		}
		tpl := pickTemplate(rng, pool)
		s := tpl.build(rng, g)
		hardenSnippet(rng, s)
		extendSnippet(rng, s, drawLengthTarget(rng))

		directive, _ := labelSnippet(s)
		if wantPositive != (directive != nil) {
			// A template landed on the wrong side of the ground-truth
			// labeler (possible when randomized constants cross the
			// profitability threshold); re-draw.
			continue
		}
		code := renderSnippet(s)
		if seen[code] {
			continue
		}
		seen[code] = true
		rec := &Record{
			ID:        len(c.Records),
			Code:      code,
			Directive: directive,
			Domain:    drawDomain(rng),
			Template:  tpl.name,
			Lines:     strings.Count(code, "\n"),
		}
		c.Records = append(c.Records, rec)
		if directive != nil {
			pos++
		}
	}
	return c
}

// labelSnippet computes the ground-truth directive for a snippet: nil when
// the dependence analysis finds the loop serial, when it is unprofitable
// (constant trip count under profitabilityTrip), and otherwise the clause
// set a careful developer would write — private/reduction from the analysis
// (without the redundant loop-variable private) plus schedule(dynamic) for
// unbalanced bodies.
func labelSnippet(s *snippet) (*pragma.Directive, *dep.Analysis) {
	a := dep.AnalyzeLoop(s.loop, s.funcs)
	if !a.Parallelizable {
		return nil, a
	}
	if tc := a.Header.TripCount(); tc >= 0 && tc < profitabilityTrip {
		return nil, a
	}
	d := &pragma.Directive{ParallelFor: true}
	d.Private = append(d.Private, a.Private...)
	d.Reductions = append(d.Reductions, a.Reductions...)
	if a.Unbalanced {
		d.Schedule = pragma.ScheduleDynamic
	}
	return d, a
}

// renderSnippet prints the snippet's code text.
func renderSnippet(s *snippet) string {
	f := &cast.File{Items: s.items}
	return cast.Print(f)
}

// hardenSnippet injects, with the paper's observed ~17% frequency, a
// construct that breaks the S2S frontends (register declarations, union
// tags, non-standard typedef names in casts) without altering the
// dependence structure.
func hardenSnippet(rng *rand.Rand, s *snippet) {
	if rng.Intn(100) >= 17 {
		return
	}
	switch rng.Intn(3) {
	case 0:
		d := &cast.DeclStmt{Decls: []*cast.Decl{{
			Type: &cast.TypeSpec{Quals: []string{"register"}, Names: []string{"int"}},
			Name: "r0",
		}}}
		s.items = append([]cast.Node{d}, s.items...)
	case 1:
		d := &cast.DeclStmt{Decls: []*cast.Decl{{
			Type: &cast.TypeSpec{Struct: "conv_u", Union: true, Ptr: 1},
			Name: "u0",
		}}}
		s.items = append([]cast.Node{d}, s.items...)
	case 2:
		// Wrap the loop bound in an (ssize_t) cast.
		if bin, ok := s.loop.Cond.(*cast.BinaryOp); ok {
			bin.R = &cast.Cast{Type: &cast.TypeSpec{Names: []string{"ssize_t"}}, X: bin.R}
		}
	}
}

// lengthBuckets are the Table 4 line-count bands and their corpus shares.
var lengthBuckets = []struct {
	maxLines int
	permille int
}{
	{10, 580},
	{50, 342},
	{100, 43},
	{180, 35},
}

// drawLengthTarget samples a target line count following Table 4.
func drawLengthTarget(rng *rand.Rand) int {
	n := rng.Intn(1000)
	lo := 1
	for _, b := range lengthBuckets {
		n -= b.permille
		if n < 0 {
			if b.maxLines == 10 {
				return 0 // no extension; templates are naturally short
			}
			return lo + rng.Intn(b.maxLines-lo)
		}
		lo = b.maxLines + 1
	}
	return 0
}

// extendSnippet stretches the snippet toward target lines by appending
// label-neutral elementwise statements to the loop body. Loops whose header
// is not normalizable (already negative) are left alone.
func extendSnippet(rng *rand.Rand, s *snippet, targetLines int) {
	if targetLines <= 0 {
		return
	}
	h := dep.ParseHeader(s.loop)
	if !h.OK {
		return
	}
	cur := strings.Count(renderSnippet(s), "\n")
	if cur >= targetLines {
		return
	}
	nm := names{rng}
	body, ok := s.loop.Body.(*cast.Block)
	if !ok {
		body = block(s.loop.Body.(cast.Stmt))
		s.loop.Body = body
	}
	need := targetLines - cur - 2 // braces cost two lines
	for x := 0; x < need; x++ {
		dst := nm.uniqueTag("w", x)
		src := nm.uniqueTag("r", x)
		body.Stmts = append(body.Stmts, es(asg(aref(id(dst), id(h.Var)),
			bin("*", aref(id(src), id(h.Var)), flit(nm.floatConst())))))
	}
}

// drawDomain samples the Figure 3 provenance mix.
func drawDomain(rng *rand.Rand) Domain {
	n := rng.Intn(1000)
	switch {
	case n < 335:
		return DomainUnknown
	case n < 335+165:
		return DomainBenchmark
	case n < 335+165+70:
		return DomainTesting
	default:
		return DomainGeneric
	}
}

// ---------------------------------------------------------------------------
// Statistics (Tables 3, 4 and Figure 3)
// ---------------------------------------------------------------------------

// Stats reproduces the Table 3 row counts.
type Stats struct {
	Total           int
	WithDirective   int
	ScheduleStatic  int // directives without schedule(dynamic), as Table 3 counts them
	ScheduleDynamic int
	Reduction       int
	Private         int
}

// Stats computes Table 3 statistics.
func (c *Corpus) Stats() Stats {
	var s Stats
	s.Total = len(c.Records)
	for _, r := range c.Records {
		if !r.HasOMP() {
			continue
		}
		s.WithDirective++
		if r.Directive.Schedule == pragma.ScheduleDynamic {
			s.ScheduleDynamic++
		} else {
			s.ScheduleStatic++
		}
		if r.NeedsReduction() {
			s.Reduction++
		}
		if r.NeedsPrivate() {
			s.Private++
		}
	}
	return s
}

// LengthHistogram reproduces Table 4: counts for ≤10, 11–50, 51–100, >100
// line snippets.
func (c *Corpus) LengthHistogram() [4]int {
	var h [4]int
	for _, r := range c.Records {
		switch {
		case r.Lines <= 10:
			h[0]++
		case r.Lines <= 50:
			h[1]++
		case r.Lines <= 100:
			h[2]++
		default:
			h[3]++
		}
	}
	return h
}

// DomainDistribution reproduces Figure 3 as fractions by domain.
func (c *Corpus) DomainDistribution() map[Domain]float64 {
	counts := map[Domain]int{}
	for _, r := range c.Records {
		counts[r.Domain]++
	}
	out := map[Domain]float64{}
	for d, n := range counts {
		out[d] = float64(n) / float64(len(c.Records))
	}
	return out
}

// Positives returns the records carrying directives.
func (c *Corpus) Positives() []*Record {
	var out []*Record
	for _, r := range c.Records {
		if r.HasOMP() {
			out = append(out, r)
		}
	}
	return out
}

// Negatives returns the records without directives.
func (c *Corpus) Negatives() []*Record {
	var out []*Record
	for _, r := range c.Records {
		if !r.HasOMP() {
			out = append(out, r)
		}
	}
	return out
}

// String summarizes the corpus.
func (c *Corpus) String() string {
	s := c.Stats()
	return fmt.Sprintf("Open-OMP: %d snippets (%d with directives; %d reduction, %d private, %d dynamic)",
		s.Total, s.WithDirective, s.Reduction, s.Private, s.ScheduleDynamic)
}
