// Package cparse is a recursive-descent parser for the C subset used by the
// Open-OMP corpus, standing in for the paper's use of pycparser. It handles
// declarations (pointers, arrays, struct tags, typedefs, storage classes),
// the statement forms found in loop snippets, the full C expression
// precedence ladder, and attaches `#pragma omp` lines to the statements that
// follow them.
package cparse

import (
	"errors"
	"fmt"
	"sync/atomic"

	"pragformer/internal/cast"
	"pragformer/internal/clex"
)

// builtinTypes seeds the typedef table with names that real corpus code uses
// without declaring (the paper's SPEC examples use ssize_t, IndexPacket...).
var builtinTypes = map[string]bool{
	"size_t": true, "ssize_t": true, "ptrdiff_t": true, "FILE": true,
	"int8_t": true, "int16_t": true, "int32_t": true, "int64_t": true,
	"uint8_t": true, "uint16_t": true, "uint32_t": true, "uint64_t": true,
	"IndexPacket": true, "PixelPacket": true, "MagickBooleanType": true,
	"bool": true, "uint": true, "ulong": true, "real_t": true,
}

// Parser parses a token stream into a cast.File.
type Parser struct {
	toks     []clex.Token
	pos      int
	typedefs map[string]bool
}

// parses counts Parse calls process-wide; see Parses.
var parses atomic.Int64

// Parses reports the cumulative number of Parse calls in this process — a
// testing hook for no-reparse guarantees (the scan pipeline promises each
// file is parsed exactly once, with the loop AST threaded through to the
// advisor's corroboration instead of being re-derived from text).
func Parses() int64 { return parses.Load() }

// Parse parses C source text into an AST.
func Parse(src string) (*cast.File, error) {
	parses.Add(1)
	toks, err := clex.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, typedefs: map[string]bool{}}
	for k := range builtinTypes {
		p.typedefs[k] = true
	}
	return p.parseFile()
}

// ParseStmt parses a single statement (e.g. one loop snippet).
func ParseStmt(src string) (cast.Stmt, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	for _, it := range f.Items {
		if s, ok := it.(cast.Stmt); ok {
			return s, nil
		}
	}
	// Structured like every other parse failure, so batch consumers get a
	// position instead of scraping message text.
	return nil, &Error{Line: 1, Col: 1, Msg: "no statement in input"}
}

// ParseRecover parses as much of src as possible. When a top-level item
// fails, the error is recorded with its position and the parser
// resynchronizes at the next statement boundary (';' or a balanced '}' at
// nesting depth zero), so one broken function no longer suppresses every
// other loop in the file. The returned file holds the items that did parse;
// errs carries one structured error per failed region.
func ParseRecover(src string) (*cast.File, []*Error) {
	parses.Add(1)
	toks, err := clex.Lex(src)
	if err != nil {
		e := &Error{Msg: err.Error()}
		if line, col, ok := Position(err); ok {
			e.Line, e.Col = line, col
		}
		return &cast.File{}, []*Error{e}
	}
	p := &Parser{toks: toks, typedefs: map[string]bool{}}
	for k := range builtinTypes {
		p.typedefs[k] = true
	}
	f := &cast.File{}
	var errs []*Error
	for p.cur().Kind != clex.EOF {
		start := p.pos
		n, err := p.parseTopLevel()
		if err == nil {
			if n != nil {
				f.Items = append(f.Items, n)
			}
			// A parse that consumed nothing would loop forever; does not
			// happen with the current grammar, but guard anyway.
			if p.pos == start && n == nil {
				p.next()
			}
			continue
		}
		e := &Error{Msg: err.Error()}
		if line, col, ok := Position(err); ok {
			e.Line, e.Col = line, col
			e.Msg = errMessage(err)
		}
		errs = append(errs, e)
		if p.pos == start {
			p.next()
		}
		p.resync()
	}
	return f, errs
}

// errMessage strips the rendered position prefix from a structured error so
// recovery does not double-report it next to the Line/Col fields.
func errMessage(err error) string {
	var pe *Error
	if errors.As(err, &pe) {
		return pe.Msg
	}
	return err.Error()
}

// resync skips tokens until a statement boundary at nesting depth zero: the
// ';' ending a broken declaration or the '}' closing a broken function. A
// failure deep inside a function leaves unmatched closers behind (the parser
// already consumed the openers), so trailing stray '}' are swallowed too —
// at the top level a bare '}' is never the start of a valid item.
func (p *Parser) resync() {
	depth := 0
	for p.cur().Kind != clex.EOF {
		t := p.next()
		switch t.Text {
		case "{", "(", "[":
			depth++
		case ")", "]":
			if depth > 0 {
				depth--
			}
		case "}":
			if depth > 0 {
				depth--
			}
			if depth == 0 {
				p.swallowClosers()
				return
			}
		case ";":
			if depth == 0 {
				p.swallowClosers()
				return
			}
		}
	}
}

func (p *Parser) swallowClosers() {
	for p.cur().Kind != clex.EOF && p.cur().Text == "}" {
		p.next()
	}
}

func (p *Parser) cur() clex.Token  { return p.toks[p.pos] }
func (p *Parser) peek() clex.Token { return p.at(1) }

func (p *Parser) at(off int) clex.Token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+off]
}

func (p *Parser) next() clex.Token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(text string) bool {
	if p.cur().Kind != clex.EOF && p.cur().Text == text {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf("expected %q, got %q", text, t.Text)}
}

func (p *Parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) parseFile() (*cast.File, error) {
	f := &cast.File{}
	for p.cur().Kind != clex.EOF {
		n, err := p.parseTopLevel()
		if err != nil {
			return nil, err
		}
		if n != nil {
			f.Items = append(f.Items, n)
		}
	}
	return f, nil
}

// parseTopLevel parses a function definition, declaration, or loose
// statement. Corpus snippets are usually loose statements (a bare for-loop).
func (p *Parser) parseTopLevel() (cast.Node, error) {
	if p.cur().Kind == clex.Pragma {
		return p.parseStatement()
	}
	if p.startsDecl() {
		// Could be a declaration or a function definition; decide by
		// scanning for '(' after the declarator name at paren depth 0.
		save := p.pos
		fd, isFunc, err := p.tryFuncDef()
		if err != nil {
			return nil, err
		}
		if isFunc {
			return fd, nil
		}
		p.pos = save
		ds, err := p.parseDeclLine()
		if err != nil {
			return nil, err
		}
		return ds, nil
	}
	return p.parseStatement()
}

// startsDecl reports whether the current token can begin a declaration.
func (p *Parser) startsDecl() bool {
	t := p.cur()
	switch t.Kind {
	case clex.Keyword:
		switch t.Text {
		case "int", "char", "float", "double", "long", "short", "signed",
			"unsigned", "void", "const", "volatile", "static", "extern",
			"register", "struct", "union", "enum", "typedef", "auto",
			"inline", "restrict":
			return true
		}
		return false
	case clex.Ident:
		// A typedef name followed by an identifier or '*' begins a decl.
		if !p.typedefs[t.Text] {
			return false
		}
		n := p.peek()
		return n.Kind == clex.Ident || n.Text == "*"
	}
	return false
}

// tryFuncDef attempts to parse `type name(params) { body }`. Returns
// (nil,false,nil) if the construct is not a function definition.
func (p *Parser) tryFuncDef() (*cast.FuncDef, bool, error) {
	ts, err := p.parseTypeSpec()
	if err != nil {
		return nil, false, nil //nolint:nilerr // fall back to decl path
	}
	if p.cur().Kind != clex.Ident {
		return nil, false, nil
	}
	name := p.cur().Text
	if p.peek().Text != "(" {
		return nil, false, nil
	}
	p.next() // name
	p.next() // (
	var params []*cast.Decl
	if !p.accept(")") {
		for {
			if p.cur().Text == "void" && p.peek().Text == ")" {
				p.next()
				break
			}
			pt, err := p.parseTypeSpec()
			if err != nil {
				return nil, false, err
			}
			pd := &cast.Decl{Type: pt}
			if p.cur().Kind == clex.Ident {
				pd.Name = p.next().Text
			}
			for p.cur().Text == "[" {
				p.next()
				if p.cur().Text == "]" {
					pd.ArrayDims = append(pd.ArrayDims, nil)
				} else {
					dim, err := p.parseExpr(precAssign)
					if err != nil {
						return nil, false, err
					}
					pd.ArrayDims = append(pd.ArrayDims, dim)
				}
				if err := p.expect("]"); err != nil {
					return nil, false, err
				}
			}
			params = append(params, pd)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, false, err
		}
	}
	if p.cur().Text != "{" {
		// Function prototype: treat as a no-body definition.
		if p.accept(";") {
			return &cast.FuncDef{ReturnType: ts, Name: name, Params: params, Body: &cast.Block{}}, true, nil
		}
		return nil, false, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, false, err
	}
	return &cast.FuncDef{ReturnType: ts, Name: name, Params: params, Body: body}, true, nil
}

// parseTypeSpec parses qualifiers, struct/union tags, type names and
// pointer stars.
func (p *Parser) parseTypeSpec() (*cast.TypeSpec, error) {
	ts := &cast.TypeSpec{}
	seenType := false
	for {
		t := p.cur()
		if t.Kind == clex.Keyword {
			switch t.Text {
			case "const", "volatile", "static", "extern", "register", "auto", "inline", "restrict":
				ts.Quals = append(ts.Quals, t.Text)
				p.next()
				continue
			case "struct", "union":
				ts.Union = t.Text == "union"
				p.next()
				if p.cur().Kind != clex.Ident {
					return nil, p.errorf("expected struct tag")
				}
				ts.Struct = p.next().Text
				seenType = true
				continue
			case "int", "char", "float", "double", "long", "short", "signed", "unsigned", "void":
				ts.Names = append(ts.Names, t.Text)
				p.next()
				seenType = true
				continue
			}
		}
		if t.Kind == clex.Ident && !seenType && p.typedefs[t.Text] {
			ts.Names = append(ts.Names, t.Text)
			p.next()
			seenType = true
			continue
		}
		break
	}
	if !seenType && ts.Struct == "" {
		if len(ts.Quals) > 0 {
			ts.Names = append(ts.Names, "int") // e.g. `register i`
		} else {
			return nil, p.errorf("expected type, got %q", p.cur().Text)
		}
	}
	for p.accept("*") {
		ts.Ptr++
	}
	return ts, nil
}

// parseDeclLine parses `type a = 1, *b, c[10];` into a DeclStmt.
func (p *Parser) parseDeclLine() (*cast.DeclStmt, error) {
	isTypedef := p.accept("typedef")
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	ds := &cast.DeclStmt{}
	for {
		d := &cast.Decl{Type: cloneTypeSpec(base), IsTypedef: isTypedef}
		for p.accept("*") {
			d.Type.Ptr++
		}
		if p.cur().Kind != clex.Ident {
			return nil, p.errorf("expected declarator name, got %q", p.cur().Text)
		}
		d.Name = p.next().Text
		for p.cur().Text == "[" {
			p.next()
			if p.cur().Text == "]" {
				d.ArrayDims = append(d.ArrayDims, nil)
			} else {
				dim, err := p.parseExpr(precAssign)
				if err != nil {
					return nil, err
				}
				d.ArrayDims = append(d.ArrayDims, dim)
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if p.accept("=") {
			init, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		if isTypedef {
			p.typedefs[d.Name] = true
		}
		ds.Decls = append(ds.Decls, d)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return ds, nil
}

func (p *Parser) parseInitializer() (cast.Expr, error) {
	if p.cur().Text == "{" {
		p.next()
		il := &cast.InitList{}
		for p.cur().Text != "}" {
			e, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			il.Elems = append(il.Elems, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return il, nil
	}
	return p.parseExpr(precAssign)
}

func cloneTypeSpec(t *cast.TypeSpec) *cast.TypeSpec {
	c := &cast.TypeSpec{Struct: t.Struct, Union: t.Union, Ptr: t.Ptr}
	c.Quals = append(c.Quals, t.Quals...)
	c.Names = append(c.Names, t.Names...)
	return c
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *Parser) parseBlock() (*cast.Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &cast.Block{}
	for p.cur().Text != "}" {
		if p.cur().Kind == clex.EOF {
			return nil, p.errorf("unexpected EOF in block")
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *Parser) parseStatement() (cast.Stmt, error) {
	t := p.cur()
	if t.Kind == clex.Pragma {
		p.next()
		ps := &cast.PragmaStmt{Text: t.Text}
		if p.cur().Kind != clex.EOF && p.cur().Text != "}" {
			s, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			ps.Stmt = s
		}
		return ps, nil
	}
	switch t.Text {
	case "{":
		return p.parseBlock()
	case ";":
		p.next()
		return &cast.Empty{}, nil
	case "for":
		return p.parseFor()
	case "while":
		return p.parseWhile()
	case "do":
		return p.parseDoWhile()
	case "if":
		return p.parseIf()
	case "return":
		p.next()
		r := &cast.Return{}
		if p.cur().Text != ";" {
			e, err := p.parseExpr(precLowest)
			if err != nil {
				return nil, err
			}
			r.X = e
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return r, nil
	case "break":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &cast.Break{}, nil
	case "continue":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &cast.Continue{}, nil
	}
	if p.startsDecl() {
		return p.parseDeclLine()
	}
	e, err := p.parseExpr(precLowest)
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &cast.ExprStmt{X: e}, nil
}

func (p *Parser) parseFor() (cast.Stmt, error) {
	kw := p.next() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := &cast.For{Line: kw.Line, Col: kw.Col}
	if p.cur().Text != ";" {
		if p.startsDecl() {
			ds, err := p.parseDeclLine() // consumes ';'
			if err != nil {
				return nil, err
			}
			f.Init = ds
		} else {
			e, err := p.parseExpr(precLowest)
			if err != nil {
				return nil, err
			}
			f.Init = &cast.ExprStmt{X: e}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if p.cur().Text != ";" {
		c, err := p.parseExpr(precLowest)
		if err != nil {
			return nil, err
		}
		f.Cond = c
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if p.cur().Text != ")" {
		post, err := p.parseExpr(precLowest)
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseWhile() (cast.Stmt, error) {
	p.next()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr(precLowest)
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &cast.While{Cond: cond, Body: body}, nil
}

func (p *Parser) parseDoWhile() (cast.Stmt, error) {
	p.next()
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if err := p.expect("while"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr(precLowest)
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &cast.DoWhile{Body: body, Cond: cond}, nil
}

func (p *Parser) parseIf() (cast.Stmt, error) {
	p.next()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr(precLowest)
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	st := &cast.If{Cond: cond, Then: then}
	if p.accept("else") {
		els, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}
