// Command compar runs the S2S auto-parallelization baseline over a C file:
// it applies Par4All, AutoPar and Cetus, combines their results ComPar-style,
// and prints the annotated source (or the decline/failure reason).
//
// Usage:
//
//	compar file.c
//	compar -compiler cetus file.c
//	echo 'for (i = 0; i < n; i++) a[i] = b[i];' | compar -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pragformer/internal/s2s"
)

func main() {
	var (
		compiler = flag.String("compiler", "compar", "compiler: compar|cetus|autopar|par4all")
		verbose  = flag.Bool("v", false, "print analysis reasons")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: compar [-compiler name] [-v] <file.c | ->")
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "compar:", err)
		os.Exit(1)
	}

	var c s2s.Compiler
	switch *compiler {
	case "compar":
		c = s2s.NewComPar()
	case "cetus":
		c = s2s.Cetus{}
	case "autopar":
		c = s2s.AutoPar{}
	case "par4all":
		c = s2s.Par4All{}
	default:
		fmt.Fprintf(os.Stderr, "compar: unknown compiler %q\n", *compiler)
		os.Exit(2)
	}

	res, err := c.Compile(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: compile failed: %v\n", c.Name(), err)
		os.Exit(1)
	}
	if res.Directive == nil {
		fmt.Printf("// %s: no directive inserted\n", c.Name())
	}
	fmt.Print(res.Source)
	if *verbose {
		for _, r := range res.Reasons {
			fmt.Fprintf(os.Stderr, "// reason: %s\n", r)
		}
	}
}
