package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"pragformer/internal/dataset"
	"pragformer/internal/tokenize"
)

// sharedPipeline trains models once for the whole test package; experiments
// are read-only over its caches.
var (
	pipeOnce sync.Once
	pipe     *Pipeline
)

func testPipeline(t *testing.T) *Pipeline {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment pipeline is slow")
	}
	pipeOnce.Do(func() {
		pipe = NewPipeline(Config{Mode: Fast, Seed: 2})
	})
	return pipe
}

func TestTable3Shape(t *testing.T) {
	p := testPipeline(t)
	s := p.RunTable3().Stats
	if s.Total != p.P.CorpusTotal {
		t.Fatalf("total = %d", s.Total)
	}
	frac := float64(s.WithDirective) / float64(s.Total)
	if frac < 0.42 || frac > 0.48 {
		t.Errorf("directive fraction = %.3f, want ≈ 0.4485", frac)
	}
	if s.ScheduleDynamic >= s.Reduction || s.Reduction >= s.Private {
		t.Errorf("clause ordering violated: dyn %d < red %d < priv %d expected",
			s.ScheduleDynamic, s.Reduction, s.Private)
	}
}

func TestTable4Shape(t *testing.T) {
	p := testPipeline(t)
	h := p.RunTable4().Histogram
	if !(h[0] > h[1] && h[1] > h[2]) {
		t.Errorf("length histogram not decreasing: %v", h)
	}
}

func TestFigure3Sums(t *testing.T) {
	p := testPipeline(t)
	total := 0.0
	for _, f := range p.RunFigure3().Dist {
		total += f
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("domain fractions sum to %f", total)
	}
}

func TestTable5Consistent(t *testing.T) {
	p := testPipeline(t)
	tb := p.RunTable5()
	if tb.DirTrain+tb.DirValid+tb.DirTest != p.P.CorpusTotal {
		t.Errorf("directive sizes %d+%d+%d != %d", tb.DirTrain, tb.DirValid, tb.DirTest, p.P.CorpusTotal)
	}
	if tb.ClauseTrain <= tb.ClauseValid {
		t.Error("clause train should dominate")
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	p := testPipeline(t)
	rows := p.RunTable6().Rows
	if !strings.Contains(rows[tokenize.RText], "var0") {
		t.Errorf("replaced text row = %q", rows[tokenize.RText])
	}
	if !strings.HasPrefix(rows[tokenize.AST], "For:") {
		t.Errorf("AST row = %q", rows[tokenize.AST])
	}
}

func TestTable7Shape(t *testing.T) {
	p := testPipeline(t)
	st := p.RunTable7().Stats
	if st[tokenize.Text].TrainVocab <= st[tokenize.RText].TrainVocab {
		t.Errorf("Text vocab %d should exceed R-Text %d",
			st[tokenize.Text].TrainVocab, st[tokenize.RText].TrainVocab)
	}
	if st[tokenize.AST].AvgLength <= st[tokenize.Text].AvgLength {
		t.Errorf("AST length %.1f should exceed Text %.1f",
			st[tokenize.AST].AvgLength, st[tokenize.Text].AvgLength)
	}
	for repr, s := range st {
		if s.OOVTypes < 0 || s.TrainVocab == 0 {
			t.Errorf("%v: degenerate stats %+v", repr, s)
		}
	}
}

// TestTable8PaperOrdering is the headline reproduction check: PragFormer
// beats the BoW baseline, which beats ComPar, on directive classification.
func TestTable8PaperOrdering(t *testing.T) {
	p := testPipeline(t)
	tb := p.RunTable8()
	get := func(name string) float64 {
		for _, r := range tb.Rows {
			if strings.HasPrefix(r.Name, name) {
				return r.Report.Accuracy
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	prag, bw, cp := get("PragFormer"), get("BoW"), get("ComPar")
	if !(prag > bw) {
		t.Errorf("PragFormer %.3f should beat BoW %.3f (Table 8)", prag, bw)
	}
	if !(prag > cp) {
		t.Errorf("PragFormer %.3f should beat ComPar %.3f (Table 8)", prag, cp)
	}
	if prag < 0.7 {
		t.Errorf("PragFormer accuracy %.3f unexpectedly low", prag)
	}
	if tb.ComParFailed == 0 {
		t.Error("ComPar should fail on some snippets (paper: 221/1,274)")
	}
	frac := float64(tb.ComParFailed) / float64(tb.TestSize)
	if frac < 0.05 || frac > 0.35 {
		t.Errorf("ComPar failure rate %.2f far from the paper's ≈0.17", frac)
	}
}

func TestTable9PrivateOrdering(t *testing.T) {
	p := testPipeline(t)
	tb := p.RunTable9()
	prag := tb.Rows[0].Report
	cp := tb.Rows[2].Report
	if prag.Accuracy <= cp.Accuracy {
		t.Errorf("PragFormer %.3f should beat ComPar %.3f on private task", prag.Accuracy, cp.Accuracy)
	}
	if prag.Accuracy < 0.7 {
		t.Errorf("private accuracy %.3f too low", prag.Accuracy)
	}
}

func TestTable10ReductionOrdering(t *testing.T) {
	p := testPipeline(t)
	tb := p.RunTable10()
	prag := tb.Rows[0].Report
	if prag.Accuracy < 0.65 {
		t.Errorf("reduction accuracy %.3f too low", prag.Accuracy)
	}
}

func TestFigures456Curves(t *testing.T) {
	p := testPipeline(t)
	rc := p.RunFigures456()
	if len(rc.Histories) != 4 {
		t.Fatalf("histories = %d", len(rc.Histories))
	}
	acc := rc.FinalAccuracy()
	// The paper's headline representation finding: raw text beats the AST
	// serialization.
	if acc[tokenize.Text] < acc[tokenize.AST] {
		t.Errorf("Text %.3f should beat AST %.3f (Figure 4)", acc[tokenize.Text], acc[tokenize.AST])
	}
	for repr, h := range rc.Histories {
		if len(h.Epochs) != p.P.Epochs {
			t.Errorf("%v: %d epochs", repr, len(h.Epochs))
		}
		// Training loss must decrease overall (Figure 5 shape).
		first, last := h.Epochs[0].TrainLoss, h.Epochs[len(h.Epochs)-1].TrainLoss
		if last >= first {
			t.Errorf("%v: train loss %f → %f did not fall", repr, first, last)
		}
	}
}

func TestFigure7Buckets(t *testing.T) {
	p := testPipeline(t)
	f := p.RunFigure7()
	total := 0
	for _, b := range f.Buckets {
		total += b.Count
		if b.Errors > b.Count {
			t.Fatalf("bucket errors %d > count %d", b.Errors, b.Count)
		}
	}
	_, _, te := p.DirectiveSplit().Sizes()
	if total != te {
		t.Errorf("bucket counts sum to %d, want %d", total, te)
	}
}

func TestTable11HeldOut(t *testing.T) {
	p := testPipeline(t)
	tb := p.RunTable11()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Shape: PragFormer must beat ComPar on PolyBench, where ComPar's
	// frontend collapses on unexpanded macros (paper: 0.93 vs 0.43).
	if tb.Rows[0].Report.Accuracy <= tb.Rows[1].Report.Accuracy {
		t.Errorf("PragFormer Poly %.3f should beat ComPar Poly %.3f",
			tb.Rows[0].Report.Accuracy, tb.Rows[1].Report.Accuracy)
	}
	if tb.PolyParseFailures == 0 || tb.SPECParseFailures == 0 {
		t.Error("expected ComPar parse failures on held-out suites")
	}
}

func TestTable12Examples(t *testing.T) {
	p := testPipeline(t)
	exs := p.RunTable12Figure8()
	if len(exs) != 4 {
		t.Fatalf("examples = %d", len(exs))
	}
	for _, ex := range exs {
		if len(ex.Top) == 0 {
			t.Errorf("%s: no LIME attributions", ex.Name)
		}
		if ex.Prob < 0 || ex.Prob > 1 {
			t.Errorf("%s: p = %f", ex.Name, ex.Prob)
		}
	}
	// Example 2 (stderr dump) must be predicted negative: the fprintf
	// pattern is the paper's clearest qualitative case.
	if exs[1].Predicted {
		t.Errorf("stderr dump predicted positive (p=%.2f)", exs[1].Prob)
	}
}

func TestRunAllNames(t *testing.T) {
	p := testPipeline(t)
	var buf bytes.Buffer
	// Cheap experiments only; model-heavy ones are covered above.
	for _, name := range []string{"table3", "table4", "figure3", "table5", "table6", "table7"} {
		if err := p.Run(name, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := p.Run("nonsense", &buf); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	out := buf.String()
	for _, want := range []string{"Table 3", "Table 4", "Figure 3", "Table 5", "Table 6", "Table 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestInstancesOf(t *testing.T) {
	p := testPipeline(t)
	pb := p.PolyBench()
	ins := InstancesOf(pb, dataset.TaskDirective)
	if len(ins) != len(pb.Records) {
		t.Fatalf("instances = %d", len(ins))
	}
	npos := 0
	for _, in := range ins {
		if in.Label {
			npos++
		}
	}
	if npos != len(pb.Positives()) {
		t.Errorf("positive labels = %d want %d", npos, len(pb.Positives()))
	}
}

func TestParamsFor(t *testing.T) {
	fast, full := ParamsFor(Fast), ParamsFor(Full)
	if fast.CorpusTotal >= full.CorpusTotal {
		t.Error("fast corpus should be smaller")
	}
	if fast.D > full.D || fast.Epochs > full.Epochs {
		t.Error("fast model should be no larger")
	}
}
