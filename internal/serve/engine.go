// Package serve is the inference serving layer: a micro-batching engine
// over the batch-first advisor/core forward paths, plus the HTTP JSON API
// in http.go that cmd/serve exposes.
//
// Concurrent callers enqueue requests; a dispatcher goroutine per request
// kind coalesces up to MaxBatch requests (or whatever arrived within
// MaxWait of the first) into one batch and hands it to a replica worker,
// so N near-simultaneous callers cost one batched forward instead of N
// single ones. Batches in flight fan out across Replicas model replicas
// (deep copies via core.PragFormer.Clone, the same mechanism
// core.Replicate exposes to the trainer). An LRU cache keyed by the
// encoded id sequence (predictions) or the raw snippet (suggestions)
// short-circuits repeats before they reach the queue.
//
// The engine also supports hot model reload (Reload / POST /reload /
// SIGHUP in cmd/serve): a freshly loaded artifact's replicas are built
// off-path, then atomically swapped in. In-flight batches finish on the
// model they started with, queued and future requests run on the new one,
// and the result caches roll to a new generation — no request is dropped
// and no stale result survives the swap.
package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"pragformer/internal/advisor"
	"pragformer/internal/core"
	"pragformer/internal/obs"
	"pragformer/internal/tokenize"
)

// ErrClosed is returned by engine calls after Close.
var ErrClosed = errors.New("serve: engine closed")

// ErrSaturated is returned (in shed mode) when the batcher queue is full:
// the engine is refusing work it could only serve with collapsed latency.
// HTTP layers translate it into 429 + Retry-After.
var ErrSaturated = errors.New("serve: queue saturated")

// Config tunes the engine. Zero values take the documented defaults.
type Config struct {
	// MaxBatch is the largest coalesced batch (default 16).
	MaxBatch int
	// MaxWait bounds how long the dispatcher holds the first request of a
	// batch while more arrive (default 2ms). Latency floor under light
	// load, amortization ceiling under heavy load.
	MaxWait time.Duration
	// Replicas is how many model replicas batches fan out across, i.e. how
	// many batches can be in flight at once (default 1). Replica 0 is the
	// caller's model; further replicas are deep copies.
	Replicas int
	// CacheSize is the per-path LRU capacity in entries (default 1024;
	// negative disables caching).
	CacheSize int
	// QueueDepth caps each batcher's request queue (default
	// MaxBatch*Replicas). With Shed set it is the admission-control knob:
	// requests past the cap fail fast instead of stacking up.
	QueueDepth int
	// Shed makes a full queue return ErrSaturated instead of blocking the
	// caller — load shedding for the HTTP layer (429 + Retry-After) and
	// the tier router's admission signal. Off by default: library callers
	// keep the backpressure-by-blocking contract.
	Shed bool
	// Seed derives replica clone seeds (inference never draws from them,
	// but clones reseed their dropout streams).
	Seed int64
	// Backend selects the compute backend every served classifier runs on:
	// core.BackendFloat64, core.BackendInt8, or empty to serve bundles as
	// loaded. The selection is per engine and sticky: a hot reload converts
	// the freshly loaded bundle to the same backend before the swap, so a
	// float artifact shipped to an int8 engine is quantized on every
	// (re)load. Surfaced by Stats and GET /healthz.
	Backend string
	// Source, when set, produces a fresh model bundle for
	// ReloadFromSource — the POST /reload and SIGHUP path. It runs off
	// the request path (loading artifacts or retraining may be slow);
	// only the final swap is atomic. Nil disables source-driven reloads;
	// Reload with an explicit bundle always works.
	Source func() (*advisor.Models, error)
	// Metrics is the telemetry registry the engine records into (request
	// histograms, batcher counters, stage timings) and that GET /metrics
	// exposes. Nil gets a private registry, so embedded engines and tests
	// never cross-wire series.
	Metrics *obs.Registry
	// Trace makes the HTTP layer trace every request, not just those
	// carrying the X-PF-Trace header.
	Trace bool
	// Logger, when set, receives one structured line per traced request.
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
}

// PathStats counts one request kind's traffic. QueueDepth and InFlight
// are point-in-time admission signals (everything else is monotonic):
// the tier router polls them through GET /statz to decide where the next
// request can still land.
type PathStats struct {
	Requests  uint64 // calls accepted
	CacheHits uint64 // answered from the LRU without queueing
	Batches   uint64 // coalesced batches executed
	Items     uint64 // requests carried by those batches
	Sheds     uint64 // requests refused with ErrSaturated (shed mode)
	// DeadlineExceeded counts requests dropped because their client
	// deadline expired before the forward ran — at admission or while
	// waiting in the batch queue.
	DeadlineExceeded uint64
	// QueueDepth is the number of requests waiting in the batcher queue
	// right now; InFlight counts admitted requests not yet answered
	// (queued or inside a running batch).
	QueueDepth int
	InFlight   int
}

// AvgBatch is the mean coalesced batch size.
func (s PathStats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Items) / float64(s.Batches)
}

// HitRate is the fraction of requests answered from the LRU.
func (s PathStats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Requests)
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Predict PathStats
	Suggest PathStats
	// Reloads counts completed hot model swaps.
	Reloads uint64
	// Generation is the model generation currently serving: 0 for the
	// bundle the engine started with, bumped by every completed reload.
	Generation uint64
	// Backend names the compute backend of the served directive classifier
	// ("float64" | "int8").
	Backend string
	// Draining reports the engine is being taken out of rotation (set by
	// SetDraining ahead of process shutdown); Reloading reports a hot swap
	// is in progress. Both gate GET /readyz — the router routes neither
	// new traffic nor health-probe credit to a draining replica.
	Draining  bool
	Reloading bool
}

// suggestOut is the per-snippet suggest outcome carried through the
// batcher (and cached — errors are deterministic, so caching them is
// sound).
type suggestOut struct {
	s   *advisor.Suggestion
	err error
}

// Engine is the serving front end over one advisor.Models bundle. The
// bundle is held behind an atomic pointer so Reload can swap in a
// retrained model without pausing traffic.
type Engine struct {
	models  atomic.Pointer[advisor.Models]
	cfg     Config
	reg     *obs.Registry
	predict *batcher[[]int, string, float64]
	suggest *batcher[string, string, suggestOut]

	reloadMu sync.Mutex // serializes Reload swaps
	reloads  atomic.Uint64

	// draining marks the engine as being taken out of rotation (process
	// shutdown imminent); reloading marks a hot swap in progress. Both are
	// surfaced by Stats and gate GET /readyz.
	draining  atomic.Bool
	reloading atomic.Bool

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds and starts an engine. The directive classifier and vocabulary
// are required; clause classifiers are optional, exactly as for
// advisor.Suggest.
func New(models *advisor.Models, cfg Config) (*Engine, error) {
	if err := validateModels(models); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	models, err := models.WithBackend(cfg.Backend)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	e := &Engine{cfg: cfg, reg: cfg.Metrics, done: make(chan struct{})}
	if e.reg == nil {
		e.reg = obs.NewRegistry()
	}
	e.models.Store(models)

	predictRuns, suggestRuns := e.buildRuns(models)
	e.predict = newBatcher[[]int, string, float64](
		cfg.MaxBatch, cfg.MaxWait, cfg.CacheSize, cfg.QueueDepth, cfg.Shed,
		predictRuns, e.batcherMetrics("predict"), e.done, &e.wg)
	e.suggest = newBatcher[string, string, suggestOut](
		cfg.MaxBatch, cfg.MaxWait, cfg.CacheSize, cfg.QueueDepth, cfg.Shed,
		suggestRuns, e.batcherMetrics("suggest"), e.done, &e.wg)
	regBatcher(e.reg, "predict", e.predict)
	regBatcher(e.reg, "suggest", e.suggest)
	e.reg.CounterFunc("pf_reloads_total", "Completed hot model swaps.", nil, e.reloads.Load)
	e.reg.GaugeFunc("pf_model_generation", "Model generation currently serving.", nil,
		func() float64 { return float64(e.predict.cur.Load().gen) })
	return e, nil
}

// Metrics exposes the engine's telemetry registry (the one GET /metrics
// renders) so embedding binaries can add their own series.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// batcherMetrics builds one path's recorded-into telemetry series.
func (e *Engine) batcherMetrics(path string) batcherMetrics {
	l := obs.Labels{"path": path}
	return batcherMetrics{
		queueWait: e.reg.Histogram("pf_batch_queue_wait_seconds",
			"Time a request waited in the batch queue before its forward, in seconds.", l, nil),
		compute: e.reg.Histogram("pf_batch_compute_seconds",
			"Batched forward compute time, in seconds.", l, nil),
		deadline: e.reg.Counter("pf_deadline_exceeded_total",
			"Requests shed because the client deadline had already expired.", l),
	}
}

// regBatcher registers one batcher's counters and admission gauges.
func regBatcher[P any, K comparable, R any](reg *obs.Registry, path string, b *batcher[P, K, R]) {
	l := obs.Labels{"path": path}
	reg.CounterFunc("pf_batcher_requests_total", "Requests accepted by the batcher.", l, b.requests.Load)
	reg.CounterFunc("pf_cache_hits_total", "Requests answered from the LRU without queueing.", l, b.cacheHits.Load)
	reg.CounterFunc("pf_batches_total", "Coalesced batches executed.", l, b.batches.Load)
	reg.CounterFunc("pf_batch_items_total", "Requests carried by executed batches.", l, b.items.Load)
	reg.CounterFunc("pf_sheds_total", "Requests refused at admission (queue saturated).", l, b.sheds.Load)
	reg.GaugeFunc("pf_queue_depth", "Requests waiting in the batch queue right now.", l,
		func() float64 { return float64(len(b.queue)) })
	reg.GaugeFunc("pf_in_flight", "Admitted requests not yet answered.", l,
		func() float64 { return float64(b.inflight.Load()) })
}

func validateModels(models *advisor.Models) error {
	if models == nil || models.Directive == nil || models.Vocab == nil {
		return fmt.Errorf("serve: directive model and vocabulary are required")
	}
	return nil
}

// buildRuns constructs one generation of per-replica run functions over a
// model bundle — the expensive part of a reload (replica deep copies),
// done before anything is swapped.
func (e *Engine) buildRuns(models *advisor.Models) ([]func([][]int) ([]float64, []obs.Stage), []func([]string) ([]suggestOut, []obs.Stage)) {
	// Predict replicas: replica 0 serves from the bundle's model, the rest
	// from deep copies, so Replicas batches can run truly concurrently.
	predictRuns := make([]func([][]int) ([]float64, []obs.Stage), e.cfg.Replicas)
	directive := models.Directive
	vocab := directive.VocabSize()
	wrap := func(run func([][]int) []float64) func([][]int) ([]float64, []obs.Stage) {
		return func(batch [][]int) ([]float64, []obs.Stage) {
			// Requests are validated against the bundle that was current
			// when they arrived; a batch drained just after a reload may
			// carry ids the new vocabulary cannot embed. Clamp them to
			// [UNK] instead of letting the embedding lookup panic a
			// worker mid-swap.
			sanitizeIDs(batch, vocab)
			t0 := time.Now()
			out := run(batch)
			return out, []obs.Stage{{Name: "infer", Dur: time.Since(t0)}}
		}
	}
	predictRuns[0] = wrap(directive.PredictBatch)
	for r := 1; r < e.cfg.Replicas; r++ {
		// Float models are deep-copied per replica; other backends (the
		// quantized model) are immutable at inference time and shared —
		// one of quantization's selling points is that replicas cost no
		// extra memory.
		replica := directive
		if pf, ok := directive.(*core.PragFormer); ok {
			replica = pf.Clone(e.cfg.Seed + int64(r))
		}
		predictRuns[r] = wrap(replica.PredictBatch)
	}

	// Suggest workers share the Models: the advisor pipeline is read-only
	// over its classifiers, so concurrency needs no replicas — the workers
	// exist to let batches overlap. The per-batch stage hook splits the
	// advisor's time into infer vs corroborate for the request trace and
	// the pf_stage_duration_seconds histogram.
	suggestRun := func(codes []string) ([]suggestOut, []obs.Stage) {
		var stages []obs.Stage
		items, err := models.SuggestBatchStaged(codes, func(stage string, d time.Duration) {
			stages = append(stages, obs.Stage{Name: stage, Dur: d})
			e.reg.Histogram("pf_stage_duration_seconds",
				"Advisor pipeline stage time per batch, in seconds.",
				obs.Labels{"stage": stage}, nil).Observe(d.Seconds())
		})
		out := make([]suggestOut, len(codes))
		if err != nil {
			for i := range out {
				out[i] = suggestOut{err: err}
			}
			return out, stages
		}
		for i, it := range items {
			out[i] = suggestOut{s: it.Suggestion, err: it.Err}
		}
		return out, stages
	}
	suggestRuns := make([]func([]string) ([]suggestOut, []obs.Stage), e.cfg.Replicas)
	for r := range suggestRuns {
		suggestRuns[r] = suggestRun
	}
	return predictRuns, suggestRuns
}

// sanitizeIDs clamps out-of-vocabulary ids to [UNK] in place.
func sanitizeIDs(batch [][]int, vocab int) {
	for _, ids := range batch {
		for i, id := range ids {
			if id < 0 || id >= vocab {
				ids[i] = tokenize.UNK
			}
		}
	}
}

// Reload atomically swaps the served model bundle: replicas for the new
// bundle are built first (off-path), then the bundle pointer and both
// batchers' run sets are published and the result caches rolled. In-flight
// and queued requests are never dropped — batches already handed to a
// worker finish on the generation they loaded, everything later runs on
// the new models.
func (e *Engine) Reload(models *advisor.Models) error {
	if err := validateModels(models); err != nil {
		return err
	}
	// The engine's backend selection outlives any one bundle: convert the
	// incoming models (quantizing float classifiers on an int8 engine)
	// before anything is swapped.
	models, err := models.WithBackend(e.cfg.Backend)
	if err != nil {
		return fmt.Errorf("serve: reload: %w", err)
	}
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	// Readiness flips for the duration of the swap so a health-gated
	// rollout (the tier router's rolling reload) can hold new traffic
	// until the fresh generation is serving.
	e.reloading.Store(true)
	defer e.reloading.Store(false)
	predictRuns, suggestRuns := e.buildRuns(models)
	e.models.Store(models)
	e.predict.setRuns(predictRuns)
	e.suggest.setRuns(suggestRuns)
	e.reloads.Add(1)
	return nil
}

// SetDraining marks (or unmarks) the engine as draining: GET /readyz
// reports not-ready so routers stop sending new traffic, while in-flight
// and queued requests keep being served. cmd/serve sets it on SIGTERM
// before the HTTP server's graceful shutdown begins.
func (e *Engine) SetDraining(v bool) { e.draining.Store(v) }

// Draining reports whether SetDraining(true) is in effect.
func (e *Engine) Draining() bool { return e.draining.Load() }

// ReloadFromSource reloads from cfg.Source — the POST /reload and SIGHUP
// entry point.
func (e *Engine) ReloadFromSource() error {
	if e.cfg.Source == nil {
		return fmt.Errorf("serve: no reload source configured")
	}
	models, err := e.cfg.Source()
	if err != nil {
		return fmt.Errorf("serve: reload source: %w", err)
	}
	return e.Reload(models)
}

// idKey packs an id sequence into a compact string cache key.
func idKey(ids []int) string {
	buf := make([]byte, 0, 2*len(ids))
	var tmp [binary.MaxVarintLen64]byte
	for _, id := range ids {
		n := binary.PutUvarint(tmp[:], uint64(id))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// Predict returns the directive classifier's positive probability for an
// encoded id sequence, coalescing concurrent callers into batched
// forwards. ids is copied before it is enqueued: a caller that abandons a
// queued request (ctx cancellation) may freely reuse its slice even though
// a worker can still drain and cache the request later.
func (e *Engine) Predict(ctx context.Context, ids []int) (float64, error) {
	owned := make([]int, len(ids))
	copy(owned, ids)
	return e.predict.do(ctx, owned, idKey(owned))
}

// Suggest runs the full advisor pipeline for one snippet, coalescing
// concurrent callers into SuggestBatch calls. The returned Suggestion may
// be shared with other callers (cache hits) and must not be mutated.
func (e *Engine) Suggest(ctx context.Context, code string) (*advisor.Suggestion, error) {
	out, err := e.suggest.do(ctx, code, code)
	if err != nil {
		return nil, err
	}
	return out.s, out.err
}

// SuggestBatch fans a batch of snippets out through the suggest batcher
// concurrently: the dispatcher coalesces them (together with any other
// in-flight callers) into batched forwards, so a repo scan riding the
// engine shares batches with live traffic instead of bypassing it.
// Engine-level failures (cancellation, close) surface per item, matching
// advisor.Models.SuggestBatch's per-item error contract.
func (e *Engine) SuggestBatch(ctx context.Context, codes []string) ([]advisor.BatchItem, error) {
	items := make([]advisor.BatchItem, len(codes))
	var wg sync.WaitGroup
	for i, code := range codes {
		wg.Add(1)
		go func(i int, code string) {
			defer wg.Done()
			s, err := e.Suggest(ctx, code)
			items[i] = advisor.BatchItem{Suggestion: s, Err: err}
		}(i, code)
	}
	wg.Wait()
	return items, nil
}

// Models exposes the currently served bundle (the HTTP layer needs the
// vocabulary). The pointer may be superseded by a concurrent Reload; one
// request sees one coherent bundle.
func (e *Engine) Models() *advisor.Models { return e.models.Load() }

// Stats snapshots the engine counters, the serving model generation, and
// the compute backend name.
func (e *Engine) Stats() Stats {
	return Stats{
		Predict:    e.predict.stats(),
		Suggest:    e.suggest.stats(),
		Reloads:    e.reloads.Load(),
		Generation: e.predict.cur.Load().gen,
		Backend:    e.models.Load().Directive.BackendName(),
		Draining:   e.draining.Load(),
		Reloading:  e.reloading.Load(),
	}
}

// Close stops the dispatchers and workers and waits for them to exit.
// Pending calls return ErrClosed; Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.done) })
	e.wg.Wait()
}
