// Package cast defines the abstract syntax tree for the C subset handled by
// this project, together with a source printer, a pycparser-style DFS
// serializer (the paper's "AST" code representation, Table 6), and an
// identifier-canonicalization pass (the paper's "Replaced" representations).
package cast

// Node is implemented by every AST node.
type Node interface {
	isNode()
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	isExpr()
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	isStmt()
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

// File is a translation unit: a sequence of declarations, function
// definitions, and (for corpus snippets) loose statements.
type File struct {
	Items []Node
}

// FuncDef is a function definition with a body.
type FuncDef struct {
	ReturnType *TypeSpec
	Name       string
	Params     []*Decl
	Body       *Block
}

// ---------------------------------------------------------------------------
// Declarations and types
// ---------------------------------------------------------------------------

// TypeSpec is a (possibly qualified) type: specifier words such as
// "unsigned long", an optional struct/union tag, and a pointer depth.
type TypeSpec struct {
	Quals  []string // const, volatile, register, static, extern, restrict, inline
	Struct string   // non-empty for `struct Tag` / `union Tag`
	Union  bool
	Names  []string // e.g. {"unsigned","long"} or {"ssize_t"}
	Ptr    int      // number of '*'
}

// Decl declares a single variable, possibly with array dimensions and an
// initializer. Multi-declarator lines are split into consecutive Decls.
type Decl struct {
	Type      *TypeSpec
	Name      string
	ArrayDims []Expr // nil entries mean unsized []
	Init      Expr
	IsTypedef bool
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Block is a `{ ... }` compound statement.
type Block struct {
	Stmts []Stmt
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	X Expr
}

// DeclStmt wraps declarations appearing in statement position.
type DeclStmt struct {
	Decls []*Decl
}

// For is a C for-loop. Init may be a *DeclStmt or *ExprStmt or nil.
// Line and Col record the position of the `for` keyword (1-based) when the
// loop came from the parser; they are zero for synthesized loops and are
// ignored by the printer, serializer, and structural comparisons.
type For struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt

	Line, Col int
}

// While is a while-loop.
type While struct {
	Cond Expr
	Body Stmt
}

// DoWhile is a do-while loop.
type DoWhile struct {
	Body Stmt
	Cond Expr
}

// If is an if/else statement.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// Return is a return statement; X may be nil.
type Return struct {
	X Expr
}

// Break is a break statement.
type Break struct{}

// Continue is a continue statement.
type Continue struct{}

// Empty is a lone semicolon.
type Empty struct{}

// PragmaStmt attaches a raw pragma line (without the '#') to the statement
// that follows it, mirroring how pycparser associates OpenMP pragmas with
// their loop in the paper's corpus extraction.
type PragmaStmt struct {
	Text string // e.g. "pragma omp parallel for private(j)"
	Stmt Stmt   // the annotated statement; may be nil at end of block
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Ident is a variable or function name.
type Ident struct {
	Name string
}

// IntLit is an integer constant (text preserved verbatim).
type IntLit struct {
	Text string
}

// FloatLit is a floating constant.
type FloatLit struct {
	Text string
}

// CharLit is a character constant, quotes included.
type CharLit struct {
	Text string
}

// StrLit is a string constant, quotes included.
type StrLit struct {
	Text string
}

// BinaryOp is a binary operation `L Op R` (non-assignment).
type BinaryOp struct {
	Op   string
	L, R Expr
}

// Assign is an assignment `L Op R` where Op is one of = += -= *= /= %= etc.
type Assign struct {
	Op   string
	L, R Expr
}

// UnaryOp is a prefix or postfix unary operation. For postfix ++/-- the
// serializer uses pycparser's "p++"/"p--" spelling.
type UnaryOp struct {
	Op      string
	X       Expr
	Postfix bool
}

// ArrayRef is an array subscript `Arr[Index]`.
type ArrayRef struct {
	Arr   Expr
	Index Expr
}

// FuncCall is a function call.
type FuncCall struct {
	Fun  Expr
	Args []Expr
}

// Member is a struct member access `X.Field` or `X->Field`.
type Member struct {
	X     Expr
	Field string
	Arrow bool
}

// Ternary is the conditional operator `Cond ? Then : Else`.
type Ternary struct {
	Cond, Then, Else Expr
}

// Cast is a C cast `(Type) X`.
type Cast struct {
	Type *TypeSpec
	X    Expr
}

// Sizeof is `sizeof(Type)` or `sizeof expr`.
type Sizeof struct {
	Type *TypeSpec // one of Type/X set
	X    Expr
}

// Comma is the comma operator `L, R`.
type Comma struct {
	L, R Expr
}

// InitList is a brace initializer `{a, b, c}`.
type InitList struct {
	Elems []Expr
}

func (*File) isNode()       {}
func (*FuncDef) isNode()    {}
func (*TypeSpec) isNode()   {}
func (*Decl) isNode()       {}
func (*Block) isNode()      {}
func (*ExprStmt) isNode()   {}
func (*DeclStmt) isNode()   {}
func (*For) isNode()        {}
func (*While) isNode()      {}
func (*DoWhile) isNode()    {}
func (*If) isNode()         {}
func (*Return) isNode()     {}
func (*Break) isNode()      {}
func (*Continue) isNode()   {}
func (*Empty) isNode()      {}
func (*PragmaStmt) isNode() {}
func (*Ident) isNode()      {}
func (*IntLit) isNode()     {}
func (*FloatLit) isNode()   {}
func (*CharLit) isNode()    {}
func (*StrLit) isNode()     {}
func (*BinaryOp) isNode()   {}
func (*Assign) isNode()     {}
func (*UnaryOp) isNode()    {}
func (*ArrayRef) isNode()   {}
func (*FuncCall) isNode()   {}
func (*Member) isNode()     {}
func (*Ternary) isNode()    {}
func (*Cast) isNode()       {}
func (*Sizeof) isNode()     {}
func (*Comma) isNode()      {}
func (*InitList) isNode()   {}

func (*Block) isStmt()      {}
func (*ExprStmt) isStmt()   {}
func (*DeclStmt) isStmt()   {}
func (*For) isStmt()        {}
func (*While) isStmt()      {}
func (*DoWhile) isStmt()    {}
func (*If) isStmt()         {}
func (*Return) isStmt()     {}
func (*Break) isStmt()      {}
func (*Continue) isStmt()   {}
func (*Empty) isStmt()      {}
func (*PragmaStmt) isStmt() {}

func (*Ident) isExpr()    {}
func (*IntLit) isExpr()   {}
func (*FloatLit) isExpr() {}
func (*CharLit) isExpr()  {}
func (*StrLit) isExpr()   {}
func (*BinaryOp) isExpr() {}
func (*Assign) isExpr()   {}
func (*UnaryOp) isExpr()  {}
func (*ArrayRef) isExpr() {}
func (*FuncCall) isExpr() {}
func (*Member) isExpr()   {}
func (*Ternary) isExpr()  {}
func (*Cast) isExpr()     {}
func (*Sizeof) isExpr()   {}
func (*Comma) isExpr()    {}
func (*InitList) isExpr() {}

// Walk calls fn for node and every descendant in depth-first pre-order.
// If fn returns false the children of the current node are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch v := n.(type) {
	case *File:
		for _, it := range v.Items {
			Walk(it, fn)
		}
	case *FuncDef:
		for _, p := range v.Params {
			Walk(p, fn)
		}
		Walk(v.Body, fn)
	case *Decl:
		for _, d := range v.ArrayDims {
			if d != nil {
				Walk(d, fn)
			}
		}
		if v.Init != nil {
			Walk(v.Init, fn)
		}
	case *Block:
		for _, s := range v.Stmts {
			Walk(s, fn)
		}
	case *ExprStmt:
		Walk(v.X, fn)
	case *DeclStmt:
		for _, d := range v.Decls {
			Walk(d, fn)
		}
	case *For:
		if v.Init != nil {
			Walk(v.Init, fn)
		}
		if v.Cond != nil {
			Walk(v.Cond, fn)
		}
		if v.Post != nil {
			Walk(v.Post, fn)
		}
		Walk(v.Body, fn)
	case *While:
		Walk(v.Cond, fn)
		Walk(v.Body, fn)
	case *DoWhile:
		Walk(v.Body, fn)
		Walk(v.Cond, fn)
	case *If:
		Walk(v.Cond, fn)
		Walk(v.Then, fn)
		if v.Else != nil {
			Walk(v.Else, fn)
		}
	case *Return:
		if v.X != nil {
			Walk(v.X, fn)
		}
	case *PragmaStmt:
		if v.Stmt != nil {
			Walk(v.Stmt, fn)
		}
	case *BinaryOp:
		Walk(v.L, fn)
		Walk(v.R, fn)
	case *Assign:
		Walk(v.L, fn)
		Walk(v.R, fn)
	case *UnaryOp:
		Walk(v.X, fn)
	case *ArrayRef:
		Walk(v.Arr, fn)
		Walk(v.Index, fn)
	case *FuncCall:
		Walk(v.Fun, fn)
		for _, a := range v.Args {
			Walk(a, fn)
		}
	case *Member:
		Walk(v.X, fn)
	case *Ternary:
		Walk(v.Cond, fn)
		Walk(v.Then, fn)
		Walk(v.Else, fn)
	case *Cast:
		Walk(v.X, fn)
	case *Sizeof:
		if v.X != nil {
			Walk(v.X, fn)
		}
	case *Comma:
		Walk(v.L, fn)
		Walk(v.R, fn)
	case *InitList:
		for _, e := range v.Elems {
			Walk(e, fn)
		}
	}
}
