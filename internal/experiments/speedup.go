package experiments

import (
	"fmt"
	"io"
	"time"

	"pragformer/internal/core"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

// The speedup study is repo infrastructure rather than a paper artifact: it
// times an identical PragFormer training workload at data-parallel widths
// 1, 2 and 4 and reports throughput plus the final train loss of each run,
// making the engine's scaling (and its determinism contract — the losses
// agree to ≈1e-9 with dropout disabled) measurable from the experiment CLI.

// SpeedupRow is one worker-width measurement.
type SpeedupRow struct {
	Workers   int
	Seconds   float64
	Speedup   float64 // versus the Workers=1 row
	TrainLoss float64 // final-epoch training loss
	ValidLoss float64
}

// SpeedupTable reports the data-parallel scaling study.
type SpeedupTable struct {
	Examples int
	Epochs   int
	Rows     []SpeedupRow
}

// speedupWidths are the worker counts the study compares.
var speedupWidths = []int{1, 2, 4}

// RunSpeedup trains the directive-task model on a fixed reduced workload at
// each width. Dropout is zeroed so every row optimizes the identical
// deterministic objective and the loss columns double as a cross-width
// determinism check.
func (p *Pipeline) RunSpeedup() SpeedupTable {
	repr := tokenize.Text
	v := p.Vocab(repr)
	split := p.DirectiveSplit()
	trainSet := p.Examples(split.Train, repr)
	validSet := p.Examples(split.Valid, repr)
	if len(trainSet) > 192 {
		trainSet = trainSet[:192]
	}
	if len(validSet) > 64 {
		validSet = validSet[:64]
	}

	prm := p.P
	out := SpeedupTable{Examples: len(trainSet), Epochs: 2}
	for _, w := range speedupWidths {
		cfg := core.Config{
			Vocab: v.Size(), MaxLen: prm.MaxLen, D: prm.D, Heads: prm.Heads,
			Layers: prm.Layers, FFHidden: prm.FFHidden, Dropout: 0,
		}
		m, err := core.New(cfg, p.Cfg.Seed+9000)
		if err != nil {
			panic(err) // config bugs are programmer errors
		}
		p.progress("speedup study: training with %d workers", w)
		start := time.Now()
		h := train.Fit(m, trainSet, validSet, train.Config{
			Epochs: out.Epochs, BatchSize: prm.Batch, LR: prm.LR,
			ClipNorm: 1.0, Seed: p.Cfg.Seed + 9001, Workers: w,
		})
		sec := time.Since(start).Seconds()
		last := h.Epochs[len(h.Epochs)-1]
		row := SpeedupRow{Workers: w, Seconds: sec, TrainLoss: last.TrainLoss, ValidLoss: last.ValidLoss}
		if len(out.Rows) > 0 && sec > 0 {
			row.Speedup = out.Rows[0].Seconds / sec
		} else {
			row.Speedup = 1
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Print renders the table.
func (t SpeedupTable) Print(w io.Writer) {
	fmt.Fprintf(w, "Speedup: data-parallel training, %d examples × %d epochs\n", t.Examples, t.Epochs)
	fmt.Fprintf(w, "  %-8s %10s %9s %12s %12s\n", "workers", "seconds", "speedup", "train loss", "valid loss")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "  %-8d %10.3f %8.2fx %12.6f %12.6f\n",
			r.Workers, r.Seconds, r.Speedup, r.TrainLoss, r.ValidLoss)
	}
}
