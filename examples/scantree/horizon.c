/* A carried dependence past the model's token horizon: the classifier
 * reads at most 110 token positions, which this body fills with
 * independent elementwise updates before the final statement folds in
 * p[i - 1]. The model votes parallel on the prefix it can see; the
 * dependence analysis reads the whole body and refutes it — the
 * disagreement fixture behind SARIF rules PF1003 and PF1004. */

void update(double *p, double *q, double *r, double *s, int n) {
    int i;
    for (i = 1; i < n; i++) {
        p[i] = p[i] * 0.5;
        q[i] = q[i] * 0.5;
        r[i] = r[i] * 0.5;
        s[i] = s[i] * 0.5;
        p[i] = p[i] + q[i];
        r[i] = r[i] + s[i];
        q[i] = q[i] + 1.0;
        s[i] = s[i] + 1.0;
        p[i] = p[i] + p[i - 1];
    }
}
