// Package metrics computes the evaluation measurements the paper reports
// for every system: precision, recall, F1 and accuracy (§5.2), derived from
// a binary confusion matrix. Following the paper's tables, precision/recall/
// F1 are macro-averaged over the two classes and accuracy is overall.
package metrics

import "fmt"

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of recorded predictions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is the overall fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// PositivePrecision is TP / (TP + FP).
func (c Confusion) PositivePrecision() float64 { return safeDiv(c.TP, c.TP+c.FP) }

// PositiveRecall is TP / (TP + FN).
func (c Confusion) PositiveRecall() float64 { return safeDiv(c.TP, c.TP+c.FN) }

// NegativePrecision is TN / (TN + FN).
func (c Confusion) NegativePrecision() float64 { return safeDiv(c.TN, c.TN+c.FN) }

// NegativeRecall is TN / (TN + FP).
func (c Confusion) NegativeRecall() float64 { return safeDiv(c.TN, c.TN+c.FP) }

// Precision is the macro-averaged precision.
func (c Confusion) Precision() float64 {
	return (c.PositivePrecision() + c.NegativePrecision()) / 2
}

// Recall is the macro-averaged recall.
func (c Confusion) Recall() float64 {
	return (c.PositiveRecall() + c.NegativeRecall()) / 2
}

// F1 is the macro-averaged F1 score.
func (c Confusion) F1() float64 {
	return (f1(c.PositivePrecision(), c.PositiveRecall()) +
		f1(c.NegativePrecision(), c.NegativeRecall())) / 2
}

// PositiveF1 is the F1 of the positive class alone.
func (c Confusion) PositiveF1() float64 {
	return f1(c.PositivePrecision(), c.PositiveRecall())
}

// Report is one evaluation row (a table line in the paper).
type Report struct {
	Precision, Recall, F1, Accuracy float64
}

// Report summarizes the confusion matrix.
func (c Confusion) Report() Report {
	return Report{Precision: c.Precision(), Recall: c.Recall(), F1: c.F1(), Accuracy: c.Accuracy()}
}

// String renders a report like the paper's tables.
func (r Report) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f Acc=%.2f", r.Precision, r.Recall, r.F1, r.Accuracy)
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func safeDiv(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
