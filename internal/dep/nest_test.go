package dep

import (
	"strings"
	"testing"

	"pragformer/internal/cast"
	"pragformer/internal/pragma"
)

func analyzeOpts(t *testing.T, src string, opts Options) *Analysis {
	t.Helper()
	loop, funcs := parseLoop(t, src)
	return AnalyzeLoopOpts(loop, funcs, opts)
}

var allConversions = Options{ArrayPrivatization: true, ArrayReductions: true}

// --- Direction/distance vectors over the nest ---------------------------------

func TestNestOuterCarriedFlow(t *testing.T) {
	a := analyze(t, `for (i = 1; i < n; i++) for (j = 0; j < m; j++) a[i][j] = a[i-1][j] + 1;`)
	if a.Parallelizable {
		t.Fatalf("outer-carried flow dependence missed: %v", a.Reasons)
	}
	if len(a.Witnesses) != 1 {
		t.Fatalf("want one witness, got %+v", a.Witnesses)
	}
	w := a.Witnesses[0]
	if w.Array != "a" || w.Kind != "flow" {
		t.Errorf("witness kind: %+v", w)
	}
	if got := strings.Join(w.Vector, ""); got != "<=" {
		t.Errorf("vector = %q, want \"<=\"", got)
	}
	if w.Distance != "(1,0)" {
		t.Errorf("distance = %q, want (1,0)", w.Distance)
	}
	if !w.Source.Write || w.Sink.Write {
		t.Errorf("flow witness must run write -> read: %+v", w)
	}
	if w.Source.Expr != "a[i][j]" || w.Sink.Expr != "a[i - 1][j]" {
		t.Errorf("sites: %+v", w)
	}
}

func TestNestAntiDependenceNormalized(t *testing.T) {
	a := analyze(t, `for (i = 0; i < n; i++) a[i] = a[i+1] * 2;`)
	if a.Parallelizable {
		t.Fatalf("anti dependence missed: %v", a.Reasons)
	}
	w := a.Witnesses[0]
	// Lexicographically positive normalization: the read (earlier iteration)
	// becomes the source, so the kind is anti with a positive distance.
	if w.Kind != "anti" || w.Distance != "(1)" {
		t.Errorf("witness = %+v, want anti distance (1)", w)
	}
	if w.Source.Write || !w.Sink.Write {
		t.Errorf("anti witness must run read -> write: %+v", w)
	}
}

func TestNestInnerOnlyCarriedIsSafe(t *testing.T) {
	// The j-level recurrence is carried by the inner loop; the outer distance
	// is pinned to zero, so the outer loop still parallelizes.
	a := analyze(t, `for (i = 0; i < n; i++) for (j = 1; j < m; j++) a[i][j] = a[i][j-1] + b[i][j];`)
	if !a.Parallelizable {
		t.Fatalf("inner-only dependence should not block the outer loop: %v", a.Reasons)
	}
}

func TestNestDecreasingLoopDependence(t *testing.T) {
	a := analyze(t, `for (i = 9; i >= 1; i--) a[i] = a[i-1];`)
	if a.Parallelizable {
		t.Fatalf("dependence in decreasing loop missed: %v", a.Reasons)
	}
	w := a.Witnesses[0]
	// i descends, so the write to a[i-1] happens after the read: anti, and
	// the normalized distance is one iteration.
	if w.Kind != "anti" || w.Distance != "(1)" {
		t.Errorf("witness = %+v, want anti distance (1)", w)
	}
}

func TestNestSymbolicLowerBoundDistance(t *testing.T) {
	a := analyze(t, `for (i = k; i < k + 8; i++) a[i] = a[i-2];`)
	if a.Parallelizable {
		t.Fatalf("distance-2 flow dependence missed: %v", a.Reasons)
	}
	if w := a.Witnesses[0]; w.Kind != "flow" || w.Distance != "(2)" {
		t.Errorf("witness = %+v, want flow distance (2)", w)
	}
}

func TestNestDepthRecorded(t *testing.T) {
	a := analyze(t, `for (i = 0; i < n; i++) for (j = 0; j < m; j++) b[i][j] = 0;`)
	if a.NestDepth != 2 {
		t.Errorf("NestDepth = %d, want 2", a.NestDepth)
	}
}

// --- Trip-count and Banerjee refutations --------------------------------------

func TestTripCountRefutesLongDistance(t *testing.T) {
	// The shift is farther than the loop runs: no iteration pair collides.
	a := analyze(t, `for (i = 0; i < 10; i++) a[i] = a[i+20];`)
	if !a.Parallelizable {
		t.Fatalf("trip-count refutation failed: %v", a.Reasons)
	}
}

func TestTripCountInclusiveBound(t *testing.T) {
	a := analyze(t, `for (i = 0; i <= 9; i++) a[i] = a[i+10];`)
	if !a.Parallelizable {
		t.Fatalf("inclusive-bound refutation failed: %v", a.Reasons)
	}
}

func TestNegativeStepRefutation(t *testing.T) {
	a := analyze(t, `for (i = 9; i >= 0; i--) a[i] = a[i+10];`)
	if !a.Parallelizable {
		t.Fatalf("negative-step refutation failed: %v", a.Reasons)
	}
}

func TestBanerjeeBoundsRefute(t *testing.T) {
	// weak SIV: u - 2t = -100 has no solution with t,u in [0,9].
	a := analyze(t, `for (i = 0; i < 10; i++) a[2*i] = a[i+100];`)
	if !a.Parallelizable {
		t.Fatalf("Banerjee bounds refutation failed: %v", a.Reasons)
	}
}

func TestWeakSIVStillConservative(t *testing.T) {
	// a[2i] = a[i] genuinely collides across iterations (t=1 writes a[2],
	// u=2 reads a[2]); the bounds test must not refute it.
	a := analyze(t, `for (i = 0; i < 10; i++) a[2*i] = a[i];`)
	if a.Parallelizable {
		t.Fatalf("weak SIV collision missed: %v", a.Reasons)
	}
	if len(a.Witnesses) == 0 {
		t.Fatal("refutation must carry a witness")
	}
}

func TestBanerjeePinsOuterMIV(t *testing.T) {
	// Linearized row update with constant stride: 10*i + j only collides at
	// equal outer iterations, so the direction-constrained bounds test pins
	// the outer distance to zero.
	a := analyze(t, `for (i = 0; i < 10; i++) for (j = 0; j < 10; j++) a[10*i + j] = a[10*i + j] + 1.0;`)
	if !a.Parallelizable {
		t.Fatalf("MIV outer pin failed: %v", a.Reasons)
	}
}

func TestDelinearizeSymbolicStride(t *testing.T) {
	// c[i*n + j] with j running exactly [0, n): behaves like c[i][j].
	a := analyze(t, `for (i = 0; i < m; i++) for (j = 0; j < n; j++) c[i*n + j] = c[i*n + j] * 2.0;`)
	if !a.Parallelizable {
		t.Fatalf("delinearization failed: %v", a.Reasons)
	}
}

func TestDelinearizeRequiresMatchingRange(t *testing.T) {
	// The fast variable overruns the stride (j goes to n+1), so rows overlap
	// and the access must stay refuted.
	a := analyze(t, `for (i = 0; i < m; i++) for (j = 0; j < n + 1; j++) c[i*n + j] = c[i*n + j] * 2.0;`)
	if a.Parallelizable {
		t.Fatalf("overlapping linearized rows wrongly parallelized: %v", a.Reasons)
	}
}

// --- Privatization and array reductions ---------------------------------------

const privSrc = `
for (i = 0; i < n; i++) {
    for (j = 0; j < 8; j++) t[j] = a[i][j] * 2.0;
    for (j = 0; j < 8; j++) b[i][j] = t[j] + 1.0;
}`

func TestArrayPrivatization(t *testing.T) {
	// Conversions off: the scratch array refutes the loop.
	base := analyze(t, privSrc)
	if base.Parallelizable {
		t.Fatalf("scratch array must refute without privatization: %v", base.Reasons)
	}
	// Conversions on: t becomes private and the loop parallelizes.
	a := analyzeOpts(t, privSrc, allConversions)
	if !a.Parallelizable {
		t.Fatalf("privatization failed: %v", a.Reasons)
	}
	found := false
	for _, p := range a.Private {
		if p == "t" {
			found = true
		}
	}
	if !found {
		t.Errorf("t missing from Private: %v", a.Private)
	}
	if len(a.Converted) != 1 || a.Converted[0] != "t" {
		t.Errorf("Converted = %v, want [t]", a.Converted)
	}
	d := a.Directive()
	if d == nil || !strings.Contains(d.String(), "private(") {
		t.Errorf("directive missing private clause: %v", d)
	}
}

func TestPrivatizationRejectsConflictingInnerHeaders(t *testing.T) {
	// The second sibling loop reads t[4..7], which the first never wrote this
	// iteration: values leak across outer iterations, so no privatization.
	src := `
for (i = 0; i < n; i++) {
    for (j = 0; j < 4; j++) t[j] = a[i][j];
    for (j = 0; j < 8; j++) b[i][j] = t[j];
}`
	a := analyzeOpts(t, src, allConversions)
	if a.Parallelizable {
		t.Fatalf("conflicting inner headers wrongly privatized: %v", a.Reasons)
	}
}

func TestPrivatizationRejectsReadFirst(t *testing.T) {
	src := `
for (i = 0; i < n; i++) {
    for (j = 0; j < 8; j++) b[i][j] = t[j];
    for (j = 0; j < 8; j++) t[j] = a[i][j];
}`
	a := analyzeOpts(t, src, allConversions)
	if a.Parallelizable {
		t.Fatalf("read-before-write scratch wrongly privatized: %v", a.Reasons)
	}
}

func TestArrayReductionHistogram(t *testing.T) {
	src := `for (i = 0; i < n; i++) hist[b[i]] += 1;`
	base := analyze(t, src)
	if base.Parallelizable {
		t.Fatalf("histogram must refute without reduction recognition: %v", base.Reasons)
	}
	if !strings.Contains(strings.Join(base.Reasons, " "), "non-affine subscript") {
		t.Errorf("reasons: %v", base.Reasons)
	}
	a := analyzeOpts(t, src, allConversions)
	if !a.Parallelizable {
		t.Fatalf("array reduction failed: %v", a.Reasons)
	}
	want := pragma.Reduction{Op: "+", Vars: []string{"hist"}}
	found := false
	for _, r := range a.Reductions {
		if r.Op == want.Op && len(r.Vars) == 1 && r.Vars[0] == "hist" {
			found = true
		}
	}
	if !found {
		t.Errorf("Reductions = %v, want +:hist", a.Reductions)
	}
	if len(a.Converted) != 1 || a.Converted[0] != "hist" {
		t.Errorf("Converted = %v, want [hist]", a.Converted)
	}
}

func TestArrayReductionRejectsMixedOps(t *testing.T) {
	src := `
for (i = 0; i < n; i++) {
    hist[b[i]] += 1;
    hist[c[i]] *= 2;
}`
	a := analyzeOpts(t, src, allConversions)
	if a.Parallelizable {
		t.Fatalf("mixed-operator accumulation wrongly converted: %v", a.Reasons)
	}
}

func TestArrayReductionRejectsOutsideRead(t *testing.T) {
	src := `
for (i = 0; i < n; i++) {
    hist[b[i]] += 1;
    s = s + hist[i];
}`
	a := analyzeOpts(t, src, allConversions)
	if a.Parallelizable {
		t.Fatalf("accumulated array with outside read wrongly converted: %v", a.Reasons)
	}
}

// --- Witnesses ----------------------------------------------------------------

func TestWitnessPositionsAnchorToCanonicalText(t *testing.T) {
	loop, funcs := parseLoop(t, `for (i = 1; i < n; i++) a[i] = a[i-1] + 1;`)
	a := AnalyzeLoop(loop, funcs)
	if a.Parallelizable || len(a.Witnesses) != 1 {
		t.Fatalf("want one refuting witness, got %+v", a)
	}
	w := a.Witnesses[0]
	if w.Source.Line <= 0 || w.Source.Col <= 0 || w.Sink.Line <= 0 || w.Sink.Col <= 0 {
		t.Fatalf("witness sites missing positions: %+v", w)
	}
	text := cast.Print(loop)
	lines := strings.Split(text, "\n")
	check := func(s Site) {
		if s.Line > len(lines) {
			t.Fatalf("site line %d beyond snippet (%d lines)", s.Line, len(lines))
		}
		at := lines[s.Line-1][s.Col-1:]
		if !strings.HasPrefix(at, s.Expr) {
			t.Errorf("snippet at %d:%d is %q, want prefix %q", s.Line, s.Col, at, s.Expr)
		}
	}
	check(w.Source)
	check(w.Sink)
}

func TestScalarWitness(t *testing.T) {
	a := analyze(t, `for (i = 1; i < n; i++) x = x * a[i] + 1.0;`)
	if a.Parallelizable {
		t.Fatalf("scalar recurrence missed: %v", a.Reasons)
	}
	if len(a.Witnesses) != 1 {
		t.Fatalf("want one witness, got %+v", a.Witnesses)
	}
	w := a.Witnesses[0]
	if w.Array != "x" || w.Kind != "flow" || w.Distance != "(1)" {
		t.Errorf("scalar witness = %+v", w)
	}
}

func TestBailWitnessIsNotConcrete(t *testing.T) {
	a := analyze(t, `for (i = 0; i < n; i++) a[b[i]] = 0;`)
	if a.Parallelizable {
		t.Fatalf("non-affine write missed: %v", a.Reasons)
	}
	if len(a.Witnesses) != 1 || a.Witnesses[0].Kind != "unknown" || a.Witnesses[0].Concrete() {
		t.Errorf("bail witness = %+v", a.Witnesses)
	}
}

func TestWitnessStableAcrossRuns(t *testing.T) {
	src := `for (i = 1; i < n; i++) { a[i] = a[i-1]; c[i] = c[i+2]; }`
	first := analyze(t, src)
	for run := 0; run < 5; run++ {
		again := analyze(t, src)
		if len(again.Witnesses) != len(first.Witnesses) {
			t.Fatalf("witness count changed: %d vs %d", len(again.Witnesses), len(first.Witnesses))
		}
		for i := range first.Witnesses {
			if first.Witnesses[i].String() != again.Witnesses[i].String() {
				t.Fatalf("witness %d changed: %q vs %q", i, first.Witnesses[i], again.Witnesses[i])
			}
		}
	}
}
