package tier

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// Per-client admission: a token-bucket limiter keyed on the caller's
// identity (the X-Client-ID header when present, else the remote host).
// Buckets refill at RatePerSec with Burst capacity; an empty bucket maps
// to HTTP 429 + Retry-After at the handler layer — the router's first
// admission gate, before any replica is consulted.

type limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets caps the client map so an address-spinning caller cannot
// grow router memory without bound; at the cap, the stalest buckets are
// evicted (they are full or nearly full anyway after sitting idle).
const maxBuckets = 4096

// newLimiter returns nil when rate <= 0 — admission per client disabled.
func newLimiter(rate float64, burst int) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow spends one token from key's bucket, reporting whether the request
// is admitted. A nil limiter admits everything.
func (l *limiter) allow(key string, now time.Time) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.evictStale(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictStale drops buckets idle long enough to have refilled completely —
// forgetting them loses nothing. Called with l.mu held.
func (l *limiter) evictStale(now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= full {
			delete(l.buckets, k)
		}
	}
	// Pathological case: every bucket is active. Drop arbitrary entries —
	// a reset bucket only grants one extra burst.
	for k := range l.buckets {
		if len(l.buckets) < maxBuckets {
			break
		}
		delete(l.buckets, k)
	}
}

// clientKey identifies the caller for rate limiting.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
