package s2s

import (
	"errors"
	"strings"
	"testing"

	"pragformer/internal/pragma"
)

func compile(t *testing.T, c Compiler, src string) Result {
	t.Helper()
	res, err := c.Compile(src)
	if err != nil {
		t.Fatalf("%s.Compile(%q): %v", c.Name(), src, err)
	}
	return res
}

func TestCetusSimpleLoop(t *testing.T) {
	res := compile(t, Cetus{}, "for (i = 0; i < n; i++) a[i] = b[i] + c[i];")
	if res.Directive == nil {
		t.Fatalf("no directive: %v", res.Reasons)
	}
	// Pitfall: explicit private(i).
	if !strings.Contains(res.Directive.String(), "private(i)") {
		t.Errorf("directive = %q, want explicit private(i)", res.Directive)
	}
	if !strings.Contains(res.Source, "#pragma omp parallel for") {
		t.Errorf("source not annotated:\n%s", res.Source)
	}
}

func TestCetusRejectsRegister(t *testing.T) {
	_, err := Cetus{}.Compile("for (register int i = 0; i < n; i++) a[i] = 0;")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v, want ErrParse", err)
	}
}

func TestCetusRejectsUnknownTypes(t *testing.T) {
	_, err := Cetus{}.Compile("for (i = 0; i < ((ssize_t) image->colors); i++) image->colormap[i].opacity = (IndexPacket) i;")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v, want ErrParse", err)
	}
}

func TestCetusDeclinesRecurrence(t *testing.T) {
	res := compile(t, Cetus{}, "for (i = 1; i < n; i++) a[i] = a[i-1] + 1;")
	if res.Directive != nil {
		t.Fatalf("directive on recurrence: %q", res.Directive)
	}
}

func TestCetusCompoundReduction(t *testing.T) {
	res := compile(t, Cetus{}, "for (i = 0; i < n; i++) sum += a[i];")
	if res.Directive == nil || !res.Directive.HasReduction() {
		t.Fatalf("compound reduction missed: %+v (%v)", res.Directive, res.Reasons)
	}
}

func TestCetusMissesExplicitReduction(t *testing.T) {
	// Pitfall: `s = s + e` form not recognized → loop left serial.
	res := compile(t, Cetus{}, "for (i = 0; i < n; i++) sum = sum + a[i];")
	if res.Directive != nil {
		t.Fatalf("explicit-form reduction should be declined, got %q", res.Directive)
	}
}

func TestCetusMissesMaxReduction(t *testing.T) {
	res := compile(t, Cetus{}, "for (i = 0; i < n; i++) m = fmax(m, a[i]);")
	if res.Directive != nil {
		t.Fatalf("max reduction should be declined, got %q", res.Directive)
	}
}

func TestCetusParallelizesTinyLoops(t *testing.T) {
	// Pitfall: profitability threshold far below human judgment. Trip
	// count 8 is unprofitable but Cetus still annotates it.
	res := compile(t, Cetus{}, "for (i = 0; i < 8; i++) a[i] = 0;")
	if res.Directive == nil {
		t.Fatalf("tiny loop should still get a directive: %v", res.Reasons)
	}
	// Truly degenerate loops are skipped.
	res = compile(t, Cetus{}, "for (i = 0; i < 2; i++) a[i] = 0;")
	if res.Directive != nil {
		t.Fatalf("trip-2 loop got a directive")
	}
}

func TestCetusNoDynamicSchedule(t *testing.T) {
	src := `int MoreCalc(int i) { return i % 3; }
int Calc(int i) { return i * i; }
for (i = 0; i <= N; i++) if (MoreCalc(i)) out[i] = Calc(i);`
	res := compile(t, Cetus{}, src)
	if res.Directive == nil {
		t.Fatalf("unbalanced loop declined: %v", res.Reasons)
	}
	if res.Directive.Schedule.String() != "static" {
		t.Errorf("schedule = %q, Cetus must stay static", res.Directive.Schedule)
	}
}

func TestCetusDeclinesUnknownCalls(t *testing.T) {
	res := compile(t, Cetus{}, "for (i = 0; i < n; i++) a[i] = mystery(i);")
	if res.Directive != nil {
		t.Fatal("directive despite unknown callee")
	}
}

func TestCetusStripsExistingPragma(t *testing.T) {
	res := compile(t, Cetus{}, "#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = 0;")
	if strings.Count(res.Source, "#pragma") != 1 {
		t.Errorf("source = %q", res.Source)
	}
}

func TestAutoParRejectsStructs(t *testing.T) {
	_, err := AutoPar{}.Compile("for (i = 0; i < n; i++) pts[i].x = 0;")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v", err)
	}
}

func TestAutoParRejectsDoWhile(t *testing.T) {
	_, err := AutoPar{}.Compile("do { x--; } while (x > 0);\nfor (i = 0; i < n; i++) a[i] = 0;")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v", err)
	}
}

func TestAutoParMissesAllReductions(t *testing.T) {
	res := compile(t, AutoPar{}, "for (i = 0; i < n; i++) sum += a[i];")
	if res.Directive != nil {
		t.Fatalf("AutoPar should decline reductions, got %q", res.Directive)
	}
}

func TestAutoParSimpleLoop(t *testing.T) {
	res := compile(t, AutoPar{}, "for (i = 0; i < n; i++) { t = a[i]; b[i] = t * t; }")
	if res.Directive == nil {
		t.Fatalf("declined: %v", res.Reasons)
	}
	if !res.Directive.HasPrivate() {
		t.Errorf("directive = %q, want private clauses", res.Directive)
	}
}

func TestPar4AllFailsOnCalls(t *testing.T) {
	_, err := Par4All{}.Compile("for (i = 0; i < n; i++) a[i] = sqrt(b[i]);")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v", err)
	}
}

func TestPar4AllSimplestLoopOnly(t *testing.T) {
	res := compile(t, Par4All{}, "for (i = 0; i < n; i++) a[i] = b[i] + 1;")
	if res.Directive == nil {
		t.Fatalf("declined: %v", res.Reasons)
	}
	// Needs privatization → declines.
	res = compile(t, Par4All{}, "for (i = 0; i < n; i++) { t = a[i]; b[i] = t; }")
	if res.Directive != nil {
		t.Errorf("Par4All should decline loops needing privatization")
	}
}

func TestComParPicksRichestDirective(t *testing.T) {
	c := NewComPar()
	res, err := c.Compile("for (i = 0; i < n; i++) sum += a[i];")
	if err != nil {
		t.Fatal(err)
	}
	// Par4All fails or declines, AutoPar declines, Cetus produces
	// reduction — ComPar must surface Cetus's result.
	if res.Directive == nil || !res.Directive.HasReduction() {
		t.Fatalf("directive = %v (%v)", res.Directive, res.Reasons)
	}
}

func TestComParFailsOnlyWhenAllFail(t *testing.T) {
	c := NewComPar()
	// register breaks Cetus, AutoPar and Par4All alike.
	_, err := c.Compile("for (register int i = 0; i < n; i++) a[i] = 0;")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v", err)
	}
	// Struct access breaks AutoPar/Par4All but Cetus handles it.
	res, err := c.Compile("for (i = 0; i < n; i++) pts[i].x = i;")
	if err != nil {
		t.Fatalf("ComPar should survive via Cetus: %v", err)
	}
	if res.Directive == nil {
		t.Fatalf("no directive: %v", res.Reasons)
	}
}

func TestComParNoDirectiveStillCompiles(t *testing.T) {
	c := NewComPar()
	res, err := c.Compile("for (i = 1; i < n; i++) a[i] = a[i-1];")
	if err != nil {
		t.Fatal(err)
	}
	if res.Directive != nil {
		t.Fatal("directive on serial loop")
	}
}

func TestAllCompilersIgnoreIOLoops(t *testing.T) {
	src := `for (i = 0; i < n; i++) { fprintf(stderr, "%d", a[i]); }`
	for _, c := range []Compiler{Cetus{}, AutoPar{}} {
		res, err := c.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if res.Directive != nil {
			t.Errorf("%s parallelized an I/O loop", c.Name())
		}
	}
}

func TestNoForLoopIsError(t *testing.T) {
	for _, c := range []Compiler{Cetus{}, AutoPar{}, Par4All{}} {
		if _, err := c.Compile("x = y + 1;"); !errors.Is(err, ErrParse) {
			t.Errorf("%s: err = %v", c.Name(), err)
		}
	}
}

func TestNames(t *testing.T) {
	if (Cetus{}).Name() != "Cetus" || (AutoPar{}).Name() != "AutoPar" ||
		(Par4All{}).Name() != "Par4All" || NewComPar().Name() != "ComPar" {
		t.Error("compiler names wrong")
	}
}

func TestScoreOrdering(t *testing.T) {
	none := Result{}
	plain := Result{Directive: mustDirective(t, "#pragma omp parallel for")}
	rich := Result{Directive: mustDirective(t, "#pragma omp parallel for private(i, j) reduction(+:s)")}
	if !(score(rich) > score(plain) && score(plain) > score(none)) {
		t.Errorf("scores: rich=%d plain=%d none=%d", score(rich), score(plain), score(none))
	}
}

func mustDirective(t *testing.T, line string) *pragma.Directive {
	t.Helper()
	d, err := pragma.Parse(line)
	if err != nil || d == nil {
		t.Fatalf("parse %q: %v", line, err)
	}
	return d
}
