// pflint is pragformer's project lint tool, designed to run under
// `go vet -vettool=$(which pflint) ./...`. It speaks the minimal protocol
// cmd/go expects from a vet tool, with no dependency outside the standard
// library:
//
//	pflint -V=full     print a content fingerprint (go's build cache key)
//	pflint -flags      print the analyzer flags we support (none) as JSON
//	pflint <vet.cfg>   analyze one package unit described by the JSON config
//
// Findings go to stderr as file:line:col: message and exit with status 2,
// which go vet surfaces per package. The checks themselves live in
// internal/lint; they are syntactic, so the type-check sections of vet.cfg
// are ignored and an empty facts file satisfies the VetxOutput contract.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"pragformer/internal/lint"
)

// vetConfig is the subset of cmd/go's vet.cfg we consume.
type vetConfig struct {
	ID         string   `json:"ID"`
	Dir        string   `json:"Dir"`
	ImportPath string   `json:"ImportPath"`
	GoFiles    []string `json:"GoFiles"`
	VetxOnly   bool     `json:"VetxOnly"`
	VetxOutput string   `json:"VetxOutput"`
}

func main() {
	switch {
	case len(os.Args) == 2 && os.Args[1] == "-V=full":
		printVersion()
	case len(os.Args) == 2 && os.Args[1] == "-flags":
		fmt.Println("[]")
	case len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg"):
		os.Exit(run(os.Args[1]))
	default:
		fmt.Fprintf(os.Stderr, "usage: pflint [-V=full | -flags | vet.cfg]\n")
		os.Exit(1)
	}
}

// printVersion emits the fingerprint line go's build cache keys vet results
// on: the tool path, a "version" marker, and a content hash of the binary
// itself, so a rebuilt pflint invalidates cached vet verdicts.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(exe); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil))
}

func run(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pflint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pflint: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist even though we produce no facts, or go vet
	// reports the unit as failed.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pflint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	findings := 0
	fset := token.NewFileSet()
	for _, path := range cfg.GoFiles {
		// Test files may legitimately use wall clocks and the global rand;
		// the determinism contract covers shipped code.
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			// Unparseable code fails the build before vet matters.
			continue
		}
		for _, fd := range lint.CheckFile(fset, file, file.Name.Name) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fd.Pos, fd.Msg)
			findings++
		}
	}
	if findings > 0 {
		return 2
	}
	return 0
}
