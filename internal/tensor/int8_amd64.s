//go:build amd64 && !purego

#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func int8Dot4K16(a, b *int8, k16, stride int, out *int32)
//
// For c in 0..3: out[c] = Σ_{k < k16} a[k]·b[c·stride+k]; k16 % 16 == 0.
// Each iteration sign-extends 16 int8 lanes of the activation row and of
// four weight-channel rows to int16 (VPMOVSXBW), multiply-adds lane pairs
// into 8 int32 partials (VPMADDWD), and accumulates. The tail after the
// loop reduces each accumulator horizontally. VPMADDWD's int16×int16+int16×
// int16 sums cannot overflow int32: operands are ≥ -127·127·2.
TEXT ·int8Dot4K16(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ k16+16(FP), CX
	MOVQ stride+24(FP), R8
	MOVQ out+32(FP), DX

	// Channel row pointers b0..b3 = b + {0,1,2,3}·stride.
	MOVQ DI, R9
	LEAQ (DI)(R8*1), R10
	LEAQ (DI)(R8*2), R11
	LEAQ (R10)(R8*2), R12

	VPXOR Y4, Y4, Y4 // acc0
	VPXOR Y5, Y5, Y5 // acc1
	VPXOR Y6, Y6, Y6 // acc2
	VPXOR Y7, Y7, Y7 // acc3

	XORQ AX, AX

loop:
	CMPQ AX, CX
	JGE  reduce
	VPMOVSXBW (SI)(AX*1), Y0  // 16 activation lanes → int16

	VPMOVSXBW (R9)(AX*1), Y1
	VPMADDWD  Y0, Y1, Y1
	VPADDD    Y1, Y4, Y4

	VPMOVSXBW (R10)(AX*1), Y2
	VPMADDWD  Y0, Y2, Y2
	VPADDD    Y2, Y5, Y5

	VPMOVSXBW (R11)(AX*1), Y3
	VPMADDWD  Y0, Y3, Y3
	VPADDD    Y3, Y6, Y6

	VPMOVSXBW (R12)(AX*1), Y1
	VPMADDWD  Y0, Y1, Y1
	VPADDD    Y1, Y7, Y7

	ADDQ $16, AX
	JMP  loop

reduce:
	// Horizontal int32 sum of each accumulator into out[0..3].
	VEXTRACTI128 $1, Y4, X0
	VPADDD       X0, X4, X4
	VPHADDD      X4, X4, X4
	VPHADDD      X4, X4, X4
	VMOVD        X4, 0(DX)

	VEXTRACTI128 $1, Y5, X0
	VPADDD       X0, X5, X5
	VPHADDD      X5, X5, X5
	VPHADDD      X5, X5, X5
	VMOVD        X5, 4(DX)

	VEXTRACTI128 $1, Y6, X0
	VPADDD       X0, X6, X6
	VPHADDD      X6, X6, X6
	VPHADDD      X6, X6, X6
	VMOVD        X6, 8(DX)

	VEXTRACTI128 $1, Y7, X0
	VPADDD       X0, X7, X7
	VPHADDD      X7, X7, X7
	VPHADDD      X7, X7, X7
	VMOVD        X7, 12(DX)

	VZEROUPPER
	RET
