package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram: count=%d sum=%v max=%v", h.Count(), h.Sum(), h.Max())
	}
}

// TestHistogramBucketBoundary pins the Prometheus `le` contract: a value
// exactly on a bucket's upper bound belongs to that bucket, and the
// highest quantile of boundary-valued observations is reported exactly
// (interpolation reaches the bound, the max clamp keeps it there).
func TestHistogramBucketBoundary(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(2.0)
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("boundary value 2.0 landed outside the le=2 bucket: counts=%v",
			[]uint64{h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load(), h.counts[3].Load()})
	}
	if got := h.Quantile(1); got != 2.0 {
		t.Fatalf("Quantile(1) = %v, want exactly 2.0", got)
	}
	h2 := NewHistogram([]float64{1, 2, 4})
	h2.Observe(1.0)
	if got := h2.counts[0].Load(); got != 1 {
		t.Fatalf("boundary value 1.0 landed outside the le=1 bucket")
	}
	if got := h2.Quantile(0.5); got != 1.0 {
		t.Fatalf("single-observation Quantile(0.5) = %v, want 1.0 (clamped to max)", got)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 10 observations in (2,4]: the median interpolates inside that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(3.0)
	}
	got := h.Quantile(0.5)
	if got <= 2 || got > 3 {
		t.Fatalf("Quantile(0.5) = %v, want in (2, 3] (interpolated, clamped to max 3)", got)
	}
	if mx := h.Max(); mx != 3.0 {
		t.Fatalf("Max = %v, want 3.0", mx)
	}
	// p99 of the same data cannot exceed the observed max.
	if p99 := h.Quantile(0.99); p99 != 3.0 {
		t.Fatalf("Quantile(0.99) = %v, want clamped to max 3.0", p99)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(50)
	if got := h.Quantile(0.99); got != 50.0 {
		t.Fatalf("overflow-bucket quantile = %v, want the observed max 50", got)
	}
}

// TestHistogramConcurrentObserve hammers Observe from many goroutines; run
// under -race in CI, and the totals must balance exactly.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	var inBuckets uint64
	for i := range h.counts {
		inBuckets += h.counts[i].Load()
	}
	if inBuckets != goroutines*per {
		t.Fatalf("bucket counts sum to %d, want %d", inBuckets, goroutines*per)
	}
	wantMax := float64(goroutines*per-1) * 1e-6
	if math.Abs(h.Max()-wantMax) > 1e-12 {
		t.Fatalf("Max = %v, want %v", h.Max(), wantMax)
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pf_test_total", "A test counter.", Labels{"path": "/predict"})
	c.Add(3)
	reg.GaugeFunc("pf_test_depth", "A test gauge.", nil, func() float64 { return 7 })
	h := reg.Histogram("pf_test_seconds", "A test histogram.", nil, []float64{1, 2})
	h.Observe(1.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pf_test_total counter",
		`pf_test_total{path="/predict"} 3`,
		"# TYPE pf_test_depth gauge",
		"pf_test_depth 7",
		"# TYPE pf_test_seconds histogram",
		`pf_test_seconds_bucket{le="1"} 0`,
		`pf_test_seconds_bucket{le="2"} 1`,
		`pf_test_seconds_bucket{le="+Inf"} 1`,
		"pf_test_seconds_sum 1.5",
		"pf_test_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryGetOrCreate pins the sharing contract: the same (name,
// labels) from two call sites is one series.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Histogram("pf_dur_seconds", "h", Labels{"path": "/x"}, nil)
	b := reg.Histogram("pf_dur_seconds", "h", Labels{"path": "/x"}, nil)
	if a != b {
		t.Fatal("same (name, labels) returned distinct histograms")
	}
	if c := reg.Histogram("pf_dur_seconds", "h", Labels{"path": "/y"}, nil); c == a {
		t.Fatal("different labels returned the same histogram")
	}
}
