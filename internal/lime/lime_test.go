package lime

import (
	"math"
	"testing"
)

// keywordModel scores by presence of signal tokens, mimicking a classifier
// keyed on "fprintf" (negative) and "sum" (positive).
func keywordModel(tokens []string) float64 {
	z := 0.0
	for _, t := range tokens {
		switch t {
		case "sum":
			z += 2
		case "fprintf", "stderr":
			z -= 2
		}
	}
	return 1 / (1 + math.Exp(-z))
}

func find(attrs []Attribution, token string) (Attribution, bool) {
	for _, a := range attrs {
		if a.Token == token {
			return a, true
		}
	}
	return Attribution{}, false
}

func TestExplainFindsPositiveDriver(t *testing.T) {
	tokens := []string{"for", "(", "i", ")", "sum", "+=", "a"}
	attrs := New(1).Explain(tokens, keywordModel, 0)
	a, ok := find(attrs, "sum")
	if !ok {
		t.Fatal("sum not attributed")
	}
	if a.Weight <= 0 {
		t.Errorf("sum weight = %g, want positive", a.Weight)
	}
	// "sum" must rank first by |weight|.
	if attrs[0].Token != "sum" {
		t.Errorf("top token = %q, want sum (attrs %v)", attrs[0].Token, attrs[:3])
	}
}

func TestExplainFindsNegativeDrivers(t *testing.T) {
	// The paper's example 2: fprintf/stderr drive the "no pragma" class.
	tokens := []string{"for", "(", "i", ")", "fprintf", "(", "stderr", ")"}
	attrs := New(2).Explain(tokens, keywordModel, 0)
	fp, ok := find(attrs, "fprintf")
	if !ok || fp.Weight >= 0 {
		t.Errorf("fprintf weight = %+v, want negative", fp)
	}
	st, ok := find(attrs, "stderr")
	if !ok || st.Weight >= 0 {
		t.Errorf("stderr weight = %+v, want negative", st)
	}
	// Neutral tokens should attract much smaller weights.
	neutral, _ := find(attrs, "for")
	if math.Abs(neutral.Weight) > math.Abs(fp.Weight)/2 {
		t.Errorf("neutral weight %g too large vs %g", neutral.Weight, fp.Weight)
	}
}

func TestExplainTopK(t *testing.T) {
	tokens := []string{"a", "b", "sum", "d", "e"}
	attrs := New(3).Explain(tokens, keywordModel, 2)
	if len(attrs) != 2 {
		t.Fatalf("topK = %d", len(attrs))
	}
}

func TestExplainEmpty(t *testing.T) {
	if attrs := New(1).Explain(nil, keywordModel, 5); attrs != nil {
		t.Fatal("expected nil for empty input")
	}
}

func TestExplainDeterministic(t *testing.T) {
	tokens := []string{"x", "sum", "y", "fprintf"}
	a1 := New(7).Explain(tokens, keywordModel, 0)
	a2 := New(7).Explain(tokens, keywordModel, 0)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("explanations differ under equal seeds")
		}
	}
}

func TestExplainConstantModel(t *testing.T) {
	tokens := []string{"a", "b", "c"}
	attrs := New(1).Explain(tokens, func([]string) float64 { return 0.7 }, 0)
	for _, a := range attrs {
		if math.Abs(a.Weight) > 0.05 {
			t.Errorf("constant model attributed weight %g to %q", a.Weight, a.Token)
		}
	}
}

func TestDuplicateTokensSeparatePositions(t *testing.T) {
	// Position-level features: two "sum" occurrences get separate entries.
	tokens := []string{"sum", "x", "sum"}
	attrs := New(4).Explain(tokens, keywordModel, 0)
	count := 0
	for _, a := range attrs {
		if a.Token == "sum" {
			count++
			if a.Weight <= 0 {
				t.Errorf("sum at %d has weight %g", a.Index, a.Weight)
			}
		}
	}
	if count != 2 {
		t.Fatalf("sum positions = %d", count)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x := solve(A, b)
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	A := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x := solve(A, b)
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingularSafe(t *testing.T) {
	A := [][]float64{{1, 1}, {1, 1}}
	b := []float64{2, 2}
	x := solve(A, b)
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestWeightedRidgeRecoversLinear(t *testing.T) {
	// y = 1 + 2*f1 - f2 exactly; ridge with tiny lambda recovers it.
	X := [][]float64{
		{1, 0, 0}, {1, 1, 0}, {1, 0, 1}, {1, 1, 1},
	}
	y := []float64{1, 3, 0, 2}
	w := []float64{1, 1, 1, 1}
	beta := weightedRidge(X, y, w, 1e-9)
	want := []float64{1, 2, -1}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 1e-4 {
			t.Fatalf("beta = %v", beta)
		}
	}
}

func BenchmarkExplain(b *testing.B) {
	tokens := make([]string, 40)
	for i := range tokens {
		tokens[i] = "tok"
	}
	tokens[5] = "sum"
	e := New(1)
	e.Samples = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Explain(tokens, keywordModel, 10)
	}
}
