package core

// Corrupt/truncated model-artifact table tests: every mutilation of the
// gob wire format must produce a descriptive error — never a panic and
// never a silently partial load.

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

// wireFile dumps a model into its modelFile form for mutilation.
func wireFile(t *testing.T, m *PragFormer) modelFile {
	t.Helper()
	mf := modelFile{Version: modelFormatVersion, Cfg: m.Cfg}
	for _, p := range m.allParams() {
		mf.Names = append(mf.Names, p.Name)
		mf.Shapes = append(mf.Shapes, [2]int{p.W.Rows, p.W.Cols})
		mf.Data = append(mf.Data, append([]float64(nil), p.W.Data...))
	}
	return mf
}

func encodeWire(t *testing.T, mf modelFile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(mf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsCorruptModelFiles(t *testing.T) {
	m := mustNew(t, tinyConfig(), 17)

	cases := []struct {
		name   string
		mutate func(*modelFile)
		want   string // substring the error must carry
	}{
		{"missing data tensor", func(mf *modelFile) { mf.Data = mf.Data[:len(mf.Data)-1] }, "names"},
		{"missing name", func(mf *modelFile) { mf.Names = mf.Names[:len(mf.Names)-1] }, "names"},
		{"missing shape", func(mf *modelFile) { mf.Shapes = mf.Shapes[:len(mf.Shapes)-1] }, "shapes"},
		{"renamed tensor", func(mf *modelFile) { mf.Names[2] = "bogus" }, "name"},
		{"wrong shape", func(mf *modelFile) { mf.Shapes[1] = [2]int{1, 1} }, "shape"},
		{"truncated weight vector", func(mf *modelFile) { mf.Data[3] = mf.Data[3][:1] }, "truncated"},
		{"newer format version", func(mf *modelFile) { mf.Version = modelFormatVersion + 7 }, "newer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mf := wireFile(t, m)
			tc.mutate(&mf)
			_, err := Load(bytes.NewReader(encodeWire(t, mf)))
			if err == nil {
				t.Fatal("corrupt model file loaded without error")
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadRejectsTruncatedStream(t *testing.T) {
	m := mustNew(t, tinyConfig(), 18)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{2, 4, 10} {
		if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/frac])); err == nil {
			t.Fatalf("stream truncated to 1/%d loaded without error", frac)
		}
	}
}

// TestLoadVersionZeroCompat pins backward compatibility: files written by
// the pre-versioning format (no Version field — gob decodes it as 0) must
// keep loading.
func TestLoadVersionZeroCompat(t *testing.T) {
	m := mustNew(t, tinyConfig(), 19)
	mf := wireFile(t, m)
	mf.Version = 0 // gob omits zero fields: byte-identical to the old format
	m2, err := Load(bytes.NewReader(encodeWire(t, mf)))
	if err != nil {
		t.Fatalf("version-0 file rejected: %v", err)
	}
	ids := []int{2, 9, 8, 7}
	if m.Predict(ids) != m2.Predict(ids) {
		t.Fatal("version-0 load changed predictions")
	}
}
