package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pragformer/internal/scan"
)

const scanBody = `{"files": [
  {"path": "kernels.c", "source": "void f(double *x, double *y, int n) {\n    int i;\n    for (i = 0; i < n; i++) x[i] = y[i] * 2.0;\n    for (i = 0; i < n; i++) x[i] = y[i] * 2.0;\n}\n"},
  {"path": "broken.c", "source": "void g( {\n"}
]}`

func scanOnce(t *testing.T, e *Engine, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/scan", strings.NewReader(body))
	w := httptest.NewRecorder()
	e.Handler().ServeHTTP(w, req)
	return w
}

// TestHTTPScan drives /scan end to end: multi-file payload in, deduped
// report out, with the inference riding the engine's suggest batcher.
func TestHTTPScan(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{MaxBatch: 8, MaxWait: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	w := scanOnce(t, e, scanBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var rep scan.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	c := rep.Counters
	if c.Files != 1 || c.Skipped != 1 {
		t.Errorf("files/skipped = %d/%d, want 1/1", c.Files, c.Skipped)
	}
	if c.Loops != 2 || c.Unique != 1 {
		t.Errorf("loops/unique = %d/%d, want 2/1 (identical loops must dedupe)", c.Loops, c.Unique)
	}
	if c.Inferred != 1 {
		t.Errorf("inferred = %d, want 1", c.Inferred)
	}
	if len(rep.Loops) != 1 || len(rep.Loops[0].Occurrences) != 2 {
		t.Fatalf("loops = %+v", rep.Loops)
	}
	occ := rep.Loops[0].Occurrences[0]
	if occ.File != "kernels.c" || occ.Line != 3 || occ.Function != "f" {
		t.Errorf("occurrence = %+v", occ)
	}
	if rep.Loops[0].Suggestion == nil {
		t.Error("loop missing suggestion")
	}
	if rep.Backend != e.Stats().Backend {
		t.Errorf("report backend %q != engine %q", rep.Backend, e.Stats().Backend)
	}

	// The scan's inference went through the suggest batcher, and a repeat
	// scan of the same payload is answered from the engine's LRU.
	st := e.Stats().Suggest
	if st.Requests == 0 || st.Batches == 0 {
		t.Errorf("scan bypassed the suggest batcher: %+v", st)
	}
	scanOnce(t, e, scanBody)
	if hits := e.Stats().Suggest.CacheHits; hits == 0 {
		t.Errorf("repeat scan produced no engine cache hits")
	}
}

// TestHTTPScanParity pins /scan suggestions to the direct engine suggest
// path for the same snippet.
func TestHTTPScanParity(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	w := scanOnce(t, e, scanBody)
	var rep scan.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	direct, err := e.Suggest(context.Background(), rep.Loops[0].Snippet)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Loops[0].Suggestion.Probability; got != direct.Probability {
		t.Errorf("scan probability %v != direct %v", got, direct.Probability)
	}
}

func TestHTTPScanSARIF(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	body := strings.Replace(scanBody, `]}`, `], "format": "sarif"}`, 1)
	w := scanOnce(t, e, body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []json.RawMessage
	}
	if err := json.Unmarshal(w.Body.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Errorf("sarif version %q runs %d", log.Version, len(log.Runs))
	}
}

func TestHTTPScanRejects(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"malformed", `{"files": [`, http.StatusBadRequest},
		{"empty", `{"files": []}`, http.StatusBadRequest},
		{"no path", `{"files": [{"source": "int x;"}]}`, http.StatusBadRequest},
		{"bad format", `{"files": [{"path": "a.c", "source": ""}], "format": "xml"}`, http.StatusBadRequest},
	} {
		if w := scanOnce(t, e, tc.body); w.Code != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, w.Code, tc.status)
		}
	}

	var b strings.Builder
	b.WriteString(`{"files": [`)
	for i := 0; i < maxScanFiles+1; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"path": "a.c", "source": ""}`)
	}
	b.WriteString(`]}`)
	if w := scanOnce(t, e, b.String()); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized file count: status %d", w.Code)
	}
}

// TestScanVerdictParityAcrossEntryPoints pins the corroboration evidence
// (tier, dep witness, S2S verdicts, LIME attributions) to a single source
// of truth: the advisor. The same carried-dependence snippet scanned via
// HTTP /scan, via scan.Files with the models object directly, and via a
// bare advisor batch must agree on every evidence field — and a
// warm-cache re-scan must replay the evidence byte-identically.
func TestScanVerdictParityAcrossEntryPoints(t *testing.T) {
	models := testModels(t)
	const src = "void f(double *s, int n) {\n    int i;\n    for (i = 1; i < n; i++) {\n        s[i] += s[i - 1];\n    }\n}\n"

	e, err := New(models, Config{MaxBatch: 4, MaxWait: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	body, _ := json.Marshal(map[string]any{
		"files": []map[string]string{{"path": "recur.c", "source": src}},
	})
	w := scanOnce(t, e, string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var httpRep scan.Report
	if err := json.Unmarshal(w.Body.Bytes(), &httpRep); err != nil {
		t.Fatal(err)
	}
	if len(httpRep.Loops) != 1 || httpRep.Loops[0].Suggestion == nil {
		t.Fatalf("http loops = %+v", httpRep.Loops)
	}

	direct, err := scan.Files(context.Background(),
		[]scan.Source{{Path: "recur.c", Data: []byte(src)}}, scan.Config{}, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Loops) != 1 || direct.Loops[0].Suggestion == nil {
		t.Fatalf("direct loops = %+v", direct.Loops)
	}

	asJSON := func(s *scan.Suggestion) string {
		t.Helper()
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if asJSON(httpRep.Loops[0].Suggestion) != asJSON(direct.Loops[0].Suggestion) {
		t.Errorf("HTTP /scan verdict differs from direct scan.Files:\nhttp:   %s\ndirect: %s",
			asJSON(httpRep.Loops[0].Suggestion), asJSON(direct.Loops[0].Suggestion))
	}

	// The bare advisor batch over the deduped snippet is the reference.
	items, err := models.SuggestBatch([]string{direct.Loops[0].Snippet})
	if err != nil {
		t.Fatal(err)
	}
	adv := items[0].Suggestion
	got := direct.Loops[0].Suggestion
	if got.Tier != adv.Corroboration.Tier.String() {
		t.Errorf("scan tier %q != advisor tier %q", got.Tier, adv.Corroboration.Tier.String())
	}
	if len(got.Witness) != len(adv.Corroboration.DepWitness) {
		t.Errorf("scan witness %v != advisor %v", got.Witness, adv.Corroboration.DepWitness)
	}
	if len(got.S2S) != len(adv.Corroboration.S2S) {
		t.Errorf("scan s2s %v != advisor %v", got.S2S, adv.Corroboration.S2S)
	}
	if len(got.Attributions) != len(adv.Attributions) {
		t.Errorf("scan attributions %d != advisor %d", len(got.Attributions), len(adv.Attributions))
	}

	// Warm cache: the evidence must replay from disk bit-for-bit.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "recur.c"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := scan.Config{CachePath: filepath.Join(dir, "scan.cache"), Backend: "test", ModelID: "test"}
	cold, err := scan.Dir(context.Background(), dir, cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := scan.Dir(context.Background(), dir, cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Counters.CacheHits != 1 || warm.Counters.Inferred != 0 {
		t.Fatalf("warm counters = %+v", warm.Counters)
	}
	if asJSON(cold.Loops[0].Suggestion) != asJSON(warm.Loops[0].Suggestion) {
		t.Errorf("warm-cache verdict differs from cold:\ncold: %s\nwarm: %s",
			asJSON(cold.Loops[0].Suggestion), asJSON(warm.Loops[0].Suggestion))
	}
	if asJSON(cold.Loops[0].Suggestion) != asJSON(direct.Loops[0].Suggestion) {
		t.Errorf("cached scan verdict differs from uncached scan.Files verdict")
	}
}
