package scan

import (
	"hash/fnv"
	"sync"
)

// VerdictStore is the loop-verdict cache abstraction the scan pipeline
// reads through: content hash (HashSnippet of the canonically printed
// loop) to flattened Suggestion. PR 5 introduced the per-process file
// cache; the serving tier graduates it into a shared store the whole
// replica fleet reads through — at fleet scale most traffic hits loops
// someone already scanned, and a verdict computed on any replica should
// be returned everywhere without another forward.
//
// Implementations: MemStore (sharded in-memory map — the router's
// tier-wide store) and FileStore (the persistent scan cache file).
//
// Callers own the namespace discipline: one store must only ever hold
// verdicts of one (backend, model) pair, or the keys must encode that
// pair. FileStore enforces it with its on-disk header; the router
// prefixes keys with its fleet namespace.
type VerdictStore interface {
	// Get returns the stored verdict. The returned Suggestion is shared —
	// callers must treat it as immutable (clone before mutating).
	Get(hash string) (*Suggestion, bool)
	// Put stores a verdict. The store keeps its own copy, so the caller
	// may keep mutating s afterwards.
	Put(hash string, s *Suggestion)
	// Len reports the resident verdict count.
	Len() int
}

// memShards is the MemStore shard count (power of two). Sharding keeps
// the router's hot read path from serializing on one mutex.
const memShards = 16

// MemStore is a sharded in-memory VerdictStore, safe for concurrent use.
type MemStore struct {
	shards [memShards]memShard
}

type memShard struct {
	mu sync.RWMutex
	m  map[string]*Suggestion
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	s := &MemStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*Suggestion)
	}
	return s
}

func (s *MemStore) shard(hash string) *memShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(hash))
	return &s.shards[h.Sum32()&(memShards-1)]
}

// Get returns the stored verdict; the result is shared and must not be
// mutated.
func (s *MemStore) Get(hash string) (*Suggestion, bool) {
	sh := s.shard(hash)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.m[hash]
	return v, ok
}

// Put stores a private copy of the verdict. Nil suggestions are ignored.
func (s *MemStore) Put(hash string, v *Suggestion) {
	if v == nil {
		return
	}
	c := v.clone()
	sh := s.shard(hash)
	sh.mu.Lock()
	sh.m[hash] = c
	sh.mu.Unlock()
}

// Len reports the resident verdict count across all shards.
func (s *MemStore) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// Reset empties the store — the router rotates its store this way after a
// rolling reload, so one model generation's verdicts never answer for the
// next.
func (s *MemStore) Reset() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
		clear(s.shards[i].m)
		s.shards[i].mu.Unlock()
	}
}
