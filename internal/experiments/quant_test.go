package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuantAgreement is the acceptance gate for the int8 backend: on the
// experiments test pipeline (trained Fast-mode directive classifier,
// held-out test split), the quantized model must agree with the float64
// reference on at least 97% of predicted labels, and its task accuracy must
// not degrade by more than the disagreement budget.
func TestQuantAgreement(t *testing.T) {
	p := testPipeline(t)
	tab := p.RunQuant()
	if len(tab.Rows) != 1 {
		t.Fatalf("quant table has %d rows", len(tab.Rows))
	}
	r := tab.Rows[0]
	if r.Examples == 0 {
		t.Fatal("empty test split")
	}
	if r.Agreement < 0.97 {
		t.Errorf("int8/float64 label agreement %.3f < 0.97 (%d examples)", r.Agreement, r.Examples)
	}
	if r.QuantAcc < r.FloatAcc-(1-r.Agreement)-1e-9 {
		t.Errorf("quant accuracy %.3f below float %.3f minus disagreement budget", r.QuantAcc, r.FloatAcc)
	}
}

// TestQuantExperimentPrints wires the study into the experiment runner.
func TestQuantExperimentPrints(t *testing.T) {
	p := testPipeline(t)
	var buf bytes.Buffer
	if err := p.Run("quant", &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Quantized inference", "agreement", "speedup", "directive"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("quant output missing %q:\n%s", want, buf.String())
		}
	}
}
