package cast

import (
	"fmt"
	"strings"
)

// Print renders the AST back to C source text. The output is parseable by
// internal/cparse, which the corpus generator relies on: snippets are built
// as ASTs and emitted through this printer, guaranteeing well-formed records.
func Print(n Node) string {
	var p printer
	p.node(n)
	return strings.TrimRight(p.b.String(), "\n") + "\n"
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e, precLowest)
	return p.b.String()
}

// Pos is a 1-based line/column position within a Print rendering.
type Pos struct {
	Line, Col int
}

// PrintPositions renders n exactly like Print and additionally reports the
// position at which each target node's text begins in the rendering. Targets
// not reached during printing are absent from the map. The dependence
// analyzer uses this to anchor race-witness access sites inside the
// canonical snippet, so positions agree across scan and serve entry points
// regardless of where the loop sat in its original file.
func PrintPositions(n Node, targets []Node) (string, map[Node]Pos) {
	p := printer{want: map[Node]bool{}, marks: map[Node]Pos{}}
	for _, t := range targets {
		if t != nil {
			p.want[t] = true
		}
	}
	p.node(n)
	return strings.TrimRight(p.b.String(), "\n") + "\n", p.marks
}

type printer struct {
	b      strings.Builder
	indent int

	// Position tracking for PrintPositions; nil maps on plain Print.
	want      map[Node]bool
	marks     map[Node]Pos
	newlines  int // '\n' bytes written so far
	lineStart int // builder length just after the last newline
}

func (p *printer) ws(s string) {
	p.b.WriteString(s)
}

func (p *printer) begin() {
	p.b.WriteString(strings.Repeat("    ", p.indent))
}

func (p *printer) nl() {
	p.b.WriteByte('\n')
	p.newlines++
	p.lineStart = p.b.Len()
}

func (p *printer) line(s string) {
	p.begin()
	p.ws(s)
	p.nl()
}

// mark records the current output position for a requested target node.
func (p *printer) mark(n Node) {
	if p.want == nil || !p.want[n] {
		return
	}
	if _, done := p.marks[n]; done {
		return
	}
	p.marks[n] = Pos{Line: p.newlines + 1, Col: p.b.Len() - p.lineStart + 1}
}

func (p *printer) node(n Node) {
	switch v := n.(type) {
	case *File:
		for _, it := range v.Items {
			p.node(it)
		}
	case *FuncDef:
		params := make([]string, len(v.Params))
		for i, d := range v.Params {
			params[i] = declString(d)
		}
		if len(params) == 0 {
			params = []string{"void"}
		}
		p.line(fmt.Sprintf("%s %s(%s) {", typeString(v.ReturnType), v.Name, strings.Join(params, ", ")))
		p.indent++
		for _, s := range v.Body.Stmts {
			p.stmt(s)
		}
		p.indent--
		p.line("}")
	case *Decl:
		p.begin()
		p.decl(v)
		p.ws(";")
		p.nl()
	case Stmt:
		p.stmt(v)
	case Expr:
		p.begin()
		p.expr(v, precLowest)
		p.ws(";")
		p.nl()
	default:
		p.line(fmt.Sprintf("/* unknown node %T */", n))
	}
}

func typeString(t *TypeSpec) string {
	if t == nil {
		return "int"
	}
	var parts []string
	parts = append(parts, t.Quals...)
	if t.Struct != "" {
		if t.Union {
			parts = append(parts, "union "+t.Struct)
		} else {
			parts = append(parts, "struct "+t.Struct)
		}
	}
	parts = append(parts, t.Names...)
	s := strings.Join(parts, " ")
	if t.Ptr > 0 {
		s += " " + strings.Repeat("*", t.Ptr)
	}
	return s
}

func declString(d *Decl) string {
	var p printer
	p.decl(d)
	return p.b.String()
}

// decl streams a declarator so expressions inside dims and initializers can
// be position-marked.
func (p *printer) decl(d *Decl) {
	s := typeString(d.Type)
	if d.IsTypedef {
		s = "typedef " + s
	}
	p.ws(s)
	if d.Name != "" {
		if strings.HasSuffix(s, "*") {
			p.ws(d.Name)
		} else {
			p.ws(" " + d.Name)
		}
	}
	for _, dim := range d.ArrayDims {
		if dim == nil {
			p.ws("[]")
		} else {
			p.ws("[")
			p.expr(dim, precLowest)
			p.ws("]")
		}
	}
	if d.Init != nil {
		p.ws(" = ")
		p.expr(d.Init, precLowest)
	}
}

func (p *printer) stmt(s Stmt) {
	switch v := s.(type) {
	case *Block:
		p.line("{")
		p.indent++
		for _, st := range v.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *ExprStmt:
		p.begin()
		p.expr(v.X, precLowest)
		p.ws(";")
		p.nl()
	case *DeclStmt:
		for _, d := range v.Decls {
			p.begin()
			p.decl(d)
			p.ws(";")
			p.nl()
		}
	case *For:
		p.begin()
		p.ws("for (")
		switch iv := v.Init.(type) {
		case *ExprStmt:
			p.expr(iv.X, precLowest)
		case *DeclStmt:
			for i, d := range iv.Decls {
				if i > 0 {
					p.ws(", ")
				}
				p.decl(d)
			}
		}
		p.ws("; ")
		if v.Cond != nil {
			p.expr(v.Cond, precLowest)
		}
		p.ws("; ")
		if v.Post != nil {
			p.expr(v.Post, precLowest)
		}
		p.ws(")")
		p.nl()
		p.body(v.Body)
	case *While:
		p.begin()
		p.ws("while (")
		p.expr(v.Cond, precLowest)
		p.ws(")")
		p.nl()
		p.body(v.Body)
	case *DoWhile:
		p.line("do")
		p.body(v.Body)
		p.begin()
		p.ws("while (")
		p.expr(v.Cond, precLowest)
		p.ws(");")
		p.nl()
	case *If:
		p.begin()
		p.ws("if (")
		p.expr(v.Cond, precLowest)
		p.ws(")")
		p.nl()
		p.body(v.Then)
		if v.Else != nil {
			p.line("else")
			p.body(v.Else)
		}
	case *Return:
		if v.X != nil {
			p.begin()
			p.ws("return ")
			p.expr(v.X, precLowest)
			p.ws(";")
			p.nl()
		} else {
			p.line("return;")
		}
	case *Break:
		p.line("break;")
	case *Continue:
		p.line("continue;")
	case *Empty:
		p.line(";")
	case *PragmaStmt:
		p.line("#" + v.Text)
		if v.Stmt != nil {
			p.stmt(v.Stmt)
		}
	default:
		p.line(fmt.Sprintf("/* unknown stmt %T */", s))
	}
}

// body prints a statement as a loop/if body, indenting non-block statements.
func (p *printer) body(s Stmt) {
	if _, ok := s.(*Block); ok {
		p.stmt(s)
		return
	}
	p.indent++
	p.stmt(s)
	p.indent--
}

// Operator precedence levels for minimal parenthesization.
const (
	precLowest = iota
	precComma
	precAssign
	precTernary
	precLogOr
	precLogAnd
	precBitOr
	precBitXor
	precBitAnd
	precEq
	precRel
	precShift
	precAdd
	precMul
	precUnary
	precPostfix
)

func binPrec(op string) int {
	switch op {
	case "||":
		return precLogOr
	case "&&":
		return precLogAnd
	case "|":
		return precBitOr
	case "^":
		return precBitXor
	case "&":
		return precBitAnd
	case "==", "!=":
		return precEq
	case "<", ">", "<=", ">=":
		return precRel
	case "<<", ">>":
		return precShift
	case "+", "-":
		return precAdd
	case "*", "/", "%":
		return precMul
	}
	return precLowest
}

func (p *printer) expr(e Expr, parent int) {
	p.mark(e)
	switch v := e.(type) {
	case *Ident:
		p.b.WriteString(v.Name)
	case *IntLit:
		p.b.WriteString(v.Text)
	case *FloatLit:
		p.b.WriteString(v.Text)
	case *CharLit:
		p.b.WriteString(v.Text)
	case *StrLit:
		p.b.WriteString(v.Text)
	case *BinaryOp:
		prec := binPrec(v.Op)
		open := prec < parent
		if open {
			p.b.WriteByte('(')
		}
		p.expr(v.L, prec)
		p.b.WriteString(" " + v.Op + " ")
		p.expr(v.R, prec+1)
		if open {
			p.b.WriteByte(')')
		}
	case *Assign:
		open := precAssign < parent
		if open {
			p.b.WriteByte('(')
		}
		p.expr(v.L, precUnary)
		p.b.WriteString(" " + v.Op + " ")
		p.expr(v.R, precAssign)
		if open {
			p.b.WriteByte(')')
		}
	case *UnaryOp:
		open := precUnary < parent
		if open {
			p.b.WriteByte('(')
		}
		if v.Postfix {
			p.expr(v.X, precPostfix)
			p.b.WriteString(v.Op)
		} else {
			p.b.WriteString(v.Op)
			p.expr(v.X, precUnary)
		}
		if open {
			p.b.WriteByte(')')
		}
	case *ArrayRef:
		p.expr(v.Arr, precPostfix)
		p.b.WriteByte('[')
		p.expr(v.Index, precLowest)
		p.b.WriteByte(']')
	case *FuncCall:
		p.expr(v.Fun, precPostfix)
		p.b.WriteByte('(')
		for i, a := range v.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(a, precAssign)
		}
		p.b.WriteByte(')')
	case *Member:
		p.expr(v.X, precPostfix)
		if v.Arrow {
			p.b.WriteString("->")
		} else {
			p.b.WriteString(".")
		}
		p.b.WriteString(v.Field)
	case *Ternary:
		open := precTernary < parent
		if open {
			p.b.WriteByte('(')
		}
		p.expr(v.Cond, precLogOr)
		p.b.WriteString(" ? ")
		p.expr(v.Then, precAssign)
		p.b.WriteString(" : ")
		p.expr(v.Else, precTernary)
		if open {
			p.b.WriteByte(')')
		}
	case *Cast:
		open := precUnary < parent
		if open {
			p.b.WriteByte('(')
		}
		p.b.WriteString("(" + typeString(v.Type) + ") ")
		p.expr(v.X, precUnary)
		if open {
			p.b.WriteByte(')')
		}
	case *Sizeof:
		if v.Type != nil {
			p.b.WriteString("sizeof(" + typeString(v.Type) + ")")
		} else {
			p.b.WriteString("sizeof(")
			p.expr(v.X, precLowest)
			p.b.WriteByte(')')
		}
	case *Comma:
		open := precComma < parent
		if open {
			p.b.WriteByte('(')
		}
		p.expr(v.L, precComma)
		p.b.WriteString(", ")
		p.expr(v.R, precAssign)
		if open {
			p.b.WriteByte(')')
		}
	case *InitList:
		p.b.WriteByte('{')
		for i, el := range v.Elems {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(el, precAssign)
		}
		p.b.WriteByte('}')
	default:
		fmt.Fprintf(&p.b, "/* unknown expr %T */", e)
	}
}
