package s2s

import (
	"fmt"

	"pragformer/internal/dep"
	"pragformer/internal/pragma"
)

// AutoPar models ROSE's AutoPar: sound dependence analysis but a frontend
// that cannot digest typedef'd types, struct member access, or do-while
// loops, and a clause generator that knows private but not reduction — any
// reduction-shaped scalar makes the loop look like a carried dependence and
// the directive is withheld.
type AutoPar struct{}

// Name implements Compiler.
func (AutoPar) Name() string { return "AutoPar" }

// Compile implements Compiler.
func (c AutoPar) Compile(src string) (Result, error) {
	src = stripPragmas(src)
	if err := rejectTokens(src, c.Name(), map[string]bool{
		"register": true, "restrict": true, "typedef": true, "goto": true,
	}, true, true); err != nil {
		return Result{}, err
	}
	if containsToken(src, "do") && containsToken(src, "while") && containsDoWhile(src) {
		return Result{}, fmt.Errorf("%w: AutoPar: do-while not supported", ErrParse)
	}
	loop, funcs, err := parseSnippet(src)
	if err != nil {
		return Result{}, err
	}
	a := dep.AnalyzeLoop(loop, funcs)
	res := Result{Source: src, Reasons: a.Reasons}
	if !a.Parallelizable {
		return res, nil
	}
	if len(a.Reductions) > 0 {
		res.Reasons = append(res.Reasons, "reduction idiom treated as carried dependence")
		return res, nil
	}
	d := &pragma.Directive{ParallelFor: true}
	d.Private = append(d.Private, a.Header.Var)
	d.Private = append(d.Private, a.Private...)
	res.Directive = d
	res.Source = annotate(d, src)
	return res, nil
}

// containsDoWhile performs a crude textual check for a do { ... } while.
func containsDoWhile(src string) bool {
	for i := 0; i+2 < len(src); i++ {
		if src[i] == 'd' && src[i+1] == 'o' &&
			(i == 0 || !identChar(src[i-1])) && !identChar(src[i+2]) {
			return true
		}
	}
	return false
}
