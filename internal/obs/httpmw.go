package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// RequestHistogram is the canonical request-duration series for one HTTP
// path — middleware records into it and /statz percentile views read from
// it, sharing one histogram through the registry's get-or-create.
func RequestHistogram(reg *Registry, path string) *Histogram {
	return reg.Histogram("pf_request_duration_seconds",
		"HTTP request duration in seconds, by path.",
		Labels{"path": path}, nil)
}

// Middleware instruments HTTP routes: request-duration histograms, trace
// minting/propagation via the X-PF-Trace header, and client deadline
// enforcement via X-PF-Deadline-Ms (an already-expired budget is answered
// 504 before the handler runs).
type Middleware struct {
	reg      *Registry
	traceAll bool
	logger   *slog.Logger
}

// NewMiddleware builds a middleware over reg. traceAll traces every
// request (otherwise only those carrying TraceHeader); logger, when
// non-nil, receives one structured line per traced request.
func NewMiddleware(reg *Registry, traceAll bool, logger *slog.Logger) *Middleware {
	return &Middleware{reg: reg, traceAll: traceAll, logger: logger}
}

// statusWriter captures the response status for the per-request log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Wrap instruments one route. path is both the metric label and the
// logical route name.
func (m *Middleware) Wrap(path string, next http.HandlerFunc) http.HandlerFunc {
	hist := RequestHistogram(m.reg, path)
	expired := m.reg.Counter("pf_deadline_exceeded_total",
		"Requests shed because the client deadline had already expired.",
		Labels{"path": path})
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer func() { hist.ObserveSince(start) }()

		ctx := r.Context()
		ms, hasDeadline, err := deadlineMs(r.Header)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "bad "+DeadlineHeader+" header: "+err.Error())
			return
		}
		if hasDeadline {
			if ms <= 0 {
				expired.Inc()
				jsonError(w, http.StatusGatewayTimeout, "deadline expired before processing")
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
			defer cancel()
		}

		var tr *Trace
		if id := r.Header.Get(TraceHeader); id != "" || m.traceAll {
			tr = NewTrace(id)
			ctx = WithTrace(ctx, tr)
			w.Header().Set(TraceHeader, tr.ID)
		}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next(sw, r.WithContext(ctx))

		if tr != nil && m.logger != nil {
			attrs := []slog.Attr{
				slog.String("trace", tr.ID),
				slog.String("path", path),
				slog.Int("status", sw.status),
				slog.Duration("dur", time.Since(start)),
			}
			for _, st := range tr.Summary() {
				attrs = append(attrs, slog.Group(st.Name,
					slog.Int("count", st.Count), slog.Duration("total", st.Total)))
			}
			m.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	}
}

// deadlineMs parses the remaining-budget header; hasDeadline is false when
// the header is absent.
func deadlineMs(h http.Header) (ms int64, hasDeadline bool, err error) {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return 0, false, nil
	}
	ms, err = strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false, err
	}
	return ms, true, nil
}

// SetDeadlineHeader writes the context's remaining budget onto an outbound
// request, clamped to at least 1ms (a sub-millisecond remainder still has
// to survive JSON round-trips; the receiving middleware re-arms its own
// timer). No-op when the context has no deadline.
func SetDeadlineHeader(ctx context.Context, h http.Header) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	h.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
}

func jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
