package quant

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"pragformer/internal/ckpt"
	"pragformer/internal/tensor"
)

// PFQNT artifact format: the generic ckpt frame (magic/version/length/
// CRC-32C, see internal/ckpt/frame.go) around a gob payload carrying the
// config plus two tensor manifests — the int8 weight tensors with their
// per-channel scales, and the float tensors (embeddings, layer norms,
// biases). SaveFile goes through ckpt.WriteFileAtomic, so a crash mid-save
// never clobbers an existing artifact, and Load validates every manifest
// entry (names, shapes, data and scale lengths) against a skeleton built
// from the config before a single value is copied — a truncated or
// hand-corrupted file fails with a descriptive error, never a panic or a
// silently partial model.

// FormatVersion is the current PFQNT payload format version.
const FormatVersion = 1

var magic = []byte("PFQNT")

// artifactFile is the gob payload.
type artifactFile struct {
	Cfg Config
	Eps float64 // layer-norm epsilon (uniform across the model)

	// int8 weight manifest, in walk order.
	QNames  []string
	QShapes [][2]int // out×in
	QData   [][]int8
	QScales [][]float32

	// float tensor manifest, in walk order.
	FNames  []string
	FShapes [][2]int
	FData   [][]float64
}

// walk visits every tensor of the model in the fixed wire order. Save and
// Load share it, so the two can never disagree about layout.
func (m *Model) walk(q func(name string, t *tensor.Int8Matrix), f func(name string, rows, cols int, data []float64)) {
	f("emb.tok", m.Tok.Rows, m.Tok.Cols, m.Tok.Data)
	f("emb.pos", m.Pos.Rows, m.Pos.Cols, m.Pos.Data)
	for l, b := range m.Blocks {
		prefix := fmt.Sprintf("block%d", l)
		f(prefix+".ln1.g", 1, len(b.LN1.Gamma), b.LN1.Gamma)
		f(prefix+".ln1.b", 1, len(b.LN1.Beta), b.LN1.Beta)
		for _, ql := range []struct {
			name string
			l    *Linear
		}{
			{prefix + ".attn.wq", b.Attn.WQ},
			{prefix + ".attn.wk", b.Attn.WK},
			{prefix + ".attn.wv", b.Attn.WV},
			{prefix + ".attn.wo", b.Attn.WO},
		} {
			q(ql.name+".W", ql.l.Wq)
			f(ql.name+".b", 1, len(ql.l.B), ql.l.B)
		}
		f(prefix+".ln2.g", 1, len(b.LN2.Gamma), b.LN2.Gamma)
		f(prefix+".ln2.b", 1, len(b.LN2.Beta), b.LN2.Beta)
		q(prefix+".ffn.l1.W", b.FF1.Wq)
		f(prefix+".ffn.l1.b", 1, len(b.FF1.B), b.FF1.B)
		q(prefix+".ffn.l2.W", b.FF2.Wq)
		f(prefix+".ffn.l2.b", 1, len(b.FF2.B), b.FF2.B)
	}
	f("final_ln.g", 1, len(m.FinalLN.Gamma), m.FinalLN.Gamma)
	f("final_ln.b", 1, len(m.FinalLN.Beta), m.FinalLN.Beta)
	q("fc1.W", m.FC1.Wq)
	f("fc1.b", 1, len(m.FC1.B), m.FC1.B)
	q("fc2.W", m.FC2.Wq)
	f("fc2.b", 1, len(m.FC2.B), m.FC2.B)
}

// newSkeleton allocates a model of the config's shapes with zeroed tensors,
// the target Load copies a validated manifest into.
func newSkeleton(cfg Config) *Model {
	newLN := func(eps float64) *LayerNorm {
		return &LayerNorm{Gamma: make([]float64, cfg.D), Beta: make([]float64, cfg.D), Eps: eps}
	}
	newLin := func(in, out int) *Linear {
		return &Linear{Wq: tensor.NewInt8(out, in), B: make([]float64, out)}
	}
	m := &Model{
		Cfg:     cfg,
		Tok:     tensor.New(cfg.Vocab, cfg.D),
		Pos:     tensor.New(cfg.MaxLen, cfg.D),
		FinalLN: newLN(0),
		FC1:     newLin(cfg.D, cfg.FCHidden),
		FC2:     newLin(cfg.FCHidden, 2),
	}
	for l := 0; l < cfg.Layers; l++ {
		m.Blocks = append(m.Blocks, &Block{
			LN1: newLN(0),
			LN2: newLN(0),
			Attn: &Attention{
				WQ:    newLin(cfg.D, cfg.D),
				WK:    newLin(cfg.D, cfg.D),
				WV:    newLin(cfg.D, cfg.D),
				WO:    newLin(cfg.D, cfg.D),
				Heads: cfg.Heads,
				D:     cfg.D,
			},
			FF1: newLin(cfg.D, cfg.FFHidden),
			FF2: newLin(cfg.FFHidden, cfg.D),
		})
	}
	return m
}

// Save writes the quantized model in the framed PFQNT wire format. The
// wire format carries a single layer-norm epsilon; a model whose layer
// norms disagree (nothing in this repo builds one) is rejected rather than
// silently flattened to the final LN's value on the next load.
func (m *Model) Save(w io.Writer) error {
	for _, ln := range m.layerNorms() {
		if ln.Eps != m.FinalLN.Eps {
			return fmt.Errorf("quant: non-uniform layer-norm epsilon (%g vs %g): not representable in a PFQNT artifact",
				ln.Eps, m.FinalLN.Eps)
		}
	}
	af := artifactFile{Cfg: m.Cfg, Eps: m.FinalLN.Eps}
	m.walk(
		func(name string, t *tensor.Int8Matrix) {
			af.QNames = append(af.QNames, name)
			af.QShapes = append(af.QShapes, [2]int{t.Rows, t.Cols})
			af.QData = append(af.QData, t.Data)
			af.QScales = append(af.QScales, t.Scales)
		},
		func(name string, rows, cols int, data []float64) {
			af.FNames = append(af.FNames, name)
			af.FShapes = append(af.FShapes, [2]int{rows, cols})
			af.FData = append(af.FData, data)
		},
	)
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(af); err != nil {
		return fmt.Errorf("quant: encode artifact: %w", err)
	}
	return ckpt.WriteFramed(w, magic, FormatVersion, payload.Bytes())
}

// SaveFile writes the artifact to path atomically.
func (m *Model) SaveFile(path string) error {
	return ckpt.WriteFileAtomic(path, m.Save)
}

// Load reads a model written by Save. The frame (magic, version, length,
// CRC) is verified before decoding, and every manifest entry is validated
// against the config's skeleton before any value is copied.
func Load(r io.Reader) (*Model, error) {
	payload, err := ckpt.ReadFramed(r, magic, FormatVersion, "quantized model")
	if err != nil {
		return nil, err
	}
	var af artifactFile
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&af); err != nil {
		return nil, fmt.Errorf("quant: decode artifact: %w", err)
	}
	if err := af.Cfg.validate(); err != nil {
		return nil, err
	}
	if len(af.QNames) != len(af.QShapes) || len(af.QNames) != len(af.QData) || len(af.QNames) != len(af.QScales) {
		return nil, fmt.Errorf("quant: corrupt artifact: %d names / %d shapes / %d data / %d scales",
			len(af.QNames), len(af.QShapes), len(af.QData), len(af.QScales))
	}
	if len(af.FNames) != len(af.FShapes) || len(af.FNames) != len(af.FData) {
		return nil, fmt.Errorf("quant: corrupt artifact: %d float names / %d shapes / %d data",
			len(af.FNames), len(af.FShapes), len(af.FData))
	}

	m := newSkeleton(af.Cfg)
	// First pass: validate every entry against the skeleton's manifest.
	qi, fi := 0, 0
	var verr error
	check := func(cond bool, format string, args ...any) {
		if !cond && verr == nil {
			verr = fmt.Errorf("quant: "+format, args...)
		}
	}
	m.walk(
		func(name string, t *tensor.Int8Matrix) {
			i := qi
			qi++
			check(i < len(af.QNames), "artifact has %d int8 tensors, model wants more", len(af.QNames))
			if i >= len(af.QNames) {
				return
			}
			check(af.QNames[i] == name, "int8 tensor %d name %q, want %q", i, af.QNames[i], name)
			check(af.QShapes[i] == [2]int{t.Rows, t.Cols}, "int8 tensor %q shape mismatch", name)
			check(len(af.QData[i]) == t.Rows*t.Cols, "int8 tensor %q has %d values, want %d (truncated artifact)",
				name, len(af.QData[i]), t.Rows*t.Cols)
			check(len(af.QScales[i]) == t.Rows, "int8 tensor %q has %d scales, want %d",
				name, len(af.QScales[i]), t.Rows)
		},
		func(name string, rows, cols int, data []float64) {
			i := fi
			fi++
			check(i < len(af.FNames), "artifact has %d float tensors, model wants more", len(af.FNames))
			if i >= len(af.FNames) {
				return
			}
			check(af.FNames[i] == name, "float tensor %d name %q, want %q", i, af.FNames[i], name)
			check(af.FShapes[i] == [2]int{rows, cols}, "float tensor %q shape mismatch", name)
			check(len(af.FData[i]) == rows*cols, "float tensor %q has %d values, want %d (truncated artifact)",
				name, len(af.FData[i]), rows*cols)
		},
	)
	check(qi == len(af.QNames), "artifact has %d int8 tensors, model wants %d", len(af.QNames), qi)
	check(fi == len(af.FNames), "artifact has %d float tensors, model wants %d", len(af.FNames), fi)
	if verr != nil {
		return nil, verr
	}

	// Second pass: copy values into the skeleton.
	qi, fi = 0, 0
	m.walk(
		func(name string, t *tensor.Int8Matrix) {
			copy(t.Data, af.QData[qi])
			copy(t.Scales, af.QScales[qi])
			qi++
		},
		func(name string, rows, cols int, data []float64) {
			copy(data, af.FData[fi])
			fi++
		},
	)
	for _, ln := range m.layerNorms() {
		ln.Eps = af.Eps
	}
	return m, nil
}

// layerNorms lists every layer norm in the model.
func (m *Model) layerNorms() []*LayerNorm {
	lns := []*LayerNorm{m.FinalLN}
	for _, b := range m.Blocks {
		lns = append(lns, b.LN1, b.LN2)
	}
	return lns
}

// LoadFile reads a PFQNT artifact from a file path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// SniffFile reports whether the file at path starts with the PFQNT magic —
// the loader in cmd/serve uses it to pick the right decoder for a model
// artifact path. A file too short to hold the magic is simply not a PFQNT
// artifact; any other read failure is a real I/O error and is propagated,
// not misreported as "try the float decoder".
func SniffFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	head := make([]byte, len(magic))
	switch _, err := io.ReadFull(f, head); err {
	case nil:
		return bytes.Equal(head, magic), nil
	case io.EOF, io.ErrUnexpectedEOF:
		return false, nil
	default:
		return false, fmt.Errorf("quant: sniff %s: %w", path, err)
	}
}
