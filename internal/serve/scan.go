package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pragformer/internal/advisor"
	"pragformer/internal/scan"
)

// POST /scan: repo-scale scanning over the serving stack. The request
// carries a multi-file payload; the scanner parses and dedupes the loops
// server-side and drives the engine's suggest batcher, so scan inference
// coalesces with live /suggest traffic and follows hot reloads and the
// engine's backend selection. Limits keep one scan request from starving
// the engine: payloads over maxScanFiles files or maxScanBytes total
// source are rejected up front.

const (
	maxScanFiles = 512
	maxScanBytes = 8 << 20
)

// scanRequest is the /scan body.
type scanRequest struct {
	Files []scanFile `json:"files"`
	// Format selects the response rendering: "json" (default) or "sarif".
	Format string `json:"format,omitempty"`
	// Workers overrides the parse worker count (bounded to [1, 16]).
	Workers int `json:"workers,omitempty"`
	// IncludeAnnotated also advises loops that already carry a pragma.
	IncludeAnnotated bool `json:"include_annotated,omitempty"`
	// Stable strips run-dependent fields (probabilities, backend, cache
	// counters) like `pragformer scan -stable` — what golden comparisons
	// and the tier CI smoke diff against.
	Stable bool `json:"stable,omitempty"`
}

// scanFile is one in-memory source file.
type scanFile struct {
	Path   string `json:"path"`
	Source string `json:"source"`
}

// engineSuggester adapts the engine's context-ful batch path to the
// scanner's advisor.Suggester dependency for one request.
type engineSuggester struct {
	e   *Engine
	ctx context.Context
}

func (s engineSuggester) SuggestBatch(codes []string) ([]advisor.BatchItem, error) {
	return s.e.SuggestBatch(s.ctx, codes)
}

func (e *Engine) handleScan(w http.ResponseWriter, r *http.Request) {
	// Bound the body BEFORE decoding: the size limits below must cap
	// memory, not just report shape. 2x covers JSON escaping overhead.
	body := http.MaxBytesReader(w, r.Body, 2*maxScanBytes)
	var req scanRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	if len(req.Files) == 0 {
		httpError(w, http.StatusBadRequest, "no files in scan request")
		return
	}
	if len(req.Files) > maxScanFiles {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d files exceeds the per-request limit of %d", len(req.Files), maxScanFiles))
		return
	}
	total := 0
	srcs := make([]scan.Source, len(req.Files))
	for i, f := range req.Files {
		if f.Path == "" {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("file %d has no path", i))
			return
		}
		total += len(f.Source)
		srcs[i] = scan.Source{Path: f.Path, Data: []byte(f.Source)}
	}
	if total > maxScanBytes {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d source bytes exceeds the per-request limit of %d", total, maxScanBytes))
		return
	}
	if req.Format != "" && req.Format != "json" && req.Format != "sarif" {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (json|sarif)", req.Format))
		return
	}
	workers := req.Workers
	if workers < 1 {
		workers = 4
	}
	if workers > 16 {
		workers = 16
	}

	cfg := scan.Config{
		Workers:          workers,
		BatchSize:        e.cfg.MaxBatch,
		Backend:          e.Stats().Backend,
		IncludeAnnotated: req.IncludeAnnotated,
	}
	rep, err := scan.Files(r.Context(), srcs, cfg, engineSuggester{e: e, ctx: r.Context()})
	if err != nil {
		status := http.StatusInternalServerError
		if r.Context().Err() != nil {
			status = 499 // client closed request
		}
		httpError(w, status, err.Error())
		return
	}
	if req.Stable {
		rep = rep.Stable()
	}
	var out []byte
	if req.Format == "sarif" {
		out, err = rep.SARIF()
	} else {
		out, err = rep.JSON()
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(out)
}
