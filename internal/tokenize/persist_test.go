package tokenize

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVocabPersistRoundTrip(t *testing.T) {
	v := BuildVocab([][]string{{"for", "(", "i", "=", "0", ")"}}, 1)
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v2, err := LoadVocab(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Size() != v.Size() {
		t.Fatalf("size %d want %d", v2.Size(), v.Size())
	}
	for _, tok := range []string{"for", "(", "i", "=", "0", ")"} {
		if v2.ID(tok) != v.ID(tok) {
			t.Errorf("id(%q) = %d want %d", tok, v2.ID(tok), v.ID(tok))
		}
	}
	if v2.Token(PAD) != "[PAD]" || v2.Token(CLS) != "[CLS]" {
		t.Error("specials not restored")
	}
}

// TestVocabSaveFileAtomic pins the crash-safe artifact contract: SaveFile
// replaces an existing vocabulary in one atomic step (no torn file, no
// temp litter) and propagates failures instead of half-writing.
func TestVocabSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vocab.txt")
	v1 := BuildVocab([][]string{{"for", "("}}, 1)
	v2 := BuildVocab([][]string{{"while", ")", "+"}}, 1)
	if err := v1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := v2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVocabFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != v2.Size() || !got.Contains("while") {
		t.Fatal("replacement save did not land")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}

	if err := v1.SaveFile(filepath.Join(dir, "missing", "v.txt")); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
}

func TestLoadVocabRejectsCorruptFiles(t *testing.T) {
	cases := map[string]string{
		"too short":      "[PAD]\n",
		"wrong specials": "[PAD]\n[UNK]\n[MASK]\n[CLS]\nfor\n",
		"duplicate":      "[PAD]\n[UNK]\n[CLS]\n[MASK]\nfor\nfor\n",
	}
	for name, content := range cases {
		if _, err := LoadVocab(strings.NewReader(content)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
