package tier

import (
	"fmt"
	"testing"

	"pragformer/internal/scan"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Real routing keys are sha-256 hex digests; generate them the same
		// way production does.
		keys[i] = scan.HashSnippet(fmt.Sprintf("for (i = 0; i < %d; i++) a[i] = i;\n", i))
	}
	return keys
}

// Removing a replica must move ONLY the keys that replica owned: everyone
// else's caches stay hot.
func TestRingRemovalMovesOnlyRemovedKeys(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c", "http://d"}
	before := newRing(names, 64)
	after := newRing([]string{"http://a", "http://b", "http://d"}, 64)
	keys := ringKeys(2000)
	moved := 0
	for _, k := range keys {
		was, is := before.owner(k), after.owner(k)
		if was == "http://c" {
			moved++
			continue // must move somewhere — c is gone
		}
		if was != is {
			t.Fatalf("key not owned by removed replica moved: %s -> %s", was, is)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed replica; test vacuous")
	}
}

// Adding a replica moves keys only TO the new replica, roughly 1/N of
// them.
func TestRingAdditionBounded(t *testing.T) {
	before := newRing([]string{"http://a", "http://b", "http://c"}, 64)
	after := newRing([]string{"http://a", "http://b", "http://c", "http://d"}, 64)
	keys := ringKeys(4000)
	moved := 0
	for _, k := range keys {
		was, is := before.owner(k), after.owner(k)
		if was == is {
			continue
		}
		if is != "http://d" {
			t.Fatalf("key moved between surviving replicas: %s -> %s", was, is)
		}
		moved++
	}
	// Expect ~1/4 of keys on the new replica; allow generous slack for
	// vnode placement variance.
	if lo, hi := len(keys)/8, len(keys)/2; moved < lo || moved > hi {
		t.Fatalf("moved %d of %d keys to the new replica, want within [%d, %d]", moved, len(keys), lo, hi)
	}
}

// The walk starts at the owner and visits every replica exactly once —
// the spill order the bounded-load fallback relies on.
func TestRingWalk(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r := newRing(names, 32)
	for _, k := range ringKeys(100) {
		w := r.walk(k)
		if len(w) != len(names) {
			t.Fatalf("walk returned %d names, want %d", len(w), len(names))
		}
		if w[0] != r.owner(k) {
			t.Fatalf("walk starts at %s, owner is %s", w[0], r.owner(k))
		}
		seen := map[string]bool{}
		for _, n := range w {
			if seen[n] {
				t.Fatalf("walk visits %s twice", n)
			}
			seen[n] = true
		}
	}
}

// Ring placement is deterministic across instances (routers must agree).
func TestRingDeterministic(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r1, r2 := newRing(names, 64), newRing(names, 64)
	for _, k := range ringKeys(500) {
		if r1.owner(k) != r2.owner(k) {
			t.Fatalf("rings disagree on %s", k)
		}
	}
}

// Keys spread over all replicas (no vnode-count pathology leaving a
// replica empty).
func TestRingBalance(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c", "http://d"}
	r := newRing(names, 64)
	counts := map[string]int{}
	keys := ringKeys(4000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	for _, n := range names {
		if counts[n] == 0 {
			t.Fatalf("replica %s owns no keys", n)
		}
		// Each replica should hold a sane share: between 1/4x and 2.5x fair.
		fair := len(keys) / len(names)
		if counts[n] < fair/4 || counts[n] > fair*5/2 {
			t.Fatalf("replica %s owns %d keys, fair share %d", n, counts[n], fair)
		}
	}
}

func TestKeyPointHexFastPath(t *testing.T) {
	// A 64-hex-char key must position by its leading 16 digits directly.
	key := "00000000000000ffabcdef0123456789abcdef0123456789abcdef0123456789"
	if got := keyPoint(key); got != 0xff {
		t.Fatalf("keyPoint = %#x, want 0xff", got)
	}
	// Non-hex keys fall back to hashing, and must not collide with the
	// zero position systematically.
	if keyPoint("not hex at all....") == 0 {
		t.Fatal("fallback hash returned 0 for a typical string")
	}
}
