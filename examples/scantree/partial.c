/* Partially malformed: bad() is missing an operand, but the recovering
 * parser must resynchronize and still scan the loop in ok() — the file
 * contributes one positioned skip AND one loop. */

void bad(double *x, int n) {
    int i;
    for (i = 0; i < n; i++) {
        x[i] = x[i] * ;
    }
}

void ok(float *y, int n) {
    int j;
    for (j = 0; j < n; j++) {
        y[j] = y[j] * 3.0f;
    }
}
