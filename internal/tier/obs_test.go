package tier

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pragformer/internal/obs"
)

// obsReplica is a fake replica that records the telemetry headers the
// router forwards and answers with a replica-side trace, so tests can
// assert the full propagation loop: client → router → replica → merged
// response.
type obsReplica struct {
	srv      *httptest.Server
	traceID  atomic.Pointer[string]
	deadline atomic.Pointer[string]
	predicts atomic.Int64
	suggests atomic.Int64
}

func newObsReplica(t *testing.T) *obsReplica {
	f := &obsReplica{}
	record := func(r *http.Request) *obs.Wire {
		tid, dl := r.Header.Get(obs.TraceHeader), r.Header.Get(obs.DeadlineHeader)
		f.traceID.Store(&tid)
		f.deadline.Store(&dl)
		if tid == "" {
			return nil
		}
		return &obs.Wire{ID: tid, Spans: []obs.WireSpan{{Name: "replica-infer", DurUs: 42}}}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		f.predicts.Add(1)
		wire := record(r)
		var req predictRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		results := make([]predictResult, len(req.Codes)+len(req.IDs))
		for i := range results {
			results[i] = predictResult{Probability: 0.9, Parallelize: true}
		}
		_ = json.NewEncoder(w).Encode(predictResponse{Results: results, Trace: wire})
	})
	mux.HandleFunc("POST /suggest", func(w http.ResponseWriter, r *http.Request) {
		f.suggests.Add(1)
		wire := record(r)
		var req suggestRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		codes := req.Codes
		if req.Code != "" {
			codes = append(codes, req.Code)
		}
		results := make([]suggestResult, len(codes))
		for i, c := range codes {
			results[i] = fakeVerdict(c)
		}
		_ = json.NewEncoder(w).Encode(suggestResponse{Results: results, Trace: wire})
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		var st replicaStatz
		st.Backend = "fake"
		st.Generation = 1
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"ready": true})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *obsReplica) seenTrace() string {
	if p := f.traceID.Load(); p != nil {
		return *p
	}
	return ""
}

func (f *obsReplica) seenDeadline() string {
	if p := f.deadline.Load(); p != nil {
		return *p
	}
	return ""
}

func obsRouter(t *testing.T, f *obsReplica) *Router {
	return newTestRouter(t, Config{Replicas: []string{f.srv.URL}})
}

// TestTracePropagatedToReplica drives the acceptance criterion: a traced
// /suggest routed through the tier carries the trace ID to the replica
// over the fan-out, and the merged response reports router spans
// (admit/route/forward) next to the replica's own.
func TestTracePropagatedToReplica(t *testing.T) {
	f := newObsReplica(t)
	rt := obsRouter(t, f)

	body, _ := json.Marshal(suggestRequest{Codes: []string{"for (i = 0; i < n; i++) a[i] = b[i];"}})
	req := httptest.NewRequest(http.MethodPost, "/suggest", strings.NewReader(string(body)))
	req.Header.Set(obs.TraceHeader, "deadbeefdeadbeef")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(obs.TraceHeader); got != "deadbeefdeadbeef" {
		t.Fatalf("router trace header echo = %q", got)
	}
	if got := f.seenTrace(); got != "deadbeefdeadbeef" {
		t.Fatalf("replica saw trace %q, want the client's id", got)
	}

	var resp suggestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || resp.Trace.ID != "deadbeefdeadbeef" {
		t.Fatalf("response trace = %+v", resp.Trace)
	}
	names := map[string]bool{}
	for _, s := range resp.Trace.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"admit", "route", "forward", "replica-infer"} {
		if !names[want] {
			t.Errorf("merged trace missing %q span (got %v)", want, names)
		}
	}
}

// TestDeadlinePropagatedToReplica checks the remaining-budget header is
// re-derived at the router and forwarded: the replica sees a positive
// budget no larger than the client's.
func TestDeadlinePropagatedToReplica(t *testing.T) {
	f := newObsReplica(t)
	rt := obsRouter(t, f)

	body, _ := json.Marshal(predictRequest{Codes: []string{"for (i = 0; i < n; i++) a[i] = 0;"}})
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(string(body)))
	req.Header.Set(obs.DeadlineHeader, "5000")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	dl := f.seenDeadline()
	if dl == "" {
		t.Fatal("replica saw no deadline header")
	}
	ms, err := strconv.ParseInt(dl, 10, 64)
	if err != nil || ms <= 0 || ms > 5000 {
		t.Fatalf("replica deadline header = %q, want 0 < ms <= 5000", dl)
	}
}

// TestExpiredDeadlineShedsBeforeForward: a request arriving with an
// already-spent budget is answered 504 by the router; the replica never
// sees it.
func TestExpiredDeadlineShedsBeforeForward(t *testing.T) {
	f := newObsReplica(t)
	rt := obsRouter(t, f)

	body, _ := json.Marshal(predictRequest{Codes: []string{"x"}})
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(string(body)))
	req.Header.Set(obs.DeadlineHeader, "0")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", rec.Code)
	}
	if n := f.predicts.Load(); n != 0 {
		t.Fatalf("replica received %d forwards for a dead request", n)
	}
}

// TestStatzErrorsSurfaced: failed health polls against an unreachable
// replica are counted and reported per replica in the router's /statz.
func TestStatzErrorsSurfaced(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here any more

	rt := newTestRouter(t, Config{Replicas: []string{deadURL}, ProbeInterval: 5 * time.Millisecond})

	waitFor(t, "statz errors to accumulate", func() bool {
		rec := httptest.NewRecorder()
		rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statz", nil))
		var st tierStatz
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			return false
		}
		return len(st.Replicas) == 1 && st.Replicas[0].StatzErrors > 0
	})
}

// TestRouterMetricsEndpoint: the router's GET /metrics speaks Prometheus
// text and carries the tier series the CI smoke greps for.
func TestRouterMetricsEndpoint(t *testing.T) {
	f := newObsReplica(t)
	rt := obsRouter(t, f)

	body, _ := json.Marshal(predictRequest{Codes: []string{"for (i = 0; i < n; i++) a[i] = 0;"}})
	rec := postJSON(t, rt.Handler(), "/predict", json.RawMessage(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body.String())
	}

	mrec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", mrec.Code)
	}
	text := mrec.Body.String()
	for _, want := range []string{
		`pf_request_duration_seconds_count{path="/predict"}`,
		"pf_forwards_total",
		"pf_store_hits_total",
		"pf_store_misses_total",
		"pf_statz_errors_total",
		"pf_replica_in_flight",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router metrics missing %q", want)
		}
	}
}
