package dep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pragformer/internal/cast"
	"pragformer/internal/cparse"
)

// FuzzAnalyze drives the dependence engine over arbitrary parsed loops: no
// input may panic it, and the analysis must be deterministic — the engine's
// witnesses feed byte-stable scan reports, so two runs over the same loop
// must serialize identically, under every conversion-option combination.
func FuzzAnalyze(f *testing.F) {
	dir := filepath.Join("..", "..", "examples", "scantree")
	_ = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".c") {
			return nil
		}
		if data, err := os.ReadFile(path); err == nil {
			f.Add(string(data))
		}
		return nil
	})
	f.Add("for (i = 1; i < n; i++) a[i] = a[i - 1] + 1;")
	f.Add("for (i = 0; i < n; i++) for (j = 0; j < m; j++) c[i * n + j] = 0;")
	f.Add("for (i = 0; i < n; i++) hist[b[i]] += 1;")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		file, errs := cparse.ParseRecover(src)
		if len(errs) > 0 && len(file.Items) == 0 {
			t.Skip("nothing parseable")
		}
		funcs := map[string]*cast.FuncDef{}
		for _, it := range file.Items {
			if fd, ok := it.(*cast.FuncDef); ok {
				funcs[fd.Name] = fd
			}
		}
		opts := []Options{
			{},
			{ArrayPrivatization: true},
			{ArrayReductions: true},
			{ArrayPrivatization: true, ArrayReductions: true},
		}
		for _, li := range cast.ExtractLoops(file) {
			for _, o := range opts {
				a := AnalyzeLoopOpts(li.Loop, funcs, o)
				b := AnalyzeLoopOpts(li.Loop, funcs, o)
				ja, err := json.Marshal(a)
				if err != nil {
					t.Fatalf("analysis does not serialize: %v", err)
				}
				jb, _ := json.Marshal(b)
				if string(ja) != string(jb) {
					t.Errorf("analysis is nondeterministic under %+v:\n%s\n%s", o, ja, jb)
				}
			}
		}
	})
}
