package dep

import (
	"sort"
	"strconv"
	"strings"

	"pragformer/internal/cast"
)

// This file grows the one-level ZIV/SIV/GCD classifier into a nested-loop
// dependence engine: the analyzed loop plus every normalized inner loop form
// an iteration space, subscripts become multi-variable affine forms, and
// pairwise tests produce per-level distance information that decides whether
// a dependence is carried by the *outer* loop (the one we would annotate) or
// only by an inner level, where it cannot break a `parallel for`.

// nestSpace is the iteration space of the analyzed loop nest. Level 0 is
// the outer (annotated) loop; deeper levels are normalized inner loops in
// first-seen order. Sibling loops reusing a variable with identical headers
// merge into one level; conflicting reuses keep the level but lose bounds.
type nestSpace struct {
	vars    []string
	level   map[string]int
	headers map[string]LoopHeader
	isVar   map[string]bool
	varying map[string]bool // non-nest names that change between iterations
}

func buildNest(h LoopHeader, ctx *collector) *nestSpace {
	ns := &nestSpace{
		vars:    append([]string{h.Var}, ctx.nestOrder...),
		level:   map[string]int{},
		headers: map[string]LoopHeader{h.Var: h},
		isVar:   map[string]bool{},
	}
	for v, hdr := range ctx.nestHeaders {
		ns.headers[v] = hdr
	}
	for i, v := range ns.vars {
		ns.level[v] = i
		ns.isVar[v] = true
	}
	ns.varying = ctx.varyingNames(ns.isVar)
	return ns
}

// nvCoef is the coefficient of one nest variable inside a subscript: K when
// Sym is empty, K*Sym otherwise (the `i*n + j` linearization shape). Bad
// marks coefficients outside that single-term language.
type nvCoef struct {
	K   int64
	Sym string
	Bad bool
}

func (c nvCoef) zero() bool { return !c.Bad && c.K == 0 }

// NAffine is a subscript over the whole nest:
//
//	Σ Coefs[v]·v + Σ Syms[s]·s + Const
//
// Varying marks forms referencing a symbol whose value may differ between
// iterations (body-written scalars, body-declared locals); such symbols
// cancel positionally but never prove independence across iterations.
type NAffine struct {
	Coefs   map[string]nvCoef
	Syms    map[string]int64
	Const   int64
	Varying bool
	OK      bool
}

func (ns *nestSpace) nZero() NAffine {
	return NAffine{Coefs: map[string]nvCoef{}, Syms: map[string]int64{}, OK: true}
}

func (x NAffine) nAdd(y NAffine) NAffine {
	if !x.OK || !y.OK {
		return NAffine{}
	}
	r := NAffine{Coefs: map[string]nvCoef{}, Syms: map[string]int64{}, OK: true}
	r.Const = x.Const + y.Const
	r.Varying = x.Varying || y.Varying
	for v, c := range x.Coefs {
		r.Coefs[v] = c
	}
	for v, c := range y.Coefs {
		prev, seen := r.Coefs[v]
		switch {
		case !seen:
			r.Coefs[v] = c
		case prev.Bad || c.Bad || prev.Sym != c.Sym:
			r.Coefs[v] = nvCoef{Bad: true}
		default:
			r.Coefs[v] = nvCoef{K: prev.K + c.K, Sym: c.Sym}
		}
	}
	for s, k := range x.Syms {
		r.Syms[s] += k
	}
	for s, k := range y.Syms {
		r.Syms[s] += k
	}
	r.trim()
	return r
}

func (x NAffine) nNeg() NAffine { return x.nScale(-1) }

func (x NAffine) nScale(c int64) NAffine {
	if !x.OK {
		return NAffine{}
	}
	r := NAffine{Coefs: map[string]nvCoef{}, Syms: map[string]int64{}, OK: true, Varying: x.Varying}
	r.Const = x.Const * c
	for v, co := range x.Coefs {
		if co.Bad {
			r.Coefs[v] = co
			continue
		}
		r.Coefs[v] = nvCoef{K: co.K * c, Sym: co.Sym}
	}
	for s, k := range x.Syms {
		r.Syms[s] = k * c
	}
	r.trim()
	return r
}

// nMulSym multiplies by a single invariant symbol.
func (x NAffine) nMulSym(sym string, varying bool) NAffine {
	if !x.OK {
		return NAffine{}
	}
	r := NAffine{Coefs: map[string]nvCoef{}, Syms: map[string]int64{}, OK: true, Varying: x.Varying || varying}
	for v, co := range x.Coefs {
		if co.Bad || co.Sym != "" {
			r.Coefs[v] = nvCoef{Bad: true}
			continue
		}
		r.Coefs[v] = nvCoef{K: co.K, Sym: sym}
	}
	for s, k := range x.Syms {
		parts := []string{s, sym}
		sort.Strings(parts)
		r.Syms[strings.Join(parts, "*")] += k
	}
	if x.Const != 0 {
		r.Syms[sym] += x.Const
	}
	r.trim()
	return r
}

func (x *NAffine) trim() {
	for v, c := range x.Coefs {
		if c.zero() {
			delete(x.Coefs, v)
		}
	}
	for s, k := range x.Syms {
		if k == 0 {
			delete(x.Syms, s)
		}
	}
}

// invariant reports whether the form involves no nest variable.
func (x NAffine) invariant() bool { return x.OK && len(x.Coefs) == 0 }

func (x NAffine) sameSyms(y NAffine) bool {
	if len(x.Syms) != len(y.Syms) {
		return false
	}
	for s, k := range x.Syms {
		if y.Syms[s] != k {
			return false
		}
	}
	return true
}

// markVarying flags symbols whose underlying names are iteration-varying.
func (ns *nestSpace) symVarying(e cast.Expr) bool {
	varying := false
	cast.Walk(e, func(n cast.Node) bool {
		if id, ok := n.(*cast.Ident); ok && ns.varying[id.Name] {
			varying = true
			return false
		}
		return !varying
	})
	return varying
}

// affine converts a subscript expression into nest-wide affine form.
func (ns *nestSpace) affine(e cast.Expr) NAffine {
	switch v := e.(type) {
	case *cast.IntLit:
		n, err := strconv.ParseInt(strings.TrimRight(v.Text, "uUlL"), 0, 64)
		if err != nil {
			return NAffine{}
		}
		r := ns.nZero()
		r.Const = n
		return r
	case *cast.Ident:
		r := ns.nZero()
		if ns.isVar[v.Name] {
			r.Coefs[v.Name] = nvCoef{K: 1}
		} else {
			r.Syms[v.Name] = 1
			r.Varying = ns.varying[v.Name]
		}
		return r
	case *cast.BinaryOp:
		l := ns.affine(v.L)
		r := ns.affine(v.R)
		switch v.Op {
		case "+":
			return l.nAdd(r)
		case "-":
			return l.nAdd(r.nNeg())
		case "*":
			if !l.OK || !r.OK {
				return NAffine{}
			}
			if l.invariant() && len(l.Syms) == 0 {
				return r.nScale(l.Const)
			}
			if r.invariant() && len(r.Syms) == 0 {
				return l.nScale(r.Const)
			}
			// One side a single invariant symbol with unit coefficient and
			// no constant: the `i*n` linearization shape.
			if s, varying, ok := singleSym(l); ok {
				return r.nMulSym(s, varying)
			}
			if s, varying, ok := singleSym(r); ok {
				return l.nMulSym(s, varying)
			}
			return NAffine{}
		}
		return NAffine{}
	case *cast.UnaryOp:
		if v.Op == "-" && !v.Postfix {
			return ns.affine(v.X).nNeg()
		}
		if v.Op == "+" && !v.Postfix {
			return ns.affine(v.X)
		}
		return NAffine{}
	case *cast.Cast:
		return ns.affine(v.X)
	case *cast.FuncCall:
		if fn, ok := v.Fun.(*cast.Ident); ok && pureFuncs[fn.Name] {
			r := ns.nZero()
			r.Syms["call:"+cast.PrintExpr(v)] = 1
			r.Varying = ns.symVarying(v)
			return r
		}
		return NAffine{}
	case *cast.Member:
		r := ns.nZero()
		r.Syms["member:"+cast.PrintExpr(v)] = 1
		r.Varying = ns.symVarying(v)
		return r
	}
	return NAffine{}
}

func singleSym(x NAffine) (sym string, varying bool, ok bool) {
	if !x.invariant() || x.Const != 0 || len(x.Syms) != 1 {
		return "", false, false
	}
	for s, k := range x.Syms {
		if k != 1 {
			return "", false, false
		}
		return s, x.Varying, true
	}
	return "", false, false
}

// ---------------------------------------------------------------------------
// Pairwise testing
// ---------------------------------------------------------------------------

// dimRel is what one subscript dimension says about the iteration distance
// between two accesses: proof of independence, exact per-variable distances,
// or nothing (a free dimension).
type dimRel struct {
	none bool
	dist map[string]int64
}

func freeDim() dimRel { return dimRel{} }

func (d *dimRel) pin(v string, dist int64) {
	if d.dist == nil {
		d.dist = map[string]int64{}
	}
	d.dist[v] = dist
}

// pairRel merges the dimensions of one access pair.
type pairRel struct {
	none bool
	dist map[string]int64
}

// dimTest analyzes one subscript dimension of a write/other pair.
func (ns *nestSpace) dimTest(w, r NAffine) dimRel {
	if !w.OK || !r.OK {
		return freeDim()
	}
	// Symbolic addends must cancel exactly and be iteration-invariant;
	// otherwise the dimension proves nothing either way.
	if !w.sameSyms(r) || w.Varying || r.Varying {
		return freeDim()
	}
	delta := w.Const - r.Const // Σ cr·u − Σ cw·t = Δ at a collision

	var vars []string
	symbolic := false
	for _, v := range ns.vars {
		cw, cr := w.Coefs[v], r.Coefs[v]
		if cw.zero() && cr.zero() && cw.Sym == "" && cr.Sym == "" && !cw.Bad && !cr.Bad {
			continue
		}
		if cw.Bad || cr.Bad || cw.Sym != "" || cr.Sym != "" {
			symbolic = true
		}
		vars = append(vars, v)
	}

	if symbolic {
		return ns.delinearize(w, r, vars, delta)
	}

	if len(vars) == 0 {
		// ZIV: both sides loop-invariant.
		if delta != 0 {
			return dimRel{none: true}
		}
		return freeDim() // same cell every iteration: no constraint, no proof
	}

	if len(vars) == 1 {
		v := vars[0]
		cw, cr := w.Coefs[v].K, r.Coefs[v].K
		if cw == cr {
			return ns.strongSIV(v, cw, delta)
		}
		return ns.weakSIV(v, cw, cr, delta)
	}

	// MIV: GCD then Banerjee bounds over the whole box.
	var coefs []int64
	for _, v := range vars {
		if k := w.Coefs[v].K; k != 0 {
			coefs = append(coefs, k)
		}
		if k := r.Coefs[v].K; k != 0 {
			coefs = append(coefs, k)
		}
	}
	g := int64(0)
	for _, c := range coefs {
		g = gcd64(g, abs64(c))
	}
	if g != 0 && delta%g != 0 {
		return dimRel{none: true}
	}
	if refuted := ns.banerjeeRefute(w, r, vars, delta); refuted {
		return dimRel{none: true}
	}
	if rel, ok := ns.banerjeePinOuter(w, r, vars, delta); ok {
		return rel
	}
	return freeDim()
}

// strongSIV handles equal coefficients: an exact value distance, converted
// to an iteration distance through the level's step, refuted when the step
// cannot reach it or the trip count is too short.
func (ns *nestSpace) strongSIV(v string, c, delta int64) dimRel {
	if delta%c != 0 {
		return dimRel{none: true}
	}
	dValue := delta / c
	h, okH := ns.headers[v]
	if !okH || !h.OK || h.Step == 0 {
		if dValue == 0 {
			d := freeDim()
			d.pin(v, 0)
			return d
		}
		return freeDim()
	}
	if dValue%h.Step != 0 {
		return dimRel{none: true} // the variable never moves by that amount
	}
	dIter := dValue / h.Step
	if trip := h.TripCount(); trip >= 0 && abs64(dIter) >= trip {
		return dimRel{none: true} // distance exceeds the iteration range
	}
	d := freeDim()
	d.pin(v, dIter)
	return d
}

// delinearize recognizes the `base[i*n + j]` linearized-2D shape on both
// sides: identical coefficients, a unit symbolic coefficient on the slower
// variable matching the faster variable's exact [0, n) unit-step range, and
// no residual constant. Such a dimension behaves like base[i][j].
func (ns *nestSpace) delinearize(w, r NAffine, vars []string, delta int64) dimRel {
	if delta != 0 || len(vars) != 2 {
		return freeDim()
	}
	for _, v := range vars {
		if w.Coefs[v] != r.Coefs[v] || w.Coefs[v].Bad {
			return freeDim()
		}
	}
	slow, fast := vars[0], vars[1]
	if w.Coefs[slow].Sym == "" {
		slow, fast = fast, slow
	}
	cs, cf := w.Coefs[slow], w.Coefs[fast]
	if cs.Sym == "" || cs.K != 1 || cf.Sym != "" || cf.K != 1 {
		return freeDim()
	}
	h, okH := ns.headers[fast]
	if !okH || !h.OK || h.Step != 1 || h.Inclusive {
		return freeDim()
	}
	if !h.Lower.constOnly() || h.Lower.Const != 0 {
		return freeDim()
	}
	up := h.Upper
	if !up.OK || up.Coef != 0 || up.Const != 0 || len(up.SymCoefs) != 1 || up.SymCoefs[cs.Sym] != 1 {
		return freeDim()
	}
	d := freeDim()
	d.pin(slow, 0)
	d.pin(fast, 0)
	return d
}

// pairTest merges all dimensions of one access pair into distance facts.
func (ns *nestSpace) pairTest(w, r []NAffine) pairRel {
	if len(w) != len(r) {
		return pairRel{} // differing dimensionality: no information
	}
	rel := pairRel{dist: map[string]int64{}}
	for d := range w {
		dr := ns.dimTest(w[d], r[d])
		if dr.none {
			return pairRel{none: true}
		}
		for v, dist := range dr.dist {
			if prev, seen := rel.dist[v]; seen && prev != dist {
				// Two dimensions demand different distances: unsatisfiable.
				return pairRel{none: true}
			}
			rel.dist[v] = dist
		}
	}
	return rel
}
