package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAgreementStudy runs the corroboration audit over the Fast-mode
// pipeline plus the scantree fixture and checks the tier arithmetic: the
// four tier buckets partition the positives, disagreement adjudication is
// bounded by the disagreement count, and the fixture row matches the
// scanner's own loop census.
func TestAgreementStudy(t *testing.T) {
	p := testPipeline(t)
	tab := p.RunAgreement("../../examples/scantree")
	if len(tab.Rows) != 2 {
		t.Fatalf("agreement table has %d rows, want 2", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Loops == 0 {
			t.Fatalf("row %q audited no loops", r.Source)
		}
		if got := r.ModelOnly + r.AnalysisOnly + r.Corroborated + r.Disagree; got != r.Positive {
			t.Errorf("row %q: tier buckets sum to %d, positives = %d", r.Source, got, r.Positive)
		}
		if r.Positive > r.Loops {
			t.Errorf("row %q: positives %d > loops %d", r.Source, r.Positive, r.Loops)
		}
		if r.DepRight > r.Disagree {
			t.Errorf("row %q: dep-right %d > disagreements %d", r.Source, r.DepRight, r.Disagree)
		}
	}
	corpus, tree := tab.Rows[0], tab.Rows[1]
	if !corpus.HasTruth || tree.HasTruth {
		t.Errorf("HasTruth: corpus %v tree %v", corpus.HasTruth, tree.HasTruth)
	}
	// examples/scantree dedupes to 16 loops, 15 of which reach the advisor
	// (the annotated axpy loop is reported, not advised).
	if tree.Loops != 15 {
		t.Errorf("scantree row audited %d loops, want 15", tree.Loops)
	}
	// Analysis depth: the fixture tree pins each bucket. Three loops carry
	// a concrete flow witness at distance (1) (race.c, recur.c, serial.c);
	// two refutations dissolve into clauses (private.c's scratch array,
	// histo.c's histogram reduction) — the conversions that v1 would have
	// counted as bailed or refuted.
	if tree.Witnessed < 3 {
		t.Errorf("scantree witnessed = %d, want >= 3", tree.Witnessed)
	}
	if tree.Converted < 2 {
		t.Errorf("scantree converted = %d, want >= 2 (privatization + reduction)", tree.Converted)
	}
	for _, r := range tab.Rows {
		if r.Witnessed+r.Bailed > r.Loops {
			t.Errorf("row %q: witnessed %d + bailed %d > loops %d", r.Source, r.Witnessed, r.Bailed, r.Loops)
		}
	}
}

// TestAgreementExperimentPrints wires the study into the experiment
// runner under its registered name.
func TestAgreementExperimentPrints(t *testing.T) {
	p := testPipeline(t)
	var buf bytes.Buffer
	if err := p.Run("agreement", &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Corroborated verdicts", "corpus-test", "disagree", "dep right"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("agreement output missing %q:\n%s", want, buf.String())
		}
	}
}
