package core

import (
	"math/rand"
	"testing"
)

// batchTestModel builds a randomly initialized model — parity holds for any
// weights, so no training is needed.
func batchTestModel(t testing.TB, layers, maxLen int) *PragFormer {
	t.Helper()
	m, err := New(Config{Vocab: 200, MaxLen: maxLen, D: 32, Heads: 4, Layers: layers, Dropout: 0.1}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// raggedIDs generates n id sequences with lengths in [minLen, maxLen].
func raggedIDs(rng *rand.Rand, n, minLen, maxLen, vocab int) [][]int {
	out := make([][]int, n)
	for i := range out {
		T := minLen + rng.Intn(maxLen-minLen+1)
		ids := make([]int, T)
		ids[0] = 2 // [CLS], as tokenize.Vocab.Encode emits
		for t := 1; t < T; t++ {
			ids[t] = 4 + rng.Intn(vocab-4)
		}
		out[i] = ids
	}
	return out
}

// TestPredictBatchParity asserts bit-exact agreement between PredictBatch
// and looped Predict across batch sizes, ragged lengths, and layer counts.
func TestPredictBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, layers := range []int{1, 2} {
		m := batchTestModel(t, layers, 64)
		for _, B := range []int{1, 3, 16} {
			batch := raggedIDs(rng, B, 1, 64, m.Cfg.Vocab)
			got := m.PredictBatch(batch)
			probs := m.PredictBatchProbs(batch)
			labels := m.PredictLabelBatch(batch)
			if len(got) != B {
				t.Fatalf("layers=%d B=%d: got %d results", layers, B, len(got))
			}
			for i, ids := range batch {
				want := m.Predict(ids)
				if got[i] != want {
					t.Errorf("layers=%d B=%d seq %d (len %d): batch %v != single %v",
						layers, B, i, len(ids), got[i], want)
				}
				if probs[i][1] != want {
					t.Errorf("layers=%d B=%d seq %d: probs[1] %v != %v", layers, B, i, probs[i][1], want)
				}
				if labels[i] != m.PredictLabel(ids) {
					t.Errorf("layers=%d B=%d seq %d: label mismatch", layers, B, i)
				}
			}
		}
	}
}

// TestPredictBatchProbsLoss asserts that both class probabilities match the
// single-example path bit-for-bit (the batched evaluator derives losses
// from them).
func TestPredictBatchProbsLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := batchTestModel(t, 1, 64)
	batch := raggedIDs(rng, 5, 2, 40, m.Cfg.Vocab)
	probs := m.PredictBatchProbs(batch)
	for i, ids := range batch {
		c := m.forwardCls(ids, false)
		if probs[i] != c.prob {
			t.Errorf("seq %d: batch probs %v != single %v", i, probs[i], c.prob)
		}
	}
}

// TestPredictBatchTruncation asserts over-long sequences are truncated to
// MaxLen exactly as the single path does.
func TestPredictBatchTruncation(t *testing.T) {
	m := batchTestModel(t, 1, 16)
	long := make([]int, 40)
	long[0] = 2
	for i := 1; i < len(long); i++ {
		long[i] = 4 + i%100
	}
	got := m.PredictBatch([][]int{long})
	if want := m.Predict(long); got[0] != want {
		t.Errorf("truncated batch %v != single %v", got[0], want)
	}
}

// TestPredictBatchEmpty covers the degenerate shapes.
func TestPredictBatchEmpty(t *testing.T) {
	m := batchTestModel(t, 1, 16)
	if got := m.PredictBatch(nil); len(got) != 0 {
		t.Errorf("PredictBatch(nil) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("PredictBatch with an empty sequence should panic")
		}
	}()
	m.PredictBatch([][]int{{}})
}

// TestPredictBatchConcurrent hammers one model from several goroutines so
// the race detector can see the forward path is read-only.
func TestPredictBatchConcurrent(t *testing.T) {
	m := batchTestModel(t, 2, 32)
	batch := raggedIDs(rand.New(rand.NewSource(9)), 8, 2, 32, m.Cfg.Vocab)
	want := m.PredictBatch(batch)
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func() {
			ok := true
			for rep := 0; rep < 10; rep++ {
				got := m.PredictBatch(batch)
				for i := range got {
					if got[i] != want[i] {
						ok = false
					}
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 4; g++ {
		if !<-done {
			t.Error("concurrent PredictBatch diverged from sequential result")
		}
	}
}

// benchBatch is the fixed 16-sequence workload shared by the two
// benchmarks below, at the Fast-pipeline model scale.
func benchBatch(b *testing.B) (*PragFormer, [][]int) {
	m := batchTestModel(b, 1, 64)
	return m, raggedIDs(rand.New(rand.NewSource(3)), 16, 12, 64, m.Cfg.Vocab)
}

// BenchmarkPredictSequential16 is the baseline: 16 snippets through the
// per-example Predict path.
func BenchmarkPredictSequential16(b *testing.B) {
	m, batch := benchBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ids := range batch {
			m.Predict(ids)
		}
	}
}

// BenchmarkPredictBatch measures the same 16 snippets through one
// PredictBatch call; the acceptance target is ≥2× the sequential baseline
// (see BENCH_SERVE.json).
func BenchmarkPredictBatch(b *testing.B) {
	m, batch := benchBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(batch)
	}
}
