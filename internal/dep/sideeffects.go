package dep

import (
	"pragformer/internal/cast"
)

// Effects summarizes what a function may do to state outside itself.
// The paper identifies "determining function side effects" as a significant
// S2S pitfall; the ground-truth labeler uses this analysis with full bodies
// while the S2S personalities are denied them.
type Effects struct {
	HasIO               bool
	WritesGlobals       bool
	WritesPointerParams bool
	CallsUnknown        bool
}

// Pure reports whether the function is safe to call from concurrent loop
// iterations with disjoint arguments.
func (e Effects) Pure() bool {
	return !e.HasIO && !e.WritesGlobals && !e.WritesPointerParams && !e.CallsUnknown
}

// SideEffects analyzes a function definition. funcs provides callee bodies
// for transitive analysis; recursion is cut off by the visiting set.
func SideEffects(fd *cast.FuncDef, funcs map[string]*cast.FuncDef) Effects {
	return sideEffects(fd, funcs, map[string]bool{})
}

func sideEffects(fd *cast.FuncDef, funcs map[string]*cast.FuncDef, visiting map[string]bool) Effects {
	var e Effects
	if fd == nil {
		e.CallsUnknown = true
		return e
	}
	if visiting[fd.Name] {
		return e // recursive call: effects accounted at outer level
	}
	visiting[fd.Name] = true
	defer delete(visiting, fd.Name)

	locals := map[string]bool{}
	ptrParams := map[string]bool{}
	for _, p := range fd.Params {
		locals[p.Name] = true
		if p.Type != nil && p.Type.Ptr > 0 || len(p.ArrayDims) > 0 {
			ptrParams[p.Name] = true
		}
	}
	cast.Walk(fd.Body, func(n cast.Node) bool {
		switch v := n.(type) {
		case *cast.Decl:
			locals[v.Name] = true
		case *cast.Assign:
			name := cast.RootIdent(v.L)
			classifyWrite(v.L, name, locals, ptrParams, &e)
		case *cast.UnaryOp:
			if v.Op == "++" || v.Op == "--" {
				name := cast.RootIdent(v.X)
				classifyWrite(v.X, name, locals, ptrParams, &e)
			}
		case *cast.FuncCall:
			if id, ok := v.Fun.(*cast.Ident); ok {
				switch {
				case pureFuncs[id.Name]:
				case ioFuncs[id.Name]:
					e.HasIO = true
				default:
					callee, ok := funcs[id.Name]
					if !ok || callee == nil {
						e.CallsUnknown = true
					} else {
						ce := sideEffects(callee, funcs, visiting)
						e.HasIO = e.HasIO || ce.HasIO
						e.WritesGlobals = e.WritesGlobals || ce.WritesGlobals
						e.CallsUnknown = e.CallsUnknown || ce.CallsUnknown
						// A callee writing its own pointer params writes
						// whatever we passed; treat as pointer-param write
						// if we forwarded a pointer, conservatively always.
						e.WritesPointerParams = e.WritesPointerParams || ce.WritesPointerParams
					}
				}
			} else {
				e.CallsUnknown = true
			}
		}
		return true
	})
	return e
}

// classifyWrite attributes a write to locals, pointer params, or globals.
func classifyWrite(lhs cast.Expr, name string, locals, ptrParams map[string]bool, e *Effects) {
	if name == "" {
		e.WritesGlobals = true // *p = ..., unanalyzable target
		return
	}
	switch lhs.(type) {
	case *cast.Ident:
		if !locals[name] {
			e.WritesGlobals = true
		}
	default:
		// Array or member write: through a pointer param it escapes; to a
		// local array it stays private; to anything else it is global.
		switch {
		case ptrParams[name]:
			e.WritesPointerParams = true
		case locals[name]:
		default:
			e.WritesGlobals = true
		}
	}
	if u, ok := lhs.(*cast.UnaryOp); ok && u.Op == "*" {
		if ptrParams[name] {
			e.WritesPointerParams = true
		} else if !locals[name] {
			e.WritesGlobals = true
		}
	}
}
