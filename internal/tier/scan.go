package tier

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pragformer/internal/advisor"
	"pragformer/internal/dep"
	"pragformer/internal/obs"
	"pragformer/internal/scan"
)

// POST /scan through the tier: the router parses and dedupes loops
// locally (cheap, CPU-bound), answers warm loops from the shared verdict
// store, and fans only the cold unique loops across the fleet by their
// content hash — the same key the replicas' own LRUs use. The scan
// pipeline is reused wholesale via scan.Config.Store (the shared store
// read-through) and scan.VerdictSuggester (the HTTP fan-out), so the
// report bytes match a single replica's /scan output.

// Limits mirror one replica's /scan: the router does the parsing here.
const (
	maxScanFiles = 512
	maxScanBytes = 8 << 20
)

// suggestResult mirrors one /suggest outcome on the wire — the full
// flattened verdict a replica renders, decoded losslessly back into the
// report form.
type suggestResult struct {
	Parallelize  bool                 `json:"parallelize"`
	Probability  float64              `json:"probability"`
	Directive    string               `json:"directive,omitempty"`
	Tier         string               `json:"tier,omitempty"`
	Witness      []string             `json:"witness,omitempty"`
	Races        []dep.Witness        `json:"races,omitempty"`
	Converted    []string             `json:"converted,omitempty"`
	S2S          []suggestS2S         `json:"s2s,omitempty"`
	Attributions []suggestAttribution `json:"attributions,omitempty"`
	Notes        []string             `json:"notes,omitempty"`
	Error        string               `json:"error,omitempty"`
}

type suggestS2S struct {
	Compiler     string `json:"compiler"`
	Compiled     bool   `json:"compiled"`
	Parallelized bool   `json:"parallelized,omitempty"`
	Detail       string `json:"detail,omitempty"`
}

type suggestAttribution struct {
	Index  int     `json:"index"`
	Token  string  `json:"token"`
	Weight float64 `json:"weight,omitempty"`
}

// resultToVerdict lifts a decoded /suggest result into the scan report
// form — the shape the verdict store holds and scan reports render.
func resultToVerdict(r *suggestResult) *scan.Suggestion {
	s := &scan.Suggestion{
		Parallelize: r.Parallelize,
		Probability: r.Probability,
		Directive:   r.Directive,
		Tier:        r.Tier,
		Witness:     r.Witness,
		Races:       r.Races,
		Converted:   r.Converted,
		Notes:       r.Notes,
	}
	for _, v := range r.S2S {
		s.S2S = append(s.S2S, scan.S2SVerdict{
			Compiler: v.Compiler, Compiled: v.Compiled,
			Parallelized: v.Parallelized, Detail: v.Detail,
		})
	}
	for _, a := range r.Attributions {
		s.Attributions = append(s.Attributions, scan.Attribution{
			Index: a.Index, Token: a.Token, Weight: a.Weight,
		})
	}
	return s
}

// verdictToResult renders a stored verdict back to the /suggest wire form
// for read-through hits.
func verdictToResult(s *scan.Suggestion) suggestResult {
	r := suggestResult{
		Parallelize: s.Parallelize,
		Probability: s.Probability,
		Directive:   s.Directive,
		Tier:        s.Tier,
		Witness:     s.Witness,
		Races:       s.Races,
		Converted:   s.Converted,
		Notes:       s.Notes,
	}
	for _, v := range s.S2S {
		r.S2S = append(r.S2S, suggestS2S{
			Compiler: v.Compiler, Compiled: v.Compiled,
			Parallelized: v.Parallelized, Detail: v.Detail,
		})
	}
	for _, a := range s.Attributions {
		r.Attributions = append(r.Attributions, suggestAttribution{
			Index: a.Index, Token: a.Token, Weight: a.Weight,
		})
	}
	return r
}

// nsStore adapts the router's shared store to one scan run: it prefixes
// keys with the verdict namespace (backend|model|generation) and counts
// hits/misses into the router's fleet-wide tallies.
type nsStore struct {
	rt *Router
}

func (s nsStore) Get(hash string) (*scan.Suggestion, bool) {
	v, ok := s.rt.store.Get(s.rt.storeKey(hash))
	if ok {
		s.rt.storeHits.Add(1)
	} else {
		s.rt.storeMisses.Add(1)
	}
	return v, ok
}

func (s nsStore) Put(hash string, v *scan.Suggestion) {
	s.rt.store.Put(s.rt.storeKey(hash), v)
}

func (s nsStore) Len() int { return s.rt.store.Len() }

// tierSuggester drives the scan pipeline's inference stage over the
// fleet: each chunk of canonical snippets is routed by content hash and
// forwarded as one /suggest per replica. It implements
// scan.VerdictSuggester — replica responses decode straight to the
// flattened report form, no advisor reconstruction.
type tierSuggester struct {
	rt  *Router
	ctx context.Context
}

// SuggestBatch satisfies advisor.Suggester's method set; the scan
// pipeline never calls it on a VerdictSuggester.
func (t tierSuggester) SuggestBatch([]string) ([]advisor.BatchItem, error) {
	return nil, errors.New("tier: SuggestBatch is not used; scan goes through SuggestVerdicts")
}

func (t tierSuggester) SuggestVerdicts(codes []string) ([]scan.Verdict, error) {
	tr := obs.TraceFrom(t.ctx)
	verdicts := make([]scan.Verdict, len(codes))
	keys := make([]string, len(codes))
	for i, code := range codes {
		// Scan snippets are already canonical prints; their hash is the
		// routing key AND the store key.
		keys[i] = scan.HashSnippet(code)
	}
	endRoute := tr.Start("route")
	groups := t.rt.groupByKey(keys)
	endRoute()
	for _, g := range groups {
		if g.rep == nil {
			t.rt.sheds.Add(uint64(len(g.indices)))
			for _, i := range g.indices {
				verdicts[i].Err = errNoReplica
			}
			continue
		}
		sub := suggestRequest{}
		for _, i := range g.indices {
			sub.Codes = append(sub.Codes, codes[i])
		}
		var resp suggestResponse
		if err := t.rt.forward(t.ctx, g.rep, "/suggest", sub, &resp); err != nil {
			for _, i := range g.indices {
				verdicts[i].Err = err
			}
			continue
		}
		tr.Merge(resp.Trace)
		for k, i := range g.indices {
			if k >= len(resp.Results) {
				verdicts[i].Err = errors.New("tier: short replica response")
				continue
			}
			if e := resp.Results[k].Error; e != "" {
				verdicts[i].Err = errors.New(e)
				continue
			}
			verdicts[i].Suggestion = resultToVerdict(&resp.Results[k])
		}
	}
	return verdicts, nil
}

// scanRequest mirrors one replica's /scan body.
type scanRequest struct {
	Files            []scanFile `json:"files"`
	Format           string     `json:"format,omitempty"`
	Workers          int        `json:"workers,omitempty"`
	IncludeAnnotated bool       `json:"include_annotated,omitempty"`
	Stable           bool       `json:"stable,omitempty"`
}

type scanFile struct {
	Path   string `json:"path"`
	Source string `json:"source"`
}

func (rt *Router) handleScan(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 2*maxScanBytes)
	var req scanRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	if len(req.Files) == 0 {
		httpError(w, http.StatusBadRequest, "no files in scan request")
		return
	}
	if len(req.Files) > maxScanFiles {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d files exceeds the per-request limit of %d", len(req.Files), maxScanFiles))
		return
	}
	total := 0
	srcs := make([]scan.Source, len(req.Files))
	for i, f := range req.Files {
		if f.Path == "" {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("file %d has no path", i))
			return
		}
		total += len(f.Source)
		srcs[i] = scan.Source{Path: f.Path, Data: []byte(f.Source)}
	}
	if total > maxScanBytes {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d source bytes exceeds the per-request limit of %d", total, maxScanBytes))
		return
	}
	if req.Format != "" && req.Format != "json" && req.Format != "sarif" {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (json|sarif)", req.Format))
		return
	}
	workers := req.Workers
	if workers < 1 {
		workers = rt.cfg.ScanWorkers
	}
	if workers > 16 {
		workers = 16
	}

	cfg := scan.Config{
		Workers:          workers,
		Backend:          rt.backendLabel(),
		IncludeAnnotated: req.IncludeAnnotated,
		Store:            nsStore{rt: rt},
	}
	rep, err := scan.Files(r.Context(), srcs, cfg, tierSuggester{rt: rt, ctx: r.Context()})
	if err != nil {
		status := http.StatusInternalServerError
		if r.Context().Err() != nil {
			status = 499 // client closed request
		}
		httpError(w, status, err.Error())
		return
	}
	if req.Stable {
		rep = rep.Stable()
	}
	var out []byte
	if req.Format == "sarif" {
		out, err = rep.SARIF()
	} else {
		out, err = rep.JSON()
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(out)
}
