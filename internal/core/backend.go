package core

import (
	"fmt"

	"pragformer/internal/quant"
)

// Backend names, as selected by serving configuration and reported by
// health probes.
const (
	BackendFloat64 = "float64"
	BackendInt8    = "int8"
)

// Backend is the inference surface the upper layers — advisor, serve,
// experiments, the CLIs — program against, decoupling them from the
// numeric representation underneath. Two implementations exist: the float64
// *PragFormer itself (the training master), and the int8 *quant.Model
// produced by Quantize.
//
// Contract: every method must be safe for concurrent use — the serving
// layer shares one Backend value across replica workers (float models are
// additionally deep-copied per replica, but that is a locality
// optimization, not a requirement). An implementation that mutates state
// during inference does not satisfy this interface.
type Backend interface {
	// BackendName identifies the compute backend ("float64" | "int8").
	BackendName() string
	// VocabSize is the embeddable vocabulary size; ids must be in
	// [0, VocabSize).
	VocabSize() int
	// MaxSeqLen is the input position budget; longer sequences truncate.
	MaxSeqLen() int

	Predict(ids []int) float64
	PredictLabel(ids []int) bool
	PredictBatch(idsBatch [][]int) []float64
	PredictBatchProbs(idsBatch [][]int) [][2]float64
	PredictLabelBatch(idsBatch [][]int) []bool
}

// Both backends must satisfy the interface.
var (
	_ Backend = (*PragFormer)(nil)
	_ Backend = (*quant.Model)(nil)
)

// LoadClassifierFile reads one classifier artifact, sniffing the format: a
// PFQNT file (written by `pragformer quantize`) loads as the int8 backend,
// anything else as a float64 `pragformer train` artifact. The shared
// loader behind `cmd/serve` and `pragformer scan`.
func LoadClassifierFile(path string) (Backend, error) {
	isQuant, err := quant.SniffFile(path)
	if err != nil {
		return nil, err
	}
	if isQuant {
		return quant.LoadFile(path)
	}
	return LoadFile(path)
}

// BackendName identifies the float64 reference backend (Backend).
func (m *PragFormer) BackendName() string { return BackendFloat64 }

// VocabSize reports the embeddable vocabulary size (Backend).
func (m *PragFormer) VocabSize() int { return m.Cfg.Vocab }

// MaxSeqLen reports the input position budget (Backend).
func (m *PragFormer) MaxSeqLen() int { return m.Cfg.MaxLen }

// Quantize converts a trained model into the int8 inference backend:
// per-channel symmetric absmax quantization of every linear and attention
// weight matrix, calibrated once from the weights at quantize time (see
// internal/quant). The float model is left untouched; the returned bundle
// is inference-only.
func Quantize(m *PragFormer) (*quant.Model, error) {
	q, err := quant.FromNN(quant.Config{
		Vocab: m.Cfg.Vocab, MaxLen: m.Cfg.MaxLen, D: m.Cfg.D, Heads: m.Cfg.Heads,
		Layers: m.Cfg.Layers, FFHidden: m.Cfg.FFHidden, FCHidden: m.Cfg.FCHidden,
	}, m.Emb, m.Blocks, m.FinalLN, m.FC1, m.FC2)
	if err != nil {
		return nil, fmt.Errorf("core: quantize: %w", err)
	}
	return q, nil
}
