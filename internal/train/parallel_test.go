package train

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pragformer/internal/nn"
	"pragformer/internal/tensor"
)

// mlp is a Replicable matmul-heavy test model: hashed bag-of-ids features
// through a two-layer perceptron with softmax cross-entropy. It exists so
// the train package can exercise and benchmark the data-parallel engine
// without importing core (which itself imports train).
type mlp struct {
	d      int
	l1, l2 *nn.Linear
}

func newMLP(d, hidden int, seed int64) *mlp {
	rng := rand.New(rand.NewSource(seed))
	return &mlp{d: d, l1: nn.NewLinear("l1", d, hidden, rng), l2: nn.NewLinear("l2", hidden, 2, rng)}
}

func (m *mlp) Params() []*nn.Param { return append(m.l1.Params(), m.l2.Params()...) }

func (m *mlp) Replicate(seed int64) Model {
	c := newMLP(m.d, m.l1.W.W.Cols, seed)
	nn.CopyWeights(c.Params(), m.Params())
	return c
}

func (m *mlp) features(ids []int) *tensor.Matrix {
	x := tensor.New(1, m.d)
	row := x.Row(0)
	for k, id := range ids {
		row[(id+7*k)%m.d]++
	}
	return x
}

func (m *mlp) forward(ids []int) (p []float64, c1, c2 *nn.LinearCache, cr *nn.ReLUCache) {
	h, c1 := m.l1.Forward(m.features(ids))
	a, cr := nn.ReLU(h)
	logits, c2 := m.l2.Forward(a)
	return tensor.SoftmaxVec(logits.Row(0)), c1, c2, cr
}

func (m *mlp) LossAndBackward(ids []int, label bool) float64 {
	p, c1, c2, cr := m.forward(ids)
	y := 0
	if label {
		y = 1
	}
	dLogits := tensor.FromSlice(1, 2, []float64{p[0], p[1]})
	dLogits.Data[y]--
	da := m.l2.Backward(c2, dLogits)
	dh := nn.ReLUBackward(cr, da)
	m.l1.Backward(c1, dh)
	return -math.Log(math.Max(p[y], 1e-12))
}

func (m *mlp) Loss(ids []int, label bool) float64 {
	p, _, _, _ := m.forward(ids)
	y := 0
	if label {
		y = 1
	}
	return -math.Log(math.Max(p[y], 1e-12))
}

func (m *mlp) PredictLabel(ids []int) bool {
	p, _, _, _ := m.forward(ids)
	return p[1] > 0.5
}

// mlpData builds a deterministic synthetic set with both label classes.
func mlpData(n, length int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, n)
	for i := range out {
		ids := make([]int, length)
		sum := 0
		for t := range ids {
			ids[t] = rng.Intn(997)
			sum += ids[t]
		}
		out[i] = Example{IDs: ids, Label: sum%2 == 0}
	}
	return out
}

func fitMLP(workers, epochs int) History {
	m := newMLP(32, 64, 9)
	trainSet := mlpData(60, 10, 1)
	validSet := mlpData(20, 10, 2)
	return Fit(m, trainSet, validSet, Config{
		Epochs: epochs, BatchSize: 8, LR: 5e-3, ClipNorm: 1, Seed: 4, Workers: workers,
	})
}

// TestFitParallelMatchesSequential asserts the determinism contract inside
// the train package itself: 4 workers reproduce the 1-worker History with
// losses within 1e-9 and the same best epoch.
func TestFitParallelMatchesSequential(t *testing.T) {
	h1 := fitMLP(1, 4)
	h4 := fitMLP(4, 4)
	if h1.BestEpoch != h4.BestEpoch {
		t.Errorf("best epoch %d vs %d", h1.BestEpoch, h4.BestEpoch)
	}
	for i := range h1.Epochs {
		if d := math.Abs(h1.Epochs[i].TrainLoss - h4.Epochs[i].TrainLoss); d > 1e-9 {
			t.Errorf("epoch %d train loss drift %.3g", i, d)
		}
		if d := math.Abs(h1.Epochs[i].ValidLoss - h4.Epochs[i].ValidLoss); d > 1e-9 {
			t.Errorf("epoch %d valid loss drift %.3g", i, d)
		}
	}
}

// TestFitWorkersMoreThanExamples: worker count beyond the dataset size must
// clamp rather than spin up idle replicas or crash on empty shards.
func TestFitWorkersMoreThanExamples(t *testing.T) {
	m := newMLP(16, 16, 1)
	set := mlpData(3, 6, 3)
	h := Fit(m, set, set, Config{Epochs: 2, BatchSize: 2, LR: 1e-2, Seed: 1, Workers: 8})
	if len(h.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(h.Epochs))
	}
	for _, e := range h.Epochs {
		if math.IsNaN(e.TrainLoss) || math.IsNaN(e.ValidLoss) {
			t.Fatalf("NaN loss in %+v", e)
		}
	}
}

// TestFitNonReplicableFallsBack: a model without Replicate must train on the
// sequential path and produce the identical History regardless of Workers.
func TestFitNonReplicableFallsBack(t *testing.T) {
	run := func(workers int) History {
		m, trainSet, validSet := makeSep()
		return Fit(m, trainSet, validSet, Config{Epochs: 3, BatchSize: 8, LR: 0.05, Seed: 2, Workers: workers})
	}
	h1, h4 := run(1), run(4)
	for i := range h1.Epochs {
		if h1.Epochs[i] != h4.Epochs[i] {
			t.Fatalf("non-replicable model diverged with Workers set: %+v vs %+v",
				h1.Epochs[i], h4.Epochs[i])
		}
	}
}

// TestEvaluateParallelMatches: sharded evaluation over a concurrency-safe
// model must agree with the sequential Evaluate.
func TestEvaluateParallelMatches(t *testing.T) {
	m := newMLP(32, 64, 5)
	set := mlpData(37, 10, 8) // odd size: exercises the ragged last shard
	l1, a1 := Evaluate(m, set)
	for _, w := range []int{2, 3, 4, 64} {
		lw, aw := EvaluateParallel(m, set, w)
		if math.Abs(lw-l1) > 1e-9 || aw != a1 {
			t.Errorf("workers=%d: loss %.12f vs %.12f, acc %.3f vs %.3f", w, lw, l1, aw, a1)
		}
	}
}

// BenchmarkFitWorkers measures one training epoch of the matmul-heavy MLP
// at data-parallel widths 1, 2 and 4; the ratio of ns/op between the /1 and
// /4 cases is the engine's speedup on the host. Run with -cpu to pin
// GOMAXPROCS.
func BenchmarkFitWorkers(b *testing.B) {
	trainSet := mlpData(256, 24, 1)
	validSet := mlpData(32, 24, 2)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprint(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := newMLP(64, 512, 9)
				Fit(m, trainSet, validSet, Config{
					Epochs: 1, BatchSize: 32, LR: 1e-3, Seed: 4, Workers: w,
				})
			}
		})
	}
}
