// Package advisor composes the paper's pieces into the full pipeline its
// §6 sketches: generating entire OpenMP directives. The three PragFormer
// classifiers decide *whether* a directive and which clause kinds are
// needed; the dependence analysis supplies the *variable names* for the
// clauses; and, following the paper's ComPar-combination proposal, an S2S
// result can be used to corroborate the suggestion.
//
// The pipeline is batch-first: SuggestBatch tokenizes every snippet, then
// runs each classifier exactly once over the whole batch through
// core.PredictBatch (three batched forwards instead of 3·N single ones),
// while the per-snippet dependence analysis and corroboration stay
// per-item. Suggest is the single-snippet convenience wrapper.
package advisor

import (
	"fmt"
	"sync"

	"pragformer/internal/cast"
	"pragformer/internal/core"
	"pragformer/internal/cparse"
	"pragformer/internal/dep"
	"pragformer/internal/pragma"
	"pragformer/internal/s2s"
	"pragformer/internal/tokenize"
)

// Models bundles the three task classifiers with their shared vocabulary.
// The classifiers are core.Backend values, so a bundle can run on the
// float64 reference backend, the int8 quantized backend, or a mix (e.g. a
// quantized directive classifier next to float clause classifiers) —
// WithBackend converts a whole bundle. Private and Reduction may be nil, in
// which case clause decisions fall back to the dependence analysis alone.
// The zero MaxLen means core.DefaultMaxLen. Models is safe for concurrent
// use by multiple goroutines once constructed: suggestions only read the
// classifiers.
type Models struct {
	Directive core.Backend
	Private   core.Backend
	Reduction core.Backend
	Vocab     *tokenize.Vocab
	MaxLen    int

	// ComPar is the S2S compiler consulted to corroborate positive
	// suggestions. Nil wires the default s2s.NewComPar trio on first use —
	// once per Models, not once per call.
	ComPar s2s.Compiler
	// NoCorroborate skips the S2S corroboration entirely; Confidence then
	// never reaches ComParAgrees. Serving paths that cannot afford the
	// member-compiler passes set this.
	NoCorroborate bool

	comparOnce sync.Once
}

// comparator returns the corroborating compiler, wiring the default lazily.
func (m *Models) comparator() s2s.Compiler {
	m.comparOnce.Do(func() {
		if m.ComPar == nil {
			m.ComPar = s2s.NewComPar()
		}
	})
	return m.ComPar
}

// EffectiveMaxLen returns the sequence cap suggestions encode with: MaxLen
// when set, core.DefaultMaxLen otherwise. Serving layers that encode
// snippets themselves must use the same cap.
func (m *Models) EffectiveMaxLen() int {
	if m.MaxLen > 0 {
		return m.MaxLen
	}
	return core.DefaultMaxLen
}

// WithBackend returns a bundle whose classifiers all run on the named
// compute backend. The empty name keeps the bundle as loaded.
// core.BackendFloat64 requires every classifier to already be float64 (an
// int8 artifact cannot be dequantized back into a training-grade model).
// core.BackendInt8 quantizes float classifiers in place of deep conversion
// — already-quantized ones pass through. The receiver is never mutated;
// converted bundles share the vocabulary and corroboration settings.
func (m *Models) WithBackend(name string) (*Models, error) {
	if name == "" {
		return m, nil
	}
	convert := func(b core.Backend) (core.Backend, error) {
		if b == nil || b.BackendName() == name {
			return b, nil
		}
		switch name {
		case core.BackendFloat64:
			return nil, fmt.Errorf("advisor: cannot serve an %s classifier on the %s backend",
				b.BackendName(), name)
		case core.BackendInt8:
			pf, ok := b.(*core.PragFormer)
			if !ok {
				return nil, fmt.Errorf("advisor: cannot quantize a %s classifier", b.BackendName())
			}
			return core.Quantize(pf)
		default:
			return nil, fmt.Errorf("advisor: unknown backend %q (%s|%s)",
				name, core.BackendFloat64, core.BackendInt8)
		}
	}
	out := &Models{
		Vocab: m.Vocab, MaxLen: m.MaxLen,
		ComPar: m.ComPar, NoCorroborate: m.NoCorroborate,
	}
	var err error
	if out.Directive, err = convert(m.Directive); err != nil {
		return nil, err
	}
	if out.Private, err = convert(m.Private); err != nil {
		return nil, err
	}
	if out.Reduction, err = convert(m.Reduction); err != nil {
		return nil, err
	}
	return out, nil
}

// Suggester is the batch-suggestion capability consumers program against:
// the repo scanner drives it with chunked batches of unique loop snippets,
// and the serving engine's /scan endpoint substitutes its micro-batching
// pipeline for the direct model path. Models is the canonical in-process
// implementation.
type Suggester interface {
	SuggestBatch(codes []string) ([]BatchItem, error)
}

var _ Suggester = (*Models)(nil)

// Confidence grades how strongly a suggestion is corroborated.
type Confidence int

const (
	// ModelOnly means only PragFormer supports the directive.
	ModelOnly Confidence = iota
	// AnalysisAgrees means the dependence analysis also finds the loop
	// parallelizable.
	AnalysisAgrees
	// ComParAgrees means the S2S compiler independently inserted a
	// directive too — the paper's "verifying the correctness" case.
	ComParAgrees
)

// String names the confidence grade.
func (c Confidence) String() string {
	switch c {
	case ComParAgrees:
		return "model+analysis+compar"
	case AnalysisAgrees:
		return "model+analysis"
	default:
		return "model-only"
	}
}

// Suggestion is the advisor's output for one snippet.
type Suggestion struct {
	// Parallelize is the RQ1 verdict.
	Parallelize bool
	// Probability is the directive classifier's positive probability.
	Probability float64
	// Directive is the generated pragma (nil when Parallelize is false).
	Directive *pragma.Directive
	// Confidence grades corroboration.
	Confidence Confidence
	// Notes explains the clause decisions.
	Notes []string
}

// BatchItem is one snippet's outcome within a SuggestBatch call: either a
// suggestion or a per-snippet error (unlexable input), never both.
type BatchItem struct {
	Suggestion *Suggestion
	Err        error
}

// Suggest runs the full pipeline over a single code snippet.
func (m *Models) Suggest(code string) (*Suggestion, error) {
	items, err := m.SuggestBatch([]string{code})
	if err != nil {
		return nil, err
	}
	return items[0].Suggestion, items[0].Err
}

// SuggestBatch runs the pipeline over a batch of snippets. Tokenization
// failures surface as per-item errors; the returned error is non-nil only
// when the Models themselves are unusable. Each classifier runs once over
// the whole batch, so the per-call model overhead is amortized across
// snippets; results are identical to calling Suggest per snippet.
func (m *Models) SuggestBatch(codes []string) ([]BatchItem, error) {
	if m.Directive == nil || m.Vocab == nil {
		return nil, fmt.Errorf("advisor: directive model and vocabulary are required")
	}
	maxLen := m.EffectiveMaxLen()
	items := make([]BatchItem, len(codes))

	// Tokenize everything up front; the encodable snippets form the batch.
	var (
		idsBatch [][]int // encoded id sequences, one per encodable snippet
		at       []int   // items index of each batch position
	)
	for i, code := range codes {
		toks, err := tokenize.Extract(code, tokenize.Text)
		if err != nil {
			items[i].Err = fmt.Errorf("advisor: %w", err)
			continue
		}
		idsBatch = append(idsBatch, m.Vocab.Encode(toks, maxLen))
		at = append(at, i)
	}
	if len(idsBatch) == 0 {
		return items, nil
	}

	// One batched forward for the directive verdicts, then one per clause
	// classifier over the positive subset only.
	probs := m.Directive.PredictBatch(idsBatch)
	var (
		posIDs [][]int
		posAt  []int // items index of each positive
	)
	for j, i := range at {
		s := &Suggestion{Probability: probs[j], Parallelize: probs[j] > 0.5}
		items[i].Suggestion = s
		if s.Parallelize {
			posIDs = append(posIDs, idsBatch[j])
			posAt = append(posAt, i)
		} else {
			s.Notes = append(s.Notes, "directive classifier below threshold")
		}
	}
	if len(posIDs) == 0 {
		return items, nil
	}
	wantPrivate := make([]bool, len(posIDs))
	wantReduction := make([]bool, len(posIDs))
	if m.Private != nil {
		wantPrivate = m.Private.PredictLabelBatch(posIDs)
	}
	if m.Reduction != nil {
		wantReduction = m.Reduction.PredictLabelBatch(posIDs)
	}
	for k, i := range posAt {
		m.finish(items[i].Suggestion, codes[i], wantPrivate[k], wantReduction[k])
	}
	return items, nil
}

// finish completes a positive suggestion: dependence analysis, clause
// assembly, schedule hint, and confidence grading. wantPrivate and
// wantReduction carry the clause classifiers' verdicts (false when the
// classifier is absent — the analysis then decides).
func (m *Models) finish(s *Suggestion, code string, wantPrivate, wantReduction bool) {
	d := &pragma.Directive{ParallelFor: true}
	analysis := analyze(code)

	if analysis != nil {
		if m.Private == nil {
			wantPrivate = len(analysis.Private) > 0
		}
		if m.Reduction == nil {
			wantReduction = len(analysis.Reductions) > 0
		}
	}

	// Clause variables come from the analysis; the classifiers gate them
	// (the classifier can also rescue clauses the analysis missed when the
	// loop text alone was insufficient — then we note the gap).
	if wantPrivate {
		if analysis != nil && len(analysis.Private) > 0 {
			d.Private = append(d.Private, analysis.Private...)
			s.Notes = append(s.Notes, fmt.Sprintf("private variables from analysis: %v", analysis.Private))
		} else {
			s.Notes = append(s.Notes, "private clause predicted but no candidate variables found")
		}
	}
	if wantReduction {
		if analysis != nil && len(analysis.Reductions) > 0 {
			d.Reductions = append(d.Reductions, analysis.Reductions...)
			s.Notes = append(s.Notes, "reduction clause from analysis")
		} else {
			s.Notes = append(s.Notes, "reduction clause predicted but no accumulation pattern found")
		}
	}
	if analysis != nil && analysis.Unbalanced {
		d.Schedule = pragma.ScheduleDynamic
		s.Notes = append(s.Notes, "unbalanced body: schedule(dynamic)")
	}
	s.Directive = d

	// Confidence grading.
	if analysis != nil && analysis.Parallelizable {
		s.Confidence = AnalysisAgrees
	}
	if !m.NoCorroborate {
		if res, err := m.comparator().Compile(code); err == nil && res.Directive != nil {
			s.Confidence = ComParAgrees
		}
	}
}

// analyze parses the snippet and runs the dependence analysis over its
// target loop; nil when no loop is analyzable.
func analyze(code string) *dep.Analysis {
	f, err := cparse.Parse(code)
	if err != nil {
		return nil
	}
	loop := s2s.FirstLoop(f)
	if loop == nil {
		return nil
	}
	funcs := map[string]*cast.FuncDef{}
	for _, it := range f.Items {
		if fd, ok := it.(*cast.FuncDef); ok {
			funcs[fd.Name] = fd
		}
	}
	return dep.AnalyzeLoop(loop, funcs)
}

// Annotate returns the snippet with the suggested directive prepended, or
// the snippet unchanged when no directive is suggested.
func (s *Suggestion) Annotate(code string) string {
	if s.Directive == nil {
		return code
	}
	return s.Directive.String() + "\n" + code
}
