package experiments

import (
	"fmt"
	"io"

	"pragformer/internal/dataset"
	"pragformer/internal/tokenize"
)

// AblationRow is one configuration's best validation accuracy.
type AblationRow struct {
	Name     string
	Accuracy float64
}

// Ablation is a set of contrasted configurations.
type Ablation struct {
	Title string
	Rows  []AblationRow
}

// Print renders the ablation.
func (a Ablation) Print(w io.Writer) {
	fmt.Fprintln(w, a.Title)
	for _, r := range a.Rows {
		fmt.Fprintf(w, "  %-28s %.3f\n", r.Name, r.Accuracy)
	}
}

// ablationParams shrinks the training budget for ablation contrasts: the
// comparisons are relative, so a reduced budget preserves the ordering
// while keeping the full suite affordable on one CPU.
func ablationParams(base Params) Params {
	if base.MaxTrain == 0 || base.MaxTrain > 1500 {
		base.MaxTrain = 1500
	}
	if base.Epochs > 5 {
		base.Epochs = 5
	}
	if base.PretrainMax > 600 {
		base.PretrainMax = 600
	}
	return base
}

// RunAblationPretraining contrasts MLM-pretrained initialization (the
// DeepSCC stand-in) against from-scratch training — the paper's transfer-
// learning claim (§4.1).
func (p *Pipeline) RunAblationPretraining() Ablation {
	base := ablationParams(p.P)
	withPre := base
	withPre.PretrainEpochs = max(1, base.PretrainEpochs)
	if withPre.PretrainMax == 0 {
		withPre.PretrainMax = 300
	}
	without := base
	without.PretrainEpochs = 0

	seed := p.Cfg.Seed + 500
	a := Ablation{Title: "Ablation: MLM pretraining (DeepSCC stand-in) vs from scratch"}
	t1 := p.trainModel(dataset.TaskDirective, tokenize.Text, withPre, seed)
	a.Rows = append(a.Rows, AblationRow{"MLM-pretrained", t1.History.Best().ValidAccuracy})
	t2 := p.trainModel(dataset.TaskDirective, tokenize.Text, without, seed)
	a.Rows = append(a.Rows, AblationRow{"random init", t2.History.Best().ValidAccuracy})
	return a
}

// RunAblationHeads contrasts single-head and multi-head attention — the
// paper's "necessity of its sophisticated model architecture".
func (p *Pipeline) RunAblationHeads() Ablation {
	seed := p.Cfg.Seed + 600
	a := Ablation{Title: "Ablation: attention heads"}
	for _, heads := range []int{1, p.P.Heads} {
		prm := ablationParams(p.P)
		prm.Heads = heads
		t := p.trainModel(dataset.TaskDirective, tokenize.Text, prm, seed)
		a.Rows = append(a.Rows, AblationRow{fmt.Sprintf("%d head(s)", heads), t.History.Best().ValidAccuracy})
	}
	return a
}

// RunAblationSeqLen contrasts the paper's 110-token input cap against a
// tighter 32-token cap (long-range context matters for long snippets).
func (p *Pipeline) RunAblationSeqLen() Ablation {
	seed := p.Cfg.Seed + 700
	a := Ablation{Title: "Ablation: input length cap"}
	for _, maxLen := range []int{32, p.P.MaxLen} {
		prm := ablationParams(p.P)
		prm.MaxLen = maxLen
		t := p.trainModel(dataset.TaskDirective, tokenize.Text, prm, seed)
		a.Rows = append(a.Rows, AblationRow{fmt.Sprintf("max %d tokens", maxLen), t.History.Best().ValidAccuracy})
	}
	return a
}
