/* Prefix sum: the loop-carried dependence pins the iteration order. */

void prefix(double *a, int n) {
    int i;
    for (i = 1; i < n; i++) {
        a[i] = a[i] + a[i - 1];
    }
}
