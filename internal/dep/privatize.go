package dep

import (
	"sort"
	"strings"

	"pragformer/internal/cast"
	"pragformer/internal/pragma"
)

// Array privatization and array-reduction recognition: the two most common
// reasons a genuinely parallel loop is refuted by a plain dependence test.
// A per-iteration scratch array (written before read every iteration, with
// outer-invariant subscripts) privatizes away its cross-iteration output
// dependence; a consistent-operator accumulation (`hist[e] += x`) becomes a
// reduction clause even when the subscript itself is unanalyzable. Both are
// attempted only after the race test refutes, so every conversion recorded
// in Converted is a verdict the one-level engine would have gotten wrong.

// arrAcc pairs an access with its nest-affine subscript vector.
type arrAcc struct {
	acc  access
	subs []NAffine
	ok   bool   // every subscript converted to affine form
	key  string // printed subscript vector, for exact-match coverage checks
}

// testArraysNest runs the nested-loop dependence engine over array accesses.
// It returns false when a loop-carried array dependence survives both the
// distance-vector tests and the privatization/reduction rescues.
func (a *Analysis) testArraysNest(ctx *collector, ns *nestSpace, opts Options) bool {
	byName := map[string][]arrAcc{}
	var names []string
	for _, acc := range ctx.accesses {
		if acc.subs == nil {
			continue
		}
		aa := arrAcc{acc: acc, ok: true}
		keys := make([]string, 0, len(acc.subs))
		for _, s := range acc.subs {
			na := ns.affine(s)
			if !na.OK {
				aa.ok = false
			}
			aa.subs = append(aa.subs, na)
			keys = append(keys, cast.PrintExpr(s))
		}
		aa.key = strings.Join(keys, "][")
		if _, seen := byName[acc.name]; !seen {
			names = append(names, acc.name)
		}
		byName[acc.name] = append(byName[acc.name], aa)
	}
	sort.Strings(names)

	ok := true
	for _, name := range names {
		accs := byName[name]
		hasWrite := false
		for _, aa := range accs {
			if aa.acc.write {
				hasWrite = true
				break
			}
		}
		if !hasWrite {
			continue // read-only array: safe
		}
		witnesses, reason := a.raceTest(name, accs, ns)
		if len(witnesses) == 0 {
			continue
		}
		if opts.ArrayPrivatization && privatizable(name, accs, ns) {
			a.Private = append(a.Private, name)
			a.Converted = append(a.Converted, name)
			a.reason("array %s privatized: each iteration writes it before any read", name)
			continue
		}
		if opts.ArrayReductions {
			if op, okRed := arrayReduction(name, accs); okRed {
				a.Reductions = append(a.Reductions, pragma.Reduction{Op: op, Vars: []string{name}})
				a.Converted = append(a.Converted, name)
				a.reason("array %s recognized as a reduction(%s) accumulation", name, op)
				continue
			}
		}
		a.Witnesses = append(a.Witnesses, witnesses...)
		a.reason("%s", reason)
		ok = false
	}
	return ok
}

// raceTest tests every write of one array against every access and returns
// the best witness for a surviving dependence (empty when independent).
func (a *Analysis) raceTest(name string, accs []arrAcc, ns *nestSpace) ([]Witness, string) {
	for _, w := range accs {
		if w.acc.write && !w.ok {
			wit := ns.bailWitness(name, w.acc, w.acc, "non-affine subscript on a write")
			return []Witness{wit}, "array " + name + " written with non-affine subscript"
		}
	}
	var best *Witness
	for _, w := range accs {
		if !w.acc.write {
			continue
		}
		for _, r := range accs {
			if !r.ok {
				wit := ns.bailWitness(name, w.acc, r.acc, "non-affine access conflicting with a write")
				return []Witness{wit}, "array " + name + " has a non-affine access conflicting with a write"
			}
			rel := ns.pairTest(w.subs, r.subs)
			if rel.none {
				continue
			}
			if d, known := rel.dist[ns.vars[0]]; known && d == 0 {
				continue // loop-independent for the outer loop
			}
			wit := ns.buildWitness(name, w.acc, r.acc, rel)
			if best == nil || (wit.concreteOuter(ns) && !best.concreteOuter(ns)) {
				cp := wit
				best = &cp
			}
		}
	}
	if best == nil {
		return nil, ""
	}
	reason := "array " + name + " carries a loop dependence between accesses (" +
		best.Kind + ", distance " + best.Distance + ")"
	return []Witness{*best}, reason
}

// concreteOuter reports whether the witness resolved the outer-level
// direction (its vector leads with something other than '*').
func (w Witness) concreteOuter(ns *nestSpace) bool {
	return len(w.Vector) > 0 && w.Vector[0] != "*"
}

// privatizable decides whether an array behaves as per-iteration scratch:
// every subscript is affine, outer-invariant, and drawn from unambiguous
// inner levels; all accesses touch the same subscript vector; and the first
// access each iteration is an unconditional plain write, so reads only ever
// see values produced in the same outer iteration.
func privatizable(name string, accs []arrAcc, ns *nestSpace) bool {
	if strings.Contains(name, ".") {
		return false // struct member pseudo-arrays cannot take a clause
	}
	for _, aa := range accs {
		if !aa.ok || aa.key != accs[0].key {
			return false
		}
		for _, na := range aa.subs {
			if na.Varying {
				return false
			}
			for v := range na.Coefs {
				if v == ns.vars[0] {
					return false // subscript depends on the outer iteration
				}
				if h, okH := ns.headers[v]; !okH || !h.OK {
					return false // ambiguous inner bounds: coverage unknown
				}
			}
		}
	}
	first := accs[0].acc
	return first.write && first.plainWrite && first.accumOp == "" && !first.cond
}

// arrayReduction recognizes a consistent-operator accumulation: every write
// is an accumulation with one operator and the array is never read outside
// its own accumulations. The subscript may be arbitrary — histogram updates
// through an index array are the canonical case.
func arrayReduction(name string, accs []arrAcc) (string, bool) {
	if strings.Contains(name, ".") {
		return "", false
	}
	op := ""
	for _, aa := range accs {
		if aa.acc.accumOp == "" {
			return "", false
		}
		if op == "" {
			op = aa.acc.accumOp
		} else if op != aa.acc.accumOp {
			return "", false
		}
	}
	return op, op != ""
}
