/* Deliberately malformed: the for-header is missing its closing paren.
   The scanner must skip this file with a positioned parse error, not abort. */

void oops(int *x, int n) {
    int i;
    for (i = 0; i < n; i++ {
        x[i] = i;
    }
}
