// S2S comparison: reproduce the paper's §6 proposal of combining PragFormer
// with the S2S compilers — run both over held-out snippets and print the
// agreement matrix. Where both agree on a directive, it can be trusted
// ("verifying the correctness of the directive and the necessity", §2.1);
// where they disagree, the snippet deserves human review. A PolyBench-style
// pass afterwards shows why the combination breaks down on benchmark code:
// ComPar cannot even parse the kernels PragFormer handles.
package main

import (
	"errors"
	"fmt"

	"pragformer/internal/core"
	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/s2s"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

func main() {
	model, vocab, test := trainDirectiveModel()
	compar := s2s.NewComPar()

	fmt.Println("=== Open-OMP held-out test split ===")
	agreementMatrix(model, vocab, test, compar)

	fmt.Println("\n=== PolyBench-style suite (transfer) ===")
	pb := corpus.GeneratePolyBench(42)
	agreementMatrix(model, vocab, pb.Records, compar)
}

func agreementMatrix(model *core.PragFormer, vocab *tokenize.Vocab, records []*corpus.Record, compar *s2s.ComPar) {

	type cell struct{ agreeYes, agreeNo, onlyModel, onlyCompar, failures int }
	var m cell
	correctModel, correctBoth := 0, 0

	for _, rec := range records {
		toks, err := tokenize.Extract(rec.Code, tokenize.Text)
		if err != nil {
			continue
		}
		modelYes := model.Predict(vocab.Encode(toks, 64)) > 0.5

		comparYes := false
		res, err := compar.Compile(rec.Code)
		switch {
		case errors.Is(err, s2s.ErrParse):
			m.failures++
		case err != nil:
			m.failures++
		default:
			comparYes = res.Directive != nil
		}

		switch {
		case modelYes && comparYes:
			m.agreeYes++
		case !modelYes && !comparYes:
			m.agreeNo++
		case modelYes:
			m.onlyModel++
		default:
			m.onlyCompar++
		}
		if modelYes == rec.HasOMP() {
			correctModel++
		}
		if modelYes && comparYes && rec.HasOMP() {
			correctBoth++
		}
	}

	total := len(records)
	positives := 0
	for _, r := range records {
		if r.HasOMP() {
			positives++
		}
	}
	fmt.Printf("%d snippets (%d with directives)\n", total, positives)
	fmt.Println("Agreement matrix (PragFormer vs ComPar):")
	fmt.Printf("  both say parallelize:   %3d\n", m.agreeYes)
	fmt.Printf("  both say leave serial:  %3d\n", m.agreeNo)
	fmt.Printf("  only PragFormer says yes: %d\n", m.onlyModel)
	fmt.Printf("  only ComPar says yes:     %d\n", m.onlyCompar)
	fmt.Printf("  ComPar compile failures:  %d\n", m.failures)
	fmt.Printf("PragFormer accuracy:      %.2f\n", float64(correctModel)/float64(total))
	if m.agreeYes > 0 {
		fmt.Printf("precision when both agree: %.2f (the paper's §6 verification idea)\n",
			float64(correctBoth)/float64(m.agreeYes))
	}
}

func trainDirectiveModel() (*core.PragFormer, *tokenize.Vocab, []*corpus.Record) {
	c := corpus.Generate(corpus.Config{Seed: 3, Total: 900})
	split := dataset.Directive(c, dataset.Options{Seed: 3})
	var seqs [][]string
	for _, in := range split.Train {
		toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
		if err != nil {
			panic(err)
		}
		seqs = append(seqs, toks)
	}
	vocab := tokenize.BuildVocab(seqs, 1)
	encode := func(ins []dataset.Instance) []train.Example {
		out := make([]train.Example, len(ins))
		for i, in := range ins {
			toks, _ := tokenize.Extract(in.Rec.Code, tokenize.Text)
			out[i] = train.Example{IDs: vocab.Encode(toks, 64), Label: in.Label}
		}
		return out
	}
	model, err := core.New(core.Config{Vocab: vocab.Size(), MaxLen: 64, D: 32, Heads: 4, Layers: 1}, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("training directive model on Open-OMP...")
	hist := train.Fit(model, encode(split.Train), encode(split.Valid), train.Config{
		Epochs: 4, BatchSize: 16, LR: 1.5e-3, ClipNorm: 1, Seed: 3,
	})
	fmt.Printf("model ready (valid accuracy %.3f)\n\n", hist.Best().ValidAccuracy)
	test := make([]*corpus.Record, len(split.Test))
	for i, in := range split.Test {
		test[i] = in.Rec
	}
	return model, vocab, test
}
