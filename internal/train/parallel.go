package train

import (
	"math"
	"sync"

	"pragformer/internal/ckpt"
	"pragformer/internal/nn"
)

// Data-parallel training: the batch loop of Fit with each batch sharded
// across W model replicas. Replica r owns a contiguous shard of the batch,
// accumulates gradients locally, and after the barrier the primary sums
// replica gradients in replica order (fixed reduction order), steps the
// optimizer on the primary parameters only, and broadcasts the updated
// weights back out. Optimizer state therefore lives only on the primary,
// exactly as in the sequential path, and every floating-point reduction has
// a schedule-independent association order — two runs with the same worker
// count are bit-identical, and different worker counts agree up to
// summation-order rounding (≪1e-9 on the scales this repo trains).

// runParallel is the Workers>1 body of Run/Resume; cfg defaults are
// already filled. snap, when non-nil, is a checkpoint to resume from: the
// primary's weights and optimizer are restored before the replicas are
// cloned (so the clones start from the restored weights), and every
// replica's dropout stream is then rewound to its checkpointed position —
// the pieces that make the resumed run bit-identical to an uninterrupted
// one at the same (seed, W).
func runParallel(m Replicable, trainSet, validSet []Example, cfg Config, snap *ckpt.Snapshot) (History, error) {
	// Replicas beyond the batch size (or dataset size) can never receive a
	// shard, so clamping is free: it changes the replica count but not one
	// bit of the result.
	w := min(cfg.Workers, cfg.BatchSize)
	if len(trainSet) > 0 {
		w = min(w, len(trainSet))
	}

	opt := NewAdamW(cfg.LR)
	order := make([]int, len(trainSet))
	for i := range order {
		order[i] = i
	}
	rng := newShuffler(cfg.Seed)

	st := &runState{bestLoss: math.Inf(1)}
	ck := newCheckpointer(cfg)
	if err := restoreRun(snap, cfg, w, m.Params(), opt, rng, order, st, ck); err != nil {
		return History{}, err
	}

	replicas := make([]Model, w)
	paramSets := make([][]*nn.Param, w)
	replicas[0] = m
	paramSets[0] = m.Params()
	for r := 1; r < w; r++ {
		replicas[r] = m.Replicate(cfg.Seed + int64(1000*r))
		paramSets[r] = replicas[r].Params()
	}
	primary := paramSets[0]
	restoreRNGs(snap, replicas)

	shardLoss := make([]float64, w)
	for epoch := st.epoch; epoch < cfg.Epochs; epoch++ {
		rng.shuffle(order)
		totalLoss := 0.0
		for r := range paramSets {
			ZeroGrads(paramSets[r])
		}
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			batch := order[start:end]
			runShards(replicas, batch, trainSet, shardLoss)
			for r := 1; r < w; r++ {
				nn.AccumGrads(primary, paramSets[r])
				ZeroGrads(paramSets[r])
			}
			for _, l := range shardLoss {
				totalLoss += l
			}
			optStep(opt, primary, cfg, len(batch), &st.step)
			for r := 1; r < w; r++ {
				nn.CopyWeights(paramSets[r], primary)
			}
		}

		stats := EpochStats{Epoch: epoch, TrainLoss: totalLoss / float64(max(1, len(trainSet)))}
		stats.ValidLoss, stats.ValidAccuracy = evaluateModels(replicas, validSet)
		finishEpoch(&st.h, &st.bestLoss, cfg, stats, w)
		if stop, err := afterEpoch(ck, cfg, st, replicas, primary, opt, rng, epoch); stop || err != nil {
			return st.h, err
		}
	}
	ck.restoreBest(cfg, primary)
	return st.h, nil
}

// runShards splits batch into one contiguous shard per replica and runs
// LossAndBackward over each shard concurrently. shardLoss[r] receives the
// in-shard loss sum, folded left-to-right so it is schedule-independent.
func runShards(replicas []Model, batch []int, set []Example, shardLoss []float64) {
	w := len(replicas)
	per := (len(batch) + w - 1) / w
	var wg sync.WaitGroup
	for r := 0; r < w; r++ {
		shardLoss[r] = 0
		lo := min(r*per, len(batch))
		hi := min(lo+per, len(batch))
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(r, lo, hi int) {
			defer wg.Done()
			sum := 0.0
			for _, idx := range batch[lo:hi] {
				sum += replicas[r].LossAndBackward(set[idx].IDs, set[idx].Label)
			}
			shardLoss[r] = sum
		}(r, lo, hi)
	}
	wg.Wait()
}

// evaluateModels computes mean loss and accuracy over set, sharding the work
// across the given models. Each shard runs batch-first when its model
// supports BatchPredictor. All models must hold identical weights (replicas
// after a broadcast); per-shard sums are reduced in shard order, so the
// result is deterministic for a fixed model count.
func evaluateModels(models []Model, set []Example) (loss, acc float64) {
	if len(set) == 0 {
		return 0, 0
	}
	w := min(len(models), len(set))
	if w == 1 {
		return Evaluate(models[0], set)
	}
	per := (len(set) + w - 1) / w
	losses := make([]float64, w)
	correct := make([]int, w)
	var wg sync.WaitGroup
	for r := 0; r < w; r++ {
		lo := min(r*per, len(set))
		hi := min(lo+per, len(set))
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(r, lo, hi int) {
			defer wg.Done()
			losses[r], correct[r] = evalSums(models[r], set[lo:hi])
		}(r, lo, hi)
	}
	wg.Wait()
	n := 0
	for r := 0; r < w; r++ {
		loss += losses[r]
		n += correct[r]
	}
	return loss / float64(len(set)), float64(n) / float64(len(set))
}

// EvaluateParallel computes mean loss and accuracy with the set sharded
// across workers goroutines that all call the same model concurrently. The
// model's inference methods (Loss, PredictLabel, PredictBatchProbs) must be
// safe for concurrent use — true for core.PragFormer, whose inference path
// is read-only over the weights.
func EvaluateParallel(m Model, set []Example, workers int) (loss, acc float64) {
	if workers <= 1 || len(set) < 2 {
		return Evaluate(m, set)
	}
	models := make([]Model, workers)
	for i := range models {
		models[i] = m
	}
	return evaluateModels(models, set)
}
