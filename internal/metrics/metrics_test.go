package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPerfectClassifier(t *testing.T) {
	var c Confusion
	for i := 0; i < 10; i++ {
		c.Add(true, true)
		c.Add(false, false)
	}
	r := c.Report()
	if r.Precision != 1 || r.Recall != 1 || r.F1 != 1 || r.Accuracy != 1 {
		t.Fatalf("r = %+v", r)
	}
}

func TestAlwaysPositive(t *testing.T) {
	var c Confusion
	for i := 0; i < 10; i++ {
		c.Add(true, true)
		c.Add(true, false)
	}
	if c.Accuracy() != 0.5 {
		t.Errorf("acc = %g", c.Accuracy())
	}
	if c.PositivePrecision() != 0.5 || c.PositiveRecall() != 1 {
		t.Errorf("pos P=%g R=%g", c.PositivePrecision(), c.PositiveRecall())
	}
	if c.NegativeRecall() != 0 {
		t.Errorf("neg recall = %g", c.NegativeRecall())
	}
	// Macro recall = (1 + 0) / 2.
	if c.Recall() != 0.5 {
		t.Errorf("macro recall = %g", c.Recall())
	}
}

func TestKnownMatrix(t *testing.T) {
	c := Confusion{TP: 40, FP: 10, TN: 35, FN: 15}
	if c.Total() != 100 {
		t.Fatal("total wrong")
	}
	if math.Abs(c.Accuracy()-0.75) > 1e-12 {
		t.Errorf("acc = %g", c.Accuracy())
	}
	if math.Abs(c.PositivePrecision()-0.8) > 1e-12 {
		t.Errorf("posP = %g", c.PositivePrecision())
	}
	if math.Abs(c.PositiveRecall()-40.0/55) > 1e-12 {
		t.Errorf("posR = %g", c.PositiveRecall())
	}
	wantF1 := 2 * 0.8 * (40.0 / 55) / (0.8 + 40.0/55)
	if math.Abs(c.PositiveF1()-wantF1) > 1e-12 {
		t.Errorf("posF1 = %g want %g", c.PositiveF1(), wantF1)
	}
}

func TestEmptyMatrixSafe(t *testing.T) {
	var c Confusion
	r := c.Report()
	if r.Accuracy != 0 || r.Precision != 0 || r.Recall != 0 || r.F1 != 0 {
		t.Fatalf("r = %+v", r)
	}
}

func TestReportString(t *testing.T) {
	c := Confusion{TP: 1, TN: 1}
	s := c.Report().String()
	if !strings.Contains(s, "Acc=1.00") {
		t.Errorf("s = %q", s)
	}
}

// Properties: all metrics stay in [0,1]; swapping prediction polarity swaps
// the class-specific measures.
func TestMetricBounds(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		r := c.Report()
		for _, v := range []float64{r.Precision, r.Recall, r.F1, r.Accuracy} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPolaritySwap(t *testing.T) {
	c := Confusion{TP: 7, FP: 3, TN: 20, FN: 5}
	swapped := Confusion{TP: c.TN, FP: c.FN, TN: c.TP, FN: c.FP}
	if c.PositivePrecision() != swapped.NegativePrecision() {
		t.Error("precision polarity swap broken")
	}
	if c.PositiveRecall() != swapped.NegativeRecall() {
		t.Error("recall polarity swap broken")
	}
	if c.Accuracy() != swapped.Accuracy() {
		t.Error("accuracy should be polarity invariant")
	}
	if math.Abs(c.F1()-swapped.F1()) > 1e-12 {
		t.Error("macro F1 should be polarity invariant")
	}
}
