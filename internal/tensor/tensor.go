// Package tensor provides the dense float64 matrix kernels behind the
// transformer implementation: allocation, seeded random init, (parallel)
// matrix products in the three orientations backpropagation needs, row-wise
// softmax, and elementwise helpers. Parallel loops split rows across a
// persistent GOMAXPROCS-sized worker pool (pool.go) with disjoint output
// ranges, so results are exactly deterministic regardless of scheduling,
// and a []float64 buffer pool recycles hot-path scratch storage.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (len rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Randn fills the matrix with N(0, std²) samples from rng.
func (m *Matrix) Randn(rng *rand.Rand, std float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// AddInPlace adds b elementwise.
func (m *Matrix) AddInPlace(b *Matrix) {
	checkSame(m, b)
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies all elements by c.
func (m *Matrix) ScaleInPlace(c float64) {
	for i := range m.Data {
		m.Data[i] *= c
	}
}

func checkSame(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// parallelThreshold is the minimum row*col product before MatMul fans out
// to goroutines; below it, the scheduling overhead dominates.
const parallelThreshold = 64 * 64

// ParallelFor runs fn over [0, n) split into contiguous chunks across
// GOMAXPROCS workers. Chunks are disjoint, so writes to per-index state are
// race-free and the result is schedule-independent. Chunks beyond the first
// are handed to idle workers of the persistent pool (see pool.go); the
// caller runs the first chunk itself, and any chunk no worker is free to
// take immediately (nested or heavily contended parallel sections) runs
// inline on the caller, so the call always makes progress and can never
// deadlock.
func ParallelFor(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < 2 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	ch := ensurePool(workers - 1)
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case ch <- poolTask{fn: fn, lo: lo, hi: hi, wg: &wg}:
		default:
			fn(lo, hi)
			wg.Done()
		}
	}
	fn(0, chunk)
	wg.Wait()
}

// MatMul computes out = a·b, allocating out. a is m×k, b is k×n.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b into a preallocated out. Each output
// element is one FMA chain in ascending k (see float.go for the kernel
// contract shared by the AVX2 and scalar paths).
func MatMulInto(out, a, b *Matrix) {
	matMulEpilogue(out, a, b, nil, false)
}

// MatMulAT computes out = aᵀ·b, allocating out. a is k×m, b is k×n, out m×n.
func MatMulAT(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulATInto(out, a, b)
	return out
}

// MatMulATInto computes out = aᵀ·b into a preallocated (possibly dirty) out.
func MatMulATInto(out, a, b *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATInto shape %dx%d = (%dx%d)ᵀ·%dx%d",
			out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	K, N := a.Rows, b.Cols
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if K == 0 {
				clear(out.Row(i))
				continue
			}
			// Column i of a is a strided vector: elements a.Data[i+k*a.Cols].
			f64GemmRow(out.Row(i), a.Data[i:], a.Cols, b.Data, b.Cols, nil, K, N, false)
		}
	}
	if out.Rows*out.Cols >= parallelThreshold {
		ParallelFor(out.Rows, body)
	} else {
		body(0, out.Rows)
	}
}

// MatMulBT computes out = a·bᵀ, allocating out. a is m×k, b is n×k, out m×n.
func MatMulBT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBT inner dims %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	MatMulBTInto(out, a, b)
	return out
}

// RowSoftmax applies softmax to each row in place, numerically stabilized.
// Degenerate rows (all -Inf) become all-zero rather than NaN.
func RowSoftmax(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		if math.IsInf(maxv, -1) {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			row[j] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// SoftmaxVec computes softmax of a vector, returning a new slice.
func SoftmaxVec(v []float64) []float64 {
	return SoftmaxVecInto(make([]float64, len(v)), v)
}

// SoftmaxVecInto computes softmax of v into out (len(out) == len(v)) and
// returns out. Callers on the hot path pair it with GetVec/PutVec.
func SoftmaxVecInto(out, v []float64) []float64 {
	if len(out) != len(v) {
		panic("tensor: SoftmaxVecInto length mismatch")
	}
	maxv := math.Inf(-1)
	for _, x := range v {
		if x > maxv {
			maxv = x
		}
	}
	sum := 0.0
	for i, x := range v {
		e := math.Exp(x - maxv)
		out[i] = e
		sum += e
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x over vectors.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// AddInto computes dst = a + b elementwise. dst may alias a or b.
func AddInto(dst, a, b *Matrix) {
	checkSame(a, b)
	checkSame(dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Norm2 returns the Euclidean norm of the matrix elements.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
