// Command corpusgen generates the Open-OMP corpus (or the held-out
// PolyBench/SPEC-style suites) to a JSON-lines file and prints its
// statistics (the paper's Tables 3–4 and Figure 3).
//
// Usage:
//
//	corpusgen -out open_omp.jsonl -total 17013 -seed 1
//	corpusgen -suite polybench -out polybench.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"pragformer/internal/corpus"
)

func main() {
	var (
		out   = flag.String("out", "open_omp.jsonl", "output path (- for stdout)")
		total = flag.Int("total", corpus.DefaultTotal, "number of snippets (open-omp suite)")
		seed  = flag.Int64("seed", 1, "generation seed")
		suite = flag.String("suite", "open-omp", "suite: open-omp, polybench, spec")
	)
	flag.Parse()

	var c *corpus.Corpus
	switch *suite {
	case "open-omp":
		c = corpus.Generate(corpus.Config{Seed: *seed, Total: *total})
	case "polybench":
		c = corpus.GeneratePolyBench(*seed)
	case "spec":
		c = corpus.GenerateSPEC(*seed)
	default:
		fmt.Fprintf(os.Stderr, "corpusgen: unknown suite %q\n", *suite)
		os.Exit(2)
	}

	if *out == "-" {
		if err := c.Save(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
	} else {
		if err := c.SaveFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", len(c.Records), *out)
	}

	s := c.Stats()
	fmt.Printf("total snippets:       %d\n", s.Total)
	fmt.Printf("with directives:      %d\n", s.WithDirective)
	fmt.Printf("  schedule static:    %d\n", s.ScheduleStatic)
	fmt.Printf("  schedule dynamic:   %d\n", s.ScheduleDynamic)
	fmt.Printf("  reduction:          %d\n", s.Reduction)
	fmt.Printf("  private:            %d\n", s.Private)
	h := c.LengthHistogram()
	fmt.Printf("lengths: <=10: %d, 11-50: %d, 51-100: %d, >100: %d\n", h[0], h[1], h[2], h[3])
	for d, f := range c.DomainDistribution() {
		fmt.Printf("domain %-24s %.1f%%\n", d.String()+":", f*100)
	}
}
