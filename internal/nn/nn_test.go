package nn

import (
	"math"
	"math/rand"
	"testing"

	"pragformer/internal/tensor"
)

// loss is a fixed random linear functional of the output, so dOut = r and
// analytic gradients can be checked against central finite differences.
func lossOf(out, r *tensor.Matrix) float64 {
	s := 0.0
	for i := range out.Data {
		s += out.Data[i] * r.Data[i]
	}
	return s
}

const (
	fdEps = 1e-5
	fdTol = 1e-4
)

// checkGrad compares an analytic gradient against finite differences of f
// with respect to the entries of w.
func checkGrad(t *testing.T, name string, w, analytic *tensor.Matrix, f func() float64) {
	t.Helper()
	for i := 0; i < len(w.Data); i += 1 + len(w.Data)/17 { // sample entries
		orig := w.Data[i]
		w.Data[i] = orig + fdEps
		up := f()
		w.Data[i] = orig - fdEps
		down := f()
		w.Data[i] = orig
		numeric := (up - down) / (2 * fdEps)
		if diff := math.Abs(numeric - analytic.Data[i]); diff > fdTol*(1+math.Abs(numeric)) {
			t.Errorf("%s grad[%d]: analytic %.6g vs numeric %.6g", name, i, analytic.Data[i], numeric)
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("t", 4, 3, rng)
	x := tensor.New(5, 4).Randn(rng, 1)
	r := tensor.New(5, 3).Randn(rng, 1)

	forward := func() float64 {
		y, _ := l.Forward(x)
		return lossOf(y, r)
	}
	y, c := l.Forward(x)
	_ = y
	dx := l.Backward(c, r)

	checkGrad(t, "linear.W", l.W.W, l.W.Grad, forward)
	checkGrad(t, "linear.b", l.B.W, l.B.Grad, forward)
	checkGrad(t, "linear.x", x, dx, forward)
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ln := NewLayerNorm("t", 6)
	ln.Gamma.W.Randn(rng, 0.5)
	for i := range ln.Gamma.W.Data {
		ln.Gamma.W.Data[i] += 1
	}
	ln.Beta.W.Randn(rng, 0.5)
	x := tensor.New(3, 6).Randn(rng, 1)
	r := tensor.New(3, 6).Randn(rng, 1)

	forward := func() float64 {
		y, _ := ln.Forward(x)
		return lossOf(y, r)
	}
	_, c := ln.Forward(x)
	dx := ln.Backward(c, r)

	checkGrad(t, "ln.gamma", ln.Gamma.W, ln.Gamma.Grad, forward)
	checkGrad(t, "ln.beta", ln.Beta.W, ln.Beta.Grad, forward)
	checkGrad(t, "ln.x", x, dx, forward)
}

func TestAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMultiHeadAttention("t", 8, 2, rng)
	x := tensor.New(5, 8).Randn(rng, 1)
	r := tensor.New(5, 8).Randn(rng, 1)

	forward := func() float64 {
		y, _ := m.Forward(x)
		return lossOf(y, r)
	}
	_, c := m.Forward(x)
	dx := m.Backward(c, r)

	checkGrad(t, "attn.wq", m.WQ.W.W, m.WQ.W.Grad, forward)
	checkGrad(t, "attn.wk", m.WK.W.W, m.WK.W.Grad, forward)
	checkGrad(t, "attn.wv", m.WV.W.W, m.WV.W.Grad, forward)
	checkGrad(t, "attn.wo", m.WO.W.W, m.WO.W.Grad, forward)
	checkGrad(t, "attn.x", x, dx, forward)
}

func TestFFNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := NewFFN("t", 6, 12, rng)
	x := tensor.New(4, 6).Randn(rng, 1)
	r := tensor.New(4, 6).Randn(rng, 1)

	forward := func() float64 {
		y, _ := f.Forward(x)
		return lossOf(y, r)
	}
	_, c := f.Forward(x)
	dx := f.Backward(c, r)

	checkGrad(t, "ffn.l1", f.L1.W.W, f.L1.W.Grad, forward)
	checkGrad(t, "ffn.l2", f.L2.W.W, f.L2.W.Grad, forward)
	checkGrad(t, "ffn.x", x, dx, forward)
}

func TestEncoderBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewEncoderBlock("t", 8, 2, 16, 0, rng)
	x := tensor.New(4, 8).Randn(rng, 1)
	r := tensor.New(4, 8).Randn(rng, 1)

	forward := func() float64 {
		y, _ := b.Forward(x, false, nil)
		return lossOf(y, r)
	}
	_, c := b.Forward(x, false, nil)
	dx := b.Backward(c, r)

	checkGrad(t, "block.x", x, dx, forward)
	checkGrad(t, "block.attn.wv", b.Attn.WV.W.W, b.Attn.WV.W.Grad, forward)
	checkGrad(t, "block.ffn.l1", b.FF.L1.W.W, b.FF.L1.W.Grad, forward)
	checkGrad(t, "block.ln1.gamma", b.LN1.Gamma.W, b.LN1.Gamma.Grad, forward)
}

func TestEmbeddingForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := NewEmbedding(10, 8, 4, rng)
	ids := []int{2, 5, 5, 1}
	out := e.Forward(ids)
	if out.Rows != 4 || out.Cols != 4 {
		t.Fatalf("out shape %dx%d", out.Rows, out.Cols)
	}
	// Row = tok + pos.
	for j := 0; j < 4; j++ {
		want := e.Tok.W.At(5, j) + e.Pos.W.At(1, j)
		if math.Abs(out.At(1, j)-want) > 1e-12 {
			t.Fatal("embedding sum wrong")
		}
	}
	dOut := tensor.New(4, 4)
	for i := range dOut.Data {
		dOut.Data[i] = 1
	}
	e.Backward(ids, dOut)
	// Token 5 appears twice → grad rows accumulate to 2.
	if e.Tok.Grad.At(5, 0) != 2 {
		t.Errorf("tok grad = %g, want 2", e.Tok.Grad.At(5, 0))
	}
	if e.Pos.Grad.At(0, 0) != 1 {
		t.Errorf("pos grad = %g, want 1", e.Pos.Grad.At(0, 0))
	}
	if e.Tok.Grad.At(3, 0) != 0 {
		t.Error("untouched token has gradient")
	}
}

func TestReLU(t *testing.T) {
	x := tensor.FromSlice(1, 4, []float64{-1, 0, 2, -3})
	y, c := ReLU(x)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu = %v", y.Data)
		}
	}
	d := tensor.FromSlice(1, 4, []float64{1, 1, 1, 1})
	dx := ReLUBackward(c, d)
	wantDx := []float64{0, 0, 1, 0}
	for i := range wantDx {
		if dx.Data[i] != wantDx[i] {
			t.Fatalf("relu dx = %v", dx.Data)
		}
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := NewRNG(7)
	x := tensor.New(10, 10)
	for i := range x.Data {
		x.Data[i] = 1
	}
	yEval, _ := Dropout(x, 0.5, false, rng)
	for i := range yEval.Data {
		if yEval.Data[i] != 1 {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
	yTrain, c := Dropout(x, 0.5, true, rng)
	zeros, twos := 0, 0
	for _, v := range yTrain.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected value %g", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Error("dropout did not both drop and keep")
	}
	d := x.Clone()
	dx := DropoutBackward(c, d)
	for i := range dx.Data {
		if (yTrain.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("dropout backward mask inconsistent")
		}
	}
}

func TestDropoutExpectationPreserved(t *testing.T) {
	rng := NewRNG(8)
	x := tensor.New(100, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y, _ := Dropout(x, 0.3, true, rng)
	mean := 0.0
	for _, v := range y.Data {
		mean += v
	}
	mean /= float64(len(y.Data))
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("inverted-dropout mean = %.3f, want ≈ 1", mean)
	}
}

func TestAttentionRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMultiHeadAttention("t", 8, 4, rng)
	x := tensor.New(6, 8).Randn(rng, 1)
	_, c := m.Forward(x)
	if len(c.Attention()) != 4 {
		t.Fatalf("heads = %d", len(c.Attention()))
	}
	for h, a := range c.Attention() {
		for i := 0; i < a.Rows; i++ {
			sum := 0.0
			for j := 0; j < a.Cols; j++ {
				sum += a.At(i, j)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("head %d row %d sums to %g", h, i, sum)
			}
		}
	}
}

func TestHeadsMustDivideDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiHeadAttention("t", 10, 3, rand.New(rand.NewSource(1)))
}

func TestParamZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := NewParam("p", 2, 2, rng, 1)
	p.Grad.Data[0] = 5
	p.ZeroGrad()
	if p.Grad.Data[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestParamsCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewEncoderBlock("t", 8, 2, 16, 0.1, rng)
	// ln1(2) + attn(4 linears × 2) + ln2(2) + ffn(2 linears × 2) = 16.
	if n := len(b.Params()); n != 16 {
		t.Errorf("block params = %d, want 16", n)
	}
	e := NewEmbedding(10, 5, 8, rng)
	if n := len(e.Params()); n != 2 {
		t.Errorf("embedding params = %d", n)
	}
}

func BenchmarkEncoderBlockForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := NewEncoderBlock("t", 64, 4, 128, 0, rng)
	x := tensor.New(33, 64).Randn(rng, 1) // avg snippet length (Table 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Forward(x, false, nil)
	}
}

func BenchmarkEncoderBlockBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := NewEncoderBlock("t", 64, 4, 128, 0, rng)
	x := tensor.New(33, 64).Randn(rng, 1)
	r := tensor.New(33, 64).Randn(rng, 1)
	out, c := blk.Forward(x, false, nil)
	_ = out
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Backward(c, r)
	}
}
