package scan

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"pragformer/internal/dep"
)

// SARIF 2.1.0 rendering, so scan results plug into code-scanning UIs
// (GitHub code scanning, VS Code SARIF viewers). The mapping:
//
//   - every occurrence of a loop the advisor wants parallelized becomes a
//     result under rule PF1001, carrying the suggested directive in the
//     message and the loop's content hash in partialFingerprints (the
//     stable identity SARIF consumers use to track findings across scans);
//   - loops that already carry a pragma surface as PF1002 notes;
//   - loops where the model and the dependence analysis disagree (tier
//     "disagree") become PF1003 warnings instead of PF1001, with the
//     dependence witness and the top LIME token attributions in the
//     message and result properties — these are review items, not
//     apply-me suggestions;
//   - skipped files become toolExecutionNotifications on the invocation,
//     with the parse position when one is known.
//
// Negative verdicts produce no results — SARIF reports findings, and "no
// directive needed" is the quiet default.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"

	// RuleParallelize identifies "loop should carry an OpenMP directive"
	// results.
	RuleParallelize = "PF1001"
	// RuleAnnotated identifies "loop already annotated" notes.
	RuleAnnotated = "PF1002"
	// RuleDisagree identifies "model and dependence analysis disagree"
	// review warnings.
	RuleDisagree = "PF1003"
	// RuleRace identifies "potential loop-carried race" results: the
	// dependence analysis refuted the loop and produced a structured
	// witness (kind, both access sites, direction/distance vector).
	RuleRace = "PF1004"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool        sarifTool         `json:"tool"`
	Invocations []sarifInvocation `json:"invocations"`
	Results     []sarifResult     `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifInvocation struct {
	ExecutionSuccessful bool                `json:"executionSuccessful"`
	Notifications       []sarifNotification `json:"toolExecutionNotifications,omitempty"`
}

type sarifNotification struct {
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
	Properties          map[string]any    `json:"properties,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders the report as a SARIF 2.1.0 log. Like Stable JSON, the
// output carries no raw probabilities or cache accounting, so warm and
// cold scans render identical SARIF. PF1003 properties do carry LIME
// attribution weights — identical across backends whenever the backends
// agree on every perturbation label (the hard-label fit), which the
// cross-backend gate diffs Stable JSON, not SARIF, to avoid assuming.
func (r *Report) SARIF() ([]byte, error) {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name: "pragformer",
			Rules: []sarifRule{
				{ID: RuleParallelize, ShortDescription: sarifMessage{
					Text: "Loop is a candidate for an OpenMP parallel-for directive"}},
				{ID: RuleAnnotated, ShortDescription: sarifMessage{
					Text: "Loop already carries an OpenMP pragma"}},
				{ID: RuleDisagree, ShortDescription: sarifMessage{
					Text: "review: model and dependence analysis disagree"}},
				{ID: RuleRace, ShortDescription: sarifMessage{
					Text: "potential loop-carried race found by the dependence analysis"}},
			},
		}},
		Results: []sarifResult{},
	}
	inv := sarifInvocation{ExecutionSuccessful: true}
	for _, skip := range r.Skips {
		n := sarifNotification{
			Level:   "warning",
			Message: sarifMessage{Text: fmt.Sprintf("file skipped: %s", skip.Reason)},
		}
		if skip.Line > 0 {
			n.Locations = []sarifLocation{location(skip.File, skip.Line, skip.Col)}
		} else {
			n.Locations = []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: skip.File}}}}
		}
		inv.Notifications = append(inv.Notifications, n)
	}
	run.Invocations = []sarifInvocation{inv}

	for _, l := range r.Loops {
		switch {
		case l.Suggestion != nil && l.Suggestion.Parallelize && l.Suggestion.Tier == "disagree":
			s := l.Suggestion
			msg := fmt.Sprintf("review: model suggests `%s` but the dependence analysis disagrees", s.Directive)
			if w := witnessSummary(s.Witness); w != "" {
				msg += fmt.Sprintf(" (%s)", w)
			}
			if v := raceVector(s.Races); v != "" {
				msg += fmt.Sprintf("; distance vector %s", v)
			}
			if toks := topTokens(s.Attributions, 3); len(toks) > 0 {
				msg += fmt.Sprintf("; influential tokens: %s", strings.Join(toks, " "))
			}
			props := map[string]any{"tier": s.Tier}
			if len(s.Witness) > 0 {
				props["witness"] = s.Witness
			}
			if len(s.Races) > 0 {
				props["races"] = s.Races
			}
			if top := topAttributions(s.Attributions, 3); len(top) > 0 {
				props["attributions"] = top
			}
			for _, occ := range l.Occurrences {
				run.Results = append(run.Results, sarifResult{
					RuleID:              RuleDisagree,
					Level:               "warning",
					Message:             sarifMessage{Text: msg + occContext(occ)},
					Locations:           []sarifLocation{location(occ.File, occ.Line, occ.Col)},
					PartialFingerprints: map[string]string{"pragformer/loopHash": l.Hash},
					Properties:          props,
				})
			}
		case l.Suggestion != nil && l.Suggestion.Parallelize:
			msg := fmt.Sprintf("suggest `%s` (%s)", l.Suggestion.Directive, l.Suggestion.Tier)
			for _, occ := range l.Occurrences {
				run.Results = append(run.Results, sarifResult{
					RuleID:              RuleParallelize,
					Level:               "note",
					Message:             sarifMessage{Text: msg + occContext(occ)},
					Locations:           []sarifLocation{location(occ.File, occ.Line, occ.Col)},
					PartialFingerprints: map[string]string{"pragformer/loopHash": l.Hash},
				})
			}
		case l.Annotated:
			for _, occ := range l.Occurrences {
				run.Results = append(run.Results, sarifResult{
					RuleID:              RuleAnnotated,
					Level:               "none",
					Message:             sarifMessage{Text: fmt.Sprintf("loop already annotated: `#%s`", occ.Pragma)},
					Locations:           []sarifLocation{location(occ.File, occ.Line, occ.Col)},
					PartialFingerprints: map[string]string{"pragformer/loopHash": l.Hash},
				})
			}
		}
		// Race witnesses are a property of the code, not of the model's
		// verdict: every dep-refuted loop additionally surfaces as PF1004,
		// whatever tier the suggestion landed on.
		if l.Suggestion != nil && len(l.Suggestion.Races) > 0 {
			s := l.Suggestion
			msg := raceMessage(s.Races)
			props := map[string]any{"races": s.Races}
			if len(s.Witness) > 0 {
				props["witness"] = s.Witness
			}
			for _, occ := range l.Occurrences {
				run.Results = append(run.Results, sarifResult{
					RuleID:              RuleRace,
					Level:               "warning",
					Message:             sarifMessage{Text: msg + occContext(occ)},
					Locations:           []sarifLocation{location(occ.File, occ.Line, occ.Col)},
					PartialFingerprints: map[string]string{"pragformer/loopHash": l.Hash},
					Properties:          props,
				})
			}
		}
	}

	log := sarifLog{Schema: sarifSchema, Version: sarifVersion, Runs: []sarifRun{run}}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// raceVector picks the first concrete witness' distance vector for the
// PF1003 message text.
func raceVector(races []dep.Witness) string {
	for _, w := range races {
		if w.Concrete() && w.Distance != "" {
			return w.Distance
		}
	}
	return ""
}

// raceMessage summarizes the witnesses for a PF1004 result.
func raceMessage(races []dep.Witness) string {
	parts := make([]string, 0, len(races))
	for _, w := range races {
		parts = append(parts, w.String())
	}
	return "potential loop-carried race: " + strings.Join(parts, "; ")
}

// witnessSummary picks the decisive dependence reason for the PF1003
// message: the last witness line names the analysis' verdict.
func witnessSummary(witness []string) string {
	if len(witness) == 0 {
		return ""
	}
	return witness[len(witness)-1]
}

// topAttributions returns the topK attributions by |weight| (ties broken
// by token order) — the evidence subset PF1003 results carry.
func topAttributions(attrs []Attribution, topK int) []Attribution {
	if len(attrs) == 0 {
		return nil
	}
	top := append([]Attribution(nil), attrs...)
	sort.SliceStable(top, func(i, j int) bool {
		return math.Abs(top[i].Weight) > math.Abs(top[j].Weight)
	})
	if topK > 0 && topK < len(top) {
		top = top[:topK]
	}
	return top
}

// topTokens renders the top attribution tokens for the message text.
func topTokens(attrs []Attribution, topK int) []string {
	top := topAttributions(attrs, topK)
	out := make([]string, 0, len(top))
	for _, a := range top {
		out = append(out, "`"+a.Token+"`")
	}
	return out
}

func occContext(occ Occurrence) string {
	if occ.Function == "" {
		return ""
	}
	return fmt.Sprintf(" in function %s", occ.Function)
}

func location(file string, line, col int) sarifLocation {
	loc := sarifLocation{PhysicalLocation: sarifPhysicalLocation{
		ArtifactLocation: sarifArtifactLocation{URI: file},
	}}
	if line > 0 {
		loc.PhysicalLocation.Region = &sarifRegion{StartLine: line, StartColumn: col}
	}
	return loc
}
