package pragma

import (
	"testing"
)

func TestTokenizeRejectsStrangeChars(t *testing.T) {
	if _, err := Parse("#pragma omp parallel for private(i@j)"); err == nil {
		t.Fatal("expected error for '@'")
	}
	if _, err := Parse("#pragma omp parallel for schedule(static;4)"); err == nil {
		t.Fatal("expected error for ';'")
	}
}

func TestParseIfAndNumThreadsSkipped(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for if(n > 100) num_threads(4) private(i)")
	if len(d.Private) != 1 {
		t.Fatalf("private = %v", d.Private)
	}
}

func TestParseNestedParensInIf(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for if((n * (m + 1)) > 100)")
	if !d.ParallelFor {
		t.Fatal("not parsed")
	}
}

func TestParseBitwiseReductions(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for reduction(&:m1) reduction(|:m2) reduction(^:m3)")
	if len(d.Reductions) != 3 {
		t.Fatalf("reductions = %v", d.Reductions)
	}
	ops := map[string]bool{}
	for _, r := range d.Reductions {
		ops[r.Op] = true
	}
	for _, op := range []string{"&", "|", "^"} {
		if !ops[op] {
			t.Errorf("missing op %q", op)
		}
	}
}

func TestParseLogicalReductions(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for reduction(&&:all_ok) reduction(||:any_hit)")
	if len(d.Reductions) != 2 {
		t.Fatalf("reductions = %v", d.Reductions)
	}
	if d.Reductions[0].Op != "&&" || d.Reductions[1].Op != "||" {
		t.Errorf("ops = %v, %v", d.Reductions[0].Op, d.Reductions[1].Op)
	}
}

func TestParseScheduleAutoRuntimeFolded(t *testing.T) {
	for _, kind := range []string{"auto", "runtime"} {
		d := mustParse(t, "#pragma omp parallel for schedule("+kind+")")
		if d.Schedule != ScheduleStatic {
			t.Errorf("schedule(%s) folded to %v, want static", kind, d.Schedule)
		}
	}
}

func TestUnterminatedReduction(t *testing.T) {
	if _, err := Parse("#pragma omp parallel for reduction(+:"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Parse("#pragma omp parallel for reduction(+:a, b"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDirectiveStringChunkless(t *testing.T) {
	d := &Directive{ParallelFor: true, Schedule: ScheduleDynamic}
	if d.String() != "#pragma omp parallel for schedule(dynamic)" {
		t.Errorf("got %q", d.String())
	}
}

func TestStringWithCollapseAndNowait(t *testing.T) {
	d := &Directive{ParallelFor: true, Collapse: 2, NoWait: true}
	want := "#pragma omp parallel for collapse(2) nowait"
	if d.String() != want {
		t.Errorf("got %q want %q", d.String(), want)
	}
}

func TestSharedClauseRoundTrip(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for shared(a, b) private(i)")
	d2 := mustParse(t, d.String())
	if !Equal(d, d2) {
		t.Errorf("round trip changed: %q vs %q", d, d2)
	}
	if len(d.Shared) != 2 {
		t.Errorf("shared = %v", d.Shared)
	}
}
