package dep

import (
	"testing"
)

// Additional edge-case coverage for the collector and the affine algebra.

func TestWhileInsideForBody(t *testing.T) {
	// A while-loop inside the body reads its condition; the scalar it
	// decrements carries a dependence across outer iterations.
	a := analyze(t, "for (i = 0; i < n; i++) { while (budget > 0) budget--; out[i] = 1; }")
	if a.Parallelizable {
		t.Fatal("shared countdown misclassified")
	}
}

func TestDoWhileInsideForBody(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { do { x[i] = x[i] + 1; } while (x[i] < lim[i]); }")
	if !a.Parallelizable {
		t.Fatalf("per-element do-while blocked: %v", a.Reasons)
	}
}

func TestTernaryAccess(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) b[i] = a[i] > 0 ? a[i] : -a[i];")
	if !a.Parallelizable {
		t.Fatalf("ternary map blocked: %v", a.Reasons)
	}
}

func TestCommaExpressionInBody(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { b[i] = (x0 = a[i], x0 * 2); }")
	if !a.Parallelizable {
		t.Fatalf("comma-assign temp blocked: %v", a.Reasons)
	}
	if len(a.Private) != 1 || a.Private[0] != "x0" {
		t.Errorf("private = %v", a.Private)
	}
}

func TestAddressOfBlocks(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) use(&buf[i]);")
	if a.Parallelizable {
		t.Fatal("address-of escaped analysis")
	}
}

func TestCompoundArrayUpdateSameIndex(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) a[i] += b[i];")
	if !a.Parallelizable {
		t.Fatalf("a[i] += b[i] blocked: %v", a.Reasons)
	}
}

func TestCompoundScalarNonReduction(t *testing.T) {
	// x /= e is not an OpenMP reduction operator: carried.
	a := analyze(t, "for (i = 0; i < n; i++) x = x / a[i];")
	if a.Parallelizable {
		t.Fatal("division recurrence misclassified")
	}
}

func TestMultipleReductionsSameOp(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { s1 += a[i]; s2 += b[i]; }")
	if !a.Parallelizable || len(a.Reductions) != 2 {
		t.Fatalf("a = %+v (%v)", a.Reductions, a.Reasons)
	}
}

func TestMixedAccumOpsCarried(t *testing.T) {
	// Same scalar accumulated with two different operators: not a single
	// reduction; conservatively carried.
	a := analyze(t, "for (i = 0; i < n; i++) { s += a[i]; s *= b[i]; }")
	if a.Parallelizable {
		t.Fatal("mixed-operator accumulation misclassified")
	}
}

func TestReductionSubtraction(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) s -= a[i];")
	if !a.Parallelizable || len(a.Reductions) != 1 || a.Reductions[0].Op != "-" {
		t.Fatalf("a = %+v (%v)", a.Reductions, a.Reasons)
	}
}

func TestMemberWriteLoopInvariantBlocked(t *testing.T) {
	// s->total written every iteration without a subscript: output dep.
	a := analyze(t, "for (i = 0; i < n; i++) s->total = a[i];")
	if a.Parallelizable {
		t.Fatal("loop-invariant member write misclassified")
	}
}

func TestConditionalPlainWriteNotPrivate(t *testing.T) {
	a := analyze(t, "for (i = 0; i < n; i++) { if (a[i] > 0) t = a[i]; b[i] = t; }")
	if a.Parallelizable {
		t.Fatal("conditionally-defined scalar misclassified as private")
	}
}

func TestPolybenchBoundSymbolic(t *testing.T) {
	a := analyze(t, "for (i = 0; i < POLYBENCH_LOOP_BOUND(4000, n); i++) x1[i] = x1[i] + y_1[i];")
	if !a.Parallelizable {
		t.Fatalf("polybench bound blocked: %v", a.Reasons)
	}
}

func TestMemberBoundSymbolic(t *testing.T) {
	a := analyze(t, "for (i = 0; i < ((ssize_t) image->colors); i++) out[i] = i;")
	if !a.Parallelizable {
		t.Fatalf("member bound blocked: %v", a.Reasons)
	}
}

func TestAffineOpsAlgebra(t *testing.T) {
	a := affineZero()
	a.Coef, a.Const = 2, 3
	b := affineZero()
	b.Coef, b.Const = 1, -1
	b.SymCoefs["n"] = 2

	sum := a.add(b)
	if sum.Coef != 3 || sum.Const != 2 || sum.SymCoefs["n"] != 2 {
		t.Errorf("sum = %+v", sum)
	}
	neg := b.neg()
	if neg.Coef != -1 || neg.SymCoefs["n"] != -2 {
		t.Errorf("neg = %+v", neg)
	}
	sc := b.scale(3)
	if sc.Coef != 3 || sc.SymCoefs["n"] != 6 {
		t.Errorf("scale = %+v", sc)
	}
	// Symbol cancellation removes zero coefficients.
	z := b.add(b.neg())
	if len(z.SymCoefs) != 0 {
		t.Errorf("cancellation left %+v", z.SymCoefs)
	}
	// Propagation of non-affine.
	bad := Affine{}
	if bad.add(a).OK || a.add(bad).OK || bad.neg().OK || bad.scale(2).OK {
		t.Error("non-affine propagated as affine")
	}
}

func TestAffineKeyDeterministic(t *testing.T) {
	a := affineZero()
	a.SymCoefs["n"] = 1
	a.SymCoefs["m"] = 2
	if a.key() != a.key() {
		t.Error("key not deterministic")
	}
	b := affineZero()
	b.SymCoefs["m"] = 2
	b.SymCoefs["n"] = 1
	if a.key() != b.key() {
		t.Error("key order-dependent")
	}
	if affineZero().key() != "" {
		t.Error("empty symbolic key should be empty string")
	}
}

func TestEffectsPureAccessor(t *testing.T) {
	if (Effects{}).Pure() != true {
		t.Error("zero effects should be pure")
	}
	for _, e := range []Effects{
		{HasIO: true}, {WritesGlobals: true}, {WritesPointerParams: true}, {CallsUnknown: true},
	} {
		if e.Pure() {
			t.Errorf("%+v should be impure", e)
		}
	}
}

func TestIsPureAndIOFunc(t *testing.T) {
	if !IsPureFunc("sqrt") || IsPureFunc("printf") {
		t.Error("IsPureFunc wrong")
	}
	if !IsIOFunc("malloc") || IsIOFunc("cos") {
		t.Error("IsIOFunc wrong")
	}
}

func TestSideEffectsNilFunc(t *testing.T) {
	e := SideEffects(nil, nil)
	if !e.CallsUnknown {
		t.Error("nil function should be unknown")
	}
}

func TestUnnormalizedInnerLoopConservative(t *testing.T) {
	// Inner loop with a non-affine step: conservatively analyzed.
	a := analyze(t, "for (i = 0; i < n; i++) { for (j = 1; j < n; j *= 2) a[i] = a[i] + w[j]; }")
	if a.Parallelizable {
		// The inner header mutates j multiplicatively; j's accesses are
		// treated as generic scalar writes → carried.
		t.Log("unnormalized inner loop accepted; acceptable only if j classified private")
		found := false
		for _, p := range a.Private {
			if p == "j" {
				found = true
			}
		}
		if !found {
			t.Fatal("unnormalized inner loop neither blocked nor privatized")
		}
	}
}

func TestDirectiveUnbalancedSchedule(t *testing.T) {
	src := `int guard(int i) { return i % 2; }
double heavy(int i) { double acc = 0; for (int q = 0; q < 100; q++) acc += q * i; return acc; }
for (i = 0; i < n; i++) if (guard(i)) out[i] = heavy(i);`
	a := analyze(t, src)
	if !a.Parallelizable {
		t.Fatalf("reasons: %v", a.Reasons)
	}
	d := a.Directive()
	if d == nil || d.Schedule.String() != "dynamic" {
		t.Errorf("directive = %v, want schedule(dynamic)", d)
	}
}
