/* A true flow race at distance (1): iteration i writes a[i], iteration
 * i+1 reads it as a[i - 1]. The scan must attach a structured witness —
 * kind "flow", both access sites, distance vector "(1)" — and SARIF rule
 * PF1004 cites it. */

void shift(double *a, int n) {
    int i;
    for (i = 1; i < n; i++) {
        a[i] = a[i - 1] * 0.5 + 1.0;
    }
}
