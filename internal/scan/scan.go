// Package scan is the repo-scale front end of the advisor: it walks a
// directory tree of C sources (or an in-memory file set), parses each file
// with cparse, extracts every for-loop with file:line provenance through
// cast.ExtractLoops, dedupes loops by normalized content hash, and drives
// an advisor.Suggester — the in-process Models bundle or the serving
// engine's micro-batchers — with chunked batches of unique snippets.
//
// The pipeline is a bounded producer→parser→inference stream: one producer
// feeds Config.Workers parallel parse workers, a collector dedupes their
// loops on the fly, and full chunks of Config.BatchSize cache-missed
// snippets go to a dedicated inference goroutine while parsing continues.
// Unparseable files are skipped and counted, never fatal; a persistent
// content-hash cache (Config.CachePath) makes re-scans incremental —
// unchanged loops never reach the model. The accumulated Report renders as
// JSON (Report.JSON) or SARIF 2.1.0 (Report.SARIF).
package scan

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pragformer/internal/advisor"
	"pragformer/internal/cast"
	"pragformer/internal/cparse"
	"pragformer/internal/dep"
	"pragformer/internal/obs"
)

// Config tunes a scan. Zero values take the documented defaults.
type Config struct {
	// Workers is the parallel parse worker count (default 4). Parsing and
	// hashing scale with it; inference batching is independent.
	Workers int
	// BatchSize chunks unique snippets per Suggester call (default 16 —
	// the serving engine's MaxBatch sweet spot, see BENCH_SERVE.json).
	BatchSize int
	// CachePath names the persistent content-hash cache file. Loops whose
	// hash appears in the cache skip inference entirely; a scan rewrites
	// the file with every verdict it holds at the end. Empty disables.
	CachePath string
	// Store, when set, is the verdict store the scan reads through instead
	// of a CachePath-backed FileStore — the serving tier hands every scan
	// its shared fleet-wide store this way. The caller owns the store's
	// (backend, model) namespace discipline; fresh verdicts are written
	// back with Put. When Store is set, CachePath is ignored.
	Store VerdictStore
	// Backend names the compute backend the suggester runs on; recorded in
	// the report and the cache header (a cache written by one backend is
	// not replayed against another).
	Backend string
	// ModelID fingerprints the model bundle behind the suggester (artifact
	// content hash, demo-training config, ...). It is recorded in the
	// cache header next to Backend: verdicts cached under one model are
	// never replayed against another — a stale cache costs a re-scan,
	// never a wrong report.
	ModelID string
	// Exts lists the file extensions to scan (default [".c"]).
	Exts []string
	// MaxFileBytes skips files larger than this (default 1 MiB).
	MaxFileBytes int64
	// IncludeAnnotated also advises loops every occurrence of which
	// already carries a pragma; by default they are reported but not
	// re-advised.
	IncludeAnnotated bool
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if len(c.Exts) == 0 {
		c.Exts = []string{".c"}
	}
	if c.MaxFileBytes <= 0 {
		c.MaxFileBytes = 1 << 20
	}
}

// Source is one input file: a path plus, for in-memory scans (the /scan
// endpoint), its contents. Data nil means "read Path from disk".
type Source struct {
	Path string
	Data []byte
}

// Occurrence is one site where a loop appears.
type Occurrence struct {
	File string `json:"file"`
	// Line/Col locate the `for` keyword, 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Function names the enclosing function, "" at file scope.
	Function string `json:"function,omitempty"`
	// Depth is the for-nesting depth (0 = outermost).
	Depth int `json:"depth,omitempty"`
	// Pragma is an existing pragma line attached to this occurrence.
	Pragma string `json:"pragma,omitempty"`
}

// Suggestion is the advisor verdict for a unique loop, flattened to a
// serializable form shared by the JSON report and the cache file.
type Suggestion struct {
	Parallelize bool    `json:"parallelize"`
	Probability float64 `json:"probability,omitempty"`
	// Directive is the rendered pragma line (empty when Parallelize is
	// false).
	Directive string `json:"directive,omitempty"`
	// Tier grades the corroboration evidence (advisor.Tier.String());
	// "disagree" marks the model-positive / analysis-negative loops that
	// surface as SARIF PF1003.
	Tier string `json:"tier,omitempty"`
	// Witness carries the dependence analysis' reasons — the carried
	// dependence or reduction pattern behind the tier.
	Witness []string `json:"witness,omitempty"`
	// Races carries the structured race witnesses behind a dependence
	// refutation: kind, both access sites anchored to the canonical snippet
	// text, and the per-level direction/distance vector (SARIF PF1004).
	Races []dep.Witness `json:"races,omitempty"`
	// Converted lists arrays the analysis rescued via privatization or
	// reduction recognition.
	Converted []string `json:"converted,omitempty"`
	// S2S holds the per-compiler corroboration verdicts.
	S2S []S2SVerdict `json:"s2s,omitempty"`
	// Attributions is the LIME token attribution attached to disagreeing
	// verdicts, in token order.
	Attributions []Attribution `json:"attributions,omitempty"`
	Notes        []string      `json:"notes,omitempty"`
}

// S2SVerdict is one S2S compiler's corroboration outcome.
type S2SVerdict struct {
	Compiler     string `json:"compiler"`
	Compiled     bool   `json:"compiled"`
	Parallelized bool   `json:"parallelized,omitempty"`
	Detail       string `json:"detail,omitempty"`
}

// Attribution is one token's LIME weight toward the model's positive
// verdict. Weight is run-independent for agreeing backends (the advisor
// fits hard labels) but still numeric evidence — Stable() zeroes it so the
// cross-backend golden gate stays label-only.
type Attribution struct {
	Index  int     `json:"index"`
	Token  string  `json:"token"`
	Weight float64 `json:"weight,omitempty"`
}

// Loop is one unique loop (by normalized content hash) with every site it
// occurs at. The verdict is shared across occurrences: inferred once,
// reported everywhere.
type Loop struct {
	// Hash is the sha-256 of the canonically printed loop, so formatting
	// differences between occurrences collapse to one entry.
	Hash string `json:"hash"`
	// Snippet is the canonical source text (also what the model sees).
	Snippet     string       `json:"snippet"`
	Occurrences []Occurrence `json:"occurrences"`
	Suggestion  *Suggestion  `json:"suggestion,omitempty"`
	// Error reports a per-loop inference failure (the scan continues).
	Error string `json:"error,omitempty"`
	// FromCache marks verdicts replayed from the persistent cache.
	FromCache bool `json:"from_cache,omitempty"`
	// Annotated marks loops every occurrence of which already carries a
	// pragma; they are not advised unless Config.IncludeAnnotated.
	Annotated bool `json:"annotated,omitempty"`

	queued bool // already handed to the inference stage
	// ast is the loop as parsed by the scan worker, threaded to the advisor
	// so corroboration skips the second parse. Set once by the collector at
	// creation, read by the inference stage — same handoff discipline as
	// Snippet.
	ast *cast.For
}

// Skip reports one file the scan could not use, with the parse position
// when one is known.
type Skip struct {
	File   string `json:"file"`
	Line   int    `json:"line,omitempty"`
	Col    int    `json:"col,omitempty"`
	Reason string `json:"reason"`
}

// Counters aggregates scan accounting.
type Counters struct {
	// Files parsed successfully; Skipped could not be read or parsed.
	Files   int `json:"files"`
	Skipped int `json:"skipped"`
	// Loops counts occurrences; Unique counts distinct content hashes.
	Loops  int `json:"loops"`
	Unique int `json:"unique"`
	// Annotated counts unique loops left unadvised because every
	// occurrence already carries a pragma.
	Annotated int `json:"annotated"`
	// Disagreements counts unique loops whose verdict is the review tier:
	// model says parallelize, dependence analysis found a carried
	// dependence (SARIF PF1003).
	Disagreements int `json:"disagreements"`
	// Witnessed counts unique loops whose verdict carries at least one
	// structured race witness (SARIF PF1004); Converted counts unique loops
	// the analysis rescued via privatization or reduction recognition.
	Witnessed int `json:"witnessed,omitempty"`
	Converted int `json:"converted,omitempty"`
	// CacheHits counts unique loops answered from the persistent cache;
	// Inferred counts snippets that actually reached the model. A fully
	// warm re-scan has Inferred == 0.
	CacheHits int `json:"cache_hits"`
	Inferred  int `json:"inferred"`
}

// Report is the scan outcome.
type Report struct {
	Tool     string   `json:"tool"`
	Root     string   `json:"root,omitempty"`
	Backend  string   `json:"backend,omitempty"`
	Counters Counters `json:"counters"`
	Loops    []Loop   `json:"loops"`
	Skips    []Skip   `json:"skips,omitempty"`
}

// Dir scans the C files under root. Unreadable or unparseable files are
// skipped and counted; the returned error is reserved for setup problems
// (bad root, cache I/O) and context cancellation.
func Dir(ctx context.Context, root string, cfg Config, sg advisor.Suggester) (*Report, error) {
	cfg.fillDefaults()
	if _, err := os.Stat(root); err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	// Walk errors (an unreadable subdirectory, a path deleted mid-walk)
	// follow the same skip-and-count contract as unparseable files: the
	// producer records them and the walk continues. Only the producer
	// goroutine appends; run() joins it before returning, so the merge
	// below is ordered.
	rel := func(path string) string {
		if r, err := filepath.Rel(root, path); err == nil {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(path)
	}
	var walkSkips []Skip
	produce := func(ctx context.Context, srcs chan<- Source) error {
		return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				walkSkips = append(walkSkips, Skip{File: rel(path), Reason: err.Error()})
				if d != nil && d.IsDir() {
					return filepath.SkipDir
				}
				return nil
			}
			if d.IsDir() {
				// Hidden directories (.git and friends) hold no sources.
				if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
					return filepath.SkipDir
				}
				return nil
			}
			ext := filepath.Ext(path)
			match := false
			for _, want := range cfg.Exts {
				if ext == want {
					match = true
					break
				}
			}
			if !match {
				return nil
			}
			select {
			case srcs <- Source{Path: path}:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}
	rep, err := run(ctx, cfg, sg, produce, rel)
	if err != nil {
		return nil, err
	}
	if len(walkSkips) > 0 {
		rep.Skips = append(rep.Skips, walkSkips...)
		rep.Counters.Skipped += len(walkSkips)
		sortSkips(rep.Skips)
	}
	rep.Root = root
	return rep, nil
}

// Files scans an in-memory file set — the POST /scan payload path. Sources
// without Data are read from disk.
func Files(ctx context.Context, files []Source, cfg Config, sg advisor.Suggester) (*Report, error) {
	cfg.fillDefaults()
	produce := func(ctx context.Context, srcs chan<- Source) error {
		for _, f := range files {
			select {
			case srcs <- f:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	return run(ctx, cfg, sg, produce, filepath.ToSlash)
}

// fileOut is one parse worker's result for one file. A file can be both
// partially parsed and carry skips: the recovering parser reports one
// positioned skip per broken region while the file's surviving loops still
// enter the scan. failed marks a file that contributed nothing (unreadable,
// oversized, or nothing parseable).
type fileOut struct {
	loops  []occLoop
	skips  []Skip
	failed bool
}

// occLoop is one extracted loop occurrence with its canonical snippet and
// parsed form.
type occLoop struct {
	snippet string
	loop    *cast.For
	occ     Occurrence
}

// run wires the bounded pipeline: produce → parse workers → collector,
// with a side inference goroutine consuming chunks of unique snippets.
func run(
	ctx context.Context, cfg Config, sg advisor.Suggester,
	produce func(context.Context, chan<- Source) error,
	rel func(string) string,
) (*Report, error) {
	if sg == nil {
		return nil, fmt.Errorf("scan: a suggester is required")
	}
	// Stage tracing rides the context (nil when untraced — every recording
	// call below is then a no-op, and the untraced path stays byte- and
	// behavior-identical; timing never reaches the report or the store).
	tr := obs.TraceFrom(ctx)
	// Resolve the verdict store: an injected tier-wide store, or the
	// per-scan file cache (empty CachePath = in-memory only, discarded).
	store := cfg.Store
	var fileStore *FileStore
	if store == nil {
		fs, err := OpenFileStore(cfg.CachePath, cfg.Backend, cfg.ModelID)
		if err != nil {
			return nil, err
		}
		fileStore = fs
		store = fs
	}
	if tr != nil {
		store = tracedStore{inner: store, tr: tr}
	}

	srcs := make(chan Source, cfg.Workers)
	outs := make(chan fileOut, cfg.Workers)

	// Producer.
	var produceErr error
	var produceWG sync.WaitGroup
	produceWG.Add(1)
	go func() {
		defer produceWG.Done()
		defer close(srcs)
		endWalk := tr.Start("walk")
		produceErr = produce(ctx, srcs)
		endWalk()
	}()

	// Parse workers.
	var parseWG sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		parseWG.Add(1)
		go func() {
			defer parseWG.Done()
			for src := range srcs {
				endParse := tr.Start("parse")
				fo := parseSource(src, cfg, rel)
				endParse()
				select {
				case outs <- fo:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		parseWG.Wait()
		close(outs)
	}()

	// Inference stage: full chunks of cache-missed unique loops run
	// through the suggester while parsing continues. The goroutine is the
	// sole writer of Loop.Suggestion/Error after handoff; the collector
	// keeps appending occurrences to the same Loop values, which is safe —
	// the two stages touch disjoint fields.
	chunks := make(chan []*Loop, 2)
	infDone := make(chan struct{})
	inferred := 0
	go func() {
		defer close(infDone)
		for chunk := range chunks {
			if ctx.Err() != nil {
				continue // drain without inferring
			}
			inferred += len(chunk)
			endAdvise := tr.Start("advise")
			err := suggestChunk(sg, chunk)
			endAdvise()
			if err != nil {
				for _, l := range chunk {
					l.Error = err.Error()
				}
			}
		}
	}()

	// Collector: dedupe, cache lookup, chunk assembly.
	rep := &Report{Tool: "pragformer scan", Backend: cfg.Backend}
	byHash := map[string]*Loop{}
	var loops []*Loop
	var pending []*Loop
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		chunk := pending
		pending = nil
		select {
		case chunks <- chunk:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	enqueue := func(l *Loop) error {
		l.queued = true
		pending = append(pending, l)
		if len(pending) >= cfg.BatchSize {
			return flush()
		}
		return nil
	}
	var collectErr error
	var dDedupe time.Duration // single aggregate span, emitted after collect
collect:
	for {
		select {
		case fo, ok := <-outs:
			if !ok {
				break collect
			}
			rep.Skips = append(rep.Skips, fo.skips...)
			if fo.failed {
				rep.Counters.Skipped++
				continue
			}
			rep.Counters.Files++
			for _, ol := range fo.loops {
				rep.Counters.Loops++
				var tDedupe time.Time
				if tr != nil {
					tDedupe = time.Now()
				}
				h := HashSnippet(ol.snippet)
				l, seen := byHash[h]
				if tr != nil {
					dDedupe += time.Since(tDedupe)
				}
				if !seen {
					l = &Loop{Hash: h, Snippet: ol.snippet, ast: ol.loop}
					byHash[h] = l
					loops = append(loops, l)
					if hit, ok := store.Get(h); ok {
						l.Suggestion = hit.clone()
						l.FromCache = true
						l.queued = true
						rep.Counters.CacheHits++
					}
				}
				l.Occurrences = append(l.Occurrences, ol.occ)
				advisable := ol.occ.Pragma == "" || cfg.IncludeAnnotated
				if !l.queued && advisable {
					if err := enqueue(l); err != nil {
						collectErr = err
						break collect
					}
				}
			}
		case <-ctx.Done():
			collectErr = ctx.Err()
			break collect
		}
	}
	if collectErr == nil {
		collectErr = flush()
	}
	if tr != nil {
		tr.Observe("dedupe", dDedupe)
	}
	close(chunks)
	<-infDone
	produceWG.Wait()
	parseWG.Wait()
	if collectErr != nil {
		return nil, collectErr
	}
	if produceErr != nil {
		return nil, fmt.Errorf("scan: %w", produceErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep.Counters.Unique = len(loops)
	rep.Counters.Inferred = inferred
	finalize(rep, loops, cfg.IncludeAnnotated)
	// Write fresh verdicts back through the store. Loops that errored are
	// left out so the next scan retries them; finalize may have stripped a
	// cached verdict off an annotated loop, which leaves the stored entry
	// in place (the strip protects this report's bytes, not the store).
	for _, l := range loops {
		if l.Suggestion != nil && l.Error == "" && !l.FromCache {
			store.Put(l.Hash, l.Suggestion)
		}
	}
	if fileStore != nil {
		if err := fileStore.Flush(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// tracedStore wraps a VerdictStore with store.get/store.put spans. Only
// installed when the scan's context carries a trace, so the untraced path
// never pays the clock reads.
type tracedStore struct {
	inner VerdictStore
	tr    *obs.Trace
}

func (s tracedStore) Get(hash string) (*Suggestion, bool) {
	defer s.tr.Start("store.get")()
	return s.inner.Get(hash)
}

func (s tracedStore) Put(hash string, v *Suggestion) {
	defer s.tr.Start("store.put")()
	s.inner.Put(hash, v)
}

func (s tracedStore) Len() int { return s.inner.Len() }

// Verdict is one snippet's outcome from a VerdictSuggester: either a
// pre-flattened suggestion or a per-snippet error.
type Verdict struct {
	Suggestion *Suggestion
	Err        error
}

// VerdictSuggester is the serving tier's entry point into the scan
// pipeline: a suggester that returns verdicts already flattened to the
// report form (the tier router decodes them from replica HTTP responses —
// reconstructing advisor.Suggestion from the wire would be lossy).
// suggestChunk prefers it over the advisor-native interfaces.
type VerdictSuggester interface {
	SuggestVerdicts(codes []string) ([]Verdict, error)
}

// suggestChunk hands one chunk of unique loops to the suggester and
// settles each loop's Suggestion/Error, threading the already-parsed loop
// ASTs when the suggester can take them (the in-process Models path);
// string-only suggesters (the serving engine's batcher) re-parse inside
// corroboration instead, and VerdictSuggesters (the tier router) return
// flattened verdicts directly. The returned error is chunk-wide.
func suggestChunk(sg advisor.Suggester, chunk []*Loop) error {
	if vs, ok := sg.(VerdictSuggester); ok {
		codes := make([]string, len(chunk))
		for i, l := range chunk {
			codes[i] = l.Snippet
		}
		verdicts, err := vs.SuggestVerdicts(codes)
		if err != nil {
			return err
		}
		for i, l := range chunk {
			if verdicts[i].Err != nil {
				l.Error = verdicts[i].Err.Error()
				continue
			}
			l.Suggestion = verdicts[i].Suggestion
		}
		return nil
	}
	var items []advisor.BatchItem
	var err error
	if ss, ok := sg.(advisor.SnippetSuggester); ok {
		snippets := make([]advisor.Snippet, len(chunk))
		for i, l := range chunk {
			snippets[i] = advisor.Snippet{Code: l.Snippet, Loop: l.ast}
		}
		items, err = ss.SuggestSnippets(snippets)
	} else {
		codes := make([]string, len(chunk))
		for i, l := range chunk {
			codes[i] = l.Snippet
		}
		items, err = sg.SuggestBatch(codes)
	}
	if err != nil {
		return err
	}
	for i, l := range chunk {
		if items[i].Err != nil {
			l.Error = items[i].Err.Error()
			continue
		}
		l.Suggestion = fromAdvisor(items[i].Suggestion)
	}
	return nil
}

// parseSource reads (if needed) and parses one file, extracting its loops.
func parseSource(src Source, cfg Config, rel func(string) string) fileOut {
	name := rel(src.Path)
	data := src.Data
	if data == nil {
		info, err := os.Stat(src.Path)
		if err != nil {
			return fileOut{failed: true, skips: []Skip{{File: name, Reason: err.Error()}}}
		}
		if info.Size() > cfg.MaxFileBytes {
			return fileOut{failed: true, skips: []Skip{{File: name,
				Reason: fmt.Sprintf("file too large (%d bytes > %d)", info.Size(), cfg.MaxFileBytes)}}}
		}
		if data, err = os.ReadFile(src.Path); err != nil {
			return fileOut{failed: true, skips: []Skip{{File: name, Reason: err.Error()}}}
		}
	}
	// The recovering parser keeps going past a broken region, so a file with
	// one malformed function still contributes its other loops; each broken
	// region surfaces as a positioned skip. A file that yields nothing keeps
	// the old whole-file-skip shape (first error only — the rest are usually
	// cascade noise).
	f, perrs := cparse.ParseRecover(string(data))
	var skips []Skip
	if len(f.Items) == 0 && len(perrs) > 0 {
		pe := perrs[0]
		return fileOut{failed: true, skips: []Skip{
			{File: name, Line: pe.Line, Col: pe.Col, Reason: pe.Error()}}}
	}
	for _, pe := range perrs {
		skips = append(skips, Skip{File: name, Line: pe.Line, Col: pe.Col, Reason: pe.Error()})
	}
	infos := cast.ExtractLoops(f)
	out := fileOut{loops: make([]occLoop, 0, len(infos)), skips: skips}
	for _, li := range infos {
		out.loops = append(out.loops, occLoop{
			snippet: cast.Print(li.Loop),
			loop:    li.Loop,
			occ: Occurrence{
				File: name, Line: li.Loop.Line, Col: li.Loop.Col,
				Function: li.Function, Depth: li.Depth, Pragma: li.Pragma,
			},
		})
	}
	return out
}

// HashSnippet is the normalized content hash over a canonically printed
// loop: parsing and re-printing canonicalizes formatting, so the hash
// collapses occurrences that differ only in whitespace or brace style.
// It is the key of every VerdictStore and the serving tier's
// consistent-hash routing key — one hash function end to end keeps each
// replica's caches hot for the loops routed to it.
func HashSnippet(snippet string) string {
	sum := sha256.Sum256([]byte(snippet))
	return hex.EncodeToString(sum[:])
}

// finalize orders the report deterministically (parse workers race on
// discovery order) and settles per-loop flags and counters.
func finalize(rep *Report, loops []*Loop, includeAnnotated bool) {
	for _, l := range loops {
		sort.Slice(l.Occurrences, func(i, j int) bool {
			a, b := l.Occurrences[i], l.Occurrences[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Col < b.Col
		})
		annotated := true
		for _, occ := range l.Occurrences {
			if occ.Pragma == "" {
				annotated = false
				break
			}
		}
		l.Annotated = annotated
		// The cache is looked up before a loop's annotation status is
		// known; a verdict cached by an -include-annotated run must not
		// leak onto an annotated loop in a scan without the flag, or warm
		// and cold reports would diverge.
		if annotated && !includeAnnotated && l.FromCache {
			l.Suggestion = nil
			l.FromCache = false
			rep.Counters.CacheHits--
		}
		if annotated && !includeAnnotated {
			rep.Counters.Annotated++
		}
		if l.Suggestion != nil && l.Suggestion.Tier == advisor.TierDisagree.String() {
			rep.Counters.Disagreements++
		}
		if l.Suggestion != nil && len(l.Suggestion.Races) > 0 {
			rep.Counters.Witnessed++
		}
		if l.Suggestion != nil && len(l.Suggestion.Converted) > 0 {
			rep.Counters.Converted++
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		a, b := loops[i].Occurrences[0], loops[j].Occurrences[0]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return loops[i].Hash < loops[j].Hash
	})
	rep.Loops = make([]Loop, len(loops))
	for i, l := range loops {
		rep.Loops[i] = *l
	}
	sortSkips(rep.Skips)
}

func sortSkips(skips []Skip) {
	sort.Slice(skips, func(i, j int) bool {
		if skips[i].File != skips[j].File {
			return skips[i].File < skips[j].File
		}
		return skips[i].Line < skips[j].Line
	})
}

// fromAdvisor flattens an advisor suggestion into the report form.
func fromAdvisor(s *advisor.Suggestion) *Suggestion {
	if s == nil {
		return nil
	}
	out := &Suggestion{
		Parallelize: s.Parallelize,
		Probability: s.Probability,
		Tier:        s.Corroboration.Tier.String(),
	}
	out.Witness = append(out.Witness, s.Corroboration.DepWitness...)
	out.Races = append(out.Races, s.Corroboration.Races...)
	out.Converted = append(out.Converted, s.Corroboration.Converted...)
	for _, v := range s.Corroboration.S2S {
		out.S2S = append(out.S2S, S2SVerdict{
			Compiler: v.Compiler, Compiled: v.Compiled,
			Parallelized: v.Parallelized, Detail: v.Detail,
		})
	}
	for _, a := range s.Attributions {
		out.Attributions = append(out.Attributions, Attribution{
			Index: a.Index, Token: a.Token, Weight: a.Weight,
		})
	}
	out.Notes = append(out.Notes, s.Notes...)
	if s.Directive != nil {
		out.Directive = s.Directive.String()
	}
	return out
}

func (s *Suggestion) clone() *Suggestion {
	if s == nil {
		return nil
	}
	c := *s
	c.Witness = append([]string(nil), s.Witness...)
	c.Races = append([]dep.Witness(nil), s.Races...)
	c.Converted = append([]string(nil), s.Converted...)
	c.S2S = append([]S2SVerdict(nil), s.S2S...)
	c.Attributions = append([]Attribution(nil), s.Attributions...)
	c.Notes = append([]string(nil), s.Notes...)
	return &c
}
