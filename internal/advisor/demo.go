package advisor

import (
	"fmt"

	"pragformer/internal/core"
	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

// DemoConfig sizes the zero-setup demo bundle: three classifiers fitted at
// startup on a generated Open-OMP corpus, sharing one vocabulary. Both
// cmd/serve (no -directive artifact) and `pragformer scan` (no -model)
// train through this path, so their demo models are identical at equal
// settings — the scan CI smoke relies on that determinism.
type DemoConfig struct {
	// Seed drives corpus generation, splits, and model init. Runs with the
	// same config are bit-identical (at Workers <= 1).
	Seed int64
	// Total is the generated corpus size (default 1000).
	Total int
	// Epochs trains each classifier this long (default 5).
	Epochs int
	// Workers is the data-parallel training worker count. Note that worker
	// counts change the all-reduce summation order, so only Workers <= 1 is
	// bit-reproducible across machines.
	Workers int
	// D, Heads, Layers size the classifiers (defaults 32, 4, 1 — the demo
	// scale served by cmd/serve since PR 2).
	D, Heads, Layers int
	// Progress receives one line per fitted classifier; nil discards.
	Progress func(string)
}

func (c *DemoConfig) fillDefaults() {
	if c.Total <= 0 {
		c.Total = 1000
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.D <= 0 {
		c.D = 32
	}
	if c.Heads <= 0 {
		c.Heads = 4
	}
	if c.Layers <= 0 {
		c.Layers = 1
	}
}

// TrainDemo fits the directive/private/reduction classifiers on a
// generated corpus and bundles them with the shared vocabulary.
func TrainDemo(cfg DemoConfig) (*Models, error) {
	cfg.fillDefaults()
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	c := corpus.Generate(corpus.Config{Seed: cfg.Seed, Total: cfg.Total})
	dirSplit := dataset.Directive(c, dataset.Options{Seed: cfg.Seed})

	var seqs [][]string
	for _, in := range dirSplit.Train {
		toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
		if err != nil {
			return nil, err
		}
		seqs = append(seqs, toks)
	}
	v := tokenize.BuildVocab(seqs, 1)

	fit := func(task dataset.Task, taskSeed int64) (*core.PragFormer, error) {
		split := dirSplit
		if task != dataset.TaskDirective {
			split = dataset.Clause(c, task, dataset.Options{Seed: cfg.Seed, Balance: true})
		}
		encode := func(ins []dataset.Instance) ([]train.Example, error) {
			out := make([]train.Example, len(ins))
			for i, in := range ins {
				toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
				if err != nil {
					return nil, err
				}
				out[i] = train.Example{IDs: v.Encode(toks, core.DefaultMaxLen), Label: in.Label}
			}
			return out, nil
		}
		m, err := core.New(core.Config{
			Vocab: v.Size(), D: cfg.D, Heads: cfg.Heads, Layers: cfg.Layers,
		}, taskSeed)
		if err != nil {
			return nil, err
		}
		trainSet, err := encode(split.Train)
		if err != nil {
			return nil, err
		}
		validSet, err := encode(split.Valid)
		if err != nil {
			return nil, err
		}
		hist := train.Fit(m, trainSet, validSet, train.Config{
			Epochs: cfg.Epochs, BatchSize: 16, LR: 1.5e-3, ClipNorm: 1,
			Seed: taskSeed, Workers: cfg.Workers,
		})
		progress(fmt.Sprintf("%s: valid accuracy %.3f", task, hist.Best().ValidAccuracy))
		return m, nil
	}

	models := &Models{Vocab: v, MaxLen: core.DefaultMaxLen}
	var err error
	if models.Directive, err = fit(dataset.TaskDirective, cfg.Seed+10); err != nil {
		return nil, err
	}
	if models.Private, err = fit(dataset.TaskPrivate, cfg.Seed+11); err != nil {
		return nil, err
	}
	if models.Reduction, err = fit(dataset.TaskReduction, cfg.Seed+12); err != nil {
		return nil, err
	}
	return models, nil
}
