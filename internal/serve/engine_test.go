package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pragformer/internal/advisor"
	"pragformer/internal/core"
	"pragformer/internal/tokenize"
)

// testModels builds an advisor bundle around a randomly initialized
// directive classifier — parity and engine mechanics don't need training.
func testModels(t testing.TB) *advisor.Models {
	t.Helper()
	v := tokenize.BuildVocab([][]string{{"for", "(", "i", "=", "0", ";", "<", "n", "+", ")", "a", "[", "]", "*", "b"}}, 1)
	m, err := core.New(core.Config{Vocab: v.Size() + 100, MaxLen: 64, D: 32, Heads: 4, Layers: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	return &advisor.Models{Directive: m, Vocab: v, MaxLen: 64}
}

// randIDs builds n id sequences like tokenize.Vocab.Encode would: [CLS]
// followed by in-vocabulary ids.
func randIDs(rng *rand.Rand, n, maxLen, vocab int) [][]int {
	out := make([][]int, n)
	for i := range out {
		T := 2 + rng.Intn(maxLen-2)
		ids := make([]int, T)
		ids[0] = tokenize.CLS
		for t := 1; t < T; t++ {
			ids[t] = tokenize.NumSpecials + rng.Intn(vocab-tokenize.NumSpecials)
		}
		out[i] = ids
	}
	return out
}

// TestEnginePredictParity hammers the engine from concurrent clients and
// checks every answer bit-exactly against the direct single-model path.
func TestEnginePredictParity(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{MaxBatch: 8, MaxWait: 5 * time.Millisecond, Replicas: 2, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	pool := randIDs(rand.New(rand.NewSource(13)), 30, 64, models.Directive.VocabSize())
	want := make([]float64, len(pool))
	for i, ids := range pool {
		want[i] = models.Directive.Predict(ids)
	}

	const clients, perClient = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for r := 0; r < perClient; r++ {
				i := rng.Intn(len(pool))
				got, err := e.Predict(context.Background(), pool[i])
				if err != nil {
					errs <- err
					return
				}
				if got != want[i] {
					errs <- fmt.Errorf("seq %d: engine %v != direct %v", i, got, want[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	s := e.Stats().Predict
	if s.Requests != clients*perClient {
		t.Errorf("requests = %d, want %d", s.Requests, clients*perClient)
	}
	if s.Items+s.CacheHits != s.Requests {
		t.Errorf("items %d + hits %d != requests %d", s.Items, s.CacheHits, s.Requests)
	}
}

// TestEngineCoalesces opens a wide batching window and checks that
// near-simultaneous requests share batches.
func TestEngineCoalesces(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{MaxBatch: 16, MaxWait: 200 * time.Millisecond, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	pool := randIDs(rand.New(rand.NewSource(14)), 6, 32, models.Directive.VocabSize())
	var wg sync.WaitGroup
	for _, ids := range pool {
		wg.Add(1)
		go func(ids []int) {
			defer wg.Done()
			if _, err := e.Predict(context.Background(), ids); err != nil {
				t.Error(err)
			}
		}(ids)
	}
	wg.Wait()
	s := e.Stats().Predict
	if s.Batches >= uint64(len(pool)) {
		t.Errorf("no coalescing: %d batches for %d requests", s.Batches, len(pool))
	}
	if s.AvgBatch() < 2 {
		t.Errorf("avg batch %v, want >= 2", s.AvgBatch())
	}
}

// TestEngineCache checks the LRU short-circuits repeats.
func TestEngineCache(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ids := randIDs(rand.New(rand.NewSource(15)), 1, 32, models.Directive.VocabSize())[0]
	first, err := e.Predict(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Predict(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("cached %v != computed %v", second, first)
	}
	if s := e.Stats().Predict; s.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", s.CacheHits)
	}
}

// TestEngineSuggest checks the suggest path against the direct advisor and
// the per-item error contract.
func TestEngineSuggest(t *testing.T) {
	models := testModels(t)
	models.NoCorroborate = true // keep the test focused on the engine
	e, err := New(models, Config{MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	code := "for (i = 0; i < n; i++) a[i] = 0;"
	want, err := models.Suggest(code)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Suggest(context.Background(), code)
	if err != nil {
		t.Fatal(err)
	}
	if got.Probability != want.Probability || got.Parallelize != want.Parallelize {
		t.Errorf("engine %+v != direct %+v", got, want)
	}

	if _, err := e.Suggest(context.Background(), "for (i = 0; i < `n`"); err == nil {
		t.Error("unlexable snippet should surface its tokenize error")
	}
}

// TestEngineClose checks calls after Close fail fast and Close is
// idempotent.
func TestEngineClose(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if _, err := e.Predict(context.Background(), []int{tokenize.CLS, 5}); !errors.Is(err, ErrClosed) {
		t.Errorf("Predict after Close = %v, want ErrClosed", err)
	}
	if _, err := e.Suggest(context.Background(), "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("Suggest after Close = %v, want ErrClosed", err)
	}
}

// TestEngineContextCancel checks a caller can abandon a request stuck in a
// long batching window.
func TestEngineContextCancel(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{MaxBatch: 64, MaxWait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = e.Predict(ctx, []int{tokenize.CLS, 5, 6})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancelled request waited for the full batching window")
	}
}

// BenchmarkServeThroughput measures coalesced predict throughput with
// concurrent clients and the cache disabled (so every op pays a forward).
func BenchmarkServeThroughput(b *testing.B) {
	models := testModels(b)
	e, err := New(models, Config{MaxBatch: 16, MaxWait: 500 * time.Microsecond, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()

	pool := randIDs(rand.New(rand.NewSource(16)), 256, 64, models.Directive.VocabSize())
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(17))
		for pb.Next() {
			if _, err := e.Predict(context.Background(), pool[rng.Intn(len(pool))]); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
