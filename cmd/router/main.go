// Command router fronts a fleet of `serve` replicas as one endpoint: the
// sharded serving tier.
//
// Requests route by loop content hash — the same sha-256 canonical-print
// hash the scan cache uses — over a consistent-hash ring with bounded-load
// spill, so each unique loop keeps hitting the replica whose caches
// already hold it, and a hot key overflows to its deterministic fallback
// replicas instead of queueing. Admission is layered: per-client token
// buckets first, then per-replica in-flight caps; saturation answers 429
// with Retry-After rather than queueing without bound. /suggest and /scan
// verdicts fill a shared read-through store keyed by
// backend|model|generation|hash, so a loop any replica has judged is
// answered by the router itself, fleet-wide.
//
// POST /reload rolls the fleet one replica at a time: drain (the ring
// stops routing there, in-flight requests finish), reload, health-gate on
// /readyz reporting the bumped generation, readmit. SIGHUP triggers the
// same roll. Unresponsive replicas are ejected after consecutive failures
// and re-probed with backoff until they answer again.
//
// Endpoints: POST /predict, /suggest, /scan, /reload; GET /healthz,
// /readyz, /statz — the same surface as one replica.
//
// Example:
//
//	serve -addr :8081 & serve -addr :8082 &
//	router -addr :8080 -replicas http://localhost:8081,http://localhost:8082
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pragformer/internal/tier"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		vnodes   = flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		loadFac  = flag.Float64("load-factor", 1.25, "bounded-load spill factor (>1)")
		maxInfl  = flag.Int("max-inflight", 64, "hard per-replica in-flight cap before shedding")
		rate     = flag.Float64("rate", 0, "per-client requests/sec admitted (0 disables rate limiting)")
		burst    = flag.Int("burst", 16, "per-client token-bucket burst")
		probeInt = flag.Duration("probe-interval", 2*time.Second, "replica health probe interval")
		drainTO  = flag.Duration("drain-timeout", 10*time.Second, "per-replica drain/readiness deadline during rolling reload")
		failThr  = flag.Int("fail-threshold", 3, "consecutive failures before ejecting a replica")
		backend  = flag.String("backend", "", "verdict-store namespace backend (empty adopts the fleet's reported backend)")
		modelID  = flag.String("model-id", "", "verdict-store namespace model id (set when replicas serve pinned artifacts)")
		workers  = flag.Int("scan-workers", 4, "default parse workers for /scan")
		trace    = flag.Bool("trace", false, "trace every request (spans in responses + one structured log line each); without it only requests carrying X-PF-Trace are traced")
		pprofOn  = flag.Bool("pprof", false, "expose /debug/pprof profiling endpoints (off by default)")
	)
	flag.Parse()

	names := splitReplicas(*replicas)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "router: -replicas is required (comma-separated base URLs)")
		os.Exit(1)
	}

	var logger *slog.Logger
	if *trace {
		logger = slog.Default()
	}
	rt, err := tier.New(tier.Config{
		Replicas: names, VNodes: *vnodes, LoadFactor: *loadFac,
		MaxInFlight: *maxInfl, FailThreshold: *failThr,
		ProbeInterval: *probeInt, DrainTimeout: *drainTO,
		RatePerSec: *rate, Burst: *burst,
		Backend: *backend, ModelID: *modelID, ScanWorkers: *workers,
		Trace: *trace, Logger: logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	}
	defer rt.Close()

	handler := rt.Handler()
	if *pprofOn {
		handler = withPprof(handler)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("routing on %s over %d replicas (vnodes %d, load factor %.2f, max in-flight %d)\n",
		*addr, len(names), *vnodes, *loadFac, *maxInfl)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case err := <-errCh:
			if !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "router:", err)
				os.Exit(1)
			}
			break loop
		case s := <-sig:
			if s == syscall.SIGHUP {
				fmt.Println("SIGHUP: rolling reload...")
				rollingReload(rt)
				continue
			}
			fmt.Printf("\n%s: shutting down...\n", s)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "router: shutdown:", err)
			}
			cancel()
			break loop
		}
	}
}

// withPprof overlays the net/http/pprof handlers on the router's API —
// only when -pprof was given, so profiling is never exposed by accident.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}

// splitReplicas parses the -replicas list, trimming blanks and trailing
// slashes (replica URLs are concatenated with endpoint paths).
func splitReplicas(s string) []string {
	var out []string
	for _, r := range strings.Split(s, ",") {
		r = strings.TrimRight(strings.TrimSpace(r), "/")
		if r != "" {
			out = append(out, r)
		}
	}
	return out
}

// rollingReload drives the same handler POST /reload runs, so SIGHUP and
// the HTTP path share one code path and one serialization lock.
func rollingReload(rt *tier.Router) {
	req := httptest.NewRequest(http.MethodPost, "/reload", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	fmt.Printf("reload: %s %s", rec.Result().Status, rec.Body.String())
}
