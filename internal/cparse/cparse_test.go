package cparse

import (
	"strings"
	"testing"

	"pragformer/internal/cast"
)

func mustParse(t *testing.T, src string) *cast.File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return f
}

func firstFor(t *testing.T, n cast.Node) *cast.For {
	t.Helper()
	var found *cast.For
	cast.Walk(n, func(nd cast.Node) bool {
		if f, ok := nd.(*cast.For); ok && found == nil {
			found = f
			return false
		}
		return true
	})
	if found == nil {
		t.Fatal("no for-loop found")
	}
	return found
}

func TestSimpleFor(t *testing.T) {
	f := mustParse(t, "for (i = 0; i <= N; i++) A[i] = i;")
	loop := firstFor(t, f)
	init, ok := loop.Init.(*cast.ExprStmt)
	if !ok {
		t.Fatalf("init is %T", loop.Init)
	}
	asg, ok := init.X.(*cast.Assign)
	if !ok || asg.Op != "=" {
		t.Fatalf("init expr is %T", init.X)
	}
	cond, ok := loop.Cond.(*cast.BinaryOp)
	if !ok || cond.Op != "<=" {
		t.Fatalf("cond is %#v", loop.Cond)
	}
	post, ok := loop.Post.(*cast.UnaryOp)
	if !ok || post.Op != "++" || !post.Postfix {
		t.Fatalf("post is %#v", loop.Post)
	}
	if _, ok := loop.Body.(*cast.ExprStmt); !ok {
		t.Fatalf("body is %T", loop.Body)
	}
}

func TestForWithDecl(t *testing.T) {
	f := mustParse(t, "for (int i = 0; i < n; ++i) { sum += a[i]; }")
	loop := firstFor(t, f)
	ds, ok := loop.Init.(*cast.DeclStmt)
	if !ok {
		t.Fatalf("init is %T", loop.Init)
	}
	if len(ds.Decls) != 1 || ds.Decls[0].Name != "i" {
		t.Fatalf("decls = %#v", ds.Decls)
	}
}

func TestPragmaAttachment(t *testing.T) {
	src := "#pragma omp parallel for private(j)\nfor (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x[i] = x[i] + A[i][j] * y[j];"
	f := mustParse(t, src)
	ps, ok := f.Items[0].(*cast.PragmaStmt)
	if !ok {
		t.Fatalf("first item is %T", f.Items[0])
	}
	if !strings.Contains(ps.Text, "private(j)") {
		t.Errorf("pragma text = %q", ps.Text)
	}
	if _, ok := ps.Stmt.(*cast.For); !ok {
		t.Fatalf("pragma stmt is %T", ps.Stmt)
	}
}

func TestNestedArrayRef(t *testing.T) {
	f := mustParse(t, "A[i][j] = B[j][i];")
	es := f.Items[0].(*cast.ExprStmt)
	asg := es.X.(*cast.Assign)
	lhs := asg.L.(*cast.ArrayRef)
	inner := lhs.Arr.(*cast.ArrayRef)
	if inner.Arr.(*cast.Ident).Name != "A" {
		t.Errorf("base = %v", inner.Arr)
	}
}

func TestPrecedence(t *testing.T) {
	f := mustParse(t, "x = a + b * c - d / e;")
	// Expect ((a + (b*c)) - (d/e)).
	asg := f.Items[0].(*cast.ExprStmt).X.(*cast.Assign)
	top := asg.R.(*cast.BinaryOp)
	if top.Op != "-" {
		t.Fatalf("top op = %q", top.Op)
	}
	l := top.L.(*cast.BinaryOp)
	if l.Op != "+" {
		t.Fatalf("left op = %q", l.Op)
	}
	if l.R.(*cast.BinaryOp).Op != "*" {
		t.Errorf("expected * under +")
	}
	if top.R.(*cast.BinaryOp).Op != "/" {
		t.Errorf("expected / on right")
	}
}

func TestLeftAssociativity(t *testing.T) {
	f := mustParse(t, "x = a - b - c;")
	asg := f.Items[0].(*cast.ExprStmt).X.(*cast.Assign)
	top := asg.R.(*cast.BinaryOp)
	// (a-b)-c
	if _, ok := top.L.(*cast.BinaryOp); !ok {
		t.Fatalf("expected left-nested, got right-nested: %#v", top)
	}
}

func TestAssignRightAssociativity(t *testing.T) {
	f := mustParse(t, "a = b = c;")
	asg := f.Items[0].(*cast.ExprStmt).X.(*cast.Assign)
	if _, ok := asg.R.(*cast.Assign); !ok {
		t.Fatalf("expected a = (b = c), got %#v", asg)
	}
}

func TestTernary(t *testing.T) {
	f := mustParse(t, "m = a > b ? a : b;")
	asg := f.Items[0].(*cast.ExprStmt).X.(*cast.Assign)
	if _, ok := asg.R.(*cast.Ternary); !ok {
		t.Fatalf("got %#v", asg.R)
	}
}

func TestCastExpression(t *testing.T) {
	f := mustParse(t, "for (i = 0; i < ((ssize_t) image->colors); i++) image->colormap[i].opacity = (IndexPacket) i;")
	loop := firstFor(t, f)
	var foundCast, foundArrow, foundDot bool
	cast.Walk(loop, func(n cast.Node) bool {
		switch v := n.(type) {
		case *cast.Cast:
			foundCast = true
		case *cast.Member:
			if v.Arrow {
				foundArrow = true
			} else {
				foundDot = true
			}
		}
		return true
	})
	if !foundCast || !foundArrow || !foundDot {
		t.Errorf("cast=%v arrow=%v dot=%v, want all true", foundCast, foundArrow, foundDot)
	}
}

func TestRegisterStorageClass(t *testing.T) {
	f := mustParse(t, "for (register int i = 0; i < n; i++) s += a[i];")
	loop := firstFor(t, f)
	ds := loop.Init.(*cast.DeclStmt)
	if len(ds.Decls[0].Type.Quals) == 0 || ds.Decls[0].Type.Quals[0] != "register" {
		t.Errorf("quals = %v", ds.Decls[0].Type.Quals)
	}
}

func TestTypedefIntroducesType(t *testing.T) {
	f := mustParse(t, "typedef unsigned long mytype;\nmytype x = 3;")
	if len(f.Items) != 2 {
		t.Fatalf("items = %d", len(f.Items))
	}
	ds := f.Items[1].(*cast.DeclStmt)
	if ds.Decls[0].Type.Names[0] != "mytype" {
		t.Errorf("type = %v", ds.Decls[0].Type.Names)
	}
}

func TestFunctionDefinition(t *testing.T) {
	src := "double norm(double *v, int n) {\n  double s = 0;\n  for (int i = 0; i < n; i++) s += v[i] * v[i];\n  return sqrt(s);\n}"
	f := mustParse(t, src)
	fd, ok := f.Items[0].(*cast.FuncDef)
	if !ok {
		t.Fatalf("item is %T", f.Items[0])
	}
	if fd.Name != "norm" || len(fd.Params) != 2 {
		t.Errorf("name=%q params=%d", fd.Name, len(fd.Params))
	}
	if fd.Params[0].Type.Ptr != 1 {
		t.Errorf("first param ptr = %d", fd.Params[0].Type.Ptr)
	}
}

func TestFunctionCallArgs(t *testing.T) {
	f := mustParse(t, `fprintf(stderr, "%0.2lf ", x[i]);`)
	call := f.Items[0].(*cast.ExprStmt).X.(*cast.FuncCall)
	if len(call.Args) != 3 {
		t.Fatalf("args = %d", len(call.Args))
	}
	if call.Fun.(*cast.Ident).Name != "fprintf" {
		t.Errorf("fun = %v", call.Fun)
	}
}

func TestIfElse(t *testing.T) {
	f := mustParse(t, "if (x > 0) y = 1; else y = -1;")
	st := f.Items[0].(*cast.If)
	if st.Else == nil {
		t.Fatal("else missing")
	}
}

func TestWhileAndDoWhile(t *testing.T) {
	f := mustParse(t, "while (p) p = next(p);\ndo { x--; } while (x > 0);")
	if _, ok := f.Items[0].(*cast.While); !ok {
		t.Fatalf("item0 %T", f.Items[0])
	}
	if _, ok := f.Items[1].(*cast.DoWhile); !ok {
		t.Fatalf("item1 %T", f.Items[1])
	}
}

func TestBreakContinueReturn(t *testing.T) {
	src := "for (i = 0; i < n; i++) { if (a[i] < 0) break; if (a[i] == 0) continue; s += a[i]; }"
	f := mustParse(t, src)
	var nb, nc int
	cast.Walk(f, func(n cast.Node) bool {
		switch n.(type) {
		case *cast.Break:
			nb++
		case *cast.Continue:
			nc++
		}
		return true
	})
	if nb != 1 || nc != 1 {
		t.Errorf("break=%d continue=%d", nb, nc)
	}
}

func TestMultiDeclarator(t *testing.T) {
	f := mustParse(t, "int a = 1, *b, c[10];")
	ds := f.Items[0].(*cast.DeclStmt)
	if len(ds.Decls) != 3 {
		t.Fatalf("decls = %d", len(ds.Decls))
	}
	if ds.Decls[1].Type.Ptr != 1 {
		t.Errorf("b ptr = %d", ds.Decls[1].Type.Ptr)
	}
	if len(ds.Decls[2].ArrayDims) != 1 {
		t.Errorf("c dims = %d", len(ds.Decls[2].ArrayDims))
	}
}

func TestSizeof(t *testing.T) {
	f := mustParse(t, "p = malloc(n * sizeof(double)); q = sizeof x;")
	var count int
	cast.Walk(f, func(n cast.Node) bool {
		if _, ok := n.(*cast.Sizeof); ok {
			count++
		}
		return true
	})
	if count != 2 {
		t.Errorf("sizeof count = %d", count)
	}
}

func TestCommaOperator(t *testing.T) {
	f := mustParse(t, "for (i = 0, j = n; i < j; i++, j--) swap(a, i, j);")
	loop := firstFor(t, f)
	if _, ok := loop.Init.(*cast.ExprStmt).X.(*cast.Comma); !ok {
		t.Errorf("init = %#v", loop.Init)
	}
	if _, ok := loop.Post.(*cast.Comma); !ok {
		t.Errorf("post = %#v", loop.Post)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"for (i = 0; i < n; i++",
		"x = ;",
		"int ;",
		"if (x  { y = 1; }",
		"a[i = 2;",
		"} x;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseStmt(t *testing.T) {
	s, err := ParseStmt("for (i = 0; i < n; i++) a[i] = 0;")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*cast.For); !ok {
		t.Fatalf("got %T", s)
	}
	if _, err := ParseStmt(""); err == nil {
		t.Error("expected error on empty input")
	}
}

// TestPrintParseRoundTrip is the key integration property: printing an AST
// and reparsing it yields an identical serialization. The corpus generator
// depends on this.
func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		"for (i = 0; i <= N; i++) A[i] = i;",
		"#pragma omp parallel for reduction(+:sum)\nfor (i = 0; i < n; i++) sum += a[i] * b[i];",
		"for (i = 0; i < n; i++) { for (j = 0; j < m; j++) { c[i][j] = a[i][j] + b[i][j]; } }",
		"if (MoreCalc(i)) Calc(i); else Other(i, j + 1);",
		"for (i = 0; i < n; i++) { fprintf(stderr, \"%0.2lf \", x[i]); if ((i % 20) == 0) fprintf(stderr, \" \\n\"); }",
		"double s = 0;\nfor (int i = 0; i < len; i++) s += v[i] * v[i];",
		"x = a > b ? (a - b) : (b - a);",
		"for (i = 0; i < ((ssize_t) image->colors); i++) image->colormap[i].opacity = (IndexPacket) i;",
		"while (count < limit) { count = count + step(count); }",
		"p->next = q; r = (*p).val;",
	}
	for _, src := range srcs {
		f1 := mustParse(t, src)
		printed := cast.Print(f1)
		f2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\nprinted:\n%s", src, err, printed)
		}
		s1, s2 := cast.Serialize(f1), cast.Serialize(f2)
		if s1 != s2 {
			t.Errorf("round trip mismatch for %q:\n%s\nvs\n%s", src, s1, s2)
		}
	}
}

func TestSerializeMatchesPaperShape(t *testing.T) {
	// Table 6 of the paper: the text example's AST serialization.
	f := mustParse(t, "for (i = 0; i < len; i++) a[i] = i;")
	got := cast.Serialize(f)
	want := "For: Assignment: = ID: i Constant: int, 0 BinaryOp: < ID: i ID: len UnaryOp: p++ ID: i Assignment: = ArrayRef: ID: a ID: i ID: i"
	if got != want {
		t.Errorf("serialization:\n got %q\nwant %q", got, want)
	}
}

func TestRenameTable6(t *testing.T) {
	// Table 6: replaced text example.
	f := mustParse(t, "for (i = 0; i < len; i++) a[i] = i;")
	cast.Rename(f)
	printed := strings.Join(strings.Fields(cast.Print(f)), " ")
	want := "for (var0 = 0; var0 < var1; var0++) arr0[var0] = var0;"
	if printed != want {
		t.Errorf("replaced text:\n got %q\nwant %q", printed, want)
	}
}

func TestRenameKeepsLibraryNames(t *testing.T) {
	f := mustParse(t, `for (i = 0; i < n; i++) fprintf(stderr, "%d", a[i]);`)
	cast.Rename(f)
	printed := cast.Print(f)
	if !strings.Contains(printed, "fprintf") || !strings.Contains(printed, "stderr") {
		t.Errorf("library names renamed:\n%s", printed)
	}
	if strings.Contains(printed, " i ") {
		t.Errorf("user identifier i not renamed:\n%s", printed)
	}
}

func TestRenameConsistency(t *testing.T) {
	f := mustParse(t, "for (i = 0; i < n; i++) { a[i] = b[i]; t = a[i] + helper(t, i); }")
	res := cast.Rename(f)
	if res.Mapping["a"] == res.Mapping["b"] {
		t.Errorf("distinct arrays mapped to same name: %v", res.Mapping)
	}
	if !strings.HasPrefix(res.Mapping["a"], "arr") {
		t.Errorf("a mapped to %q, want arr prefix", res.Mapping["a"])
	}
	if !strings.HasPrefix(res.Mapping["helper"], "func") {
		t.Errorf("helper mapped to %q, want func prefix", res.Mapping["helper"])
	}
	if !strings.HasPrefix(res.Mapping["i"], "var") {
		t.Errorf("i mapped to %q, want var prefix", res.Mapping["i"])
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := mustParse(t, "for (i = 0; i < n; i++) a[i] = i;")
	c := cast.Clone(f)
	before := cast.Serialize(f)
	cast.Rename(c)
	if cast.Serialize(f) != before {
		t.Error("renaming the clone mutated the original")
	}
	if cast.Serialize(c) == before {
		t.Error("clone was not renamed")
	}
}

func TestCollectIdents(t *testing.T) {
	f := mustParse(t, "for (i = 0; i < n; i++) a[i] = b[i] + c;")
	ids := cast.CollectIdents(f)
	want := []string{"a", "b", "c", "i", "n"}
	if len(ids) != len(want) {
		t.Fatalf("idents = %v", ids)
	}
	for k, id := range ids {
		if id != want[k] {
			t.Errorf("idents[%d] = %q want %q", k, id, want[k])
		}
	}
}

func TestDeepNesting(t *testing.T) {
	src := "for (i = 0; i < n; i++) { for (j = 0; j < n; j++) { for (k = 0; k < n; k++) { c[i][j] += a[i][k] * b[k][j]; } } }"
	f := mustParse(t, src)
	var depth int
	cast.Walk(f, func(n cast.Node) bool {
		if _, ok := n.(*cast.For); ok {
			depth++
		}
		return true
	})
	if depth != 3 {
		t.Errorf("for depth = %d", depth)
	}
}

func BenchmarkParse(b *testing.B) {
	src := strings.Repeat("for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + f(i); }\n", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
