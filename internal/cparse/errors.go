package cparse

import (
	"errors"
	"fmt"

	"pragformer/internal/clex"
)

// Error is a parse error carrying its 1-based source position. Every error
// returned by Parse / ParseStmt is (or wraps) either a *cparse.Error or a
// *clex.Error, so batch consumers — the repo scanner's skip reports — can
// attribute failures to file:line:col without scraping message text.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("cparse: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Position extracts the source position carried by a parse or lex error.
// ok is false when err carries no position (e.g. "no statement in input").
func Position(err error) (line, col int, ok bool) {
	var pe *Error
	if errors.As(err, &pe) {
		return pe.Line, pe.Col, true
	}
	var le *clex.Error
	if errors.As(err, &le) {
		return le.Line, le.Col, true
	}
	return 0, 0, false
}
