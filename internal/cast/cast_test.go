package cast

import (
	"strings"
	"testing"
)

// Tests here build ASTs by hand; parser-driven round trips live in cparse.

func loopAST() *For {
	// for (i = 0; i < n; i++) a[i] = b[i] + 1;
	return &For{
		Init: &ExprStmt{X: &Assign{Op: "=", L: &Ident{Name: "i"}, R: &IntLit{Text: "0"}}},
		Cond: &BinaryOp{Op: "<", L: &Ident{Name: "i"}, R: &Ident{Name: "n"}},
		Post: &UnaryOp{Op: "++", X: &Ident{Name: "i"}, Postfix: true},
		Body: &ExprStmt{X: &Assign{
			Op: "=",
			L:  &ArrayRef{Arr: &Ident{Name: "a"}, Index: &Ident{Name: "i"}},
			R:  &BinaryOp{Op: "+", L: &ArrayRef{Arr: &Ident{Name: "b"}, Index: &Ident{Name: "i"}}, R: &IntLit{Text: "1"}},
		}},
	}
}

func TestPrintLoop(t *testing.T) {
	got := strings.Join(strings.Fields(Print(loopAST())), " ")
	want := "for (i = 0; i < n; i++) a[i] = b[i] + 1;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestPrintParenthesization(t *testing.T) {
	// (a + b) * c must keep its parens.
	e := &BinaryOp{Op: "*",
		L: &BinaryOp{Op: "+", L: &Ident{Name: "a"}, R: &Ident{Name: "b"}},
		R: &Ident{Name: "c"}}
	if got := PrintExpr(e); got != "(a + b) * c" {
		t.Errorf("got %q", got)
	}
	// a + b * c needs none.
	e2 := &BinaryOp{Op: "+",
		L: &Ident{Name: "a"},
		R: &BinaryOp{Op: "*", L: &Ident{Name: "b"}, R: &Ident{Name: "c"}}}
	if got := PrintExpr(e2); got != "a + b * c" {
		t.Errorf("got %q", got)
	}
	// a - (b - c) keeps parens (left associativity).
	e3 := &BinaryOp{Op: "-",
		L: &Ident{Name: "a"},
		R: &BinaryOp{Op: "-", L: &Ident{Name: "b"}, R: &Ident{Name: "c"}}}
	if got := PrintExpr(e3); got != "a - (b - c)" {
		t.Errorf("got %q", got)
	}
}

func TestPrintUnary(t *testing.T) {
	pre := &UnaryOp{Op: "-", X: &Ident{Name: "x"}}
	if got := PrintExpr(pre); got != "-x" {
		t.Errorf("got %q", got)
	}
	post := &UnaryOp{Op: "--", X: &Ident{Name: "x"}, Postfix: true}
	if got := PrintExpr(post); got != "x--" {
		t.Errorf("got %q", got)
	}
}

func TestPrintPragma(t *testing.T) {
	ps := &PragmaStmt{Text: "pragma omp parallel for", Stmt: loopAST()}
	out := Print(ps)
	if !strings.HasPrefix(out, "#pragma omp parallel for\n") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintTypes(t *testing.T) {
	d := &Decl{
		Type:      &TypeSpec{Quals: []string{"const"}, Names: []string{"unsigned", "long"}, Ptr: 1},
		Name:      "p",
		ArrayDims: []Expr{&IntLit{Text: "4"}},
	}
	got := declString(d)
	if got != "const unsigned long *p[4]" {
		t.Errorf("got %q", got)
	}
	sd := &Decl{Type: &TypeSpec{Struct: "node", Ptr: 1}, Name: "head"}
	if got := declString(sd); got != "struct node *head" {
		t.Errorf("got %q", got)
	}
}

func TestPrintFuncDef(t *testing.T) {
	fd := &FuncDef{
		ReturnType: &TypeSpec{Names: []string{"void"}},
		Name:       "init",
		Body:       &Block{Stmts: []Stmt{&Return{}}},
	}
	out := Print(fd)
	if !strings.Contains(out, "void init(void) {") {
		t.Errorf("out = %q", out)
	}
}

func TestSerializeStructRef(t *testing.T) {
	m := &Member{X: &Ident{Name: "img"}, Field: "cols", Arrow: true}
	got := Serialize(m)
	if got != "StructRef: -> ID: img ID: cols" {
		t.Errorf("got %q", got)
	}
}

func TestSerializeTokens(t *testing.T) {
	toks := SerializeTokens(loopAST())
	if len(toks) == 0 || toks[0] != "For:" {
		t.Fatalf("toks = %v", toks)
	}
	joined := strings.Join(toks, " ")
	if joined != Serialize(loopAST()) {
		t.Error("token join differs from Serialize")
	}
}

func TestWalkPruning(t *testing.T) {
	n := loopAST()
	var count int
	Walk(n, func(Node) bool { count++; return false })
	if count != 1 {
		t.Errorf("count = %d, pruning failed", count)
	}
}

func TestWalkNil(t *testing.T) {
	Walk(nil, func(Node) bool { t.Fatal("visited nil"); return true }) // must not panic
}

func TestRootIdent(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&Ident{Name: "a"}, "a"},
		{&ArrayRef{Arr: &ArrayRef{Arr: &Ident{Name: "m"}, Index: &Ident{Name: "i"}}, Index: &Ident{Name: "j"}}, "m"},
		{&Member{X: &Ident{Name: "s"}, Field: "f"}, "s"},
		{&UnaryOp{Op: "*", X: &Ident{Name: "p"}}, "p"},
		{&IntLit{Text: "7"}, ""},
	}
	for _, c := range cases {
		if got := RootIdent(c.e); got != c.want {
			t.Errorf("RootIdent(%v) = %q want %q", c.e, got, c.want)
		}
	}
}

func TestRenameNumbersFollowFirstAppearance(t *testing.T) {
	// z appears before y: z should get var0.
	n := &Block{Stmts: []Stmt{
		&ExprStmt{X: &Assign{Op: "=", L: &Ident{Name: "z"}, R: &Ident{Name: "y"}}},
	}}
	res := Rename(n)
	if res.Mapping["z"] != "var0" || res.Mapping["y"] != "var1" {
		t.Errorf("mapping = %v", res.Mapping)
	}
}

func TestRenameIdempotentClasses(t *testing.T) {
	// A name used as both scalar and array base counts as an array.
	n := &Block{Stmts: []Stmt{
		&ExprStmt{X: &Assign{Op: "=", L: &Ident{Name: "d"}, R: &ArrayRef{Arr: &Ident{Name: "d"}, Index: &IntLit{Text: "0"}}}},
	}}
	res := Rename(n)
	if !strings.HasPrefix(res.Mapping["d"], "arr") {
		t.Errorf("mapping = %v", res.Mapping)
	}
}

func TestCloneCoversAllNodeKinds(t *testing.T) {
	nodes := []Node{
		&File{Items: []Node{&Empty{}}},
		&FuncDef{ReturnType: &TypeSpec{Names: []string{"int"}}, Name: "f", Body: &Block{}},
		&Decl{Type: &TypeSpec{Names: []string{"int"}}, Name: "x", Init: &IntLit{Text: "1"}},
		&Block{}, &ExprStmt{X: &Ident{Name: "x"}},
		&DeclStmt{Decls: []*Decl{{Type: &TypeSpec{Names: []string{"int"}}, Name: "y"}}},
		loopAST(),
		&While{Cond: &Ident{Name: "p"}, Body: &Empty{}},
		&DoWhile{Body: &Empty{}, Cond: &Ident{Name: "q"}},
		&If{Cond: &Ident{Name: "c"}, Then: &Empty{}, Else: &Empty{}},
		&Return{X: &IntLit{Text: "0"}}, &Break{}, &Continue{}, &Empty{},
		&PragmaStmt{Text: "pragma omp parallel for", Stmt: &Empty{}},
		&Ident{Name: "v"}, &IntLit{Text: "3"}, &FloatLit{Text: "1.5"},
		&CharLit{Text: "'c'"}, &StrLit{Text: `"s"`},
		&BinaryOp{Op: "+", L: &IntLit{Text: "1"}, R: &IntLit{Text: "2"}},
		&Assign{Op: "=", L: &Ident{Name: "x"}, R: &IntLit{Text: "1"}},
		&UnaryOp{Op: "!", X: &Ident{Name: "b"}},
		&ArrayRef{Arr: &Ident{Name: "a"}, Index: &IntLit{Text: "0"}},
		&FuncCall{Fun: &Ident{Name: "g"}, Args: []Expr{&IntLit{Text: "1"}}},
		&Member{X: &Ident{Name: "s"}, Field: "f"},
		&Ternary{Cond: &Ident{Name: "c"}, Then: &IntLit{Text: "1"}, Else: &IntLit{Text: "2"}},
		&Cast{Type: &TypeSpec{Names: []string{"int"}}, X: &Ident{Name: "x"}},
		&Sizeof{Type: &TypeSpec{Names: []string{"double"}}},
		&Comma{L: &Ident{Name: "a"}, R: &Ident{Name: "b"}},
		&InitList{Elems: []Expr{&IntLit{Text: "1"}}},
	}
	for _, n := range nodes {
		c := Clone(n)
		if c == nil {
			t.Errorf("Clone(%T) = nil", n)
			continue
		}
		if Serialize(c) != Serialize(n) {
			t.Errorf("Clone(%T) serialization differs", n)
		}
	}
}

func TestIsLibraryName(t *testing.T) {
	if !IsLibraryName("fprintf") || !IsLibraryName("stderr") {
		t.Error("fprintf/stderr should be library names")
	}
	if IsLibraryName("myhelper") {
		t.Error("myhelper should not be a library name")
	}
}

func TestPrintCastAndSizeof(t *testing.T) {
	e := &Cast{Type: &TypeSpec{Names: []string{"ssize_t"}}, X: &Member{X: &Ident{Name: "image"}, Field: "colors", Arrow: true}}
	if got := PrintExpr(e); got != "(ssize_t) image->colors" {
		t.Errorf("got %q", got)
	}
	s := &Sizeof{Type: &TypeSpec{Names: []string{"double"}}}
	if got := PrintExpr(s); got != "sizeof(double)" {
		t.Errorf("got %q", got)
	}
}

func TestPrintTernaryAndComma(t *testing.T) {
	e := &Ternary{Cond: &Ident{Name: "c"}, Then: &IntLit{Text: "1"}, Else: &IntLit{Text: "0"}}
	if got := PrintExpr(e); got != "c ? 1 : 0" {
		t.Errorf("got %q", got)
	}
	cm := &Comma{L: &Assign{Op: "=", L: &Ident{Name: "i"}, R: &IntLit{Text: "0"}},
		R: &Assign{Op: "=", L: &Ident{Name: "j"}, R: &Ident{Name: "n"}}}
	if got := PrintExpr(cm); got != "i = 0, j = n" {
		t.Errorf("got %q", got)
	}
}
