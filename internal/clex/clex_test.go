package clex

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func texts(toks []Token) []string {
	ts := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind != EOF {
			ts = append(ts, t.Text)
		}
	}
	return ts
}

func mustLex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestSimpleForLoop(t *testing.T) {
	toks := mustLex(t, "for (i = 0; i < n; i++) a[i] = i;")
	want := []string{"for", "(", "i", "=", "0", ";", "i", "<", "n", ";", "i", "++", ")", "a", "[", "i", "]", "=", "i", ";"}
	got := texts(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestKeywordVsIdent(t *testing.T) {
	toks := mustLex(t, "int fortune = forx + for_;")
	if toks[0].Kind != Keyword || toks[0].Text != "int" {
		t.Errorf("expected keyword int, got %v", toks[0])
	}
	for _, tok := range toks[1:] {
		if tok.Kind == Keyword && tok.Text != "int" {
			t.Errorf("identifier %q misclassified as keyword", tok.Text)
		}
	}
}

func TestAllKeywordsRecognized(t *testing.T) {
	for kw := range keywords {
		toks := mustLex(t, kw)
		if toks[0].Kind != Keyword {
			t.Errorf("%q: kind = %v, want Keyword", kw, toks[0].Kind)
		}
	}
}

func TestPragmaToken(t *testing.T) {
	src := "#pragma omp parallel for private(i)\nfor (i = 0; i < n; i++) a[i] = 0;"
	toks := mustLex(t, src)
	if toks[0].Kind != Pragma {
		t.Fatalf("first token kind = %v, want Pragma", toks[0].Kind)
	}
	if toks[0].Text != "pragma omp parallel for private(i)" {
		t.Errorf("pragma text = %q", toks[0].Text)
	}
	if toks[1].Text != "for" || toks[1].Kind != Keyword {
		t.Errorf("token after pragma = %v, want for keyword", toks[1])
	}
}

func TestPragmaLineContinuation(t *testing.T) {
	src := "#pragma omp parallel for \\\n reduction(+:sum)\nx;"
	toks := mustLex(t, src)
	if toks[0].Kind != Pragma {
		t.Fatalf("kind = %v, want Pragma", toks[0].Kind)
	}
	if !strings.Contains(toks[0].Text, "reduction(+:sum)") {
		t.Errorf("continuation lost: %q", toks[0].Text)
	}
}

func TestOtherPreprocessorSkipped(t *testing.T) {
	src := "#include <stdio.h>\n#define N 100\nint x;"
	toks := mustLex(t, src)
	got := texts(toks)
	want := []string{"int", "x", ";"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestComments(t *testing.T) {
	src := "int a; // line comment\n/* block\ncomment */ int b;"
	toks := mustLex(t, src)
	got := texts(toks)
	want := []string{"int", "a", ";", "int", "b", ";"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	if _, err := Lex("int a; /* oops"); err == nil {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestNumberForms(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"42", IntLit},
		{"0x1F", IntLit},
		{"0", IntLit},
		{"100UL", IntLit},
		{"3.14", FloatLit},
		{"1e10", FloatLit},
		{"2.5e-3", FloatLit},
		{"1.0f", FloatLit},
		{".5", FloatLit},
		{"7L", IntLit},
	}
	for _, c := range cases {
		toks := mustLex(t, c.src)
		if toks[0].Kind != c.kind || toks[0].Text != c.src {
			t.Errorf("%q: got %v, want kind %v", c.src, toks[0], c.kind)
		}
	}
}

func TestCharAndStringLiterals(t *testing.T) {
	toks := mustLex(t, `printf("%0.2lf \n", x[i]); c = 'a'; d = '\n';`)
	var str, chr int
	for _, tok := range toks {
		switch tok.Kind {
		case StringLit:
			str++
		case CharLit:
			chr++
		}
	}
	if str != 1 || chr != 2 {
		t.Errorf("got %d strings %d chars, want 1 and 2", str, chr)
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Lex(`"abc`); err == nil {
		t.Fatal("expected error")
	}
}

func TestUnterminatedChar(t *testing.T) {
	if _, err := Lex(`'a`); err == nil {
		t.Fatal("expected error")
	}
}

func TestMultiCharOperators(t *testing.T) {
	src := "a <<= 2; b >>= 1; p->x; i++; j--; a += b; x && y || z; m != n; q <= r; s >= t; u == v;"
	toks := mustLex(t, src)
	wantOps := map[string]bool{"<<=": false, ">>=": false, "->": false, "++": false, "--": false,
		"+=": false, "&&": false, "||": false, "!=": false, "<=": false, ">=": false, "==": false}
	for _, tok := range toks {
		if tok.Kind == Punct {
			if _, ok := wantOps[tok.Text]; ok {
				wantOps[tok.Text] = true
			}
		}
	}
	for op, seen := range wantOps {
		if !seen {
			t.Errorf("operator %q not lexed", op)
		}
	}
}

func TestMaximalMunch(t *testing.T) {
	// "a+++b" must lex as a ++ + b.
	toks := mustLex(t, "a+++b")
	got := texts(toks)
	want := []string{"a", "++", "+", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPositions(t *testing.T) {
	toks := mustLex(t, "int a;\n  b = 2;")
	// "b" is on line 2, col 3.
	for _, tok := range toks {
		if tok.Text == "b" {
			if tok.Line != 2 || tok.Col != 3 {
				t.Errorf("b at %d:%d, want 2:3", tok.Line, tok.Col)
			}
			return
		}
	}
	t.Fatal("token b not found")
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := Lex("int a = `b`;"); err == nil {
		t.Fatal("expected error for backquote")
	}
}

func TestEmptyInput(t *testing.T) {
	toks := mustLex(t, "")
	if len(toks) != 1 || toks[0].Kind != EOF {
		t.Fatalf("got %v, want single EOF", toks)
	}
}

func TestWhitespaceOnly(t *testing.T) {
	toks := mustLex(t, "  \n\t\r\n ")
	if len(toks) != 1 || toks[0].Kind != EOF {
		t.Fatalf("got %v, want single EOF", toks)
	}
}

func TestKindString(t *testing.T) {
	for k := EOF; k <= Pragma; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind(%d).String() = %q", int(k), s)
		}
	}
	if s := Kind(99).String(); !strings.HasPrefix(s, "Kind(") {
		t.Errorf("unknown kind string = %q", s)
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("register") {
		t.Error("register should be a keyword")
	}
	if IsKeyword("ssize_t") {
		t.Error("ssize_t is not a keyword")
	}
}

// TestLexNeverPanicsOnPrintableInput is a property test: the lexer must
// terminate with either tokens or an error on arbitrary printable input,
// and every returned token stream must end with EOF.
func TestLexNeverPanicsOnPrintableInput(t *testing.T) {
	f := func(raw []byte) bool {
		// Map to printable ASCII so most inputs are lexable.
		buf := make([]byte, len(raw))
		for i, b := range raw {
			buf[i] = ' ' + b%95
		}
		toks, err := Lex(string(buf))
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLexIdempotentOnRoundTrip checks that re-lexing the joined token text
// of lexable identifier/number programs yields the same token texts.
func TestLexIdempotentOnRoundTrip(t *testing.T) {
	srcs := []string{
		"for (i = 0; i < n; i++) { sum += a[i] * b[i]; }",
		"if (x > 0) y = f(x); else y = -x;",
		"while (p) { p = next(p); count++; }",
	}
	for _, src := range srcs {
		toks1 := mustLex(t, src)
		joined := strings.Join(texts(toks1), " ")
		toks2 := mustLex(t, joined)
		t1, t2 := texts(toks1), texts(toks2)
		if len(t1) != len(t2) {
			t.Fatalf("%q: %d vs %d tokens", src, len(t1), len(t2))
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				t.Errorf("%q: token %d: %q vs %q", src, i, t1[i], t2[i])
			}
		}
	}
}

func TestKindsCoverage(t *testing.T) {
	toks := mustLex(t, "#pragma omp parallel for\nfor (i=0;i<10;i++) s += 1.5;")
	seen := map[Kind]bool{}
	for _, k := range kinds(toks) {
		seen[k] = true
	}
	for _, k := range []Kind{Pragma, Keyword, Ident, IntLit, FloatLit, Punct, EOF} {
		if !seen[k] {
			t.Errorf("kind %v not produced", k)
		}
	}
}

func BenchmarkLex(b *testing.B) {
	src := strings.Repeat("for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + d[i]; }\n", 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Lex(src); err != nil {
			b.Fatal(err)
		}
	}
}
