package main

import (
	"pragformer/internal/cast"
	"pragformer/internal/cparse"
)

// parseLoop extracts the first for-loop and any function bodies from src.
func parseLoop(src string) (*cast.For, map[string]*cast.FuncDef, error) {
	f, err := cparse.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	funcs := map[string]*cast.FuncDef{}
	var loop *cast.For
	for _, it := range f.Items {
		if fd, ok := it.(*cast.FuncDef); ok {
			funcs[fd.Name] = fd
			continue
		}
		cast.Walk(it, func(n cast.Node) bool {
			if l, ok := n.(*cast.For); ok && loop == nil {
				loop = l
				return false
			}
			return true
		})
	}
	return loop, funcs, nil
}
