package nn

import (
	"math"
	"math/rand"

	"pragformer/internal/tensor"
)

// MultiHeadAttention is scaled dot-product self-attention with H heads over
// model dimension D (D divisible by H).
type MultiHeadAttention struct {
	WQ, WK, WV, WO *Linear
	Heads          int
	D              int
}

// NewMultiHeadAttention builds the four projections.
func NewMultiHeadAttention(name string, d, heads int, rng *rand.Rand) *MultiHeadAttention {
	if d%heads != 0 {
		panic("nn: model dim not divisible by heads")
	}
	return &MultiHeadAttention{
		WQ:    NewLinear(name+".wq", d, d, rng),
		WK:    NewLinear(name+".wk", d, d, rng),
		WV:    NewLinear(name+".wv", d, d, rng),
		WO:    NewLinear(name+".wo", d, d, rng),
		Heads: heads,
		D:     d,
	}
}

// Params lists trainable parameters.
func (m *MultiHeadAttention) Params() []*Param {
	var ps []*Param
	for _, l := range []*Linear{m.WQ, m.WK, m.WV, m.WO} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// AttnCache stores per-head activations for backprop and explainability.
type AttnCache struct {
	q, k, v      *tensor.Matrix
	cq, ck, cv   *LinearCache
	co           *LinearCache
	attn         []*tensor.Matrix // per head T×T post-softmax
	concat       *tensor.Matrix
	requireCache bool
}

// Attention returns the post-softmax attention matrices per head (for the
// explainability study).
func (c *AttnCache) Attention() []*tensor.Matrix { return c.attn }

// head returns the column sub-slice view [h*dh, (h+1)*dh) of row i.
func headSlice(m *tensor.Matrix, i, h, dh int) []float64 {
	row := m.Row(i)
	return row[h*dh : (h+1)*dh]
}

// Forward computes self-attention over x (T×D). All heads run as one
// strided batched GEMM per product: QKᵀ scores land in a single
// (H·T)×T matrix (head h at rows [h·T, (h+1)·T)), softmax runs over all
// H·T rows in one call, and the value mix writes every head's column band
// of concat in one pass (tensor.AttnScoresInto / AttnMixInto) — the same
// helpers the inference paths use, keeping training and serving forwards
// bit-identical.
func (m *MultiHeadAttention) Forward(x *tensor.Matrix) (*tensor.Matrix, *AttnCache) {
	T := x.Rows
	dh := m.D / m.Heads
	c := &AttnCache{}
	c.q, c.cq = m.WQ.Forward(x)
	c.k, c.ck = m.WK.Forward(x)
	c.v, c.cv = m.WV.Forward(x)
	c.concat = tensor.New(T, m.D)
	scale := 1 / math.Sqrt(float64(dh))

	scores := tensor.New(m.Heads*T, T)
	tensor.AttnScoresInto(scores, c.q, c.k, m.Heads, scale)
	tensor.RowSoftmax(scores)
	c.attn = make([]*tensor.Matrix, m.Heads)
	for h := 0; h < m.Heads; h++ {
		// Per-head T×T views share the batched buffer; Backward and the
		// explainability study read them in the pre-batching layout.
		c.attn[h] = tensor.FromSlice(T, T, scores.Data[h*T*T:(h+1)*T*T])
	}
	tensor.AttnMixInto(c.concat, scores, c.v, m.Heads)

	out, co := m.WO.Forward(c.concat)
	c.co = co
	return out, c
}

// Backward propagates through the attention block, returning dX.
func (m *MultiHeadAttention) Backward(c *AttnCache, dOut *tensor.Matrix) *tensor.Matrix {
	T := dOut.Rows
	dh := m.D / m.Heads
	scale := 1 / math.Sqrt(float64(dh))

	dConcat := m.WO.Backward(c.co, dOut)
	dQ := tensor.GetMatrix(T, m.D)
	dK := tensor.GetMatrix(T, m.D)
	dV := tensor.GetMatrix(T, m.D)
	dAttn := tensor.GetMatrixDirty(T, T)

	for h := 0; h < m.Heads; h++ {
		attn := c.attn[h]
		// dV and dAttn from dConcat. Every dAttn element is assigned below
		// before it is read, so the buffer can be reused dirty across heads.
		for i := 0; i < T; i++ {
			dcRow := headSlice(dConcat, i, h, dh)
			arow := attn.Row(i)
			daRow := dAttn.Row(i)
			for j := 0; j < T; j++ {
				// dV[j] += attn[i][j] * dConcat[i]
				tensor.Axpy(arow[j], dcRow, headSlice(dV, j, h, dh))
				// dAttn[i][j] = dot(dConcat[i], V[j])
				daRow[j] = tensor.Dot(dcRow, headSlice(c.v, j, h, dh))
			}
		}
		// Softmax backward per row: dS = A ⊙ (dA - Σ_j dA_j A_j).
		for i := 0; i < T; i++ {
			arow := attn.Row(i)
			daRow := dAttn.Row(i)
			dot := tensor.Dot(daRow, arow)
			for j := 0; j < T; j++ {
				daRow[j] = arow[j] * (daRow[j] - dot)
			}
		}
		// dQ, dK from dScores (still in dAttn, scaled).
		for i := 0; i < T; i++ {
			daRow := dAttn.Row(i)
			dqRow := headSlice(dQ, i, h, dh)
			for j := 0; j < T; j++ {
				g := daRow[j] * scale
				if g == 0 {
					continue
				}
				tensor.Axpy(g, headSlice(c.k, j, h, dh), dqRow)
				tensor.Axpy(g, headSlice(c.q, i, h, dh), headSlice(dK, j, h, dh))
			}
		}
	}

	dx := m.WQ.Backward(c.cq, dQ)
	dx.AddInPlace(m.WK.Backward(c.ck, dK))
	dx.AddInPlace(m.WV.Backward(c.cv, dV))
	tensor.PutMatrix(dAttn)
	tensor.PutMatrix(dQ)
	tensor.PutMatrix(dK)
	tensor.PutMatrix(dV)
	return dx
}

// ---------------------------------------------------------------------------
// Feed-forward network
// ---------------------------------------------------------------------------

// FFN is the position-wise two-layer network with ReLU.
type FFN struct {
	L1, L2 *Linear
}

// NewFFN builds a d→hidden→d FFN.
func NewFFN(name string, d, hidden int, rng *rand.Rand) *FFN {
	return &FFN{
		L1: NewLinear(name+".l1", d, hidden, rng),
		L2: NewLinear(name+".l2", hidden, d, rng),
	}
}

// Params lists trainable parameters.
func (f *FFN) Params() []*Param { return append(f.L1.Params(), f.L2.Params()...) }

// FFNCache stores intermediate activations.
type FFNCache struct {
	c1 *LinearCache
	cr *ReLUCache
	c2 *LinearCache
}

// Forward applies L2(ReLU(L1(x))).
func (f *FFN) Forward(x *tensor.Matrix) (*tensor.Matrix, *FFNCache) {
	h, c1 := f.L1.Forward(x)
	a, cr := ReLU(h)
	y, c2 := f.L2.Forward(a)
	return y, &FFNCache{c1: c1, cr: cr, c2: c2}
}

// Backward returns dX.
func (f *FFN) Backward(c *FFNCache, dOut *tensor.Matrix) *tensor.Matrix {
	da := f.L2.Backward(c.c2, dOut)
	dh := ReLUBackward(c.cr, da)
	return f.L1.Backward(c.c1, dh)
}

// ---------------------------------------------------------------------------
// Encoder block (pre-norm residual)
// ---------------------------------------------------------------------------

// EncoderBlock is x + Attn(LN1(x)) followed by x + FFN(LN2(x)).
type EncoderBlock struct {
	LN1  *LayerNorm
	Attn *MultiHeadAttention
	LN2  *LayerNorm
	FF   *FFN
	Drop float64
}

// NewEncoderBlock builds one transformer encoder layer.
func NewEncoderBlock(name string, d, heads, ffHidden int, drop float64, rng *rand.Rand) *EncoderBlock {
	return &EncoderBlock{
		LN1:  NewLayerNorm(name+".ln1", d),
		Attn: NewMultiHeadAttention(name+".attn", d, heads, rng),
		LN2:  NewLayerNorm(name+".ln2", d),
		FF:   NewFFN(name+".ffn", d, ffHidden, rng),
		Drop: drop,
	}
}

// Params lists trainable parameters.
func (b *EncoderBlock) Params() []*Param {
	var ps []*Param
	ps = append(ps, b.LN1.Params()...)
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.LN2.Params()...)
	ps = append(ps, b.FF.Params()...)
	return ps
}

// BlockCache stores sub-layer caches.
type BlockCache struct {
	cn1 *LayerNormCache
	ca  *AttnCache
	cd1 *DropoutCache
	cn2 *LayerNormCache
	cf  *FFNCache
	cd2 *DropoutCache
}

// Forward runs the block; train enables dropout using rng.
func (b *EncoderBlock) Forward(x *tensor.Matrix, train bool, rng *RNG) (*tensor.Matrix, *BlockCache) {
	c := &BlockCache{}
	n1, cn1 := b.LN1.Forward(x)
	c.cn1 = cn1
	a, ca := b.Attn.Forward(n1)
	c.ca = ca
	a, c.cd1 = Dropout(a, b.Drop, train, rng)
	h := x.Clone()
	h.AddInPlace(a)

	n2, cn2 := b.LN2.Forward(h)
	c.cn2 = cn2
	f, cf := b.FF.Forward(n2)
	c.cf = cf
	f, c.cd2 = Dropout(f, b.Drop, train, rng)
	out := h.Clone()
	out.AddInPlace(f)
	return out, c
}

// Backward returns dX.
func (b *EncoderBlock) Backward(c *BlockCache, dOut *tensor.Matrix) *tensor.Matrix {
	dF := DropoutBackward(c.cd2, dOut)
	dN2 := b.FF.Backward(c.cf, dF)
	dH := b.LN2.Backward(c.cn2, dN2)
	dH.AddInPlace(dOut) // residual

	dA := DropoutBackward(c.cd1, dH)
	dN1 := b.Attn.Backward(c.ca, dA)
	dX := b.LN1.Backward(c.cn1, dN1)
	dX.AddInPlace(dH) // residual
	return dX
}
