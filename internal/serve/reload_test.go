package serve

// Hot-reload tests: a model swap under concurrent traffic must drop zero
// requests, every answer must be bit-exact against one of the two bundles,
// and the caches must never serve a stale (pre-swap) result after the
// swap. Run under -race in CI.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pragformer/internal/advisor"
	"pragformer/internal/core"
	"pragformer/internal/tokenize"
)

// testModelsSeed builds a bundle like testModels but with a chosen init
// seed, so two bundles give different probabilities for the same input.
func testModelsSeed(t testing.TB, seed int64) *advisor.Models {
	t.Helper()
	v := tokenize.BuildVocab([][]string{{"for", "(", "i", "=", "0", ";", "<", "n", "+", ")", "a", "[", "]", "*", "b"}}, 1)
	m, err := core.New(core.Config{Vocab: v.Size() + 100, MaxLen: 64, D: 32, Heads: 4, Layers: 1}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return &advisor.Models{Directive: m, Vocab: v, MaxLen: 64}
}

func TestReloadDropsNoRequests(t *testing.T) {
	old := testModelsSeed(t, 5)
	fresh := testModelsSeed(t, 6)
	e, err := New(old, Config{MaxBatch: 4, MaxWait: time.Millisecond, Replicas: 2, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	pool := randIDs(rand.New(rand.NewSource(21)), 20, 64, old.Directive.VocabSize())
	wantOld := make(map[int]float64, len(pool))
	wantNew := make(map[int]float64, len(pool))
	for i, ids := range pool {
		wantOld[i] = old.Directive.Predict(ids)
		wantNew[i] = fresh.Directive.Predict(ids)
		if wantOld[i] == wantNew[i] {
			t.Fatalf("test bundles agree on input %d; swap would be unobservable", i)
		}
	}

	const clients, perClient = 8, 40
	var wg sync.WaitGroup
	var sawNew atomic.Bool
	errs := make(chan error, clients*perClient)
	bundles := [2]*advisor.Models{old, fresh}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + c)))
			for r := 0; r < perClient; r++ {
				i := rng.Intn(len(pool))
				p, err := e.Predict(context.Background(), pool[i])
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", c, r, err)
					return
				}
				switch p {
				case wantOld[i]:
				case wantNew[i]:
					sawNew.Store(true)
				default:
					errs <- fmt.Errorf("client %d req %d: probability %v matches neither bundle", c, r, p)
					return
				}
			}
		}(c)
	}

	// Swap bundles back and forth while the clients hammer the engine.
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for i := 0; i < 6; i++ {
			if err := e.Reload(bundles[(i+1)%2]); err != nil {
				errs <- fmt.Errorf("reload %d: %v", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	rwg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if !sawNew.Load() {
		t.Log("no request observed the swapped bundle (timing-dependent; not a failure)")
	}
	if got := e.Stats().Reloads; got != 6 {
		t.Errorf("Reloads counter = %d, want 6", got)
	}
}

// TestReloadInvalidatesCache pins the cache semantics: a result cached
// before the swap must not be served after it.
func TestReloadInvalidatesCache(t *testing.T) {
	old := testModelsSeed(t, 5)
	fresh := testModelsSeed(t, 6)
	e, err := New(old, Config{MaxBatch: 4, MaxWait: time.Microsecond, Replicas: 1, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ids := randIDs(rand.New(rand.NewSource(33)), 1, 64, old.Directive.VocabSize())[0]
	p1, err := e.Predict(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if want := old.Directive.Predict(ids); p1 != want {
		t.Fatalf("pre-swap predict %v, want %v", p1, want)
	}
	if err := e.Reload(fresh); err != nil {
		t.Fatal(err)
	}
	p2, err := e.Predict(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if want := fresh.Directive.Predict(ids); p2 != want {
		t.Fatalf("post-swap predict %v, want %v (stale cache?)", p2, want)
	}
}

func TestReloadValidatesBundle(t *testing.T) {
	e, err := New(testModelsSeed(t, 5), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Reload(nil); err == nil {
		t.Error("nil bundle accepted")
	}
	if err := e.Reload(&advisor.Models{}); err == nil {
		t.Error("empty bundle accepted")
	}
	if err := e.ReloadFromSource(); err == nil {
		t.Error("ReloadFromSource without a source succeeded")
	}
}

func TestReloadAfterCloseFails(t *testing.T) {
	e, err := New(testModelsSeed(t, 5), Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if err := e.Reload(testModelsSeed(t, 6)); err != ErrClosed {
		t.Errorf("reload after close = %v, want ErrClosed", err)
	}
}

func TestReloadFromSource(t *testing.T) {
	old := testModelsSeed(t, 5)
	fresh := testModelsSeed(t, 6)
	calls := 0
	e, err := New(old, Config{Source: func() (*advisor.Models, error) {
		calls++
		return fresh, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ReloadFromSource(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || e.Models() != fresh {
		t.Errorf("source calls %d, models swapped %v", calls, e.Models() == fresh)
	}
}
