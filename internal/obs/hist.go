package obs

import (
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency bucket scheme, in seconds: 100µs to
// 10s, roughly logarithmic — wide enough for a cache hit and a cold
// demo-model suggest in the same histogram.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram: atomic per-bucket counts
// plus total count, sum, and an exact observed max. Observe allocates
// nothing; quantiles are estimated by linear interpolation inside the
// owning bucket and clamped to the observed max, so a histogram holding a
// single observation reports it exactly.
type Histogram struct {
	upper  []float64 // ascending bucket upper bounds; an implicit +Inf follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Int64  // sum of observations, in nanoseconds
	maxBit atomic.Uint64 // float64 bits of the largest observation
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	return h
}

// NewHistogram builds an unregistered histogram (nil buckets =
// DefBuckets) — tests and ad-hoc measurement.
func NewHistogram(buckets []float64) *Histogram { return newHistogram(buckets) }

// Observe records one value in seconds. Bucket membership is v <= upper
// bound, matching Prometheus' cumulative `le` semantics exactly at the
// boundaries.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(v * 1e9))
	for {
		old := h.maxBit.Load()
		if math.Float64frombits(old) >= v && old != 0 {
			return
		}
		if h.maxBit.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count is the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum is the sum of observed values in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Max is the largest observed value (0 when empty).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBit.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the owning bucket, clamped to the observed max so the estimate
// never exceeds reality. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	lower := 0.0
	for i, ub := range h.upper {
		c := h.counts[i].Load()
		cum += c
		if float64(cum) >= rank {
			frac := (rank - float64(cum-c)) / float64(c)
			v := lower + frac*(ub-lower)
			if mx := h.Max(); mx > 0 && v > mx {
				v = mx
			}
			return v
		}
		lower = ub
	}
	// The quantile lands in the +Inf overflow bucket: the observed max is
	// the only honest upper estimate.
	return h.Max()
}

// expose renders the Prometheus histogram sample lines: cumulative
// `_bucket{le=...}` counts, `_sum`, and `_count`.
func (h *Histogram) expose(w *strings.Builder, name, labels string) {
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		sampleLine(w, name, joinLabels(labels, `le="`+formatFloat(ub)+`"`), "_bucket", strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.upper)].Load()
	sampleLine(w, name, joinLabels(labels, `le="+Inf"`), "_bucket", strconv.FormatUint(cum, 10))
	sampleLine(w, name, labels, "_sum", formatFloat(h.Sum()))
	sampleLine(w, name, labels, "_count", strconv.FormatUint(h.count.Load(), 10))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
