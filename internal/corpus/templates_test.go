package corpus

import (
	"math/rand"
	"testing"

	"pragformer/internal/cparse"
)

// Per-template labeling contracts: across many random draws, each positive
// template must label positive with its intended clause profile, and each
// negative template must label negative, for every draw. These pin the
// generator's ground-truth semantics.

const templateTrials = 25

func runTemplate(t *testing.T, name string, build func(*rand.Rand, *genCtx) *snippet,
	check func(t *testing.T, s *snippet, trial int)) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	g := &genCtx{}
	for trial := 0; trial < templateTrials; trial++ {
		s := build(rng, g)
		if s.template == "" {
			t.Fatalf("%s: empty template name", name)
		}
		code := renderSnippet(s)
		if _, err := cparse.Parse(code); err != nil {
			t.Fatalf("%s trial %d: unparseable output: %v\n%s", name, trial, err, code)
		}
		check(t, s, trial)
	}
}

func wantPositive(name string, wantPriv, wantRed bool) func(*testing.T, *snippet, int) {
	return func(t *testing.T, s *snippet, trial int) {
		t.Helper()
		d, a := labelSnippet(s)
		if d == nil {
			t.Fatalf("%s trial %d labeled negative: %v\n%s", name, trial, a.Reasons, renderSnippet(s))
		}
		if wantPriv && !d.HasPrivate() {
			t.Errorf("%s trial %d: missing private clause (%s)", name, trial, d)
		}
		if wantRed && !d.HasReduction() {
			t.Errorf("%s trial %d: missing reduction clause (%s)", name, trial, d)
		}
	}
}

func wantNegative(name string) func(*testing.T, *snippet, int) {
	return func(t *testing.T, s *snippet, trial int) {
		t.Helper()
		if d, _ := labelSnippet(s); d != nil {
			t.Fatalf("%s trial %d labeled positive (%s):\n%s", name, trial, d, renderSnippet(s))
		}
	}
}

func TestPositiveTemplateContracts(t *testing.T) {
	cases := []struct {
		name  string
		build func(*rand.Rand, *genCtx) *snippet
		priv  bool
		red   bool
	}{
		{"vecInit", tplVecInit, false, false},
		{"vecMap", tplVecMap, false, false},
		{"axpy", tplAxpy, false, false},
		{"stencil", tplStencil, false, false},
		{"strided", tplStrided, false, false},
		{"gather", tplGather, false, false},
		{"conditionalStore", tplConditionalStore, false, false},
		{"structArray", tplStructArray, false, false},
		{"pureCall", tplPureCall, false, false},
		{"longBody", tplLongBody, false, false},
		{"privateTempDecl", tplPrivateTempDecl, false, false},
		{"matVec", tplMatVec, true, false},
		{"matMul", tplMatMul, true, false},
		{"privateTemp", tplPrivateTemp, true, false},
		{"reduceSum", tplReduceSum, false, true},
		{"reduceExplicit", tplReduceExplicit, false, true},
		{"reduceMax", tplReduceMax, false, true},
		{"reduceNested", tplReduceNested, true, true},
		{"unbalanced", tplUnbalanced, false, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			runTemplate(t, c.name, c.build, wantPositive(c.name, c.priv, c.red))
		})
	}
}

func TestUnbalancedTemplateGetsDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := &genCtx{}
	for trial := 0; trial < templateTrials; trial++ {
		s := tplUnbalanced(rng, g)
		d, a := labelSnippet(s)
		if d == nil {
			t.Fatalf("trial %d negative: %v", trial, a.Reasons)
		}
		if d.Schedule.String() != "dynamic" {
			t.Fatalf("trial %d: schedule = %q, want dynamic", trial, d.Schedule)
		}
	}
}

func TestNegativeTemplateContracts(t *testing.T) {
	cases := []struct {
		name  string
		build func(*rand.Rand, *genCtx) *snippet
	}{
		{"recurrence", tplRecurrence},
		{"prefixSum", tplPrefixSum},
		{"horner", tplHorner},
		{"ioPrint", tplIOPrint},
		{"randFill", tplRandFill},
		{"allocLoop", tplAllocLoop},
		{"tinyLoop", tplTinyLoop},
		{"tinyNested", tplTinyNested},
		{"tinyIO", tplTinyIO},
		{"breakSearch", tplBreakSearch},
		{"scatter", tplScatter},
		{"overlapShift", tplOverlapShift},
		{"inPlaceStencil", tplInPlaceStencil},
		{"impureCall", tplImpureCall},
		{"loopVarMutation", tplLoopVarMutation},
		{"strcatLoop", tplStrcatLoop},
		{"fileWrite", tplFileWrite},
		{"linkedList", tplLinkedList},
		{"accumDependent", tplAccumulateDependent},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			runTemplate(t, c.name, c.build, wantNegative(c.name))
		})
	}
}

// TestMat2DTemplateEitherClause checks mat2D's two variants: inline decl
// (no clause) or outer variable (private clause), always positive.
func TestMat2DTemplateEitherClause(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := &genCtx{}
	sawPriv, sawPlain := false, false
	for trial := 0; trial < 40; trial++ {
		s := tplMat2D(rng, g)
		d, a := labelSnippet(s)
		if d == nil {
			t.Fatalf("trial %d negative: %v", trial, a.Reasons)
		}
		if d.HasPrivate() {
			sawPriv = true
		} else {
			sawPlain = true
		}
	}
	if !sawPriv || !sawPlain {
		t.Errorf("mat2D variants: private=%v plain=%v, want both", sawPriv, sawPlain)
	}
}

// TestHardenSnippetLabelNeutral verifies hardening never flips a label.
func TestHardenSnippetLabelNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := &genCtx{}
	for trial := 0; trial < 60; trial++ {
		s := tplVecMap(rng, g)
		before, _ := labelSnippet(s)
		hardenAlways(rng, s)
		after, _ := labelSnippet(s)
		if (before == nil) != (after == nil) {
			t.Fatalf("trial %d: hardening flipped label\n%s", trial, renderSnippet(s))
		}
	}
}

// TestExtendSnippetLabelNeutral verifies body extension never flips a label.
func TestExtendSnippetLabelNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := &genCtx{}
	builders := []func(*rand.Rand, *genCtx) *snippet{tplVecMap, tplReduceSum, tplRecurrence, tplTinyLoop}
	for trial := 0; trial < 40; trial++ {
		s := builders[trial%len(builders)](rng, g)
		before, _ := labelSnippet(s)
		extendSnippet(rng, s, 40)
		after, _ := labelSnippet(s)
		if (before == nil) != (after == nil) {
			t.Fatalf("trial %d: extension flipped label\n%s", trial, renderSnippet(s))
		}
	}
}

func TestDrawLengthTargetDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	short, mid, long := 0, 0, 0
	for i := 0; i < 3000; i++ {
		switch target := drawLengthTarget(rng); {
		case target == 0:
			short++
		case target <= 50:
			mid++
		default:
			long++
		}
	}
	if short < 1500 || short > 2000 {
		t.Errorf("short draws = %d/3000, want ≈ 1740 (58%%)", short)
	}
	if long < 100 || long > 450 {
		t.Errorf("long draws = %d/3000, want ≈ 234 (7.8%%)", long)
	}
	_ = mid
}
