//go:build !amd64 || purego

package tensor

// Portable stubs for the SIMD probe/toggle (cpu_amd64.go). On platforms
// without asm kernels the scalar fallbacks are the only implementation, so
// SIMD is never available and toggling is a no-op — by the bit-identity
// contract in float.go and int8.go the numbers are the same either way.

// SIMDAvailable reports whether asm SIMD kernels exist for this build.
func SIMDAvailable() bool { return false }

// SetSIMD is a no-op on builds without asm kernels; it reports false.
func SetSIMD(enabled bool) bool { return false }
