/* Dense matmul: three nested loops, each its own scan candidate. The
   scale_copy loop is byte-for-byte the loop in ../stencil.c — the scanner
   dedupes it by content hash and shares the verdict across both sites. */

void matmul(double *c, double *a, double *b, int n) {
    int i, j, k;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            double acc = 0.0;
            for (k = 0; k < n; k++) {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

void scale_copy(double *x, int n) {
    int i;
    for (i = 0; i < n; i++) {
        x[i] = x[i] * 2.0;
    }
}
