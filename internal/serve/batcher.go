package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"pragformer/internal/obs"
)

// The batcher is the engine's composable coalescing unit: one dispatcher
// goroutine collects calls of one kind into batches, a worker per replica
// run function executes them, and an LRU short-circuits repeats. The
// serving tier's router composes the same signals the batcher exports —
// queue depth, in-flight count, shed counter — into fleet-wide admission
// control.

// call is one queued request. ctx and enqueued let the worker shed calls
// whose deadline expired while they sat in the queue — an expired call's
// caller has already returned via ctx.Done, so running it would only burn
// a forward. tr is the request trace (nil when untraced).
type call[P any, K comparable, R any] struct {
	payload  P
	key      K
	res      chan R // buffered(1): the worker never blocks delivering
	ctx      context.Context
	enqueued time.Time
	tr       *obs.Trace
}

// runSet is one immutable generation of per-replica run functions. A hot
// reload publishes a fresh runSet through the batcher's atomic pointer;
// workers snapshot the set once per batch, so an in-flight batch finishes
// on the model it started with while the next batch picks up the swap.
// A run returns its results plus coarse stage timings (the advisor's
// infer/corroborate split) that the worker folds into each call's trace.
type runSet[P any, R any] struct {
	gen  uint64
	runs []func([]P) ([]R, []obs.Stage)
}

// batcherMetrics are the telemetry series one batcher records into. Any
// field may be nil (the engine wires them; direct construction in tests
// may not) — nil fields are skipped.
type batcherMetrics struct {
	queueWait *obs.Histogram // pf_batch_queue_wait_seconds
	compute   *obs.Histogram // pf_batch_compute_seconds
	deadline  *obs.Counter   // pf_deadline_exceeded_total
}

// batcher coalesces calls of one kind and fans batches across workers.
type batcher[P any, K comparable, R any] struct {
	queue    chan *call[P, K, R]
	work     chan []*call[P, K, R]
	cache    *lru[K, R]
	cur      atomic.Pointer[runSet[P, R]]
	maxBatch int
	maxWait  time.Duration
	shed     bool
	done     chan struct{}
	wg       *sync.WaitGroup
	m        batcherMetrics

	requests         atomic.Uint64
	cacheHits        atomic.Uint64
	batches          atomic.Uint64
	items            atomic.Uint64
	sheds            atomic.Uint64
	deadlineExceeded atomic.Uint64
	inflight         atomic.Int64
}

// newBatcher starts one dispatcher plus one worker per run function; all
// goroutines exit when done closes. queueDepth caps the request queue —
// the backpressure point: when shed is set, a full queue fails fast with
// ErrSaturated instead of blocking the caller.
func newBatcher[P any, K comparable, R any](
	maxBatch int, maxWait time.Duration, cacheSize, queueDepth int, shed bool,
	runs []func([]P) ([]R, []obs.Stage), bm batcherMetrics,
	done chan struct{}, wg *sync.WaitGroup,
) *batcher[P, K, R] {
	if queueDepth <= 0 {
		queueDepth = maxBatch * len(runs)
	}
	b := &batcher[P, K, R]{
		queue:    make(chan *call[P, K, R], queueDepth),
		work:     make(chan []*call[P, K, R]),
		cache:    newLRU[K, R](cacheSize),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		shed:     shed,
		done:     done,
		wg:       wg,
		m:        bm,
	}
	b.cur.Store(&runSet[P, R]{runs: runs}) // generation 0, matching the cache
	wg.Add(1 + len(runs))
	go b.dispatch()
	for r := range runs {
		go b.worker(r)
	}
	return b
}

// setRuns atomically swaps in a new generation of run functions and rolls
// the cache. The slice length must equal the worker count fixed at
// construction; callers serialize swaps (Engine.reloadMu).
func (b *batcher[P, K, R]) setRuns(runs []func([]P) ([]R, []obs.Stage)) {
	next := &runSet[P, R]{gen: b.cur.Load().gen + 1, runs: runs}
	b.cur.Store(next)
	b.cache.reset(next.gen)
}

// dispatch coalesces queued calls into batches: the first call opens a
// window that closes at MaxBatch calls or after MaxWait, whichever first.
func (b *batcher[P, K, R]) dispatch() {
	defer b.wg.Done()
	for {
		var first *call[P, K, R]
		select {
		case first = <-b.queue:
		case <-b.done:
			return
		}
		batch := append(make([]*call[P, K, R], 0, b.maxBatch), first)
		timer := time.NewTimer(b.maxWait)
	fill:
		for len(batch) < b.maxBatch {
			select {
			case c := <-b.queue:
				batch = append(batch, c)
			case <-timer.C:
				break fill
			case <-b.done:
				timer.Stop()
				return
			}
		}
		timer.Stop()
		select {
		case b.work <- batch:
		case <-b.done:
			return
		}
	}
}

// worker executes batches with replica r's current run function and
// delivers per-call results. The runSet is snapshotted once per batch:
// results are cached under the snapshot's generation, so a batch that
// raced a reload cannot write stale results into the fresh cache.
//
// Calls whose context died in the queue are dropped before the forward —
// their callers already returned, so computing for them is pure waste; a
// deadline expiry is counted separately from other cancellations.
func (b *batcher[P, K, R]) worker(r int) {
	defer b.wg.Done()
	for {
		select {
		case batch := <-b.work:
			live := batch[:0]
			for _, c := range batch {
				if err := c.ctx.Err(); err != nil {
					if errors.Is(err, context.DeadlineExceeded) {
						b.deadlineExceeded.Add(1)
						if b.m.deadline != nil {
							b.m.deadline.Inc()
						}
					}
					continue
				}
				qw := time.Since(c.enqueued)
				if b.m.queueWait != nil {
					b.m.queueWait.Observe(qw.Seconds())
				}
				c.tr.Add("queue-wait", c.enqueued, qw)
				live = append(live, c)
			}
			if len(live) == 0 {
				continue
			}
			rs := b.cur.Load()
			payloads := make([]P, len(live))
			for i, c := range live {
				payloads[i] = c.payload
			}
			t0 := time.Now()
			results, stages := rs.runs[r](payloads)
			dc := time.Since(t0)
			if b.m.compute != nil {
				b.m.compute.Observe(dc.Seconds())
			}
			b.batches.Add(1)
			b.items.Add(uint64(len(live)))
			for i, c := range live {
				c.tr.Add("batch-compute", t0, dc)
				for _, st := range stages {
					c.tr.Add(st.Name, t0, st.Dur)
				}
				b.cache.put(c.key, results[i], rs.gen)
				c.res <- results[i]
			}
		case <-b.done:
			return
		}
	}
}

// do submits one request and blocks for its result, the cache, ctx
// cancellation, or engine close. In shed mode a full queue returns
// ErrSaturated immediately — the engine's admission-control contract:
// callers (the HTTP layer, the tier router) translate it into 429 +
// Retry-After instead of letting latency collapse under overload. A
// context already past its deadline is shed before touching the queue.
func (b *batcher[P, K, R]) do(ctx context.Context, payload P, key K) (R, error) {
	var zero R
	b.requests.Add(1)
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			b.deadlineExceeded.Add(1)
			if b.m.deadline != nil {
				b.m.deadline.Inc()
			}
		}
		return zero, err
	}
	if r, ok := b.cache.get(key); ok {
		b.cacheHits.Add(1)
		return r, nil
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	c := &call[P, K, R]{
		payload: payload, key: key, res: make(chan R, 1),
		ctx: ctx, enqueued: time.Now(), tr: obs.TraceFrom(ctx),
	}
	if b.shed {
		select {
		case b.queue <- c:
		case <-ctx.Done():
			return zero, ctx.Err()
		case <-b.done:
			return zero, ErrClosed
		default:
			b.sheds.Add(1)
			return zero, ErrSaturated
		}
	} else {
		select {
		case b.queue <- c:
		case <-ctx.Done():
			return zero, ctx.Err()
		case <-b.done:
			return zero, ErrClosed
		}
	}
	select {
	case r := <-c.res:
		return r, nil
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.done:
		// A worker may have delivered concurrently with Close.
		select {
		case r := <-c.res:
			return r, nil
		default:
			return zero, ErrClosed
		}
	}
}

func (b *batcher[P, K, R]) stats() PathStats {
	return PathStats{
		Requests:         b.requests.Load(),
		CacheHits:        b.cacheHits.Load(),
		Batches:          b.batches.Load(),
		Items:            b.items.Load(),
		Sheds:            b.sheds.Load(),
		DeadlineExceeded: b.deadlineExceeded.Load(),
		QueueDepth:       len(b.queue),
		InFlight:         int(b.inflight.Load()),
	}
}
