package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/metrics"
	"pragformer/internal/tokenize"
)

// Table3 reproduces "Statistics of the OpenMP directives on the raw
// database".
type Table3 struct {
	Stats corpus.Stats
}

// RunTable3 computes corpus directive statistics.
func (p *Pipeline) RunTable3() Table3 { return Table3{Stats: p.Corpus().Stats()} }

// Print renders the table.
func (t Table3) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 3: Statistics of the OpenMP directives on the raw database")
	fmt.Fprintf(w, "  %-38s %7d\n", "Total code snippets", t.Stats.Total)
	fmt.Fprintf(w, "  %-38s %7d\n", "For loops with OpenMP directives", t.Stats.WithDirective)
	fmt.Fprintf(w, "  %-38s %7d\n", "Schedule static", t.Stats.ScheduleStatic)
	fmt.Fprintf(w, "  %-38s %7d\n", "Schedule dynamic", t.Stats.ScheduleDynamic)
	fmt.Fprintf(w, "  %-38s %7d\n", "Reduction", t.Stats.Reduction)
	fmt.Fprintf(w, "  %-38s %7d\n", "Private", t.Stats.Private)
}

// Table4 reproduces "Code snippet lengths in the raw database".
type Table4 struct {
	Histogram [4]int
}

// RunTable4 computes the snippet length histogram.
func (p *Pipeline) RunTable4() Table4 { return Table4{Histogram: p.Corpus().LengthHistogram()} }

// Print renders the table.
func (t Table4) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 4: Code snippet lengths in the raw database")
	labels := []string{"< 10", "11-50", "51-100", "> 100"}
	for i, l := range labels {
		fmt.Fprintf(w, "  %-8s %7d\n", l, t.Histogram[i])
	}
}

// Figure3 reproduces the domain-distribution pie chart.
type Figure3 struct {
	Dist map[corpus.Domain]float64
}

// RunFigure3 computes the provenance mix.
func (p *Pipeline) RunFigure3() Figure3 { return Figure3{Dist: p.Corpus().DomainDistribution()} }

// Print renders the distribution.
func (f Figure3) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: Distribution of OpenMP snippet sources")
	var domains []corpus.Domain
	for d := range f.Dist {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool { return domains[i] < domains[j] })
	for _, d := range domains {
		fmt.Fprintf(w, "  %-24s %5.1f%%\n", d, f.Dist[d]*100)
	}
}

// Table5 reproduces the dataset-size table.
type Table5 struct {
	DirTrain, DirValid, DirTest          int
	ClauseTrain, ClauseValid, ClauseTest int
}

// RunTable5 computes split sizes for both datasets.
func (p *Pipeline) RunTable5() Table5 {
	var t Table5
	t.DirTrain, t.DirValid, t.DirTest = p.DirectiveSplit().Sizes()
	t.ClauseTrain, t.ClauseValid, t.ClauseTest = p.ClauseSplit(dataset.TaskPrivate).Sizes()
	return t
}

// Print renders the table.
func (t Table5) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 5: Amount of examples in each dataset")
	fmt.Fprintf(w, "  %-12s %9s %9s\n", "Dataset", "Directive", "Clause")
	fmt.Fprintf(w, "  %-12s %9d %9d\n", "Training", t.DirTrain, t.ClauseTrain)
	fmt.Fprintf(w, "  %-12s %9d %9d\n", "Validation", t.DirValid, t.ClauseValid)
	fmt.Fprintf(w, "  %-12s %9d %9d\n", "Test", t.DirTest, t.ClauseTest)
}

// Table6 reproduces the four code representations of the fixed example.
type Table6 struct {
	Rows map[tokenize.Representation]string
}

// Table6Example is the paper's snippet.
const Table6Example = "for (i = 0; i < len; i++) a[i] = i;"

// RunTable6 renders the example under all four representations.
func (p *Pipeline) RunTable6() Table6 {
	rows := map[tokenize.Representation]string{}
	for _, repr := range tokenize.Representations {
		toks, err := tokenize.Extract(Table6Example, repr)
		if err != nil {
			rows[repr] = "error: " + err.Error()
			continue
		}
		rows[repr] = strings.Join(toks, " ")
	}
	return Table6{Rows: rows}
}

// Print renders the table.
func (t Table6) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 6: Examples of the different code representations")
	for _, repr := range tokenize.Representations {
		fmt.Fprintf(w, "  %-14s %s\n", repr, t.Rows[repr])
	}
}

// Table7 reproduces the type-level corpus statistics.
type Table7 struct {
	Stats map[tokenize.Representation]tokenize.Stats
}

// RunTable7 computes vocabulary/OOV/length statistics per representation.
func (p *Pipeline) RunTable7() Table7 {
	split := p.DirectiveSplit()
	out := Table7{Stats: map[tokenize.Representation]tokenize.Stats{}}
	for _, repr := range tokenize.Representations {
		var trainSeqs, vtSeqs [][]string
		for _, in := range split.Train {
			trainSeqs = append(trainSeqs, p.Tokens(in.Rec, repr))
		}
		for _, in := range split.Valid {
			vtSeqs = append(vtSeqs, p.Tokens(in.Rec, repr))
		}
		for _, in := range split.Test {
			vtSeqs = append(vtSeqs, p.Tokens(in.Rec, repr))
		}
		out.Stats[repr] = tokenize.ComputeStats(repr, trainSeqs, vtSeqs)
	}
	return out
}

// Print renders the table.
func (t Table7) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 7: Type-level corpus statistics")
	fmt.Fprintf(w, "  %-18s %12s %10s %12s\n", "", "Train vocab", "OOV types", "Avg. length")
	for _, repr := range tokenize.Representations {
		s := t.Stats[repr]
		fmt.Fprintf(w, "  %-18s %12d %10d %12.0f\n", repr, s.TrainVocab, s.OOVTypes, s.AvgLength)
	}
}

// ClassifierRow is one evaluation-table line.
type ClassifierRow struct {
	Name   string
	Report metrics.Report
}

// ComparisonTable is the shared shape of Tables 8, 9 and 10.
type ComparisonTable struct {
	Title         string
	Rows          []ClassifierRow
	ComParFailed  int
	TestSize      int
	BestTestModel *Trained // the PragFormer used, for downstream experiments
}

// Print renders the comparison.
func (t ComparisonTable) Print(w io.Writer) {
	fmt.Fprintln(w, t.Title)
	fmt.Fprintf(w, "  %-16s %10s %8s %8s %10s\n", "", "Precision", "Recall", "F1", "Accuracy")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "  %-16s %10.2f %8.2f %8.2f %10.2f\n",
			r.Name, r.Report.Precision, r.Report.Recall, r.Report.F1, r.Report.Accuracy)
	}
	if t.ComParFailed > 0 {
		fmt.Fprintf(w, "  (ComPar failed to compile %d/%d test snippets; counted as negative)\n",
			t.ComParFailed, t.TestSize)
	}
}

// runComparison evaluates the three systems on one task's test split.
func (p *Pipeline) runComparison(task dataset.Task, title string) ComparisonTable {
	split := p.splitFor(task)
	trained := p.Model(task, tokenize.Text)
	pragC := p.EvalModel(trained, split.Test, tokenize.Text)
	bowC := p.EvalBoW(p.BoW(task), split.Test)
	cpr := p.EvalComPar(split.Test, task)
	return ComparisonTable{
		Title: title,
		Rows: []ClassifierRow{
			{"PragFormer", pragC.Report()},
			{"BoW + Logistic", bowC.Report()},
			{"ComPar", cpr.Confusion.Report()},
		},
		ComParFailed:  cpr.ParseFailures,
		TestSize:      len(split.Test),
		BestTestModel: trained,
	}
}

// RunTable8 reproduces the directive-classification comparison.
func (p *Pipeline) RunTable8() ComparisonTable {
	return p.runComparison(dataset.TaskDirective,
		"Table 8: Identifying the need for an OpenMP directive")
}

// RunTable9 reproduces the private-clause comparison.
func (p *Pipeline) RunTable9() ComparisonTable {
	return p.runComparison(dataset.TaskPrivate,
		"Table 9: Identifying the need for a private clause")
}

// RunTable10 reproduces the reduction-clause comparison.
func (p *Pipeline) RunTable10() ComparisonTable {
	return p.runComparison(dataset.TaskReduction,
		"Table 10: Identifying the need for a reduction clause")
}

// Table11 reproduces the held-out benchmark study.
type Table11 struct {
	Rows              []ClassifierRow // PragFormer/ComPar × PolyBench/SPEC
	SPECParseFailures int
	PolyParseFailures int
}

// RunTable11 evaluates PragFormer and ComPar on the PolyBench-style and
// SPEC-style held-out suites.
func (p *Pipeline) RunTable11() Table11 {
	trained := p.Model(dataset.TaskDirective, tokenize.Text)
	var t Table11

	evalSuite := func(c *corpus.Corpus, name string) (int, int) {
		ins := InstancesOf(c, dataset.TaskDirective)
		v := p.Vocab(tokenize.Text)
		ids := make([][]int, len(ins))
		for i, in := range ins {
			ids[i] = v.Encode(p.TokensFor(in.Rec, tokenize.Text), p.P.MaxLen)
		}
		labels := predictLabels(trained.Model, ids)
		var pragC metrics.Confusion
		for i, in := range ins {
			pragC.Add(labels[i], in.Label)
		}
		cpr := p.EvalComPar(ins, dataset.TaskDirective)
		t.Rows = append(t.Rows,
			ClassifierRow{"PragFormer " + name, pragC.Report()},
			ClassifierRow{"ComPar " + name, cpr.Confusion.Report()})
		return cpr.ParseFailures, len(ins)
	}
	t.PolyParseFailures, _ = evalSuite(p.PolyBench(), "Poly")
	t.SPECParseFailures, _ = evalSuite(p.SPEC(), "SPEC-OMP")
	return t
}

// Print renders the table.
func (t Table11) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 11: Generality on PolyBench and SPEC-OMP held-out suites")
	fmt.Fprintf(w, "  %-24s %10s %8s %8s %10s\n", "", "Precision", "Recall", "F1", "Accuracy")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "  %-24s %10.2f %8.2f %8.2f %10.2f\n",
			r.Name, r.Report.Precision, r.Report.Recall, r.Report.F1, r.Report.Accuracy)
	}
	fmt.Fprintf(w, "  (ComPar parse failures: PolyBench %d, SPEC-OMP %d)\n",
		t.PolyParseFailures, t.SPECParseFailures)
}
