package serve

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded fixed-capacity LRU map. The engine keys predict
// results by the encoded id sequence and suggest results by the raw
// snippet, so repeat traffic short-circuits before ever reaching the
// dispatcher queue.
type lru[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry[K, V]
	items map[K]*list.Element
	// gen is the cache generation, bumped by reset on model reload. put
	// carries the generation its caller observed before computing the
	// value; a stale generation means the value came from a swapped-out
	// model and must not poison the fresh cache.
	gen uint64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// newLRU returns a cache holding up to capacity entries; capacity <= 0
// returns nil, and a nil *lru is a valid always-miss cache.
func newLRU[K comparable, V any](capacity int) *lru[K, V] {
	if capacity <= 0 {
		return nil
	}
	return &lru[K, V]{cap: capacity, order: list.New(), items: make(map[K]*list.Element)}
}

// get returns the cached value and promotes the entry.
func (c *lru[K, V]) get(key K) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[K, V]).val, true
}

// put inserts or refreshes an entry, evicting the least recently used one
// past capacity. gen is the generation the value was computed under;
// values from an older generation are dropped.
func (c *lru[K, V]) put(key K, val V, gen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry[K, V]{key: key, val: val})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[K, V]).key)
	}
}

// reset empties the cache and advances to generation gen (model reload:
// every cached result belongs to the swapped-out model).
func (c *lru[K, V]) reset(gen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen = gen
	c.order.Init()
	clear(c.items)
}

// len reports the resident entry count.
func (c *lru[K, V]) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
