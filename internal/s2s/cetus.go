package s2s

import (
	"pragformer/internal/dep"
	"pragformer/internal/pragma"
)

// Cetus models the Cetus S2S compiler: the most robust of the three (the
// paper reports "only Cetus managed to compile the examples successfully"),
// with real dependence analysis, but with documented pitfalls:
//
//   - explicit private(i) insertion for the loop variable, which developers
//     rarely write (hurting private-clause precision, Table 9);
//   - reduction recognition limited to compound-assignment forms (`s += e`),
//     missing `s = s + e` and fmax/fmin idioms (hurting recall, Table 10);
//   - a profitability threshold far below what developers apply, so tiny
//     loops still get directives (hurting directive precision, Table 8);
//   - always-static scheduling: unbalanced loops are never given
//     schedule(dynamic) (§1.1 example #2);
//   - a frontend that rejects `register`, `restrict`, `union` and unknown
//     typedef names outright (the Table 8–10 compile failures).
type Cetus struct{}

// Name implements Compiler.
func (Cetus) Name() string { return "Cetus" }

// minCetusTrip is the constant trip count below which Cetus declines to
// parallelize; deliberately lower than the human/profitability threshold
// used in corpus labeling, so Cetus still annotates unprofitable loops.
const minCetusTrip = 4

// Compile implements Compiler.
func (c Cetus) Compile(src string) (Result, error) {
	src = stripPragmas(src)
	if err := rejectTokens(src, c.Name(), map[string]bool{
		"register": true, "restrict": true, "union": true,
	}, false, true); err != nil {
		return Result{}, err
	}
	loop, funcs, err := parseSnippet(src)
	if err != nil {
		return Result{}, err
	}
	a := dep.AnalyzeLoop(loop, funcs)
	res := Result{Source: src, Reasons: a.Reasons}
	if !a.Parallelizable {
		return res, nil
	}
	if tc := a.Header.TripCount(); tc >= 0 && tc < minCetusTrip {
		res.Reasons = append(res.Reasons, "trip count below Cetus threshold")
		return res, nil
	}
	d := &pragma.Directive{ParallelFor: true}
	// Pitfall: explicit private for the loop variable.
	d.Private = append(d.Private, a.Header.Var)
	d.Private = append(d.Private, a.Private...)
	// Pitfall: only compound-assignment reductions survive Cetus's pattern
	// matcher; others make the loop look serial, so Cetus declines.
	for _, r := range a.Reductions {
		if compoundReductionOnly(src, r) {
			d.Reductions = append(d.Reductions, r)
		} else {
			res.Reasons = append(res.Reasons, "reduction form not recognized; loop left serial")
			return res, nil
		}
	}
	// Pitfall: no schedule(dynamic) for unbalanced loops; the default
	// static schedule is kept (printed explicitly like Cetus does).
	d.Schedule = pragma.ScheduleStatic
	res.Directive = d
	res.Source = annotate(d, src)
	return res, nil
}

// compoundReductionOnly reports whether the reduction for r.Vars appears
// only in compound-assignment form in the source (a textual check mirroring
// Cetus's syntactic pattern matcher).
func compoundReductionOnly(src string, r pragma.Reduction) bool {
	if r.Op == "max" || r.Op == "min" {
		return false
	}
	for _, v := range r.Vars {
		if !containsToken(src, v+" "+r.Op+"=") && !containsToken(src, v+" +=") {
			// Accept any compound op spelled with the variable.
			if !compoundAssignPresent(src, v, r.Op) {
				return false
			}
		}
	}
	return true
}

// compoundAssignPresent scans for `v op=` allowing arbitrary spacing.
func compoundAssignPresent(src, v, op string) bool {
	idx := 0
	for {
		j := indexFrom(src, v, idx)
		if j < 0 {
			return false
		}
		k := j + len(v)
		for k < len(src) && (src[k] == ' ' || src[k] == '\t') {
			k++
		}
		if k+len(op) < len(src) && src[k:k+len(op)] == op && src[k+len(op)] == '=' {
			// Ensure v is a whole token.
			if (j == 0 || !identChar(src[j-1])) && !identChar(src[j+len(v)]) {
				return true
			}
		}
		idx = j + 1
	}
}

func containsToken(src, sub string) bool { return indexFrom(src, sub, 0) >= 0 }

func indexFrom(s, sub string, from int) int {
	for i := from; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func identChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
