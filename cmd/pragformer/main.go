// Command pragformer trains, evaluates and applies the PragFormer model.
//
// Subcommands:
//
//	pragformer train -corpus open_omp.jsonl -task directive -model model.gob
//	pragformer eval  -corpus open_omp.jsonl -task directive -model model.gob
//	pragformer predict -model model.gob -vocab vocab.txt file.c
//	pragformer quantize -model model.gob -out model.pfq
//	pragformer scan -dir src/ -model model.gob -vocab vocab.txt -format sarif
//	pragformer bench-kernels
//
// Bench-kernels prints a scalar-vs-AVX2 ns/op table for the float64 and
// int8 matmul kernels at 64³/128³/256³ (see internal/tensor), the quick
// eyeball check for kernel regressions on a new host.
//
// Scan walks a C source tree, extracts every for-loop, dedupes by content
// hash, batch-advises through the directive/clause classifiers, and emits
// a JSON or SARIF 2.1.0 report (see internal/scan and DESIGN.md).
//
// Quantize converts a trained float artifact into the int8 inference
// backend (per-channel symmetric post-training quantization, PFQNT framed
// format); `serve` loads either format and `-backend int8` quantizes float
// artifacts on the fly.
//
// Train writes both the model weights and the vocabulary (one token per
// line) so predict can re-encode inputs identically; both artifacts are
// written atomically (temp file + rename), so a crash mid-save never
// corrupts an existing file.
//
// Long runs are crash-safe: `train -checkpoint run.ckpt` writes a resumable
// snapshot at every epoch end (tune with -checkpoint-every), SIGINT
// checkpoints and exits cleanly, and rerunning the same command with
// -resume continues the run — the resumed training is bit-identical to an
// uninterrupted one at the same -seed and -workers.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"pragformer/internal/core"
	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "eval":
		cmdEval(os.Args[2:])
	case "predict":
		cmdPredict(os.Args[2:])
	case "quantize":
		cmdQuantize(os.Args[2:])
	case "scan":
		cmdScan(os.Args[2:])
	case "bench-kernels":
		cmdBenchKernels(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pragformer {train|eval|predict|quantize|scan|bench-kernels} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pragformer:", err)
	os.Exit(1)
}

// checkpointFailure extracts the non-interrupt component of a (possibly
// joined) Run/Resume error: the checkpoint write failure that rode along
// with ErrInterrupted, or nil if the interrupt was clean.
func checkpointFailure(err error) error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range u.Unwrap() {
			if !errors.Is(e, train.ErrInterrupted) {
				return e
			}
		}
		return nil
	}
	if errors.Is(err, train.ErrInterrupted) {
		return nil
	}
	return err
}

func taskFromName(name string) dataset.Task {
	switch name {
	case "directive":
		return dataset.TaskDirective
	case "private":
		return dataset.TaskPrivate
	case "reduction":
		return dataset.TaskReduction
	}
	fatal(fmt.Errorf("unknown task %q (directive|private|reduction)", name))
	return 0
}

func splitFor(c *corpus.Corpus, task dataset.Task, seed int64) dataset.Split {
	if task == dataset.TaskDirective {
		return dataset.Directive(c, dataset.Options{Seed: seed})
	}
	return dataset.Clause(c, task, dataset.Options{Seed: seed, Balance: true})
}

func encodeAll(ins []dataset.Instance, v *tokenize.Vocab, maxLen int) []train.Example {
	out := make([]train.Example, len(ins))
	for i, in := range ins {
		toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
		if err != nil {
			fatal(err)
		}
		out[i] = train.Example{IDs: v.Encode(toks, maxLen), Label: in.Label}
	}
	return out
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	var (
		corpusPath = fs.String("corpus", "open_omp.jsonl", "corpus JSONL path")
		taskName   = fs.String("task", "directive", "task: directive|private|reduction")
		modelPath  = fs.String("model", "pragformer.gob", "output model path")
		vocabPath  = fs.String("vocab", "vocab.txt", "output vocabulary path")
		epochs     = fs.Int("epochs", 10, "training epochs")
		d          = fs.Int("d", 64, "model dimension")
		heads      = fs.Int("heads", 4, "attention heads")
		layers     = fs.Int("layers", 2, "encoder layers")
		lr         = fs.Float64("lr", 5e-4, "learning rate")
		seed       = fs.Int64("seed", 1, "seed")
		maxTrain   = fs.Int("max-train", 0, "cap training examples (0 = all)")
		workers    = fs.Int("workers", 1, "data-parallel training workers (<=1 sequential)")
		ckptPath   = fs.String("checkpoint", "", "write a resumable checkpoint here at epoch ends (SIGINT checkpoints then exits)")
		ckptEvery  = fs.Int("checkpoint-every", 1, "epochs between checkpoint writes")
		resume     = fs.Bool("resume", false, "resume the run captured in -checkpoint")
	)
	_ = fs.Parse(args)
	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	c, err := corpus.LoadFile(*corpusPath)
	if err != nil {
		fatal(err)
	}
	task := taskFromName(*taskName)
	split := splitFor(c, task, *seed)

	var seqs [][]string
	for _, in := range split.Train {
		toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
		if err != nil {
			fatal(err)
		}
		seqs = append(seqs, toks)
	}
	v := tokenize.BuildVocab(seqs, 1)

	trainSet := encodeAll(split.Train, v, core.DefaultMaxLen)
	validSet := encodeAll(split.Valid, v, core.DefaultMaxLen)
	if *maxTrain > 0 && len(trainSet) > *maxTrain {
		trainSet = trainSet[:*maxTrain]
	}

	m, err := core.New(core.Config{
		Vocab: v.Size(), MaxLen: core.DefaultMaxLen, D: *d, Heads: *heads, Layers: *layers, Dropout: 0.1,
	}, *seed)
	if err != nil {
		fatal(err)
	}

	cfg := train.Config{
		Epochs: *epochs, BatchSize: 16, LR: *lr, ClipNorm: 1, Seed: *seed,
		Workers:         *workers,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Progress:        func(s string) { fmt.Println(" ", s) },
	}
	if *ckptPath != "" {
		// SIGINT is a request to checkpoint at the next epoch boundary and
		// exit; a second SIGINT falls through to the default hard kill.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		interrupt := make(chan struct{})
		cfg.Interrupt = interrupt
		go func() {
			<-sig
			signal.Stop(sig)
			fmt.Println("\ninterrupt: writing checkpoint at epoch end, then exiting (^C again to kill)")
			close(interrupt)
		}()
	}

	fmt.Printf("training %s task: %d train / %d valid, vocab %d\n",
		task, len(trainSet), len(validSet), v.Size())
	var hist train.History
	if *resume {
		hist, err = train.Resume(m, trainSet, validSet, cfg)
	} else {
		hist, err = train.Run(m, trainSet, validSet, cfg)
	}
	if errors.Is(err, train.ErrInterrupted) {
		// The interrupt error may carry a joined checkpoint-write failure;
		// claiming "checkpoint saved" would then be exactly the silent data
		// loss this subsystem exists to prevent.
		if werr := checkpointFailure(err); werr != nil {
			fatal(fmt.Errorf("interrupted, but the final checkpoint write failed: %w (an earlier checkpoint at %s may still be resumable)", werr, *ckptPath))
		}
		fmt.Printf("interrupted after epoch %d/%d; checkpoint saved to %s — rerun with -resume to continue\n",
			len(hist.Epochs), *epochs, *ckptPath)
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("best epoch %d: valid accuracy %.3f\n",
		hist.BestEpoch+1, hist.Best().ValidAccuracy)

	if err := m.SaveFile(*modelPath); err != nil {
		fatal(err)
	}
	if err := v.SaveFile(*vocabPath); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", *modelPath, *vocabPath)
}

func cmdEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	var (
		corpusPath = fs.String("corpus", "open_omp.jsonl", "corpus JSONL path")
		taskName   = fs.String("task", "directive", "task")
		modelPath  = fs.String("model", "pragformer.gob", "model path")
		vocabPath  = fs.String("vocab", "vocab.txt", "vocabulary path")
		seed       = fs.Int64("seed", 1, "split seed (must match training)")
		workers    = fs.Int("workers", 1, "parallel evaluation workers")
	)
	_ = fs.Parse(args)

	c, err := corpus.LoadFile(*corpusPath)
	if err != nil {
		fatal(err)
	}
	m, err := core.LoadFile(*modelPath)
	if err != nil {
		fatal(err)
	}
	v, err := tokenize.LoadVocabFile(*vocabPath)
	if err != nil {
		fatal(err)
	}
	split := splitFor(c, taskFromName(*taskName), *seed)
	testSet := encodeAll(split.Test, v, m.Cfg.MaxLen)
	loss, acc := train.EvaluateParallel(m, testSet, *workers)
	fmt.Printf("test: %d examples, loss %.4f, accuracy %.3f\n", len(testSet), loss, acc)
}

func cmdQuantize(args []string) {
	fs := flag.NewFlagSet("quantize", flag.ExitOnError)
	var (
		modelPath = fs.String("model", "pragformer.gob", "input float model (pragformer train artifact)")
		outPath   = fs.String("out", "", "output PFQNT artifact path (default: input with a .pfq extension)")
	)
	_ = fs.Parse(args)
	if *outPath == "" {
		*outPath = strings.TrimSuffix(*modelPath, filepath.Ext(*modelPath)) + ".pfq"
	}
	m, err := core.LoadFile(*modelPath)
	if err != nil {
		fatal(err)
	}
	q, err := core.Quantize(m)
	if err != nil {
		fatal(err)
	}
	if err := q.SaveFile(*outPath); err != nil {
		fatal(err)
	}
	in, err := os.Stat(*modelPath)
	if err != nil {
		fatal(err)
	}
	out, err := os.Stat(*outPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("quantized %s (%d bytes) -> %s (%d bytes, %.1fx smaller)\n",
		*modelPath, in.Size(), *outPath, out.Size(), float64(in.Size())/float64(out.Size()))
}

func cmdPredict(args []string) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	var (
		modelPath = fs.String("model", "pragformer.gob", "model path")
		vocabPath = fs.String("vocab", "vocab.txt", "vocabulary path")
	)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("predict needs exactly one C file argument"))
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := core.LoadFile(*modelPath)
	if err != nil {
		fatal(err)
	}
	v, err := tokenize.LoadVocabFile(*vocabPath)
	if err != nil {
		fatal(err)
	}
	toks, err := tokenize.Extract(string(src), tokenize.Text)
	if err != nil {
		fatal(err)
	}
	p := m.Predict(v.Encode(toks, m.Cfg.MaxLen))
	verdict := "no OpenMP directive needed"
	if p > 0.5 {
		verdict = "suggest #pragma omp parallel for"
	}
	fmt.Printf("p(parallelizable) = %.3f → %s\n", p, verdict)
}
