package s2s

import (
	"fmt"
)

// ComPar models the ComPar multi-compiler (Mosseri et al. 2020): it runs
// Par4All, AutoPar and Cetus, and combines their outputs, choosing the
// "best" directive — the one that parallelizes with the richest clause set.
// A snippet fails to compile only when every member compiler fails, which
// in practice means failure tracks Cetus's frontend (the paper: "only Cetus
// managed to compile the examples successfully").
type ComPar struct {
	// Members are the combined compilers; NewComPar wires the default trio.
	Members []Compiler
}

// NewComPar returns the default ComPar configuration.
func NewComPar() *ComPar {
	return &ComPar{Members: []Compiler{Par4All{}, AutoPar{}, Cetus{}}}
}

// Name implements Compiler.
func (*ComPar) Name() string { return "ComPar" }

// MemberVerdict is one member compiler's outcome on a snippet. Err is the
// member's compile failure; Result is meaningful only when Err is nil.
type MemberVerdict struct {
	Compiler string
	Result   Result
	Err      error
}

// CompileEach runs every member compiler and returns the per-member
// verdicts in Members order — the evidence form the advisor attaches to
// corroborated suggestions, where "which compiler parallelized" matters,
// not just the combined best.
func (c *ComPar) CompileEach(src string) []MemberVerdict {
	out := make([]MemberVerdict, 0, len(c.Members))
	for _, m := range c.Members {
		res, err := m.Compile(src)
		out = append(out, MemberVerdict{Compiler: m.Name(), Result: res, Err: err})
	}
	return out
}

// Compile implements Compiler: runs all members and keeps the best result.
func (c *ComPar) Compile(src string) (Result, error) {
	var (
		best    Result
		bestSet bool
		lastErr error
	)
	for _, v := range c.CompileEach(src) {
		if v.Err != nil {
			lastErr = v.Err
			continue
		}
		if !bestSet || score(v.Result) > score(best) {
			best = v.Result
			bestSet = true
		}
	}
	if !bestSet {
		return Result{}, fmt.Errorf("%w: ComPar: all member compilers failed (%v)", ErrParse, lastErr)
	}
	return best, nil
}

// score ranks results: any directive beats none; richer clause sets win.
func score(r Result) int {
	if r.Directive == nil {
		return 0
	}
	s := 10
	s += len(r.Directive.Private)
	s += 2 * len(r.Directive.Reductions)
	if r.Directive.Schedule != 0 {
		s++
	}
	return s
}
