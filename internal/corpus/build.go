package corpus

import (
	"strconv"

	"pragformer/internal/cast"
)

// Tiny AST-construction helpers used by the snippet templates. They keep
// template code close to the C it produces.

func id(name string) *cast.Ident { return &cast.Ident{Name: name} }

func lit(n int) *cast.IntLit { return &cast.IntLit{Text: strconv.Itoa(n)} }

func flit(text string) *cast.FloatLit { return &cast.FloatLit{Text: text} }

func str(text string) *cast.StrLit { return &cast.StrLit{Text: "\"" + text + "\""} }

func bin(op string, l, r cast.Expr) *cast.BinaryOp { return &cast.BinaryOp{Op: op, L: l, R: r} }

func asg(l, r cast.Expr) *cast.Assign { return &cast.Assign{Op: "=", L: l, R: r} }

func opAsg(op string, l, r cast.Expr) *cast.Assign { return &cast.Assign{Op: op, L: l, R: r} }

func aref(arr cast.Expr, idx ...cast.Expr) cast.Expr {
	e := arr
	for _, ix := range idx {
		e = &cast.ArrayRef{Arr: e, Index: ix}
	}
	return e
}

func call(name string, args ...cast.Expr) *cast.FuncCall {
	return &cast.FuncCall{Fun: id(name), Args: args}
}

func inc(v string) *cast.UnaryOp {
	return &cast.UnaryOp{Op: "++", X: id(v), Postfix: true}
}

func dec(v string) *cast.UnaryOp {
	return &cast.UnaryOp{Op: "--", X: id(v), Postfix: true}
}

func es(e cast.Expr) *cast.ExprStmt { return &cast.ExprStmt{X: e} }

func block(stmts ...cast.Stmt) *cast.Block { return &cast.Block{Stmts: stmts} }

// forUp builds `for (v = lo; v < hi; v++) body`.
func forUp(v string, lo, hi cast.Expr, body cast.Stmt) *cast.For {
	return &cast.For{
		Init: es(asg(id(v), lo)),
		Cond: bin("<", id(v), hi),
		Post: inc(v),
		Body: body,
	}
}

// forUpIncl builds `for (v = lo; v <= hi; v++) body`.
func forUpIncl(v string, lo, hi cast.Expr, body cast.Stmt) *cast.For {
	f := forUp(v, lo, hi, body)
	f.Cond = bin("<=", id(v), hi)
	return f
}

// forDecl builds `for (int v = lo; v < hi; v++) body`.
func forDecl(v string, lo, hi cast.Expr, body cast.Stmt) *cast.For {
	return &cast.For{
		Init: &cast.DeclStmt{Decls: []*cast.Decl{{
			Type: &cast.TypeSpec{Names: []string{"int"}},
			Name: v,
			Init: lo,
		}}},
		Cond: bin("<", id(v), hi),
		Post: inc(v),
		Body: body,
	}
}

// declStmt builds `type name = init;`.
func declStmt(typ, name string, init cast.Expr) *cast.DeclStmt {
	return &cast.DeclStmt{Decls: []*cast.Decl{{
		Type: &cast.TypeSpec{Names: []string{typ}},
		Name: name,
		Init: init,
	}}}
}

// funcDef builds a function definition with int/double scalar params.
func funcDef(retType, name string, params []*cast.Decl, body ...cast.Stmt) *cast.FuncDef {
	return &cast.FuncDef{
		ReturnType: &cast.TypeSpec{Names: []string{retType}},
		Name:       name,
		Params:     params,
		Body:       block(body...),
	}
}

func param(typ, name string, ptr int) *cast.Decl {
	return &cast.Decl{Type: &cast.TypeSpec{Names: []string{typ}, Ptr: ptr}, Name: name}
}
