package train

import (
	"math"
	"math/rand"
	"testing"

	"pragformer/internal/nn"
)

// refModel is a deterministic toy Model without the BatchPredictor
// capability, standing in for third-party models on the fallback path.
type refModel struct{ bias float64 }

func (r refModel) Params() []*nn.Param { return nil }
func (r refModel) LossAndBackward(ids []int, label bool) float64 {
	return r.Loss(ids, label)
}
func (r refModel) prob(ids []int) float64 {
	s := r.bias
	for _, id := range ids {
		s += float64(id%7) * 0.13
	}
	return 1 / (1 + math.Exp(-s+2))
}
func (r refModel) Loss(ids []int, label bool) float64 {
	p := r.prob(ids)
	if !label {
		p = 1 - p
	}
	return -math.Log(math.Max(p, 1e-12))
}
func (r refModel) PredictLabel(ids []int) bool { return r.prob(ids) > 0.5 }

// batchRefModel adds PredictBatchProbs to refModel, delegating to the same
// per-example probabilities — so the batched and fallback evaluator paths
// must agree bit-for-bit.
type batchRefModel struct{ refModel }

func (b batchRefModel) PredictBatchProbs(ids [][]int) [][2]float64 {
	out := make([][2]float64, len(ids))
	for i, seq := range ids {
		p := b.prob(seq)
		out[i] = [2]float64{1 - p, p}
	}
	return out
}

// TestEvaluateBatchParity checks the batched evaluator against the
// per-example loop across set sizes spanning several evalChunk boundaries.
func TestEvaluateBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{0, 1, evalChunk - 1, evalChunk, evalChunk + 1, 3*evalChunk + 5} {
		set := make([]Example, n)
		for i := range set {
			ids := make([]int, 1+rng.Intn(20))
			for j := range ids {
				ids[j] = rng.Intn(50)
			}
			set[i] = Example{IDs: ids, Label: rng.Intn(2) == 0}
		}
		m := refModel{bias: 0.4}
		wantLoss, wantAcc := Evaluate(m, set)
		gotLoss, gotAcc := Evaluate(batchRefModel{m}, set)
		if gotLoss != wantLoss || gotAcc != wantAcc {
			t.Errorf("n=%d: batched Evaluate (%v, %v) != fallback (%v, %v)",
				n, gotLoss, gotAcc, wantLoss, wantAcc)
		}
		// The parallel evaluator shards but must keep the same totals up to
		// reduction order; with identical shard sums it is exact.
		pLoss, pAcc := EvaluateParallel(batchRefModel{m}, set, 3)
		if math.Abs(pLoss-wantLoss) > 1e-12 || pAcc != wantAcc {
			t.Errorf("n=%d: EvaluateParallel (%v, %v) != (%v, %v)", n, pLoss, pAcc, wantLoss, wantAcc)
		}
	}
}
