package train

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"pragformer/internal/nn"
	"pragformer/internal/tensor"
)

// quadModel is a 1-parameter model with loss (w - target)²; its analytic
// minimum makes optimizer behaviour easy to verify.
type quadModel struct {
	w      *nn.Param
	target float64
}

func newQuad(target float64) *quadModel {
	return &quadModel{
		w:      &nn.Param{Name: "w", W: tensor.New(1, 1), Grad: tensor.New(1, 1)},
		target: target,
	}
}

func (q *quadModel) Params() []*nn.Param { return []*nn.Param{q.w} }

func (q *quadModel) LossAndBackward(ids []int, label bool) float64 {
	d := q.w.W.Data[0] - q.target
	q.w.Grad.Data[0] += 2 * d
	return d * d
}

func (q *quadModel) Loss(ids []int, label bool) float64 {
	d := q.w.W.Data[0] - q.target
	return d * d
}

func (q *quadModel) PredictLabel(ids []int) bool { return q.w.W.Data[0] > q.target/2 }

func TestAdamWConverges(t *testing.T) {
	q := newQuad(3)
	opt := NewAdamW(0.1)
	opt.WeightDecay = 0
	for i := 0; i < 500; i++ {
		ZeroGrads(q.Params())
		q.LossAndBackward(nil, false)
		opt.Step(q.Params(), 1)
	}
	if math.Abs(q.w.W.Data[0]-3) > 0.05 {
		t.Fatalf("w = %g, want ≈ 3", q.w.W.Data[0])
	}
}

func TestWeightDecayPullsTowardZero(t *testing.T) {
	// With no gradient signal, decay alone should shrink the weight.
	p := &nn.Param{Name: "w", W: tensor.FromSlice(1, 1, []float64{5}), Grad: tensor.New(1, 1)}
	opt := NewAdamW(0.01)
	for i := 0; i < 200; i++ {
		opt.Step([]*nn.Param{p}, 1)
	}
	if math.Abs(p.W.Data[0]) >= 5 {
		t.Fatalf("decay did not shrink weight: %g", p.W.Data[0])
	}
	// NoDecay params stay put under zero gradient.
	p2 := &nn.Param{Name: "b", W: tensor.FromSlice(1, 1, []float64{5}), Grad: tensor.New(1, 1), NoDecay: true}
	opt2 := NewAdamW(0.01)
	opt2.Step([]*nn.Param{p2}, 1)
	if p2.W.Data[0] != 5 {
		t.Fatalf("NoDecay param moved: %g", p2.W.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := &nn.Param{Name: "w", W: tensor.New(1, 2), Grad: tensor.FromSlice(1, 2, []float64{3, 4})}
	norm := ClipGradNorm([]*nn.Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %g", norm)
	}
	got := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("post-clip norm = %g", got)
	}
	// Below the threshold, gradients are untouched.
	p2 := &nn.Param{Name: "w", W: tensor.New(1, 1), Grad: tensor.FromSlice(1, 1, []float64{0.5})}
	ClipGradNorm([]*nn.Param{p2}, 1)
	if p2.Grad.Data[0] != 0.5 {
		t.Error("small gradient was modified")
	}
}

func TestWarmupScale(t *testing.T) {
	if WarmupScale(0, 10) != 0.1 {
		t.Errorf("scale(0,10) = %g", WarmupScale(0, 10))
	}
	if WarmupScale(9, 10) != 1 {
		t.Errorf("scale(9,10) = %g", WarmupScale(9, 10))
	}
	if WarmupScale(100, 10) != 1 || WarmupScale(5, 0) != 1 {
		t.Error("post-warmup scale must be 1")
	}
}

// sepModel is a linear model over 2 features used to exercise Fit.
type sepModel struct {
	w *nn.Param
}

func (s *sepModel) Params() []*nn.Param { return []*nn.Param{s.w} }

func (s *sepModel) logit(ids []int) float64 {
	z := 0.0
	for _, id := range ids {
		z += s.w.W.Data[id%2] * float64(1+id%3)
	}
	return z
}

func (s *sepModel) LossAndBackward(ids []int, label bool) float64 {
	p := 1 / (1 + math.Exp(-s.logit(ids)))
	y := 0.0
	if label {
		y = 1
	}
	g := p - y
	for _, id := range ids {
		s.w.Grad.Data[id%2] += g * float64(1+id%3)
	}
	return -(y*math.Log(math.Max(p, 1e-12)) + (1-y)*math.Log(math.Max(1-p, 1e-12)))
}

func (s *sepModel) Loss(ids []int, label bool) float64 {
	p := 1 / (1 + math.Exp(-s.logit(ids)))
	if label {
		return -math.Log(math.Max(p, 1e-12))
	}
	return -math.Log(math.Max(1-p, 1e-12))
}

func (s *sepModel) PredictLabel(ids []int) bool { return s.logit(ids) > 0 }

func makeSep() (*sepModel, []Example, []Example) {
	m := &sepModel{w: &nn.Param{Name: "w", W: tensor.New(1, 2), Grad: tensor.New(1, 2)}}
	rng := rand.New(rand.NewSource(4))
	var trainSet, validSet []Example
	for i := 0; i < 80; i++ {
		pos := Example{IDs: []int{0, 0, 2}, Label: true}  // feature 0 heavy
		neg := Example{IDs: []int{1, 1, 3}, Label: false} // feature 1 heavy
		if rng.Intn(10) == 0 {
			pos, neg = neg, pos // label noise
		}
		if i < 60 {
			trainSet = append(trainSet, pos, neg)
		} else {
			validSet = append(validSet, pos, neg)
		}
	}
	return m, trainSet, validSet
}

func TestFitLearns(t *testing.T) {
	m, trainSet, validSet := makeSep()
	var progressLines []string
	h := Fit(m, trainSet, validSet, Config{
		Epochs: 8, BatchSize: 8, LR: 0.05, Seed: 1,
		Progress: func(s string) { progressLines = append(progressLines, s) },
	})
	if len(h.Epochs) != 8 {
		t.Fatalf("epochs = %d", len(h.Epochs))
	}
	if h.Epochs[7].TrainLoss >= h.Epochs[0].TrainLoss {
		t.Errorf("train loss did not fall: %v → %v", h.Epochs[0].TrainLoss, h.Epochs[7].TrainLoss)
	}
	best := h.Best()
	if best.ValidAccuracy < 0.8 {
		t.Errorf("best valid accuracy = %.3f", best.ValidAccuracy)
	}
	if len(progressLines) != 8 {
		t.Errorf("progress lines = %d", len(progressLines))
	}
}

func TestFitDeterministic(t *testing.T) {
	run := func() History {
		m, trainSet, validSet := makeSep()
		return Fit(m, trainSet, validSet, Config{Epochs: 4, BatchSize: 4, LR: 0.05, Seed: 3})
	}
	h1, h2 := run(), run()
	for i := range h1.Epochs {
		if h1.Epochs[i].TrainLoss != h2.Epochs[i].TrainLoss {
			t.Fatal("training not deterministic under equal seeds")
		}
	}
}

func TestBestEpochSelection(t *testing.T) {
	h := History{Epochs: []EpochStats{
		{Epoch: 0, ValidLoss: 0.9},
		{Epoch: 1, ValidLoss: 0.4},
		{Epoch: 2, ValidLoss: 0.6},
	}}
	// Reconstruct the selection rule.
	best := 0
	lo := math.Inf(1)
	for i, e := range h.Epochs {
		if e.ValidLoss < lo {
			lo = e.ValidLoss
			best = i
		}
	}
	if best != 1 {
		t.Fatalf("best = %d", best)
	}
}

func TestHistoryString(t *testing.T) {
	h := History{Epochs: []EpochStats{{Epoch: 0, TrainLoss: 1, ValidLoss: 2, ValidAccuracy: 0.5}}}
	if !strings.Contains(h.String(), "epoch 0") {
		t.Errorf("s = %q", h.String())
	}
	var empty History
	if empty.Best() != (EpochStats{}) {
		t.Error("empty history Best should be zero")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m, _, _ := makeSep()
	l, a := Evaluate(m, nil)
	if l != 0 || a != 0 {
		t.Fatal("empty evaluate should be zero")
	}
}

func TestSnapshotCalled(t *testing.T) {
	m, trainSet, validSet := makeSep()
	var calls int
	Fit(m, trainSet, validSet, Config{Epochs: 3, BatchSize: 8, LR: 0.05, Seed: 1,
		Snapshot: func(epoch int, stats EpochStats) { calls++ }})
	if calls != 3 {
		t.Fatalf("snapshot calls = %d", calls)
	}
}

func TestShufflerPermutes(t *testing.T) {
	s := newShuffler(1)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int{}, xs...)
	s.shuffle(xs)
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != len(orig) {
		t.Fatal("shuffle lost elements")
	}
	same := true
	for i := range xs {
		if xs[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Error("shuffle did not permute")
	}
}
