package s2s

import (
	"fmt"

	"pragformer/internal/cast"
	"pragformer/internal/dep"
	"pragformer/internal/pragma"
)

// Par4All models the Par4All compiler as the paper observed it: on this
// corpus it fails to compile nearly everything ("only Cetus managed to
// compile the examples successfully"). Its frontend accepts only
// self-contained array loops: no function calls of any kind, no structs,
// no typedefs, no floating literals with suffixes, no nested declarations.
type Par4All struct{}

// Name implements Compiler.
func (Par4All) Name() string { return "Par4All" }

// Compile implements Compiler.
func (c Par4All) Compile(src string) (Result, error) {
	src = stripPragmas(src)
	if err := rejectTokens(src, c.Name(), map[string]bool{
		"register": true, "restrict": true, "typedef": true, "goto": true,
		"switch": true, "do": true, "while": true, "static": true,
	}, true, true); err != nil {
		return Result{}, err
	}
	loop, funcs, err := parseSnippet(src)
	if err != nil {
		return Result{}, err
	}
	// Any call — even a math builtin — defeats Par4All's interprocedural
	// phase on bare snippets.
	var hasCall bool
	cast.Walk(loop, func(n cast.Node) bool {
		if _, ok := n.(*cast.FuncCall); ok {
			hasCall = true
			return false
		}
		return true
	})
	if hasCall || len(funcs) > 0 {
		return Result{}, fmt.Errorf("%w: Par4All: unresolved call in region", ErrParse)
	}
	a := dep.AnalyzeLoop(loop, nil)
	res := Result{Source: src, Reasons: a.Reasons}
	if !a.Parallelizable {
		return res, nil
	}
	if len(a.Reductions) > 0 || len(a.Private) > 0 {
		// Par4All privatization on bare snippets is unreliable; it declines.
		res.Reasons = append(res.Reasons, "privatization phase declined the loop")
		return res, nil
	}
	d := &pragma.Directive{ParallelFor: true}
	res.Directive = d
	res.Source = annotate(d, src)
	return res, nil
}
