// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -mode fast                  # all experiments, small scale
//	experiments -mode full                  # paper-scale corpus and model
//	experiments -mode full -exp table8      # one experiment
//	experiments -mode full -checkpoint-dir ck/  # durable: survives restarts
//	experiments -list                       # list experiment names
//
// With -checkpoint-dir, every model training run checkpoints per epoch;
// rerunning the same command after a crash or kill resumes each model
// where it stopped and loads already-finished ones, so regenerating the
// paper tables is restartable end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pragformer/internal/experiments"
)

func main() {
	var (
		mode    = flag.String("mode", "fast", "scale: fast|full")
		exp     = flag.String("exp", "all", "experiment name, comma-separated list, or 'all'")
		seed    = flag.Int64("seed", 1, "pipeline seed")
		workers = flag.Int("workers", 1, "data-parallel training workers (<=1 sequential)")
		ckDir   = flag.String("checkpoint-dir", "", "checkpoint each model training here; reruns resume/restore")
		tree    = flag.String("scantree", "examples/scantree", "fixture tree for the agreement study (empty: corpus only)")
		quiet   = flag.Bool("q", false, "suppress progress output")
		list    = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names {
			fmt.Println(n)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Workers: *workers, CheckpointDir: *ckDir, ScanTree: *tree}
	if *ckDir != "" {
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	switch *mode {
	case "fast":
		cfg.Mode = experiments.Fast
	case "full":
		cfg.Mode = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if !*quiet {
		start := time.Now()
		cfg.Progress = func(s string) {
			fmt.Fprintf(os.Stderr, "[%8s] %s\n", time.Since(start).Round(time.Second), s)
		}
	}

	p := experiments.NewPipeline(cfg)
	var err error
	if *exp == "all" {
		err = p.RunAll(os.Stdout)
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if err = p.Run(strings.TrimSpace(name), os.Stdout); err != nil {
				break
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
