//go:build !race

package core

// raceEnabled mirrors the race build tag so allocation-count gates can
// skip under -race, where instrumentation changes escape analysis and
// inflates allocs/op.
const raceEnabled = false
