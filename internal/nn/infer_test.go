package nn

import (
	"math/rand"
	"testing"

	"pragformer/internal/tensor"
)

// randMat fills a fresh rows×cols matrix with N(0,1) entries.
func randMat(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	return tensor.New(rows, cols).Randn(rng, 1)
}

func sameData(t *testing.T, name string, got, want *tensor.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("%s: element %d: %v != %v", name, i, v, want.Data[i])
		}
	}
}

// TestApplyIntoParity checks the cache-free forwards against the training
// forwards bit-for-bit on the layer level.
func TestApplyIntoParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randMat(rng, 7, 16)

	l := NewLinear("l", 16, 12, rng)
	want, _ := l.Forward(x)
	got := tensor.New(7, 12)
	l.ApplyInto(got, x)
	sameData(t, "Linear.ApplyInto", got, want)

	ln := NewLayerNorm("ln", 16)
	ln.Gamma.W.Randn(rng, 1)
	ln.Beta.W.Randn(rng, 1)
	wantLN, _ := ln.Forward(x)
	gotLN := tensor.New(7, 16)
	ln.ApplyInto(gotLN, x)
	sameData(t, "LayerNorm.ApplyInto", gotLN, wantLN)

	wantR, _ := ReLU(x)
	gotR := x.Clone()
	ReLUInPlace(gotR)
	sameData(t, "ReLUInPlace", gotR, wantR)
}

// TestInferBatchParity runs a block over two stacked sequences and checks
// the ragged-batch forward (and its CLS-pruned variant) against per-sequence
// training forwards.
func TestInferBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const d, heads, ff = 16, 4, 32
	blk := NewEncoderBlock("b", d, heads, ff, 0.1, rng)

	xa := randMat(rng, 5, d)
	xb := randMat(rng, 9, d)
	stacked := tensor.New(14, d)
	copy(stacked.Data[:5*d], xa.Data)
	copy(stacked.Data[5*d:], xb.Data)
	offs := []int{0, 5, 14}

	wantA, _ := blk.Forward(xa, false, nil)
	wantB, _ := blk.Forward(xb, false, nil)

	out := blk.InferBatch(stacked, offs)
	defer tensor.PutMatrix(out)
	for i := 0; i < 5; i++ {
		for j := 0; j < d; j++ {
			if out.At(i, j) != wantA.At(i, j) {
				t.Fatalf("InferBatch seq A row %d col %d: %v != %v", i, j, out.At(i, j), wantA.At(i, j))
			}
		}
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < d; j++ {
			if out.At(5+i, j) != wantB.At(i, j) {
				t.Fatalf("InferBatch seq B row %d col %d: %v != %v", i, j, out.At(5+i, j), wantB.At(i, j))
			}
		}
	}

	cls := blk.InferCLS(stacked, offs)
	defer tensor.PutMatrix(cls)
	for j := 0; j < d; j++ {
		if cls.At(0, j) != wantA.At(0, j) {
			t.Fatalf("InferCLS seq A col %d: %v != %v", j, cls.At(0, j), wantA.At(0, j))
		}
		if cls.At(1, j) != wantB.At(0, j) {
			t.Fatalf("InferCLS seq B col %d: %v != %v", j, cls.At(1, j), wantB.At(0, j))
		}
	}
}
