package scan

import (
	"encoding/json"
	"fmt"
)

// SARIF 2.1.0 rendering, so scan results plug into code-scanning UIs
// (GitHub code scanning, VS Code SARIF viewers). The mapping:
//
//   - every occurrence of a loop the advisor wants parallelized becomes a
//     result under rule PF1001, carrying the suggested directive in the
//     message and the loop's content hash in partialFingerprints (the
//     stable identity SARIF consumers use to track findings across scans);
//   - loops that already carry a pragma surface as PF1002 notes;
//   - skipped files become toolExecutionNotifications on the invocation,
//     with the parse position when one is known.
//
// Negative verdicts produce no results — SARIF reports findings, and "no
// directive needed" is the quiet default.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"

	// RuleParallelize identifies "loop should carry an OpenMP directive"
	// results.
	RuleParallelize = "PF1001"
	// RuleAnnotated identifies "loop already annotated" notes.
	RuleAnnotated = "PF1002"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool        sarifTool         `json:"tool"`
	Invocations []sarifInvocation `json:"invocations"`
	Results     []sarifResult     `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifInvocation struct {
	ExecutionSuccessful bool                `json:"executionSuccessful"`
	Notifications       []sarifNotification `json:"toolExecutionNotifications,omitempty"`
}

type sarifNotification struct {
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders the report as a SARIF 2.1.0 log. Like Stable JSON, the
// output carries no probabilities or cache accounting, so agreeing
// backends produce byte-identical SARIF.
func (r *Report) SARIF() ([]byte, error) {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name: "pragformer",
			Rules: []sarifRule{
				{ID: RuleParallelize, ShortDescription: sarifMessage{
					Text: "Loop is a candidate for an OpenMP parallel-for directive"}},
				{ID: RuleAnnotated, ShortDescription: sarifMessage{
					Text: "Loop already carries an OpenMP pragma"}},
			},
		}},
		Results: []sarifResult{},
	}
	inv := sarifInvocation{ExecutionSuccessful: true}
	for _, skip := range r.Skips {
		n := sarifNotification{
			Level:   "warning",
			Message: sarifMessage{Text: fmt.Sprintf("file skipped: %s", skip.Reason)},
		}
		if skip.Line > 0 {
			n.Locations = []sarifLocation{location(skip.File, skip.Line, skip.Col)}
		} else {
			n.Locations = []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: skip.File}}}}
		}
		inv.Notifications = append(inv.Notifications, n)
	}
	run.Invocations = []sarifInvocation{inv}

	for _, l := range r.Loops {
		switch {
		case l.Suggestion != nil && l.Suggestion.Parallelize:
			msg := fmt.Sprintf("suggest `%s` (%s)", l.Suggestion.Directive, l.Suggestion.Confidence)
			for _, occ := range l.Occurrences {
				run.Results = append(run.Results, sarifResult{
					RuleID:              RuleParallelize,
					Level:               "note",
					Message:             sarifMessage{Text: msg + occContext(occ)},
					Locations:           []sarifLocation{location(occ.File, occ.Line, occ.Col)},
					PartialFingerprints: map[string]string{"pragformer/loopHash": l.Hash},
				})
			}
		case l.Annotated:
			for _, occ := range l.Occurrences {
				run.Results = append(run.Results, sarifResult{
					RuleID:              RuleAnnotated,
					Level:               "none",
					Message:             sarifMessage{Text: fmt.Sprintf("loop already annotated: `#%s`", occ.Pragma)},
					Locations:           []sarifLocation{location(occ.File, occ.Line, occ.Col)},
					PartialFingerprints: map[string]string{"pragformer/loopHash": l.Hash},
				})
			}
		}
	}

	log := sarifLog{Schema: sarifSchema, Version: sarifVersion, Runs: []sarifRun{run}}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func occContext(occ Occurrence) string {
	if occ.Function == "" {
		return ""
	}
	return fmt.Sprintf(" in function %s", occ.Function)
}

func location(file string, line, col int) sarifLocation {
	loc := sarifLocation{PhysicalLocation: sarifPhysicalLocation{
		ArtifactLocation: sarifArtifactLocation{URI: file},
	}}
	if line > 0 {
		loc.PhysicalLocation.Region = &sarifRegion{StartLine: line, StartColumn: col}
	}
	return loc
}
