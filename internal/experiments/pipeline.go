// Package experiments reproduces every table and figure in the paper's
// evaluation (§5). A Pipeline caches the expensive artifacts — generated
// corpus, splits, vocabularies, trained PragFormer/BoW models — so running
// the full suite trains each model exactly once. Two modes exist: Fast
// (small corpus and model, for tests and benchmarks) and Full (paper-scale
// corpus with a CPU-sized transformer, for cmd/experiments).
package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"pragformer/internal/bow"
	"pragformer/internal/ckpt"
	"pragformer/internal/core"
	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/metrics"
	"pragformer/internal/nn"
	"pragformer/internal/s2s"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

// Mode selects experiment scale.
type Mode int

const (
	// Fast is the test/bench scale: small corpus, small model.
	Fast Mode = iota
	// Full is the paper scale: full corpus statistics and a larger model.
	Full
)

// Config configures a pipeline.
type Config struct {
	Mode Mode
	Seed int64
	// Workers is the data-parallel training width handed to train.Fit;
	// <=1 trains sequentially. The speedup experiment overrides it per row.
	Workers int
	// CheckpointDir, when set, makes the pipeline durable: every
	// PragFormer training run checkpoints to
	// <dir>/<task>-<repr>.ckpt at each epoch end, so a killed
	// `-mode full` restarts where it left off — finished models load
	// straight from their checkpoints (best-epoch weights), partial runs
	// resume bit-identically, and only untrained models start fresh.
	CheckpointDir string
	// ScanTree points the agreement study at a fixture tree to scan
	// alongside the corpus test split; empty skips that row (tests run
	// from package directories, cmd/experiments points it at
	// examples/scantree).
	ScanTree string
	// Progress, when set, receives status lines during long stages.
	Progress func(string)
}

// Params are the scale-dependent knobs.
type Params struct {
	CorpusTotal    int
	MaxTrain       int // cap on training examples per model (0 = all)
	D              int
	Heads          int
	Layers         int
	FFHidden       int
	Epochs         int
	MaxLen         int
	Batch          int
	LR             float64
	Dropout        float64
	PretrainEpochs int
	PretrainMax    int // cap on MLM pretraining sequences
	BoWEpochs      int
	LimeSamples    int
}

// ParamsFor returns the knobs for a mode.
func ParamsFor(mode Mode) Params {
	if mode == Full {
		return Params{
			CorpusTotal: corpus.DefaultTotal, MaxTrain: 2500,
			D: 64, Heads: 4, Layers: 2, FFHidden: 128,
			Epochs: 6, MaxLen: core.DefaultMaxLen, Batch: 16, LR: 5e-4, Dropout: 0.1,
			PretrainEpochs: 1, PretrainMax: 500,
			BoWEpochs: 30, LimeSamples: 300,
		}
	}
	return Params{
		CorpusTotal: 900, MaxTrain: 0,
		D: 32, Heads: 4, Layers: 1, FFHidden: 64,
		Epochs: 5, MaxLen: 64, Batch: 16, LR: 1.5e-3, Dropout: 0.05,
		PretrainEpochs: 0, PretrainMax: 200,
		BoWEpochs: 40, LimeSamples: 120,
	}
}

// Pipeline caches artifacts across experiments.
type Pipeline struct {
	Cfg Config
	P   Params

	corp     *corpus.Corpus
	poly     *corpus.Corpus
	spec     *corpus.Corpus
	dirSplit *dataset.Split
	clause   map[dataset.Task]*dataset.Split

	tokens map[tokKey][]string
	vocabs map[tokenize.Representation]*tokenize.Vocab
	models map[modelKey]*Trained
	bows   map[dataset.Task]*bow.Model
}

type tokKey struct {
	id   int
	repr tokenize.Representation
}

type modelKey struct {
	task dataset.Task
	repr tokenize.Representation
}

// Trained couples a model with its learning curve.
type Trained struct {
	Model   *core.PragFormer
	History train.History
}

// NewPipeline builds an empty pipeline for the config.
func NewPipeline(cfg Config) *Pipeline {
	return &Pipeline{
		Cfg:    cfg,
		P:      ParamsFor(cfg.Mode),
		clause: map[dataset.Task]*dataset.Split{},
		tokens: map[tokKey][]string{},
		vocabs: map[tokenize.Representation]*tokenize.Vocab{},
		models: map[modelKey]*Trained{},
		bows:   map[dataset.Task]*bow.Model{},
	}
}

func (p *Pipeline) progress(format string, args ...any) {
	if p.Cfg.Progress != nil {
		p.Cfg.Progress(fmt.Sprintf(format, args...))
	}
}

// Corpus returns the (cached) Open-OMP corpus.
func (p *Pipeline) Corpus() *corpus.Corpus {
	if p.corp == nil {
		p.progress("generating Open-OMP corpus (%d snippets)", p.P.CorpusTotal)
		p.corp = corpus.Generate(corpus.Config{Seed: p.Cfg.Seed, Total: p.P.CorpusTotal})
	}
	return p.corp
}

// PolyBench returns the held-out PolyBench-style suite.
func (p *Pipeline) PolyBench() *corpus.Corpus {
	if p.poly == nil {
		p.poly = corpus.GeneratePolyBench(p.Cfg.Seed + 100)
	}
	return p.poly
}

// SPEC returns the held-out SPEC-style suite.
func (p *Pipeline) SPEC() *corpus.Corpus {
	if p.spec == nil {
		p.spec = corpus.GenerateSPEC(p.Cfg.Seed + 200)
	}
	return p.spec
}

// DirectiveSplit returns the RQ1 dataset split.
func (p *Pipeline) DirectiveSplit() dataset.Split {
	if p.dirSplit == nil {
		s := dataset.Directive(p.Corpus(), dataset.Options{Seed: p.Cfg.Seed + 1})
		p.dirSplit = &s
	}
	return *p.dirSplit
}

// ClauseSplit returns an RQ2 dataset split with balanced labels (§5.3).
func (p *Pipeline) ClauseSplit(task dataset.Task) dataset.Split {
	if s, ok := p.clause[task]; ok {
		return *s
	}
	s := dataset.Clause(p.Corpus(), task, dataset.Options{Seed: p.Cfg.Seed + 2, Balance: true})
	p.clause[task] = &s
	return s
}

// Tokens returns the (cached) token sequence for a record and representation.
// Records that fail structured extraction fall back to raw text tokens.
func (p *Pipeline) Tokens(r *corpus.Record, repr tokenize.Representation) []string {
	key := tokKey{r.ID, repr}
	if t, ok := p.tokens[key]; ok {
		return t
	}
	toks, err := tokenize.Extract(r.Code, repr)
	if err != nil {
		toks, _ = tokenize.Extract(r.Code, tokenize.Text)
	}
	p.tokens[key] = toks
	return toks
}

// TokensFor tokenizes an out-of-corpus record (held-out suites use their own
// IDs; avoid cache collisions by bypassing the cache).
func (p *Pipeline) TokensFor(r *corpus.Record, repr tokenize.Representation) []string {
	toks, err := tokenize.Extract(r.Code, repr)
	if err != nil {
		toks, _ = tokenize.Extract(r.Code, tokenize.Text)
	}
	return toks
}

// Vocab returns the vocabulary for a representation, built over the
// directive training split (the clause tasks reuse it, as fine-tuning does).
func (p *Pipeline) Vocab(repr tokenize.Representation) *tokenize.Vocab {
	if v, ok := p.vocabs[repr]; ok {
		return v
	}
	split := p.DirectiveSplit()
	var seqs [][]string
	for _, in := range split.Train {
		seqs = append(seqs, p.Tokens(in.Rec, repr))
	}
	v := tokenize.BuildVocab(seqs, 1)
	p.vocabs[repr] = v
	return v
}

// Examples encodes instances for the trainer.
func (p *Pipeline) Examples(ins []dataset.Instance, repr tokenize.Representation) []train.Example {
	return p.examplesWithLen(ins, repr, p.P.MaxLen)
}

// examplesWithLen encodes instances with an explicit length cap (the seqlen
// ablation varies it independently of the pipeline default).
func (p *Pipeline) examplesWithLen(ins []dataset.Instance, repr tokenize.Representation, maxLen int) []train.Example {
	v := p.Vocab(repr)
	out := make([]train.Example, len(ins))
	for i, in := range ins {
		out[i] = train.Example{IDs: v.Encode(p.Tokens(in.Rec, repr), maxLen), Label: in.Label}
	}
	return out
}

// splitFor returns the dataset split for a task.
func (p *Pipeline) splitFor(task dataset.Task) dataset.Split {
	if task == dataset.TaskDirective {
		return p.DirectiveSplit()
	}
	return p.ClauseSplit(task)
}

// Model returns the trained PragFormer for (task, repr), training on first
// use with the pipeline's pretraining and model-selection recipe.
func (p *Pipeline) Model(task dataset.Task, repr tokenize.Representation) *Trained {
	key := modelKey{task, repr}
	if t, ok := p.models[key]; ok {
		return t
	}
	t := p.trainModel(task, repr, p.P, p.Cfg.Seed+int64(10*int(task)+int(repr)))
	p.models[key] = t
	return t
}

// trainModel runs the full recipe with explicit params (ablations reuse
// it). With Config.CheckpointDir set, the run is durable: it checkpoints
// every epoch, resumes a partial checkpoint bit-identically, and loads a
// finished one outright.
func (p *Pipeline) trainModel(task dataset.Task, repr tokenize.Representation, prm Params, seed int64) *Trained {
	v := p.Vocab(repr)
	split := p.splitFor(task)
	trainSet := p.examplesWithLen(split.Train, repr, prm.MaxLen)
	validSet := p.examplesWithLen(split.Valid, repr, prm.MaxLen)
	if prm.MaxTrain > 0 && len(trainSet) > prm.MaxTrain {
		trainSet = trainSet[:prm.MaxTrain]
	}

	cfg := core.Config{
		Vocab: v.Size(), MaxLen: prm.MaxLen, D: prm.D, Heads: prm.Heads,
		Layers: prm.Layers, FFHidden: prm.FFHidden, Dropout: prm.Dropout,
	}
	m, err := core.New(cfg, seed)
	if err != nil {
		panic(err) // config bugs are programmer errors
	}

	ckPath := p.checkpointPath(task, repr, prm, seed)
	tcfg := train.Config{
		Epochs: prm.Epochs, BatchSize: prm.Batch, LR: prm.LR,
		Warmup: len(trainSet) / max(1, prm.Batch), ClipNorm: 1.0, Seed: seed,
		Workers:        p.Cfg.Workers,
		CheckpointPath: ckPath,
		RestoreBest:    true, // §5.1 model selection, from the checkpointer's copy
		Progress:       func(s string) { p.progress("  %s", s) },
	}

	if ckPath != "" {
		if snap, lerr := ckpt.LoadFile(ckPath); lerr == nil {
			if t := p.fromCheckpoint(m, snap, trainSet, validSet, prm, tcfg, task, repr); t != nil {
				return t
			}
			// The checkpoint did not match this run (stale file, changed
			// knobs); fall through to a fresh model and a scratch run.
			if m, err = core.New(cfg, seed); err != nil {
				panic(err)
			}
		} else if !errors.Is(lerr, os.ErrNotExist) {
			p.progress("checkpoint %s unreadable (%v); training from scratch", ckPath, lerr)
		}
	}

	if prm.PretrainEpochs > 0 {
		p.pretrain(m, trainSet, prm, seed)
	}
	p.progress("training PragFormer (%s, %s): %d train / %d valid",
		task, repr, len(trainSet), len(validSet))

	if ckPath != "" {
		hist, err := train.Run(m, trainSet, validSet, tcfg)
		if err != nil {
			panic(fmt.Errorf("experiments: durable training (%s, %s): %w", task, repr, err))
		}
		return &Trained{Model: m, History: hist}
	}

	// Non-durable path: keep the weights of the best validation epoch in
	// memory (§5.1 model selection).
	var bestBuf bytes.Buffer
	bestLoss := -1.0
	tcfg.Snapshot = func(epoch int, stats train.EpochStats) {
		if bestLoss < 0 || stats.ValidLoss < bestLoss {
			bestLoss = stats.ValidLoss
			bestBuf.Reset()
			if err := m.Save(&bestBuf); err != nil {
				panic(err)
			}
		}
	}
	hist := train.Fit(m, trainSet, validSet, tcfg)
	if bestBuf.Len() > 0 {
		restored, err := core.Load(&bestBuf)
		if err == nil {
			m = restored
		}
	}
	return &Trained{Model: m, History: hist}
}

// fromCheckpoint materializes a Trained from an existing checkpoint:
// restoring a finished run outright, or resuming a partial one (skipping
// MLM pretraining — the checkpointed weights already include it). Returns
// nil when the checkpoint does not belong to this run, in which case the
// caller trains from scratch.
func (p *Pipeline) fromCheckpoint(m *core.PragFormer, snap *ckpt.Snapshot,
	trainSet, validSet []train.Example, prm Params, tcfg train.Config,
	task dataset.Task, repr tokenize.Representation) *Trained {
	if snap.NextEpoch >= prm.Epochs {
		w := snap.BestWeights
		if len(w) == 0 {
			w = snap.Weights
		}
		if err := snap.ApplyWeights(m.Params(), w); err != nil {
			p.progress("checkpoint for (%s, %s) does not match this run (%v); retraining", task, repr, err)
			return nil
		}
		p.progress("restored finished model (%s, %s) from checkpoint", task, repr)
		return &Trained{Model: m, History: train.HistoryFromSnapshot(snap)}
	}
	p.progress("resuming training (%s, %s) at epoch %d/%d", task, repr, snap.NextEpoch, prm.Epochs)
	hist, err := train.Resume(m, trainSet, validSet, tcfg)
	if err != nil {
		p.progress("resume failed (%v); training from scratch", err)
		return nil
	}
	return &Trained{Model: m, History: hist}
}

// checkpointPath names the per-run checkpoint file, keyed by every input
// that identifies the run — task, representation, seed, worker count, and
// the training knobs — so ablation variants sharing a (task, repr) never
// collide. Empty when the pipeline is not durable.
func (p *Pipeline) checkpointPath(task dataset.Task, repr tokenize.Representation, prm Params, seed int64) string {
	if p.Cfg.CheckpointDir == "" {
		return ""
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "%+v|w%d", prm, p.Cfg.Workers)
	return filepath.Join(p.Cfg.CheckpointDir,
		fmt.Sprintf("%s-%s-s%d-%08x.ckpt", task, repr, seed, h.Sum32()))
}

// pretrain runs the MLM stand-in for DeepSCC initialization.
func (p *Pipeline) pretrain(m *core.PragFormer, trainSet []train.Example, prm Params, seed int64) {
	seqs := trainSet
	if prm.PretrainMax > 0 && len(seqs) > prm.PretrainMax {
		seqs = seqs[:prm.PretrainMax]
	}
	p.progress("MLM pretraining on %d sequences × %d epochs", len(seqs), prm.PretrainEpochs)
	opt := train.NewAdamW(prm.LR)
	params := m.MLMParams()
	rng := rand.New(rand.NewSource(seed + 77))
	for epoch := 0; epoch < prm.PretrainEpochs; epoch++ {
		inBatch := 0
		train.ZeroGrads(params)
		for _, ex := range seqs {
			m.MLMLossAndBackward(ex.IDs, rng)
			inBatch++
			if inBatch == prm.Batch {
				normalizeAndStep(opt, params, inBatch)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			normalizeAndStep(opt, params, inBatch)
		}
	}
}

// normalizeAndStep averages accumulated gradients over the batch, clips,
// applies one optimizer step, and clears gradients.
func normalizeAndStep(opt *train.AdamW, params []*nn.Param, n int) {
	inv := 1 / float64(n)
	for _, prm := range params {
		prm.Grad.ScaleInPlace(inv)
	}
	train.ClipGradNorm(params, 1.0)
	opt.Step(params, 1)
	train.ZeroGrads(params)
}

// BoW returns the trained bag-of-words baseline for a task (Text repr).
func (p *Pipeline) BoW(task dataset.Task) *bow.Model {
	if m, ok := p.bows[task]; ok {
		return m
	}
	split := p.splitFor(task)
	m := bow.New(p.Vocab(tokenize.Text))
	var exs []bow.Example
	for _, in := range split.Train {
		exs = append(exs, bow.Example{Tokens: p.Tokens(in.Rec, tokenize.Text), Label: in.Label})
	}
	p.progress("training BoW baseline (%s): %d examples", task, len(exs))
	m.Train(exs, bow.TrainConfig{Epochs: p.P.BoWEpochs, LR: 0.1, L2: 1e-5, Seed: p.Cfg.Seed})
	p.bows[task] = m
	return m
}

// EvalModel scores a trained PragFormer on instances through the batched
// forward path.
func (p *Pipeline) EvalModel(t *Trained, ins []dataset.Instance, repr tokenize.Representation) metrics.Confusion {
	return p.EvalBackend(t.Model, ins, repr)
}

// EvalBackend scores any inference backend (float64 or int8) on instances
// through the batched forward path — the quant study compares the two.
func (p *Pipeline) EvalBackend(b core.Backend, ins []dataset.Instance, repr tokenize.Representation) metrics.Confusion {
	v := p.Vocab(repr)
	ids := make([][]int, len(ins))
	for i, in := range ins {
		ids[i] = v.Encode(p.Tokens(in.Rec, repr), p.P.MaxLen)
	}
	labels := predictLabels(b, ids)
	var c metrics.Confusion
	for i, in := range ins {
		c.Add(labels[i], in.Label)
	}
	return c
}

// evalBatch bounds how many sequences one batched forward stacks so the
// pooled activation matrices stay a bounded size on paper-scale test sets.
const evalBatch = 64

// predictLabels runs PredictLabelBatch in bounded chunks, preserving input
// order.
func predictLabels(m core.Backend, ids [][]int) []bool {
	out := make([]bool, 0, len(ids))
	for start := 0; start < len(ids); start += evalBatch {
		end := min(start+evalBatch, len(ids))
		out = append(out, m.PredictLabelBatch(ids[start:end])...)
	}
	return out
}

// EvalBoW scores the BoW baseline on instances.
func (p *Pipeline) EvalBoW(m *bow.Model, ins []dataset.Instance) metrics.Confusion {
	var c metrics.Confusion
	for _, in := range ins {
		c.Add(m.PredictLabel(p.Tokens(in.Rec, tokenize.Text)), in.Label)
	}
	return c
}

// ComParResult carries the S2S evaluation plus its failure census.
type ComParResult struct {
	Confusion     metrics.Confusion
	ParseFailures int
}

// EvalComPar runs ComPar over instances for a task. Compile failures follow
// the paper's fall-back strategy: counted as negative predictions.
func (p *Pipeline) EvalComPar(ins []dataset.Instance, task dataset.Task) ComParResult {
	cp := s2s.NewComPar()
	var out ComParResult
	for _, in := range ins {
		res, err := cp.Compile(in.Rec.Code)
		pred := false
		if err != nil {
			out.ParseFailures++
		} else if res.Directive != nil {
			switch task {
			case dataset.TaskDirective:
				pred = true
			case dataset.TaskPrivate:
				pred = res.Directive.HasPrivate()
			case dataset.TaskReduction:
				pred = res.Directive.HasReduction()
			}
		}
		out.Confusion.Add(pred, in.Label)
	}
	return out
}

// InstancesOf converts a whole corpus into task instances (held-out suites).
func InstancesOf(c *corpus.Corpus, task dataset.Task) []dataset.Instance {
	var out []dataset.Instance
	for _, r := range c.Records {
		label := false
		switch task {
		case dataset.TaskDirective:
			label = r.HasOMP()
		case dataset.TaskPrivate:
			label = r.NeedsPrivate()
		case dataset.TaskReduction:
			label = r.NeedsReduction()
		}
		out = append(out, dataset.Instance{Rec: r, Label: label})
	}
	return out
}

// sortedReprs returns the four representations in paper order.
func sortedReprs() []tokenize.Representation {
	rs := append([]tokenize.Representation{}, tokenize.Representations...)
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	return rs
}
