//go:build amd64 && !purego

package tensor

import "os"

// Shared CPU feature probe for the SIMD kernel backends. Both the int8
// kernels (int8_amd64.go) and the float64 kernels (float_amd64.go) gate on
// the same AVX2 availability check, hoisted here so the two paths can never
// disagree about what the host supports, and so one escape hatch covers
// both: setting PRAGFORMER_NOSIMD (to anything non-empty) at process start
// keeps every asm kernel uninstalled, which pins the whole stack to the
// portable scalar paths — the debugging lever for isolating a suspected
// kernel bug from a modeling bug.

// cpuid executes CPUID with the given leaf/subleaf (cpu_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (OS-enabled register state).
func xgetbv() (eax, edx uint32)

// avx2Available is the raw hardware probe result, fixed at init.
var avx2Available = hasAVX2()

// simdDisabledByEnv records the PRAGFORMER_NOSIMD escape hatch, read once
// at init so all kernel installs see the same answer.
var simdDisabledByEnv = os.Getenv("PRAGFORMER_NOSIMD") != ""

// useSIMD reports whether asm kernels should be installed: hardware support
// present and not vetoed by PRAGFORMER_NOSIMD.
func useSIMD() bool { return avx2Available && !simdDisabledByEnv }

// hasAVX2 reports CPU and OS support for AVX2 (CPUID feature bit plus
// OS-saved YMM state via XGETBV — a hypervisor can expose the former
// without the latter).
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave, avx = 1 << 27, 1 << 28
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// SIMDAvailable reports whether AVX2 asm kernels exist for this CPU and
// were not disabled by PRAGFORMER_NOSIMD at startup.
func SIMDAvailable() bool { return useSIMD() }

// SetSIMD installs (true) or removes (false) the asm kernels at runtime,
// returning whether SIMD kernels are active afterwards. Enabling is a no-op
// when the hardware lacks AVX2 or PRAGFORMER_NOSIMD was set. It swaps the
// kernel function pointers non-atomically, so it must not race in-flight
// matmuls — it exists for the bench-kernels comparison driver and tests,
// which toggle between timed sections on otherwise idle processes.
func SetSIMD(enabled bool) bool {
	if enabled && !useSIMD() {
		return false
	}
	installSIMD(enabled)
	return enabled
}

// installSIMD wires or unwires every asm kernel in one place.
func installSIMD(enabled bool) {
	if enabled {
		int8RowKernel = int8DotRows1AVX2
		f64GemmRowKernel = f64GemmRowAVX2
		f64DotBT4Kernel = f64DotBT4AVX2
		f64AbsMaxKernel = f64AbsMaxAVX2
		f64QuantRowKernel = f64QuantRowAVX2
		f64NormScaleKernel = f64NormScaleAVX2
		return
	}
	int8RowKernel = nil
	f64GemmRowKernel = nil
	f64DotBT4Kernel = nil
	f64AbsMaxKernel = nil
	f64QuantRowKernel = nil
	f64NormScaleKernel = nil
}

func init() {
	if useSIMD() {
		installSIMD(true)
	}
}
