package scan

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pragformer/internal/ckpt"
)

// FileStore is the persistent scan cache behind the VerdictStore
// interface: loop hashes to verdicts, making re-scans incremental — a
// warm scan of an unchanged tree performs zero model forwards. The file
// is JSON with a small header; a version, backend, or model-fingerprint
// mismatch discards it at open (verdicts are not replayed across backends
// or models — the label-agreement gate compares backends, it does not
// assume them equal), and Flush goes through ckpt.WriteFileAtomic so an
// interrupted scan never leaves a torn cache.

// cacheVersion guards the on-disk layout. v2 added the tier, witness, S2S
// and attribution evidence to Suggestion; v3 added the structured race
// witnesses and conversion lists. Older entries predate those fields, so
// replaying them would make a warm scan's bytes diverge from a cold scan's
// — bump on every Suggestion field change.
const cacheVersion = 3

type cacheData struct {
	Version int                    `json:"version"`
	Backend string                 `json:"backend,omitempty"`
	Model   string                 `json:"model,omitempty"`
	Entries map[string]*Suggestion `json:"entries"`
}

// FileStore is a file-backed VerdictStore. Get/Put operate on the
// in-memory entry set loaded at open; Flush persists the union of loaded
// and freshly put verdicts.
type FileStore struct {
	path    string
	backend string
	modelID string
	mem     *MemStore
}

var _ VerdictStore = (*FileStore)(nil)

// OpenFileStore loads the cache at path. A missing file, an unreadable
// file, a layout-version bump, or a backend/model mismatch all yield an
// empty store — stale caches cost a re-scan, never a wrong report. An
// empty path yields a store that Flush treats as a no-op (scan always has
// a store to read through; only persistence is optional).
func OpenFileStore(path, backend, modelID string) (*FileStore, error) {
	fs := &FileStore{path: path, backend: backend, modelID: modelID, mem: NewMemStore()}
	if path == "" {
		return fs, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fs, nil
		}
		return nil, fmt.Errorf("scan: read cache: %w", err)
	}
	var cf cacheData
	if err := json.Unmarshal(data, &cf); err != nil {
		return fs, nil //nolint:nilerr // corrupt cache = cold cache
	}
	if cf.Version != cacheVersion || cf.Backend != backend || cf.Model != modelID || cf.Entries == nil {
		return fs, nil
	}
	for h, s := range cf.Entries {
		fs.mem.Put(h, s)
	}
	return fs, nil
}

// Get returns the stored verdict; the result is shared and must not be
// mutated.
func (fs *FileStore) Get(hash string) (*Suggestion, bool) { return fs.mem.Get(hash) }

// Put stores a private copy of the verdict in memory; Flush persists it.
func (fs *FileStore) Put(hash string, s *Suggestion) { fs.mem.Put(hash, s) }

// Len reports the resident verdict count.
func (fs *FileStore) Len() int { return fs.mem.Len() }

// Flush atomically rewrites the cache file with every resident verdict.
// A store opened with an empty path flushes nowhere.
func (fs *FileStore) Flush() error {
	if fs.path == "" {
		return nil
	}
	entries := make(map[string]*Suggestion)
	for i := range fs.mem.shards {
		sh := &fs.mem.shards[i]
		sh.mu.RLock()
		for h, s := range sh.m {
			entries[h] = s
		}
		sh.mu.RUnlock()
	}
	cf := cacheData{Version: cacheVersion, Backend: fs.backend, Model: fs.modelID, Entries: entries}
	err := ckpt.WriteFileAtomic(fs.path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(cf)
	})
	if err != nil {
		return fmt.Errorf("scan: write cache: %w", err)
	}
	return nil
}
