package tier

import (
	"bytes"
	"io/fs"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pragformer/internal/advisor"
	"pragformer/internal/serve"
)

// TestTierScanGolden is the CI tier smoke: two REAL replicas (demo-trained
// engines, the same recipe that produced examples/scantree/golden.json)
// behind a router, the fixture tree scanned through the fleet on both
// backends. The stable report must be byte-identical to the golden file,
// and a warm second pass must be answered entirely by the shared verdict
// store — zero forwards fleet-wide.
//
// Demo training takes real time, so the test is opt-in:
//
//	PRAGFORMER_TIER_SMOKE=1 go test -run TestTierScanGolden ./internal/tier/
func TestTierScanGolden(t *testing.T) {
	if os.Getenv("PRAGFORMER_TIER_SMOKE") == "" {
		t.Skip("set PRAGFORMER_TIER_SMOKE=1 to run the tier golden smoke (trains demo models)")
	}

	// The golden fixture's model: the demo defaults (seed 1, corpus 1000,
	// 5 epochs) — same artifacts `pragformer scan` demo mode trains.
	models, err := advisor.TrainDemo(advisor.DemoConfig{Seed: 1, Total: 1000, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}

	files := fixtureFiles(t)
	golden, err := os.ReadFile(filepath.Join("..", "..", "examples", "scantree", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}

	for _, backend := range []string{"float64", "int8"} {
		t.Run(backend, func(t *testing.T) {
			// Two replicas over one trained bundle (engines only read it;
			// backend conversion copies).
			var urls []string
			for i := 0; i < 2; i++ {
				e, err := serve.New(models, serve.Config{
					MaxBatch: 8, MaxWait: time.Millisecond, Backend: backend,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(e.Close)
				srv := httptest.NewServer(e.Handler())
				t.Cleanup(srv.Close)
				urls = append(urls, srv.URL)
			}
			rt, err := New(Config{
				Replicas: urls, Backend: backend,
				ModelID: "demo:seed=1,total=1000,epochs=5",
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(rt.Close)
			h := rt.Handler()

			body := scanRequest{Files: files, Stable: true}
			cold := postJSON(t, h, "/scan", body)
			if cold.Code != 200 {
				t.Fatalf("cold scan: %d %s", cold.Code, cold.Body)
			}
			if !bytes.Equal(cold.Body.Bytes(), golden) {
				t.Fatalf("tier scan (%s) drifted from golden:\n--- got ---\n%s", backend, cold.Body)
			}

			// Warm pass: the shared store answers every loop fleet-wide.
			forwardsBefore := rt.forwards.Load()
			warm := postJSON(t, h, "/scan", body)
			if warm.Code != 200 {
				t.Fatalf("warm scan: %d %s", warm.Code, warm.Body)
			}
			if got := rt.forwards.Load(); got != forwardsBefore {
				t.Fatalf("warm scan forwarded (%d -> %d); store read-through broken", forwardsBefore, got)
			}
			if !bytes.Equal(warm.Body.Bytes(), golden) {
				t.Fatal("warm tier scan drifted from golden")
			}

			// SARIF renders from the same verdicts: warm == cold.
			sbody := scanRequest{Files: files, Format: "sarif"}
			sc := postJSON(t, h, "/scan", sbody)
			sw := postJSON(t, h, "/scan", sbody)
			if sc.Code != 200 || sw.Code != 200 {
				t.Fatalf("sarif scans: %d / %d", sc.Code, sw.Code)
			}
			if !bytes.Equal(sc.Body.Bytes(), sw.Body.Bytes()) {
				t.Fatal("warm SARIF differs from cold")
			}
		})
	}
}

// TestTierRollingReloadLive exercises the rolling reload against real
// engines: file-backed replicas reload mid-traffic with zero dropped
// requests. Gated with the smoke flag (it trains a demo model too).
func TestTierRollingReloadLive(t *testing.T) {
	if os.Getenv("PRAGFORMER_TIER_SMOKE") == "" {
		t.Skip("set PRAGFORMER_TIER_SMOKE=1 to run the live rolling-reload smoke")
	}
	// A small bundle is enough here: this smoke is about the drain/reload
	// choreography, not verdict quality.
	models, err := advisor.TrainDemo(advisor.DemoConfig{Seed: 7, Total: 120, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for i := 0; i < 2; i++ {
		e, err := serve.New(models, serve.Config{
			MaxBatch: 4, MaxWait: time.Millisecond,
			Source: func() (*advisor.Models, error) { return models, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		srv := httptest.NewServer(e.Handler())
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	rt, err := New(Config{Replicas: urls, ProbeInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	h := rt.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	failures := 0
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			codes := testCodes(8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := postJSON(t, h, "/predict", predictRequest{Code: codes[(w+i)%len(codes)]})
				if rec.Code != 200 {
					mu.Lock()
					failures++
					mu.Unlock()
				}
			}
		}(w)
	}
	rec := postJSON(t, h, "/reload", nil)
	close(stop)
	wg.Wait()
	if rec.Code != 200 {
		t.Fatalf("rolling reload: %d %s", rec.Code, rec.Body)
	}
	if failures != 0 {
		t.Fatalf("%d requests failed during the live rolling reload", failures)
	}
}

// fixtureFiles loads examples/scantree the way scan.Dir's walker would:
// every .c file, slash-relative paths.
func fixtureFiles(t *testing.T) []scanFile {
	t.Helper()
	root := filepath.Join("..", "..", "examples", "scantree")
	var files []scanFile
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".c") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		files = append(files, scanFile{Path: filepath.ToSlash(rel), Source: string(data)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("fixture tree is empty")
	}
	return files
}
