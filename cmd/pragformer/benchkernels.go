package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"pragformer/internal/tensor"
)

// cmdBenchKernels prints a scalar-vs-AVX2 comparison of the float64 and
// int8 matmul kernels at 64³/128³/256³, so a kernel regression is visible
// from one table instead of a JSON diff. Kernels are toggled with
// tensor.SetSIMD between timed sections, which is only safe because nothing
// else is running matmuls in this process.
func cmdBenchKernels(args []string) {
	fs := flag.NewFlagSet("bench-kernels", flag.ExitOnError)
	benchtime := fs.Duration("benchtime", 200*time.Millisecond, "minimum measurement time per table cell")
	fs.Parse(args)

	simd := tensor.SIMDAvailable()
	fmt.Printf("matmul kernels, ns/op (AVX2 kernels available: %v)\n\n", simd)
	fmt.Printf("%8s  %14s  %14s  %8s  %14s  %14s  %8s\n",
		"size", "f64-scalar", "f64-avx2", "speedup", "int8-scalar", "int8-avx2", "speedup")

	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{64, 128, 256} {
		x := tensor.New(n, n).Randn(rng, 1)
		y := tensor.New(n, n).Randn(rng, 1)
		fout := tensor.New(n, n)
		a := randomInt8(rng, n)
		w := randomInt8(rng, n)
		qout := tensor.New(n, n)

		tensor.SetSIMD(false)
		fScalar := timeKernel(*benchtime, func() { tensor.MatMulInto(fout, x, y) })
		iScalar := timeKernel(*benchtime, func() { tensor.MatMulInt8BTInto(qout, a, w) })
		fSIMD, iSIMD := -1.0, -1.0
		if tensor.SetSIMD(true) {
			fSIMD = timeKernel(*benchtime, func() { tensor.MatMulInto(fout, x, y) })
			iSIMD = timeKernel(*benchtime, func() { tensor.MatMulInt8BTInto(qout, a, w) })
		}

		fmt.Printf("%7d³  %14.0f  %14s  %8s  %14.0f  %14s  %8s\n",
			n, fScalar, cell(fSIMD), ratio(fScalar, fSIMD), iScalar, cell(iSIMD), ratio(iScalar, iSIMD))
	}
}

// timeKernel reports ns per call, running fn for at least minTime after one
// untimed warm-up call.
func timeKernel(minTime time.Duration, fn func()) float64 {
	fn()
	var iters int
	start := time.Now()
	for time.Since(start) < minTime {
		fn()
		iters++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func randomInt8(rng *rand.Rand, n int) *tensor.Int8Matrix {
	m := tensor.NewInt8(n, n)
	for i := range m.Data {
		m.Data[i] = int8(rng.Intn(255) - 127)
	}
	for i := range m.Scales {
		m.Scales[i] = float32(rng.Float64() + 0.01)
	}
	return m
}

func cell(ns float64) string {
	if ns < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", ns)
}

func ratio(scalar, simd float64) string {
	if simd <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", scalar/simd)
}
