// Package bow implements the paper's statistical baseline (§5.2): a
// bag-of-words count-vector representation with a logistic-regression
// classifier trained by gradient descent with L2 regularization. Order and
// structure are discarded, which is exactly the capability gap PragFormer's
// self-attention closes.
package bow

import (
	"math"
	"math/rand"

	"pragformer/internal/tokenize"
)

// Model is a logistic regression over token counts.
type Model struct {
	Vocab   *tokenize.Vocab
	Weights []float64
	Bias    float64
}

// New builds an untrained model over a vocabulary.
func New(v *tokenize.Vocab) *Model {
	return &Model{Vocab: v, Weights: make([]float64, v.Size())}
}

// Featurize builds the count vector for a token sequence.
func (m *Model) Featurize(tokens []string) map[int]float64 {
	counts := map[int]float64{}
	for _, tok := range tokens {
		counts[m.Vocab.ID(tok)]++
	}
	return counts
}

// score computes the pre-sigmoid logit for sparse features.
func (m *Model) score(feats map[int]float64) float64 {
	s := m.Bias
	for id, c := range feats {
		s += m.Weights[id] * c
	}
	return s
}

// Predict returns the positive-class probability.
func (m *Model) Predict(tokens []string) float64 {
	return sigmoid(m.score(m.Featurize(tokens)))
}

// PredictLabel applies the 0.5 threshold.
func (m *Model) PredictLabel(tokens []string) bool { return m.Predict(tokens) > 0.5 }

// Example is one labeled token sequence.
type Example struct {
	Tokens []string
	Label  bool
}

// TrainConfig controls SGD.
type TrainConfig struct {
	Epochs int
	LR     float64
	L2     float64
	Seed   int64
}

// Train fits the model with SGD, returning per-epoch training losses.
func (m *Model) Train(examples []Example, cfg TrainConfig) []float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	feats := make([]map[int]float64, len(examples))
	for i, ex := range examples {
		feats[i] = m.Featurize(ex.Tokens)
	}
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	var losses []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, idx := range order {
			f := feats[idx]
			y := 0.0
			if examples[idx].Label {
				y = 1
			}
			p := sigmoid(m.score(f))
			total += bceLoss(p, y)
			g := p - y
			for id, c := range f {
				m.Weights[id] -= cfg.LR * (g*c + cfg.L2*m.Weights[id])
			}
			m.Bias -= cfg.LR * g
		}
		losses = append(losses, total/float64(max(1, len(examples))))
	}
	return losses
}

// TopWeights returns the k most positive and k most negative feature tokens
// (diagnostics: what the linear baseline keys on).
func (m *Model) TopWeights(k int) (positive, negative []string) {
	type wt struct {
		id int
		w  float64
	}
	var all []wt
	for id, w := range m.Weights {
		if w != 0 {
			all = append(all, wt{id, w})
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].w > all[i].w {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	for i := 0; i < k && i < len(all); i++ {
		if all[i].w > 0 {
			positive = append(positive, m.Vocab.Token(all[i].id))
		}
	}
	for i := 0; i < k && i < len(all); i++ {
		j := len(all) - 1 - i
		if j >= 0 && all[j].w < 0 {
			negative = append(negative, m.Vocab.Token(all[j].id))
		}
	}
	return positive, negative
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

func bceLoss(p, y float64) float64 {
	p = math.Min(math.Max(p, 1e-12), 1-1e-12)
	return -(y*math.Log(p) + (1-y)*math.Log(1-p))
}
