// Package dataset turns the Open-OMP corpus into the paper's two supervised
// datasets (§3.2, Table 5): a directive dataset (RQ1: does this snippet need
// `#pragma omp parallel for`?) over all records, and a clause dataset (RQ2:
// does this parallelizable snippet need a private / reduction clause?) over
// the records that carry directives. Splits are 80/10/10, stratified per
// label so each split keeps the corpus's label balance.
package dataset

import (
	"math/rand"

	"pragformer/internal/corpus"
)

// Task selects which classification label an instance carries.
type Task int

const (
	// TaskDirective is RQ1: need for an OpenMP directive.
	TaskDirective Task = iota
	// TaskPrivate is RQ2a: need for a private clause.
	TaskPrivate
	// TaskReduction is RQ2b: need for a reduction clause.
	TaskReduction
)

// String names the task.
func (t Task) String() string {
	switch t {
	case TaskDirective:
		return "directive"
	case TaskPrivate:
		return "private"
	default:
		return "reduction"
	}
}

// Instance is one labeled example.
type Instance struct {
	Rec   *corpus.Record
	Label bool
}

// Split is the standard train/validation/test partition.
type Split struct {
	Train, Valid, Test []Instance
}

// Sizes returns the three split sizes (Table 5 rows).
func (s Split) Sizes() (train, valid, test int) {
	return len(s.Train), len(s.Valid), len(s.Test)
}

// label computes an instance label for a record under a task.
func label(r *corpus.Record, t Task) bool {
	switch t {
	case TaskDirective:
		return r.HasOMP()
	case TaskPrivate:
		return r.NeedsPrivate()
	default:
		return r.NeedsReduction()
	}
}

// Options configures dataset construction.
type Options struct {
	// Seed drives the shuffle; equal seeds give identical splits.
	Seed int64
	// Balance subsamples the majority class to the minority size, the
	// paper's "balanced labels" setup for the clause tasks.
	Balance bool
}

// Directive builds the RQ1 dataset over all corpus records.
func Directive(c *corpus.Corpus, opt Options) Split {
	return build(c.Records, TaskDirective, opt)
}

// Clause builds an RQ2 dataset over records with directives.
func Clause(c *corpus.Corpus, task Task, opt Options) Split {
	if task == TaskDirective {
		panic("dataset: Clause called with TaskDirective")
	}
	return build(c.Positives(), task, opt)
}

// build shuffles, optionally balances, and splits stratified by label.
func build(records []*corpus.Record, task Task, opt Options) Split {
	rng := rand.New(rand.NewSource(opt.Seed))
	var pos, neg []Instance
	for _, r := range records {
		in := Instance{Rec: r, Label: label(r, task)}
		if in.Label {
			pos = append(pos, in)
		} else {
			neg = append(neg, in)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	if opt.Balance {
		n := min(len(pos), len(neg))
		pos, neg = pos[:n], neg[:n]
	}

	var s Split
	appendClass := func(ins []Instance) {
		nTest := len(ins) / 10
		nValid := len(ins) / 10
		nTrain := len(ins) - nTest - nValid
		s.Train = append(s.Train, ins[:nTrain]...)
		s.Valid = append(s.Valid, ins[nTrain:nTrain+nValid]...)
		s.Test = append(s.Test, ins[nTrain+nValid:]...)
	}
	appendClass(pos)
	appendClass(neg)

	// Interleave classes so minibatches see both labels.
	rng.Shuffle(len(s.Train), func(i, j int) { s.Train[i], s.Train[j] = s.Train[j], s.Train[i] })
	rng.Shuffle(len(s.Valid), func(i, j int) { s.Valid[i], s.Valid[j] = s.Valid[j], s.Valid[i] })
	rng.Shuffle(len(s.Test), func(i, j int) { s.Test[i], s.Test[j] = s.Test[j], s.Test[i] })
	return s
}

// PositiveFraction returns the share of true labels in a set.
func PositiveFraction(ins []Instance) float64 {
	if len(ins) == 0 {
		return 0
	}
	n := 0
	for _, in := range ins {
		if in.Label {
			n++
		}
	}
	return float64(n) / float64(len(ins))
}
