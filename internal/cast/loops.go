package cast

// Loop extraction: the repo scanner's front end. ExtractLoops walks a
// parsed translation unit and returns every for-loop together with the
// context a scan report needs — the enclosing function, the loop's nesting
// depth among for-loops, and any `#pragma omp` line already attached to it.

// LoopInfo describes one extracted for-loop.
type LoopInfo struct {
	// Loop is the for-loop node; its Line/Col carry source provenance when
	// the file came from the parser.
	Loop *For
	// Function names the enclosing function definition, "" at file scope
	// (corpus-style loose snippets).
	Function string
	// Depth is the loop's for-nesting depth: 0 for an outermost for-loop,
	// 1 for a for directly inside another for, and so on. While/do-while
	// loops do not contribute to the depth.
	Depth int
	// Pragma is the text of a pragma line attached directly to this loop
	// (e.g. "pragma omp parallel for"), "" when the loop is bare. Scanners
	// use it to skip loops a developer already annotated.
	Pragma string
}

// ExtractLoops returns every for-loop in f in source order, outer loops
// before the loops nested inside them.
func ExtractLoops(f *File) []LoopInfo {
	var out []LoopInfo
	for _, it := range f.Items {
		switch v := it.(type) {
		case *FuncDef:
			collectLoops(v.Body, v.Name, 0, "", &out)
		case Stmt:
			collectLoops(v, "", 0, "", &out)
		}
	}
	return out
}

// collectLoops appends the for-loops under s. pragma carries the text of a
// PragmaStmt wrapping s, attaching to the first statement it annotates.
func collectLoops(s Stmt, fn string, depth int, pragma string, out *[]LoopInfo) {
	switch v := s.(type) {
	case nil:
	case *PragmaStmt:
		collectLoops(v.Stmt, fn, depth, v.Text, out)
	case *For:
		*out = append(*out, LoopInfo{Loop: v, Function: fn, Depth: depth, Pragma: pragma})
		collectLoops(v.Body, fn, depth+1, "", out)
	case *Block:
		for _, st := range v.Stmts {
			collectLoops(st, fn, depth, "", out)
		}
	case *While:
		collectLoops(v.Body, fn, depth, "", out)
	case *DoWhile:
		collectLoops(v.Body, fn, depth, "", out)
	case *If:
		collectLoops(v.Then, fn, depth, "", out)
		collectLoops(v.Else, fn, depth, "", out)
	}
}
