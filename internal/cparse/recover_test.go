package cparse

import (
	"errors"
	"strings"
	"testing"

	"pragformer/internal/cast"
)

func TestParseRecoverCleanInput(t *testing.T) {
	src := "void f(int *x, int n) {\n    int i;\n    for (i = 0; i < n; i++) x[i] = i;\n}\n"
	f, errs := ParseRecover(src)
	if len(errs) != 0 {
		t.Fatalf("errors on clean input: %v", errs)
	}
	want, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Items) != len(want.Items) {
		t.Errorf("recovered %d items, Parse found %d", len(f.Items), len(want.Items))
	}
}

func TestParseRecoverBrokenFunctionKeepsSiblings(t *testing.T) {
	src := "void bad(int *x, int n) {\n" +
		"    int i;\n" +
		"    for (i = 0; i < n; i++ {\n" + // missing ')'
		"        x[i] = i;\n" +
		"    }\n" +
		"}\n" +
		"void good(double *y, int n) {\n" +
		"    int j;\n" +
		"    for (j = 0; j < n; j++) y[j] = y[j] * 2.0;\n" +
		"}\n"
	f, errs := ParseRecover(src)
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want exactly one", errs)
	}
	if errs[0].Line != 3 || errs[0].Col == 0 {
		t.Errorf("error position = %d:%d, want line 3 (the malformed for-header)", errs[0].Line, errs[0].Col)
	}
	loops := cast.ExtractLoops(f)
	if len(loops) != 1 {
		t.Fatalf("recovered %d loops, want the one from good()", len(loops))
	}
	if loops[0].Function != "good" {
		t.Errorf("recovered loop belongs to %q, want good", loops[0].Function)
	}
}

func TestParseRecoverBrokenDeclaration(t *testing.T) {
	src := "int x = ;\n" +
		"void f(int *a, int n) {\n" +
		"    int i;\n" +
		"    for (i = 0; i < n; i++) a[i] = 0;\n" +
		"}\n"
	f, errs := ParseRecover(src)
	if len(errs) == 0 {
		t.Fatal("broken declaration produced no error")
	}
	if errs[0].Line == 0 {
		t.Errorf("error carries no position: %v", errs[0])
	}
	if len(cast.ExtractLoops(f)) != 1 {
		t.Error("loop after the broken declaration was lost")
	}
}

func TestParseRecoverNothingParseable(t *testing.T) {
	f, errs := ParseRecover("= = = ) }")
	if len(f.Items) != 0 {
		t.Errorf("items = %v, want none", f.Items)
	}
	if len(errs) == 0 {
		t.Error("garbage input produced no errors")
	}
	for _, e := range errs {
		if strings.Contains(e.Msg, "cparse: line") {
			t.Errorf("error message double-renders its position: %q", e.Msg)
		}
	}
}

func TestParseRecoverTerminates(t *testing.T) {
	// Inputs that once risked non-progress: lone closers, unterminated
	// openers, EOF mid-statement.
	for _, src := range []string{"}", "{", "(", ";", "for (", "int", "a b c d"} {
		ParseRecover(src) // must not hang or panic
	}
}

func TestParseStmtErrorHasPosition(t *testing.T) {
	_, err := ParseStmt("")
	if err == nil {
		t.Fatal("empty input parsed")
	}
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *Error with a position", err)
	}
	if pe.Line != 1 || pe.Col != 1 {
		t.Errorf("position = %d:%d, want 1:1", pe.Line, pe.Col)
	}
}
