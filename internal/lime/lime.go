// Package lime implements the LIME explainability algorithm (Ribeiro et
// al. 2016) for text classifiers, as the paper applies it in §5.4 /
// Figure 8: perturb the input by removing token subsets, query the model on
// each perturbation, weight samples by locality, and fit a ridge-regression
// surrogate whose coefficients attribute the prediction to tokens.
package lime

import (
	"math"
	"math/rand"
	"sort"
)

// Attribution is one token's contribution to the positive-class score.
type Attribution struct {
	Index  int     // token position in the input
	Token  string  // token text
	Weight float64 // surrogate coefficient; positive pushes toward class 1
}

// Explainer configures the LIME procedure.
type Explainer struct {
	// Samples is the number of perturbed inputs (default 300).
	Samples int
	// KernelWidth scales the exponential locality kernel (default 0.75).
	KernelWidth float64
	// Ridge is the L2 regularizer of the surrogate fit (default 1e-3).
	Ridge float64
	// Seed drives the perturbation sampling.
	Seed int64
}

// New returns an Explainer with defaults.
func New(seed int64) *Explainer {
	return &Explainer{Samples: 300, KernelWidth: 0.75, Ridge: 1e-3, Seed: seed}
}

// Explain attributes predict's positive-class probability on tokens to the
// individual tokens, returning attributions sorted by |weight| descending,
// truncated to topK (topK <= 0 returns all).
func (e *Explainer) Explain(tokens []string, predict func([]string) float64, topK int) []Attribution {
	return e.ExplainBatch(tokens, func(batch [][]string) []float64 {
		out := make([]float64, len(batch))
		for i, ts := range batch {
			out[i] = predict(ts)
		}
		return out
	}, topK)
}

// ExplainBatch is Explain with a batched model: every perturbed variant is
// collected first and predict is called exactly once over all of them, so a
// backend with batched forwards (core.PredictBatch, the serving engine)
// amortizes its per-call overhead across the whole perturbation set. The
// sampling, weighting and fit are identical to Explain — for a given Seed
// the two return the same attributions.
func (e *Explainer) ExplainBatch(tokens []string, predict func([][]string) []float64, topK int) []Attribution {
	T := len(tokens)
	if T == 0 {
		return nil
	}
	nSamples := e.Samples
	if nSamples <= 0 {
		nSamples = 300
	}
	kw := e.KernelWidth
	if kw <= 0 {
		kw = 0.75
	}
	rng := rand.New(rand.NewSource(e.Seed))

	// Design matrix with intercept column 0.
	X := make([][]float64, 0, nSamples+1)
	w := make([]float64, 0, nSamples+1)
	variants := make([][]string, 0, nSamples+1)

	// Include the unperturbed instance with maximal weight.
	full := make([]float64, T+1)
	for i := range full {
		full[i] = 1
	}
	X = append(X, full)
	variants = append(variants, tokens)
	w = append(w, 1)

	for s := 0; s < nSamples; s++ {
		mask := make([]float64, T+1)
		mask[0] = 1 // intercept
		kept := 0
		// Sample the number of removals uniformly, then the positions.
		nRemove := 1 + rng.Intn(T)
		removed := map[int]bool{}
		for len(removed) < nRemove {
			removed[rng.Intn(T)] = true
		}
		variant := make([]string, 0, T-nRemove)
		for i, tok := range tokens {
			if removed[i] {
				continue
			}
			mask[i+1] = 1
			kept++
			variant = append(variant, tok)
		}
		if kept == 0 {
			continue
		}
		X = append(X, mask)
		variants = append(variants, variant)
		// Cosine distance between the mask and the all-ones vector is
		// 1 - sqrt(kept/T); the kernel turns it into a locality weight.
		d := 1 - math.Sqrt(float64(kept)/float64(T))
		w = append(w, math.Exp(-(d*d)/(kw*kw)))
	}

	y := predict(variants)
	beta := weightedRidge(X, y, w, e.Ridge)
	attrs := make([]Attribution, T)
	for i := 0; i < T; i++ {
		attrs[i] = Attribution{Index: i, Token: tokens[i], Weight: beta[i+1]}
	}
	sort.Slice(attrs, func(a, b int) bool {
		return math.Abs(attrs[a].Weight) > math.Abs(attrs[b].Weight)
	})
	if topK > 0 && topK < len(attrs) {
		attrs = attrs[:topK]
	}
	return attrs
}

// weightedRidge solves (XᵀWX + λI)β = XᵀWy by Gaussian elimination with
// partial pivoting. The intercept (column 0) is not regularized.
func weightedRidge(X [][]float64, y, w []float64, lambda float64) []float64 {
	if len(X) == 0 {
		return nil
	}
	d := len(X[0])
	A := make([][]float64, d)
	b := make([]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	for s, row := range X {
		ws := w[s]
		for i := 0; i < d; i++ {
			if row[i] == 0 {
				continue
			}
			wi := ws * row[i]
			b[i] += wi * y[s]
			for j := i; j < d; j++ {
				A[i][j] += wi * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
	}
	for i := 1; i < d; i++ { // skip intercept
		A[i][i] += lambda
	}
	return solve(A, b)
}

// solve performs in-place Gaussian elimination with partial pivoting.
func solve(A [][]float64, b []float64) []float64 {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[p][col]) {
				p = r
			}
		}
		A[col], A[p] = A[p], A[col]
		b[col], b[p] = b[p], b[col]
		pv := A[col][col]
		if math.Abs(pv) < 1e-12 {
			continue // singular direction; leave coefficient at 0
		}
		inv := 1 / pv
		for r := col + 1; r < n; r++ {
			f := A[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		if math.Abs(A[r][r]) < 1e-12 {
			x[r] = 0
			continue
		}
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= A[r][c] * x[c]
		}
		x[r] = s / A[r][r]
	}
	return x
}
