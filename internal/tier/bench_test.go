package tier

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pragformer/internal/advisor"
	"pragformer/internal/core"
	"pragformer/internal/serve"
	"pragformer/internal/tokenize"
)

// Router-over-replicas vs one engine straight: BENCH_TIER.json snapshots
// these. The model is the same untrained bundle the serve benchmarks use —
// the tier adds routing, HTTP hops, and store lookups around identical
// compute, so the interesting numbers are the overhead per request and the
// warm-store path that answers with no forward at all.

func benchBundle(b *testing.B) *advisor.Models {
	b.Helper()
	v := tokenize.BuildVocab([][]string{{"for", "(", "i", "=", "0", ";", "<", "n", "+", ")", "a", "[", "]", "*", "b"}}, 1)
	m, err := core.New(core.Config{Vocab: v.Size() + 100, MaxLen: 64, D: 32, Heads: 4, Layers: 1}, 5)
	if err != nil {
		b.Fatal(err)
	}
	return &advisor.Models{Directive: m, Vocab: v, MaxLen: 64}
}

func benchEngine(b *testing.B, models *advisor.Models) *httptest.Server {
	b.Helper()
	e, err := serve.New(models, serve.Config{
		MaxBatch: 16, MaxWait: 500 * time.Microsecond, CacheSize: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	srv := httptest.NewServer(e.Handler())
	b.Cleanup(srv.Close)
	return srv
}

func benchBodies(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		code := fmt.Sprintf("for (i = 0; i < %d; i++) a[i] = a[i] + %d * b[i];", i+2, i+1)
		buf, _ := json.Marshal(predictRequest{Code: code})
		out[i] = buf
	}
	return out
}

func benchPost(b *testing.B, url string, bodies [][]byte) {
	b.Helper()
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	var i int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := bodies[int(i)%len(bodies)]
			i++
			resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
}

// BenchmarkSingleEngineHTTP is the baseline: one replica, direct HTTP.
func BenchmarkSingleEngineHTTP(b *testing.B) {
	srv := benchEngine(b, benchBundle(b))
	benchPost(b, srv.URL, benchBodies(64))
}

// BenchmarkRouterThroughput routes the same load across two replicas.
func BenchmarkRouterThroughput(b *testing.B) {
	models := benchBundle(b)
	rt, err := New(Config{
		Replicas: []string{benchEngine(b, models).URL, benchEngine(b, models).URL},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	b.Cleanup(front.Close)
	benchPost(b, front.URL, benchBodies(64))
}

// BenchmarkRouterWarmSuggest measures the shared-store read-through path:
// after one cold pass every verdict is answered by the router itself, no
// replica forward.
func BenchmarkRouterWarmSuggest(b *testing.B) {
	models := benchBundle(b)
	rt, err := New(Config{
		Replicas: []string{benchEngine(b, models).URL, benchEngine(b, models).URL},
		Backend:  "bench", ModelID: "bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	b.Cleanup(front.Close)

	// Canonical-form snippets so the cold pass populates the store.
	bodies := make([][]byte, 64)
	for i := range bodies {
		snip, _, ok := canonical(fmt.Sprintf("for (i = 0; i < %d; i++) a[i] = a[i] + %d * b[i];", i+2, i+1))
		if !ok {
			b.Fatal("bench snippet did not canonicalize")
		}
		buf, _ := json.Marshal(suggestRequest{Code: snip})
		bodies[i] = buf
	}
	for _, body := range bodies { // cold pass
		resp, err := http.Post(front.URL+"/suggest", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	if rt.store.Len() == 0 {
		b.Fatal("cold pass did not populate the store")
	}
	cold := rt.forwards.Load()

	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	var i int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := bodies[int(i)%len(bodies)]
			i++
			resp, err := http.Post(front.URL+"/suggest", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()
	if got := rt.forwards.Load(); got != cold {
		b.Fatalf("warm bench forwarded (%d -> %d)", cold, got)
	}
}
