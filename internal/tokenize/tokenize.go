// Package tokenize converts code snippets into the token sequences the
// models consume: the paper's four code representations (Text, Replaced-
// Text, AST, Replaced-AST — §4.2, Table 6), a frequency-based vocabulary
// with special tokens, and the type-level corpus statistics of Table 7.
package tokenize

import (
	"fmt"

	"pragformer/internal/cast"
	"pragformer/internal/clex"
	"pragformer/internal/cparse"
)

// Representation selects how a snippet is rendered into tokens.
type Representation int

const (
	// Text is the raw lexical token stream.
	Text Representation = iota
	// RText is Text after canonical identifier replacement (var0, arr0...).
	RText
	// AST is the DFS serialization of the parse tree.
	AST
	// RAST is AST after identifier replacement.
	RAST
)

// String names the representation as the paper does.
func (r Representation) String() string {
	switch r {
	case Text:
		return "Text"
	case RText:
		return "Replaced-Text"
	case AST:
		return "AST"
	default:
		return "Replaced-AST"
	}
}

// Representations lists all four in the paper's order.
var Representations = []Representation{Text, RText, AST, RAST}

// Extract renders code into tokens under the chosen representation.
func Extract(code string, repr Representation) ([]string, error) {
	switch repr {
	case Text:
		return lexTokens(code)
	case RText:
		f, err := cparse.Parse(code)
		if err != nil {
			return nil, err
		}
		cast.Rename(f)
		return lexTokens(cast.Print(f))
	case AST:
		f, err := cparse.Parse(code)
		if err != nil {
			return nil, err
		}
		stripPragmaNodes(f)
		return cast.SerializeTokens(f), nil
	case RAST:
		f, err := cparse.Parse(code)
		if err != nil {
			return nil, err
		}
		stripPragmaNodes(f)
		cast.Rename(f)
		return cast.SerializeTokens(f), nil
	}
	return nil, fmt.Errorf("tokenize: unknown representation %d", repr)
}

// stripPragmaNodes unwraps PragmaStmt nodes so directive text never reaches
// the model input (label leakage).
func stripPragmaNodes(f *cast.File) {
	for i, it := range f.Items {
		if ps, ok := it.(*cast.PragmaStmt); ok {
			if ps.Stmt != nil {
				f.Items[i] = ps.Stmt
			} else {
				f.Items[i] = &cast.Empty{}
			}
		}
	}
	cast.Walk(f, func(n cast.Node) bool {
		if b, ok := n.(*cast.Block); ok {
			for i, s := range b.Stmts {
				if ps, ok := s.(*cast.PragmaStmt); ok {
					if ps.Stmt != nil {
						b.Stmts[i] = ps.Stmt
					} else {
						b.Stmts[i] = &cast.Empty{}
					}
				}
			}
		}
		return true
	})
}

// lexTokens returns the raw token texts, skipping pragmas (the label must
// never leak into the model input).
func lexTokens(code string) ([]string, error) {
	toks, err := clex.Lex(code)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == clex.EOF || t.Kind == clex.Pragma {
			continue
		}
		out = append(out, t.Text)
	}
	return out, nil
}

// Special token ids, fixed across all vocabularies.
const (
	PAD  = 0
	UNK  = 1
	CLS  = 2
	MASK = 3
	// NumSpecials is the count of reserved ids.
	NumSpecials = 4
)

// Vocab maps token strings to dense ids.
type Vocab struct {
	byToken map[string]int
	tokens  []string
}

// BuildVocab indexes every token type appearing at least minFreq times in
// seqs. Ids are assigned in first-appearance order after the specials, so
// vocabularies are deterministic.
func BuildVocab(seqs [][]string, minFreq int) *Vocab {
	if minFreq < 1 {
		minFreq = 1
	}
	counts := map[string]int{}
	var order []string
	for _, seq := range seqs {
		for _, tok := range seq {
			if counts[tok] == 0 {
				order = append(order, tok)
			}
			counts[tok]++
		}
	}
	v := &Vocab{byToken: map[string]int{}}
	v.tokens = append(v.tokens, "[PAD]", "[UNK]", "[CLS]", "[MASK]")
	for _, tok := range order {
		if counts[tok] >= minFreq {
			v.byToken[tok] = len(v.tokens)
			v.tokens = append(v.tokens, tok)
		}
	}
	return v
}

// Size returns the vocabulary size including specials.
func (v *Vocab) Size() int { return len(v.tokens) }

// ID returns the id for a token, or UNK.
func (v *Vocab) ID(tok string) int {
	if id, ok := v.byToken[tok]; ok {
		return id
	}
	return UNK
}

// Token returns the string for an id.
func (v *Vocab) Token(id int) string {
	if id < 0 || id >= len(v.tokens) {
		return "[UNK]"
	}
	return v.tokens[id]
}

// Contains reports whether tok is in-vocabulary.
func (v *Vocab) Contains(tok string) bool {
	_, ok := v.byToken[tok]
	return ok
}

// Encode produces [CLS] + token ids, truncated to maxLen total positions.
// Sequences are not padded; the model handles variable lengths.
func (v *Vocab) Encode(tokens []string, maxLen int) []int {
	if maxLen < 1 {
		maxLen = 1
	}
	ids := make([]int, 0, min(len(tokens)+1, maxLen))
	ids = append(ids, CLS)
	for _, tok := range tokens {
		if len(ids) >= maxLen {
			break
		}
		ids = append(ids, v.ID(tok))
	}
	return ids
}

// Decode maps ids back to token strings (diagnostics).
func (v *Vocab) Decode(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = v.Token(id)
	}
	return out
}

// Stats are the Table 7 type-level corpus statistics for one representation.
type Stats struct {
	Representation Representation
	TrainVocab     int     // token types in the training set
	OOVTypes       int     // validation+test types missing from training
	AvgLength      float64 // mean tokens per snippet
}

// ComputeStats derives Table 7 numbers from tokenized splits.
func ComputeStats(repr Representation, train, validtest [][]string) Stats {
	trainTypes := map[string]bool{}
	totalToks := 0
	for _, seq := range train {
		totalToks += len(seq)
		for _, tok := range seq {
			trainTypes[tok] = true
		}
	}
	oov := map[string]bool{}
	for _, seq := range validtest {
		totalToks += len(seq)
		for _, tok := range seq {
			if !trainTypes[tok] {
				oov[tok] = true
			}
		}
	}
	n := len(train) + len(validtest)
	avg := 0.0
	if n > 0 {
		avg = float64(totalToks) / float64(n)
	}
	return Stats{
		Representation: repr,
		TrainVocab:     len(trainTypes),
		OOVTypes:       len(oov),
		AvgLength:      avg,
	}
}
