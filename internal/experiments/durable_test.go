package experiments

import (
	"os"
	"reflect"
	"testing"

	"pragformer/internal/dataset"
	"pragformer/internal/tokenize"
)

// TestDurablePipelineRestoresFinishedModel simulates the restart story of
// `-mode full -checkpoint-dir`: a second pipeline (a "new process") with
// the same config must restore a finished model from its checkpoint
// instead of retraining, with identical history and bit-identical weights.
func TestDurablePipelineRestoresFinishedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	prm := Params{
		CorpusTotal: 300, D: 16, Heads: 2, Layers: 1, FFHidden: 32,
		Epochs: 2, MaxLen: 48, Batch: 16, LR: 1.5e-3, Dropout: 0.05,
	}
	mk := func() *Pipeline {
		p := NewPipeline(Config{Mode: Fast, Seed: 9, CheckpointDir: dir})
		p.P.CorpusTotal = prm.CorpusTotal
		return p
	}

	p1 := mk()
	t1 := p1.trainModel(dataset.TaskDirective, tokenize.Text, prm, 9)
	files, err := os.ReadDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("expected 1 checkpoint, got %v (%v)", files, err)
	}

	p2 := mk()
	var retrained bool
	p2.Cfg.Progress = func(s string) {
		if s == "MLM pretraining" || len(s) > 8 && s[:8] == "training" {
			retrained = true
		}
	}
	t2 := p2.trainModel(dataset.TaskDirective, tokenize.Text, prm, 9)
	if retrained {
		t.Error("second pipeline retrained instead of restoring the checkpoint")
	}
	if !reflect.DeepEqual(t1.History, t2.History) {
		t.Errorf("restored history differs:\n%+v\n%+v", t1.History, t2.History)
	}
	w1, w2 := t1.Model.Params(), t2.Model.Params()
	for i := range w1 {
		if !reflect.DeepEqual(w1[i].W.Data, w2[i].W.Data) {
			t.Fatalf("restored weights differ at tensor %d (%s)", i, w1[i].Name)
		}
	}

	// A changed knob must key a different checkpoint, not collide.
	prm2 := prm
	prm2.LR = 2e-3
	if p1.checkpointPath(dataset.TaskDirective, tokenize.Text, prm, 9) ==
		p1.checkpointPath(dataset.TaskDirective, tokenize.Text, prm2, 9) {
		t.Error("ablation variants share a checkpoint path")
	}
}
