package corpus

import (
	"bytes"
	"strings"
	"testing"

	"pragformer/internal/pragma"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c := Generate(Config{Seed: 3, Total: 120})
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Records) != len(c.Records) {
		t.Fatalf("records = %d, want %d", len(c2.Records), len(c.Records))
	}
	for i, r := range c.Records {
		r2 := c2.Records[i]
		if r2.Code != r.Code || r2.Domain != r.Domain || r2.Lines != r.Lines {
			t.Fatalf("record %d fields differ", i)
		}
		if !pragma.Equal(r.Directive, r2.Directive) {
			t.Fatalf("record %d directive: %v vs %v", i, r.Directive, r2.Directive)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	c := Generate(Config{Seed: 3, Total: 30})
	path := t.TempDir() + "/corpus.jsonl"
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Records) != 30 {
		t.Fatalf("records = %d", len(c2.Records))
	}
	if c.Stats() != c2.Stats() {
		t.Error("stats changed across round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{broken")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Load(strings.NewReader(`{"id":0,"code":"x;","pragma":"#pragma once"}`)); err == nil {
		t.Fatal("expected error for bad pragma")
	}
}

func TestLoadEmpty(t *testing.T) {
	c, err := Load(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) != 0 {
		t.Fatal("expected empty corpus")
	}
}
