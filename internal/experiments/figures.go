package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"pragformer/internal/dataset"
	"pragformer/internal/lime"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

// RepresentationCurves carries the Figures 4–6 learning curves: one
// training run of the directive task per code representation.
type RepresentationCurves struct {
	Histories map[tokenize.Representation]train.History
}

// RunFigures456 trains the directive model under each representation and
// returns the accuracy/loss curves.
func (p *Pipeline) RunFigures456() RepresentationCurves {
	out := RepresentationCurves{Histories: map[tokenize.Representation]train.History{}}
	for _, repr := range tokenize.Representations {
		out.Histories[repr] = p.Model(dataset.TaskDirective, repr).History
	}
	return out
}

// FinalAccuracy returns the best-epoch validation accuracy per
// representation (the numbers quoted in §5.1).
func (r RepresentationCurves) FinalAccuracy() map[tokenize.Representation]float64 {
	out := map[tokenize.Representation]float64{}
	for repr, h := range r.Histories {
		out[repr] = h.Best().ValidAccuracy
	}
	return out
}

// Print renders the three figures as aligned series.
func (r RepresentationCurves) Print(w io.Writer) {
	printSeries := func(title string, get func(train.EpochStats) float64) {
		fmt.Fprintln(w, title)
		for _, repr := range tokenize.Representations {
			h := r.Histories[repr]
			var vals []string
			for _, e := range h.Epochs {
				vals = append(vals, fmt.Sprintf("%.3f", get(e)))
			}
			fmt.Fprintf(w, "  %-14s %s\n", repr, strings.Join(vals, " "))
		}
	}
	printSeries("Figure 4: validation accuracy per epoch", func(e train.EpochStats) float64 { return e.ValidAccuracy })
	printSeries("Figure 5: training loss per epoch", func(e train.EpochStats) float64 { return e.TrainLoss })
	printSeries("Figure 6: validation loss per epoch", func(e train.EpochStats) float64 { return e.ValidLoss })
	fmt.Fprintln(w, "  Best-epoch accuracy:")
	for _, repr := range tokenize.Representations {
		fmt.Fprintf(w, "    %-14s %.3f (epoch %d)\n", repr,
			r.Histories[repr].Best().ValidAccuracy, r.Histories[repr].BestEpoch+1)
	}
}

// LengthBucket is one Figure 7 bar: the PragFormer error rate for snippets
// within a token-length band.
type LengthBucket struct {
	MaxTokens int // inclusive upper edge; the last bucket is open-ended
	Count     int
	Errors    int
}

// ErrorRate returns the bucket's error percentage.
func (b LengthBucket) ErrorRate() float64 {
	if b.Count == 0 {
		return 0
	}
	return 100 * float64(b.Errors) / float64(b.Count)
}

// Figure7 is the error-rate-by-length study.
type Figure7 struct {
	Buckets []LengthBucket
}

// RunFigure7 buckets PragFormer's directive-task test errors by snippet
// token length (the paper reports >80% of errors under length 20 and almost
// none above 50).
func (p *Pipeline) RunFigure7() Figure7 {
	split := p.DirectiveSplit()
	trained := p.Model(dataset.TaskDirective, tokenize.Text)
	v := p.Vocab(tokenize.Text)
	edges := []int{15, 25, 35, 50, 80, 1 << 30}
	buckets := make([]LengthBucket, len(edges))
	for i, e := range edges {
		buckets[i].MaxTokens = e
	}
	ids := make([][]int, len(split.Test))
	for i, in := range split.Test {
		ids[i] = v.Encode(p.Tokens(in.Rec, tokenize.Text), p.P.MaxLen)
	}
	labels := predictLabels(trained.Model, ids)
	for k, in := range split.Test {
		toks := p.Tokens(in.Rec, tokenize.Text)
		wrong := labels[k] != in.Label
		for i, e := range edges {
			if len(toks) <= e {
				buckets[i].Count++
				if wrong {
					buckets[i].Errors++
				}
				break
			}
		}
	}
	return Figure7{Buckets: buckets}
}

// Print renders the figure.
func (f Figure7) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: Prediction error rate by example length (tokens)")
	for i, b := range f.Buckets {
		label := fmt.Sprintf("<=%d", b.MaxTokens)
		if i == len(f.Buckets)-1 {
			label = fmt.Sprintf(">%d", f.Buckets[i-1].MaxTokens)
		}
		fmt.Fprintf(w, "  %-8s n=%4d  error %5.1f%%\n", label, b.Count, b.ErrorRate())
	}
}

// PaperExample is one Table 12 / Figure 8 qualitative case.
type PaperExample struct {
	Name      string
	Code      string
	TrueLabel bool // suite annotation
	Predicted bool
	Prob      float64
	Top       []lime.Attribution
}

// RunTable12Figure8 reproduces the four qualitative examples with LIME
// attributions over the trained directive model.
func (p *Pipeline) RunTable12Figure8() []PaperExample {
	trained := p.Model(dataset.TaskDirective, tokenize.Text)
	v := p.Vocab(tokenize.Text)
	predictTokens := func(tokens []string) float64 {
		return trained.Model.Predict(v.Encode(tokens, p.P.MaxLen))
	}
	// LIME explains the log-odds rather than the probability: saturated
	// predictions (p ≈ 0 or 1) leave no usable signal in probability space.
	logitTokens := func(tokens []string) float64 {
		pr := math.Min(math.Max(predictTokens(tokens), 1e-6), 1-1e-6)
		return math.Log(pr / (1 - pr))
	}

	cases := []struct {
		name  string
		code  string
		label bool
	}{
		{
			"1: PolyBench matvec (with OpenMP)",
			"for (i = 0; i < POLYBENCH_LOOP_BOUND(4000, n); i++)\n" +
				"    for (j = 0; j < POLYBENCH_LOOP_BOUND(4000, n); j++)\n" +
				"        x1[i] = x1[i] + (A[i][j] * y_1[j]);\n",
			true,
		},
		{
			"2: stderr dump loop (without OpenMP)",
			"for (i = 0; i < n; i++) {\n" +
				"    fprintf(stderr, \"%0.2lf \", x[i]);\n" +
				"    if ((i % 20) == 0)\n" +
				"        fprintf(stderr, \" \\n\");\n}\n",
			false,
		},
		{
			"3: SPEC colormap loop (with OpenMP)",
			"for (i = 0; i < ((ssize_t) image->colors); i++)\n" +
				"    image->colormap[i].opacity = (IndexPacket) i;\n",
			true,
		},
		{
			"4: PolyBench unannotated init (without OpenMP)",
			"for (i = 0; i < maxgrid; i++)\n" +
				"    for (j = 0; j < maxgrid; j++) {\n" +
				"        sum_tang[i][j] = (int) ((i + 1) * (j + 1));\n" +
				"        mean[i][j] = (((int) i) - j) / maxgrid;\n" +
				"        path[i][j] = (((int) i) * (j - 1)) / maxgrid;\n}\n",
			false,
		},
	}

	explainer := lime.New(p.Cfg.Seed + 9)
	explainer.Samples = p.P.LimeSamples
	var out []PaperExample
	for _, c := range cases {
		toks, err := tokenize.Extract(c.code, tokenize.Text)
		if err != nil {
			continue
		}
		prob := predictTokens(toks)
		out = append(out, PaperExample{
			Name:      c.name,
			Code:      c.code,
			TrueLabel: c.label,
			Predicted: prob > 0.5,
			Prob:      prob,
			Top:       explainer.Explain(toks, logitTokens, 6),
		})
	}
	return out
}

// PrintExamples renders Table 12 + Figure 8.
func PrintExamples(w io.Writer, examples []PaperExample) {
	fmt.Fprintln(w, "Table 12 / Figure 8: qualitative examples with LIME attributions")
	for _, ex := range examples {
		fmt.Fprintf(w, "  Example %s\n", ex.Name)
		fmt.Fprintf(w, "    directive: %v   PragFormer: %v (p=%.2f)\n", ex.TrueLabel, ex.Predicted, ex.Prob)
		var toks []string
		for _, a := range ex.Top {
			toks = append(toks, fmt.Sprintf("%s(%+.3f)", a.Token, a.Weight))
		}
		fmt.Fprintf(w, "    LIME top tokens: %s\n", strings.Join(toks, " "))
	}
}
