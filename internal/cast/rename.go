package cast

import (
	"fmt"
	"sort"
)

// RenameResult maps original identifiers to their canonical replacements.
type RenameResult struct {
	Mapping map[string]string
}

// knownLibraryFuncs are never renamed: their identity carries semantics the
// classifier should see (the paper's LIME analysis shows fprintf/stderr
// driving "no pragma" predictions).
var knownLibraryFuncs = map[string]bool{
	"printf": true, "fprintf": true, "scanf": true, "fscanf": true,
	"sprintf": true, "snprintf": true, "puts": true, "putchar": true,
	"getchar": true, "fgets": true, "fputs": true, "fopen": true,
	"fclose": true, "fread": true, "fwrite": true, "fflush": true,
	"malloc": true, "calloc": true, "realloc": true, "free": true,
	"memcpy": true, "memset": true, "memmove": true, "strcpy": true,
	"strncpy": true, "strcat": true, "strcmp": true, "strlen": true,
	"rand": true, "srand": true, "exit": true, "abort": true,
	"sqrt": true, "sqrtf": true, "fabs": true, "fabsf": true, "abs": true,
	"sin": true, "cos": true, "tan": true, "exp": true, "log": true,
	"pow": true, "floor": true, "ceil": true, "fmax": true, "fmin": true,
	"stderr": true, "stdout": true, "stdin": true, "NULL": true,
}

// IsLibraryName reports whether name is a C standard-library identifier
// exempt from canonicalization.
func IsLibraryName(name string) bool { return knownLibraryFuncs[name] }

// Rename rewrites all user identifiers in n (in place) to canonical indexed
// names — scalar variables become var0, var1, ...; identifiers used as array
// bases become arr0, arr1, ...; called functions become func0, func1, ...;
// struct fields become fld0, ... — producing the paper's "Replaced"
// representations (R-Text and R-AST, §4.2). Standard library names are kept.
// The classification pass runs first over the whole tree so a name's role is
// consistent everywhere it appears; numbering follows first appearance.
func Rename(n Node) RenameResult {
	arrays := map[string]bool{}
	funcs := map[string]bool{}
	fields := map[string]bool{}

	Walk(n, func(nd Node) bool {
		switch v := nd.(type) {
		case *ArrayRef:
			if base := rootIdent(v.Arr); base != "" {
				arrays[base] = true
			}
		case *FuncCall:
			if id, ok := v.Fun.(*Ident); ok {
				funcs[id.Name] = true
			}
		case *FuncDef:
			funcs[v.Name] = true
		case *Member:
			fields[v.Field] = true
		case *Decl:
			if len(v.ArrayDims) > 0 || (v.Type != nil && v.Type.Ptr > 0) {
				arrays[v.Name] = true
			}
		}
		return true
	})

	mapping := map[string]string{}
	var counts [4]int // var, arr, func, fld
	assign := func(name string, class int) string {
		if knownLibraryFuncs[name] {
			return name
		}
		if r, ok := mapping[name]; ok {
			return r
		}
		prefixes := [...]string{"var", "arr", "func", "fld"}
		r := fmt.Sprintf("%s%d", prefixes[class], counts[class])
		counts[class]++
		mapping[name] = r
		return r
	}
	classOf := func(name string) int {
		switch {
		case funcs[name]:
			return 2
		case arrays[name]:
			return 1
		default:
			return 0
		}
	}

	Walk(n, func(nd Node) bool {
		switch v := nd.(type) {
		case *Ident:
			v.Name = assign(v.Name, classOf(v.Name))
		case *Decl:
			if v.Name != "" {
				v.Name = assign(v.Name, classOf(v.Name))
			}
		case *FuncDef:
			v.Name = assign(v.Name, 2)
		case *Member:
			if !fields[v.Field] { // defensive; fields map covers all
				fields[v.Field] = true
			}
			v.Field = assign(v.Field, 3)
		}
		return true
	})

	return RenameResult{Mapping: mapping}
}

// rootIdent returns the base identifier of a possibly nested postfix
// expression (a[i][j] -> a, s->p[i] -> s), or "" when there is none.
func rootIdent(e Expr) string {
	for {
		switch v := e.(type) {
		case *Ident:
			return v.Name
		case *ArrayRef:
			e = v.Arr
		case *Member:
			e = v.X
		case *UnaryOp:
			e = v.X
		case *Cast:
			e = v.X
		default:
			return ""
		}
	}
}

// RootIdent is the exported form of rootIdent for use by the dependence
// analyzer and the S2S compilers.
func RootIdent(e Expr) string { return rootIdent(e) }

// Clone returns a deep copy of the AST rooted at n. Rename mutates in
// place, so callers that need both original and replaced representations
// clone first.
func Clone(n Node) Node {
	switch v := n.(type) {
	case nil:
		return nil
	case *File:
		c := &File{}
		for _, it := range v.Items {
			c.Items = append(c.Items, Clone(it))
		}
		return c
	case *FuncDef:
		c := &FuncDef{ReturnType: cloneType(v.ReturnType), Name: v.Name}
		for _, p := range v.Params {
			c.Params = append(c.Params, Clone(p).(*Decl))
		}
		c.Body = Clone(v.Body).(*Block)
		return c
	case *Decl:
		c := &Decl{Type: cloneType(v.Type), Name: v.Name, IsTypedef: v.IsTypedef}
		for _, d := range v.ArrayDims {
			c.ArrayDims = append(c.ArrayDims, cloneExpr(d))
		}
		c.Init = cloneExpr(v.Init)
		return c
	case *Block:
		c := &Block{}
		for _, s := range v.Stmts {
			c.Stmts = append(c.Stmts, Clone(s).(Stmt))
		}
		return c
	case *ExprStmt:
		return &ExprStmt{X: cloneExpr(v.X)}
	case *DeclStmt:
		c := &DeclStmt{}
		for _, d := range v.Decls {
			c.Decls = append(c.Decls, Clone(d).(*Decl))
		}
		return c
	case *For:
		c := &For{Cond: cloneExpr(v.Cond), Post: cloneExpr(v.Post)}
		if v.Init != nil {
			c.Init = Clone(v.Init).(Stmt)
		}
		if v.Body != nil {
			c.Body = Clone(v.Body).(Stmt)
		}
		return c
	case *While:
		return &While{Cond: cloneExpr(v.Cond), Body: Clone(v.Body).(Stmt)}
	case *DoWhile:
		return &DoWhile{Body: Clone(v.Body).(Stmt), Cond: cloneExpr(v.Cond)}
	case *If:
		c := &If{Cond: cloneExpr(v.Cond), Then: Clone(v.Then).(Stmt)}
		if v.Else != nil {
			c.Else = Clone(v.Else).(Stmt)
		}
		return c
	case *Return:
		return &Return{X: cloneExpr(v.X)}
	case *Break:
		return &Break{}
	case *Continue:
		return &Continue{}
	case *Empty:
		return &Empty{}
	case *PragmaStmt:
		c := &PragmaStmt{Text: v.Text}
		if v.Stmt != nil {
			c.Stmt = Clone(v.Stmt).(Stmt)
		}
		return c
	case *Ident:
		return &Ident{Name: v.Name}
	case *IntLit:
		return &IntLit{Text: v.Text}
	case *FloatLit:
		return &FloatLit{Text: v.Text}
	case *CharLit:
		return &CharLit{Text: v.Text}
	case *StrLit:
		return &StrLit{Text: v.Text}
	case *BinaryOp:
		return &BinaryOp{Op: v.Op, L: cloneExpr(v.L), R: cloneExpr(v.R)}
	case *Assign:
		return &Assign{Op: v.Op, L: cloneExpr(v.L), R: cloneExpr(v.R)}
	case *UnaryOp:
		return &UnaryOp{Op: v.Op, X: cloneExpr(v.X), Postfix: v.Postfix}
	case *ArrayRef:
		return &ArrayRef{Arr: cloneExpr(v.Arr), Index: cloneExpr(v.Index)}
	case *FuncCall:
		c := &FuncCall{Fun: cloneExpr(v.Fun)}
		for _, a := range v.Args {
			c.Args = append(c.Args, cloneExpr(a))
		}
		return c
	case *Member:
		return &Member{X: cloneExpr(v.X), Field: v.Field, Arrow: v.Arrow}
	case *Ternary:
		return &Ternary{Cond: cloneExpr(v.Cond), Then: cloneExpr(v.Then), Else: cloneExpr(v.Else)}
	case *Cast:
		return &Cast{Type: cloneType(v.Type), X: cloneExpr(v.X)}
	case *Sizeof:
		return &Sizeof{Type: cloneType(v.Type), X: cloneExpr(v.X)}
	case *Comma:
		return &Comma{L: cloneExpr(v.L), R: cloneExpr(v.R)}
	case *InitList:
		c := &InitList{}
		for _, e := range v.Elems {
			c.Elems = append(c.Elems, cloneExpr(e))
		}
		return c
	}
	return nil
}

func cloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	return Clone(e).(Expr)
}

func cloneType(t *TypeSpec) *TypeSpec {
	if t == nil {
		return nil
	}
	c := &TypeSpec{Struct: t.Struct, Union: t.Union, Ptr: t.Ptr}
	c.Quals = append(c.Quals, t.Quals...)
	c.Names = append(c.Names, t.Names...)
	return c
}

// CollectIdents returns the sorted set of identifier names appearing in n.
func CollectIdents(n Node) []string {
	set := map[string]bool{}
	Walk(n, func(nd Node) bool {
		if id, ok := nd.(*Ident); ok {
			set[id.Name] = true
		}
		return true
	})
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
