package corpus

import (
	"math/rand"
	"strings"

	"pragformer/internal/cast"
	"pragformer/internal/pragma"
)

// Held-out benchmark suites for the paper's generality study (§5.4,
// Table 11). PolyBench-style snippets use unexpanded POLYBENCH_LOOP_BOUND
// macros; SPEC-style snippets use the application constructs (register,
// ssize_t casts, struct member chains) that broke ComPar's frontend in the
// paper. Labels follow suite annotation practice, not pure dependence
// analysis: PolyBench leaves some parallelizable initialization loops
// unannotated (the paper's Table 12 example 4), which bounds every
// classifier's achievable accuracy below 1.

// pbBound builds POLYBENCH_LOOP_BOUND(c, n).
func pbBound(c int, n string) cast.Expr {
	return call("POLYBENCH_LOOP_BOUND", lit(c), id(n))
}

// GeneratePolyBench produces the PolyBench-style held-out set: 64 snippets
// with OpenMP directives and 83 without (the paper's counts).
func GeneratePolyBench(seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{}
	add := func(s *snippet, d *pragma.Directive) {
		code := renderSnippet(s)
		c.Records = append(c.Records, &Record{
			ID: len(c.Records), Code: code, Directive: d,
			Domain: DomainBenchmark, Template: s.template,
			Lines: strings.Count(code, "\n"),
		})
	}
	labelAndAdd := func(s *snippet) {
		d, _ := labelSnippet(s)
		add(s, d)
	}

	// --- positives: 64 polyhedral kernels ---
	for x := 0; x < 20; x++ { // matvec family (paper Table 12 example 1)
		labelAndAdd(pbMatVec(rng))
	}
	for x := 0; x < 12; x++ { // gemm-like triple loops
		labelAndAdd(pbGemm(rng))
	}
	for x := 0; x < 12; x++ { // out-of-place jacobi sweeps
		labelAndAdd(pbJacobi(rng))
	}
	for x := 0; x < 10; x++ { // atax/bicg-like two-phase products
		labelAndAdd(pbAtax(rng))
	}
	for x := 0; x < 10; x++ { // gesummv-like combined updates
		labelAndAdd(pbGesummv(rng))
	}

	// --- negatives: 83 ---
	for x := 0; x < 35; x++ { // result-dump I/O loops (Table 12 example 2)
		s := tplIOPrint(rng, &genCtx{})
		s.template = "pbDump"
		add(s, nil)
	}
	for x := 0; x < 30; x++ { // dependence-carrying sweeps
		var s *snippet
		switch x % 3 {
		case 0:
			s = tplRecurrence(rng, &genCtx{})
		case 1:
			s = tplInPlaceStencil(rng, &genCtx{})
		default:
			s = tplPrefixSum(rng, &genCtx{})
		}
		s.template = "pbSerial"
		add(s, nil)
	}
	for x := 0; x < 10; x++ { // tiny setup loops
		s := tplTinyNested(rng, &genCtx{})
		s.template = "pbTinyInit"
		add(s, nil)
	}
	for x := 0; x < 8; x++ { // parallelizable but unannotated init
		s := pbUnannotatedInit(rng)
		add(s, nil) // suite annotation says no directive
	}
	return c
}

func pbMatVec(rng *rand.Rand) *snippet {
	n := []string{"n", "m", "size"}[rng.Intn(3)]
	cBound := []int{2000, 4000, 8000}[rng.Intn(3)]
	arrs := []string{"x1", "A", "y_1"}
	if rng.Intn(2) == 0 {
		arrs = []string{"x2", "B", "y_2"}
	}
	inner := forUp("j", lit(0), pbBound(cBound, n),
		es(asg(aref(id(arrs[0]), id("i")),
			bin("+", aref(id(arrs[0]), id("i")),
				bin("*", aref(id(arrs[1]), id("i"), id("j")), aref(id(arrs[2]), id("j")))))))
	loop := forUp("i", lit(0), pbBound(cBound, n), inner)
	return newSnippet("pbMatVec", loop)
}

func pbGemm(rng *rand.Rand) *snippet {
	n := []string{"ni", "nj", "nk"}[rng.Intn(3)]
	cBound := []int{1000, 1024, 2000}[rng.Intn(3)]
	kLoop := forUp("k", lit(0), pbBound(cBound, n),
		es(opAsg("+=", aref(id("C"), id("i"), id("j")),
			bin("*", bin("*", id("alpha"), aref(id("A"), id("i"), id("k"))), aref(id("B"), id("k"), id("j"))))))
	jBody := block(
		es(asg(aref(id("C"), id("i"), id("j")), bin("*", aref(id("C"), id("i"), id("j")), id("beta")))),
		kLoop,
	)
	loop := forUp("i", lit(0), pbBound(cBound, n), forUp("j", lit(0), pbBound(cBound, n), jBody))
	return newSnippet("pbGemm", loop)
}

func pbJacobi(rng *rand.Rand) *snippet {
	cBound := []int{500, 1000}[rng.Intn(2)]
	rhs := bin("*", flit("0.2"),
		bin("+", bin("+", bin("+", aref(id("A"), id("i"), id("j")),
			aref(id("A"), id("i"), bin("-", id("j"), lit(1)))),
			aref(id("A"), id("i"), bin("+", id("j"), lit(1)))),
			aref(id("A"), bin("+", id("i"), lit(1)), id("j"))))
	inner := forUp("j", lit(1), bin("-", pbBound(cBound, "n"), lit(1)),
		es(asg(aref(id("B"), id("i"), id("j")), rhs)))
	loop := forUp("i", lit(1), bin("-", pbBound(cBound, "n"), lit(1)), inner)
	return newSnippet("pbJacobi", loop)
}

func pbAtax(rng *rand.Rand) *snippet {
	cBound := []int{1800, 2100, 4000}[rng.Intn(3)]
	body := block(
		es(asg(id("tmp0"), flit("0.0"))),
		forUp("j", lit(0), pbBound(cBound, "n"),
			es(opAsg("+=", id("tmp0"), bin("*", aref(id("A"), id("i"), id("j")), aref(id("x"), id("j")))))),
		es(asg(aref(id("y"), id("i")), id("tmp0"))),
	)
	loop := forUp("i", lit(0), pbBound(cBound, "m"), body)
	return newSnippet("pbAtax", loop)
}

func pbGesummv(rng *rand.Rand) *snippet {
	cBound := []int{1300, 2800}[rng.Intn(2)]
	body := block(
		es(asg(id("tmp0"), flit("0.0"))),
		es(asg(aref(id("y"), id("i")), flit("0.0"))),
		forUp("j", lit(0), pbBound(cBound, "n"), block(
			es(asg(id("tmp0"), bin("+", bin("*", aref(id("A"), id("i"), id("j")), aref(id("x"), id("j"))), id("tmp0")))),
			es(asg(aref(id("y"), id("i")), bin("+", bin("*", aref(id("B"), id("i"), id("j")), aref(id("x"), id("j"))), aref(id("y"), id("i"))))),
		)),
		es(asg(aref(id("y"), id("i")), bin("+", bin("*", id("alpha"), id("tmp0")), bin("*", id("beta"), aref(id("y"), id("i")))))),
	)
	loop := forUp("i", lit(0), pbBound(cBound, "n"), body)
	return newSnippet("pbGesummv", loop)
}

// pbUnannotatedInit is a parallelizable initialization the suite left
// unannotated (the paper's Table 12 example 4).
func pbUnannotatedInit(rng *rand.Rand) *snippet {
	arrs := [][3]string{
		{"sum_tang", "mean", "path"},
		{"w_init", "b_init", "g_init"},
	}[rng.Intn(2)]
	body := block(
		es(asg(aref(id(arrs[0]), id("i"), id("j")),
			&cast.Cast{Type: &cast.TypeSpec{Names: []string{"int"}},
				X: bin("*", bin("+", id("i"), lit(1)), bin("+", id("j"), lit(1)))})),
		es(asg(aref(id(arrs[1]), id("i"), id("j")),
			bin("/", bin("-", &cast.Cast{Type: &cast.TypeSpec{Names: []string{"int"}}, X: id("i")}, id("j")), id("maxgrid")))),
		es(asg(aref(id(arrs[2]), id("i"), id("j")),
			bin("/", bin("*", &cast.Cast{Type: &cast.TypeSpec{Names: []string{"int"}}, X: id("i")}, bin("-", id("j"), lit(1))), id("maxgrid")))),
	)
	inner := forUp("j", lit(0), id("maxgrid"), body)
	loop := forUp("i", lit(0), id("maxgrid"), inner)
	return newSnippet("pbUnannotatedInit", loop)
}

// GenerateSPEC produces the SPEC-OMP-style held-out set: 113 snippets with
// directives and 174 without (the paper's counts). Most snippets carry the
// application constructs that break S2S frontends.
func GenerateSPEC(seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{}
	add := func(s *snippet, d *pragma.Directive) {
		code := renderSnippet(s)
		c.Records = append(c.Records, &Record{
			ID: len(c.Records), Code: code, Directive: d,
			Domain: DomainBenchmark, Template: s.template,
			Lines: strings.Count(code, "\n"),
		})
	}

	// --- positives: 113 ---
	for x := 0; x < 30; x++ { // colormap-style cast loops (Table 12 ex. 3)
		s := specColormap(rng)
		d, _ := labelSnippet(s)
		if d != nil && x%2 == 0 {
			d.Schedule = pragma.ScheduleDynamic
			d.Chunk = 4
		}
		add(s, d)
	}
	for x := 0; x < 30; x++ { // struct field sweeps
		s := tplStructArray(rng, &genCtx{})
		s.template = "specStruct"
		d, _ := labelSnippet(s)
		add(s, d)
	}
	for x := 0; x < 28; x++ { // register-qualified hot loops
		s := specRegisterLoop(rng)
		d, _ := labelSnippet(s)
		add(s, d)
	}
	for x := 0; x < 25; x++ { // private-temp application loops
		s := tplPrivateTemp(rng, &genCtx{})
		s.template = "specPrivate"
		hardenAlways(rng, s)
		d, _ := labelSnippet(s)
		add(s, d)
	}

	// --- negatives: 174 ---
	for x := 0; x < 50; x++ {
		s := tplIOPrint(rng, &genCtx{})
		s.template = "specIO"
		add(s, nil)
	}
	for x := 0; x < 40; x++ {
		var s *snippet
		if x%2 == 0 {
			s = tplRecurrence(rng, &genCtx{})
		} else {
			s = tplHorner(rng, &genCtx{})
		}
		s.template = "specSerial"
		hardenAlways(rng, s)
		add(s, nil)
	}
	for x := 0; x < 30; x++ {
		s := tplImpureCall(rng, &genCtx{})
		s.template = "specImpure"
		add(s, nil)
	}
	for x := 0; x < 30; x++ {
		s := tplTinyLoop(rng, &genCtx{})
		s.template = "specTiny"
		add(s, nil)
	}
	for x := 0; x < 24; x++ {
		s := tplLinkedList(rng, &genCtx{})
		s.template = "specList"
		add(s, nil)
	}
	return c
}

// specColormap reproduces the paper's third qualitative example:
// for (i = 0; i < ((ssize_t) image->colors); i++)
//
//	image->colormap[i].opacity = (IndexPacket) i;
func specColormap(rng *rand.Rand) *snippet {
	obj := []string{"image", "frame", "layer0"}[rng.Intn(3)]
	field := []string{"colors", "rows", "count"}[rng.Intn(3)]
	mapField := []string{"colormap", "pixels", "entries"}[rng.Intn(3)]
	attr := []string{"opacity", "alpha", "index"}[rng.Intn(3)]
	bound := &cast.Cast{Type: &cast.TypeSpec{Names: []string{"ssize_t"}},
		X: &cast.Member{X: id(obj), Field: field, Arrow: true}}
	lhs := &cast.Member{
		X:     aref(&cast.Member{X: id(obj), Field: mapField, Arrow: true}, id("i")),
		Field: attr,
	}
	rhs := &cast.Cast{Type: &cast.TypeSpec{Names: []string{"IndexPacket"}}, X: id("i")}
	loop := forUp("i", lit(0), bound, es(asg(lhs, rhs)))
	return newSnippet("specColormap", loop)
}

// specRegisterLoop is a hot loop with register-qualified declarations.
func specRegisterLoop(rng *rand.Rand) *snippet {
	nm := names{rng}
	arrs := nm.arrays(2)
	regDecl := &cast.DeclStmt{Decls: []*cast.Decl{{
		Type: &cast.TypeSpec{Quals: []string{"register"}, Names: []string{"int"}},
		Name: "i",
	}}}
	loop := forUp("i", lit(0), boundExpr(nm, rng),
		es(asg(aref(id(arrs[0]), id("i")), mapExpr(nm, rng, "i", arrs[1:]))))
	s := newSnippet("specRegister", loop)
	s.items = append([]cast.Node{regDecl}, s.items...)
	return s
}

// hardenAlways injects an S2S-breaking construct unconditionally.
func hardenAlways(rng *rand.Rand, s *snippet) {
	for attempt := 0; attempt < 8; attempt++ {
		before := len(s.items)
		hardenSnippet(rng, s)
		if len(s.items) != before {
			return
		}
		if bin, ok := s.loop.Cond.(*cast.BinaryOp); ok {
			if _, isCast := bin.R.(*cast.Cast); isCast {
				return
			}
		}
	}
}
