package tensor

import (
	"sync"
	"sync/atomic"
)

// This file holds the two pools behind the hot kernels:
//
//   - a persistent goroutine worker pool that executes ParallelFor chunks,
//     replacing the per-call goroutine spawning the package started with
//     (one training step issues hundreds of parallel matmuls, so spawn
//     overhead was paid hundreds of times per step), and
//   - a []float64 buffer pool that backs scratch matrices and softmax
//     outputs in the matmul/backprop hot path.
//
// The worker pool is lazily started on the first parallel call and sized by
// GOMAXPROCS at that moment; later calls grow it if GOMAXPROCS was raised.
// Workers never exit — they block on the task channel between calls, which
// is the entire point: steady-state parallel sections cost one channel send
// per chunk instead of one goroutine spawn per chunk.

// poolTask is one contiguous chunk of a ParallelFor body.
type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

// poolCh is deliberately unbuffered: a non-blocking send succeeds only
// while an idle worker is parked on the receive, so a chunk is either
// handed straight to a free worker or run inline by the submitter. Nothing
// ever queues behind busy workers, which is what makes nested or heavily
// contended ParallelFor calls (a pool worker's body itself calling
// ParallelFor) deadlock-free by construction. The channel itself is cheap,
// so it exists from init; only the worker goroutines start lazily.
var (
	poolCh   = make(chan poolTask)
	poolSize atomic.Int64
	poolMu   sync.Mutex // serializes worker spawning only
)

// ensurePool guarantees at least want resident workers and returns the
// shared task channel. The steady-state path is a single atomic load; the
// mutex is taken only while the pool still needs to grow.
func ensurePool(want int) chan poolTask {
	if poolSize.Load() >= int64(want) {
		return poolCh
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	for poolSize.Load() < int64(want) {
		go poolWorker(poolCh)
		poolSize.Add(1)
	}
	return poolCh
}

func poolWorker(ch chan poolTask) {
	for t := range ch {
		t.fn(t.lo, t.hi)
		t.wg.Done()
	}
}

// PoolWorkers reports how many resident workers the pool has started.
func PoolWorkers() int { return int(poolSize.Load()) }

// ---------------------------------------------------------------------------
// []float64 buffer pool
// ---------------------------------------------------------------------------

// vecPool holds recycled buffers boxed in *[]float64; boxPool holds the
// empty boxes those buffers arrived in. Recycling the boxes matters as much
// as recycling the buffers: `vecPool.Put(&v)` with a fresh box allocates a
// slice header on every release, which the allocation profile showed was
// the single largest allocation source in the batched forward path —
// PutVec itself. With the box round-trip, the steady-state Get/Put cycle
// touches the allocator only on genuine capacity misses.
var (
	vecPool sync.Pool // *[]float64, len 0, reusable capacity
	boxPool sync.Pool // *[]float64, nil slice: an empty box awaiting reuse
)

// GetVec returns a zeroed []float64 of length n, reusing pooled capacity
// when possible. Pair with PutVec once the buffer is dead; the scratch
// matrices of one backward pass then stop hitting the allocator entirely.
func GetVec(n int) []float64 {
	v := GetVecDirty(n)
	clear(v)
	return v
}

// GetVecDirty is GetVec without the clear, for callers that fully assign
// the buffer before reading it — skipping one O(n) memory pass per use.
func GetVecDirty(n int) []float64 {
	if p, _ := vecPool.Get().(*[]float64); p != nil {
		if cap(*p) >= n {
			v := (*p)[:n]
			*p = nil
			boxPool.Put(p)
			return v
		}
		// Too small for this caller but fine for another size class —
		// return it rather than letting the GC eat a reusable buffer.
		vecPool.Put(p)
	}
	return make([]float64, n)
}

// minPooledCap keeps tiny buffers out of the pool: the pool is a LIFO, so a
// just-Put 2-element softmax output would be the first candidate for the
// next matrix-sized Get, fail its capacity check, and turn the pool into a
// miss machine. Small buffers are cheap to allocate; let the GC have them.
const minPooledCap = 64

// PutVec recycles a buffer obtained from GetVec (or any slice the caller no
// longer references — the pool only cares about capacity). Buffers smaller
// than minPooledCap are dropped.
func PutVec(v []float64) {
	if cap(v) < minPooledCap {
		return
	}
	v = v[:0]
	p, _ := boxPool.Get().(*[]float64)
	if p == nil {
		p = new([]float64)
	}
	*p = v
	vecPool.Put(p)
}

// matrixPool recycles whole *Matrix values — header and backing storage
// together — so the hot forward/backward paths pay no allocation for either
// on the steady-state Get/Put cycle.
var matrixPool sync.Pool

// GetMatrix returns a zeroed rows×cols matrix backed by pooled storage.
// Release it with PutMatrix when its lifetime ends; matrices that escape
// into long-lived caches must use New instead.
func GetMatrix(rows, cols int) *Matrix {
	m := GetMatrixDirty(rows, cols)
	clear(m.Data)
	return m
}

// GetMatrixDirty is GetMatrix without the clear, for outputs every element
// of which is assigned before being read (MatMulATInto, attention dAttn).
// A pooled matrix whose storage is too small for this shape keeps its
// header and reallocates only the data, so sizes grow monotonically toward
// the largest working-set shapes instead of thrashing the pool.
func GetMatrixDirty(rows, cols int) *Matrix {
	n := rows * cols
	m, _ := matrixPool.Get().(*Matrix)
	if m == nil {
		return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, n)}
	}
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// PutMatrix recycles a matrix obtained from GetMatrix. The matrix must not
// be used afterwards: its header and storage will be handed to a future
// GetMatrix caller. The data is truncated to length zero on release, so
// any use-after-put indexes out of range and panics deterministically, and
// a double-put (len already zero) is a no-op instead of inserting the same
// matrix into the pool twice.
func PutMatrix(m *Matrix) {
	if cap(m.Data) < minPooledCap || len(m.Data) == 0 {
		return
	}
	m.Data = m.Data[:0]
	matrixPool.Put(m)
}
