package dep

import (
	"fmt"
	"sort"

	"pragformer/internal/cast"
)

// collector walks a loop body gathering accesses and side-effect facts.
type collector struct {
	loopVar  string
	funcs    map[string]*cast.FuncDef
	declared map[string]bool // names declared inside the body (auto-private)

	accesses     []access
	order        int
	hasIO        bool
	hasBreak     bool
	badWrite     bool
	unbalanced   bool
	impureCall   string
	unknownCalls []string
	unknownSeen  map[string]bool
	innerVars    []string // inner loop variables (for private classification)
	condDepth    int      // >0 while under an if/ternary condition's branches

	// Loop-nest bookkeeping: normalized inner loop headers keyed by
	// variable, in first-seen order, plus the chain of nest variables
	// enclosing the current walk position (outermost inner loop first).
	nestHeaders map[string]LoopHeader
	nestSigs    map[string]string
	nestOrder   []string
	chain       []string
}

func (c *collector) record(a access) {
	a.cond = c.condDepth > 0
	a.order = c.order
	if len(c.chain) > 0 {
		a.chain = append([]string(nil), c.chain...)
	}
	c.order++
	c.accesses = append(c.accesses, a)
}

// headerSig fingerprints a normalized header so identical sibling loops over
// the same variable merge into one nest level while conflicting reuses of a
// variable demote its bounds to unknown.
func headerSig(h LoopHeader) string {
	return fmt.Sprintf("%d|%d|%s#%d|%d|%s#%d|%v", h.Lower.Coef, h.Lower.Const, h.Lower.key(),
		h.Upper.Coef, h.Upper.Const, h.Upper.key(), h.Step, h.Inclusive)
}

// enterNest registers a normalized inner loop header as a nest level.
func (c *collector) enterNest(h LoopHeader) {
	if c.nestHeaders == nil {
		c.nestHeaders = map[string]LoopHeader{}
		c.nestSigs = map[string]string{}
	}
	sig := headerSig(h)
	if prev, seen := c.nestHeaders[h.Var]; seen {
		if c.nestSigs[h.Var] != sig {
			// Conflicting headers for one variable: keep the level but drop
			// its bounds so distance math stays conservative.
			prev.OK = false
			c.nestHeaders[h.Var] = prev
		}
		return
	}
	c.nestHeaders[h.Var] = h
	c.nestSigs[h.Var] = sig
	c.nestOrder = append(c.nestOrder, h.Var)
}

func (c *collector) stmt(s cast.Stmt) {
	switch v := s.(type) {
	case nil:
	case *cast.Block:
		for _, st := range v.Stmts {
			c.stmt(st)
		}
	case *cast.ExprStmt:
		c.expr(v.X, false)
	case *cast.DeclStmt:
		for _, d := range v.Decls {
			c.declared[d.Name] = true
			if d.Init != nil {
				c.expr(d.Init, false)
				// The decl itself writes a body-local name; body-local names
				// are automatically private so no access record is needed.
			}
			for _, dim := range d.ArrayDims {
				if dim != nil {
					c.expr(dim, false)
				}
			}
		}
	case *cast.For:
		h := ParseHeader(v)
		if h.OK {
			if h.DeclInline {
				c.declared[h.Var] = true
			} else {
				c.innerVars = append(c.innerVars, h.Var)
				// The header writes then reads the inner variable.
				c.record(access{name: h.Var, write: true, plainWrite: true})
				c.record(access{name: h.Var})
			}
			c.enterNest(h)
			// Bound/step expressions are reads.
			if v.Init != nil {
				if es, ok := v.Init.(*cast.ExprStmt); ok {
					if asg, ok := es.X.(*cast.Assign); ok {
						c.expr(asg.R, false)
					}
				}
			}
			if v.Cond != nil {
				c.exprSkipVar(v.Cond, h.Var)
			}
			c.chain = append(c.chain, h.Var)
			c.stmt(v.Body)
			c.chain = c.chain[:len(c.chain)-1]
			return
		}
		// Unnormalized inner loop: treat header conservatively.
		if v.Init != nil {
			c.stmt(v.Init)
		}
		if v.Cond != nil {
			c.expr(v.Cond, false)
		}
		if v.Post != nil {
			c.expr(v.Post, false)
		}
		c.stmt(v.Body)
	case *cast.While:
		c.expr(v.Cond, false)
		c.stmt(v.Body)
	case *cast.DoWhile:
		c.stmt(v.Body)
		c.expr(v.Cond, false)
	case *cast.If:
		c.expr(v.Cond, false)
		heavyThen := c.weigh(v.Then)
		heavyElse := c.weigh(v.Else)
		// A guard whose branches differ greatly in cost marks the loop as
		// unbalanced (paper §1.1 example #2: if (MoreCalc(i)) Calc(i);).
		if heavyThen >= 2*heavyElse+2 || heavyElse >= 2*heavyThen+2 {
			c.unbalanced = true
		}
		c.condDepth++
		c.stmt(v.Then)
		if v.Else != nil {
			c.stmt(v.Else)
		}
		c.condDepth--
	case *cast.Return:
		c.hasBreak = true // returning from inside the loop is an early exit
		if v.X != nil {
			c.expr(v.X, false)
		}
	case *cast.Break:
		c.hasBreak = true
	case *cast.Continue:
		// continue is fine: iteration independence is unaffected.
	case *cast.Empty:
	case *cast.PragmaStmt:
		if v.Stmt != nil {
			c.stmt(v.Stmt)
		}
	}
}

// weigh estimates the computational weight of a statement subtree: number
// of calls, loops and assignments. Used by the balance heuristic only.
func (c *collector) weigh(s cast.Stmt) int {
	if s == nil {
		return 0
	}
	w := 0
	cast.Walk(s, func(n cast.Node) bool {
		switch n.(type) {
		case *cast.FuncCall:
			w += 3
		case *cast.For, *cast.While, *cast.DoWhile:
			w += 4
		case *cast.Assign:
			w++
		case *cast.BinaryOp:
			w++
		}
		return true
	})
	return w
}

// exprSkipVar records reads in e except for bare references to skip.
func (c *collector) exprSkipVar(e cast.Expr, skip string) {
	if id, ok := e.(*cast.Ident); ok && id.Name == skip {
		return
	}
	if bin, ok := e.(*cast.BinaryOp); ok {
		c.exprSkipVar(bin.L, skip)
		c.exprSkipVar(bin.R, skip)
		return
	}
	c.expr(e, false)
}

// expr records accesses in an expression. asWrite marks the expression as
// the target of an assignment.
func (c *collector) expr(e cast.Expr, asWrite bool) {
	c.exprOp(e, asWrite, false)
}

// flattenRef collapses an ArrayRef chain to its base name and subscript
// list, outermost subscript first. An empty base means the chain does not
// bottom out in a plain identifier.
func flattenRef(e cast.Expr) (base string, subs []cast.Expr) {
	cur := e
	for {
		ar, ok := cur.(*cast.ArrayRef)
		if !ok {
			break
		}
		subs = append([]cast.Expr{ar.Index}, subs...)
		cur = ar.Arr
	}
	return cast.RootIdent(cur), subs
}

// exprOp is expr with compound-assignment awareness: compound indicates the
// enclosing assignment reads the lvalue too.
func (c *collector) exprOp(e cast.Expr, asWrite, compound bool) {
	switch v := e.(type) {
	case nil:
	case *cast.Ident:
		if v.Name == c.loopVar {
			if asWrite {
				c.badWrite = true // body mutates the loop variable
			}
			return
		}
		if cast.IsLibraryName(v.Name) {
			return
		}
		if c.declared[v.Name] {
			return // body-local: automatically private
		}
		if asWrite {
			c.record(access{name: v.Name, write: true, plainWrite: !compound, node: v})
			if compound {
				c.record(access{name: v.Name, node: v})
			}
		} else {
			c.record(access{name: v.Name, node: v})
		}
	case *cast.IntLit, *cast.FloatLit, *cast.CharLit, *cast.StrLit:
	case *cast.Assign:
		// Reduction-shaped scalar accumulations are recorded specially so
		// the classifier can distinguish `sum += a[i]` (reduction) from a
		// generic read-modify-write (carried dependence). The self-read is
		// implicit in the accumOp and not recorded separately.
		if id, ok := v.L.(*cast.Ident); ok &&
			id.Name != c.loopVar && !c.declared[id.Name] && !cast.IsLibraryName(id.Name) {
			if op, rhs, okShape := accumShape(v, id.Name); okShape && !refersTo(rhs, id.Name) {
				c.exprOp(rhs, false, false)
				c.record(access{name: id.Name, write: true, accumOp: op, node: id})
				return
			}
		}
		// Array accumulations (`hist[e] += x`, `a[i] = a[i] + x`) keep the
		// write/self-read pair for the plain dependence tests but tag both
		// records with the operator so array-reduction recognition can lift
		// a refuted histogram or in-place update into a reduction clause.
		if ar, ok := v.L.(*cast.ArrayRef); ok {
			if base, subs := flattenRef(ar); base != "" && !c.declared[base] && base != c.loopVar {
				if op, rhs, okShape := arrayAccumShape(v, base); okShape && !refersTo(rhs, base) {
					for _, s := range subs {
						c.exprOp(s, false, false)
					}
					c.exprOp(rhs, false, false)
					c.record(access{name: base, write: true, accumOp: op, subs: subs, node: ar})
					c.record(access{name: base, accumOp: op, subs: subs, node: ar})
					return
				}
			}
		}
		compound := v.Op != "="
		// RHS is evaluated first (reads), then the lvalue is written.
		c.exprOp(v.R, false, false)
		c.writeTarget(v.L, compound)
	case *cast.BinaryOp:
		c.exprOp(v.L, false, false)
		c.exprOp(v.R, false, false)
	case *cast.UnaryOp:
		if v.Op == "++" || v.Op == "--" {
			// x++ reads and writes x.
			c.writeTarget(v.X, true)
			return
		}
		if v.Op == "*" && !v.Postfix {
			if asWrite {
				c.badWrite = true // *p = ... unanalyzable
				return
			}
			c.exprOp(v.X, false, false)
			return
		}
		if v.Op == "&" && !v.Postfix {
			// Taking an address defeats scalar analysis.
			if name := cast.RootIdent(v.X); name != "" {
				c.badWrite = true
			}
			return
		}
		c.exprOp(v.X, asWrite, compound)
	case *cast.ArrayRef:
		base, subs := flattenRef(e)
		for _, s := range subs {
			c.exprOp(s, false, false)
		}
		if base == "" {
			if asWrite {
				c.badWrite = true
			}
			return
		}
		if asWrite {
			c.record(access{name: base, write: true, plainWrite: !compound, subs: subs, node: e})
			if compound {
				c.record(access{name: base, subs: subs, node: e})
			}
		} else {
			c.record(access{name: base, subs: subs, node: e})
		}
	case *cast.FuncCall:
		name := ""
		if id, ok := v.Fun.(*cast.Ident); ok {
			name = id.Name
		}
		for _, arg := range v.Args {
			c.exprOp(arg, false, false)
		}
		c.call(name, v.Args)
	case *cast.Member:
		base := cast.RootIdent(v.X)
		// Treat s->f / s.f as an access to pseudo-array "base.field" with
		// the member path folded into the name; subscripts inside v.X were
		// already visited via RootIdent-based traversal below.
		c.memberAccess(v, asWrite, compound, base)
	case *cast.Ternary:
		c.exprOp(v.Cond, false, false)
		c.condDepth++
		c.exprOp(v.Then, false, false)
		c.exprOp(v.Else, false, false)
		c.condDepth--
	case *cast.Cast:
		c.exprOp(v.X, asWrite, compound)
	case *cast.Sizeof:
		// No runtime access.
	case *cast.Comma:
		c.exprOp(v.L, false, false)
		c.exprOp(v.R, asWrite, compound)
	case *cast.InitList:
		for _, el := range v.Elems {
			c.exprOp(el, false, false)
		}
	}
}

// arrayAccumShape recognizes reduction-shaped assignments to an array cell:
// compound `a[e] op= x`, plain `a[e] = a[e] op x` / `a[e] = x op a[e]`
// (commutative op), and `a[e] = fmax(a[e], x)` / fmin. The self operand must
// print identically to the assignment target.
func arrayAccumShape(v *cast.Assign, base string) (op string, rhs cast.Expr, ok bool) {
	switch v.Op {
	case "+=", "-=", "*=", "&=", "|=", "^=":
		return v.Op[:len(v.Op)-1], v.R, true
	case "=":
		self := cast.PrintExpr(v.L)
		isSelf := func(e cast.Expr) bool {
			if b, _ := flattenRef(e); b != base {
				return false
			}
			return cast.PrintExpr(e) == self
		}
		switch r := v.R.(type) {
		case *cast.BinaryOp:
			commutative := r.Op == "+" || r.Op == "*" || r.Op == "&" || r.Op == "|" || r.Op == "^"
			if isSelf(r.L) && (commutative || r.Op == "-") {
				return r.Op, r.R, true
			}
			if isSelf(r.R) && commutative {
				return r.Op, r.L, true
			}
		case *cast.FuncCall:
			fn, okF := r.Fun.(*cast.Ident)
			if okF && (fn.Name == "fmax" || fn.Name == "fmin") && len(r.Args) == 2 {
				redOp := "max"
				if fn.Name == "fmin" {
					redOp = "min"
				}
				if isSelf(r.Args[0]) {
					return redOp, r.Args[1], true
				}
				if isSelf(r.Args[1]) {
					return redOp, r.Args[0], true
				}
			}
		}
	}
	return "", nil, false
}

// memberAccess handles struct member reads/writes, including the
// image->colormap[i].opacity pattern: the innermost ArrayRef subscripts
// participate in dependence testing under the flattened name.
func (c *collector) memberAccess(m *cast.Member, asWrite, compound bool, base string) {
	// Collect subscripts found anywhere in the postfix chain.
	var subs []cast.Expr
	var walkPost func(e cast.Expr)
	walkPost = func(e cast.Expr) {
		switch v := e.(type) {
		case *cast.ArrayRef:
			walkPost(v.Arr)
			subs = append(subs, v.Index)
			c.exprOp(v.Index, false, false)
		case *cast.Member:
			walkPost(v.X)
		}
	}
	walkPost(m.X)
	name := base + "." + m.Field
	if base == "" {
		if asWrite {
			c.badWrite = true
		}
		return
	}
	// A member written without any subscript (s->total = ...) touches one
	// shared location every iteration; record it with an empty (non-nil)
	// subscript vector so the array tests flag the output dependence rather
	// than the scalar classifier treating it as privatizable.
	if subs == nil {
		subs = []cast.Expr{}
	}
	if asWrite {
		c.record(access{name: name, write: true, plainWrite: !compound, subs: subs, node: m})
		if compound {
			c.record(access{name: name, subs: subs, node: m})
		}
	} else {
		c.record(access{name: name, subs: subs, node: m})
	}
}

// writeTarget records a write to an lvalue expression.
func (c *collector) writeTarget(e cast.Expr, compound bool) {
	c.exprOp(e, true, compound)
}

// call classifies a function call by name and, when available, by body.
func (c *collector) call(name string, args []cast.Expr) {
	if name == "" {
		c.badWrite = true // call through pointer
		return
	}
	if pureFuncs[name] {
		return
	}
	if ioFuncs[name] {
		c.hasIO = true
		return
	}
	if fd, ok := c.funcs[name]; ok && fd != nil {
		se := SideEffects(fd, c.funcs)
		switch {
		case se.HasIO:
			c.hasIO = true
		case se.WritesGlobals || se.WritesPointerParams:
			c.impureCall = name
		}
		return
	}
	if c.unknownSeen == nil {
		c.unknownSeen = map[string]bool{}
	}
	if !c.unknownSeen[name] {
		c.unknownSeen[name] = true
		c.unknownCalls = append(c.unknownCalls, name)
		sort.Strings(c.unknownCalls)
	}
}

// varyingNames returns the set of identifiers whose value may change from
// iteration to iteration of the analyzed loop without being a nest
// variable: body-declared locals and scalars written inside the body.
// Subscript symbols drawn from this set cannot prove independence via
// constant-difference arguments.
func (c *collector) varyingNames(nestVars map[string]bool) map[string]bool {
	varying := map[string]bool{}
	for name := range c.declared {
		if !nestVars[name] && name != c.loopVar {
			varying[name] = true
		}
	}
	for _, acc := range c.accesses {
		if acc.write && acc.subs == nil && !nestVars[acc.name] && acc.name != c.loopVar {
			varying[acc.name] = true
		}
	}
	return varying
}
