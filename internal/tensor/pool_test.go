package tensor

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// withGOMAXPROCS runs fn with GOMAXPROCS raised to n so the pool engages
// even on single-core runners, restoring the old value afterwards.
func withGOMAXPROCS(t *testing.T, n int, fn func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// TestParallelForConcurrentStress hammers the shared worker pool from many
// goroutines at once (the shape of data-parallel training: W trainers each
// issuing parallel matmuls) and checks every result. Run under -race this
// is the PR's pool soundness test.
func TestParallelForConcurrentStress(t *testing.T) {
	withGOMAXPROCS(t, 4, func() {
		const (
			callers = 8
			iters   = 200
			n       = 512
		)
		var wg sync.WaitGroup
		errs := make(chan string, callers)
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				out := make([]int, n)
				for it := 0; it < iters; it++ {
					for i := range out {
						out[i] = 0
					}
					ParallelFor(n, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							out[i] = c + i*i
						}
					})
					for i := range out {
						if out[i] != c+i*i {
							errs <- "wrong element after ParallelFor"
							return
						}
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
		if PoolWorkers() == 0 {
			t.Fatal("worker pool never started under GOMAXPROCS=4")
		}
	})
}

// TestParallelForNested: a parallel body that itself calls ParallelFor must
// complete (overflow chunks run inline on the caller, so the pool cannot
// deadlock on itself).
func TestParallelForNested(t *testing.T) {
	withGOMAXPROCS(t, 4, func() {
		const n = 64
		out := make([][]int, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := make([]int, n)
				ParallelFor(n, func(jlo, jhi int) {
					for j := jlo; j < jhi; j++ {
						row[j] = i + j
					}
				})
				out[i] = row
			}
		})
		for i := range out {
			for j := range out[i] {
				if out[i][j] != i+j {
					t.Fatalf("out[%d][%d] = %d", i, j, out[i][j])
				}
			}
		}
	})
}

// TestMatMulDeterministicAcrossGOMAXPROCS: chunked results must be
// bit-identical whether the pool runs wide, narrow, or not at all.
func TestMatMulDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(130, 70).Randn(rng, 1)
	b := New(70, 90).Randn(rng, 1)
	var ref *Matrix
	for _, procs := range []int{1, 2, 4} {
		withGOMAXPROCS(t, procs, func() {
			got := MatMul(a, b)
			if ref == nil {
				ref = got
				return
			}
			for i, v := range got.Data {
				if v != ref.Data[i] {
					t.Fatalf("GOMAXPROCS=%d: element %d differs", procs, i)
				}
			}
		})
	}
}

func TestGetVecZeroedAndReused(t *testing.T) {
	v := GetVec(64)
	for i := range v {
		v[i] = float64(i + 1)
	}
	PutVec(v)
	w := GetVec(32) // smaller request may reuse the dirty buffer
	for i, x := range w {
		if x != 0 {
			t.Fatalf("GetVec returned dirty element %d = %g", i, x)
		}
	}
	PutVec(w)
	if got := GetVec(128); len(got) != 128 {
		t.Fatalf("len = %d", len(got))
	}
	if got := GetVecDirty(96); len(got) != 96 {
		t.Fatalf("dirty len = %d", len(got))
	}
	PutVec(nil) // must not panic
}

func TestGetMatrixShape(t *testing.T) {
	m := GetMatrix(3, 5)
	if m.Rows != 3 || m.Cols != 5 || len(m.Data) != 15 {
		t.Fatalf("bad pooled matrix %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(2, 4, 1)
	if m.At(2, 4) != 1 {
		t.Fatal("pooled matrix not addressable")
	}
	PutMatrix(m) // below the pooling floor: dropped, not recycled

	// Matrices above the floor recycle header and storage together (the
	// steady-state Get/Put cycle stays off the allocator — asserted by the
	// allocs/op of BenchmarkPredictBatch rather than by pointer identity,
	// which sync.Pool deliberately randomizes under the race detector).
	// Whatever comes back must carry the requested shape, fully usable.
	big := GetMatrix(16, 16)
	PutMatrix(big)
	reused := GetMatrixDirty(8, 32)
	if reused.Rows != 8 || reused.Cols != 32 || len(reused.Data) != 256 {
		t.Fatalf("reused matrix %dx%d len %d", reused.Rows, reused.Cols, len(reused.Data))
	}
	// A pooled matrix smaller than the request regrows its storage.
	PutMatrix(reused)
	grown := GetMatrixDirty(32, 32)
	if grown.Rows != 32 || grown.Cols != 32 || len(grown.Data) != 1024 {
		t.Fatalf("grown matrix %dx%d len %d", grown.Rows, grown.Cols, len(grown.Data))
	}
	grown.Set(31, 31, 1)
	if grown.At(31, 31) != 1 {
		t.Fatal("grown matrix not addressable")
	}
	PutMatrix(grown)
}

func TestMatMulATIntoReusesDirtyOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(8, 6).Randn(rng, 1)
	b := New(8, 7).Randn(rng, 1)
	want := MatMulAT(a, b)
	dirty := New(6, 7)
	for i := range dirty.Data {
		dirty.Data[i] = 99
	}
	MatMulATInto(dirty, a, b)
	for i := range want.Data {
		if dirty.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %g vs %g", i, dirty.Data[i], want.Data[i])
		}
	}
}

// BenchmarkMatMulParallel measures the pooled parallel matmul on a
// transformer-shaped product; compare across -cpu settings for the
// worker-pool speedup.
func BenchmarkMatMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(256, 256).Randn(rng, 1)
	y := New(256, 256).Randn(rng, 1)
	out := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}
