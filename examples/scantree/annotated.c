/* Already parallelized by hand: the scanner reports but does not re-advise. */

void axpy(double *y, double *x, double a, int n) {
    int i;
#pragma omp parallel for
    for (i = 0; i < n; i++) {
        y[i] = y[i] + a * x[i];
    }
}
