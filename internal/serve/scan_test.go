package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pragformer/internal/scan"
)

const scanBody = `{"files": [
  {"path": "kernels.c", "source": "void f(double *x, double *y, int n) {\n    int i;\n    for (i = 0; i < n; i++) x[i] = y[i] * 2.0;\n    for (i = 0; i < n; i++) x[i] = y[i] * 2.0;\n}\n"},
  {"path": "broken.c", "source": "void g( {\n"}
]}`

func scanOnce(t *testing.T, e *Engine, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/scan", strings.NewReader(body))
	w := httptest.NewRecorder()
	e.Handler().ServeHTTP(w, req)
	return w
}

// TestHTTPScan drives /scan end to end: multi-file payload in, deduped
// report out, with the inference riding the engine's suggest batcher.
func TestHTTPScan(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{MaxBatch: 8, MaxWait: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	w := scanOnce(t, e, scanBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var rep scan.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	c := rep.Counters
	if c.Files != 1 || c.Skipped != 1 {
		t.Errorf("files/skipped = %d/%d, want 1/1", c.Files, c.Skipped)
	}
	if c.Loops != 2 || c.Unique != 1 {
		t.Errorf("loops/unique = %d/%d, want 2/1 (identical loops must dedupe)", c.Loops, c.Unique)
	}
	if c.Inferred != 1 {
		t.Errorf("inferred = %d, want 1", c.Inferred)
	}
	if len(rep.Loops) != 1 || len(rep.Loops[0].Occurrences) != 2 {
		t.Fatalf("loops = %+v", rep.Loops)
	}
	occ := rep.Loops[0].Occurrences[0]
	if occ.File != "kernels.c" || occ.Line != 3 || occ.Function != "f" {
		t.Errorf("occurrence = %+v", occ)
	}
	if rep.Loops[0].Suggestion == nil {
		t.Error("loop missing suggestion")
	}
	if rep.Backend != e.Stats().Backend {
		t.Errorf("report backend %q != engine %q", rep.Backend, e.Stats().Backend)
	}

	// The scan's inference went through the suggest batcher, and a repeat
	// scan of the same payload is answered from the engine's LRU.
	st := e.Stats().Suggest
	if st.Requests == 0 || st.Batches == 0 {
		t.Errorf("scan bypassed the suggest batcher: %+v", st)
	}
	scanOnce(t, e, scanBody)
	if hits := e.Stats().Suggest.CacheHits; hits == 0 {
		t.Errorf("repeat scan produced no engine cache hits")
	}
}

// TestHTTPScanParity pins /scan suggestions to the direct engine suggest
// path for the same snippet.
func TestHTTPScanParity(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	w := scanOnce(t, e, scanBody)
	var rep scan.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	direct, err := e.Suggest(context.Background(), rep.Loops[0].Snippet)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Loops[0].Suggestion.Probability; got != direct.Probability {
		t.Errorf("scan probability %v != direct %v", got, direct.Probability)
	}
}

func TestHTTPScanSARIF(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	body := strings.Replace(scanBody, `]}`, `], "format": "sarif"}`, 1)
	w := scanOnce(t, e, body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []json.RawMessage
	}
	if err := json.Unmarshal(w.Body.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Errorf("sarif version %q runs %d", log.Version, len(log.Runs))
	}
}

func TestHTTPScanRejects(t *testing.T) {
	models := testModels(t)
	e, err := New(models, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"malformed", `{"files": [`, http.StatusBadRequest},
		{"empty", `{"files": []}`, http.StatusBadRequest},
		{"no path", `{"files": [{"source": "int x;"}]}`, http.StatusBadRequest},
		{"bad format", `{"files": [{"path": "a.c", "source": ""}], "format": "xml"}`, http.StatusBadRequest},
	} {
		if w := scanOnce(t, e, tc.body); w.Code != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, w.Code, tc.status)
		}
	}

	var b strings.Builder
	b.WriteString(`{"files": [`)
	for i := 0; i < maxScanFiles+1; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"path": "a.c", "source": ""}`)
	}
	b.WriteString(`]}`)
	if w := scanOnce(t, e, b.String()); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized file count: status %d", w.Code)
	}
}
