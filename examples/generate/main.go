// Generate: the paper's §6 end-goal — produce entire OpenMP directives.
// Three PragFormer classifiers (directive / private / reduction) gate the
// decision, the dependence analysis supplies clause variables, and ComPar
// corroboration grades the verdict tier, exactly the combined workflow the paper
// proposes ("in cases both the model and the S2S compilers agree on a
// directive, it will remain").
package main

import (
	"fmt"
	"strings"

	"pragformer/internal/advisor"
	"pragformer/internal/core"
	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

var snippets = []string{
	"for (i = 0; i < n; i++) sum += a[i] * b[i];",
	"for (i = 0; i < n; i++) for (j = 0; j < n; j++) x[i] = x[i] + A[i][j] * y[j];",
	"for (i = 0; i < rows; i++) { t = in[i] * scale; out[i] = t + t * t; }",
	"for (i = 1; i < n; i++) a[i] = a[i-1] + b[i];",
	`for (i = 0; i < n; i++) fprintf(stderr, "%d ", a[i]);`,
}

func main() {
	m := buildModels()
	for _, src := range snippets {
		s, err := m.Suggest(src)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Println(strings.Repeat("─", 64))
		if s.Directive != nil {
			fmt.Println(s.Annotate(src))
			fmt.Printf("  (p=%.2f, tier: %s)\n", s.Probability, s.Corroboration.Tier)
		} else {
			fmt.Println(src)
			fmt.Printf("  left serial (p=%.2f)\n", s.Probability)
		}
		for _, n := range s.Notes {
			fmt.Println("  note:", n)
		}
	}
}

// buildModels trains the three classifiers on a generated corpus.
func buildModels() *advisor.Models {
	fmt.Println("training directive / private / reduction classifiers...")
	c := corpus.Generate(corpus.Config{Seed: 8, Total: 800})
	dirSplit := dataset.Directive(c, dataset.Options{Seed: 8})
	var seqs [][]string
	for _, in := range dirSplit.Train {
		toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
		if err != nil {
			panic(err)
		}
		seqs = append(seqs, toks)
	}
	vocab := tokenize.BuildVocab(seqs, 1)

	fit := func(task dataset.Task) *core.PragFormer {
		var split dataset.Split
		if task == dataset.TaskDirective {
			split = dirSplit
		} else {
			split = dataset.Clause(c, task, dataset.Options{Seed: 8, Balance: true})
		}
		encode := func(ins []dataset.Instance) []train.Example {
			out := make([]train.Example, len(ins))
			for i, in := range ins {
				toks, _ := tokenize.Extract(in.Rec.Code, tokenize.Text)
				out[i] = train.Example{IDs: vocab.Encode(toks, 64), Label: in.Label}
			}
			return out
		}
		model, err := core.New(core.Config{Vocab: vocab.Size(), MaxLen: 64, D: 32, Heads: 4, Layers: 1}, int64(20+task))
		if err != nil {
			panic(err)
		}
		h := train.Fit(model, encode(split.Train), encode(split.Valid), train.Config{
			Epochs: 4, BatchSize: 16, LR: 1.5e-3, ClipNorm: 1, Seed: int64(task),
		})
		fmt.Printf("  %s classifier: valid accuracy %.3f\n", task, h.Best().ValidAccuracy)
		return model
	}

	return &advisor.Models{
		Directive: fit(dataset.TaskDirective),
		Private:   fit(dataset.TaskPrivate),
		Reduction: fit(dataset.TaskReduction),
		Vocab:     vocab,
		MaxLen:    64,
	}
}
