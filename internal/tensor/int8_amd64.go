//go:build amd64 && !purego

package tensor

// AVX2 backend for the int8 matmul kernel. The scalar path is capped by
// integer-multiply throughput (one 32-bit IMUL per cycle on current x86),
// so quantized inference could never meaningfully beat the float64 kernels
// without SIMD: VPMOVSXBW widens 16 int8 lanes to int16 and VPMADDWD folds
// 16 multiply-adds into one instruction, lifting the kernel to >8
// multiply-accumulates per cycle. Results are bit-identical to the scalar
// kernel — integer addition is associative, so lane reassociation and the
// horizontal reduction are exact.

// cpuid executes CPUID with the given leaf/subleaf (implemented in
// int8_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (OS-enabled register state).
func xgetbv() (eax, edx uint32)

// int8Dot4K16 accumulates, for c in 0..3,
// out[c] = Σ_{k < k16} a[k] · b[c·stride + k], with k16 a multiple of 16.
// b points at the first of four consecutive length-stride channel rows.
//
//go:noescape
func int8Dot4K16(a, b *int8, k16, stride int, out *int32)

func init() {
	if !hasAVX2() {
		return
	}
	int8RowKernel = int8DotRows1AVX2
}

// hasAVX2 reports CPU and OS support for AVX2 (CPUID feature bit plus
// OS-saved YMM state via XGETBV — a hypervisor can expose the former
// without the latter).
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave, avx = 1 << 27, 1 << 28
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// int8DotRows1AVX2 computes one output row: the vector kernel covers four
// channels at a time over the 16-aligned prefix of the inner dimension, and
// scalar code finishes the k and channel tails.
func int8DotRows1AVX2(o []float64, arow []int8, s float32, b *Int8Matrix, K, N int) {
	k16 := K &^ 15
	var acc [4]int32
	j := 0
	for ; j+4 <= N; j += 4 {
		if k16 > 0 {
			int8Dot4K16(&arow[0], &b.Data[j*K], k16, K, &acc[0])
		} else {
			acc = [4]int32{}
		}
		for c := 0; c < 4; c++ {
			brow := b.Row(j + c)
			p := acc[c]
			for k := k16; k < K; k++ {
				p += int32(arow[k]) * int32(brow[k])
			}
			o[j+c] = float64(float32(p) * s * b.Scales[j+c])
		}
	}
	for ; j < N; j++ {
		brow := b.Row(j)
		var p int32
		for k := 0; k < K; k++ {
			p += int32(arow[k]) * int32(brow[k])
		}
		o[j] = float64(float32(p) * s * b.Scales[j])
	}
}
