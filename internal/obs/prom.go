package obs

import (
	"io"
	"net/http"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (HELP/TYPE headers, then one sample line per series,
// families and series in registration order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.help)
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, ls := range f.order {
			f.series[ls].expose(&b, f.name, ls)
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves GET /metrics in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
