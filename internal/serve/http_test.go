package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// httpEngine spins up an engine plus httptest server around its Handler.
func httpEngine(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	models := testModels(t)
	models.NoCorroborate = true
	e, err := New(models, Config{MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, srv
}

// postJSON posts v and decodes the response into out, returning the status.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode
}

func TestHTTPPredict(t *testing.T) {
	e, srv := httpEngine(t)
	var resp struct {
		Results []predictResult `json:"results"`
	}
	req := predictRequest{Codes: []string{
		"for (i = 0; i < n; i++) a[i] = 0;",
		"for (i = 0; i < `n`", // unlexable: inline error
	}}
	if code := postJSON(t, srv.URL+"/predict", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	ids, err := e.encode(req.Codes[0])
	if err != nil {
		t.Fatal(err)
	}
	if want := e.Models().Directive.Predict(ids); resp.Results[0].Probability != want {
		t.Errorf("probability %v != direct %v", resp.Results[0].Probability, want)
	}
	if resp.Results[0].Error != "" {
		t.Errorf("unexpected error %q", resp.Results[0].Error)
	}
	if resp.Results[1].Error == "" {
		t.Error("unlexable snippet should carry an inline error")
	}
}

func TestHTTPPredictIDs(t *testing.T) {
	e, srv := httpEngine(t)
	var resp struct {
		Results []predictResult `json:"results"`
	}
	ids := []int{2, 5, 6, 7}
	vocab := e.Models().Directive.VocabSize()
	req := predictRequest{IDs: [][]int{ids, {}, {vocab}, {-1}}}
	if code := postJSON(t, srv.URL+"/predict", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if want := e.Models().Directive.Predict(ids); resp.Results[0].Probability != want {
		t.Errorf("probability %v != direct %v", resp.Results[0].Probability, want)
	}
	if resp.Results[1].Error == "" {
		t.Error("empty id sequence should carry an inline error")
	}
	// Out-of-range ids must be rejected at the boundary, not panic a
	// batch worker and take the server down.
	if resp.Results[2].Error == "" || resp.Results[3].Error == "" {
		t.Errorf("out-of-range ids accepted: %+v %+v", resp.Results[2], resp.Results[3])
	}
}

func TestHTTPSuggest(t *testing.T) {
	e, srv := httpEngine(t)
	var resp struct {
		Results []suggestResult `json:"results"`
	}
	code := "for (i = 0; i < n; i++) a[i] = 0;"
	if st := postJSON(t, srv.URL+"/suggest", suggestRequest{Code: code}, &resp); st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	want, err := e.Models().Suggest(code)
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Results[0]
	if got.Probability != want.Probability || got.Parallelize != want.Parallelize {
		t.Errorf("suggest %+v != direct %+v", got, want)
	}
	if want.Directive != nil && got.Directive != want.Directive.String() {
		t.Errorf("directive %q != %q", got.Directive, want.Directive)
	}
}

func TestHTTPHealthzAndErrors(t *testing.T) {
	_, srv := httpEngine(t)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz = %d %+v", resp.StatusCode, hz)
	}

	// Malformed JSON is a 400.
	bad, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", bad.StatusCode)
	}

	// Wrong method is rejected by the mux.
	get, err := http.Get(srv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict: status %d, want 405", get.StatusCode)
	}
}
