package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"pragformer/internal/nn"
)

// Checkpoint wire format: a "PFCKPT" frame (see frame.go) whose payload is
// a gob-encoded Snapshot. The version gates decoding: files written by a
// newer format fail with a descriptive error instead of an opaque gob
// panic. The CRC guards the payload; the length guards against truncation.

// FormatVersion is the current checkpoint format version.
const FormatVersion = 1

var magic = []byte("PFCKPT")

// EpochRecord mirrors one train.EpochStats row without importing train
// (train imports ckpt).
type EpochRecord struct {
	Epoch         int
	TrainLoss     float64
	ValidLoss     float64
	ValidAccuracy float64
}

// Snapshot is everything a training run needs to restart bit-identically:
// the primary weights, the full AdamW state, the shuffler and dropout RNG
// states, the learning curve so far, and the best-epoch weights for model
// selection.
type Snapshot struct {
	// Run identity — Resume refuses a checkpoint whose Seed or Workers
	// disagree with the resuming config, because the determinism contract
	// only holds at the same (seed, W).
	Seed    int64
	Workers int

	// NextEpoch is the first epoch the resumed run executes; a snapshot
	// with NextEpoch >= the configured epoch count is a finished run.
	NextEpoch int

	// Shuffler is the Fisher-Yates RNG state after NextEpoch epochs.
	Shuffler uint64
	// RNG holds the dropout stream state of the primary model (index 0)
	// and each training replica, in replica order. Empty when the model
	// has no serializable RNG (dropout-free models).
	RNG []uint64

	// Full AdamW state, in parameter order.
	OptStep int
	OptM    [][]float64
	OptV    [][]float64

	// ParamNames/ParamShapes validate that the resuming model's parameter
	// list matches the checkpointed one before any weight is copied.
	ParamNames  []string
	ParamShapes [][2]int
	// Weights are the current (last-epoch) parameter values.
	Weights [][]float64
	// BestWeights are the parameter values at the best validation epoch
	// (the paper's model-selection rule), so a restart never loses the
	// selected model even when the best epoch predates the crash.
	BestWeights [][]float64
	BestLoss    float64

	// Learning curve so far.
	Epochs    []EpochRecord
	BestEpoch int
}

// Save writes the snapshot in the framed wire format.
func (s *Snapshot) Save(w io.Writer) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return fmt.Errorf("ckpt: encode snapshot: %w", err)
	}
	return WriteFramed(w, magic, FormatVersion, payload.Bytes())
}

// SaveFile writes the snapshot to path atomically.
func (s *Snapshot) SaveFile(path string) error {
	return WriteFileAtomic(path, s.Save)
}

// Load reads a snapshot written by Save, verifying magic, version, length,
// and CRC before decoding.
func Load(r io.Reader) (*Snapshot, error) {
	payload, err := ReadFramed(r, magic, FormatVersion, "checkpoint")
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("ckpt: decode snapshot: %w", err)
	}
	return &s, nil
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// CaptureParams records params' names, shapes, and a deep copy of their
// current weight values into the snapshot.
func (s *Snapshot) CaptureParams(params []*nn.Param) {
	s.ParamNames = make([]string, len(params))
	s.ParamShapes = make([][2]int, len(params))
	s.Weights = CopyWeights(params)
	for i, p := range params {
		s.ParamNames[i] = p.Name
		s.ParamShapes[i] = [2]int{p.W.Rows, p.W.Cols}
	}
}

// ApplyWeights copies the given weight vectors (s.Weights or
// s.BestWeights) into params after validating count, names, shapes, and
// vector lengths against the snapshot's parameter manifest.
func (s *Snapshot) ApplyWeights(params []*nn.Param, weights [][]float64) error {
	if len(params) != len(s.ParamNames) || len(weights) != len(s.ParamNames) || len(s.ParamShapes) != len(s.ParamNames) {
		return fmt.Errorf("ckpt: snapshot has %d tensors (%d weight vectors), model has %d",
			len(s.ParamNames), len(weights), len(params))
	}
	for i, p := range params {
		if p.Name != s.ParamNames[i] {
			return fmt.Errorf("ckpt: tensor %d is %q in snapshot, %q in model", i, s.ParamNames[i], p.Name)
		}
		sh := s.ParamShapes[i]
		if p.W.Rows != sh[0] || p.W.Cols != sh[1] {
			return fmt.Errorf("ckpt: tensor %q shape %dx%d in snapshot, %dx%d in model",
				p.Name, sh[0], sh[1], p.W.Rows, p.W.Cols)
		}
		if len(weights[i]) != sh[0]*sh[1] {
			return fmt.Errorf("ckpt: tensor %q has %d values, want %d (corrupt snapshot)",
				p.Name, len(weights[i]), sh[0]*sh[1])
		}
	}
	for i, p := range params {
		copy(p.W.Data, weights[i])
	}
	return nil
}

// CopyWeights deep-copies the current weight vectors of params.
func CopyWeights(params []*nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.W.Data...)
	}
	return out
}
