package s2s

import (
	"fmt"
)

// ComPar models the ComPar multi-compiler (Mosseri et al. 2020): it runs
// Par4All, AutoPar and Cetus, and combines their outputs, choosing the
// "best" directive — the one that parallelizes with the richest clause set.
// A snippet fails to compile only when every member compiler fails, which
// in practice means failure tracks Cetus's frontend (the paper: "only Cetus
// managed to compile the examples successfully").
type ComPar struct {
	// Members are the combined compilers; NewComPar wires the default trio.
	Members []Compiler
}

// NewComPar returns the default ComPar configuration.
func NewComPar() *ComPar {
	return &ComPar{Members: []Compiler{Par4All{}, AutoPar{}, Cetus{}}}
}

// Name implements Compiler.
func (*ComPar) Name() string { return "ComPar" }

// Compile implements Compiler: runs all members and keeps the best result.
func (c *ComPar) Compile(src string) (Result, error) {
	var (
		best     Result
		bestSet  bool
		failures int
		lastErr  error
	)
	for _, m := range c.Members {
		res, err := m.Compile(src)
		if err != nil {
			failures++
			lastErr = err
			continue
		}
		if !bestSet || score(res) > score(best) {
			best = res
			bestSet = true
		}
	}
	if !bestSet {
		return Result{}, fmt.Errorf("%w: ComPar: all member compilers failed (%v)", ErrParse, lastErr)
	}
	return best, nil
}

// score ranks results: any directive beats none; richer clause sets win.
func score(r Result) int {
	if r.Directive == nil {
		return 0
	}
	s := 10
	s += len(r.Directive.Private)
	s += 2 * len(r.Directive.Reductions)
	if r.Directive.Schedule != 0 {
		s++
	}
	return s
}
