package scan

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"pragformer/internal/advisor"
)

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	if _, ok := s.Get("missing"); ok {
		t.Fatal("empty store reported a hit")
	}
	v := &Suggestion{Parallelize: true, Directive: "#pragma omp parallel for", Witness: []string{"w"}}
	s.Put("h1", v)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	got, ok := s.Get("h1")
	if !ok || !got.Parallelize || got.Directive != v.Directive {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	// Put stores a private copy: mutating the original must not reach the
	// stored verdict.
	v.Witness[0] = "mutated"
	got, _ = s.Get("h1")
	if got.Witness[0] != "w" {
		t.Fatal("stored verdict aliases the caller's slice")
	}
	// Nil puts are ignored.
	s.Put("h2", nil)
	if s.Len() != 1 {
		t.Fatal("nil Put changed the store")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset left verdicts behind")
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	s := NewMemStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := HashSnippet(string(rune('a'+w)) + string(rune(i)))
				s.Put(h, &Suggestion{Parallelize: true})
				s.Get(h)
				s.Len()
			}
		}(w)
	}
	wg.Wait()
}

// A caller-supplied store must win over CachePath and collect the scan's
// verdicts — the router's shared-store injection point.
func TestScanConfigStoreInjection(t *testing.T) {
	store := NewMemStore()
	srcs := []Source{{Path: "a.c", Data: []byte(
		"void f(int *a, int n) { for (int i = 0; i < n; i++) a[i] = i; }\n")}}
	cfg := Config{
		Workers: 2,
		Store:   store,
		// CachePath must be ignored when Store is set: point it somewhere
		// unwritable to prove no file I/O happens.
		CachePath: filepath.Join(t.TempDir(), "no", "such", "dir", "cache.json"),
	}
	rep, err := Files(context.Background(), srcs, cfg, &stubSuggester{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 1 || rep.Loops[0].Suggestion == nil {
		t.Fatalf("scan did not produce a verdict: %+v", rep.Loops)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d verdicts, want 1", store.Len())
	}
	if rep.Loops[0].FromCache {
		t.Fatal("cold scan claimed a cache hit")
	}

	// Second scan through the same store: pure replay, marked FromCache.
	rep2, err := Files(context.Background(), srcs, cfg, failingSuggester{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Loops[0].FromCache {
		t.Fatal("warm scan did not read through the injected store")
	}
	if rep2.Counters.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", rep2.Counters.CacheHits)
	}
}

// failingSuggester proves the warm path never reaches inference.
type failingSuggester struct{}

func (failingSuggester) SuggestBatch([]string) ([]advisor.BatchItem, error) {
	panic("warm scan must not call the suggester")
}
