// Package core implements PragFormer, the paper's primary contribution: a
// transformer encoder over tokenized code snippets with a two-layer fully-
// connected classification head (§4.1), trained with binary cross-entropy.
// It also provides the masked-language-model pretraining head that stands in
// for the DeepSCC/RoBERTa initialization (transfer learning at CPU scale),
// and gob-based model persistence.
package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"pragformer/internal/ckpt"
	"pragformer/internal/nn"
	"pragformer/internal/tensor"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

// DefaultMaxLen is the paper's input budget: 110 token positions (§4.2).
// Every layer that needs a fallback sequence cap — model configs, the
// advisor, the serving engine, the experiment pipeline — derives it from
// this constant rather than repeating the magic number.
const DefaultMaxLen = 110

// Config describes a PragFormer architecture.
type Config struct {
	Vocab    int     // vocabulary size (from tokenize.Vocab)
	MaxLen   int     // maximum input positions; DefaultMaxLen when zero
	D        int     // model dimension
	Heads    int     // attention heads
	Layers   int     // encoder blocks
	FFHidden int     // FFN hidden dimension
	FCHidden int     // classification head hidden dimension
	Dropout  float64 // dropout rate in residuals and the head
}

// Validate fills defaults and checks consistency.
func (c *Config) Validate() error {
	if c.MaxLen == 0 {
		c.MaxLen = DefaultMaxLen
	}
	if c.FFHidden == 0 {
		c.FFHidden = 2 * c.D
	}
	if c.FCHidden == 0 {
		c.FCHidden = c.D
	}
	if c.Vocab < tokenize.NumSpecials {
		return fmt.Errorf("core: vocab %d too small", c.Vocab)
	}
	if c.D <= 0 || c.Heads <= 0 || c.Layers <= 0 {
		return fmt.Errorf("core: invalid dims %+v", c)
	}
	if c.D%c.Heads != 0 {
		return fmt.Errorf("core: D %d not divisible by heads %d", c.D, c.Heads)
	}
	return nil
}

// PragFormer is the encoder + classification head.
type PragFormer struct {
	Cfg     Config
	Emb     *nn.Embedding
	Blocks  []*nn.EncoderBlock
	FinalLN *nn.LayerNorm
	FC1     *nn.Linear
	FC2     *nn.Linear
	MLMHead *nn.Linear // vocab projection for pretraining

	rng *nn.RNG // dropout randomness (training only); serializable for resume
}

// New builds a PragFormer with seeded initialization.
func New(cfg Config, seed int64) (*PragFormer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &PragFormer{
		Cfg:     cfg,
		Emb:     nn.NewEmbedding(cfg.Vocab, cfg.MaxLen, cfg.D, rng),
		FinalLN: nn.NewLayerNorm("final_ln", cfg.D),
		FC1:     nn.NewLinear("fc1", cfg.D, cfg.FCHidden, rng),
		FC2:     nn.NewLinear("fc2", cfg.FCHidden, 2, rng),
		MLMHead: nn.NewLinear("mlm", cfg.D, cfg.Vocab, rng),
		rng:     nn.NewRNG(seed + 1),
	}
	for l := 0; l < cfg.Layers; l++ {
		m.Blocks = append(m.Blocks, nn.NewEncoderBlock(
			fmt.Sprintf("block%d", l), cfg.D, cfg.Heads, cfg.FFHidden, cfg.Dropout, rng))
	}
	return m, nil
}

// Params returns the classifier parameters (excludes the MLM head).
func (m *PragFormer) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.Emb.Params()...)
	for _, b := range m.Blocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, m.FinalLN.Params()...)
	ps = append(ps, m.FC1.Params()...)
	ps = append(ps, m.FC2.Params()...)
	return ps
}

// EncoderParams returns only the encoder parameters (shared between the
// MLM pretraining phase and fine-tuning — the transfer-learning surface).
func (m *PragFormer) EncoderParams() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.Emb.Params()...)
	for _, b := range m.Blocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, m.FinalLN.Params()...)
	return ps
}

// MLMParams returns encoder parameters plus the MLM head.
func (m *PragFormer) MLMParams() []*nn.Param {
	return append(m.EncoderParams(), m.MLMHead.Params()...)
}

// allParams returns every parameter tensor, in the Save/Load wire order.
func (m *PragFormer) allParams() []*nn.Param {
	return append(m.MLMParams(), m.FC1.W, m.FC1.B, m.FC2.W, m.FC2.B)
}

// Clone deep-copies the model: identical architecture and weights in fresh
// buffers, with gradient accumulators zeroed and the dropout stream
// reseeded from seed so each replica draws independent noise. New's random
// initialization is overwritten by the copy — accepted dead work, since
// cloning happens once per Fit, not per batch.
func (m *PragFormer) Clone(seed int64) *PragFormer {
	c, err := New(m.Cfg, seed)
	if err != nil {
		panic(err) // m.Cfg was validated when m was built
	}
	nn.CopyWeights(c.allParams(), m.allParams())
	return c
}

// Replicate implements train.Replicable, letting train.Fit shard batches
// across deep copies of the model.
func (m *PragFormer) Replicate(seed int64) train.Model { return m.Clone(seed) }

// RNGState exports the dropout stream position (train.RNGStateful) so a
// checkpoint can resume the exact noise sequence.
func (m *PragFormer) RNGState() uint64 { return m.rng.State() }

// SetRNGState restores a dropout stream position captured by RNGState.
func (m *PragFormer) SetRNGState(s uint64) { m.rng.SetState(s) }

// encCache stores every sub-cache of one encoder pass.
type encCache struct {
	ids    []int
	blocks []*nn.BlockCache
	lnc    *nn.LayerNormCache
	hidden *tensor.Matrix // post-final-LN activations (T×D)
}

// encode runs the encoder over ids.
func (m *PragFormer) encode(ids []int, train bool) *encCache {
	if len(ids) > m.Cfg.MaxLen {
		ids = ids[:m.Cfg.MaxLen]
	}
	c := &encCache{ids: ids}
	x := m.Emb.Forward(ids)
	for _, b := range m.Blocks {
		var bc *nn.BlockCache
		x, bc = b.Forward(x, train, m.rng)
		c.blocks = append(c.blocks, bc)
	}
	c.hidden, c.lnc = m.FinalLN.Forward(x)
	return c
}

// encodeBackward propagates dHidden through the encoder.
func (m *PragFormer) encodeBackward(c *encCache, dHidden *tensor.Matrix) {
	dx := m.FinalLN.Backward(c.lnc, dHidden)
	for l := len(m.Blocks) - 1; l >= 0; l-- {
		dx = m.Blocks[l].Backward(c.blocks[l], dx)
	}
	m.Emb.Backward(c.ids, dx)
}

// clsCache extends encCache with head activations.
type clsCache struct {
	enc  *encCache
	c1   *nn.LinearCache
	cr   *nn.ReLUCache
	cd   *nn.DropoutCache
	c2   *nn.LinearCache
	prob [2]float64
}

// forwardCls runs encoder + head, returning class probabilities.
func (m *PragFormer) forwardCls(ids []int, train bool) *clsCache {
	c := &clsCache{enc: m.encode(ids, train)}
	cls := tensor.FromSlice(1, m.Cfg.D, c.enc.hidden.Row(0)) // [CLS] pooling
	h, c1 := m.FC1.Forward(cls)
	c.c1 = c1
	a, cr := nn.ReLU(h)
	c.cr = cr
	a, c.cd = nn.Dropout(a, m.Cfg.Dropout, train, m.rng)
	logits, c2 := m.FC2.Forward(a)
	c.c2 = c2
	var p [2]float64
	tensor.SoftmaxVecInto(p[:], logits.Row(0))
	c.prob = p
	return c
}

// Predict returns the probability that the snippet is a positive example
// (needs a directive / clause). Inputs are tokenize.Vocab-encoded ids.
func (m *PragFormer) Predict(ids []int) float64 {
	return m.forwardCls(ids, false).prob[1]
}

// PredictLabel applies the paper's 0.5 threshold.
func (m *PragFormer) PredictLabel(ids []int) bool { return m.Predict(ids) > 0.5 }

// LossAndBackward computes the binary cross-entropy loss (Eq. 1) for one
// example and accumulates gradients for all classifier parameters.
func (m *PragFormer) LossAndBackward(ids []int, label bool) float64 {
	c := m.forwardCls(ids, true)
	y := 0
	if label {
		y = 1
	}
	loss := -math.Log(math.Max(c.prob[y], 1e-12))

	// Softmax+CE gradient: dlogits = p - onehot(y).
	dLogits := tensor.New(1, 2)
	dLogits.Set(0, 0, c.prob[0])
	dLogits.Set(0, 1, c.prob[1])
	dLogits.Data[y] -= 1

	da := m.FC2.Backward(c.c2, dLogits)
	da = nn.DropoutBackward(c.cd, da)
	dh := nn.ReLUBackward(c.cr, da)
	dCls := m.FC1.Backward(c.c1, dh)

	dHidden := tensor.New(len(c.enc.ids), m.Cfg.D)
	copy(dHidden.Row(0), dCls.Row(0))
	m.encodeBackward(c.enc, dHidden)
	return loss
}

// Loss computes the BCE loss without touching gradients (validation).
func (m *PragFormer) Loss(ids []int, label bool) float64 {
	c := m.forwardCls(ids, false)
	y := 0
	if label {
		y = 1
	}
	return -math.Log(math.Max(c.prob[y], 1e-12))
}

// ---------------------------------------------------------------------------
// Masked language model pretraining (the DeepSCC stand-in)
// ---------------------------------------------------------------------------

// MLMLossAndBackward applies the BERT-style masking recipe (15% of
// positions: 80% [MASK], 10% random, 10% kept) and accumulates encoder and
// MLM-head gradients. Returns the mean masked-token cross-entropy and the
// number of masked positions.
func (m *PragFormer) MLMLossAndBackward(ids []int, rng *rand.Rand) (float64, int) {
	if len(ids) > m.Cfg.MaxLen {
		ids = ids[:m.Cfg.MaxLen]
	}
	masked := make([]int, len(ids))
	copy(masked, ids)
	var targets []int               // positions
	for t := 1; t < len(ids); t++ { // never mask [CLS]
		if rng.Float64() >= 0.15 {
			continue
		}
		targets = append(targets, t)
		switch r := rng.Float64(); {
		case r < 0.8:
			masked[t] = tokenize.MASK
		case r < 0.9:
			masked[t] = tokenize.NumSpecials + rng.Intn(m.Cfg.Vocab-tokenize.NumSpecials)
		}
	}
	if len(targets) == 0 {
		return 0, 0
	}

	c := m.encode(masked, true)
	logits, lc := m.MLMHead.Forward(c.hidden)
	dLogits := tensor.New(logits.Rows, logits.Cols)
	total := 0.0
	inv := 1 / float64(len(targets))
	p := tensor.GetVecDirty(logits.Cols) // SoftmaxVecInto fully assigns it
	defer tensor.PutVec(p)
	for _, t := range targets {
		tensor.SoftmaxVecInto(p, logits.Row(t))
		gold := ids[t]
		total += -math.Log(math.Max(p[gold], 1e-12))
		drow := dLogits.Row(t)
		copy(drow, p)
		drow[gold] -= 1
		for j := range drow {
			drow[j] *= inv
		}
	}
	dHidden := m.MLMHead.Backward(lc, dLogits)
	m.encodeBackward(c, dHidden)
	return total * inv, len(targets)
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

// modelFormatVersion is the current gob wire-format version. Version 0 is
// the historical format without the Version field (gob decodes a missing
// field as zero, so version-0 files keep loading); bump this when the
// layout changes incompatibly.
const modelFormatVersion = 1

// modelFile is the gob wire format.
type modelFile struct {
	Version int
	Cfg     Config
	Names   []string
	Shapes  [][2]int
	Data    [][]float64
}

// Save writes the model (including the MLM head) to w.
func (m *PragFormer) Save(w io.Writer) error {
	mf := modelFile{Version: modelFormatVersion, Cfg: m.Cfg}
	for _, p := range m.allParams() {
		mf.Names = append(mf.Names, p.Name)
		mf.Shapes = append(mf.Shapes, [2]int{p.W.Rows, p.W.Cols})
		mf.Data = append(mf.Data, p.W.Data)
	}
	return gob.NewEncoder(w).Encode(mf)
}

// SaveFile writes the model to a file path atomically: a crash or full
// disk mid-save never clobbers an existing artifact, and close errors are
// propagated instead of swallowed.
func (m *PragFormer) SaveFile(path string) error {
	return ckpt.WriteFileAtomic(path, m.Save)
}

// Load reads a model written by Save, validating the format version and
// every tensor manifest entry so a truncated or hand-corrupted file fails
// with a descriptive error instead of panicking or silently loading
// partial weights.
func Load(r io.Reader) (*PragFormer, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: decode model file: %w", err)
	}
	if mf.Version > modelFormatVersion {
		return nil, fmt.Errorf("core: model file written by a newer/unknown format (version %d, this build reads <= %d)",
			mf.Version, modelFormatVersion)
	}
	if len(mf.Names) != len(mf.Data) || len(mf.Shapes) != len(mf.Data) {
		return nil, fmt.Errorf("core: corrupt model file: %d names / %d shapes / %d data tensors",
			len(mf.Names), len(mf.Shapes), len(mf.Data))
	}
	m, err := New(mf.Cfg, 0)
	if err != nil {
		return nil, err
	}
	params := m.allParams()
	if len(params) != len(mf.Data) {
		return nil, fmt.Errorf("core: model file has %d tensors, want %d", len(mf.Data), len(params))
	}
	for i, p := range params {
		if p.Name != mf.Names[i] {
			return nil, fmt.Errorf("core: tensor %d name %q, want %q", i, mf.Names[i], p.Name)
		}
		if p.W.Rows != mf.Shapes[i][0] || p.W.Cols != mf.Shapes[i][1] {
			return nil, fmt.Errorf("core: tensor %q shape mismatch", p.Name)
		}
		if len(mf.Data[i]) != p.W.Rows*p.W.Cols {
			return nil, fmt.Errorf("core: tensor %q has %d values, want %d (truncated model file)",
				p.Name, len(mf.Data[i]), p.W.Rows*p.W.Cols)
		}
	}
	for i, p := range params {
		copy(p.W.Data, mf.Data[i])
	}
	return m, nil
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*PragFormer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// CopyEncoderFrom copies encoder weights from src (transfer learning: MLM
// pretraining → task fine-tuning). Head parameters stay freshly initialized.
func (m *PragFormer) CopyEncoderFrom(src *PragFormer) error {
	dst := m.EncoderParams()
	from := src.EncoderParams()
	if len(dst) != len(from) {
		return fmt.Errorf("core: encoder param count mismatch %d vs %d", len(dst), len(from))
	}
	for i := range dst {
		if dst[i].W.Rows != from[i].W.Rows || dst[i].W.Cols != from[i].W.Cols {
			return fmt.Errorf("core: encoder param %q shape mismatch", dst[i].Name)
		}
		copy(dst[i].W.Data, from[i].W.Data)
	}
	return nil
}
