package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pragformer/internal/scan"
)

const scanFixture = "../../examples/scantree"

// demoArgs keep the in-test demo training small; the CI golden smoke runs
// the full-size defaults against examples/scantree/golden.json.
func demoArgs(extra ...string) []string {
	base := []string{
		"-dir", scanFixture, "-train-total", "150", "-train-epochs", "1", "-seed", "1",
		"-workers", "4",
	}
	return append(base, extra...)
}

// TestScanCLIBackendAgreement is the label-agreement gate at command
// level: the same fixture tree scanned on the float64 and int8 backends
// must produce byte-identical stable reports.
func TestScanCLIBackendAgreement(t *testing.T) {
	dir := t.TempDir()
	f64 := filepath.Join(dir, "f64.json")
	i8 := filepath.Join(dir, "i8.json")
	cmdScan(demoArgs("-stable", "-backend", "float64", "-out", f64))
	cmdScan(demoArgs("-stable", "-backend", "int8", "-out", i8))

	a, err := os.ReadFile(f64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(i8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("float64 and int8 stable reports differ:\n--- float64 ---\n%s\n--- int8 ---\n%s", a, b)
	}
	var rep scan.Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Counters.Unique != 16 || rep.Counters.Skipped != 1 {
		t.Errorf("counters = %+v", rep.Counters)
	}
}

// TestScanCLIWarmCache re-runs the same scan against a persistent cache
// and asserts the acceptance property: zero model forwards the second
// time, same report.
func TestScanCLIWarmCache(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "scan.cache")
	cold := filepath.Join(dir, "cold.json")
	warm := filepath.Join(dir, "warm.json")
	cmdScan(demoArgs("-cache", cache, "-out", cold))
	cmdScan(demoArgs("-cache", cache, "-out", warm))

	read := func(path string) scan.Report {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rep scan.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	repCold, repWarm := read(cold), read(warm)
	if repCold.Counters.Inferred == 0 {
		t.Fatal("cold scan inferred nothing")
	}
	if repWarm.Counters.Inferred != 0 {
		t.Errorf("warm scan inferred %d, want 0", repWarm.Counters.Inferred)
	}
	if repWarm.Counters.CacheHits != repCold.Counters.Inferred {
		t.Errorf("warm cache hits = %d, want %d", repWarm.Counters.CacheHits, repCold.Counters.Inferred)
	}
	a, _ := repCold.Stable().JSON()
	b, _ := repWarm.Stable().JSON()
	if !bytes.Equal(a, b) {
		t.Error("warm report differs from cold report")
	}
}

func TestScanCLISARIF(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.sarif")
	cmdScan(demoArgs("-format", "sarif", "-out", out))
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || log.Schema == "" || len(log.Runs) != 1 {
		t.Errorf("sarif header = %q %q, runs %d", log.Schema, log.Version, len(log.Runs))
	}
}
