package cparse

// Loop-extraction coverage lives next to the parser because the walker's
// contract (positions, pragma attachment) only materializes on parsed
// trees; the corpus generator synthesizes loops without positions.

import (
	"testing"

	"pragformer/internal/cast"
)

func parseForLoops(t *testing.T, src string) []cast.LoopInfo {
	t.Helper()
	return cast.ExtractLoops(mustParse(t, src))
}

func TestExtractLoopsNestingAndFunctions(t *testing.T) {
	src := `void matmul(double *c, double *a, double *b, int n) {
    int i, j, k;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            double acc = 0.0;
            for (k = 0; k < n; k++) {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}
void tail(double *x, int n) {
    int i;
    while (n > 0) {
        for (i = 0; i < n; i++) x[i] = 0.0;
        n--;
    }
}
for (q = 0; q < 4; q++) s += q;
`
	loops := parseForLoops(t, src)
	if len(loops) != 5 {
		t.Fatalf("loops = %d, want 5", len(loops))
	}
	wantFn := []string{"matmul", "matmul", "matmul", "tail", ""}
	wantDepth := []int{0, 1, 2, 0, 0}
	for i, li := range loops {
		if li.Function != wantFn[i] {
			t.Errorf("loop %d function = %q, want %q", i, li.Function, wantFn[i])
		}
		if li.Depth != wantDepth[i] {
			t.Errorf("loop %d depth = %d, want %d", i, li.Depth, wantDepth[i])
		}
		if li.Loop.Line == 0 || li.Loop.Col == 0 {
			t.Errorf("loop %d missing position: %d:%d", i, li.Loop.Line, li.Loop.Col)
		}
	}
	// Outer loops come before the loops nested inside them, in file order.
	for i := 1; i < len(loops)-1; i++ { // the loose snippet trails the funcs
		if loops[i].Loop.Line < loops[i-1].Loop.Line {
			t.Errorf("loops out of source order at %d", i)
		}
	}
}

func TestExtractLoopsAttachedPragma(t *testing.T) {
	src := `void axpy(double *y, double *x, double a, int n) {
    int i;
#pragma omp parallel for
    for (i = 0; i < n; i++) {
        y[i] = y[i] + a * x[i];
    }
    for (i = 0; i < n; i++) y[i] = 0.0;
}
`
	loops := parseForLoops(t, src)
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	if loops[0].Pragma != "pragma omp parallel for" {
		t.Errorf("pragma = %q", loops[0].Pragma)
	}
	if loops[1].Pragma != "" {
		t.Errorf("bare loop carries pragma %q", loops[1].Pragma)
	}
}

func TestExtractLoopsInsideIfAndDo(t *testing.T) {
	src := `void f(int n) {
    int i;
    if (n > 1) {
        for (i = 0; i < n; i++) g(i);
    } else
        for (i = 0; i < n; i++) h(i);
    do {
        for (i = 0; i < n; i++) k(i);
    } while (n--);
}
`
	loops := parseForLoops(t, src)
	if len(loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(loops))
	}
	for i, li := range loops {
		if li.Depth != 0 {
			t.Errorf("loop %d depth = %d (if/do must not add for-depth)", i, li.Depth)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("void f(int n) {\n    for (i = 0; i < n; i++ {\n        x[i] = i;\n    }\n}\n")
	if err == nil {
		t.Fatal("expected parse error")
	}
	line, col, ok := Position(err)
	if !ok {
		t.Fatalf("error carries no position: %v", err)
	}
	if line != 2 || col == 0 {
		t.Errorf("position = %d:%d, want line 2", line, col)
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := Parse("int a = 1;\nchar *s = \"unterminated;\n")
	if err == nil {
		t.Fatal("expected lex error")
	}
	if line, _, ok := Position(err); !ok || line < 2 {
		t.Errorf("lex error position not carried: %v", err)
	}
}
