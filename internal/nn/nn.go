// Package nn implements the neural building blocks of PragFormer with
// explicit forward/backward passes: embeddings with positional encodings,
// linear layers, layer normalization, multi-head self-attention, the
// position-wise feed-forward network, dropout, and the composed transformer
// encoder block (pre-norm residual form). Every layer returns a cache from
// Forward that its Backward consumes, and gradients accumulate into Param
// buffers consumed by the optimizer in internal/train.
package nn

import (
	"math"
	"math/rand"

	"pragformer/internal/tensor"
)

// Param is one trainable weight matrix with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
	// NoDecay excludes the parameter from AdamW weight decay (biases,
	// layer-norm gains, embeddings).
	NoDecay bool
}

// NewParam allocates a rows×cols parameter initialized N(0, std²).
func NewParam(name string, rows, cols int, rng *rand.Rand, std float64) *Param {
	p := &Param{Name: name, W: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
	if std > 0 {
		p.W.Randn(rng, std)
	}
	return p
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

// Embedding sums token and learned positional embeddings.
type Embedding struct {
	Tok *Param // vocab × d
	Pos *Param // maxLen × d
	D   int
}

// NewEmbedding builds token and positional tables.
func NewEmbedding(vocab, maxLen, d int, rng *rand.Rand) *Embedding {
	e := &Embedding{
		Tok: NewParam("emb.tok", vocab, d, rng, 0.02),
		Pos: NewParam("emb.pos", maxLen, d, rng, 0.02),
		D:   d,
	}
	e.Tok.NoDecay = true
	e.Pos.NoDecay = true
	return e
}

// Params lists trainable parameters.
func (e *Embedding) Params() []*Param { return []*Param{e.Tok, e.Pos} }

// Forward embeds ids into a T×d matrix.
func (e *Embedding) Forward(ids []int) *tensor.Matrix {
	out := tensor.New(len(ids), e.D)
	for t, idx := range ids {
		row := out.Row(t)
		copy(row, e.Tok.W.Row(idx))
		tensor.Axpy(1, e.Pos.W.Row(t), row)
	}
	return out
}

// Backward accumulates gradients for the embedded ids.
func (e *Embedding) Backward(ids []int, dOut *tensor.Matrix) {
	for t, idx := range ids {
		tensor.Axpy(1, dOut.Row(t), e.Tok.Grad.Row(idx))
		tensor.Axpy(1, dOut.Row(t), e.Pos.Grad.Row(t))
	}
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

// Linear is y = x·W + b.
type Linear struct {
	W *Param // in × out
	B *Param // 1 × out
}

// NewLinear builds a linear layer with scaled-normal init.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		W: NewParam(name+".W", in, out, rng, 1/math.Sqrt(float64(in))),
		B: NewParam(name+".b", 1, out, rng, 0),
	}
	l.B.NoDecay = true
	return l
}

// Params lists trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// LinearCache holds the forward input for backprop.
type LinearCache struct{ x *tensor.Matrix }

// Forward computes y = x·W + b in one fused kernel pass: the bias seeds
// each output accumulator (see tensor.MatMulBiasInto), which is also what
// the inference ApplyInto runs, keeping the two paths bit-identical.
func (l *Linear) Forward(x *tensor.Matrix) (*tensor.Matrix, *LinearCache) {
	y := tensor.New(x.Rows, l.W.W.Cols)
	tensor.MatMulBiasInto(y, x, l.W.W, l.B.W.Row(0))
	return y, &LinearCache{x: x}
}

// Backward accumulates dW, db and returns dX.
func (l *Linear) Backward(c *LinearCache, dOut *tensor.Matrix) *tensor.Matrix {
	dw := tensor.GetMatrixDirty(c.x.Cols, dOut.Cols) // MatMulATInto zeroes it
	tensor.MatMulATInto(dw, c.x, dOut)
	l.W.Grad.AddInPlace(dw)
	tensor.PutMatrix(dw)
	bg := l.B.Grad.Row(0)
	for i := 0; i < dOut.Rows; i++ {
		tensor.Axpy(1, dOut.Row(i), bg)
	}
	return tensor.MatMulBT(dOut, l.W.W)
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

// LayerNorm normalizes each row to zero mean / unit variance with learned
// gain and bias.
type LayerNorm struct {
	Gamma *Param
	Beta  *Param
	Eps   float64
}

// NewLayerNorm builds a layer norm over dimension d.
func NewLayerNorm(name string, d int) *LayerNorm {
	ln := &LayerNorm{
		Gamma: &Param{Name: name + ".g", W: tensor.New(1, d), Grad: tensor.New(1, d), NoDecay: true},
		Beta:  &Param{Name: name + ".b", W: tensor.New(1, d), Grad: tensor.New(1, d), NoDecay: true},
		Eps:   1e-5,
	}
	for i := range ln.Gamma.W.Data {
		ln.Gamma.W.Data[i] = 1
	}
	return ln
}

// Params lists trainable parameters.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// LayerNormCache stores normalized activations and per-row inverse stddev.
type LayerNormCache struct {
	xhat   *tensor.Matrix
	invStd []float64
}

// Forward normalizes x row-wise.
func (ln *LayerNorm) Forward(x *tensor.Matrix) (*tensor.Matrix, *LayerNormCache) {
	d := x.Cols
	out := tensor.New(x.Rows, d)
	cache := &LayerNormCache{xhat: tensor.New(x.Rows, d), invStd: make([]float64, x.Rows)}
	g := ln.Gamma.W.Row(0)
	b := ln.Beta.W.Row(0)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(d)
		vr := 0.0
		for _, v := range row {
			dv := v - mean
			vr += dv * dv
		}
		vr /= float64(d)
		inv := 1 / math.Sqrt(vr+ln.Eps)
		cache.invStd[i] = inv
		xh := cache.xhat.Row(i)
		or := out.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) * inv
			or[j] = xh[j]*g[j] + b[j]
		}
	}
	return out, cache
}

// Backward returns dX and accumulates dGamma, dBeta.
func (ln *LayerNorm) Backward(c *LayerNormCache, dOut *tensor.Matrix) *tensor.Matrix {
	d := dOut.Cols
	dx := tensor.New(dOut.Rows, d)
	g := ln.Gamma.W.Row(0)
	gg := ln.Gamma.Grad.Row(0)
	bg := ln.Beta.Grad.Row(0)
	for i := 0; i < dOut.Rows; i++ {
		drow := dOut.Row(i)
		xh := c.xhat.Row(i)
		// Accumulate parameter grads.
		for j := 0; j < d; j++ {
			gg[j] += drow[j] * xh[j]
			bg[j] += drow[j]
		}
		// dxhat = dOut * gamma; dx via the standard layer-norm backward.
		sumD, sumDX := 0.0, 0.0
		for j := 0; j < d; j++ {
			dxh := drow[j] * g[j]
			sumD += dxh
			sumDX += dxh * xh[j]
		}
		inv := c.invStd[i]
		n := float64(d)
		dxr := dx.Row(i)
		for j := 0; j < d; j++ {
			dxh := drow[j] * g[j]
			dxr[j] = (dxh - sumD/n - xh[j]*sumDX/n) * inv
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// ReLU and dropout
// ---------------------------------------------------------------------------

// ReLUCache records the activation mask.
type ReLUCache struct{ mask []bool }

// ReLU applies max(0, x) elementwise, returning a new matrix.
func ReLU(x *tensor.Matrix) (*tensor.Matrix, *ReLUCache) {
	out := x.Clone()
	c := &ReLUCache{mask: make([]bool, len(x.Data))}
	for i, v := range out.Data {
		if v > 0 {
			c.mask[i] = true
		} else {
			out.Data[i] = 0
		}
	}
	return out, c
}

// ReLUBackward masks the upstream gradient.
func ReLUBackward(c *ReLUCache, dOut *tensor.Matrix) *tensor.Matrix {
	dx := dOut.Clone()
	for i := range dx.Data {
		if !c.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// DropoutCache records the kept-element mask and scale.
type DropoutCache struct {
	mask  []bool
	scale float64
}

// Dropout zeroes elements with probability p and rescales survivors
// (inverted dropout). In eval mode (train=false) it is the identity. The
// noise source is the serializable RNG so training runs can checkpoint and
// resume the exact noise stream.
func Dropout(x *tensor.Matrix, p float64, train bool, rng *RNG) (*tensor.Matrix, *DropoutCache) {
	if !train || p <= 0 {
		return x, &DropoutCache{scale: 1}
	}
	out := x.Clone()
	c := &DropoutCache{mask: make([]bool, len(x.Data)), scale: 1 / (1 - p)}
	for i := range out.Data {
		if rng.Float64() < p {
			out.Data[i] = 0
		} else {
			c.mask[i] = true
			out.Data[i] *= c.scale
		}
	}
	return out, c
}

// DropoutBackward propagates gradients through the kept elements.
func DropoutBackward(c *DropoutCache, dOut *tensor.Matrix) *tensor.Matrix {
	if c.mask == nil {
		return dOut
	}
	dx := dOut.Clone()
	for i := range dx.Data {
		if c.mask[i] {
			dx.Data[i] *= c.scale
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}
