//go:build amd64 && !purego

package tensor

// AVX2 backend for the int8 matmul kernel. The scalar path is capped by
// integer-multiply throughput (one 32-bit IMUL per cycle on current x86),
// so quantized inference could never meaningfully beat the float64 kernels
// without SIMD: VPMOVSXBW widens 16 int8 lanes to int16 and VPMADDWD folds
// 16 multiply-adds into one instruction, lifting the kernel to >8
// multiply-accumulates per cycle. Results are bit-identical to the scalar
// kernel — integer addition is associative, so lane reassociation and the
// horizontal reduction are exact.

// int8DequantQuadsK16 computes, for g in 0..quads and c in 0..3,
// out[4g+c] = float64(float32(Σ_{k < k16} a[k]·b[(4g+c)·stride + k]) · sa ·
// scales[4g+c]), with k16 a nonzero multiple of 16 and quads ≥ 1. b points
// at the first of 4·quads consecutive length-stride channel rows. Both the
// channel loop and the dequantization run inside the kernel, so one call
// produces a whole float64 output row with no intermediate buffer.
//
//go:noescape
func int8DequantQuadsK16(a, b *int8, k16, stride, quads int, scales *float32, sa float32, out *float64)

// f64AbsMaxAVX2 returns max |p[i]| over the first n4 elements (a nonzero
// multiple of 4). Exact: max never rounds, so reduction order is free.
//
//go:noescape
func f64AbsMaxAVX2(p *float64, n4 int) float64

// f64QuantRowAVX2 stores int8(round-half-away(src[i]·inv)) for i < n4 (a
// nonzero multiple of 4), bit-identical to the scalar math.Round path on
// finite inputs — see the derivation in int8_amd64.s.
//
//go:noescape
func f64QuantRowAVX2(src *float64, dst *int8, inv float64, n4 int)

// int8DotRows1AVX2 computes one output row. When the inner dimension is a
// nonzero multiple of 16 (every quantized layer in this repo: K = 32, 64)
// the fused vector kernel covers all 4-channel groups in a single call and
// scalar code finishes the channel tail; other inner dimensions take the
// scalar kernel, which is bit-identical (int32 accumulation is exact).
func int8DotRows1AVX2(o []float64, arow []int8, s float32, b *Int8Matrix, K, N int) {
	if K == 0 || K&15 != 0 {
		int8DotRows1(o, arow, s, b, K, N)
		return
	}
	quads := N >> 2
	if quads > 0 {
		int8DequantQuadsK16(&arow[0], &b.Data[0], K, K, quads, &b.Scales[0], s, &o[0])
	}
	scales := b.Scales
	for j := quads * 4; j < N; j++ {
		brow := b.Row(j)
		var p int32
		for k := 0; k < K; k++ {
			p += int32(arow[k]) * int32(brow[k])
		}
		o[j] = float64(float32(p) * s * scales[j])
	}
}
