package core

import (
	"pragformer/internal/tensor"
)

// Batch-first inference. Predict remains the reference implementation — it
// shares forwardCls with the training path, caches and all — while
// PredictBatch* run the dedicated inference forwards from nn/infer.go over
// a whole batch at once: no backprop caches, pooled intermediates, and a
// [CLS]-pruned last block (only the classifier row of the final encoder
// block, final layer norm, and head is ever computed — the rows that cannot
// influence the output are skipped, which the parity tests confirm is
// bit-exact). Sequences are stacked row-wise into one ragged matrix, so the
// big matmuls cross tensor's parallel threshold and fan out across the
// worker pool where B single-sequence products would not.
//
// All PredictBatch* methods are safe for concurrent use: the forward pass
// only reads the weights.

// PredictBatchProbs returns both class probabilities for every sequence,
// bit-identical to calling forwardCls (Predict/Loss) per sequence.
func (m *PragFormer) PredictBatchProbs(idsBatch [][]int) [][2]float64 {
	B := len(idsBatch)
	out := make([][2]float64, B)
	if B == 0 {
		return out
	}
	seqs := make([][]int, B)
	offs := make([]int, B+1)
	for i, ids := range idsBatch {
		if len(ids) == 0 {
			panic("core: PredictBatch on empty id sequence")
		}
		if len(ids) > m.Cfg.MaxLen {
			ids = ids[:m.Cfg.MaxLen]
		}
		seqs[i] = ids
		offs[i+1] = offs[i] + len(ids)
	}

	x := tensor.GetMatrixDirty(offs[B], m.Cfg.D)
	m.Emb.ForwardBatchInto(x, seqs)
	for l := 0; l < len(m.Blocks)-1; l++ {
		next := m.Blocks[l].InferBatch(x, offs)
		tensor.PutMatrix(x)
		x = next
	}
	cls := m.Blocks[len(m.Blocks)-1].InferCLS(x, offs)
	tensor.PutMatrix(x)

	hidden := tensor.GetMatrixDirty(B, m.Cfg.D)
	m.FinalLN.ApplyInto(hidden, cls)
	tensor.PutMatrix(cls)
	h := tensor.GetMatrixDirty(B, m.Cfg.FCHidden)
	m.FC1.ApplyReLUInto(h, hidden) // fused bias+ReLU epilogue
	tensor.PutMatrix(hidden)
	logits := tensor.GetMatrixDirty(B, 2)
	m.FC2.ApplyInto(logits, h)
	tensor.PutMatrix(h)
	for i := 0; i < B; i++ {
		tensor.SoftmaxVecInto(out[i][:], logits.Row(i))
	}
	tensor.PutMatrix(logits)
	return out
}

// PredictBatch returns the positive-class probability for every sequence,
// bit-identical to calling Predict on each.
func (m *PragFormer) PredictBatch(idsBatch [][]int) []float64 {
	probs := m.PredictBatchProbs(idsBatch)
	out := make([]float64, len(probs))
	for i, p := range probs {
		out[i] = p[1]
	}
	return out
}

// PredictLabelBatch applies the paper's 0.5 threshold to a whole batch,
// bit-identical to calling PredictLabel on each sequence.
func (m *PragFormer) PredictLabelBatch(idsBatch [][]int) []bool {
	probs := m.PredictBatchProbs(idsBatch)
	out := make([]bool, len(probs))
	for i, p := range probs {
		out[i] = p[1] > 0.5
	}
	return out
}
