package cparse

import (
	"pragformer/internal/cast"
	"pragformer/internal/clex"
)

// Precedence levels for the expression parser, mirroring cast's printer.
const (
	precLowest = iota
	precComma
	precAssign
	precTernary
	precLogOr
	precLogAnd
	precBitOr
	precBitXor
	precBitAnd
	precEq
	precRel
	precShift
	precAdd
	precMul
	precUnary
	precPostfix
)

var binaryPrec = map[string]int{
	"||": precLogOr, "&&": precLogAnd,
	"|": precBitOr, "^": precBitXor, "&": precBitAnd,
	"==": precEq, "!=": precEq,
	"<": precRel, ">": precRel, "<=": precRel, ">=": precRel,
	"<<": precShift, ">>": precShift,
	"+": precAdd, "-": precAdd,
	"*": precMul, "/": precMul, "%": precMul,
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true,
	"%=": true, "&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

// parseExpr parses expressions with precedence at least minPrec.
// minPrec == precLowest permits the comma operator.
func (p *Parser) parseExpr(minPrec int) (cast.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseBinaryRHS(lhs, minPrec)
}

func (p *Parser) parseBinaryRHS(lhs cast.Expr, minPrec int) (cast.Expr, error) {
	for {
		t := p.cur()
		if t.Kind != clex.Punct {
			return lhs, nil
		}
		// Assignment (right associative).
		if assignOps[t.Text] {
			if precAssign < minPrec {
				return lhs, nil
			}
			op := p.next().Text
			rhs, err := p.parseExpr(precAssign)
			if err != nil {
				return nil, err
			}
			lhs = &cast.Assign{Op: op, L: lhs, R: rhs}
			continue
		}
		// Ternary (right associative).
		if t.Text == "?" {
			if precTernary < minPrec {
				return lhs, nil
			}
			p.next()
			then, err := p.parseExpr(precAssign)
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			els, err := p.parseExpr(precTernary)
			if err != nil {
				return nil, err
			}
			lhs = &cast.Ternary{Cond: lhs, Then: then, Else: els}
			continue
		}
		// Comma.
		if t.Text == "," {
			if precComma < minPrec {
				return lhs, nil
			}
			p.next()
			rhs, err := p.parseExpr(precAssign)
			if err != nil {
				return nil, err
			}
			lhs = &cast.Comma{L: lhs, R: rhs}
			continue
		}
		prec, ok := binaryPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next().Text
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		rhs, err = p.parseBinaryRHSAbove(rhs, prec)
		if err != nil {
			return nil, err
		}
		lhs = &cast.BinaryOp{Op: op, L: lhs, R: rhs}
	}
}

// parseBinaryRHSAbove folds in operators binding tighter than prec
// (left associativity for same-precedence operators).
func (p *Parser) parseBinaryRHSAbove(lhs cast.Expr, prec int) (cast.Expr, error) {
	return p.parseBinaryRHS(lhs, prec+1)
}

func (p *Parser) parseUnary() (cast.Expr, error) {
	t := p.cur()
	switch {
	case t.Text == "++" || t.Text == "--":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &cast.UnaryOp{Op: t.Text, X: x}, nil
	case t.Text == "+" || t.Text == "-" || t.Text == "!" || t.Text == "~" || t.Text == "*" || t.Text == "&":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &cast.UnaryOp{Op: t.Text, X: x}, nil
	case t.Text == "sizeof":
		p.next()
		if p.cur().Text == "(" && p.isTypeStart(1) {
			p.next()
			ts, err := p.parseTypeSpec()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &cast.Sizeof{Type: ts}, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &cast.Sizeof{X: x}, nil
	case t.Text == "(" && p.isTypeStart(1):
		// Cast expression `(type) expr`.
		p.next()
		ts, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &cast.Cast{Type: ts, X: x}, nil
	}
	return p.parsePostfix()
}

// isTypeStart reports whether the token at offset off begins a type name —
// used to disambiguate casts from parenthesized expressions.
func (p *Parser) isTypeStart(off int) bool {
	t := p.at(off)
	if t.Kind == clex.Keyword {
		switch t.Text {
		case "int", "char", "float", "double", "long", "short", "signed",
			"unsigned", "void", "const", "volatile", "struct", "union", "register":
			return true
		}
		return false
	}
	if t.Kind == clex.Ident && p.typedefs[t.Text] {
		// `(size_t) x` is a cast; `(n) + 1` is not. Require ')' or '*' next.
		n := p.at(off + 1)
		return n.Text == ")" || n.Text == "*"
	}
	return false
}

func (p *Parser) parsePostfix() (cast.Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Text {
		case "[":
			p.next()
			idx, err := p.parseExpr(precLowest)
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &cast.ArrayRef{Arr: x, Index: idx}
		case "(":
			p.next()
			call := &cast.FuncCall{Fun: x}
			if p.cur().Text != ")" {
				for {
					a, err := p.parseExpr(precAssign)
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			x = call
		case ".", "->":
			p.next()
			if p.cur().Kind != clex.Ident {
				return nil, p.errorf("expected member name after %q", t.Text)
			}
			x = &cast.Member{X: x, Field: p.next().Text, Arrow: t.Text == "->"}
		case "++", "--":
			p.next()
			x = &cast.UnaryOp{Op: t.Text, X: x, Postfix: true}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (cast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case clex.Ident, clex.Keyword:
		if t.Kind == clex.Keyword && t.Text != "sizeof" {
			return nil, p.errorf("unexpected keyword %q in expression", t.Text)
		}
		p.next()
		return &cast.Ident{Name: t.Text}, nil
	case clex.IntLit:
		p.next()
		return &cast.IntLit{Text: t.Text}, nil
	case clex.FloatLit:
		p.next()
		return &cast.FloatLit{Text: t.Text}, nil
	case clex.CharLit:
		p.next()
		return &cast.CharLit{Text: t.Text}, nil
	case clex.StringLit:
		p.next()
		return &cast.StrLit{Text: t.Text}, nil
	case clex.Punct:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr(precLowest)
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}
