package tokenize

import (
	"bytes"
	"strings"
	"testing"
)

func TestVocabPersistRoundTrip(t *testing.T) {
	v := BuildVocab([][]string{{"for", "(", "i", "=", "0", ")"}}, 1)
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v2, err := LoadVocab(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Size() != v.Size() {
		t.Fatalf("size %d want %d", v2.Size(), v.Size())
	}
	for _, tok := range []string{"for", "(", "i", "=", "0", ")"} {
		if v2.ID(tok) != v.ID(tok) {
			t.Errorf("id(%q) = %d want %d", tok, v2.ID(tok), v.ID(tok))
		}
	}
	if v2.Token(PAD) != "[PAD]" || v2.Token(CLS) != "[CLS]" {
		t.Error("specials not restored")
	}
}

func TestLoadVocabRejectsCorruptFiles(t *testing.T) {
	cases := map[string]string{
		"too short":      "[PAD]\n",
		"wrong specials": "[PAD]\n[UNK]\n[MASK]\n[CLS]\nfor\n",
		"duplicate":      "[PAD]\n[UNK]\n[CLS]\n[MASK]\nfor\nfor\n",
	}
	for name, content := range cases {
		if _, err := LoadVocab(strings.NewReader(content)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
