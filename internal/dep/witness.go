package dep

import (
	"fmt"
	"strconv"
	"strings"

	"pragformer/internal/cast"
)

// A race witness is the structured "why" behind a refuted loop: the
// dependence kind, the two access sites, their subscript texts, and the
// per-level direction/distance vector. Witness positions are line/column
// inside the canonical Print rendering of the analyzed loop, so the same
// loop yields identical witnesses whether it arrived through a repo scan
// or a snippet posted to the HTTP API.

// Site is one endpoint of a race witness.
type Site struct {
	Expr  string `json:"expr"`
	Write bool   `json:"write"`
	Line  int    `json:"line,omitempty"`
	Col   int    `json:"col,omitempty"`
}

// Witness describes one loop-carried (or unprovably absent) dependence.
type Witness struct {
	Array    string   `json:"array"`
	Kind     string   `json:"kind"` // flow | anti | output | unknown
	Source   Site     `json:"source"`
	Sink     Site     `json:"sink"`
	Vector   []string `json:"vector,omitempty"`   // per nest level: "<" "=" ">" "*"
	Distance string   `json:"distance,omitempty"` // e.g. "(1)", "(0,*)"
	Reason   string   `json:"reason,omitempty"`

	srcNode cast.Expr
	dstNode cast.Expr
}

// Concrete reports whether the witness pins an actual dependence (as
// opposed to an analysis bail-out on subscripts it could not model).
func (w Witness) Concrete() bool { return w.Kind != "unknown" }

// String renders a one-line summary used in human-readable reports.
func (w Witness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s dependence on %s: %s -> %s", w.Kind, w.Array, w.Source.Expr, w.Sink.Expr)
	if w.Distance != "" {
		fmt.Fprintf(&b, " distance %s", w.Distance)
	}
	return b.String()
}

// vectorOf builds direction and distance vectors over the nest levels from
// the merged distance facts of a pair.
func (ns *nestSpace) vectorOf(rel pairRel) (vec []string, dist string) {
	var dparts []string
	for _, v := range ns.vars {
		d, known := rel.dist[v]
		switch {
		case !known:
			vec = append(vec, "*")
			dparts = append(dparts, "*")
		case d == 0:
			vec = append(vec, "=")
			dparts = append(dparts, "0")
		case d > 0:
			vec = append(vec, "<")
			dparts = append(dparts, strconv.FormatInt(d, 10))
		default:
			vec = append(vec, ">")
			dparts = append(dparts, strconv.FormatInt(d, 10))
		}
	}
	return vec, "(" + strings.Join(dparts, ",") + ")"
}

// negate flips a distance vector when source and sink are swapped into
// lexicographically positive order.
func negateVec(rel pairRel, ns *nestSpace) pairRel {
	out := pairRel{dist: map[string]int64{}}
	for v, d := range rel.dist {
		out.dist[v] = -d
	}
	_ = ns
	return out
}

// buildWitness assembles a witness for a refuting pair. w must be the write
// access; other may be a read or another write.
func (ns *nestSpace) buildWitness(name string, w, other access, rel pairRel) Witness {
	outer := ns.vars[0]
	d, known := rel.dist[outer]

	src, dst := w, other
	srcWrite, dstWrite := true, other.write || other.accumOp != ""
	// Normalize to a lexicographically positive vector: a negative outer
	// distance means the "other" access's iteration precedes the write's.
	if known && d < 0 {
		src, dst = other, w
		srcWrite, dstWrite = dstWrite, srcWrite
		rel = negateVec(rel, ns)
	} else if !known && other.order < w.order && !other.write {
		// Unknown distance: use textual order to orient read-then-write.
		src, dst = other, w
		srcWrite, dstWrite = dstWrite, srcWrite
	}

	kind := "flow"
	switch {
	case srcWrite && dstWrite:
		kind = "output"
	case srcWrite && !dstWrite:
		kind = "flow"
	default:
		kind = "anti"
	}

	vec, dist := ns.vectorOf(rel)
	return Witness{
		Array:    name,
		Kind:     kind,
		Source:   Site{Expr: siteExpr(src), Write: srcWrite},
		Sink:     Site{Expr: siteExpr(dst), Write: dstWrite},
		Vector:   vec,
		Distance: dist,
		srcNode:  src.node,
		dstNode:  dst.node,
	}
}

// bailWitness records an analysis bail-out (non-affine subscript or
// mismatched dimensionality) with both sites but no vector.
func (ns *nestSpace) bailWitness(name string, w, other access, reason string) Witness {
	return Witness{
		Array:   name,
		Kind:    "unknown",
		Source:  Site{Expr: siteExpr(w), Write: true},
		Sink:    Site{Expr: siteExpr(other), Write: other.write},
		Reason:  reason,
		srcNode: w.node,
		dstNode: other.node,
	}
}

func siteExpr(a access) string {
	if a.node != nil {
		return cast.PrintExpr(a.node)
	}
	return a.name
}

// scalarWitness builds the witness for a scalar read-modify-write carried
// across iterations: consecutive iterations conflict, so the outer distance
// is exactly one.
func (a *Analysis) scalarWitness(ctx *collector, name string) Witness {
	var wAcc, rAcc *access
	for i := range ctx.accesses {
		acc := &ctx.accesses[i]
		if acc.subs != nil || acc.name != name {
			continue
		}
		if acc.write && wAcc == nil {
			wAcc = acc
		}
		if !acc.write && rAcc == nil {
			rAcc = acc
		}
	}
	depth := a.NestDepth
	if depth < 1 {
		depth = 1
	}
	vec := make([]string, depth)
	dparts := make([]string, depth)
	vec[0], dparts[0] = "<", "1"
	for i := 1; i < depth; i++ {
		vec[i], dparts[i] = "*", "*"
	}
	w := Witness{
		Array:    name,
		Kind:     "flow",
		Vector:   vec,
		Distance: "(" + strings.Join(dparts, ",") + ")",
		Reason:   "scalar read-modify-write across iterations",
	}
	if wAcc != nil {
		w.Source = Site{Expr: siteExpr(*wAcc), Write: true}
		w.srcNode = wAcc.node
	} else {
		w.Source = Site{Expr: name, Write: true}
	}
	if rAcc != nil {
		w.Sink = Site{Expr: siteExpr(*rAcc)}
		w.dstNode = rAcc.node
	} else {
		w.Sink = w.Source
		w.dstNode = w.srcNode
	}
	return w
}

// fillWitnessPositions renders the loop once and anchors every witness site
// to its line/column in the canonical snippet text.
func (a *Analysis) fillWitnessPositions(loop *cast.For) {
	if len(a.Witnesses) == 0 {
		return
	}
	var targets []cast.Node
	for i := range a.Witnesses {
		if n := a.Witnesses[i].srcNode; n != nil {
			targets = append(targets, n)
		}
		if n := a.Witnesses[i].dstNode; n != nil {
			targets = append(targets, n)
		}
	}
	if len(targets) == 0 {
		return
	}
	_, marks := cast.PrintPositions(loop, targets)
	for i := range a.Witnesses {
		w := &a.Witnesses[i]
		if p, ok := marks[w.srcNode]; ok && w.srcNode != nil {
			w.Source.Line, w.Source.Col = p.Line, p.Col
		}
		if p, ok := marks[w.dstNode]; ok && w.dstNode != nil {
			w.Sink.Line, w.Sink.Col = p.Line, p.Col
		}
	}
}
