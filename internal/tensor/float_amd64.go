//go:build amd64 && !purego

package tensor

// AVX2 FMA backend for the float64 GEMM kernels (float_amd64.s). The asm
// mirrors the scalar fallbacks in float.go instruction-for-instruction at
// the arithmetic level — VFMADD231PD lanes are distinct output elements (or
// the documented 4-lane dot partials), so the two paths are bit-identical
// on finite inputs; see the contract in float.go and
// TestFloatKernelScalarSIMDAgree. Installation happens in cpu_amd64.go
// alongside the int8 kernel, gated on the shared AVX2 probe and the
// PRAGFORMER_NOSIMD escape hatch.

// f64GemmRowAVX2 computes, for j in [0, n):
//
//	dst[j] = epilogue(init_j + Σ_{k'<k} a[k'·strideA] · b[k'·strideB + j])
//
// with init_j = bias[j] (bias may be nil → 0) and epilogue = max(·, +0)
// when flags&f64ReLUFlag is set. Strides are in elements. The output row is
// register-tiled 16/8/4 wide with a scalar tail; per-element accumulation
// order is ascending k regardless of tile width.
//
//go:noescape
func f64GemmRowAVX2(dst, a *float64, strideA int, b *float64, strideB int, bias *float64, k, n, flags int)

// f64DotBT4AVX2 computes out[c] = lane-ordered dot(a[0:k], b[c·strideB:+k])
// for c in 0..3: four FMA lane partials over the 4-aligned prefix, reduced
// (l0+l2)+(l1+l3), then a sequential FMA tail.
//
//go:noescape
func f64DotBT4AVX2(a, b *float64, strideB, k int, out *float64)

// f64NormScaleAVX2 stores dst[j] = ((src[j]-mean)·inv)·gamma[j] + beta[j]
// for j < n4 (a nonzero multiple of 4) — sub, mul, mul, add per lane in the
// exact order of the scalar scale-shift loop, so results are bit-identical.
//
//go:noescape
func f64NormScaleAVX2(dst, src *float64, mean, inv float64, gamma, beta *float64, n4 int)
