/* A classic sum reduction over a vector. */

double total(double *v, int n) {
    int i;
    double sum = 0.0;
    for (i = 0; i < n; i++) {
        sum += v[i];
    }
    return sum;
}
