package dep

import (
	"sort"
	"strconv"
	"strings"

	"pragformer/internal/cast"
)

// Affine represents a subscript expression in the canonical form
//
//	Coef*loopVar + Const + Σ SymCoefs[s]*s
//
// over a designated loop variable, with all other identifiers kept as
// symbolic terms. Affine forms drive the ZIV/SIV/GCD dependence tests the
// way Banerjee-style tests do inside Cetus and AutoPar.
type Affine struct {
	Coef     int64            // coefficient of the loop variable
	Const    int64            // integer constant part
	SymCoefs map[string]int64 // coefficients of other identifiers
	OK       bool             // false when the expression is not affine
}

// affineZero returns an affine form representing 0.
func affineZero() Affine {
	return Affine{SymCoefs: map[string]int64{}, OK: true}
}

func (a Affine) add(b Affine) Affine {
	if !a.OK || !b.OK {
		return Affine{}
	}
	r := affineZero()
	r.Coef = a.Coef + b.Coef
	r.Const = a.Const + b.Const
	for k, v := range a.SymCoefs {
		r.SymCoefs[k] += v
	}
	for k, v := range b.SymCoefs {
		r.SymCoefs[k] += v
	}
	r.normalize()
	return r
}

func (a Affine) neg() Affine {
	if !a.OK {
		return Affine{}
	}
	r := affineZero()
	r.Coef = -a.Coef
	r.Const = -a.Const
	for k, v := range a.SymCoefs {
		r.SymCoefs[k] = -v
	}
	return r
}

func (a Affine) scale(c int64) Affine {
	if !a.OK {
		return Affine{}
	}
	r := affineZero()
	r.Coef = a.Coef * c
	r.Const = a.Const * c
	for k, v := range a.SymCoefs {
		r.SymCoefs[k] = v * c
	}
	r.normalize()
	return r
}

func (a *Affine) normalize() {
	for k, v := range a.SymCoefs {
		if v == 0 {
			delete(a.SymCoefs, k)
		}
	}
}

// constOnly reports whether the form has no loop-variable and no symbols.
func (a Affine) constOnly() bool { return a.OK && a.Coef == 0 && len(a.SymCoefs) == 0 }

// sameSymbols reports whether two forms have identical symbolic parts, a
// precondition for exact distance computation.
func (a Affine) sameSymbols(b Affine) bool {
	if len(a.SymCoefs) != len(b.SymCoefs) {
		return false
	}
	for k, v := range a.SymCoefs {
		if b.SymCoefs[k] != v {
			return false
		}
	}
	return true
}

// key returns a deterministic string for the symbolic part, for map keys.
func (a Affine) key() string {
	if len(a.SymCoefs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(a.SymCoefs))
	for k := range a.SymCoefs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('*')
		b.WriteString(strconv.FormatInt(a.SymCoefs[k], 10))
		b.WriteByte(';')
	}
	return b.String()
}

// ToAffine converts expression e into affine form over loopVar. Any
// construct outside {+,-,*,parenthesization, integer literals, identifiers,
// unary minus, casts} yields a non-affine result (OK == false), which the
// dependence tests treat conservatively.
func ToAffine(e cast.Expr, loopVar string) Affine {
	switch v := e.(type) {
	case *cast.IntLit:
		n, err := strconv.ParseInt(strings.TrimRight(v.Text, "uUlL"), 0, 64)
		if err != nil {
			return Affine{}
		}
		a := affineZero()
		a.Const = n
		return a
	case *cast.Ident:
		a := affineZero()
		if v.Name == loopVar {
			a.Coef = 1
		} else {
			a.SymCoefs[v.Name] = 1
		}
		return a
	case *cast.BinaryOp:
		l := ToAffine(v.L, loopVar)
		r := ToAffine(v.R, loopVar)
		switch v.Op {
		case "+":
			return l.add(r)
		case "-":
			return l.add(r.neg())
		case "*":
			if l.constOnly() {
				return r.scale(l.Const)
			}
			if r.constOnly() {
				return l.scale(r.Const)
			}
			return Affine{}
		}
		return Affine{}
	case *cast.UnaryOp:
		if v.Op == "-" && !v.Postfix {
			return ToAffine(v.X, loopVar).neg()
		}
		if v.Op == "+" && !v.Postfix {
			return ToAffine(v.X, loopVar)
		}
		return Affine{}
	case *cast.Cast:
		return ToAffine(v.X, loopVar)
	case *cast.FuncCall:
		// Pure bound macros (POLYBENCH_LOOP_BOUND(4000, n)) act as opaque
		// loop-invariant symbols keyed by their printed form, so identical
		// bounds compare equal in dependence tests.
		if fn, ok := v.Fun.(*cast.Ident); ok && pureFuncs[fn.Name] {
			a := affineZero()
			a.SymCoefs["call:"+cast.PrintExpr(v)] = 1
			return a
		}
		return Affine{}
	case *cast.Member:
		// Loop-invariant struct reads (image->colors) as opaque symbols.
		a := affineZero()
		a.SymCoefs["member:"+cast.PrintExpr(v)] = 1
		return a
	}
	return Affine{}
}

// DepResult classifies the outcome of a pairwise subscript test.
type DepResult int

const (
	// DepNone proves independence across iterations.
	DepNone DepResult = iota
	// DepSameIteration proves accesses only coincide within an iteration.
	DepSameIteration
	// DepCarried proves or fails to disprove a loop-carried dependence.
	DepCarried
	// DepUnknown is returned for non-affine subscripts; callers must be
	// conservative.
	DepUnknown
)

// TestPair applies the ZIV / strong-SIV / GCD hierarchy to a pair of
// subscripts of the same array dimension.
func TestPair(w, r Affine) DepResult {
	if !w.OK || !r.OK {
		return DepUnknown
	}
	// Symbolic parts must match for an exact test; differing symbols could
	// still alias for some runtime values, so be conservative.
	if !w.sameSymbols(r) {
		if w.Coef == 0 && r.Coef == 0 {
			return DepUnknown
		}
		return DepUnknown
	}
	diff := r.Const - w.Const
	switch {
	case w.Coef == 0 && r.Coef == 0:
		// ZIV: both loop-invariant.
		if diff == 0 {
			return DepCarried // same cell touched every iteration
		}
		return DepNone
	case w.Coef == r.Coef:
		// Strong SIV: distance = diff / coef.
		if diff%w.Coef != 0 {
			return DepNone
		}
		if diff/w.Coef == 0 {
			return DepSameIteration
		}
		return DepCarried
	default:
		// General SIV/MIV: GCD test on w.Coef*i1 - r.Coef*i2 = diff.
		g := gcd64(abs64(w.Coef), abs64(r.Coef))
		if g == 0 {
			return DepUnknown
		}
		if diff%g != 0 {
			return DepNone
		}
		return DepCarried
	}
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
