package tokenize

import (
	"strings"
	"testing"

	"pragformer/internal/corpus"
)

const table6Src = "for (i = 0; i < len; i++) a[i] = i;"

func TestExtractText(t *testing.T) {
	toks, err := Extract(table6Src, Text)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(toks, " ")
	want := "for ( i = 0 ; i < len ; i ++ ) a [ i ] = i ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestExtractRText(t *testing.T) {
	toks, err := Extract(table6Src, RText)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(toks, " ")
	// Table 6: for (var0 = 0; var0 < var1; var0++) arr0[var0] = var0;
	want := "for ( var0 = 0 ; var0 < var1 ; var0 ++ ) arr0 [ var0 ] = var0 ;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestExtractAST(t *testing.T) {
	toks, err := Extract(table6Src, AST)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(toks, " ")
	want := "For: Assignment: = ID: i Constant: int, 0 BinaryOp: < ID: i ID: len UnaryOp: p++ ID: i Assignment: = ArrayRef: ID: a ID: i ID: i"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestExtractRAST(t *testing.T) {
	toks, err := Extract(table6Src, RAST)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(toks, " ")
	if !strings.Contains(joined, "var0") || !strings.Contains(joined, "arr0") {
		t.Errorf("replaced AST missing canonical names: %q", joined)
	}
	if strings.Contains(joined, "ID: i") || strings.Contains(joined, "ID: len") {
		t.Errorf("original names leaked: %q", joined)
	}
}

func TestPragmaNeverLeaks(t *testing.T) {
	src := "#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = 0;"
	for _, repr := range Representations {
		toks, err := Extract(src, repr)
		if err != nil {
			t.Fatalf("%v: %v", repr, err)
		}
		for _, tok := range toks {
			if strings.Contains(tok, "pragma") || strings.Contains(tok, "omp") {
				t.Errorf("%v: label leaked via token %q", repr, tok)
			}
		}
	}
}

func TestExtractParseError(t *testing.T) {
	for _, repr := range []Representation{RText, AST, RAST} {
		if _, err := Extract("for (i = 0; i <", repr); err == nil {
			t.Errorf("%v: expected error", repr)
		}
	}
}

func TestRepresentationString(t *testing.T) {
	names := map[Representation]string{Text: "Text", RText: "Replaced-Text", AST: "AST", RAST: "Replaced-AST"}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q want %q", r, r.String(), want)
		}
	}
}

func TestBuildVocab(t *testing.T) {
	seqs := [][]string{{"for", "(", "i"}, {"i", "=", "0"}}
	v := BuildVocab(seqs, 1)
	if v.Size() != NumSpecials+5 {
		t.Fatalf("size = %d", v.Size())
	}
	if v.ID("for") < NumSpecials {
		t.Error("token id collides with specials")
	}
	if v.ID("never_seen") != UNK {
		t.Error("OOV should map to UNK")
	}
	if !v.Contains("i") || v.Contains("zzz") {
		t.Error("Contains wrong")
	}
}

func TestBuildVocabMinFreq(t *testing.T) {
	seqs := [][]string{{"a", "a", "b"}}
	v := BuildVocab(seqs, 2)
	if !v.Contains("a") || v.Contains("b") {
		t.Errorf("minFreq filtering wrong")
	}
}

func TestVocabDeterministic(t *testing.T) {
	seqs := [][]string{{"x", "y"}, {"z", "x"}}
	v1 := BuildVocab(seqs, 1)
	v2 := BuildVocab(seqs, 1)
	for _, tok := range []string{"x", "y", "z"} {
		if v1.ID(tok) != v2.ID(tok) {
			t.Fatalf("nondeterministic id for %q", tok)
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	v := BuildVocab([][]string{{"a", "b", "c"}}, 1)
	ids := v.Encode([]string{"a", "b", "zzz"}, 10)
	if ids[0] != CLS {
		t.Fatal("first id must be CLS")
	}
	if len(ids) != 4 {
		t.Fatalf("len = %d", len(ids))
	}
	if ids[3] != UNK {
		t.Error("OOV not UNK")
	}
	dec := v.Decode(ids)
	if dec[0] != "[CLS]" || dec[1] != "a" || dec[3] != "[UNK]" {
		t.Errorf("decode = %v", dec)
	}
}

func TestEncodeTruncation(t *testing.T) {
	v := BuildVocab([][]string{{"a"}}, 1)
	long := make([]string, 500)
	for i := range long {
		long[i] = "a"
	}
	ids := v.Encode(long, 110)
	if len(ids) != 110 {
		t.Fatalf("len = %d, want 110 (the paper's max input length)", len(ids))
	}
}

func TestTokenOutOfRange(t *testing.T) {
	v := BuildVocab(nil, 1)
	if v.Token(-1) != "[UNK]" || v.Token(9999) != "[UNK]" {
		t.Error("out-of-range Token should be [UNK]")
	}
	if v.Token(PAD) != "[PAD]" || v.Token(MASK) != "[MASK]" {
		t.Error("special token strings wrong")
	}
}

func TestComputeStats(t *testing.T) {
	train := [][]string{{"a", "b"}, {"a", "c"}}
	vt := [][]string{{"a", "d"}, {"e"}}
	s := ComputeStats(Text, train, vt)
	if s.TrainVocab != 3 {
		t.Errorf("train vocab = %d", s.TrainVocab)
	}
	if s.OOVTypes != 2 {
		t.Errorf("oov = %d", s.OOVTypes)
	}
	if s.AvgLength != 7.0/4.0 {
		t.Errorf("avg = %f", s.AvgLength)
	}
}

// TestTable7Shape checks the representation-level vocabulary ordering the
// paper reports: Text vocab > R-Text vocab, and AST serializations are
// longer than Text on average.
func TestTable7Shape(t *testing.T) {
	c := corpus.Generate(corpus.Config{Seed: 11, Total: 600})
	perRepr := map[Representation][][]string{}
	for _, r := range c.Records {
		for _, repr := range Representations {
			toks, err := Extract(r.Code, repr)
			if err != nil {
				t.Fatalf("%v: %v", repr, err)
			}
			perRepr[repr] = append(perRepr[repr], toks)
		}
	}
	stats := map[Representation]Stats{}
	for repr, seqs := range perRepr {
		n := len(seqs) * 8 / 10
		stats[repr] = ComputeStats(repr, seqs[:n], seqs[n:])
	}
	if stats[Text].TrainVocab <= stats[RText].TrainVocab {
		t.Errorf("Text vocab %d should exceed R-Text vocab %d (Table 7)",
			stats[Text].TrainVocab, stats[RText].TrainVocab)
	}
	if stats[AST].TrainVocab <= stats[RAST].TrainVocab {
		t.Errorf("AST vocab %d should exceed R-AST vocab %d", stats[AST].TrainVocab, stats[RAST].TrainVocab)
	}
	if stats[AST].AvgLength <= stats[Text].AvgLength {
		t.Errorf("AST avg length %.1f should exceed Text %.1f (serializer adds structure words)",
			stats[AST].AvgLength, stats[Text].AvgLength)
	}
}

func BenchmarkExtractText(b *testing.B) {
	src := strings.Repeat("for (i = 0; i < n; i++) { a[i] = b[i] * c[i]; }\n", 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(src, Text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractAST(b *testing.B) {
	src := strings.Repeat("for (i = 0; i < n; i++) { a[i] = b[i] * c[i]; }\n", 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(src, AST); err != nil {
			b.Fatal(err)
		}
	}
}
