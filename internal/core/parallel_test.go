package core

import (
	"math"
	"math/rand"
	"testing"

	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

// synthExamples builds a deterministic synthetic classification set: random
// token ids with a label derived from the token sum, so the task is
// learnable and both label classes appear.
func synthExamples(n, vocab, length int, seed int64) []train.Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]train.Example, n)
	for i := range out {
		ids := make([]int, length)
		sum := 0
		ids[0] = tokenize.CLS
		for t := 1; t < length; t++ {
			ids[t] = tokenize.NumSpecials + rng.Intn(vocab-tokenize.NumSpecials)
			sum += ids[t]
		}
		out[i] = train.Example{IDs: ids, Label: sum%2 == 0}
	}
	return out
}

func fitWithWorkers(t *testing.T, workers int) train.History {
	t.Helper()
	m, err := New(Config{Vocab: 50, MaxLen: 16, D: 16, Heads: 2, Layers: 1, Dropout: 0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	trainSet := synthExamples(48, 50, 12, 11)
	validSet := synthExamples(16, 50, 12, 22)
	return train.Fit(m, trainSet, validSet, train.Config{
		Epochs: 3, BatchSize: 8, LR: 1e-3, ClipNorm: 1, Seed: 5, Workers: workers,
	})
}

// TestFitWorkersDeterministic is the PR's core acceptance test: training the
// real transformer with 4 data-parallel workers must reproduce the
// sequential learning curve (losses within 1e-9, identical best epoch).
// Dropout is 0 so replicas have no independent noise; remaining differences
// come only from floating-point summation order in the all-reduce.
func TestFitWorkersDeterministic(t *testing.T) {
	h1 := fitWithWorkers(t, 1)
	h4 := fitWithWorkers(t, 4)
	if len(h1.Epochs) != len(h4.Epochs) {
		t.Fatalf("epoch count %d vs %d", len(h1.Epochs), len(h4.Epochs))
	}
	for i := range h1.Epochs {
		e1, e4 := h1.Epochs[i], h4.Epochs[i]
		if d := math.Abs(e1.TrainLoss - e4.TrainLoss); d > 1e-9 {
			t.Errorf("epoch %d train loss drift %.3g (%.12f vs %.12f)", i, d, e1.TrainLoss, e4.TrainLoss)
		}
		if d := math.Abs(e1.ValidLoss - e4.ValidLoss); d > 1e-9 {
			t.Errorf("epoch %d valid loss drift %.3g (%.12f vs %.12f)", i, d, e1.ValidLoss, e4.ValidLoss)
		}
		if e1.ValidAccuracy != e4.ValidAccuracy {
			t.Errorf("epoch %d accuracy %.3f vs %.3f", i, e1.ValidAccuracy, e4.ValidAccuracy)
		}
	}
	if h1.BestEpoch != h4.BestEpoch {
		t.Errorf("best epoch %d vs %d", h1.BestEpoch, h4.BestEpoch)
	}
}

// TestFitWorkersRepeatable: two parallel runs with the same seed and worker
// count must be bit-identical (fixed reduction order, disjoint shards).
func TestFitWorkersRepeatable(t *testing.T) {
	h1 := fitWithWorkers(t, 3)
	h2 := fitWithWorkers(t, 3)
	for i := range h1.Epochs {
		if h1.Epochs[i] != h2.Epochs[i] {
			t.Fatalf("epoch %d differs across identical parallel runs: %+v vs %+v",
				i, h1.Epochs[i], h2.Epochs[i])
		}
	}
}

// TestCloneIndependent verifies a clone starts weight-identical and stays
// independent: training the clone must not move the original's weights.
func TestCloneIndependent(t *testing.T) {
	m, err := New(Config{Vocab: 40, MaxLen: 12, D: 16, Heads: 2, Layers: 1, Dropout: 0.1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone(99)
	mp, cp := m.allParams(), c.allParams()
	for i := range mp {
		for j, v := range mp[i].W.Data {
			if cp[i].W.Data[j] != v {
				t.Fatalf("param %q differs after clone", mp[i].Name)
			}
		}
	}
	before := m.FC1.W.W.Clone()
	ids := synthExamples(1, 40, 10, 1)[0]
	c.LossAndBackward(ids.IDs, ids.Label)
	nonzero := false
	for _, v := range c.FC1.W.Grad.Data {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("clone accumulated no gradient")
	}
	for j, v := range before.Data {
		if m.FC1.W.W.Data[j] != v {
			t.Fatal("training the clone mutated the original")
		}
	}
	for _, v := range m.FC1.W.Grad.Data {
		if v != 0 {
			t.Fatal("clone backward leaked gradients into the original")
		}
	}
}
