package advisor

import (
	"strings"
	"testing"

	"pragformer/internal/core"
	"pragformer/internal/corpus"
	"pragformer/internal/cparse"
	"pragformer/internal/dataset"
	"pragformer/internal/pragma"
	"pragformer/internal/s2s"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

// trainTask fits one small classifier for a task over a shared corpus.
func trainTask(t *testing.T, c *corpus.Corpus, task dataset.Task, v *tokenize.Vocab) *core.PragFormer {
	t.Helper()
	var split dataset.Split
	if task == dataset.TaskDirective {
		split = dataset.Directive(c, dataset.Options{Seed: 1})
	} else {
		split = dataset.Clause(c, task, dataset.Options{Seed: 1, Balance: true})
	}
	encode := func(ins []dataset.Instance) []train.Example {
		out := make([]train.Example, len(ins))
		for i, in := range ins {
			toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = train.Example{IDs: v.Encode(toks, 64), Label: in.Label}
		}
		return out
	}
	m, err := core.New(core.Config{Vocab: v.Size(), MaxLen: 64, D: 32, Heads: 4, Layers: 1}, int64(10+task))
	if err != nil {
		t.Fatal(err)
	}
	train.Fit(m, encode(split.Train), encode(split.Valid), train.Config{
		Epochs: 4, BatchSize: 16, LR: 1.5e-3, ClipNorm: 1, Seed: int64(task),
	})
	return m
}

// sharedModels trains the three classifiers once for the package.
var sharedModels *Models

func models(t *testing.T) *Models {
	t.Helper()
	if testing.Short() {
		t.Skip("advisor models are slow to train")
	}
	if sharedModels != nil {
		return sharedModels
	}
	c := corpus.Generate(corpus.Config{Seed: 6, Total: 800})
	split := dataset.Directive(c, dataset.Options{Seed: 1})
	var seqs [][]string
	for _, in := range split.Train {
		toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, toks)
	}
	v := tokenize.BuildVocab(seqs, 1)
	sharedModels = &Models{
		Directive: trainTask(t, c, dataset.TaskDirective, v),
		Private:   trainTask(t, c, dataset.TaskPrivate, v),
		Reduction: trainTask(t, c, dataset.TaskReduction, v),
		Vocab:     v,
		MaxLen:    64,
	}
	return sharedModels
}

func TestSuggestReduction(t *testing.T) {
	m := models(t)
	s, err := m.Suggest("for (i = 0; i < n; i++) sum += a[i] * b[i];")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Parallelize {
		t.Fatalf("reduction loop not parallelized (p=%.2f, notes %v)", s.Probability, s.Notes)
	}
	if s.Directive == nil || !s.Directive.HasReduction() {
		t.Errorf("directive = %v, want reduction clause", s.Directive)
	}
	if s.Corroboration.Tier < TierAnalysisAgrees {
		t.Errorf("tier = %v, analysis should agree", s.Corroboration.Tier)
	}
	if !s.Corroboration.DepRan || !s.Corroboration.DepAgrees {
		t.Errorf("corroboration = %+v, want dep ran and agreed", s.Corroboration)
	}
}

func TestSuggestPrivate(t *testing.T) {
	m := models(t)
	src := "for (i = 0; i < n; i++) for (j = 0; j < n; j++) x[i] = x[i] + A[i][j] * y[j];"
	s, err := m.Suggest(src)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Parallelize {
		t.Fatalf("matvec not parallelized (p=%.2f)", s.Probability)
	}
	if s.Directive == nil || !s.Directive.HasPrivate() {
		t.Errorf("directive = %v, want private(j)", s.Directive)
	}
	annotated := s.Annotate(src)
	if !strings.HasPrefix(annotated, "#pragma omp parallel for") {
		t.Errorf("annotated = %q", annotated)
	}
}

func TestSuggestSerialLoop(t *testing.T) {
	m := models(t)
	s, err := m.Suggest("for (i = 1; i < n; i++) a[i] = a[i-1] + 1;")
	if err != nil {
		t.Fatal(err)
	}
	if s.Parallelize {
		t.Fatalf("recurrence parallelized (p=%.2f)", s.Probability)
	}
	if s.Directive != nil {
		t.Error("directive on serial loop")
	}
	if got := s.Annotate("x"); got != "x" {
		t.Errorf("Annotate changed serial code: %q", got)
	}
}

func TestSuggestIOLoop(t *testing.T) {
	m := models(t)
	s, err := m.Suggest(`for (i = 0; i < n; i++) printf("%d", a[i]);`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Parallelize {
		t.Fatalf("I/O loop parallelized (p=%.2f)", s.Probability)
	}
}

func TestSuggestErrors(t *testing.T) {
	var empty Models
	if _, err := empty.Suggest("for (i = 0; i < n; i++) a[i] = 0;"); err == nil {
		t.Fatal("expected error without models")
	}
	m := models(t)
	if _, err := m.Suggest("for (i = 0; i < `n`"); err == nil {
		t.Fatal("expected error on unlexable input")
	}
}

// TestSuggestBatchMatchesSuggest asserts that batching changes nothing: a
// mixed batch (positives, negatives, an unlexable snippet) must reproduce
// the per-snippet Suggest results exactly.
func TestSuggestBatchMatchesSuggest(t *testing.T) {
	m := models(t)
	codes := []string{
		"for (i = 0; i < n; i++) sum += a[i] * b[i];",
		"for (i = 1; i < n; i++) a[i] = a[i-1] + 1;",
		"for (i = 0; i < `n`", // unlexable
		"for (i = 0; i < n; i++) for (j = 0; j < n; j++) x[i] = x[i] + A[i][j] * y[j];",
		`for (i = 0; i < n; i++) printf("%d", a[i]);`,
	}
	items, err := m.SuggestBatch(codes)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(codes) {
		t.Fatalf("got %d items for %d codes", len(items), len(codes))
	}
	for i, code := range codes {
		want, wantErr := m.Suggest(code)
		got, gotErr := items[i].Suggestion, items[i].Err
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("snippet %d: err %v vs single %v", i, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if got.Parallelize != want.Parallelize || got.Probability != want.Probability ||
			got.Corroboration.Tier != want.Corroboration.Tier {
			t.Errorf("snippet %d: batch %+v != single %+v", i, got, want)
		}
		if strings.Join(got.Corroboration.DepWitness, "|") != strings.Join(want.Corroboration.DepWitness, "|") {
			t.Errorf("snippet %d: witness %v != %v", i, got.Corroboration.DepWitness, want.Corroboration.DepWitness)
		}
		if len(got.Attributions) != len(want.Attributions) {
			t.Errorf("snippet %d: %d attributions != %d", i, len(got.Attributions), len(want.Attributions))
		}
		if (got.Directive == nil) != (want.Directive == nil) {
			t.Errorf("snippet %d: directive presence mismatch", i)
		} else if got.Directive != nil && got.Directive.String() != want.Directive.String() {
			t.Errorf("snippet %d: directive %q != %q", i, got.Directive, want.Directive)
		}
		if strings.Join(got.Notes, "|") != strings.Join(want.Notes, "|") {
			t.Errorf("snippet %d: notes %v != %v", i, got.Notes, want.Notes)
		}
	}
}

// TestSuggestBatchEmpty covers the degenerate batch.
func TestSuggestBatchEmpty(t *testing.T) {
	m := models(t)
	items, err := m.SuggestBatch(nil)
	if err != nil || len(items) != 0 {
		t.Fatalf("SuggestBatch(nil) = %v, %v", items, err)
	}
}

// TestNoCorroborate asserts the S2S pass can be disabled: the tier stays
// below TierCorroborated and the stub comparator is never consulted.
func TestNoCorroborate(t *testing.T) {
	base := models(t)
	m := &Models{
		Directive: base.Directive, Private: base.Private, Reduction: base.Reduction,
		Vocab: base.Vocab, MaxLen: base.MaxLen,
		NoCorroborate: true,
		ComPar:        panicCompiler{},
	}
	s, err := m.Suggest("for (i = 0; i < n; i++) sum += a[i] * b[i];")
	if err != nil {
		t.Fatal(err)
	}
	if s.Corroboration.Tier == TierCorroborated {
		t.Error("corroboration ran despite NoCorroborate")
	}
	if len(s.Corroboration.S2S) != 0 {
		t.Errorf("S2S evidence %v recorded despite NoCorroborate", s.Corroboration.S2S)
	}
}

// panicCompiler fails the test if the advisor consults it.
type panicCompiler struct{}

func (panicCompiler) Name() string { return "panic" }
func (panicCompiler) Compile(string) (s2s.Result, error) {
	panic("advisor consulted the comparator with NoCorroborate set")
}

func TestTierString(t *testing.T) {
	names := map[string]bool{}
	for _, tier := range []Tier{TierDisagree, TierModelOnly, TierAnalysisAgrees, TierCorroborated} {
		name := tier.String()
		if name == "" {
			t.Errorf("tier %d has no name", tier)
		}
		if names[name] {
			t.Errorf("tier name %q collides", name)
		}
		names[name] = true
	}
	if TierDisagree.String() != "disagree" {
		t.Errorf("TierDisagree = %q, the scan layer matches on \"disagree\"", TierDisagree)
	}
}

func TestAnalyzeHelper(t *testing.T) {
	if analyze("not c code {{{") != nil {
		t.Error("analyze should be nil on parse failure")
	}
	if analyze("x = 1;") != nil {
		t.Error("analyze should be nil without a loop")
	}
	a := analyze("for (i = 0; i < n; i++) a[i] = 0;")
	if a == nil || !a.Parallelizable {
		t.Error("simple loop should analyze parallelizable")
	}
}

// yesBackend is a stub directive classifier that likes every loop — it
// lets the corroboration tests force a model-positive verdict without
// training anything.
type yesBackend struct{}

func (yesBackend) BackendName() string { return "stub" }
func (yesBackend) VocabSize() int      { return 1 << 20 }
func (yesBackend) MaxSeqLen() int      { return 64 }
func (yesBackend) Predict([]int) float64 {
	return 0.9
}
func (yesBackend) PredictLabel([]int) bool { return true }
func (yesBackend) PredictBatch(idsBatch [][]int) []float64 {
	out := make([]float64, len(idsBatch))
	for i := range out {
		out[i] = 0.9
	}
	return out
}
func (yesBackend) PredictBatchProbs(idsBatch [][]int) [][2]float64 {
	out := make([][2]float64, len(idsBatch))
	for i := range out {
		out[i] = [2]float64{0.1, 0.9}
	}
	return out
}
func (yesBackend) PredictLabelBatch(idsBatch [][]int) []bool {
	out := make([]bool, len(idsBatch))
	for i := range out {
		out[i] = true
	}
	return out
}

// yesCompiler is a stub S2S compiler that parallelizes everything.
type yesCompiler struct{}

func (yesCompiler) Name() string { return "yes" }
func (yesCompiler) Compile(string) (s2s.Result, error) {
	return s2s.Result{Directive: &pragma.Directive{ParallelFor: true}}, nil
}

// stubModels wires the yes-to-everything classifier with a real vocabulary
// so the pipeline's tokenize/encode path runs for real.
func stubModels(t *testing.T, comp s2s.Compiler) *Models {
	t.Helper()
	toks, err := tokenize.Extract("for (i = 1; i < n; i++) s[i] += s[i-1] * a[i];", tokenize.Text)
	if err != nil {
		t.Fatal(err)
	}
	return &Models{Directive: yesBackend{}, Vocab: tokenize.BuildVocab([][]string{toks}, 1), MaxLen: 64, ComPar: comp}
}

// TestDisagreementIsTerminal is the confidence-ladder regression: before
// the tiered Corroboration, a successful ComPar compile unconditionally
// overwrote the grade with ComParAgrees, erasing "the dependence analysis
// found a loop-carried dependence". A carried-dep snippet with a compiler
// that happily parallelizes must stay at TierDisagree.
func TestDisagreementIsTerminal(t *testing.T) {
	m := stubModels(t, yesCompiler{})
	s, err := m.Suggest("for (i = 1; i < n; i++) s[i] += s[i-1];")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Parallelize {
		t.Fatal("stub classifier should parallelize")
	}
	cor := s.Corroboration
	if cor.Tier != TierDisagree {
		t.Fatalf("tier = %v, want %v: an S2S compile must not upgrade a dependence disagreement", cor.Tier, TierDisagree)
	}
	if !cor.DepRan || cor.DepAgrees {
		t.Errorf("corroboration = %+v, want dep ran and disagreed", cor)
	}
	witness := strings.Join(cor.DepWitness, "\n")
	if !strings.Contains(witness, "dependence") {
		t.Errorf("witness %q does not name the carried dependence", witness)
	}
	// The S2S verdict is still recorded as evidence — it just cannot
	// outvote the analysis.
	if len(cor.S2S) != 1 || !cor.S2S[0].Parallelized {
		t.Errorf("S2S evidence = %+v, want the yes-compiler verdict recorded", cor.S2S)
	}
	if len(s.Attributions) == 0 {
		t.Fatal("disagreement carries no LIME attribution")
	}
	for i, a := range s.Attributions {
		if a.Index != i {
			t.Fatalf("attributions out of token order at %d: %+v", i, a)
		}
	}
}

// TestTierLadder covers the remaining grades: analysis agreement upgrades
// to TierCorroborated only through an S2S parallelization, and a snippet
// the analysis cannot run on stays TierModelOnly even when S2S compiles.
func TestTierLadder(t *testing.T) {
	agreeing := "for (i = 0; i < n; i++) s[i] += a[i];"
	m := stubModels(t, yesCompiler{})
	s, err := m.Suggest(agreeing)
	if err != nil {
		t.Fatal(err)
	}
	if s.Corroboration.Tier != TierCorroborated {
		t.Errorf("tier = %v, want %v (analysis + S2S agree)", s.Corroboration.Tier, TierCorroborated)
	}
	if len(s.Attributions) != 0 {
		t.Errorf("agreeing verdict has attributions %v (LIME is disagreement-only)", s.Attributions)
	}

	m = stubModels(t, s2s.NewComPar())
	if s, err = m.Suggest(agreeing); err != nil {
		t.Fatal(err)
	}
	if s.Corroboration.Tier != TierCorroborated {
		t.Errorf("tier = %v, want %v under the real ComPar trio", s.Corroboration.Tier, TierCorroborated)
	}
	if len(s.Corroboration.S2S) != 3 {
		t.Errorf("S2S evidence = %+v, want one verdict per ComPar member", s.Corroboration.S2S)
	}

	// No analyzable loop: dep cannot run, and S2S parse failures must not
	// invent agreement.
	if s, err = m.Suggest("x = y + 1;"); err != nil {
		t.Fatal(err)
	}
	if s.Corroboration.Tier != TierModelOnly || s.Corroboration.DepRan {
		t.Errorf("corroboration = %+v, want model-only with DepRan false", s.Corroboration)
	}
}

// TestSnippetThreadingParity pins SuggestSnippets with a pre-parsed loop to
// the parse-on-demand path: threading the scanner's AST must not change a
// single field of the verdict.
func TestSnippetThreadingParity(t *testing.T) {
	codes := []string{
		"for (i = 1; i < n; i++) s[i] += s[i-1];",
		"for (i = 0; i < n; i++) s[i] += a[i];",
	}
	m := stubModels(t, yesCompiler{})
	for _, code := range codes {
		f, err := cparse.Parse(code)
		if err != nil {
			t.Fatal(err)
		}
		loop := s2s.FirstLoop(f)
		if loop == nil {
			t.Fatalf("no loop in %q", code)
		}
		threaded, err := m.SuggestSnippets([]Snippet{{Code: code, Loop: loop}})
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := m.SuggestBatch([]string{code})
		if err != nil {
			t.Fatal(err)
		}
		got, want := threaded[0].Suggestion, parsed[0].Suggestion
		if got.Corroboration.Tier != want.Corroboration.Tier ||
			strings.Join(got.Corroboration.DepWitness, "|") != strings.Join(want.Corroboration.DepWitness, "|") {
			t.Errorf("%q: threaded %+v != parsed %+v", code, got.Corroboration, want.Corroboration)
		}
		if len(got.Attributions) != len(want.Attributions) {
			t.Fatalf("%q: attribution count %d != %d", code, len(got.Attributions), len(want.Attributions))
		}
		for i := range got.Attributions {
			if got.Attributions[i] != want.Attributions[i] {
				t.Errorf("%q: attribution %d differs: %+v != %+v", code, i, got.Attributions[i], want.Attributions[i])
			}
		}
	}
}

// TestAttributionDeterminism: attributions are seeded from the snippet
// content, so two independent Models over the same vocabulary explain a
// disagreement identically — the property the scan cache and the
// cross-entry-point parity gates rely on.
func TestAttributionDeterminism(t *testing.T) {
	code := "for (i = 1; i < n; i++) s[i] += s[i-1];"
	a := stubModels(t, yesCompiler{})
	b := stubModels(t, yesCompiler{})
	sa, err := a.Suggest(code)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Suggest(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa.Attributions) == 0 || len(sa.Attributions) != len(sb.Attributions) {
		t.Fatalf("attribution counts %d vs %d", len(sa.Attributions), len(sb.Attributions))
	}
	for i := range sa.Attributions {
		if sa.Attributions[i] != sb.Attributions[i] {
			t.Errorf("attribution %d differs: %+v != %+v", i, sa.Attributions[i], sb.Attributions[i])
		}
	}
	if noEx := stubModels(t, yesCompiler{}); true {
		noEx.NoExplain = true
		s, err := noEx.Suggest(code)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Attributions) != 0 {
			t.Errorf("NoExplain still produced attributions: %v", s.Attributions)
		}
	}
}
