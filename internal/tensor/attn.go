package tensor

// Strided batched attention GEMMs. Multi-head attention stores Q/K/V as
// T×D row-major matrices with head h occupying the contiguous column band
// [h·dh, (h+1)·dh), dh = D/heads. Per-head score and mix products therefore
// never need per-head copies: a head's key/value rows are rows of stride D
// starting at column offset h·dh, which is exactly the strided form the row
// kernels in float.go consume. These two helpers run all heads of a
// sequence as one batched GEMM each — replacing the per-head Dot/Axpy loops
// — and inherit the kernels' bit-identity contract (AVX2 ≡ scalar).

// AttnScoresInto computes raw (pre-softmax) attention scores for every head
// in one pass:
//
//	scores[h·Tq + i][j] = scale · dot(Q_h[i], K_h[j])
//
// where q is Tq×D, k is Tk×D, and scores is (heads·Tq)×Tk — head h's Tq×Tk
// score block occupying rows [h·Tq, (h+1)·Tq). scores may be dirty; every
// element is assigned. D must be divisible by heads.
func AttnScoresInto(scores, q, k *Matrix, heads int, scale float64) {
	if q.Cols != k.Cols || heads <= 0 || q.Cols%heads != 0 {
		panic("tensor: AttnScoresInto head geometry mismatch")
	}
	if scores.Rows != heads*q.Rows || scores.Cols != k.Rows {
		panic("tensor: AttnScoresInto output shape mismatch")
	}
	Tq, Tk := q.Rows, k.Rows
	if Tq == 0 || Tk == 0 {
		return
	}
	dh := q.Cols / heads
	// Capture raw fields, not the *Matrix headers, and build the parallel
	// closure only when actually fanning out: callers construct the operand
	// headers on the stack per sequence, and a header captured by an
	// escaping closure would heap-allocate on every call.
	sData, qData, kData := scores.Data, q.Data, k.Data
	qCols, kCols := q.Cols, k.Cols
	if heads*Tq*Tk >= parallelThreshold {
		ParallelFor(heads*Tq, func(lo, hi int) {
			attnScoreRows(sData, qData, kData, qCols, kCols, dh, Tq, Tk, scale, lo, hi)
		})
	} else {
		attnScoreRows(sData, qData, kData, qCols, kCols, dh, Tq, Tk, scale, 0, heads*Tq)
	}
}

func attnScoreRows(sData, qData, kData []float64, qCols, kCols, dh, Tq, Tk int, scale float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		h, i := r/Tq, r%Tq
		srow := sData[r*Tk : (r+1)*Tk]
		if dh == 0 {
			clear(srow)
			continue
		}
		qh := qData[i*qCols+h*dh : i*qCols+(h+1)*dh]
		f64DotRows(srow, qh, kData, h*dh, kCols, dh, Tk)
		for j := range srow {
			srow[j] *= scale
		}
	}
}

// AttnMixInto computes the post-softmax value mix for every head in one
// pass:
//
//	out_h[i] = Σ_j attn[h·Tq + i][j] · V_h[j]
//
// where attn is (heads·Tq)×Tk (the AttnScoresInto layout after softmax),
// v is Tk×D, and out is Tq×D with head h written to its column band. out
// may be dirty; every element is assigned. Each output element is one
// ascending-j FMA chain (axpy kernel).
func AttnMixInto(out, attn, v *Matrix, heads int) {
	if out.Cols != v.Cols || heads <= 0 || v.Cols%heads != 0 {
		panic("tensor: AttnMixInto head geometry mismatch")
	}
	if attn.Rows != heads*out.Rows || attn.Cols != v.Rows {
		panic("tensor: AttnMixInto shape mismatch")
	}
	Tq, Tk := out.Rows, v.Rows
	dh := v.Cols / heads
	// As in AttnScoresInto: field captures plus a branch-local closure keep
	// caller-stack headers from escaping.
	oData, aData, vData := out.Data, attn.Data, v.Data
	oCols := out.Cols
	if Tq*oCols >= parallelThreshold {
		ParallelFor(Tq, func(lo, hi int) {
			attnMixRows(oData, aData, vData, oCols, dh, heads, Tq, Tk, lo, hi)
		})
	} else {
		attnMixRows(oData, aData, vData, oCols, dh, heads, Tq, Tk, 0, Tq)
	}
}

func attnMixRows(oData, aData, vData []float64, oCols, dh, heads, Tq, Tk int, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := oData[i*oCols : (i+1)*oCols]
		for h := 0; h < heads; h++ {
			dst := orow[h*dh : (h+1)*dh]
			if Tk == 0 {
				clear(dst)
				continue
			}
			arow := aData[(h*Tq+i)*Tk : (h*Tq+i+1)*Tk]
			f64GemmRow(dst, arow, 1, vData[h*dh:], oCols, nil, Tk, dh, false)
		}
	}
}
