package nn

import "testing"

func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 10; i++ {
		r.Float64()
	}
	saved := r.State()
	var want [5]float64
	for i := range want {
		want[i] = r.Float64()
	}

	r2 := &RNG{}
	r2.SetState(saved)
	for i := range want {
		if got := r2.Float64(); got != want[i] {
			t.Fatalf("draw %d after restore = %v, want %v", i, got, want[i])
		}
	}
}

func TestRNGSeedsDiverge(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	if a.State() == b.State() {
		t.Fatal("adjacent seeds share state")
	}
	same := 0
	for i := 0; i < 20; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
}

func TestRNGZeroStateRecovers(t *testing.T) {
	r := &RNG{}
	r.SetState(0)
	if r.State() == 0 {
		t.Fatal("zero state would stick the xorshift stream")
	}
	x, y := r.Float64(), r.Float64()
	if x == y {
		t.Fatal("stream not advancing")
	}
	if x < 0 || x >= 1 || y < 0 || y >= 1 {
		t.Fatalf("draws out of [0,1): %v %v", x, y)
	}
}
