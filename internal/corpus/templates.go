package corpus

import (
	"math/rand"

	"pragformer/internal/cast"
)

// snippet is one generated code segment before labeling.
type snippet struct {
	// items are the nodes printed into the record's code text (helper
	// functions first, then the loop).
	items []cast.Node
	// loop is the pragma target.
	loop *cast.For
	// funcs holds ALL generated function bodies for ground-truth labeling,
	// including bodies deliberately omitted from the printed code (the
	// paper's "lack of association of functions" S2S pitfall).
	funcs map[string]*cast.FuncDef
	// template names the generating template for diagnostics and tests.
	template string
}

func newSnippet(template string, loop *cast.For) *snippet {
	return &snippet{items: []cast.Node{loop}, loop: loop, funcs: map[string]*cast.FuncDef{}, template: template}
}

// withFunc registers fn for labeling and, when include is true, prepends its
// body to the printed code.
func (s *snippet) withFunc(fn *cast.FuncDef, include bool) *snippet {
	s.funcs[fn.Name] = fn
	if include {
		s.items = append([]cast.Node{fn}, s.items...)
	}
	return s
}

// template is a generator for one snippet family.
type template struct {
	name   string
	weight int
	build  func(rng *rand.Rand, g *genCtx) *snippet
}

// genCtx carries cross-snippet state (unique-name counters for the
// vocabulary tail).
type genCtx struct {
	tagCounter int
}

func (g *genCtx) nextTag() int {
	g.tagCounter++
	return g.tagCounter
}

// boundExpr returns either a symbolic or constant large loop bound, never
// colliding with the loop variables in avoid (a `for (m = 0; m < m; m++)`
// degenerate would otherwise slip through for the unlucky name draw).
func boundExpr(nm names, rng *rand.Rand, avoid ...string) cast.Expr {
	if rng.Intn(100) < 55 {
		for attempt := 0; attempt < 8; attempt++ {
			b := nm.bound()
			collides := false
			for _, v := range avoid {
				if b == v {
					collides = true
				}
			}
			if !collides {
				return id(b)
			}
		}
	}
	return lit(nm.bigConst())
}

// mapExpr builds a side-effect-free RHS over reads of arrays at index v.
func mapExpr(nm names, rng *rand.Rand, v string, arrays []string) cast.Expr {
	ops := []string{"+", "-", "*"}
	e := cast.Expr(aref(id(arrays[0]), id(v)))
	for _, a := range arrays[1:] {
		e = bin(ops[rng.Intn(len(ops))], e, aref(id(a), id(v)))
	}
	switch rng.Intn(6) {
	case 0:
		e = bin("*", e, flit(nm.floatConst()))
	case 1:
		e = bin("+", e, lit(nm.smallConst()))
	case 2:
		mf := []string{"sqrt", "fabs", "sin", "cos", "exp"}[rng.Intn(5)]
		e = call(mf, e)
	}
	return e
}

// fillerStmts appends extra independent elementwise statements to stretch
// snippet length without altering the label.
func fillerStmts(nm names, rng *rand.Rand, v string, count int) []cast.Stmt {
	var out []cast.Stmt
	for x := 0; x < count; x++ {
		dsts := nm.arrays(2)
		out = append(out, es(asg(aref(id(dsts[0]+"2"), id(v)), mapExpr(nm, rng, v, []string{dsts[1]}))))
	}
	return out
}

// ---------------------------------------------------------------------------
// Positive templates (parallelizable, profitably so)
// ---------------------------------------------------------------------------

// tplVecInit: array initialization — `for (i=0;i<=N;i++) A[i] = i;`
func tplVecInit(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	var rhs cast.Expr
	switch rng.Intn(4) {
	case 0:
		rhs = id(v)
	case 1:
		rhs = lit(0)
	case 2:
		rhs = flit(nm.floatConst())
	default:
		rhs = bin("*", id(v), lit(nm.smallConst()))
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), es(asg(aref(id(arr), id(v)), rhs)))
	if rng.Intn(4) == 0 {
		loop.Cond = bin("<=", id(v), boundExpr(nm, rng, v))
	}
	return newSnippet("vecInit", loop)
}

// mapBody builds an elementwise-map loop body shared by the profitable
// (vecMap) and unprofitable (tinyLoop) templates so the two classes differ
// only in iteration count, not in surface structure.
func mapBody(nm names, rng *rand.Rand, v string) cast.Stmt {
	arrs := nm.arrays(2 + rng.Intn(3))
	first := es(asg(aref(id(arrs[0]), id(v)), mapExpr(nm, rng, v, arrs[1:])))
	stmts := []cast.Stmt{first}
	if rng.Intn(3) == 0 {
		stmts = append(stmts, fillerStmts(nm, rng, v, rng.Intn(3))...)
	}
	if len(stmts) == 1 && rng.Intn(2) == 0 {
		return first // unbraced single-statement form
	}
	return block(stmts...)
}

// tplVecMap: elementwise map over one or more source arrays.
func tplVecMap(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), mapBody(nm, rng, v))
	return newSnippet("vecMap", loop)
}

// tplAxpy: y[i] = y[i] + alpha*x[i].
func tplAxpy(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arrs := nm.arrays(2)
	alpha := []string{"alpha", "a", "scale", "factor", "beta"}[rng.Intn(5)]
	rhs := bin("+", aref(id(arrs[0]), id(v)), bin("*", id(alpha), aref(id(arrs[1]), id(v))))
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), es(asg(aref(id(arrs[0]), id(v)), rhs)))
	return newSnippet("axpy", loop)
}

// tplMatVec: x1[i] += A[i][j] * y[j] with outer-declared j → private(j).
func tplMatVec(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	vs := nm.loopVars(2)
	i, j := vs[0], vs[1]
	arrs := nm.arrays(3)
	b := boundExpr(nm, rng, i, j)
	inner := forUp(j, lit(0), b,
		es(asg(aref(id(arrs[0]), id(i)),
			bin("+", aref(id(arrs[0]), id(i)), bin("*", aref(id(arrs[1]), id(i), id(j)), aref(id(arrs[2]), id(j)))))))
	loop := forUp(i, lit(0), b, inner)
	return newSnippet("matVec", loop)
}

// tplMat2D: 2-D elementwise nested loop; inner variable sometimes declared
// inline (no private clause) and sometimes outside (private(j)).
func tplMat2D(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	vs := nm.loopVars(2)
	i, j := vs[0], vs[1]
	arrs := nm.arrays(3)
	b := boundExpr(nm, rng, i, j)
	assign := es(asg(aref(id(arrs[0]), id(i), id(j)),
		bin("+", aref(id(arrs[1]), id(i), id(j)), aref(id(arrs[2]), id(i), id(j)))))
	var inner cast.Stmt
	if rng.Intn(2) == 0 {
		inner = forUp(j, lit(0), b, assign)
	} else {
		inner = forDecl(j, lit(0), b, assign)
	}
	loop := forUp(i, lit(0), b, inner)
	return newSnippet("mat2D", loop)
}

// tplMatMul: triple nested with private temp.
func tplMatMul(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	vs := nm.loopVars(3)
	i, j, k := vs[0], vs[1], vs[2]
	arrs := nm.arrays(3)
	s := nm.scalar()
	b := boundExpr(nm, rng, i, j, k)
	kLoop := forUp(k, lit(0), b,
		es(opAsg("+=", id(s), bin("*", aref(id(arrs[1]), id(i), id(k)), aref(id(arrs[2]), id(k), id(j))))))
	jBody := block(
		es(asg(id(s), lit(0))),
		kLoop,
		es(asg(aref(id(arrs[0]), id(i), id(j)), id(s))),
	)
	loop := forUp(i, lit(0), b, forUp(j, lit(0), b, jBody))
	return newSnippet("matMul", loop)
}

// tplStencil: out[i] = f(in[i-1], in[i], in[i+1]).
func tplStencil(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arrs := nm.arrays(2)
	b := boundExpr(nm, rng, v)
	rhs := bin("/",
		bin("+", bin("+", aref(id(arrs[1]), bin("-", id(v), lit(1))), aref(id(arrs[1]), id(v))),
			aref(id(arrs[1]), bin("+", id(v), lit(1)))),
		flit("3.0"))
	loop := forUp(v, lit(1), bin("-", b, lit(1)), es(asg(aref(id(arrs[0]), id(v)), rhs)))
	return newSnippet("stencil", loop)
}

// tplReduceSum: sum += expr — compound form (Cetus-recognizable).
func tplReduceSum(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	s := nm.reductionScalar()
	arrs := nm.arrays(1 + rng.Intn(2))
	op := []string{"+=", "+=", "+=", "*="}[rng.Intn(4)]
	var rhs cast.Expr
	if len(arrs) == 2 {
		rhs = bin("*", aref(id(arrs[0]), id(v)), aref(id(arrs[1]), id(v)))
	} else {
		rhs = aref(id(arrs[0]), id(v))
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), es(opAsg(op, id(s), rhs)))
	return newSnippet("reduceSum", loop)
}

// tplReduceExplicit: sum = sum + expr — form Cetus's matcher misses.
func tplReduceExplicit(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	s := nm.reductionScalar()
	arr := nm.array()
	op := []string{"+", "+", "*"}[rng.Intn(3)]
	var rhs cast.Expr
	if rng.Intn(2) == 0 {
		rhs = bin(op, id(s), aref(id(arr), id(v)))
	} else {
		rhs = bin(op, aref(id(arr), id(v)), id(s))
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), es(asg(id(s), rhs)))
	return newSnippet("reduceExplicit", loop)
}

// tplReduceMax: m = fmax(m, a[i]).
func tplReduceMax(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	m := []string{"mx", "mn", "best", "peak", "m"}[rng.Intn(5)]
	arr := nm.array()
	fn := []string{"fmax", "fmin"}[rng.Intn(2)]
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), es(asg(id(m), call(fn, id(m), aref(id(arr), id(v))))))
	return newSnippet("reduceMax", loop)
}

// tplReduceNested: nested loop reduction with private inner var.
func tplReduceNested(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	vs := nm.loopVars(2)
	i, j := vs[0], vs[1]
	s := nm.reductionScalar()
	arr := nm.array()
	b := boundExpr(nm, rng, i, j)
	inner := forUp(j, lit(0), b, es(opAsg("+=", id(s), aref(id(arr), id(i), id(j)))))
	loop := forUp(i, lit(0), b, inner)
	return newSnippet("reduceNested", loop)
}

// tplPrivateTemp: t = f(a[i]); b[i] = g(t) — private(t).
func tplPrivateTemp(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	tvar := []string{"t", "tmp", "val", "x0", "h"}[rng.Intn(5)]
	arrs := nm.arrays(2)
	stmts := []cast.Stmt{
		es(asg(id(tvar), mapExpr(nm, rng, v, arrs[1:]))),
		es(asg(aref(id(arrs[0]), id(v)), bin("*", id(tvar), id(tvar)))),
	}
	if rng.Intn(3) == 0 {
		stmts = append(stmts, es(opAsg("+=", aref(id(arrs[0]), id(v)), id(tvar))))
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), block(stmts...))
	return newSnippet("privateTemp", loop)
}

// tplPrivateTempDecl: body-local temp (no clause needed) — still positive.
func tplPrivateTempDecl(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arrs := nm.arrays(2)
	body := block(
		declStmt("double", "t", mapExpr(nm, rng, v, arrs[1:])),
		es(asg(aref(id(arrs[0]), id(v)), bin("+", id("t"), flit(nm.floatConst())))),
	)
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	return newSnippet("privateTempDecl", loop)
}

// tplUnbalanced: guarded heavy work → schedule(dynamic) (paper Table 1 #2).
func tplUnbalanced(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	guard := nm.pureFunc()
	heavy := nm.pureFunc()
	guardFn := funcDef("int", guard, []*cast.Decl{param("int", "x", 0)},
		&cast.Return{X: bin("%", id("x"), lit(2+rng.Intn(5)))})
	heavyFn := funcDef("double", heavy, []*cast.Decl{param("int", "x", 0)},
		declStmt("double", "acc", flit("0.0")),
		forDecl("q", lit(0), lit(100+rng.Intn(100)),
			es(opAsg("+=", id("acc"), call("sqrt", bin("+", bin("*", id("x"), id("x")), id("q")))))),
		&cast.Return{X: id("acc")})
	body := &cast.If{
		Cond: call(guard, id(v)),
		Then: es(asg(aref(id(arr), id(v)), call(heavy, id(v)))),
	}
	loop := forUpIncl(v, lit(0), id("N"), body)
	s := newSnippet("unbalanced", loop)
	s.withFunc(guardFn, true)
	s.withFunc(heavyFn, rng.Intn(100) < 30)
	return s
}

// tplPureCall: a[i] = helper(b[i]) with the pure helper body sometimes
// omitted from the printed code — S2S must decline, the label stays positive.
func tplPureCall(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	fn := nm.pureFunc()
	arrs := nm.arrays(2)
	helper := funcDef("double", fn, []*cast.Decl{param("double", "x", 0)},
		&cast.Return{X: bin("*", bin("+", id("x"), flit(nm.floatConst())), id("x"))})
	loop := forUp(v, lit(0), boundExpr(nm, rng, v),
		es(asg(aref(id(arrs[0]), id(v)), call(fn, aref(id(arrs[1]), id(v))))))
	s := newSnippet("pureCall", loop)
	s.withFunc(helper, rng.Intn(100) < 30) // body omitted 70% of the time
	return s
}

// tplStructArray: pts[i].x = ... — Cetus-only territory.
func tplStructArray(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	base := []string{"pts", "nodes", "cells", "particles", "items"}[rng.Intn(5)]
	fields := []string{"x", "y", "z", "val", "w"}
	f1 := fields[rng.Intn(len(fields))]
	body := es(asg(&cast.Member{X: aref(id(base), id(v)), Field: f1},
		bin("*", id(v), flit(nm.floatConst()))))
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	return newSnippet("structArray", loop)
}

// tplStrided: a[2*i] = b[i] — disjoint strided writes.
func tplStrided(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arrs := nm.arrays(2)
	stride := 2 + rng.Intn(2)
	loop := forUp(v, lit(0), boundExpr(nm, rng, v),
		es(asg(aref(id(arrs[0]), bin("*", lit(stride), id(v))), aref(id(arrs[1]), id(v)))))
	return newSnippet("strided", loop)
}

// tplGather: b[i] = a[idx[i]] — indirect reads are safe.
func tplGather(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arrs := nm.arrays(2)
	ind := []string{"idx", "perm", "map0", "order"}[rng.Intn(4)]
	loop := forUp(v, lit(0), boundExpr(nm, rng, v),
		es(asg(aref(id(arrs[0]), id(v)), aref(id(arrs[1]), aref(id(ind), id(v))))))
	return newSnippet("gather", loop)
}

// tplConditionalStore: if (mask[i]) out[i] = in[i]; — safe guarded writes.
func tplConditionalStore(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arrs := nm.arrays(3)
	body := &cast.If{
		Cond: bin(">", aref(id(arrs[2]), id(v)), lit(0)),
		Then: es(asg(aref(id(arrs[0]), id(v)), aref(id(arrs[1]), id(v)))),
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	return newSnippet("conditionalStore", loop)
}

// tplLongBody: a long multi-statement parallel body (length tail of
// Table 4) — many independent elementwise updates.
func tplLongBody(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	count := 8 + rng.Intn(40)
	var stmts []cast.Stmt
	for x := 0; x < count; x++ {
		dst := nm.uniqueTag("d", g.nextTag())
		src := nm.uniqueTag("s", g.nextTag())
		stmts = append(stmts, es(asg(aref(id(dst), id(v)),
			bin("*", aref(id(src), id(v)), flit(nm.floatConst())))))
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), block(stmts...))
	return newSnippet("longBody", loop)
}
