package tensor

import "math"

// Float64 GEMM kernel layer. The three matmul orientations (and the fused
// bias/ReLU epilogues) route every output row through one of two row
// kernels, each with an AVX2 FMA asm backend (float_amd64.s) and a portable
// scalar fallback defined here:
//
//   - the axpy/outer-product kernel (f64GemmRow*): out[j] = epilogue(
//     init_j + Σ_k a[k]·b[k][j]), used by MatMul/MatMulAT where the output
//     row is register-tiled and b streams row-wise, and
//   - the dot kernel (f64DotBT4*/dotLanes), used by MatMulBT and the
//     attention score GEMM, where both operands stream contiguously.
//
// Bit-identity contract: the scalar fallbacks compute the exact FMA chains
// the asm computes, so results are identical on every platform and build
// (amd64 AVX2, purego, arm64) — the float analogue of the int8 kernel's
// exactness guarantee, asserted by TestFloatKernelScalarSIMDAgree:
//
//   - axpy kernel: each output element is one fused-multiply-add chain in
//     ascending k (math.FMA ≡ VFMADD231PD lane-wise; vectorizing over j
//     reassociates nothing, since lanes are distinct output elements);
//   - dot kernel: four lane partials l_c = Σ_{k≡c (mod 4)} fma-accumulated,
//     reduced as (l0+l2)+(l1+l3) — mirroring VEXTRACTF128+VADDPD+VHADDPD —
//     then a sequential fma tail for k % 4 leftovers;
//   - epilogues: bias seeds the accumulator chain (init_j = bias[j]), and
//     ReLU stores max(acc, +0) exactly as VMAXPD (so -0 → +0, NaN → +0).
//
// The contract assumes finite inputs: ±Inf/NaN weights can diverge between
// a fused and an unfused multiply-add, which no trained model produces.

// f64GemmRowKernel, when non-nil, is the asm axpy row kernel. dst gets
// epilogue(init + Σ_{k<K} a[k·strideA]·b[k·strideB + j]) for j in [0, n):
// init is bias[j] (or 0 when bias is nil), and flags bit 0 applies ReLU at
// store. Strides are in elements.
var f64GemmRowKernel func(dst, a *float64, strideA int, b *float64, strideB int, bias *float64, k, n, flags int)

// f64DotBT4Kernel, when non-nil, is the asm dot kernel: out[c] = the
// lane-ordered dot product of a[0:k] with b[c·strideB : c·strideB+k] for
// c in 0..3.
var f64DotBT4Kernel func(a, b *float64, strideB, k int, out *float64)

const f64ReLUFlag = 1

// f64GemmRowGo is the portable axpy row kernel, bit-identical to
// f64GemmRowAVX2 (see the contract above). a is indexed a[k*strideA] and b
// rows at b[k*strideB:]; dst[:n] is fully assigned.
func f64GemmRowGo(dst, a []float64, strideA int, b []float64, strideB int, bias []float64, K, n int, relu bool) {
	dst = dst[:n]
	if bias != nil {
		copy(dst, bias[:n])
	} else {
		clear(dst)
	}
	for k := 0; k < K; k++ {
		av := a[k*strideA]
		brow := b[k*strideB : k*strideB+n]
		for j, bv := range brow {
			dst[j] = math.FMA(av, bv, dst[j])
		}
	}
	if relu {
		for j, v := range dst {
			if !(v > 0) { // match VMAXPD(acc, +0): -0 and NaN become +0
				dst[j] = 0
			}
		}
	}
}

// dotLanes is the portable dot kernel for one output element, bit-identical
// per lane tree to f64DotBT4AVX2.
func dotLanes(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	k4 := n &^ 3
	var l0, l1, l2, l3 float64
	for k := 0; k < k4; k += 4 {
		l0 = math.FMA(a[k], b[k], l0)
		l1 = math.FMA(a[k+1], b[k+1], l1)
		l2 = math.FMA(a[k+2], b[k+2], l2)
		l3 = math.FMA(a[k+3], b[k+3], l3)
	}
	s := (l0 + l2) + (l1 + l3)
	for k := k4; k < n; k++ {
		s = math.FMA(a[k], b[k], s)
	}
	return s
}

// f64GemmRow dispatches one axpy-kernel output row. dst must have at least
// n elements; a provides K elements at stride strideA; b rows start at
// multiples of strideB.
func f64GemmRow(dst, a []float64, strideA int, b []float64, strideB int, bias []float64, K, n int, relu bool) {
	if n == 0 {
		return
	}
	if K == 0 || len(a) == 0 {
		// Degenerate inner dimension: the epilogue alone.
		f64GemmRowGo(dst, nil, 0, nil, 0, bias, 0, n, relu)
		return
	}
	if kern := f64GemmRowKernel; kern != nil {
		flags := 0
		if relu {
			flags = f64ReLUFlag
		}
		var bp *float64
		if bias != nil {
			bp = &bias[0]
		}
		kern(&dst[0], &a[0], strideA, &b[0], strideB, bp, K, n, flags)
		return
	}
	f64GemmRowGo(dst, a, strideA, b, strideB, bias, K, n, relu)
}

// f64DotRows computes orow[j] = dot(arow, b[bOff+j·strideB : +K]) for j in
// [0, n), where b rows are strideB elements apart, using the 4-row asm
// kernel when installed and the identical lane-ordered fallback otherwise.
func f64DotRows(orow, arow, b []float64, bOff, strideB, K, n int) {
	j := 0
	if kern := f64DotBT4Kernel; kern != nil && K > 0 {
		for ; j+4 <= n; j += 4 {
			kern(&arow[0], &b[bOff+j*strideB], strideB, K, &orow[j])
		}
	}
	for ; j < n; j++ {
		off := bOff + j*strideB
		orow[j] = dotLanes(arow[:K], b[off:off+K])
	}
}

// matMulEpilogue is the shared implementation of MatMulInto and the fused
// bias/ReLU variants: out = act(a·b + bias), row-parallel above the
// threshold.
func matMulEpilogue(out, a, b *Matrix, bias []float64, relu bool) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMulInto shape mismatch")
	}
	if bias != nil && len(bias) < b.Cols {
		panic("tensor: MatMulInto bias shorter than output width")
	}
	K, N := a.Cols, b.Cols
	// Closure construction stays inside the parallel branch (and captures
	// raw fields, not the *Matrix headers): ParallelFor leaks its func, so
	// an unconditional closure would heap-allocate on every small serial
	// matmul and caller-stack operand headers would escape with it.
	oData, aData, bData := out.Data, a.Data, b.Data
	if a.Rows*N >= parallelThreshold {
		ParallelFor(a.Rows, func(lo, hi int) {
			matMulRows(oData, aData, bData, bias, K, N, relu, lo, hi)
		})
	} else {
		matMulRows(oData, aData, bData, bias, K, N, relu, 0, a.Rows)
	}
}

func matMulRows(oData, aData, bData, bias []float64, K, N int, relu bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		f64GemmRow(oData[i*N:(i+1)*N], aData[i*K:], 1, bData, N, bias, K, N, relu)
	}
}

// MatMulBiasInto computes out = a·b + bias (bias added per output column)
// in one kernel pass: the bias seeds each output accumulator, saving the
// separate row-wise Axpy sweep Linear layers used to pay.
func MatMulBiasInto(out, a, b *Matrix, bias []float64) {
	matMulEpilogue(out, a, b, bias, false)
}

// MatMulBiasReLUInto computes out = max(0, a·b + bias) in one kernel pass —
// the fused FFN/classifier-head epilogue.
func MatMulBiasReLUInto(out, a, b *Matrix, bias []float64) {
	matMulEpilogue(out, a, b, bias, true)
}

// MatMulBTInto computes out = a·bᵀ into a preallocated out. a is m×k, b is
// n×k, out m×n; both operands stream contiguously along k (the dot-kernel
// orientation).
func MatMulBTInto(out, a, b *Matrix) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic("tensor: MatMulBTInto shape mismatch")
	}
	K, N := a.Cols, b.Rows
	oData, aData, bData := out.Data, a.Data, b.Data
	if a.Rows*N >= parallelThreshold {
		ParallelFor(a.Rows, func(lo, hi int) {
			matMulBTRows(oData, aData, bData, K, N, lo, hi)
		})
	} else {
		matMulBTRows(oData, aData, bData, K, N, 0, a.Rows)
	}
}

func matMulBTRows(oData, aData, bData []float64, K, N, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := oData[i*N : (i+1)*N]
		if K == 0 {
			clear(orow)
			continue
		}
		f64DotRows(orow, aData[i*K:i*K+K], bData, 0, K, K, N)
	}
}

// f64NormScaleKernel, when non-nil, is the asm layer-norm scale-shift
// kernel over a 4-aligned prefix: dst[j] = ((src[j]-mean)·inv)·gamma[j] +
// beta[j]. Every element is an independent sub/mul/mul/add chain — no
// cross-element reduction — so vector lanes reassociate nothing and the
// asm is bit-identical to the scalar loop.
var f64NormScaleKernel func(dst, src *float64, mean, inv float64, gamma, beta *float64, n4 int)

// NormScaleInto writes dst[j] = ((src[j]-mean)*inv)*gamma[j] + beta[j] for
// j < len(dst) — the third (scale-shift) pass of layer normalization, the
// only one of its three passes whose rounding order is per-element and can
// therefore take a SIMD kernel without changing results. src, gamma, and
// beta must have at least len(dst) elements; dst may alias src.
func NormScaleInto(dst, src []float64, mean, inv float64, gamma, beta []float64) {
	n := len(dst)
	src, gamma, beta = src[:n], gamma[:n], beta[:n]
	j := 0
	if kern := f64NormScaleKernel; kern != nil {
		if n4 := n &^ 3; n4 > 0 {
			kern(&dst[0], &src[0], mean, inv, &gamma[0], &beta[0], n4)
			j = n4
		}
	}
	for ; j < n; j++ {
		xh := (src[j] - mean) * inv
		dst[j] = xh*gamma[j] + beta[j]
	}
}
