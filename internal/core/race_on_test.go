//go:build race

package core

// raceEnabled mirrors the race build tag (see race_off_test.go).
const raceEnabled = true
