package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pragformer/internal/core"
	"pragformer/internal/quant"
)

// TestQuantizeCLI trains nothing: it saves a randomly initialized float
// artifact, converts it through the quantize subcommand, and checks the
// PFQNT output loads and predicts close to the float model — the same
// contract the core parity tests pin, exercised through the CLI and the
// on-disk formats.
func TestQuantizeCLI(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.gob")
	m, err := core.New(core.Config{Vocab: 120, MaxLen: 32, D: 32, Heads: 4, Layers: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}

	cmdQuantize([]string{"-model", modelPath}) // default -out: model.pfq
	outPath := filepath.Join(dir, "model.pfq")
	if ok, err := quant.SniffFile(outPath); err != nil || !ok {
		t.Fatalf("quantize output is not a PFQNT artifact: %v %v", ok, err)
	}
	q, err := quant.LoadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 10; i++ {
		ids := []int{2}
		for n := rng.Intn(30); n > 0; n-- {
			ids = append(ids, 4+rng.Intn(100))
		}
		pf, pq := m.Predict(ids), q.Predict(ids)
		if d := pf - pq; d > 0.05 || d < -0.05 {
			t.Errorf("seq %d: float %v vs quantized-artifact %v", i, pf, pq)
		}
	}

	// The int8 artifact must be materially smaller than the float one.
	in, err := os.Stat(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.Stat(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size()*2 >= in.Size() {
		t.Errorf("quantized artifact %d bytes vs float %d: expected >2x smaller", out.Size(), in.Size())
	}
}
