package main

// pragformer scan: point the advisor at a C source tree.
//
//	pragformer scan -dir src/ -model dir.gob -vocab vocab.txt -format sarif
//	pragformer scan -dir src/ -backend int8 -cache .pragformer-scan
//
// With no -model the three demo classifiers are trained at startup on a
// generated corpus (deterministic at a fixed -seed — the CI golden diff
// depends on it). -cache makes re-scans incremental: loops whose content
// hash is cached never reach the model. -stable strips run-dependent
// fields (probabilities, backend, root, cache counters), which is what the
// golden fixtures under examples/scantree are recorded as.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"pragformer/internal/advisor"
	"pragformer/internal/core"
	"pragformer/internal/obs"
	"pragformer/internal/scan"
	"pragformer/internal/tokenize"
)

func cmdScan(args []string) {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	var (
		dir        = fs.String("dir", ".", "root of the C source tree to scan")
		format     = fs.String("format", "json", "report format: json|sarif")
		outPath    = fs.String("out", "", "write the report here (default stdout)")
		modelPath  = fs.String("model", "", "directive model path (empty: self-train demo classifiers)")
		privPath   = fs.String("private", "", "private-clause model path (optional)")
		redPath    = fs.String("reduction", "", "reduction-clause model path (optional)")
		vocabPath  = fs.String("vocab", "", "vocabulary path (required with -model)")
		backend    = fs.String("backend", "", "compute backend: float64|int8 (empty serves artifacts as loaded)")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel parse workers")
		batch      = fs.Int("batch", 16, "inference batch size")
		cachePath  = fs.String("cache", "", "persistent loop-hash cache file (incremental re-scans)")
		stable     = fs.Bool("stable", false, "omit run-dependent fields for golden comparisons")
		annotated  = fs.Bool("include-annotated", false, "also advise loops that already carry a pragma")
		noCompar   = fs.Bool("no-compar", false, "skip S2S corroboration")
		seed       = fs.Int64("seed", 1, "demo training seed")
		demoTotal  = fs.Int("train-total", 1000, "demo mode: generated corpus size")
		demoEpochs = fs.Int("train-epochs", 5, "demo mode: training epochs per classifier")
		verbose    = fs.Bool("v", false, "print a per-stage timing summary (walk/parse/dedupe/infer/corroborate) to stderr")
	)
	_ = fs.Parse(args)
	if *format != "json" && *format != "sarif" {
		fatal(fmt.Errorf("unknown format %q (json|sarif)", *format))
	}

	modelID, err := scanModelID(*modelPath, *privPath, *redPath, *vocabPath, *seed, *demoTotal, *demoEpochs)
	if err != nil {
		fatal(err)
	}
	models, err := scanModels(*modelPath, *privPath, *redPath, *vocabPath, *seed, *demoTotal, *demoEpochs)
	if err != nil {
		fatal(err)
	}
	models.NoCorroborate = *noCompar
	if models, err = models.WithBackend(*backend); err != nil {
		fatal(err)
	}

	// SIGINT cancels the scan; partial work is abandoned (the cache is
	// only rewritten by completed scans).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// -v traces the whole run: the pipeline records walk/parse/dedupe
	// spans through the context, and the advisor reports its
	// infer/corroborate splits through the stage hook. Tracing never
	// touches the report, so goldens are -v-invariant.
	var tr *obs.Trace
	if *verbose {
		tr = obs.NewTrace("")
		ctx = obs.WithTrace(ctx, tr)
		models.OnStage = func(stage string, d time.Duration) { tr.Observe(stage, d) }
	}

	cfg := scan.Config{
		Workers:          *workers,
		BatchSize:        *batch,
		CachePath:        *cachePath,
		Backend:          models.Directive.BackendName(),
		ModelID:          modelID,
		IncludeAnnotated: *annotated,
	}
	rep, err := scan.Dir(ctx, *dir, cfg, models)
	if err != nil {
		fatal(err)
	}

	c := rep.Counters
	fmt.Fprintf(os.Stderr, "scanned %d files (%d skipped): %d loops, %d unique, %d cached, %d inferred, %d disagreements on %s\n",
		c.Files, c.Skipped, c.Loops, c.Unique, c.CacheHits, c.Inferred, c.Disagreements, cfg.Backend)
	if tr != nil {
		fmt.Fprintf(os.Stderr, "stage timings (trace %s):\n", tr.ID)
		for _, st := range tr.Summary() {
			fmt.Fprintf(os.Stderr, "  %-12s %5d× %12s\n", st.Name, st.Count, st.Total.Round(time.Microsecond))
		}
		if d := tr.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "  (%d spans dropped past the %d-span cap)\n", d, 256)
		}
	}

	if *stable {
		rep = rep.Stable()
	}
	var body []byte
	if *format == "sarif" {
		body, err = rep.SARIF()
	} else {
		body, err = rep.JSON()
	}
	if err != nil {
		fatal(err)
	}
	if *outPath == "" {
		if _, err := os.Stdout.Write(body); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*outPath, body, 0o644); err != nil {
		fatal(err)
	}
}

// scanModelID fingerprints the model bundle for the cache header: the
// content hash of the loaded artifacts, or the demo-training config
// (demo runs are deterministic, so equal config means equal models).
// Verdicts cached under one fingerprint are never replayed under another.
func scanModelID(model, private, reduction, vocab string, seed int64, total, epochs int) (string, error) {
	if model == "" {
		return fmt.Sprintf("demo:seed=%d,total=%d,epochs=%d", seed, total, epochs), nil
	}
	h := sha256.New()
	for _, p := range []string{model, private, reduction, vocab} {
		if p == "" {
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%d|", len(data))
		h.Write(data)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)[:8]), nil
}

// scanModels loads classifier artifacts (PFQNT sniffed like cmd/serve), or
// trains the demo bundle when no directive model is given.
func scanModels(model, private, reduction, vocab string, seed int64, total, epochs int) (*advisor.Models, error) {
	if model == "" {
		fmt.Fprintf(os.Stderr, "no -model given; training demo classifiers (corpus %d, %d epochs, seed %d)\n",
			total, epochs, seed)
		return advisor.TrainDemo(advisor.DemoConfig{
			Seed: seed, Total: total, Epochs: epochs,
			Progress: func(s string) { fmt.Fprintln(os.Stderr, " ", s) },
		})
	}
	if vocab == "" {
		return nil, fmt.Errorf("-vocab is required with -model")
	}
	v, err := tokenize.LoadVocabFile(vocab)
	if err != nil {
		return nil, err
	}
	m := &advisor.Models{Vocab: v}
	if m.Directive, err = core.LoadClassifierFile(model); err != nil {
		return nil, err
	}
	m.MaxLen = m.Directive.MaxSeqLen()
	if private != "" {
		if m.Private, err = core.LoadClassifierFile(private); err != nil {
			return nil, err
		}
	}
	if reduction != "" {
		if m.Reduction, err = core.LoadClassifierFile(reduction); err != nil {
			return nil, err
		}
	}
	return m, nil
}
