// Package clex implements a lexical analyzer for the C subset used by the
// Open-OMP corpus. It produces a flat token stream with source positions,
// treating `#pragma` preprocessor lines as first-class tokens so that OpenMP
// directives survive lexing (they are comments to a C compiler but labels to
// us, mirroring pycparser's handling in the paper's pipeline).
package clex

import (
	"fmt"
	"strings"
)

// Kind classifies a lexical token.
type Kind int

const (
	// EOF marks the end of the token stream.
	EOF Kind = iota
	// Ident is an identifier that is not a reserved keyword.
	Ident
	// Keyword is a reserved C keyword such as `for` or `register`.
	Keyword
	// IntLit is an integer literal, including hex and octal forms.
	IntLit
	// FloatLit is a floating-point literal.
	FloatLit
	// CharLit is a character literal including its quotes.
	CharLit
	// StringLit is a string literal including its quotes.
	StringLit
	// Punct is an operator or punctuation token.
	Punct
	// Pragma is a full `#pragma ...` line (text excludes the leading '#').
	Pragma
)

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "Ident"
	case Keyword:
		return "Keyword"
	case IntLit:
		return "IntLit"
	case FloatLit:
		return "FloatLit"
	case CharLit:
		return "CharLit"
	case StringLit:
		return "StringLit"
	case Punct:
		return "Punct"
	case Pragma:
		return "Pragma"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is a single lexical token with its source position (1-based).
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

// keywords is the set of reserved words recognized by the lexer. It covers
// C89/C99 keywords that appear in the corpus plus storage-class specifiers
// (`register`, `restrict`) that the paper highlights as S2S parser breakers.
var keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true,
	"const": true, "continue": true, "default": true, "do": true,
	"double": true, "else": true, "enum": true, "extern": true,
	"float": true, "for": true, "goto": true, "if": true,
	"inline": true, "int": true, "long": true, "register": true,
	"restrict": true, "return": true, "short": true, "signed": true,
	"sizeof": true, "static": true, "struct": true, "switch": true,
	"typedef": true, "union": true, "unsigned": true, "void": true,
	"volatile": true, "while": true,
}

// IsKeyword reports whether s is a reserved C keyword.
func IsKeyword(s string) bool { return keywords[s] }

// multi-character operators ordered longest first for maximal munch.
var operators = []string{
	"<<=", ">>=", "...",
	"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
	"?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
}

// Lexer scans C source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes src in one call. It is the convenience entry point used by
// the parser and the model tokenizer.
func Lex(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// Error is a lexical error carrying its 1-based source position, so
// consumers that skip-and-report unlexable files (the repo scanner) can
// point at the offending line without parsing the message text.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("clex: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errorf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

// skipSpaceAndComments consumes whitespace and // and /* */ comments.
func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token in the stream.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peek()

	switch {
	case c == '#':
		return l.lexPreprocessor(line, col)
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := Ident
		if keywords[text] {
			kind = Keyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
		return l.lexNumber(line, col)
	case c == '\'':
		return l.lexChar(line, col)
	case c == '"':
		return l.lexString(line, col)
	default:
		for _, op := range operators {
			if strings.HasPrefix(l.src[l.pos:], op) {
				for range op {
					l.advance()
				}
				return Token{Kind: Punct, Text: op, Line: line, Col: col}, nil
			}
		}
		return Token{}, l.errorf("unexpected character %q", c)
	}
}

// lexPreprocessor handles '#...' lines. `#pragma` lines become Pragma tokens;
// all other preprocessor lines (includes, defines) are skipped, matching the
// paper's corpus preprocessing which strips everything but the pragmas.
func (l *Lexer) lexPreprocessor(line, col int) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.peek() != '\n' {
		// Line continuations keep the directive on one logical line.
		if l.peek() == '\\' && l.peekAt(1) == '\n' {
			l.advance()
			l.advance()
			continue
		}
		l.advance()
	}
	text := l.src[start:l.pos]
	text = strings.ReplaceAll(text, "\\\n", " ")
	trimmed := strings.TrimSpace(strings.TrimPrefix(text, "#"))
	if strings.HasPrefix(trimmed, "pragma") {
		return Token{Kind: Pragma, Text: trimmed, Line: line, Col: col}, nil
	}
	// Skip the directive and continue with the next token.
	return l.Next()
}

func (l *Lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	isFloat := false
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
	} else {
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			next := l.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
				isFloat = true
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
				for l.pos < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			}
		}
	}
	// Suffixes: u, l, f combinations.
	for l.pos < len(l.src) {
		switch l.peek() {
		case 'u', 'U', 'l', 'L':
			l.advance()
		case 'f', 'F':
			isFloat = true
			l.advance()
		default:
			goto done
		}
	}
done:
	kind := IntLit
	if isFloat {
		kind = FloatLit
	}
	return Token{Kind: kind, Text: l.src[start:l.pos], Line: line, Col: col}, nil
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) lexChar(line, col int) (Token, error) {
	start := l.pos
	l.advance() // opening quote
	for l.pos < len(l.src) {
		c := l.advance()
		if c == '\\' && l.pos < len(l.src) {
			l.advance()
			continue
		}
		if c == '\'' {
			return Token{Kind: CharLit, Text: l.src[start:l.pos], Line: line, Col: col}, nil
		}
		if c == '\n' {
			break
		}
	}
	return Token{}, l.errorf("unterminated character literal")
}

func (l *Lexer) lexString(line, col int) (Token, error) {
	start := l.pos
	l.advance() // opening quote
	for l.pos < len(l.src) {
		c := l.advance()
		if c == '\\' && l.pos < len(l.src) {
			l.advance()
			continue
		}
		if c == '"' {
			return Token{Kind: StringLit, Text: l.src[start:l.pos], Line: line, Col: col}, nil
		}
		if c == '\n' {
			break
		}
	}
	return Token{}, l.errorf("unterminated string literal")
}
