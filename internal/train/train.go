// Package train implements the optimization stack from the paper's §4.3:
// the AdamW optimizer (Loshchilov & Hutter), gradient clipping, a linear
// warmup learning-rate schedule, and an epoch-driven trainer that records
// the train-loss / validation-loss / validation-accuracy curves of
// Figures 4–6 and selects the best epoch by validation loss.
package train

import (
	"errors"
	"fmt"
	"math"

	"pragformer/internal/ckpt"
	"pragformer/internal/nn"
)

// AdamW is the decoupled-weight-decay Adam optimizer.
type AdamW struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m    map[*nn.Param][]float64
	v    map[*nn.Param][]float64
}

// NewAdamW returns an optimizer with the usual defaults.
func NewAdamW(lr float64) *AdamW {
	return &AdamW{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 0.01,
		m: map[*nn.Param][]float64{},
		v: map[*nn.Param][]float64{},
	}
}

// Step applies one update to params from their accumulated gradients,
// then leaves gradients untouched (callers zero them per batch). lrScale
// multiplies the base LR (warmup schedules).
func (o *AdamW) Step(params []*nn.Param, lrScale float64) {
	o.step++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.step))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.step))
	lr := o.LR * lrScale
	for _, p := range params {
		m := o.m[p]
		if m == nil {
			m = make([]float64, len(p.W.Data))
			o.m[p] = m
			o.v[p] = make([]float64, len(p.W.Data))
		}
		v := o.v[p]
		w := p.W.Data
		g := p.Grad.Data
		for i := range w {
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g[i]
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g[i]*g[i]
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			upd := mhat / (math.Sqrt(vhat) + o.Eps)
			if !p.NoDecay {
				upd += o.WeightDecay * w[i]
			}
			w[i] -= lr * upd
		}
	}
}

// State exports the optimizer's step count and first/second moments in
// params order (deep copies), the checkpointing surface. Parameters the
// optimizer has not yet touched export empty moment vectors.
func (o *AdamW) State(params []*nn.Param) (step int, m, v [][]float64) {
	m = make([][]float64, len(params))
	v = make([][]float64, len(params))
	for i, p := range params {
		if mv := o.m[p]; mv != nil {
			m[i] = append([]float64(nil), mv...)
			v[i] = append([]float64(nil), o.v[p]...)
		}
	}
	return o.step, m, v
}

// SetState restores optimizer state captured by State onto params (same
// order), validating every moment vector length against its parameter.
func (o *AdamW) SetState(params []*nn.Param, step int, m, v [][]float64) error {
	if len(m) != len(params) || len(v) != len(params) {
		return fmt.Errorf("train: optimizer state has %d/%d moment vectors, model has %d params",
			len(m), len(v), len(params))
	}
	for i, p := range params {
		if len(m[i]) == 0 && len(v[i]) == 0 {
			continue // parameter untouched when the state was captured
		}
		if len(m[i]) != len(p.W.Data) || len(v[i]) != len(p.W.Data) {
			return fmt.Errorf("train: optimizer state for %q has %d/%d values, want %d",
				p.Name, len(m[i]), len(v[i]), len(p.W.Data))
		}
	}
	o.step = step
	for i, p := range params {
		if len(m[i]) == 0 && len(v[i]) == 0 {
			delete(o.m, p)
			delete(o.v, p)
			continue
		}
		o.m[p] = append([]float64(nil), m[i]...)
		o.v[p] = append([]float64(nil), v[i]...)
	}
	return nil
}

// ClipGradNorm scales gradients so their global L2 norm is at most maxNorm.
// Returns the pre-clip norm.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}

// ZeroGrads clears all gradient accumulators.
func ZeroGrads(params []*nn.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// WarmupScale returns the linear-warmup LR multiplier for a step.
func WarmupScale(step, warmupSteps int) float64 {
	if warmupSteps <= 0 || step >= warmupSteps {
		return 1
	}
	return float64(step+1) / float64(warmupSteps)
}

// EpochStats is one row of the Figures 4–6 series.
type EpochStats struct {
	Epoch         int
	TrainLoss     float64
	ValidLoss     float64
	ValidAccuracy float64
}

// History is the full learning curve.
type History struct {
	Epochs []EpochStats
	// BestEpoch is the epoch index (0-based) with the lowest validation
	// loss — the paper's model-selection rule (§5.1: "the validation loss
	// curve converges after 7–9 epochs ... we choose the models trained up
	// to those points").
	BestEpoch int
}

// Best returns the stats of the selected epoch.
func (h History) Best() EpochStats {
	if len(h.Epochs) == 0 {
		return EpochStats{}
	}
	return h.Epochs[h.BestEpoch]
}

// String renders the curve compactly.
func (h History) String() string {
	s := ""
	for _, e := range h.Epochs {
		s += fmt.Sprintf("epoch %d: train %.4f valid %.4f acc %.3f\n",
			e.Epoch, e.TrainLoss, e.ValidLoss, e.ValidAccuracy)
	}
	return s
}

// Example is one training instance: encoded ids and a binary label.
type Example struct {
	IDs   []int
	Label bool
}

// Model is the trainable-classifier surface the trainer needs; implemented
// by core.PragFormer.
type Model interface {
	Params() []*nn.Param
	LossAndBackward(ids []int, label bool) float64
	Loss(ids []int, label bool) float64
	PredictLabel(ids []int) bool
}

// Replicable is the optional Model capability data-parallel training needs:
// a deep copy whose Params() align one-to-one with the original's (same
// order and shapes). seed reseeds any internal randomness (dropout) so
// replicas draw independent streams.
type Replicable interface {
	Model
	Replicate(seed int64) Model
}

// Config controls a training run.
type Config struct {
	Epochs    int
	BatchSize int
	LR        float64
	Warmup    int     // warmup steps
	ClipNorm  float64 // 0 disables clipping
	Seed      int64
	// Workers is the data-parallel width: each batch is sharded across this
	// many model replicas whose gradients are all-reduced into the primary
	// in fixed replica order. <=1 (or a non-Replicable model) trains
	// sequentially on the exact code path the package started with.
	Workers int
	// Snapshot, when set, is called at each epoch end so callers can keep
	// the best weights (model selection).
	Snapshot func(epoch int, stats EpochStats)
	// Progress, when set, receives one line per epoch.
	Progress func(string)
	// CheckpointPath, when set, makes Run/Resume write a crash-safe
	// internal/ckpt snapshot (weights, full AdamW state, shuffler and
	// dropout RNG streams, History, best-epoch weights) at epoch ends.
	CheckpointPath string
	// CheckpointEvery is the epoch stride between checkpoint writes
	// (default 1). The final epoch and an interrupt always checkpoint.
	CheckpointEvery int
	// RestoreBest, with CheckpointPath set, leaves the model holding the
	// best-validation-epoch weights when Run/Resume complete normally
	// (instead of the final epoch's) — the paper's model-selection rule
	// applied from the checkpointer's in-memory copy, no file re-read.
	// Interrupted runs are unaffected.
	RestoreBest bool
	// Interrupt, when non-nil, is polled at each epoch end; once it fires
	// (closed or sent to), the run writes a final checkpoint if configured
	// and returns ErrInterrupted with the partial History. The SIGINT
	// checkpoint-then-exit path of cmd/pragformer rides on this.
	Interrupt <-chan struct{}
}

// fillDefaults resolves the zero-value knobs Fit historically defaulted.
func (cfg *Config) fillDefaults() {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR == 0 {
		cfg.LR = 3e-4
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
}

// Fit trains the model, returning the learning curve. With cfg.Workers > 1
// and a Replicable model, batches are sharded across replicas; gradient
// reduction order is fixed, so a run is deterministic for a given worker
// count, and (dropout aside) agrees with the sequential run up to
// floating-point summation order.
//
// Fit is the error-free legacy surface: checkpoint I/O failures and
// interrupts (which only arise when the corresponding Config fields are
// set) are reported through Run; Fit logs them to cfg.Progress and returns
// the partial history. Callers that checkpoint should use Run/Resume.
func Fit(m Model, trainSet, validSet []Example, cfg Config) History {
	h, err := Run(m, trainSet, validSet, cfg)
	if err != nil && !errors.Is(err, ErrInterrupted) && cfg.Progress != nil {
		cfg.Progress("checkpoint error: " + err.Error())
	}
	return h
}

// runState is the mutable cross-epoch trainer state shared by the
// sequential and data-parallel loops — exactly what a checkpoint captures
// (together with weights, optimizer moments, and RNG streams).
type runState struct {
	h        History
	bestLoss float64
	step     int // optimizer/warmup step counter
	epoch    int // first epoch the loop runs (nonzero after a resume)
}

// runSequential is the Workers<=1 training loop; snap, when non-nil, is a
// validated checkpoint to resume from.
func runSequential(m Model, trainSet, validSet []Example, cfg Config, snap *ckpt.Snapshot) (History, error) {
	opt := NewAdamW(cfg.LR)
	params := m.Params()
	order := make([]int, len(trainSet))
	for i := range order {
		order[i] = i
	}
	rng := newShuffler(cfg.Seed)

	st := &runState{bestLoss: math.Inf(1)}
	ck := newCheckpointer(cfg)
	if err := restoreRun(snap, cfg, 1, params, opt, rng, order, st, ck); err != nil {
		return History{}, err
	}
	restoreRNGs(snap, []Model{m})

	for epoch := st.epoch; epoch < cfg.Epochs; epoch++ {
		rng.shuffle(order)
		totalLoss := 0.0
		ZeroGrads(params)
		inBatch := 0
		for _, idx := range order {
			ex := trainSet[idx]
			totalLoss += m.LossAndBackward(ex.IDs, ex.Label)
			inBatch++
			if inBatch == cfg.BatchSize {
				optStep(opt, params, cfg, inBatch, &st.step)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			optStep(opt, params, cfg, inBatch, &st.step)
		}

		stats := EpochStats{Epoch: epoch, TrainLoss: totalLoss / float64(max(1, len(trainSet)))}
		stats.ValidLoss, stats.ValidAccuracy = Evaluate(m, validSet)
		finishEpoch(&st.h, &st.bestLoss, cfg, stats, 1)
		if stop, err := afterEpoch(ck, cfg, st, []Model{m}, params, opt, rng, epoch); stop || err != nil {
			return st.h, err
		}
	}
	ck.restoreBest(cfg, params)
	return st.h, nil
}

// finishEpoch records one epoch's stats, applies the best-validation-loss
// model-selection rule, and fires the Snapshot/Progress callbacks. Shared by
// the sequential and data-parallel paths so the selection semantics cannot
// silently diverge between them.
func finishEpoch(h *History, bestLoss *float64, cfg Config, stats EpochStats, workers int) {
	h.Epochs = append(h.Epochs, stats)
	if stats.ValidLoss < *bestLoss {
		*bestLoss = stats.ValidLoss
		h.BestEpoch = stats.Epoch
	}
	if cfg.Snapshot != nil {
		cfg.Snapshot(stats.Epoch, stats)
	}
	if cfg.Progress != nil {
		tag := ""
		if workers > 1 {
			tag = fmt.Sprintf(" [%d workers]", workers)
		}
		cfg.Progress(fmt.Sprintf("epoch %d/%d: train %.4f valid %.4f acc %.3f%s",
			stats.Epoch+1, cfg.Epochs, stats.TrainLoss, stats.ValidLoss, stats.ValidAccuracy, tag))
	}
}

// optStep normalizes accumulated gradients by batch size, clips, and steps.
func optStep(opt *AdamW, params []*nn.Param, cfg Config, batch int, step *int) {
	inv := 1 / float64(batch)
	for _, p := range params {
		p.Grad.ScaleInPlace(inv)
	}
	if cfg.ClipNorm > 0 {
		ClipGradNorm(params, cfg.ClipNorm)
	}
	opt.Step(params, WarmupScale(*step, cfg.Warmup))
	*step++
	ZeroGrads(params)
}

// BatchPredictor is the optional batch-inference capability of a Model:
// class probabilities for a whole batch in one forward pass. Implemented by
// core.PragFormer; Evaluate and its parallel variants use it to amortize
// per-example forward overhead, falling back to Loss/PredictLabel loops for
// models without it.
type BatchPredictor interface {
	PredictBatchProbs(ids [][]int) [][2]float64
}

// evalChunk bounds how many examples one batched forward stacks, keeping
// the pooled activation matrices a bounded size on large validation sets.
const evalChunk = 64

// Evaluate computes mean loss and accuracy over a set, batch-first when the
// model supports it (bit-identical to the per-example path: same
// probabilities, same accumulation order).
func Evaluate(m Model, set []Example) (loss, acc float64) {
	if len(set) == 0 {
		return 0, 0
	}
	lossSum, correct := evalSums(m, set)
	return lossSum / float64(len(set)), float64(correct) / float64(len(set))
}

// evalSums returns the loss sum and correct count over set, the shared body
// of Evaluate and the sharded evaluators in parallel.go.
func evalSums(m Model, set []Example) (lossSum float64, correct int) {
	bp, ok := m.(BatchPredictor)
	if !ok {
		for _, ex := range set {
			lossSum += m.Loss(ex.IDs, ex.Label)
			if m.PredictLabel(ex.IDs) == ex.Label {
				correct++
			}
		}
		return lossSum, correct
	}
	ids := make([][]int, 0, evalChunk)
	for start := 0; start < len(set); start += evalChunk {
		chunk := set[start:min(start+evalChunk, len(set))]
		ids = ids[:0]
		for _, ex := range chunk {
			ids = append(ids, ex.IDs)
		}
		probs := bp.PredictBatchProbs(ids)
		for i, ex := range chunk {
			y := 0
			if ex.Label {
				y = 1
			}
			// Same arithmetic as PragFormer.Loss / PredictLabel over
			// bit-identical probabilities.
			lossSum += -math.Log(math.Max(probs[i][y], 1e-12))
			if (probs[i][1] > 0.5) == ex.Label {
				correct++
			}
		}
	}
	return lossSum, correct
}

// shuffler is a tiny deterministic Fisher-Yates source.
type shuffler struct{ state uint64 }

func newShuffler(seed int64) *shuffler {
	return &shuffler{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (s *shuffler) next() uint64 {
	s.state ^= s.state << 13
	s.state ^= s.state >> 7
	s.state ^= s.state << 17
	return s.state
}

func (s *shuffler) shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := int(s.next() % uint64(i+1))
		xs[i], xs[j] = xs[j], xs[i]
	}
}
