// Package pragformer_test holds the benchmark harness that regenerates
// every table and figure of the paper's evaluation (see DESIGN.md for the
// experiment index). Each benchmark drives the corresponding experiment
// through a shared pipeline, so models train once per `go test -bench` run;
// per-iteration numbers after the first therefore measure the experiment's
// evaluation cost. Paper-scale results are produced by
// `go run ./cmd/experiments -mode full` and recorded in EXPERIMENTS.md.
package pragformer_test

import (
	"io"
	"sync"
	"testing"

	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/experiments"
	"pragformer/internal/tokenize"
)

var (
	benchOnce sync.Once
	benchPipe *experiments.Pipeline
)

func pipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		benchPipe = experiments.NewPipeline(experiments.Config{Mode: experiments.Fast, Seed: 1})
	})
	return benchPipe
}

func runExperiment(b *testing.B, name string) {
	p := pipeline(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Run(name, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3CorpusStats regenerates Table 3 (directive statistics of
// the raw Open-OMP database).
func BenchmarkTable3CorpusStats(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4LengthHistogram regenerates Table 4 (snippet lengths).
func BenchmarkTable4LengthHistogram(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFigure3DomainDistribution regenerates Figure 3 (snippet source
// domains).
func BenchmarkFigure3DomainDistribution(b *testing.B) { runExperiment(b, "figure3") }

// BenchmarkTable5DatasetSizes regenerates Table 5 (directive and clause
// dataset split sizes).
func BenchmarkTable5DatasetSizes(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6Representations regenerates Table 6 (the four code
// representations of the fixed example snippet).
func BenchmarkTable6Representations(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkTable7VocabStats regenerates Table 7 (type-level corpus
// statistics per representation).
func BenchmarkTable7VocabStats(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkFigure4RepresentationAccuracy regenerates Figures 4–6 (training
// curves for the four code representations); the first iteration trains
// four models.
func BenchmarkFigure4RepresentationAccuracy(b *testing.B) { runExperiment(b, "figures456") }

// BenchmarkFigure5TrainLoss aliases the Figures 4–6 run (the three figures
// come from the same four training runs).
func BenchmarkFigure5TrainLoss(b *testing.B) { runExperiment(b, "figures456") }

// BenchmarkFigure6ValidLoss aliases the Figures 4–6 run.
func BenchmarkFigure6ValidLoss(b *testing.B) { runExperiment(b, "figures456") }

// BenchmarkTable8DirectiveClassification regenerates Table 8 (PragFormer vs
// BoW vs ComPar on directive need).
func BenchmarkTable8DirectiveClassification(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkFigure7ErrorByLength regenerates Figure 7 (error rate by snippet
// length).
func BenchmarkFigure7ErrorByLength(b *testing.B) { runExperiment(b, "figure7") }

// BenchmarkTable9PrivateClause regenerates Table 9 (private-clause task).
func BenchmarkTable9PrivateClause(b *testing.B) { runExperiment(b, "table9") }

// BenchmarkTable10ReductionClause regenerates Table 10 (reduction-clause
// task).
func BenchmarkTable10ReductionClause(b *testing.B) { runExperiment(b, "table10") }

// BenchmarkTable11Benchmarks regenerates Table 11 (held-out PolyBench and
// SPEC-OMP generality study).
func BenchmarkTable11Benchmarks(b *testing.B) { runExperiment(b, "table11") }

// BenchmarkTable12Figure8LIME regenerates Table 12 / Figure 8 (qualitative
// examples with LIME attributions).
func BenchmarkTable12Figure8LIME(b *testing.B) { runExperiment(b, "table12") }

// BenchmarkAblationPretraining contrasts MLM-pretrained vs random
// initialization (the DeepSCC transfer-learning claim).
func BenchmarkAblationPretraining(b *testing.B) { runExperiment(b, "ablation-pretrain") }

// BenchmarkAblationHeads contrasts 1-head vs multi-head attention.
func BenchmarkAblationHeads(b *testing.B) { runExperiment(b, "ablation-heads") }

// BenchmarkAblationSeqLen contrasts input length caps (32 vs the paper's
// 110-token budget).
func BenchmarkAblationSeqLen(b *testing.B) { runExperiment(b, "ablation-seqlen") }

// BenchmarkCorpusGeneration measures raw Open-OMP generation throughput.
func BenchmarkCorpusGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		corpus.Generate(corpus.Config{Seed: int64(i), Total: 300})
	}
}

// BenchmarkEndToEndPrediction measures single-snippet inference through the
// trained directive model — the paper's "negligible inference time" claim
// versus S2S compilation.
func BenchmarkEndToEndPrediction(b *testing.B) {
	p := pipeline(b)
	trained := p.Model(dataset.TaskDirective, tokenize.Text)
	v := p.Vocab(tokenize.Text)
	src := "for (i = 0; i < n; i++) { t = a[i] * 2.0; out[i] = t + in[i]; }"
	toks, err := tokenize.Extract(src, tokenize.Text)
	if err != nil {
		b.Fatal(err)
	}
	ids := v.Encode(toks, p.P.MaxLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trained.Model.Predict(ids)
	}
}
