package corpus

import (
	"math/rand"

	"pragformer/internal/cast"
)

// ---------------------------------------------------------------------------
// Negative templates: loops a developer would not annotate — loop-carried
// dependences, side effects, or unprofitable trip counts.
// ---------------------------------------------------------------------------

// tplRecurrence: a[i] = a[i-1] op ... — flow dependence.
func tplRecurrence(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	off := 1 + rng.Intn(2)
	var rhs cast.Expr = bin("+", aref(id(arr), bin("-", id(v), lit(off))), lit(nm.smallConst()))
	if rng.Intn(3) == 0 {
		rhs = bin("*", aref(id(arr), bin("-", id(v), lit(off))), flit(nm.floatConst()))
	}
	loop := forUp(v, lit(off), boundExpr(nm, rng, v), es(asg(aref(id(arr), id(v)), rhs)))
	return newSnippet("recurrence", loop)
}

// tplPrefixSum: running sum stored per element.
func tplPrefixSum(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	s := nm.reductionScalar()
	arrs := nm.arrays(2)
	body := block(
		es(opAsg("+=", id(s), aref(id(arrs[1]), id(v)))),
		es(asg(aref(id(arrs[0]), id(v)), id(s))),
	)
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	return newSnippet("prefixSum", loop)
}

// tplHorner: s = s * x + c[i] — non-associative recurrence.
func tplHorner(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	s := nm.scalar()
	arr := nm.array()
	x := []string{"x", "base", "r", "z"}[rng.Intn(4)]
	loop := forUp(v, lit(0), boundExpr(nm, rng, v),
		es(asg(id(s), bin("+", bin("*", id(s), id(x)), aref(id(arr), id(v))))))
	return newSnippet("horner", loop)
}

// tplIOPrint: fprintf/printf in the body (paper Table 12 example 2).
func tplIOPrint(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	var body cast.Stmt
	if rng.Intn(2) == 0 {
		body = block(
			es(call("fprintf", id("stderr"), str("%0.2lf "), aref(id(arr), id(v)))),
			&cast.If{
				Cond: bin("==", bin("%", id(v), lit(20)), lit(0)),
				Then: es(call("fprintf", id("stderr"), str(" \\n"))),
			},
		)
	} else {
		body = es(call("printf", str("%d "), aref(id(arr), id(v))))
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	return newSnippet("ioPrint", loop)
}

// tplRandFill: a[i] = rand() — ordered RNG state mutation.
func tplRandFill(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	var rhs cast.Expr = call("rand")
	if rng.Intn(2) == 0 {
		rhs = bin("%", call("rand"), lit(nm.bigConst()))
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), es(asg(aref(id(arr), id(v)), rhs)))
	return newSnippet("randFill", loop)
}

// tplAllocLoop: malloc/free inside the loop.
func tplAllocLoop(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	body := es(asg(aref(id(arr), id(v)),
		call("malloc", bin("*", id(nm.bound()), &cast.Sizeof{Type: &cast.TypeSpec{Names: []string{"double"}}}))))
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	return newSnippet("allocLoop", loop)
}

// tplTinyLoop: dependence-free but unprofitably small (the paper's RQ1
// rationale: spawn overhead outweighs the gain). The body deliberately uses
// the same construction as the profitable vecMap template, so the only
// discriminating signal is the iteration count — classifiers must learn the
// profitability judgment, not a surface artifact.
func tplTinyLoop(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	loop := forUp(v, lit(0), lit(nm.tinyConst()), mapBody(nm, rng, v))
	return newSnippet("tinyLoop", loop)
}

// tplTinyNested: small 2-D initialization, also unprofitable.
func tplTinyNested(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	vs := nm.loopVars(2)
	i, j := vs[0], vs[1]
	arr := nm.array()
	n := lit(nm.tinyConst())
	inner := forDecl(j, lit(0), n, es(asg(aref(id(arr), id(i), id(j)), lit(0))))
	loop := forUp(i, lit(0), n, inner)
	return newSnippet("tinyNested", loop)
}

// tplBreakSearch: early-exit search loop.
func tplBreakSearch(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	target := []string{"key", "needle", "target", "want"}[rng.Intn(4)]
	found := []string{"pos", "found", "where", "hit"}[rng.Intn(4)]
	body := &cast.If{
		Cond: bin("==", aref(id(arr), id(v)), id(target)),
		Then: block(es(asg(id(found), id(v))), &cast.Break{}),
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	return newSnippet("breakSearch", loop)
}

// tplScatter: a[idx[i]] = ... — potential write collisions.
func tplScatter(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arrs := nm.arrays(2)
	ind := []string{"idx", "bucket", "hash0", "bin"}[rng.Intn(4)]
	var body cast.Stmt = es(asg(aref(id(arrs[0]), aref(id(ind), id(v))), aref(id(arrs[1]), id(v))))
	if rng.Intn(2) == 0 { // histogram increment
		body = es(opAsg("+=", aref(id(arrs[0]), aref(id(ind), id(v))), lit(1)))
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	return newSnippet("scatter", loop)
}

// tplOverlapShift: a[i] = a[i+1] — anti dependence.
func tplOverlapShift(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	loop := forUp(v, lit(0), bin("-", boundExpr(nm, rng, v), lit(1)),
		es(asg(aref(id(arr), id(v)), bin("*", aref(id(arr), bin("+", id(v), lit(1))), flit(nm.floatConst())))))
	return newSnippet("overlapShift", loop)
}

// tplInPlaceStencil: a[i] = (a[i-1]+a[i+1])/2 — both directions carried.
func tplInPlaceStencil(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	rhs := bin("/", bin("+", aref(id(arr), bin("-", id(v), lit(1))), aref(id(arr), bin("+", id(v), lit(1)))), flit("2.0"))
	loop := forUp(v, lit(1), bin("-", boundExpr(nm, rng, v), lit(1)), es(asg(aref(id(arr), id(v)), rhs)))
	return newSnippet("inPlaceStencil", loop)
}

// tplImpureCall: calls a helper that mutates global state; the body is
// sometimes omitted from the code so only name cues remain (update_state,
// log_event, ...).
func tplImpureCall(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	fn := nm.impureFunc()
	arr := nm.array()
	glob := []string{"counter0", "events", "stats_n", "seen"}[rng.Intn(4)]
	helper := funcDef("void", fn, []*cast.Decl{param("int", "x", 0)},
		es(asg(id(glob), bin("+", id(glob), id("x")))))
	var body cast.Stmt = es(call(fn, aref(id(arr), id(v))))
	if rng.Intn(2) == 0 {
		body = es(call(fn, id(v)))
	}
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	s := newSnippet("impureCall", loop)
	s.withFunc(helper, rng.Intn(100) < 50)
	return s
}

// tplLoopVarMutation: the body adjusts the loop variable.
func tplLoopVarMutation(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arrs := nm.arrays(2)
	body := block(
		es(asg(aref(id(arrs[0]), id(v)), aref(id(arrs[1]), id(v)))),
		&cast.If{
			Cond: bin("<", aref(id(arrs[1]), id(v)), lit(0)),
			Then: es(opAsg("+=", id(v), lit(1))),
		},
	)
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	return newSnippet("loopVarMutation", loop)
}

// tplStrcatLoop: string accumulation, order dependent.
func tplStrcatLoop(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	buf := []string{"buf", "line", "msg", "out_str"}[rng.Intn(4)]
	arr := []string{"words", "parts", "tokens", "names"}[rng.Intn(4)]
	loop := forUp(v, lit(0), boundExpr(nm, rng, v),
		es(call("strcat", id(buf), aref(id(arr), id(v)))))
	return newSnippet("strcatLoop", loop)
}

// tplFileWrite: fwrite in a loop.
func tplFileWrite(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	loop := forUp(v, lit(0), boundExpr(nm, rng, v),
		es(call("fwrite", &cast.UnaryOp{Op: "&", X: aref(id(arr), id(v))},
			&cast.Sizeof{Type: &cast.TypeSpec{Names: []string{"double"}}}, lit(1), id("fp"))))
	return newSnippet("fileWrite", loop)
}

// tplLinkedList: pointer-chasing traversal written as a for-loop.
func tplLinkedList(rng *rand.Rand, g *genCtx) *snippet {
	p := []string{"p", "cur", "node", "it"}[rng.Intn(4)]
	cnt := []string{"count", "total", "n_seen", "len0"}[rng.Intn(4)]
	loop := &cast.For{
		Init: es(asg(id(p), id("head"))),
		Cond: id(p),
		Post: asg(id(p), &cast.Member{X: id(p), Field: "next", Arrow: true}),
		Body: es(inc(cnt)),
	}
	return newSnippet("linkedList", loop)
}

// tplAccumulateDependent: s used and rewritten non-reducibly across
// statements.
func tplAccumulateDependent(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	s := nm.scalar()
	arrs := nm.arrays(2)
	body := block(
		es(asg(aref(id(arrs[0]), id(v)), bin("+", id(s), aref(id(arrs[1]), id(v))))),
		es(asg(id(s), aref(id(arrs[0]), id(v)))),
	)
	loop := forUp(v, lit(0), boundExpr(nm, rng, v), body)
	return newSnippet("accumDependent", loop)
}

// tplTinyIO: a short loop that both is tiny and does I/O — doubly negative,
// and a source of "fprintf"/"stderr" tokens for the explainability study.
func tplTinyIO(rng *rand.Rand, g *genCtx) *snippet {
	nm := names{rng}
	v := nm.loopVar()
	arr := nm.array()
	loop := forUp(v, lit(0), lit(nm.tinyConst()),
		es(call("printf", str("%0.3f\\n"), aref(id(arr), id(v)))))
	return newSnippet("tinyIO", loop)
}
