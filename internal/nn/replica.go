package nn

import "fmt"

// Replica support for data-parallel training. A replica is a structurally
// identical copy of a model whose parameter slices pair up one-to-one with
// the primary's (same order, same names, same shapes). The trainer shards a
// batch across replicas, then reduces gradients back into the primary with
// AccumGrads and re-broadcasts updated weights with CopyWeights.

// checkAligned panics unless dst and src are the same parameter list
// shape-for-shape; misaligned replicas are a programmer error.
func checkAligned(dst, src []*Param) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: replica param count mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		if dst[i].W.Rows != src[i].W.Rows || dst[i].W.Cols != src[i].W.Cols {
			panic(fmt.Sprintf("nn: replica param %q shape mismatch %dx%d vs %dx%d",
				dst[i].Name, dst[i].W.Rows, dst[i].W.Cols, src[i].W.Rows, src[i].W.Cols))
		}
	}
}

// CopyWeights copies every weight matrix from src into dst (the broadcast
// half of an all-reduce step). Gradient accumulators are left untouched.
func CopyWeights(dst, src []*Param) {
	checkAligned(dst, src)
	for i := range dst {
		copy(dst[i].W.Data, src[i].W.Data)
	}
}

// AccumGrads adds every src gradient into the corresponding dst gradient.
// Reduction order is the slice order, which is fixed by the model's Params
// method — calling this once per replica in replica order therefore gives a
// deterministic (schedule-independent) gradient sum.
func AccumGrads(dst, src []*Param) {
	checkAligned(dst, src)
	for i := range dst {
		dst[i].Grad.AddInPlace(src[i].Grad)
	}
}
