package obs

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.Add("x", time.Now(), time.Millisecond)
	tr.Observe("y", time.Millisecond)
	tr.Start("z")()
	tr.Merge(&Wire{Spans: []WireSpan{{Name: "a"}}})
	if tr.Spans() != nil || tr.Wire() != nil || tr.Summary() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace leaked state")
	}
}

func TestTraceSpansAndSummary(t *testing.T) {
	tr := NewTrace("abc")
	end := tr.Start("route")
	end()
	tr.Observe("store.get", 2*time.Millisecond)
	tr.Observe("store.get", 3*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	sum := tr.Summary()
	if len(sum) != 2 || sum[0].Name != "route" || sum[1].Name != "store.get" {
		t.Fatalf("summary = %+v", sum)
	}
	if sum[1].Count != 2 || sum[1].Total != 5*time.Millisecond {
		t.Fatalf("store.get summary = %+v, want count 2 total 5ms", sum[1])
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("cap")
	for i := 0; i < maxSpans+10; i++ {
		tr.Observe("s", time.Microsecond)
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Fatalf("got %d spans, want cap %d", got, maxSpans)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
}

func TestWireRoundTripAndMerge(t *testing.T) {
	remote := NewTrace("remote-id")
	remote.Observe("infer", 4*time.Millisecond)
	buf, err := json.Marshal(remote.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var w Wire
	if err := json.Unmarshal(buf, &w); err != nil {
		t.Fatal(err)
	}
	local := NewTrace("local-id")
	local.Observe("forward", 6*time.Millisecond)
	local.Merge(&w)
	sum := local.Summary()
	if len(sum) != 2 || sum[0].Name != "forward" || sum[1].Name != "infer" {
		t.Fatalf("merged summary = %+v", sum)
	}
	if sum[1].Total != 4*time.Millisecond {
		t.Fatalf("merged infer total = %v, want 4ms", sum[1].Total)
	}
}

func TestMiddlewareTraceHeaderEcho(t *testing.T) {
	reg := NewRegistry()
	mw := NewMiddleware(reg, false, nil)
	var sawTrace *Trace
	h := mw.Wrap("/predict", func(w http.ResponseWriter, r *http.Request) {
		sawTrace = TraceFrom(r.Context())
		w.WriteHeader(http.StatusOK)
	})
	// Untraced request: no trace in ctx, no header echoed.
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/predict", nil))
	if sawTrace != nil || rec.Header().Get(TraceHeader) != "" {
		t.Fatal("untraced request grew a trace")
	}
	// Traced request: client ID accepted and echoed.
	req := httptest.NewRequest(http.MethodPost, "/predict", nil)
	req.Header.Set(TraceHeader, "client-id-1")
	rec = httptest.NewRecorder()
	h(rec, req)
	if sawTrace == nil || sawTrace.ID != "client-id-1" {
		t.Fatalf("trace = %+v, want ID client-id-1", sawTrace)
	}
	if got := rec.Header().Get(TraceHeader); got != "client-id-1" {
		t.Fatalf("response %s = %q, want echo", TraceHeader, got)
	}
	if RequestHistogram(reg, "/predict").Count() != 2 {
		t.Fatalf("request histogram count = %d, want 2", RequestHistogram(reg, "/predict").Count())
	}
}

func TestMiddlewareTraceAllMints(t *testing.T) {
	logBuf := &strings.Builder{}
	logger := slog.New(slog.NewTextHandler(logBuf, nil))
	mw := NewMiddleware(NewRegistry(), true, logger)
	h := mw.Wrap("/suggest", func(w http.ResponseWriter, r *http.Request) {
		TraceFrom(r.Context()).Observe("infer", time.Millisecond)
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/suggest", nil))
	if rec.Header().Get(TraceHeader) == "" {
		t.Fatal("trace-all did not mint an ID")
	}
	if !strings.Contains(logBuf.String(), "infer") {
		t.Fatalf("log line missing stage summary: %s", logBuf.String())
	}
}

func TestMiddlewareDeadline(t *testing.T) {
	reg := NewRegistry()
	mw := NewMiddleware(reg, false, nil)
	ran := false
	var hadDeadline bool
	h := mw.Wrap("/predict", func(w http.ResponseWriter, r *http.Request) {
		ran = true
		_, hadDeadline = r.Context().Deadline()
	})
	// Expired budget: shed with 504 before the handler runs.
	req := httptest.NewRequest(http.MethodPost, "/predict", nil)
	req.Header.Set(DeadlineHeader, "0")
	rec := httptest.NewRecorder()
	h(rec, req)
	if ran {
		t.Fatal("handler ran despite an expired deadline")
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}
	body, _ := io.ReadAll(rec.Result().Body)
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("body = %s", body)
	}
	if got := reg.Counter("pf_deadline_exceeded_total", "", Labels{"path": "/predict"}).Value(); got != 1 {
		t.Fatalf("deadline counter = %d, want 1", got)
	}
	// Live budget: handler sees a context deadline.
	req = httptest.NewRequest(http.MethodPost, "/predict", nil)
	req.Header.Set(DeadlineHeader, "5000")
	h(httptest.NewRecorder(), req)
	if !ran || !hadDeadline {
		t.Fatalf("ran=%v hadDeadline=%v, want handler run under a deadline", ran, hadDeadline)
	}
	// Malformed header: 400.
	req = httptest.NewRequest(http.MethodPost, "/predict", nil)
	req.Header.Set(DeadlineHeader, "soon")
	rec = httptest.NewRecorder()
	h(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed deadline status = %d, want 400", rec.Code)
	}
}

func TestSetDeadlineHeader(t *testing.T) {
	h := http.Header{}
	SetDeadlineHeader(context.Background(), h)
	if h.Get(DeadlineHeader) != "" {
		t.Fatal("header set without a context deadline")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	SetDeadlineHeader(ctx, h)
	v := h.Get(DeadlineHeader)
	if v == "" || v == "0" {
		t.Fatalf("deadline header = %q, want a positive remaining budget", v)
	}
}
