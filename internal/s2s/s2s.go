// Package s2s implements source-to-source automatic parallelization
// compilers in the mold of Cetus, AutoPar and Par4All, plus the ComPar
// multi-compiler combiner the paper evaluates against. Each personality
// shares the real dependence analysis in internal/dep but exhibits the
// pitfalls the paper documents for its namesake: fragile parsing (unknown
// keywords such as `register`, typedef'd types, struct-heavy code),
// conservative declines on unknown function bodies, explicit private(i)
// insertion, missed reduction forms, and indifference to iteration-count
// profitability and workload balance.
package s2s

import (
	"errors"
	"fmt"
	"strings"

	"pragformer/internal/cast"
	"pragformer/internal/clex"
	"pragformer/internal/cparse"
	"pragformer/internal/pragma"
)

// Result is one compiler's output for a snippet.
type Result struct {
	// Directive is the inserted OpenMP directive, or nil when the compiler
	// decided not to parallelize.
	Directive *pragma.Directive
	// Source is the annotated source text (directive line + original code).
	Source string
	// Reasons carries the compiler's explanation, for diagnostics.
	Reasons []string
}

// Compiler is a source-to-source auto-parallelizer.
type Compiler interface {
	// Name identifies the compiler personality.
	Name() string
	// Compile parses src, analyzes its first for-loop, and returns the
	// annotated result. A non-nil error models a hard compile failure
	// (the paper's "failed completely to compile" cases).
	Compile(src string) (Result, error)
}

// ErrParse marks hard parse/compile failures.
var ErrParse = errors.New("s2s: compile failed")

// stripPragmas removes existing pragma lines so compilers judge bare code.
func stripPragmas(src string) string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#pragma") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// parseSnippet parses a snippet and extracts the first loop and any function
// bodies present in the snippet text itself. The paper notes S2S compilers
// suffer from "the lack of association of functions, macros, and structure
// definitions" — they only see what is in the segment.
func parseSnippet(src string) (*cast.For, map[string]*cast.FuncDef, error) {
	f, err := cparse.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	funcs := map[string]*cast.FuncDef{}
	for _, it := range f.Items {
		if fd, ok := it.(*cast.FuncDef); ok {
			funcs[fd.Name] = fd
		}
	}
	loop := FirstLoop(f)
	if loop == nil {
		return nil, nil, fmt.Errorf("%w: no for-loop in snippet", ErrParse)
	}
	return loop, funcs, nil
}

// FirstLoop returns the snippet's target loop: the first for-loop outside
// any function definition (helper bodies may contain their own loops), or
// the first loop anywhere as a fallback.
func FirstLoop(f *cast.File) *cast.For {
	var fallback *cast.For
	for _, it := range f.Items {
		if _, isFunc := it.(*cast.FuncDef); isFunc {
			if fallback == nil {
				cast.Walk(it, func(n cast.Node) bool {
					if l, ok := n.(*cast.For); ok && fallback == nil {
						fallback = l
						return false
					}
					return true
				})
			}
			continue
		}
		var loop *cast.For
		cast.Walk(it, func(n cast.Node) bool {
			if l, ok := n.(*cast.For); ok && loop == nil {
				loop = l
				return false
			}
			return true
		})
		if loop != nil {
			return loop
		}
	}
	return fallback
}

// rejectTokens scans the raw token stream for constructs a fragile frontend
// chokes on and returns a hard error when one is found.
func rejectTokens(src string, name string, rejects map[string]bool, rejectStruct, rejectTypedefed bool) error {
	toks, err := clex.Lex(src)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrParse, name, err)
	}
	for i, t := range toks {
		switch t.Kind {
		case clex.Keyword:
			if rejects[t.Text] {
				return fmt.Errorf("%w: %s: unrecognized keyword %q", ErrParse, name, t.Text)
			}
			if rejectStruct && (t.Text == "struct" || t.Text == "union") {
				return fmt.Errorf("%w: %s: unsupported construct %q", ErrParse, name, t.Text)
			}
		case clex.Ident:
			if rejectTypedefed && nonStandardTypes[t.Text] {
				return fmt.Errorf("%w: %s: unknown type %q", ErrParse, name, t.Text)
			}
			// Unexpanded function-like macros (POLYBENCH_LOOP_BOUND(...))
			// defeat frontends that expect preprocessed input.
			if looksLikeMacro(t.Text) && i+1 < len(toks) && toks[i+1].Text == "(" {
				return fmt.Errorf("%w: %s: unexpanded macro %q", ErrParse, name, t.Text)
			}
		case clex.Punct:
			if rejectStruct && (t.Text == "->" || t.Text == ".") {
				return fmt.Errorf("%w: %s: unsupported member access", ErrParse, name)
			}
		}
	}
	return nil
}

// looksLikeMacro reports whether an identifier follows the ALL_CAPS macro
// convention (≥4 chars, no lowercase).
func looksLikeMacro(s string) bool {
	if len(s) < 4 {
		return false
	}
	hasAlpha := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			return false
		}
		if c >= 'A' && c <= 'Z' {
			hasAlpha = true
		}
	}
	return hasAlpha
}

// nonStandardTypes are typedef names that require headers the S2S frontends
// do not consume (the paper's SPEC failures: ssize_t, IndexPacket, ...).
var nonStandardTypes = map[string]bool{
	"ssize_t": true, "IndexPacket": true, "PixelPacket": true,
	"MagickBooleanType": true, "real_t": true,
}

// annotate renders the directive above the stripped source.
func annotate(d *pragma.Directive, src string) string {
	if d == nil {
		return src
	}
	return d.String() + "\n" + src
}
