// Package ckpt is the crash-safe artifact layer: an atomic file writer
// shared by every persistence path in the repo (models, vocabularies,
// checkpoints), and a versioned, CRC-guarded training snapshot format that
// lets an interrupted run resume bit-identically (see internal/train).
//
// The durability contract of WriteFileAtomic is the strongest a single
// POSIX file can give: the destination path always holds either the
// previous complete artifact or the new complete artifact, never a torn
// mix — an ENOSPC, a crash, or a SIGKILL mid-save cannot clobber the only
// copy of a model the serving layer depends on.
package ckpt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes the output of write to path atomically: the bytes
// land in a temporary file in the same directory, are fsynced, and the file
// is renamed over path only after every prior step (including Close)
// succeeded. On any failure the temporary file is removed and an existing
// file at path is left untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()           // no-op if already closed
			os.Remove(tmp.Name()) // best effort; the artifact at path is intact
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync %s: %w", path, err)
	}
	// Close errors are real write errors on some filesystems (NFS, quota
	// enforcement) — swallowing them is exactly the bug this package fixes.
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", path, err)
	}
	if err = os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("ckpt: chmod %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: rename %s: %w", path, err)
	}
	// Persist the rename itself. Directory fsync is advisory on some
	// platforms; failure here does not un-publish the rename.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
