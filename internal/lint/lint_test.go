package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return CheckFile(fset, file, file.Name.Name)
}

func TestPoolLeakFlagged(t *testing.T) {
	fs := check(t, `package nn
import "pragformer/internal/tensor"
func leaky(n int) float64 {
	v := tensor.GetVec(n)
	s := 0.0
	for _, x := range v { s += x }
	return s
}`)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "PutVec") {
		t.Fatalf("findings = %+v, want one PutVec leak", fs)
	}
}

func TestPoolBalancedIsClean(t *testing.T) {
	fs := check(t, `package nn
import "pragformer/internal/tensor"
func fine(n int) float64 {
	v := tensor.GetVec(n)
	defer tensor.PutVec(v)
	return v[0]
}`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none", fs)
	}
}

func TestPoolOwnershipTransferAllowed(t *testing.T) {
	// Returning a reference-shaped value may hand the buffer to the caller.
	fs := check(t, `package nn
import "pragformer/internal/tensor"
func handoff(n int) []float64 {
	return tensor.GetVec(n)
}`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none (ownership transferred)", fs)
	}
}

func TestPoolFieldStoreAllowed(t *testing.T) {
	fs := check(t, `package nn
import "pragformer/internal/tensor"
type cacheT struct{ buf []float64 }
func (c *cacheT) fill(n int) {
	c.buf = tensor.GetVec(n)
}`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none (stored into a field)", fs)
	}
}

func TestPoolFamiliesIndependent(t *testing.T) {
	// A PutMatrix does not excuse a missing PutVec.
	fs := check(t, `package quant
import "pragformer/internal/tensor"
func mixed(n int) {
	v := tensor.GetVec(n)
	m := tensor.GetMatrix(n, n)
	_ = v
	tensor.PutMatrix(m)
}`)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "PutVec") {
		t.Fatalf("findings = %+v, want exactly the Vec leak", fs)
	}
}

func TestDeterminismTimeNow(t *testing.T) {
	fs := check(t, `package dep
import "time"
func stamp() int64 { return time.Now().Unix() }`)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "time.Now") {
		t.Fatalf("findings = %+v, want the time.Now violation", fs)
	}
}

func TestDeterminismGlobalRand(t *testing.T) {
	fs := check(t, `package lime
import "math/rand"
func jitter() float64 { return rand.Float64() }`)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "rand.Float64") {
		t.Fatalf("findings = %+v, want the global rand violation", fs)
	}
}

func TestDeterminismSeededRandAllowed(t *testing.T) {
	fs := check(t, `package lime
import "math/rand"
func gen(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none (explicitly seeded)", fs)
	}
}

func TestDeterminismScopedToListedPackages(t *testing.T) {
	// train legitimately reads the clock for logging.
	fs := check(t, `package train
import "time"
func stamp() int64 { return time.Now().Unix() }`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none outside the deterministic set", fs)
	}
}

func TestDeterminismAliasedImport(t *testing.T) {
	fs := check(t, `package nn
import mr "math/rand"
func jitter() float64 { return mr.Float64() }`)
	if len(fs) != 1 {
		t.Fatalf("findings = %+v, want the aliased rand violation", fs)
	}
}

func TestObsImportFlaggedInKernelPkg(t *testing.T) {
	fs := check(t, `package nn
import "pragformer/internal/obs"
var reg = obs.NewRegistry()`)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "internal/obs") {
		t.Fatalf("findings = %+v, want the obs import violation", fs)
	}
}

func TestObsImportFlaggedUnderAlias(t *testing.T) {
	// Aliased and blank imports still drag the registry into the kernel.
	fs := check(t, `package tensor
import _ "pragformer/internal/obs"`)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "internal/obs") {
		t.Fatalf("findings = %+v, want the blank obs import violation", fs)
	}
}

func TestObsImportAllowedOutsideKernels(t *testing.T) {
	// The serving layer is exactly where telemetry belongs.
	fs := check(t, `package serve
import "pragformer/internal/obs"
var reg = obs.NewRegistry()`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none outside the kernel set", fs)
	}
}

func TestDeterminismShadowedIdentIgnored(t *testing.T) {
	fs := check(t, `package nn
type clock struct{}
func (clock) Now() int { return 0 }
func f() int {
	var time clock
	return time.Now()
}`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none (no time import at all)", fs)
	}
}
