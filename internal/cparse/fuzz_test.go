package cparse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pragformer/internal/cast"
)

// seedScantree feeds every fixture under examples/scantree to the fuzzer —
// real corpus shapes (nested loops, pragmas, deliberately broken headers)
// anchor the mutation space far better than hand-picked literals alone.
func seedScantree(f *testing.F) {
	dir := filepath.Join("..", "..", "examples", "scantree")
	_ = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".c") {
			return nil
		}
		if data, err := os.ReadFile(path); err == nil {
			f.Add(string(data))
		}
		return nil
	})
}

// FuzzParse checks the parser's safety net: no input may panic or hang
// either entry point, and on inputs the strict parser accepts, the
// recovering parser must agree (same items, zero recorded errors). Loops
// extracted from accepted inputs must survive a canonical print/re-parse
// round trip — the scan pipeline hashes and re-parses printed snippets, so
// a loop that prints unparseably would poison verdict dedup downstream.
func FuzzParse(f *testing.F) {
	seedScantree(f)
	for _, seed := range []string{
		"for (i = 0; i < n; i++) a[i] = b[i];",
		"void f() { for (;;) {} }",
		"int x = ;",
		"#pragma omp parallel for\nfor (i = 0; i < n; i++) s += a[i];",
		"int x = {1, {2}};",
		"a->b.c[d](e, f)++;",
		"x = (ssize_t) y;",
		"do ; while (0);",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		file, err := Parse(src)
		if err == nil && file == nil {
			t.Fatal("nil AST without error")
		}
		rec, errs := ParseRecover(src)
		if err == nil {
			if len(errs) != 0 {
				t.Errorf("Parse accepted input but ParseRecover reported %v", errs)
			}
			if len(rec.Items) != len(file.Items) {
				t.Errorf("ParseRecover found %d items, Parse found %d", len(rec.Items), len(file.Items))
			}
			for _, li := range cast.ExtractLoops(file) {
				printed := cast.Print(li.Loop)
				if _, err := ParseStmt(printed); err != nil {
					t.Errorf("canonical print does not re-parse: %v\n%s", err, printed)
				}
			}
		}
	})
}
