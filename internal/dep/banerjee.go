package dep

// Banerjee-style bounds testing: when GCD divisibility cannot refute a
// dependence, interval arithmetic over the nest's constant header bounds
// often can — and with direction constraints (source iteration equal to /
// different from sink iteration) it can additionally pin a dependence to
// distance zero at a level, turning "maybe carried" into "loop-independent".
// Symbolic bounds stay conservative: a variable without constant bounds
// contributes an unbounded term and the test declines to refute.

// rng is an inclusive integer interval accumulator.
type rng struct {
	lo, hi int64
	ok     bool
}

func emptyRng() rng { return rng{ok: true} }

// addTerm widens the interval by c*x for x in [lo, hi].
func (r rng) addTerm(c, lo, hi int64) rng {
	if !r.ok || c == 0 {
		return r
	}
	a, b := c*lo, c*hi
	if a > b {
		a, b = b, a
	}
	return rng{lo: r.lo + a, hi: r.hi + b, ok: true}
}

func (r rng) contains(x int64) bool { return r.ok && x >= r.lo && x <= r.hi }

// varBounds returns the inclusive range of values a nest variable takes,
// available only when its header bounds are integer constants.
func (ns *nestSpace) varBounds(v string) (lo, hi int64, ok bool) {
	h, okH := ns.headers[v]
	if !okH || !h.OK || !h.Lower.constOnly() || !h.Upper.constOnly() || h.Step == 0 {
		return 0, 0, false
	}
	trip := h.TripCount()
	if trip <= 0 {
		return 0, 0, false
	}
	first := h.Lower.Const
	last := first + (trip-1)*h.Step
	if first > last {
		first, last = last, first
	}
	return first, last, true
}

// reachable reports whether value x is one of the values v steps through.
func (ns *nestSpace) reachable(v string, x int64) bool {
	h, okH := ns.headers[v]
	if !okH || !h.OK || h.Step == 0 {
		return true // unknown stepping: assume reachable
	}
	lo, hi, ok := ns.varBounds(v)
	if ok && (x < lo || x > hi) {
		return false
	}
	return (x-h.Lower.Const)%h.Step == 0
}

// banerjeeRefute computes the range of Σ cr_v·u_v − Σ cw_v·t_v over the
// nest's constant bounds and reports true when delta falls outside it —
// i.e. the collision equation has no solution at all.
func (ns *nestSpace) banerjeeRefute(w, r NAffine, vars []string, delta int64) bool {
	acc := emptyRng()
	for _, v := range vars {
		lo, hi, ok := ns.varBounds(v)
		if !ok {
			return false // symbolic bounds: decline to refute
		}
		acc = acc.addTerm(r.Coefs[v].K, lo, hi)
		acc = acc.addTerm(-w.Coefs[v].K, lo, hi)
	}
	return !acc.contains(delta)
}

// weakSIV handles a single variable with differing coefficients on the two
// sides: GCD first, then Banerjee bounds, then the direction-constrained
// variant that can pin the dependence to distance zero.
func (ns *nestSpace) weakSIV(v string, cw, cr, delta int64) dimRel {
	g := gcd64(abs64(cw), abs64(cr))
	if g != 0 && delta%g != 0 {
		return dimRel{none: true}
	}

	// Weak-zero SIV: one side does not involve the variable, so collisions
	// happen only at one fixed value of the other side.
	if cw == 0 || cr == 0 {
		c, sign := cr, int64(1)
		if cr == 0 {
			c, sign = cw, -1
		}
		if c == 0 {
			return freeDim()
		}
		if (sign*delta)%c != 0 {
			return dimRel{none: true}
		}
		if !ns.reachable(v, sign*delta/c) {
			return dimRel{none: true}
		}
		return freeDim()
	}

	lo, hi, ok := ns.varBounds(v)
	if !ok {
		return freeDim()
	}
	full := emptyRng().addTerm(cr, lo, hi).addTerm(-cw, lo, hi)
	if !full.contains(delta) {
		return dimRel{none: true}
	}

	h := ns.headers[v]
	stepAbs := abs64(h.Step)
	span := hi - lo

	// Direction '=': (cr−cw)·t = delta at a single t.
	eqFeasible := false
	if d := cr - cw; d != 0 && delta%d == 0 && ns.reachable(v, delta/d) {
		eqFeasible = true
	}

	// Directions '<' and '>': u = t + e with |e| ≥ step magnitude.
	posFeasible := ns.crossFeasible(cw, cr, delta, lo, hi, stepAbs, span)
	negFeasible := ns.crossFeasible(cw, cr, delta, lo, hi, -span, -stepAbs)

	switch {
	case !posFeasible && !negFeasible && eqFeasible:
		d := freeDim()
		d.pin(v, 0)
		return d
	case !posFeasible && !negFeasible && !eqFeasible:
		return dimRel{none: true}
	}
	return freeDim()
}

// crossFeasible checks whether cr·(t+e) − cw·t = delta can hold for some
// t in [lo,hi] and e in [eLo,eHi].
func (ns *nestSpace) crossFeasible(cw, cr, delta, lo, hi, eLo, eHi int64) bool {
	if eLo > eHi {
		return false
	}
	acc := emptyRng().addTerm(cr-cw, lo, hi).addTerm(cr, eLo, eHi)
	return acc.contains(delta)
}

// banerjeePinOuter applies the direction-constrained bounds test to the
// outer variable of an MIV dimension: when a nonzero outer distance is
// infeasible within the bounds, the dependence cannot be carried by the
// outer loop even though inner levels stay unresolved.
func (ns *nestSpace) banerjeePinOuter(w, r NAffine, vars []string, delta int64) (dimRel, bool) {
	outer := ns.vars[0]
	cwo, cro := w.Coefs[outer].K, r.Coefs[outer].K
	if cwo == 0 && cro == 0 {
		return dimRel{}, false
	}
	oLo, oHi, ok := ns.varBounds(outer)
	if !ok {
		return dimRel{}, false
	}
	rest := emptyRng()
	for _, v := range vars {
		if v == outer {
			continue
		}
		lo, hi, okV := ns.varBounds(v)
		if !okV {
			return dimRel{}, false
		}
		rest = rest.addTerm(r.Coefs[v].K, lo, hi)
		rest = rest.addTerm(-w.Coefs[v].K, lo, hi)
	}
	h := ns.headers[outer]
	stepAbs := abs64(h.Step)
	span := oHi - oLo

	feasible := func(eLo, eHi int64) bool {
		if eLo > eHi {
			return false
		}
		acc := rest.addTerm(cro-cwo, oLo, oHi).addTerm(cro, eLo, eHi)
		return acc.contains(delta)
	}
	eqAcc := rest.addTerm(cro-cwo, oLo, oHi)
	eqFeasible := eqAcc.contains(delta)
	posFeasible := feasible(stepAbs, span)
	negFeasible := feasible(-span, -stepAbs)

	switch {
	case !posFeasible && !negFeasible && eqFeasible:
		d := freeDim()
		d.pin(outer, 0)
		return d, true
	case !posFeasible && !negFeasible && !eqFeasible:
		return dimRel{none: true}, true
	}
	return dimRel{}, false
}
