package scan

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pragformer/internal/advisor"
	"pragformer/internal/core"
	"pragformer/internal/cparse"
	"pragformer/internal/lime"
	"pragformer/internal/pragma"
	"pragformer/internal/tokenize"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureTree is the shared scan fixture: seven C files (one deliberately
// broken, one pre-annotated, one duplicating a loop from another file, one
// carrying a dependence the model still likes — the PF1003 case).
const fixtureTree = "../../examples/scantree"

// stubSuggester is a deterministic model stand-in: a loop is
// "parallelizable" iff its snippet contains a compound assignment, and a
// compound update that reads the previous element ("i - 1") is flagged as
// a model-vs-analysis disagreement with witness and attribution evidence.
// It counts calls so cache tests can assert zero model forwards.
type stubSuggester struct {
	mu     sync.Mutex
	calls  int
	items  int
	cancel context.CancelFunc // when set, invoked on first call
	fail   bool               // when set, every batch errors
}

func (s *stubSuggester) SuggestBatch(codes []string) ([]advisor.BatchItem, error) {
	s.mu.Lock()
	s.calls++
	s.items += len(codes)
	cancel := s.cancel
	s.cancel = nil
	fail := s.fail
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if fail {
		return nil, errors.New("stub: inference unavailable")
	}
	out := make([]advisor.BatchItem, len(codes))
	for i, code := range codes {
		sg := &advisor.Suggestion{Probability: 0.25}
		if strings.Contains(code, "+=") {
			sg.Parallelize = true
			sg.Probability = 0.75
			sg.Directive = &pragma.Directive{ParallelFor: true}
			sg.Notes = []string{"stub verdict"}
			if strings.Contains(code, "i - 1") {
				sg.Corroboration = advisor.Corroboration{
					Tier: advisor.TierDisagree, DepRan: true,
					DepWitness: []string{"stub: carried dependence"},
				}
				sg.Attributions = []lime.Attribution{{Index: 0, Token: "for", Weight: 0.5}}
			} else {
				sg.Corroboration = advisor.Corroboration{
					Tier: advisor.TierAnalysisAgrees, DepRan: true, DepAgrees: true,
				}
			}
		}
		out[i] = advisor.BatchItem{Suggestion: sg}
	}
	return out, nil
}

func (s *stubSuggester) counts() (calls, items int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls, s.items
}

func scanFixture(t *testing.T, cfg Config, sg advisor.Suggester) *Report {
	t.Helper()
	rep, err := Dir(context.Background(), fixtureTree, cfg, sg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestScanDirGolden(t *testing.T) {
	rep := scanFixture(t, Config{Workers: 4, BatchSize: 3}, &stubSuggester{})
	got, err := rep.Stable().JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_stub.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/scan -run TestScanDirGolden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stable report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestScanCountersAndDedupe(t *testing.T) {
	rep := scanFixture(t, Config{Workers: 4}, &stubSuggester{})
	c := rep.Counters
	if c.Files != 11 || c.Skipped != 1 {
		t.Errorf("files/skipped = %d/%d, want 11/1 (partial.c parses partially, it is not skipped)", c.Files, c.Skipped)
	}
	if c.Loops != 17 || c.Unique != 16 {
		t.Errorf("loops/unique = %d/%d, want 17/16", c.Loops, c.Unique)
	}
	if c.Annotated != 1 {
		t.Errorf("annotated = %d, want 1", c.Annotated)
	}
	if c.Disagreements != 1 {
		t.Errorf("disagreements = %d, want 1 (the recur.c carried-dep loop)", c.Disagreements)
	}
	// The scale loop appears in stencil.c and nested/kernel.c; the verdict
	// must be shared across one deduped entry.
	var shared *Loop
	for i := range rep.Loops {
		if len(rep.Loops[i].Occurrences) == 2 {
			if shared != nil {
				t.Fatal("more than one deduped loop in fixture")
			}
			shared = &rep.Loops[i]
		}
	}
	if shared == nil {
		t.Fatal("duplicate scale loop was not deduped")
	}
	files := []string{shared.Occurrences[0].File, shared.Occurrences[1].File}
	if files[0] != "nested/kernel.c" || files[1] != "stencil.c" {
		t.Errorf("dedupe occurrences = %v", files)
	}
	if shared.Suggestion == nil {
		t.Error("deduped loop missing shared verdict")
	}
	// Inference ran once per advisable unique loop: 16 unique minus the
	// annotated axpy loop.
	if c.Inferred != 15 {
		t.Errorf("inferred = %d, want 15", c.Inferred)
	}
}

func TestScanSkipHasPosition(t *testing.T) {
	rep := scanFixture(t, Config{}, &stubSuggester{})
	// broken.c is skipped wholesale; partial.c contributes a positioned
	// skip for its malformed function while its healthy loop still scans.
	if len(rep.Skips) != 2 {
		t.Fatalf("skips = %+v", rep.Skips)
	}
	broken, partial := rep.Skips[0], rep.Skips[1]
	if broken.File != "broken.c" || partial.File != "partial.c" {
		t.Fatalf("skip files = %q, %q", broken.File, partial.File)
	}
	if broken.Line != 6 || broken.Col == 0 {
		t.Errorf("broken.c skip position = %d:%d, want line 6 (the malformed for-header)", broken.Line, broken.Col)
	}
	if partial.Line != 8 || partial.Col == 0 {
		t.Errorf("partial.c skip position = %d:%d, want line 8 (the missing operand)", partial.Line, partial.Col)
	}
	for _, skip := range rep.Skips {
		if skip.Reason == "" {
			t.Error("skip has no reason")
		}
	}
	scanned := false
	for _, l := range rep.Loops {
		for _, occ := range l.Occurrences {
			if occ.File == "partial.c" && occ.Function == "ok" {
				scanned = true
			}
		}
	}
	if !scanned {
		t.Error("partial.c's healthy loop was lost to the broken sibling")
	}
}

func TestScanProvenance(t *testing.T) {
	rep := scanFixture(t, Config{}, &stubSuggester{})
	byFile := map[string][]Occurrence{}
	for _, l := range rep.Loops {
		for _, occ := range l.Occurrences {
			byFile[occ.File] = append(byFile[occ.File], occ)
		}
	}
	ks := byFile["nested/kernel.c"]
	if len(ks) != 4 {
		t.Fatalf("kernel.c occurrences = %d, want 4", len(ks))
	}
	var matmulDepths []int
	for _, occ := range ks {
		if occ.Function == "matmul" {
			matmulDepths = append(matmulDepths, occ.Depth)
		}
	}
	if len(matmulDepths) != 3 {
		t.Fatalf("matmul loops = %d, want 3", len(matmulDepths))
	}
	for _, occ := range byFile["reduce.c"] {
		if occ.Function != "total" || occ.Line != 6 {
			t.Errorf("reduce.c occurrence = %+v, want function total line 6", occ)
		}
	}
	for _, occ := range byFile["annotated.c"] {
		if occ.Pragma == "" {
			t.Error("annotated.c occurrence lost its pragma")
		}
	}
}

func TestScanCacheIncremental(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "scan.cache")
	cfg := Config{Workers: 4, CachePath: cachePath, Backend: "stub"}

	cold := &stubSuggester{}
	repCold := scanFixture(t, cfg, cold)
	coldCalls, _ := cold.counts()
	if coldCalls == 0 {
		t.Fatal("cold scan never reached the suggester")
	}
	if repCold.Counters.CacheHits != 0 {
		t.Errorf("cold cache hits = %d", repCold.Counters.CacheHits)
	}

	warm := &stubSuggester{}
	repWarm := scanFixture(t, cfg, warm)
	if calls, items := warm.counts(); calls != 0 || items != 0 {
		t.Errorf("warm re-scan performed %d model calls (%d items), want 0", calls, items)
	}
	if repWarm.Counters.Inferred != 0 {
		t.Errorf("warm inferred = %d, want 0", repWarm.Counters.Inferred)
	}
	if repWarm.Counters.CacheHits != repCold.Counters.Inferred {
		t.Errorf("warm cache hits = %d, want %d", repWarm.Counters.CacheHits, repCold.Counters.Inferred)
	}

	coldJSON, _ := repCold.Stable().JSON()
	warmJSON, _ := repWarm.Stable().JSON()
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Error("warm re-scan stable report differs from cold scan")
	}

	// A different backend must not replay the cache.
	other := &stubSuggester{}
	otherCfg := cfg
	otherCfg.Backend = "other"
	scanFixture(t, otherCfg, other)
	if calls, _ := other.counts(); calls == 0 {
		t.Error("backend mismatch replayed the cache")
	}
}

// TestScanCacheModelMismatch pins the cache-identity rule: verdicts cached
// under one model fingerprint must never answer a scan with another.
func TestScanCacheModelMismatch(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "scan.cache")
	cfgA := Config{CachePath: cachePath, Backend: "stub", ModelID: "model-a"}
	scanFixture(t, cfgA, &stubSuggester{})

	sameModel := &stubSuggester{}
	scanFixture(t, cfgA, sameModel)
	if calls, _ := sameModel.counts(); calls != 0 {
		t.Errorf("same model re-scan made %d model calls, want 0", calls)
	}

	cfgB := cfgA
	cfgB.ModelID = "model-b"
	otherModel := &stubSuggester{}
	rep := scanFixture(t, cfgB, otherModel)
	if calls, _ := otherModel.counts(); calls == 0 {
		t.Error("model fingerprint mismatch replayed the cache")
	}
	if rep.Counters.CacheHits != 0 {
		t.Errorf("cache hits across models = %d", rep.Counters.CacheHits)
	}
}

// TestScanAnnotatedCacheDoesNotLeak: a cache written by an
// -include-annotated scan must not put suggestions on annotated loops in
// a later scan without the flag — warm and cold reports stay identical.
func TestScanAnnotatedCacheDoesNotLeak(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "scan.cache")
	inclCfg := Config{CachePath: cachePath, Backend: "stub", IncludeAnnotated: true}
	inclRep := scanFixture(t, inclCfg, &stubSuggester{})
	if inclRep.Counters.Annotated != 0 || inclRep.Counters.Inferred != 16 {
		t.Fatalf("include-annotated counters = %+v", inclRep.Counters)
	}

	plainCfg := Config{CachePath: cachePath, Backend: "stub"}
	warm := scanFixture(t, plainCfg, &stubSuggester{})
	cold := scanFixture(t, Config{}, &stubSuggester{})
	a, _ := warm.Stable().JSON()
	b, _ := cold.Stable().JSON()
	if !bytes.Equal(a, b) {
		t.Errorf("annotated verdict leaked from include-annotated cache:\n--- warm ---\n%s\n--- cold ---\n%s", a, b)
	}
	if warm.Counters.Annotated != 1 {
		t.Errorf("annotated = %d, want 1", warm.Counters.Annotated)
	}
}

func TestScanCorruptCacheIsCold(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "scan.cache")
	if err := os.WriteFile(cachePath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	sg := &stubSuggester{}
	rep, err := Dir(context.Background(), fixtureTree, Config{CachePath: cachePath}, sg)
	if err != nil {
		t.Fatal(err)
	}
	if calls, _ := sg.counts(); calls == 0 {
		t.Error("corrupt cache should scan cold")
	}
	if rep.Counters.CacheHits != 0 {
		t.Errorf("cache hits from corrupt cache = %d", rep.Counters.CacheHits)
	}
}

func TestScanCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sg := &stubSuggester{cancel: cancel}
	rep, err := Dir(ctx, fixtureTree, Config{Workers: 4, BatchSize: 1}, sg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Error("canceled scan returned a report")
	}
}

func TestScanCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Dir(ctx, fixtureTree, Config{}, &stubSuggester{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScanSuggesterErrorIsPerLoop(t *testing.T) {
	rep := scanFixture(t, Config{}, &stubSuggester{fail: true})
	advised := 0
	for _, l := range rep.Loops {
		if l.Annotated {
			continue
		}
		advised++
		if l.Error == "" {
			t.Errorf("loop %s missing error", l.Hash[:8])
		}
		if l.Suggestion != nil {
			t.Errorf("loop %s has suggestion despite error", l.Hash[:8])
		}
	}
	if advised == 0 {
		t.Fatal("no advised loops")
	}
}

func TestScanErroredLoopsAreNotCached(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "scan.cache")
	cfg := Config{CachePath: cachePath}
	scanFixture(t, cfg, &stubSuggester{fail: true})
	retry := &stubSuggester{}
	scanFixture(t, cfg, retry)
	if calls, _ := retry.counts(); calls == 0 {
		t.Error("errored loops were cached; retry scan never hit the model")
	}
}

func TestScanFilesInMemory(t *testing.T) {
	files := []Source{
		{Path: "a.c", Data: []byte("void f(double *x, int n) {\n    int i;\n    for (i = 0; i < n; i++) x[i] += 1.0;\n}\n")},
		{Path: "b.c", Data: []byte("int broken(\n")},
	}
	rep, err := Files(context.Background(), files, Config{}, &stubSuggester{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters.Files != 1 || rep.Counters.Skipped != 1 || rep.Counters.Unique != 1 {
		t.Fatalf("counters = %+v", rep.Counters)
	}
	l := rep.Loops[0]
	if l.Occurrences[0].File != "a.c" || l.Occurrences[0].Line != 3 || l.Occurrences[0].Function != "f" {
		t.Errorf("occurrence = %+v", l.Occurrences[0])
	}
	if l.Suggestion == nil || !l.Suggestion.Parallelize {
		t.Errorf("suggestion = %+v", l.Suggestion)
	}
}

// TestScanMatchesDirectAdvisor ties the pipeline to the real advisor: a
// scan over the fixture tree with an (untrained) Models bundle must carry
// exactly the probabilities advisor.SuggestBatch reports for the same
// snippets.
func TestScanMatchesDirectAdvisor(t *testing.T) {
	v := tokenize.BuildVocab([][]string{{
		"for", "(", ";", ")", "{", "}", "[", "]", "=", "+", "*", "<",
		"i", "j", "k", "n", "a", "b", "c", "x", "sum", "0", "1", "2.0", "+=", "++",
	}}, 1)
	m, err := core.New(core.Config{Vocab: v.Size() + 16, MaxLen: 64, D: 16, Heads: 2, Layers: 1}, 11)
	if err != nil {
		t.Fatal(err)
	}
	models := &advisor.Models{Directive: m, Vocab: v, MaxLen: 64, NoCorroborate: true}

	rep := scanFixture(t, Config{Workers: 4, BatchSize: 2}, models)
	for _, l := range rep.Loops {
		if l.Annotated {
			continue
		}
		if l.Error != "" {
			t.Fatalf("loop %s: %s", l.Hash[:8], l.Error)
		}
		items, err := models.SuggestBatch([]string{l.Snippet})
		if err != nil {
			t.Fatal(err)
		}
		want := items[0].Suggestion
		if l.Suggestion.Probability != want.Probability || l.Suggestion.Parallelize != want.Parallelize {
			t.Errorf("loop %s: scan %v/%v != direct %v/%v", l.Hash[:8],
				l.Suggestion.Parallelize, l.Suggestion.Probability, want.Parallelize, want.Probability)
		}
	}
}

// TestScanWorkersParallel exercises the pipeline with a high worker count;
// the CI -race run makes this the scanner's data-race gate.
func TestScanWorkersParallel(t *testing.T) {
	base := scanFixture(t, Config{Workers: 1}, &stubSuggester{})
	wide := scanFixture(t, Config{Workers: 8, BatchSize: 2}, &stubSuggester{})
	a, _ := base.Stable().JSON()
	b, _ := wide.Stable().JSON()
	if !bytes.Equal(a, b) {
		t.Error("report depends on worker count")
	}
}

// TestScanCacheVersionMismatch: v1 cache entries predate the tier/witness/
// attribution evidence, so replaying them would make warm scans diverge
// from cold — an old-layout cache file must be discarded, not replayed.
func TestScanCacheVersionMismatch(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "scan.cache")
	cfg := Config{CachePath: cachePath, Backend: "stub"}
	scanFixture(t, cfg, &stubSuggester{})

	// Rewrite the valid cache as a v1 file, keeping its entries.
	data, err := os.ReadFile(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	var cf map[string]any
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatal(err)
	}
	if int(cf["version"].(float64)) != cacheVersion {
		t.Fatalf("cache version = %v, want %d", cf["version"], cacheVersion)
	}
	cf["version"] = 1
	if data, err = json.Marshal(cf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cachePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	sg := &stubSuggester{}
	rep := scanFixture(t, cfg, sg)
	if calls, _ := sg.counts(); calls == 0 {
		t.Error("v1 cache was replayed; scan should run cold")
	}
	if rep.Counters.CacheHits != 0 {
		t.Errorf("cache hits from v1 cache = %d, want 0", rep.Counters.CacheHits)
	}
}

// TestScanParsesOncePerFile is the no-reparse gate: the scanner threads
// each loop's parsed AST into the advisor, so a whole scan performs
// exactly one cparse.Parse per input file — corroboration must not parse
// snippets a second time.
func TestScanParsesOncePerFile(t *testing.T) {
	v := tokenize.BuildVocab([][]string{{"for", "(", ";", ")", "i", "n", "s", "=", "+="}}, 1)
	m, err := core.New(core.Config{Vocab: v.Size() + 16, MaxLen: 64, D: 16, Heads: 2, Layers: 1}, 11)
	if err != nil {
		t.Fatal(err)
	}
	models := &advisor.Models{Directive: m, Vocab: v, MaxLen: 64, NoCorroborate: true}

	before := cparse.Parses()
	rep := scanFixture(t, Config{Workers: 4, BatchSize: 2}, models)
	parses := cparse.Parses() - before
	// Every file is parsed exactly once, including the broken one (its
	// parse fails but still counts as a call).
	want := int64(rep.Counters.Files + rep.Counters.Skipped)
	if parses != want {
		t.Errorf("scan performed %d parses for %d files — corroboration re-parsed snippets", parses, want)
	}
}

// TestScanDisagreementEvidence checks the evidence flow end to end at the
// scan layer: the disagreeing loop carries tier, witness and attributions
// in the JSON report, and Stable() keeps the tokens but zeroes the weights.
func TestScanDisagreementEvidence(t *testing.T) {
	rep := scanFixture(t, Config{}, &stubSuggester{})
	var disagree *Loop
	for i := range rep.Loops {
		if s := rep.Loops[i].Suggestion; s != nil && s.Tier == "disagree" {
			if disagree != nil {
				t.Fatal("more than one disagreement in stub fixture scan")
			}
			disagree = &rep.Loops[i]
		}
	}
	if disagree == nil {
		t.Fatal("no disagreement in fixture scan")
	}
	if disagree.Occurrences[0].File != "recur.c" {
		t.Errorf("disagreement at %+v, want recur.c", disagree.Occurrences[0])
	}
	s := disagree.Suggestion
	if len(s.Witness) == 0 || len(s.Attributions) == 0 {
		t.Fatalf("disagreement missing evidence: %+v", s)
	}
	if s.Attributions[0].Weight == 0 {
		t.Error("report attributions lost their weights")
	}
	stable := rep.Stable()
	for _, l := range stable.Loops {
		if l.Suggestion == nil {
			continue
		}
		for _, a := range l.Suggestion.Attributions {
			if a.Weight != 0 {
				t.Errorf("stable report keeps attribution weight %v", a.Weight)
			}
			if a.Token == "" {
				t.Error("stable report lost attribution tokens")
			}
		}
	}
}
