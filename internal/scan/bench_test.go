package scan

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pragformer/internal/advisor"
	"pragformer/internal/core"
	"pragformer/internal/tokenize"
)

// benchTree writes a synthetic source tree: files of elementwise, reduction
// and nested kernels with per-file unique identifiers, so dedupe work is
// realistic (some shared loops, mostly distinct).
func benchTree(tb testing.TB, files int) string {
	tb.Helper()
	root := tb.TempDir()
	for f := 0; f < files; f++ {
		src := fmt.Sprintf(`void kernel%[1]d(double *a, double *b, int n) {
    int i, j;
    for (i = 0; i < n; i++) {
        a[i] = b[i] * %[1]d.0 + a[i];
    }
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            a[i * n + j] += b[j] * c%[1]d[i];
        }
    }
}
double sum%[1]d(double *v, int n) {
    int i;
    double s = 0.0;
    for (i = 0; i < n; i++) {
        s += v[i];
    }
    return s;
}
void shared_scale(double *x, int n) {
    int i;
    for (i = 0; i < n; i++) {
        x[i] = x[i] * 2.0;
    }
}
`, f)
		dir := root
		if f%4 == 0 {
			dir = filepath.Join(root, fmt.Sprintf("sub%d", f/4))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				tb.Fatal(err)
			}
		}
		path := filepath.Join(dir, fmt.Sprintf("kernel%d.c", f))
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			tb.Fatal(err)
		}
	}
	return root
}

func benchModels(tb testing.TB) *advisor.Models {
	tb.Helper()
	v := tokenize.BuildVocab([][]string{{
		"for", "(", ";", ")", "{", "}", "[", "]", "=", "+", "*", "+=", "++", "<",
		"i", "j", "n", "a", "b", "c", "v", "s", "x", "0", "0.0", "2.0",
	}}, 1)
	m, err := core.New(core.Config{Vocab: v.Size() + 64, MaxLen: 64, D: 32, Heads: 4, Layers: 1}, 7)
	if err != nil {
		tb.Fatal(err)
	}
	// NoCorroborate+NoExplain: the bench measures the scan pipeline
	// (walk/parse/dedupe/batch inference), not the evidence passes — an
	// untrained model's arbitrary disagreements would otherwise swamp the
	// metric with LIME perturbation forwards.
	return &advisor.Models{Directive: m, Vocab: v, MaxLen: 64, NoCorroborate: true, NoExplain: true}
}

// BenchmarkScanThroughput measures the full pipeline — walk, parse,
// extract, dedupe, batched inference — over a 32-file synthetic tree with
// a real (untrained) directive classifier. Reported loops/s is the
// end-to-end scan rate; see BENCH_SCAN.json for the recorded snapshot.
func BenchmarkScanThroughput(b *testing.B) {
	root := benchTree(b, 32)
	models := benchModels(b)
	cfg := Config{Workers: 4, BatchSize: 16}
	b.ReportAllocs()
	b.ResetTimer()
	var loops int
	for i := 0; i < b.N; i++ {
		rep, err := Dir(context.Background(), root, cfg, models)
		if err != nil {
			b.Fatal(err)
		}
		loops = rep.Counters.Loops
	}
	b.ReportMetric(float64(loops)*float64(b.N)/b.Elapsed().Seconds(), "loops/s")
}

// BenchmarkScanWarmCache is the incremental path: every loop answered from
// the persistent hash cache, zero model forwards.
func BenchmarkScanWarmCache(b *testing.B) {
	root := benchTree(b, 32)
	models := benchModels(b)
	cfg := Config{Workers: 4, BatchSize: 16, CachePath: filepath.Join(b.TempDir(), "scan.cache")}
	if _, err := Dir(context.Background(), root, cfg, models); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Dir(context.Background(), root, cfg, models)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Counters.Inferred != 0 {
			b.Fatalf("warm scan inferred %d", rep.Counters.Inferred)
		}
	}
}
