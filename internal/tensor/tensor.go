// Package tensor provides the dense float64 matrix kernels behind the
// transformer implementation: allocation, seeded random init, (parallel)
// matrix products in the three orientations backpropagation needs, row-wise
// softmax, and elementwise helpers. Parallel loops split rows across
// GOMAXPROCS workers with disjoint output ranges, so results are exactly
// deterministic regardless of scheduling.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (len rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Randn fills the matrix with N(0, std²) samples from rng.
func (m *Matrix) Randn(rng *rand.Rand, std float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// AddInPlace adds b elementwise.
func (m *Matrix) AddInPlace(b *Matrix) {
	checkSame(m, b)
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies all elements by c.
func (m *Matrix) ScaleInPlace(c float64) {
	for i := range m.Data {
		m.Data[i] *= c
	}
}

func checkSame(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// parallelThreshold is the minimum row*col product before MatMul fans out
// to goroutines; below it, the scheduling overhead dominates.
const parallelThreshold = 64 * 64

// ParallelFor runs fn over [0, n) split into contiguous chunks across
// GOMAXPROCS goroutines. Chunks are disjoint, so writes to per-index state
// race-free and the result is schedule-independent.
func ParallelFor(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < 2 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes out = a·b, allocating out. a is m×k, b is k×n.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b into a preallocated out.
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMulInto shape mismatch")
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			for x := range orow {
				orow[x] = 0
			}
			arow := a.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if a.Rows*b.Cols >= parallelThreshold {
		ParallelFor(a.Rows, body)
	} else {
		body(0, a.Rows)
	}
}

// MatMulAT computes out = aᵀ·b. a is k×m, b is k×n, out m×n.
func MatMulAT(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulAT outer dims %d vs %d", a.Rows, b.Rows))
	}
	out := New(a.Cols, b.Cols)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			for k := 0; k < a.Rows; k++ {
				av := a.At(k, i)
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if out.Rows*out.Cols >= parallelThreshold {
		ParallelFor(out.Rows, body)
	} else {
		body(0, out.Rows)
	}
	return out
}

// MatMulBT computes out = a·bᵀ. a is m×k, b is n×k, out m×n.
func MatMulBT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBT inner dims %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				s := 0.0
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	}
	if a.Rows*b.Rows >= parallelThreshold {
		ParallelFor(a.Rows, body)
	} else {
		body(0, a.Rows)
	}
	return out
}

// RowSoftmax applies softmax to each row in place, numerically stabilized.
// Degenerate rows (all -Inf) become all-zero rather than NaN.
func RowSoftmax(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		if math.IsInf(maxv, -1) {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			row[j] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// SoftmaxVec computes softmax of a vector, returning a new slice.
func SoftmaxVec(v []float64) []float64 {
	out := make([]float64, len(v))
	maxv := math.Inf(-1)
	for _, x := range v {
		if x > maxv {
			maxv = x
		}
	}
	sum := 0.0
	for i, x := range v {
		e := math.Exp(x - maxv)
		out[i] = e
		sum += e
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x over vectors.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of the matrix elements.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
