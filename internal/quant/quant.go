// Package quant is the int8 quantized inference backend: a post-training,
// per-channel symmetric quantization of PragFormer's linear and attention
// weight matrices, a batch-first forward stack structurally identical to
// the float64 one in nn/infer.go (so parity tests can diff the two layer by
// layer), and a framed PFQNT artifact format for persisting quantized
// bundles (artifact.go).
//
// Scheme: each weight matrix is stored transposed (one output channel per
// row) with one float32 scale per channel, scale_c = max_k |W[k][c]| / 127,
// computed once at quantize time. Activations are quantized dynamically per
// row with the same absmax scheme at inference time, the matmul accumulates
// int8×int8 products in int32, and the result is dequantized through the
// float32 scale product (tensor.MatMulInt8BTInto). Everything that is not a
// weight matmul — embeddings, layer norms, residuals, attention
// score/softmax/value mixing, biases — stays in float64, exactly as the
// float path computes it.
//
// The quantized model is inference-only and safe for concurrent use: the
// forward passes only read the weights, so the serving layer shares one
// model across replica workers instead of deep-copying it.
package quant

import (
	"fmt"
	"math"

	"pragformer/internal/nn"
	"pragformer/internal/tensor"
)

// Config mirrors the architecture knobs inference needs from core.Config.
// (The quantizer in core copies them over; quant cannot import core, which
// imports quant.)
type Config struct {
	Vocab    int
	MaxLen   int
	D        int
	Heads    int
	Layers   int
	FFHidden int
	FCHidden int
}

// validate rejects configs no artifact or quantizer should ever produce.
func (c Config) validate() error {
	if c.Vocab <= 0 || c.MaxLen <= 0 || c.D <= 0 || c.Heads <= 0 ||
		c.Layers <= 0 || c.FFHidden <= 0 || c.FCHidden <= 0 {
		return fmt.Errorf("quant: invalid config %+v", c)
	}
	if c.D%c.Heads != 0 {
		return fmt.Errorf("quant: D %d not divisible by heads %d", c.D, c.Heads)
	}
	return nil
}

// Linear is a quantized y = x·W + b layer: the weight is int8 per output
// channel (stored transposed, channel rows), the bias stays float64.
type Linear struct {
	Wq *tensor.Int8Matrix // out×in, per-channel scales
	B  []float64          // out
}

// QuantizeLinear converts a float linear layer: per-channel symmetric
// absmax scales over each output channel (a column of the in×out weight),
// values rounded to the nearest int8 step. An all-zero channel gets scale 1.
func QuantizeLinear(l *nn.Linear) *Linear {
	w := l.W.W // in×out
	in, out := w.Rows, w.Cols
	q := &Linear{
		Wq: tensor.NewInt8(out, in),
		B:  append([]float64(nil), l.B.W.Row(0)...),
	}
	for c := 0; c < out; c++ {
		amax := 0.0
		for k := 0; k < in; k++ {
			if a := math.Abs(w.At(k, c)); a > amax {
				amax = a
			}
		}
		qrow := q.Wq.Row(c)
		if amax == 0 {
			q.Wq.Scales[c] = 1
			continue // NewInt8 zeroed the row
		}
		scale := amax / 127
		q.Wq.Scales[c] = float32(scale)
		inv := 1 / scale
		for k := 0; k < in; k++ {
			qrow[k] = int8(math.Round(w.At(k, c) * inv))
		}
	}
	return q
}

// Dequantize reconstructs the float weight matrix (in×out) the quantized
// layer represents — the reference the parity tests diff against.
func (l *Linear) Dequantize() *tensor.Matrix {
	out, in := l.Wq.Rows, l.Wq.Cols
	w := tensor.New(in, out)
	for c := 0; c < out; c++ {
		s := float64(l.Wq.Scales[c])
		qrow := l.Wq.Row(c)
		for k := 0; k < in; k++ {
			w.Set(k, c, float64(qrow[k])*s)
		}
	}
	return w
}

// ApplyInto mirrors nn.Linear.ApplyInto: dst = x·W + b, with x dynamically
// quantized per row. The bias add rides in the kernel's fused epilogue
// (tensor.MatMulInt8BTFusedInto) instead of a separate output sweep. dst
// must not alias x; it is fully assigned.
func (l *Linear) ApplyInto(dst, x *tensor.Matrix) {
	xq := tensor.GetInt8Matrix(x.Rows, x.Cols)
	tensor.QuantizeRowsInto(xq, x)
	l.ApplyQuantizedInto(dst, xq)
	tensor.PutInt8Matrix(xq)
}

// ApplyReLUInto is ApplyInto with the ReLU activation also folded into the
// kernel epilogue — the quantized FFN/classifier hidden-layer fast path,
// value-identical to ApplyInto followed by nn.ReLUInPlace.
func (l *Linear) ApplyReLUInto(dst, x *tensor.Matrix) {
	xq := tensor.GetInt8Matrix(x.Rows, x.Cols)
	tensor.QuantizeRowsInto(xq, x)
	tensor.MatMulInt8BTFusedInto(dst, xq, l.Wq, l.B, true)
	tensor.PutInt8Matrix(xq)
}

// ApplyQuantizedInto runs the int8 kernel over an already-quantized input.
// Attention quantizes its input once and shares it across the Q/K/V
// projections — three matmuls for one quantization pass.
func (l *Linear) ApplyQuantizedInto(dst *tensor.Matrix, xq *tensor.Int8Matrix) {
	tensor.MatMulInt8BTFusedInto(dst, xq, l.Wq, l.B, false)
}

// LayerNorm carries the float layer-norm parameters; its arithmetic is the
// float path's exactly (quantization never touches normalization).
type LayerNorm struct {
	Gamma, Beta []float64
	Eps         float64
}

// FromLayerNorm copies a float layer norm.
func FromLayerNorm(ln *nn.LayerNorm) *LayerNorm {
	return &LayerNorm{
		Gamma: append([]float64(nil), ln.Gamma.W.Row(0)...),
		Beta:  append([]float64(nil), ln.Beta.W.Row(0)...),
		Eps:   ln.Eps,
	}
}

// ApplyInto normalizes x row-wise into dst, mirroring
// nn.LayerNorm.ApplyInto bit for bit. dst may alias x.
func (ln *LayerNorm) ApplyInto(dst, x *tensor.Matrix) {
	d := x.Cols
	gamma, beta := ln.Gamma[:d], ln.Beta[:d]
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)[:d]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(d)
		vr := 0.0
		for _, v := range row {
			dv := v - mean
			vr += dv * dv
		}
		vr /= float64(d)
		inv := 1 / math.Sqrt(vr+ln.Eps)
		tensor.NormScaleInto(dst.Row(i)[:d], row, mean, inv, gamma, beta)
	}
}

// Attention is the quantized multi-head self-attention: projections run
// through int8 linears, score/softmax/value mixing stays float64.
type Attention struct {
	WQ, WK, WV, WO *Linear
	Heads, D       int
}

// Block is one quantized encoder block, shaped like nn.EncoderBlock.
type Block struct {
	LN1, LN2 *LayerNorm
	Attn     *Attention
	FF1, FF2 *Linear
}

// Model is the quantized PragFormer classifier: float embeddings and layer
// norms, int8 linear/attention weights, and the batch-first forward stack
// of infer.go.
type Model struct {
	Cfg     Config
	Tok     *tensor.Matrix // vocab × D token embeddings
	Pos     *tensor.Matrix // maxLen × D positional embeddings
	Blocks  []*Block
	FinalLN *LayerNorm
	FC1     *Linear
	FC2     *Linear
}

// FromNN quantizes a float model given its pieces. core.Quantize is the
// caller; it passes the classifier surface (the MLM pretraining head is
// training-only and is not carried into the quantized bundle).
func FromNN(cfg Config, emb *nn.Embedding, blocks []*nn.EncoderBlock,
	finalLN *nn.LayerNorm, fc1, fc2 *nn.Linear) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(blocks) != cfg.Layers {
		return nil, fmt.Errorf("quant: %d blocks for %d configured layers", len(blocks), cfg.Layers)
	}
	m := &Model{
		Cfg:     cfg,
		Tok:     emb.Tok.W.Clone(),
		Pos:     emb.Pos.W.Clone(),
		FinalLN: FromLayerNorm(finalLN),
		FC1:     QuantizeLinear(fc1),
		FC2:     QuantizeLinear(fc2),
	}
	for _, b := range blocks {
		m.Blocks = append(m.Blocks, &Block{
			LN1: FromLayerNorm(b.LN1),
			LN2: FromLayerNorm(b.LN2),
			Attn: &Attention{
				WQ:    QuantizeLinear(b.Attn.WQ),
				WK:    QuantizeLinear(b.Attn.WK),
				WV:    QuantizeLinear(b.Attn.WV),
				WO:    QuantizeLinear(b.Attn.WO),
				Heads: b.Attn.Heads,
				D:     b.Attn.D,
			},
			FF1: QuantizeLinear(b.FF.L1),
			FF2: QuantizeLinear(b.FF.L2),
		})
	}
	return m, nil
}

// BackendName identifies the compute backend (core.Backend).
func (m *Model) BackendName() string { return "int8" }

// VocabSize reports the embeddable vocabulary size (core.Backend).
func (m *Model) VocabSize() int { return m.Cfg.Vocab }

// MaxSeqLen reports the input position budget (core.Backend).
func (m *Model) MaxSeqLen() int { return m.Cfg.MaxLen }
