package experiments

import (
	"bytes"
	"strings"
	"testing"

	"pragformer/internal/corpus"
	"pragformer/internal/lime"
	"pragformer/internal/metrics"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

// Printing-layer tests over synthetic results; no models required.

func TestComparisonTablePrint(t *testing.T) {
	tb := ComparisonTable{
		Title: "Table X: test",
		Rows: []ClassifierRow{
			{"PragFormer", metrics.Report{Precision: 0.8, Recall: 0.81, F1: 0.8, Accuracy: 0.8}},
			{"ComPar", metrics.Report{Precision: 0.51, Recall: 0.56, F1: 0.36, Accuracy: 0.5}},
		},
		ComParFailed: 221,
		TestSize:     1274,
	}
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Table X", "PragFormer", "0.80", "221/1274"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestTable11Print(t *testing.T) {
	tb := Table11{
		Rows: []ClassifierRow{
			{"PragFormer Poly", metrics.Report{Accuracy: 0.93}},
			{"ComPar Poly", metrics.Report{Accuracy: 0.43}},
		},
		PolyParseFailures: 64,
		SPECParseFailures: 287,
	}
	var buf bytes.Buffer
	tb.Print(&buf)
	if !strings.Contains(buf.String(), "PolyBench 64, SPEC-OMP 287") {
		t.Errorf("out = %q", buf.String())
	}
}

func TestFigure7Print(t *testing.T) {
	f := Figure7{Buckets: []LengthBucket{
		{MaxTokens: 15, Count: 10, Errors: 4},
		{MaxTokens: 1 << 30, Count: 5, Errors: 0},
	}}
	var buf bytes.Buffer
	f.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "40.0%") {
		t.Errorf("out = %q", out)
	}
	if !strings.Contains(out, ">15") {
		t.Errorf("open bucket label missing: %q", out)
	}
}

func TestLengthBucketErrorRate(t *testing.T) {
	if (LengthBucket{}).ErrorRate() != 0 {
		t.Error("empty bucket rate should be 0")
	}
	b := LengthBucket{Count: 4, Errors: 1}
	if b.ErrorRate() != 25 {
		t.Errorf("rate = %f", b.ErrorRate())
	}
}

func TestAblationPrint(t *testing.T) {
	a := Ablation{Title: "Ablation: demo", Rows: []AblationRow{{"variant a", 0.81}, {"variant b", 0.7}}}
	var buf bytes.Buffer
	a.Print(&buf)
	if !strings.Contains(buf.String(), "variant a") || !strings.Contains(buf.String(), "0.810") {
		t.Errorf("out = %q", buf.String())
	}
}

func TestPrintExamplesSynthetic(t *testing.T) {
	exs := []PaperExample{{
		Name:      "1: demo",
		TrueLabel: true,
		Predicted: false,
		Prob:      0.08,
		Top:       []lime.Attribution{{Token: "fprintf", Weight: -1.2}},
	}}
	var buf bytes.Buffer
	PrintExamples(&buf, exs)
	out := buf.String()
	if !strings.Contains(out, "fprintf(-1.200)") {
		t.Errorf("out = %q", out)
	}
}

func TestRepresentationCurvesPrint(t *testing.T) {
	rc := RepresentationCurves{Histories: map[tokenize.Representation]train.History{}}
	for _, repr := range tokenize.Representations {
		rc.Histories[repr] = train.History{Epochs: []train.EpochStats{
			{Epoch: 0, TrainLoss: 0.7, ValidLoss: 0.6, ValidAccuracy: 0.6},
			{Epoch: 1, TrainLoss: 0.3, ValidLoss: 0.4, ValidAccuracy: 0.8},
		}, BestEpoch: 1}
	}
	var buf bytes.Buffer
	rc.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 4", "Figure 5", "Figure 6", "Replaced-AST", "Best-epoch"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	acc := rc.FinalAccuracy()
	if acc[tokenize.Text] != 0.8 {
		t.Errorf("final accuracy = %v", acc)
	}
}

func TestTable3PrintSynthetic(t *testing.T) {
	tb := Table3{Stats: corpus.Stats{Total: 17013, WithDirective: 7630,
		ScheduleStatic: 7256, ScheduleDynamic: 374, Reduction: 1455, Private: 3403}}
	var buf bytes.Buffer
	tb.Print(&buf)
	for _, want := range []string{"17013", "7630", "374", "1455", "3403"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestTable4And5Print(t *testing.T) {
	var buf bytes.Buffer
	Table4{Histogram: [4]int{9865, 5824, 724, 600}}.Print(&buf)
	Table5{DirTrain: 14442, DirValid: 1274, DirTest: 1274,
		ClauseTrain: 6482, ClauseValid: 572, ClauseTest: 572}.Print(&buf)
	out := buf.String()
	for _, want := range []string{"9865", "14442", "6482"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFigure3PrintSynthetic(t *testing.T) {
	f := Figure3{Dist: map[corpus.Domain]float64{
		corpus.DomainGeneric: 0.43, corpus.DomainUnknown: 0.335,
		corpus.DomainBenchmark: 0.165, corpus.DomainTesting: 0.07,
	}}
	var buf bytes.Buffer
	f.Print(&buf)
	if !strings.Contains(buf.String(), "43.0%") {
		t.Errorf("out = %q", buf.String())
	}
}

func TestNamesListComplete(t *testing.T) {
	// Every paper table/figure has an entry.
	want := []string{"table3", "table4", "figure3", "table5", "table6", "table7",
		"figures456", "table8", "figure7", "table9", "table10", "table11", "table12"}
	set := map[string]bool{}
	for _, n := range Names {
		set[n] = true
	}
	for _, n := range want {
		if !set[n] {
			t.Errorf("experiment %q missing from Names", n)
		}
	}
}
