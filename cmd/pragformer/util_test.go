package main

import "os"

// writeFile is a test helper.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
