package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"pragformer/internal/tokenize"
)

func tinyConfig() Config {
	return Config{Vocab: 50, MaxLen: 16, D: 8, Heads: 2, Layers: 2, FFHidden: 16, FCHidden: 8, Dropout: 0}
}

func mustNew(t *testing.T, cfg Config, seed int64) *PragFormer {
	t.Helper()
	m, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	c := Config{Vocab: 100, D: 32, Heads: 4, Layers: 1}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MaxLen != 110 {
		t.Errorf("default MaxLen = %d, want 110 (the paper's cap)", c.MaxLen)
	}
	if c.FFHidden != 64 || c.FCHidden != 32 {
		t.Errorf("defaults = %+v", c)
	}
	bad := []Config{
		{Vocab: 2, D: 8, Heads: 2, Layers: 1},
		{Vocab: 100, D: 9, Heads: 2, Layers: 1},
		{Vocab: 100, D: 0, Heads: 2, Layers: 1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestPredictRange(t *testing.T) {
	m := mustNew(t, tinyConfig(), 1)
	ids := []int{tokenize.CLS, 5, 6, 7}
	p := m.Predict(ids)
	if p < 0 || p > 1 || math.IsNaN(p) {
		t.Fatalf("p = %g", p)
	}
}

func TestPredictDeterministic(t *testing.T) {
	m := mustNew(t, tinyConfig(), 1)
	ids := []int{tokenize.CLS, 5, 6, 7, 8}
	if m.Predict(ids) != m.Predict(ids) {
		t.Fatal("eval-mode prediction not deterministic")
	}
}

func TestLongInputTruncated(t *testing.T) {
	m := mustNew(t, tinyConfig(), 1)
	ids := make([]int, 100) // longer than MaxLen=16
	for i := range ids {
		ids[i] = 4 + i%40
	}
	p := m.Predict(ids)
	if math.IsNaN(p) {
		t.Fatal("NaN on long input")
	}
	if p != m.Predict(ids[:16]) {
		t.Error("truncation inconsistent")
	}
}

// TestTrainingReducesLoss is the end-to-end learning sanity check: SGD on a
// single separable pattern must drive the loss down and flip predictions.
func TestTrainingReducesLoss(t *testing.T) {
	m := mustNew(t, tinyConfig(), 2)
	posIDs := []int{tokenize.CLS, 10, 11, 12}
	negIDs := []int{tokenize.CLS, 20, 21, 22}

	lossBefore := m.Loss(posIDs, true) + m.Loss(negIDs, false)
	lr := 0.05
	for step := 0; step < 60; step++ {
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
		m.LossAndBackward(posIDs, true)
		m.LossAndBackward(negIDs, false)
		for _, p := range m.Params() {
			for i := range p.W.Data {
				p.W.Data[i] -= lr * p.Grad.Data[i]
			}
		}
	}
	lossAfter := m.Loss(posIDs, true) + m.Loss(negIDs, false)
	if lossAfter >= lossBefore {
		t.Fatalf("loss did not decrease: %.4f → %.4f", lossBefore, lossAfter)
	}
	if !m.PredictLabel(posIDs) || m.PredictLabel(negIDs) {
		t.Errorf("predictions not separated: pos=%.3f neg=%.3f", m.Predict(posIDs), m.Predict(negIDs))
	}
}

func TestLossMatchesPrediction(t *testing.T) {
	m := mustNew(t, tinyConfig(), 3)
	ids := []int{tokenize.CLS, 7, 8}
	p := m.Predict(ids)
	lossPos := m.Loss(ids, true)
	lossNeg := m.Loss(ids, false)
	if math.Abs(lossPos+math.Log(p)) > 1e-9 {
		t.Errorf("loss(+) = %g, -log(p) = %g", lossPos, -math.Log(p))
	}
	if math.Abs(lossNeg+math.Log(1-p)) > 1e-6 {
		t.Errorf("loss(-) = %g, -log(1-p) = %g", lossNeg, -math.Log(1-p))
	}
}

func TestMLMPretrainingLearns(t *testing.T) {
	m := mustNew(t, tinyConfig(), 4)
	rng := rand.New(rand.NewSource(9))
	seqs := [][]int{
		{tokenize.CLS, 10, 11, 12, 13, 10, 11, 12, 13},
		{tokenize.CLS, 20, 21, 22, 23, 20, 21, 22, 23},
	}
	measure := func() float64 {
		mrng := rand.New(rand.NewSource(42))
		total, n := 0.0, 0
		for _, s := range seqs {
			for _, p := range m.MLMParams() {
				p.ZeroGrad()
			}
			l, k := m.MLMLossAndBackward(s, mrng)
			if k > 0 {
				total += l
				n++
			}
		}
		return total / float64(n)
	}
	before := measure()
	lr := 0.05
	for step := 0; step < 80; step++ {
		for _, p := range m.MLMParams() {
			p.ZeroGrad()
		}
		for _, s := range seqs {
			m.MLMLossAndBackward(s, rng)
		}
		for _, p := range m.MLMParams() {
			for i := range p.W.Data {
				p.W.Data[i] -= lr * p.Grad.Data[i]
			}
		}
	}
	after := measure()
	if after >= before {
		t.Fatalf("MLM loss did not decrease: %.4f → %.4f", before, after)
	}
}

func TestMLMNoTargets(t *testing.T) {
	m := mustNew(t, tinyConfig(), 5)
	// Sequence of length 1 ([CLS] only) can never mask anything.
	l, n := m.MLMLossAndBackward([]int{tokenize.CLS}, rand.New(rand.NewSource(1)))
	if l != 0 || n != 0 {
		t.Fatalf("l=%g n=%d", l, n)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := mustNew(t, tinyConfig(), 6)
	ids := []int{tokenize.CLS, 9, 8, 7}
	want := m.Predict(ids)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Predict(ids); got != want {
		t.Fatalf("prediction after load = %g, want %g", got, want)
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := mustNew(t, tinyConfig(), 7)
	path := t.TempDir() + "/model.gob"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{tokenize.CLS, 4, 5}
	if m.Predict(ids) != m2.Predict(ids) {
		t.Fatal("file round trip changed predictions")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestCopyEncoderFrom(t *testing.T) {
	pre := mustNew(t, tinyConfig(), 8)
	fine := mustNew(t, tinyConfig(), 99)
	ids := []int{tokenize.CLS, 5, 6}

	// Perturb the pretrained encoder so the copy is observable.
	for _, p := range pre.EncoderParams() {
		for i := range p.W.Data {
			p.W.Data[i] += 0.1
		}
	}
	before := fine.Predict(ids)
	if err := fine.CopyEncoderFrom(pre); err != nil {
		t.Fatal(err)
	}
	after := fine.Predict(ids)
	if before == after {
		t.Error("encoder copy had no effect")
	}
	for i, p := range fine.EncoderParams() {
		src := pre.EncoderParams()[i]
		for j := range p.W.Data {
			if p.W.Data[j] != src.W.Data[j] {
				t.Fatalf("param %s not copied", p.Name)
			}
		}
	}
}

func TestCopyEncoderShapeMismatch(t *testing.T) {
	a := mustNew(t, tinyConfig(), 1)
	cfg := tinyConfig()
	cfg.D = 16
	cfg.FFHidden = 32
	b := mustNew(t, cfg, 1)
	if err := a.CopyEncoderFrom(b); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestParamCounts(t *testing.T) {
	m := mustNew(t, tinyConfig(), 1)
	// emb(2) + 2 blocks × 16 + final ln(2) + fc1(2) + fc2(2) = 40.
	if n := len(m.Params()); n != 40 {
		t.Errorf("params = %d, want 40", n)
	}
	if n := len(m.MLMParams()); n != 38 {
		t.Errorf("mlm params = %d, want 38", n)
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, p := range m.Params() {
		if seen[p.Name] {
			t.Errorf("duplicate param %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestDropoutModelStillInRange(t *testing.T) {
	cfg := tinyConfig()
	cfg.Dropout = 0.3
	m := mustNew(t, cfg, 11)
	ids := []int{tokenize.CLS, 5, 6, 7}
	// Training forward uses dropout internally; loss must stay finite.
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	l := m.LossAndBackward(ids, true)
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatalf("loss = %g", l)
	}
}

func BenchmarkPredict(b *testing.B) {
	cfg := Config{Vocab: 3000, MaxLen: 110, D: 64, Heads: 4, Layers: 2}
	m, err := New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int, 34)
	ids[0] = tokenize.CLS
	for i := 1; i < len(ids); i++ {
		ids[i] = 4 + i
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Predict(ids)
	}
}

func BenchmarkLossAndBackward(b *testing.B) {
	cfg := Config{Vocab: 3000, MaxLen: 110, D: 64, Heads: 4, Layers: 2}
	m, err := New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int, 34)
	ids[0] = tokenize.CLS
	for i := 1; i < len(ids); i++ {
		ids[i] = 4 + i
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.LossAndBackward(ids, i%2 == 0)
	}
}
