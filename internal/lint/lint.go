// Package lint holds pragformer's project-specific static checks, run in CI
// as a `go vet -vettool` (cmd/pflint). Three checks, all purely syntactic so
// the tool needs no type information or export data:
//
//   - poolbalance: a function that takes buffers from the tensor pool
//     (GetVec/GetMatrix/GetInt8Matrix and their Dirty variants) but neither
//     returns them (PutVec/PutMatrix/PutInt8Matrix) nor hands them off — by
//     returning the buffer or storing it in a field/global — leaks pool
//     capacity: the pool never shrinks a hot path back to steady state.
//
//   - determinism: the inference packages (nn, quant, lime, dep) promise
//     byte-identical outputs across runs — the scan golden gates and warm
//     cache diffs depend on it. Calls to time.Now or the math/rand global
//     functions inside them break that promise silently. Explicitly seeded
//     generators (rand.New(rand.NewSource(...))) stay allowed.
//
//   - obsimport: the compute-kernel packages (nn, quant, tensor, dep) must
//     not import internal/obs. Telemetry belongs in the serving and scan
//     layers; a counter inside a kernel inner loop is a perf hazard and
//     couples the numeric core to the runtime's metric registry. Timings
//     for these layers are recorded by their callers.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one lint diagnostic.
type Finding struct {
	Pos token.Position
	Msg string
}

// deterministicPkgs lists the package names whose outputs must be
// reproducible bit-for-bit.
var deterministicPkgs = map[string]bool{
	"nn": true, "quant": true, "lime": true, "dep": true,
}

// obsFreePkgs lists the package names that must stay free of telemetry:
// the numeric kernels and the dependence engine. Their callers time them.
var obsFreePkgs = map[string]bool{
	"nn": true, "quant": true, "tensor": true, "dep": true,
}

// obsImportPath is the telemetry package kernels must not depend on.
const obsImportPath = "pragformer/internal/obs"

// poolFamilies maps each pool Get entry point to its family; a family's
// buffers come back via Put<family>.
var poolFamilies = map[string]string{
	"GetVec": "Vec", "GetVecDirty": "Vec",
	"GetMatrix": "Matrix", "GetMatrixDirty": "Matrix",
	"GetInt8Matrix": "Int8Matrix",
}

// CheckFile runs every check over one parsed file and returns its findings
// ordered by position. pkgName is the package's declared name (not import
// path): the determinism check keys off it.
func CheckFile(fset *token.FileSet, file *ast.File, pkgName string) []Finding {
	var out []Finding
	out = append(out, checkPoolBalance(fset, file)...)
	if deterministicPkgs[pkgName] {
		out = append(out, checkDeterminism(fset, file)...)
	}
	if obsFreePkgs[pkgName] {
		out = append(out, checkObsImport(fset, file)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Column < out[j].Pos.Column
	})
	return out
}

// checkPoolBalance flags functions that acquire pool buffers of a family
// without any same-family Put and without a way to transfer ownership:
// returning a reference-shaped value (slice/pointer/interface — the buffer
// may be handed to the caller, whose own balance is checked separately) or
// storing into a struct field / global both count as transfers.
func checkPoolBalance(fset *token.FileSet, file *ast.File) []Finding {
	var out []Finding
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		gets := map[string]token.Pos{} // family -> first Get position
		puts := map[string]bool{}
		escapes := returnsReference(fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				name := calleeName(v)
				if fam, ok := poolFamilies[name]; ok {
					if _, seen := gets[fam]; !seen {
						gets[fam] = v.Pos()
					}
				}
				if strings.HasPrefix(name, "Put") {
					puts[strings.TrimPrefix(name, "Put")] = true
				}
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					if _, ok := lhs.(*ast.SelectorExpr); ok {
						escapes = true // stored into a field or package var
					}
				}
			}
			return true
		})
		if escapes {
			continue
		}
		fams := make([]string, 0, len(gets))
		for fam := range gets {
			if !puts[fam] {
				fams = append(fams, fam)
			}
		}
		sort.Strings(fams)
		for _, fam := range fams {
			out = append(out, Finding{
				Pos: fset.Position(gets[fam]),
				Msg: fmt.Sprintf("%s acquires a pool %s buffer but never calls Put%s (pool leak)",
					fn.Name.Name, fam, fam),
			})
		}
	}
	return out
}

// checkDeterminism flags time.Now and math/rand global-function calls. The
// receivers are matched by the file's own import names, so aliased imports
// are caught and local variables that happen to be called "rand" are not.
func checkDeterminism(fset *token.FileSet, file *ast.File) []Finding {
	timeName, randName := importName(file, "time"), importName(file, "math/rand")
	if timeName == "" && randName == "" {
		return nil
	}
	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok || recv.Obj != nil { // Obj != nil: a local shadows the import
			return true
		}
		switch {
		case timeName != "" && recv.Name == timeName && sel.Sel.Name == "Now":
			out = append(out, Finding{Pos: fset.Position(call.Pos()),
				Msg: "time.Now in a deterministic package (outputs must be reproducible)"})
		case randName != "" && recv.Name == randName &&
			sel.Sel.Name != "New" && sel.Sel.Name != "NewSource":
			out = append(out, Finding{Pos: fset.Position(call.Pos()),
				Msg: fmt.Sprintf("rand.%s uses the global generator in a deterministic package (seed a rand.New(rand.NewSource(...)) instead)",
					sel.Sel.Name)})
		}
		return true
	})
	return out
}

// checkObsImport flags any import of internal/obs — under any alias,
// including blank and dot imports (even a blank import drags the registry
// into the kernel's dependency graph).
func checkObsImport(fset *token.FileSet, file *ast.File) []Finding {
	var out []Finding
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == obsImportPath {
			out = append(out, Finding{Pos: fset.Position(imp.Pos()),
				Msg: "kernel package imports internal/obs (telemetry belongs in the serving/scan layers; callers time the kernels)"})
		}
	}
	return out
}

// returnsReference reports whether fn can smuggle a buffer out through its
// results: any slice, pointer, map, or interface-shaped result counts.
// Scalar-only signatures (int, float64, bool, string, error-free) cannot
// carry the buffer, so a missing Put there is a real leak.
func returnsReference(fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		switch t := field.Type.(type) {
		case *ast.StarExpr, *ast.ArrayType, *ast.MapType, *ast.InterfaceType,
			*ast.ChanType, *ast.FuncType, *ast.Ellipsis:
			return true
		case *ast.Ident:
			if t.Name == "any" {
				return true
			}
		}
	}
	return false
}

// calleeName extracts the called function's bare name: `GetVec(...)` and
// `tensor.GetVec(...)` both yield "GetVec".
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// importName returns the name under which path is imported in file, "" when
// it is not imported. An explicit alias wins; otherwise the path's base.
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
