/* A carried dependence dressed up as a reduction: each element folds in
 * its predecessor, so iteration order matters and the loop must stay
 * serial. The directive classifier tends to flag the compound update —
 * this is the disagreement fixture behind SARIF rule PF1003. */

void smooth(double *s, int n) {
    int i;
    for (i = 1; i < n; i++) {
        s[i] += s[i - 1];
    }
}
