package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Wire headers of the tracing and deadline contracts. A router mints a
// trace ID (or accepts the client's via TraceHeader) and echoes it on the
// response; fan-out forwards carry both headers to replicas, so one
// request's spans can be merged across the tier. DeadlineHeader carries
// the REMAINING client budget in integer milliseconds — an absolute
// wall-clock deadline would need synchronized clocks, a budget does not.
const (
	TraceHeader    = "X-PF-Trace"
	DeadlineHeader = "X-PF-Deadline-Ms"
)

// maxSpans caps one trace's span count; later spans are counted as
// dropped rather than growing without bound (a scan over a huge tree
// records per-file parse spans).
const maxSpans = 256

// Span is one timed region inside a request: a name plus its offset from
// the trace start and its duration.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// Stage is one named sub-timing a lower layer reports upward without
// holding the trace itself — the batcher's run functions return the
// advisor's infer/corroborate splits this way.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Trace is one request's span recorder. All methods are safe for
// concurrent use and nil-safe: a nil *Trace swallows every call, so
// instrumented code never branches on "is tracing on".
type Trace struct {
	ID string
	t0 time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewTrace builds a trace, minting a random ID when id is empty.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{ID: id, t0: time.Now()}
}

// NewID mints a 16-hex-digit random trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a fixed ID keeps the
		// request path alive.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Add records a span that began at start and ran for d.
func (t *Trace) Add(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.t0), Dur: d})
}

// Observe records a span of duration d ending now.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.Add(name, time.Now().Add(-d), d)
}

// Start opens a span and returns the closure that ends it:
//
//	defer tr.Start("route")()
func (t *Trace) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Add(name, start, time.Since(start)) }
}

// Spans snapshots the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped reports how many spans the cap discarded.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WireSpan is one span on the wire, offsets and durations in microseconds.
type WireSpan struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// Wire is a trace's JSON form: attached to /predict and /suggest response
// bodies (only when the request was traced) and merged router-side so a
// tier-routed request reports replica spans next to its own.
type Wire struct {
	ID      string     `json:"id"`
	Spans   []WireSpan `json:"spans"`
	Dropped int        `json:"dropped,omitempty"`
}

// Wire renders the trace for a response body; nil for a nil trace.
func (t *Trace) Wire() *Wire {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w := &Wire{ID: t.ID, Dropped: t.dropped, Spans: make([]WireSpan, len(t.spans))}
	for i, s := range t.spans {
		w.Spans[i] = WireSpan{Name: s.Name, StartUs: s.Start.Microseconds(), DurUs: s.Dur.Microseconds()}
	}
	return w
}

// Merge appends a remote trace's spans (offsets stay relative to the
// remote process' own start — span durations, not clock sync, are the
// contract).
func (t *Trace) Merge(w *Wire) {
	if t == nil || w == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range w.Spans {
		if len(t.spans) >= maxSpans {
			t.dropped++
			continue
		}
		t.spans = append(t.spans, Span{
			Name:  s.Name,
			Start: time.Duration(s.StartUs) * time.Microsecond,
			Dur:   time.Duration(s.DurUs) * time.Microsecond,
		})
	}
	t.dropped += w.Dropped
}

// StageTotal aggregates one span name's occurrences.
type StageTotal struct {
	Name  string
	Count int
	Total time.Duration
}

// Summary aggregates spans by name, ordered by name — the `pragformer
// scan -v` stage table and the per-request log line.
func (t *Trace) Summary() []StageTotal {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	byName := map[string]*StageTotal{}
	var order []string
	for _, s := range t.spans {
		st := byName[s.Name]
		if st == nil {
			st = &StageTotal{Name: s.Name}
			byName[s.Name] = st
			order = append(order, s.Name)
		}
		st.Count++
		st.Total += s.Dur
	}
	t.mu.Unlock()
	sort.Strings(order)
	out := make([]StageTotal, len(order))
	for i, name := range order {
		out[i] = *byName[name]
	}
	return out
}

// ctxKey keys the request trace in a context.
type ctxKey struct{}

// WithTrace attaches a trace to a context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom returns the context's trace, nil when the request is not
// traced — and every Trace method accepts the nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
