//go:build amd64 && !purego

#include "textflag.h"

// CPU feature probes live in cpu_amd64.s; this file holds only the int8
// GEMM kernel.

// func int8DequantQuadsK16(a, b *int8, k16, stride, quads int, scales *float32, sa float32, out *float64)
//
// For g in 0..quads, c in 0..3:
//
//	out[4g+c] = float64(float32(Σ_{k < k16} a[k]·b[(4g+c)·stride+k]) · sa · scales[4g+c])
//
// with k16 a nonzero multiple of 16 and quads ≥ 1. The channel loop and the
// dequantization epilogue both live inside the kernel, so one call produces
// a whole float64 output row — at the small inner dimensions this repo's
// layers use (K = 32..64), per-call setup, the horizontal reduction, and a
// separate Go-side dequant pass otherwise rival the multiply work itself.
//
// Each k iteration sign-extends 16 int8 lanes of the activation row and of
// four weight-channel rows to int16 (VPMOVSXBW), multiply-adds lane pairs
// into 8 int32 partials (VPMADDWD), and accumulates; VPMADDWD's int16×int16
// + int16×int16 sums cannot overflow int32 (operands are ≥ -127·127·2).
// After the k loop, three VPHADDD fold the four accumulators into
// per-128-half sums [c0 c1 c2 c3 | c0' c1' c2' c3'] and VEXTRACTI128+VPADDD
// merges the halves — integer adds, so the lane reassociation is exact. The
// dequant tail then mirrors the scalar path operation-for-operation:
// int32→float32 (VCVTDQ2PS, round-to-nearest like Go's conversion), × sa,
// × scales[c] (both float32 VMULPS, same order as the Go expression), and a
// final exact widen to float64 (VCVTPS2PD).
TEXT ·int8DequantQuadsK16(SB), NOSPLIT, $0-64
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ k16+16(FP), CX
	MOVQ stride+24(FP), R8
	MOVQ quads+32(FP), BX
	MOVQ scales+40(FP), R13
	MOVQ out+56(FP), DX

	VBROADCASTSS sa+48(FP), X14 // activation row scale in all 4 lanes

group:
	// Channel row pointers b0..b3 = group base + {0,1,2,3}·stride.
	MOVQ DI, R9
	LEAQ (DI)(R8*1), R10
	LEAQ (DI)(R8*2), R11
	LEAQ (R10)(R8*2), R12

	VPXOR Y4, Y4, Y4 // acc0
	VPXOR Y5, Y5, Y5 // acc1
	VPXOR Y6, Y6, Y6 // acc2
	VPXOR Y7, Y7, Y7 // acc3

	XORQ AX, AX

kloop:
	VPMOVSXBW (SI)(AX*1), Y0  // 16 activation lanes → int16

	VPMOVSXBW (R9)(AX*1), Y1
	VPMADDWD  Y0, Y1, Y1
	VPADDD    Y1, Y4, Y4

	VPMOVSXBW (R10)(AX*1), Y2
	VPMADDWD  Y0, Y2, Y2
	VPADDD    Y2, Y5, Y5

	VPMOVSXBW (R11)(AX*1), Y3
	VPMADDWD  Y0, Y3, Y3
	VPADDD    Y3, Y6, Y6

	VPMOVSXBW (R12)(AX*1), Y1
	VPMADDWD  Y0, Y1, Y1
	VPADDD    Y1, Y7, Y7

	ADDQ $16, AX
	CMPQ AX, CX
	JLT  kloop

	// Cross-channel reduce: [c0 c1 c2 c3] int32 in X4.
	VPHADDD Y5, Y4, Y4
	VPHADDD Y7, Y6, Y6
	VPHADDD Y6, Y4, Y4

	VEXTRACTI128 $1, Y4, X0
	VPADDD       X0, X4, X4

	// Fused dequant: float64(float32(p) · sa · scales[c]) for the quad.
	VCVTDQ2PS X4, X4
	VMULPS    X14, X4, X4
	VMOVUPS   (R13), X0
	VMULPS    X0, X4, X4
	VCVTPS2PD X4, Y4
	VMOVUPD   Y4, (DX)

	// Next channel quad.
	LEAQ (R12)(R8*1), DI
	ADDQ $16, R13
	ADDQ $32, DX
	DECQ BX
	JNE  group

	VZEROUPPER
	RET

// func f64AbsMaxAVX2(p *float64, n4 int) float64
//
// Returns max_i |p[i]| over the first n4 elements; n4 is a nonzero multiple
// of 4. max is order-independent on finite inputs (no rounding happens), so
// the 4-lane reduction is bit-identical to the scalar scan.
TEXT ·f64AbsMaxAVX2(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), SI
	MOVQ n4+8(FP), CX

	VPCMPEQD Y1, Y1, Y1
	VPSRLQ   $1, Y1, Y1 // 0x7FFF… abs mask

	VXORPD Y4, Y4, Y4
	XORQ   AX, AX

absloop:
	VANDPD (SI)(AX*8), Y1, Y0
	VMAXPD Y0, Y4, Y4
	ADDQ   $4, AX
	CMPQ   AX, CX
	JLT    absloop

	VEXTRACTF128 $1, Y4, X0
	VMAXPD       X0, X4, X4
	VSHUFPD      $1, X4, X4, X0
	VMAXSD       X0, X4, X4
	VMOVSD       X4, ret+16(FP)
	VZEROUPPER
	RET

// func f64QuantRowAVX2(src *float64, dst *int8, inv float64, n4 int)
//
// dst[i] = int8(round-half-away(src[i]·inv)) for i < n4 (a nonzero multiple
// of 4). Bit-identical to the scalar int8(math.Round(v·inv)) path: the
// multiply is one IEEE rounding in both; round-half-away decomposes exactly
// as t = trunc(x) (VROUNDPD mode 3), frac = x − t (exact for |x| < 2^52),
// then t ± 1 where |frac| ≥ 0.5 — every step representable, no rounding.
// Quantized magnitudes stay ≤ ~127.0001, so the saturating int32→int8 packs
// never clamp and match Go's conversion of the same integer value.
DATA f64QuantConsts<>+0(SB)/8, $0x3FF0000000000000 // 1.0
DATA f64QuantConsts<>+8(SB)/8, $0x3FE0000000000000 // 0.5
GLOBL f64QuantConsts<>(SB), RODATA|NOPTR, $16

TEXT ·f64QuantRowAVX2(SB), NOSPLIT, $0-32
	MOVQ         src+0(FP), SI
	MOVQ         dst+8(FP), DI
	VBROADCASTSD inv+16(FP), Y12
	MOVQ         n4+24(FP), CX

	VPCMPEQD Y8, Y8, Y8
	VPSRLQ   $1, Y8, Y8  // abs mask
	VPCMPEQD Y9, Y9, Y9
	VPSLLQ   $63, Y9, Y9 // sign mask

	// FP constants come from memory: a GP→XMM MOVQ assembles to a legacy
	// SSE encoding, and mixing that with live YMM upper state costs an
	// AVX-SSE transition stall per instruction on pre-Skylake parts.
	VBROADCASTSD f64QuantConsts<>+0(SB), Y10 // 1.0
	VBROADCASTSD f64QuantConsts<>+8(SB), Y11 // 0.5

	XORQ AX, AX

quantloop:
	VMOVUPD  (SI)(AX*8), Y0
	VMULPD   Y12, Y0, Y0   // x = v·inv
	VROUNDPD $3, Y0, Y1    // t = trunc(x)
	VSUBPD   Y1, Y0, Y2    // frac = x − t (exact)
	VANDPD   Y8, Y2, Y2    // |frac|
	VCMPPD   $13, Y11, Y2, Y3 // |frac| ≥ 0.5 lane mask
	VANDPD   Y9, Y0, Y5    // sign(x)
	VORPD    Y10, Y5, Y5   // ±1.0
	VANDPD   Y3, Y5, Y5    // ±1.0 where rounding away
	VADDPD   Y5, Y1, Y1    // round-half-away(x), an exact integer

	VCVTTPD2DQY Y1, X1     // 4×int32
	VPACKSSDW   X1, X1, X1
	VPACKSSWB   X1, X1, X1
	VMOVD       X1, (DI)   // 4×int8

	ADDQ $4, AX
	ADDQ $4, DI
	CMPQ AX, CX
	JLT  quantloop

	VZEROUPPER
	RET
