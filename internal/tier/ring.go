package tier

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// The consistent-hash ring maps loop content hashes to replicas. Each
// replica owns VNodes points on a uint64 ring; a key routes to the first
// point clockwise from its own position. The properties the tier needs:
//
//   - Stability: adding or removing one replica moves only the keys that
//     replica's arcs cover (~1/N of the keyspace), so the other replicas'
//     LRU and verdict caches stay hot through fleet changes.
//   - Affinity: the routing key is the same sha-256 canonical-print hash
//     the scan cache uses (scan.HashSnippet), so every request for one
//     loop lands on one replica and its caches answer repeats.
//
// The walk order additionally gives each key a deterministic fallback
// sequence: when the owner is unhealthy or saturated (bounded-load
// check in Router.pick), the key spills to the next distinct replica
// clockwise — still deterministic, still cache-friendly.

// ring is an immutable consistent-hash ring. Routers rebuild it only at
// construction; health is overlaid at lookup time via the walk order.
type ring struct {
	points []ringPoint // sorted by h
	names  []string    // distinct replica names
}

type ringPoint struct {
	h    uint64
	name string
}

// newRing places vnodes points per name. Placement hashes are sha-256 of
// "name#i" — stable across processes, so every router instance agrees on
// the mapping.
func newRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{names: append([]string(nil), names...)}
	for _, name := range r.names {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{h: hashString(name + "#" + strconv.Itoa(i)), name: name})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].name < r.points[j].name
	})
	return r
}

// hashString is the ring's placement hash.
func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyPoint positions a routing key on the ring. Keys are normally 64-char
// hex sha-256 digests (scan.HashSnippet), whose leading 16 hex digits ARE
// a uniform uint64 — no second hash needed; anything else is hashed.
func keyPoint(key string) uint64 {
	if len(key) >= 16 {
		if v, err := strconv.ParseUint(key[:16], 16, 64); err == nil {
			return v
		}
	}
	return hashString(key)
}

// owner returns the key's primary replica name ("" on an empty ring).
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].name
}

// walk returns every replica name in ring order starting at the key's
// position, each exactly once: the primary first, then the bounded-load
// and failure spill sequence.
func (r *ring) walk(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := keyPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, len(r.names))
	seen := make(map[string]bool, len(r.names))
	for i := 0; i < len(r.points) && len(out) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}
